package cwlparsl

import (
	"context"
	"testing"
	"time"
)

// TestFacadeService drives the submission service end to end through the
// public facade: submit, wait, inspect outputs and events.
func TestFacadeService(t *testing.T) {
	dir := t.TempDir()
	dfk, err := LoadConfig(ConfigSpec{Executor: "thread-pool", WorkersPerNode: 4, Nodes: 1, Provider: "local", RunDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer dfk.Cleanup()
	svc, err := NewService(dfk, ServiceOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())

	snap, err := svc.Submit(SubmitRequest{
		Source: []byte(`cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
inputs:
  message: {type: string, inputBinding: {position: 1}}
outputs:
  output: {type: stdout}
stdout: out.txt
`),
		Inputs: MapOf("message", "facade"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != RunQueued {
		t.Errorf("initial state = %v", snap.State)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := svc.Wait(ctx, snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != RunSucceeded {
		t.Fatalf("state = %v (error %q)", final.State, final.Error)
	}
	if final.Outputs.Value("output") == nil {
		t.Errorf("outputs = %v", final.Outputs)
	}
	events, ok := svc.Events(snap.ID)
	if !ok || len(events) == 0 {
		t.Errorf("events = %v ok=%v", events, ok)
	}
}
