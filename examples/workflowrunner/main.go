// Workflowrunner demonstrates the paper's stated future work, implemented
// here: executing a complete CWL Workflow (not just a single
// CommandLineTool) on the Parsl engine. The workflow is the paper's §IV
// image pipeline as a proper CWL Workflow document with valueFrom step
// inputs, executed by core.Runner with every step dispatched as a Parsl
// task.
//
// Run from the repository root:
//
//	go run ./examples/workflowrunner
package main

import (
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cwl"
	"repro/internal/parsl"
	"repro/internal/yamlx"
)

const workflowCWL = `cwlVersion: v1.2
class: Workflow
doc: This CWL workflow processes images by performing a series of tasks - resizing, filtering, and blurring
requirements:
  - class: StepInputExpressionRequirement
inputs:
  input_image:
    type: File
    doc: The original image to be processed
  size:
    type: int
    doc: The target sizeXsize for resizing
  sepia:
    type: boolean
    doc: Whether to apply the filter
  radius:
    type: int
    doc: The amount of blur to apply
outputs:
  final_output:
    type: File
    outputSource: blur_image/output_image
steps:
  resize_image:
    run: resize_image.cwl
    in:
      input_image: input_image
      size: size
      output_image:
        valueFrom: "resized.png"
    out: [output_image]
  filter_image:
    run: filter_image.cwl
    in:
      input_image: resize_image/output_image
      sepia: sepia
      output_image:
        valueFrom: "filtered.png"
    out: [output_image]
  blur_image:
    run: blur_image.cwl
    in:
      input_image: filter_image/output_image
      radius: radius
      output_image:
        valueFrom: "blurred.png"
    out: [output_image]
`

const toolTemplate = `cwlVersion: v1.2
class: CommandLineTool
baseCommand: [imgtool, %s]
inputs:
  %s:
    type: %s
    inputBinding: {prefix: --%s}
  input_image:
    type: File
    inputBinding: {position: 1}
  output_image:
    type: string
    inputBinding: {position: 2}
outputs:
  output_image:
    type: File
    outputBinding:
      glob: $(inputs.output_image)
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	workDir, err := os.MkdirTemp("", "workflowrunner-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(workDir)

	binDir := filepath.Join(workDir, "bin")
	os.MkdirAll(binDir, 0o755)
	build := exec.Command("go", "build", "-o", filepath.Join(binDir, "imgtool"), "./cmd/imgtool")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building imgtool (run from the repo root): %w", err)
	}
	os.Setenv("PATH", binDir+string(os.PathListSeparator)+os.Getenv("PATH"))

	files := map[string]string{
		"workflow.cwl":     workflowCWL,
		"resize_image.cwl": fmt.Sprintf(toolTemplate, "resize", "size", "int", "size"),
		"filter_image.cwl": fmt.Sprintf(toolTemplate, "filter", "sepia", "boolean", "sepia"),
		"blur_image.cwl":   fmt.Sprintf(toolTemplate, "blur", "radius", "int", "radius"),
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(workDir, name), []byte(src), 0o644); err != nil {
			return err
		}
	}
	imgs, err := bench.GenerateImageCorpus(filepath.Join(workDir, "corpus"), 1, 512, 7)
	if err != nil {
		return err
	}

	doc, err := cwl.LoadFile(filepath.Join(workDir, "workflow.cwl"))
	if err != nil {
		return err
	}
	if issues, err := cwl.Validate(doc); err != nil {
		return fmt.Errorf("workflow invalid: %v (%v)", err, issues)
	}

	dfk, err := parsl.Load(parsl.Config{
		Executors: []parsl.Executor{parsl.NewThreadPoolExecutor("threads", 4)},
		RunDir:    workDir,
	})
	if err != nil {
		return err
	}
	defer dfk.Cleanup()

	r := core.NewRunner(dfk)
	r.WorkRoot = workDir
	outputs, err := r.Run(doc, yamlx.MapOf(
		"input_image", imgs[0],
		"size", int64(256),
		"sepia", true,
		"radius", int64(2),
	))
	if err != nil {
		return err
	}
	final := outputs.Value("final_output").(*yamlx.Map)
	fmt.Printf("workflow complete: %s (%v bytes)\n", final.GetString("path"), final.Value("size"))
	fmt.Printf("parsl task states: %v\n", dfk.StateCounts())
	return nil
}
