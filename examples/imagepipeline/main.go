// Imagepipeline reproduces the paper's §IV example: the three-stage image
// processing workflow (resize → sepia filter → blur) expressed as CWL
// CommandLineTools, imported into Parsl as CWLApps, and applied concurrently
// to a directory of PNG images exactly as in Listing 4 — a Go function
// chains the three stages through DataFutures, a loop starts one pipeline
// per image, and the program waits for all futures.
//
// Run from the repository root (the example builds cmd/imgtool first):
//
//	go run ./examples/imagepipeline [-images 8] [-size 256]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/imaging"
	"repro/internal/parsl"
)

const resizeCWL = `cwlVersion: v1.2
class: CommandLineTool
baseCommand: [imgtool, resize]
inputs:
  size:
    type: int
    inputBinding: {prefix: --size}
  input_image:
    type: File
    inputBinding: {position: 1}
  output_image:
    type: string
    inputBinding: {position: 2}
outputs:
  output_image:
    type: File
    outputBinding:
      glob: $(inputs.output_image)
`

const filterCWL = `cwlVersion: v1.2
class: CommandLineTool
baseCommand: [imgtool, filter]
inputs:
  sepia:
    type: boolean
    inputBinding: {prefix: --sepia}
  input_image:
    type: File
    inputBinding: {position: 1}
  output_image:
    type: string
    inputBinding: {position: 2}
outputs:
  output_image:
    type: File
    outputBinding:
      glob: $(inputs.output_image)
`

const blurCWL = `cwlVersion: v1.2
class: CommandLineTool
baseCommand: [imgtool, blur]
inputs:
  radius:
    type: int
    inputBinding: {prefix: --radius}
  input_image:
    type: File
    inputBinding: {position: 1}
  output_image:
    type: string
    inputBinding: {position: 2}
outputs:
  output_image:
    type: File
    outputBinding:
      glob: $(inputs.output_image)
`

func main() {
	images := flag.Int("images", 8, "number of images to process")
	size := flag.Int("size", 256, "resize target (pixels)")
	flag.Parse()
	if err := run(*images, *size); err != nil {
		log.Fatal(err)
	}
}

func run(nImages, size int) error {
	workDir, err := os.MkdirTemp("", "imagepipeline-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(workDir)

	// Build imgtool and put it on PATH so the CWL baseCommand resolves.
	toolBin := filepath.Join(workDir, "bin")
	if err := os.MkdirAll(toolBin, 0o755); err != nil {
		return err
	}
	build := exec.Command("go", "build", "-o", filepath.Join(toolBin, "imgtool"), "./cmd/imgtool")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building imgtool (run from the repo root): %w", err)
	}
	os.Setenv("PATH", toolBin+string(os.PathListSeparator)+os.Getenv("PATH"))

	// Tool definitions + input corpus.
	for name, src := range map[string]string{
		"resize_image.cwl": resizeCWL,
		"filter_image.cwl": filterCWL,
		"blur_image.cwl":   blurCWL,
	} {
		if err := os.WriteFile(filepath.Join(workDir, name), []byte(src), 0o644); err != nil {
			return err
		}
	}
	corpus := filepath.Join(workDir, "corpus")
	paths, err := bench.GenerateImageCorpus(corpus, nImages, size*2, 42)
	if err != nil {
		return err
	}

	dfk, err := parsl.Load(parsl.Config{
		Executors: []parsl.Executor{parsl.NewThreadPoolExecutor("threads", 8)},
		RunDir:    workDir,
	})
	if err != nil {
		return err
	}
	defer dfk.Cleanup()

	resizeImage, err := core.NewCWLApp(dfk, filepath.Join(workDir, "resize_image.cwl"))
	if err != nil {
		return err
	}
	filterImage, err := core.NewCWLApp(dfk, filepath.Join(workDir, "filter_image.cwl"))
	if err != nil {
		return err
	}
	blurImage, err := core.NewCWLApp(dfk, filepath.Join(workDir, "blur_image.cwl"))
	if err != nil {
		return err
	}

	// processImg mirrors the paper's process_img function: three chained
	// stages whose dataflow is expressed through DataFutures.
	processImg := func(image string) *parsl.AppFuture {
		resized := resizeImage.Call(parsl.Args{
			"input_image":  parsl.NewFile(image),
			"size":         size,
			"output_image": "resized.png",
		})
		filtered := filterImage.Call(parsl.Args{
			"input_image":  resized.Output(0),
			"sepia":        true,
			"output_image": "filtered.png",
		})
		blurred := blurImage.Call(parsl.Args{
			"input_image":  filtered.Output(0),
			"radius":       1,
			"output_image": "blurred.png",
		})
		return blurred
	}

	start := time.Now()
	var finalImgs []*parsl.AppFuture
	for _, img := range paths {
		finalImgs = append(finalImgs, processImg(img))
	}
	fmt.Printf("launched %d pipelines (%d tasks) ...\n", len(finalImgs), 3*len(finalImgs))

	for i, fut := range finalImgs {
		if _, err := fut.Wait(); err != nil {
			return fmt.Errorf("image %d: %w", i, err)
		}
	}
	elapsed := time.Since(start)

	// Verify one output end to end.
	out := finalImgs[0].Outputs()[0].File().Path
	img, err := imaging.Decode(out)
	if err != nil {
		return err
	}
	b := img.Bounds()
	fmt.Printf("processed %d images in %v\n", len(finalImgs), elapsed.Round(time.Millisecond))
	fmt.Printf("first output: %s (%dx%d, mean luma %.1f)\n", out, b.Dx(), b.Dy(), imaging.MeanLuma(img))
	counts := dfk.StateCounts()
	fmt.Printf("task states: %v\n", counts)
	return nil
}
