// Quickstart reproduces the paper's Listings 1 and 2: define the Linux echo
// command as a CWL CommandLineTool, import it into Parsl as a CWLApp, invoke
// it, wait on the future, and print the output file.
//
// Run from the repository root:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/parsl"
)

// echoCWL is the paper's Listing 1.
const echoCWL = `cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
inputs:
  message:
    type: string
    default: "Hello World"
    inputBinding:
      position: 1
outputs:
  output:
    type: stdout
stdout: hello.txt
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	workDir, err := os.MkdirTemp("", "quickstart-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(workDir)

	cwlPath := filepath.Join(workDir, "echo.cwl")
	if err := os.WriteFile(cwlPath, []byte(echoCWL), 0o644); err != nil {
		return err
	}

	// parsl.load(config) — a local thread-pool configuration.
	dfk, err := parsl.Load(parsl.Config{
		Executors: []parsl.Executor{parsl.NewThreadPoolExecutor("local_threads", 4)},
		RunDir:    workDir,
	})
	if err != nil {
		return err
	}
	defer dfk.Cleanup()

	// echo = CWLApp("echo.cwl")
	echo, err := core.NewCWLApp(dfk, cwlPath)
	if err != nil {
		return err
	}
	fmt.Printf("imported %s: inputs=%v outputs=%v\n", echo.Name(), echo.InputIDs(), echo.OutputIDs())

	// future = echo(message="Hello, World!", stdout="hello.txt")
	future := echo.Call(parsl.Args{
		"message": "Hello, World!",
		"stdout":  "hello.txt",
	})

	// Wait for the future before reading the output.
	if _, err := future.Wait(); err != nil {
		return err
	}
	data, err := os.ReadFile(future.Outputs()[0].File().Path)
	if err != nil {
		return err
	}
	fmt.Printf("hello.txt: %s", data)
	return nil
}
