// Scattersweep reproduces the paper's §VI evaluation methodology at laptop
// scale: the image workflow wrapped in a scatter over a list of images,
// executed functionally by all three runner architectures — the cwltool
// model, the Toil model, and Parsl-CWL — and timed. It then prints the
// simulated Fig. 1a sweep for the paper-scale workload.
//
// Run from the repository root:
//
//	go run ./examples/scattersweep [-images 6]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cwl"
	"repro/internal/parsl"
	"repro/internal/runners/cwltoolsim"
	"repro/internal/runners/toilsim"
	"repro/internal/yamlx"
)

// scatterWF wraps the three-stage pipeline in a scatter over File[] — the
// "wrapper to process a list of images" from §VI.
const scatterWF = `cwlVersion: v1.2
class: Workflow
requirements:
  - class: ScatterFeatureRequirement
  - class: SubworkflowFeatureRequirement
  - class: StepInputExpressionRequirement
inputs:
  input_images:
    type: File[]
  size: int
  sepia: boolean
  radius: int
outputs:
  final_outputs:
    type: File[]
    outputSource: per_image/final_output
steps:
  per_image:
    run: pipeline.cwl
    scatter: input_image
    in:
      input_image: input_images
      size: size
      sepia: sepia
      radius: radius
    out: [final_output]
`

const pipelineWF = `cwlVersion: v1.2
class: Workflow
requirements:
  - class: StepInputExpressionRequirement
inputs:
  input_image: File
  size: int
  sepia: boolean
  radius: int
outputs:
  final_output:
    type: File
    outputSource: blur_image/output_image
steps:
  resize_image:
    run: resize_image.cwl
    in:
      input_image: input_image
      size: size
      output_image: {valueFrom: "resized.png"}
    out: [output_image]
  filter_image:
    run: filter_image.cwl
    in:
      input_image: resize_image/output_image
      sepia: sepia
      output_image: {valueFrom: "filtered.png"}
    out: [output_image]
  blur_image:
    run: blur_image.cwl
    in:
      input_image: filter_image/output_image
      radius: radius
      output_image: {valueFrom: "blurred.png"}
    out: [output_image]
`

const toolTemplate = `cwlVersion: v1.2
class: CommandLineTool
baseCommand: [imgtool, %s]
inputs:
  %s:
    type: %s
    inputBinding: {prefix: --%s}
  input_image:
    type: File
    inputBinding: {position: 1}
  output_image:
    type: string
    inputBinding: {position: 2}
outputs:
  output_image:
    type: File
    outputBinding:
      glob: $(inputs.output_image)
`

func main() {
	images := flag.Int("images", 6, "images in the functional sweep")
	flag.Parse()
	if err := run(*images); err != nil {
		log.Fatal(err)
	}
}

func run(nImages int) error {
	workDir, err := os.MkdirTemp("", "scattersweep-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(workDir)

	binDir := filepath.Join(workDir, "bin")
	os.MkdirAll(binDir, 0o755)
	build := exec.Command("go", "build", "-o", filepath.Join(binDir, "imgtool"), "./cmd/imgtool")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building imgtool (run from the repo root): %w", err)
	}
	os.Setenv("PATH", binDir+string(os.PathListSeparator)+os.Getenv("PATH"))

	for name, src := range map[string]string{
		"scatter.cwl":      scatterWF,
		"pipeline.cwl":     pipelineWF,
		"resize_image.cwl": fmt.Sprintf(toolTemplate, "resize", "size", "int", "size"),
		"filter_image.cwl": fmt.Sprintf(toolTemplate, "filter", "sepia", "boolean", "sepia"),
		"blur_image.cwl":   fmt.Sprintf(toolTemplate, "blur", "radius", "int", "radius"),
	} {
		if err := os.WriteFile(filepath.Join(workDir, name), []byte(src), 0o644); err != nil {
			return err
		}
	}
	paths, err := bench.GenerateImageCorpus(filepath.Join(workDir, "corpus"), nImages, 128, 3)
	if err != nil {
		return err
	}
	var fileList []any
	for _, p := range paths {
		fileList = append(fileList, p)
	}
	inputs := func() *yamlx.Map {
		return yamlx.MapOf(
			"input_images", fileList,
			"size", int64(64),
			"sepia", true,
			"radius", int64(1),
		)
	}

	doc, err := cwl.LoadFile(filepath.Join(workDir, "scatter.cwl"))
	if err != nil {
		return err
	}
	wf := doc.(*cwl.Workflow)
	par := runtime.NumCPU()

	fmt.Printf("functional sweep: %d images × 3 stages on %d workers\n\n", nImages, par)

	// cwltool architecture.
	t0 := time.Now()
	ctr := &cwltoolsim.Runner{Parallelism: par, WorkRoot: filepath.Join(workDir, "cwltool")}
	if _, err := ctr.RunDocument(wf, inputs()); err != nil {
		return fmt.Errorf("cwltool runner: %w", err)
	}
	fmt.Printf("%-14s %8v  (steps: %d)\n", "cwltool-arch", time.Since(t0).Round(time.Millisecond), ctr.StepsRun())

	// Toil architecture.
	t0 = time.Now()
	toil := &toilsim.Runner{Parallelism: par, WorkRoot: filepath.Join(workDir, "toil"),
		JobStoreDir: filepath.Join(workDir, "jobstore")}
	if _, err := toil.RunDocument(wf, inputs()); err != nil {
		return fmt.Errorf("toil runner: %w", err)
	}
	fmt.Printf("%-14s %8v  (batch jobs: %d)\n", "toil-arch", time.Since(t0).Round(time.Millisecond), toil.JobsSubmitted())

	// Parsl-CWL.
	t0 = time.Now()
	dfk, err := parsl.Load(parsl.Config{
		Executors: []parsl.Executor{parsl.NewThreadPoolExecutor("threads", par)},
		RunDir:    filepath.Join(workDir, "parsl"),
	})
	if err != nil {
		return err
	}
	r := core.NewRunner(dfk)
	if _, err := r.Run(wf, inputs()); err != nil {
		return fmt.Errorf("parsl runner: %w", err)
	}
	dfk.Cleanup()
	fmt.Printf("%-14s %8v  (tasks: %v)\n\n", "parsl-cwl", time.Since(t0).Round(time.Millisecond), dfk.StateCounts())

	// Paper-scale simulated sweep (Fig. 1a).
	series, err := bench.Fig1a()
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatSeries("simulated paper-scale sweep (Fig. 1a)", "images", "seconds", series))
	return nil
}
