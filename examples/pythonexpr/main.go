// Pythonexpr reproduces the paper's §V examples: InlinePythonRequirement
// embedding Python in CWL documents.
//
//   - Listing 5: an echo tool whose argument calls a Python function
//     (capitalize_words) through an f-string call site.
//   - Listing 6: a cat tool whose input carries a validate: field that
//     rejects non-CSV files before execution.
//
// Run from the repository root:
//
//	go run ./examples/pythonexpr
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/parsl"
)

// capitalizeCWL is the paper's Listing 5.
const capitalizeCWL = `cwlVersion: v1.2
class: CommandLineTool
requirements:
  - class: InlinePythonRequirement
    expressionLib:
      - |
        def capitalize_words(message):
            """
            Capitalize each word in the given message.
            """
            return message.title()
baseCommand: echo
inputs:
  message:
    type: string
arguments:
  - f"{capitalize_words($(inputs.message))}"
outputs:
  out:
    type: stdout
stdout: capitalized.txt
`

// validateCWL is the paper's Listing 6.
const validateCWL = `cwlVersion: v1.2
class: CommandLineTool
requirements:
  - class: InlinePythonRequirement
    expressionLib:
      - |
        def valid_file(file, ext):
            """
            Check if a file is valid.
            """
            if not file.lower().endswith(ext):
                raise Exception(f"Invalid file. Expected '{ext}'")
baseCommand: cat
inputs:
  data_file:
    type: File
    validate: |
      f"{valid_file($(inputs.data_file), '.csv')}"
    inputBinding:
      position: 1
outputs:
  validated_output:
    type: stdout
stdout: validated.txt
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	workDir, err := os.MkdirTemp("", "pythonexpr-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(workDir)

	capPath := filepath.Join(workDir, "capitalize.cwl")
	valPath := filepath.Join(workDir, "validate.cwl")
	os.WriteFile(capPath, []byte(capitalizeCWL), 0o644)
	os.WriteFile(valPath, []byte(validateCWL), 0o644)

	csvPath := filepath.Join(workDir, "data.csv")
	os.WriteFile(csvPath, []byte("city,population\nchicago,2697000\n"), 0o644)
	txtPath := filepath.Join(workDir, "notes.txt")
	os.WriteFile(txtPath, []byte("not a csv\n"), 0o644)

	dfk, err := parsl.Load(parsl.Config{
		Executors: []parsl.Executor{parsl.NewThreadPoolExecutor("threads", 2)},
		RunDir:    workDir,
	})
	if err != nil {
		return err
	}
	defer dfk.Cleanup()

	// Listing 5: the InlinePython f-string computes the echo argument.
	capitalize, err := core.NewCWLApp(dfk, capPath)
	if err != nil {
		return err
	}
	fut := capitalize.Call(parsl.Args{"message": "common workflow language meets parsl"})
	if _, err := fut.Wait(); err != nil {
		return err
	}
	out, _ := os.ReadFile(fut.Outputs()[0].File().Path)
	fmt.Printf("Listing 5 — capitalize_words: %s", out)

	// Listing 6: validate accepts the CSV...
	validate, err := core.NewCWLApp(dfk, valPath)
	if err != nil {
		return err
	}
	ok := validate.Call(parsl.Args{"data_file": csvPath})
	if _, err := ok.Wait(); err != nil {
		return fmt.Errorf("csv unexpectedly rejected: %w", err)
	}
	fmt.Printf("Listing 6 — %s accepted by valid_file\n", filepath.Base(csvPath))

	// ... and rejects the text file before the command ever runs.
	bad := validate.Call(parsl.Args{"data_file": txtPath})
	if _, err := bad.Wait(); err != nil {
		fmt.Printf("Listing 6 — %s rejected: %v\n", filepath.Base(txtPath), err)
		return nil
	}
	return fmt.Errorf("validation should have rejected %s", txtPath)
}
