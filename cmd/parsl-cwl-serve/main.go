// Command parsl-cwl-serve runs the workflow submission service: an HTTP API
// that accepts CWL documents and executes them as concurrent runs over one
// shared Parsl DataFlowKernel.
//
//	parsl-cwl-serve -addr :8080 -config config.yml -workers 8 -data-dir /var/lib/parsl-cwl
//
//	curl -s localhost:8080/runs -d '{"cwl": "...", "inputs": {"message": "hi"}}'
//	curl -s localhost:8080/runs/run-000001?wait=1
//	curl -s localhost:8080/healthz   # load, cache, persistence, executor stats
//
// The executor configuration uses the same TaPS-style YAML as the parsl-cwl
// command; without -config a thread-pool executor sized to the machine is
// started. /healthz reports per-executor health — outstanding tasks, live
// workers, and for HTEX the connected managers plus lost/scaled-in block and
// re-dispatched task counters — so operators can watch elasticity and fault
// recovery live.
//
// With -data-dir the service is durable: run lifecycle transitions and task
// memoization results are journaled to an fsync-batched write-ahead log and
// periodically compacted (-checkpoint-period) into snapshots. After a crash,
// restarting against the same -data-dir restores run history, re-enqueues
// runs that were queued or running, and reloads the memo table so completed
// steps of an interrupted workflow are memo hits rather than re-executions.
// /healthz gains a "persistence" section (journal size, last snapshot,
// restored-run counts); -no-persist disables all of it. The journal is
// partitioned into -wal-shards independent write-ahead logs so concurrent
// runs do not serialize on one fsync queue.
//
// With -tenant-config the service is multi-tenant: requests authenticate
// with per-tenant API keys (Authorization: Bearer), the scheduler fair-shares
// capacity by tenant weight, per-tenant quotas (queue depth, concurrency,
// CPU seconds) are enforced at admission, and -result-cache shares whole-run
// results across tenants submitting identical work. See docs/TENANCY.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/parsl"
	"repro/internal/service"
	"repro/internal/tenant"
)

type serveConfig struct {
	addr             string
	configPath       string
	workers          int
	queueDepth       int
	maxInFlight      int
	taskWalltime     time.Duration
	maxRedispatch    int
	cacheSize        int
	cacheBytes       int64
	workDir          string
	dataDir          string
	checkpointPeriod time.Duration
	noPersist        bool
	walShards        int
	tenantConfig     string
	resultCache      int
	providers        string
	workerCmd        string
	netListen        string
	netSecret        string
	netCert          string
	netKey           string
	netSpawn         bool
	batchMax         int
	batchLinger      time.Duration
	dispatchCodec    string
	warmPool         int
	metrics          bool
	pprofAddr        string
	logFormat        string
}

func parseFlags(args []string, stderr io.Writer) (serveConfig, error) {
	fs := flag.NewFlagSet("parsl-cwl-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := serveConfig{}
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.StringVar(&cfg.configPath, "config", "", "TaPS-style Parsl executor config (YAML)")
	fs.IntVar(&cfg.workers, "workers", 8, "concurrent workflow runs")
	fs.IntVar(&cfg.queueDepth, "queue", 64, "max queued runs before 429 backpressure")
	fs.IntVar(&cfg.maxInFlight, "max-inflight", 0, "max queued+running runs before submissions are shed with 429 (0 = queue limit only)")
	fs.DurationVar(&cfg.taskWalltime, "task-walltime", 0, "default per-task walltime, ToolTimeLimit style (0 = unbounded; CWL ToolTimeLimit and the submit body's walltimeSeconds still apply)")
	fs.IntVar(&cfg.maxRedispatch, "max-redispatch", 0, "worker-loss re-dispatches per task before poison-task quarantine (0 = default 3, negative = unbounded)")
	fs.IntVar(&cfg.cacheSize, "cache", 128, "parsed-document cache capacity (entries)")
	fs.Int64Var(&cfg.cacheBytes, "cache-bytes", 0, "parsed-document cache byte cap (0 = 64 MiB default, negative = unbounded)")
	fs.StringVar(&cfg.workDir, "work-dir", "", "root for per-run job directories (default: <data-dir>/work, else executor run dir)")
	fs.StringVar(&cfg.dataDir, "data-dir", "", "directory for the run journal and checkpoints; enables durable, crash-resumable runs")
	fs.DurationVar(&cfg.checkpointPeriod, "checkpoint-period", 30*time.Second, "how often the journal is compacted into a snapshot")
	fs.BoolVar(&cfg.noPersist, "no-persist", false, "disable persistence even when -data-dir is set")
	fs.IntVar(&cfg.walShards, "wal-shards", 0, "independent WAL shards under -data-dir, keyed by run-ID hash (0 = default 4; an existing unsharded data dir is kept as-is)")
	fs.StringVar(&cfg.tenantConfig, "tenant-config", "", "YAML tenant registry (API keys, fair-share weights, quotas); enables multi-tenant mode")
	fs.IntVar(&cfg.resultCache, "result-cache", 1024, "shared cross-tenant whole-run result cache capacity (entries; 0 disables result sharing)")
	fs.StringVar(&cfg.providers, "provider", "", "execution providers to offer, comma-separated (local|process|sim|net); first is the default; runs pin one via the submit body's \"provider\" field")
	fs.StringVar(&cfg.workerCmd, "worker-cmd", "", "worker command line for the process and net providers (default: parsl-cwl-worker next to this binary or on PATH)")
	fs.StringVar(&cfg.netListen, "net-listen", "", "net provider interchange listen address (default 127.0.0.1:0)")
	fs.StringVar(&cfg.netSecret, "net-secret", os.Getenv("PCWL_NET_SECRET"), "shared secret net workers must present (default $PCWL_NET_SECRET; empty disables authentication)")
	fs.StringVar(&cfg.netCert, "net-cert", "", "TLS certificate (PEM) for the interchange listener")
	fs.StringVar(&cfg.netKey, "net-key", "", "TLS private key (PEM) for the interchange listener")
	fs.BoolVar(&cfg.netSpawn, "net-spawn", true, "spawn a local parsl-cwl-worker -connect per net block (disable when remote workers dial in)")
	fs.IntVar(&cfg.batchMax, "batch-max", 0, "max tasks coalesced per dispatch frame for process/net providers (0 = default 64, 1 = no batching)")
	fs.DurationVar(&cfg.batchLinger, "batch-linger", 0, "how long a dispatch frame waits for more tasks before flushing (0 = flush immediately)")
	fs.StringVar(&cfg.dispatchCodec, "dispatch-codec", "", "wire codec for process/net workers: binary (default) or json")
	fs.IntVar(&cfg.warmPool, "warm-pool", 0, "pre-started spare workers kept ready per process/net provider (0 disables)")
	fs.BoolVar(&cfg.metrics, "metrics", true, "serve Prometheus text exposition on GET /metrics")
	fs.StringVar(&cfg.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this separate address (e.g. 127.0.0.1:6060); empty disables")
	fs.StringVar(&cfg.logFormat, "log-format", "text", "log format: text or json (structured, with run IDs attached)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if fs.NArg() != 0 {
		return cfg, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.logFormat != "text" && cfg.logFormat != "json" {
		return cfg, fmt.Errorf("invalid -log-format %q (want text or json)", cfg.logFormat)
	}
	if cfg.noPersist {
		cfg.dataDir = ""
	}
	return cfg, nil
}

// newLogger builds the process logger from -log-format. JSON output is one
// structured record per line, with run IDs attached by the service.
func newLogger(format string, w io.Writer) *slog.Logger {
	if format == "json" {
		return slog.New(slog.NewJSONHandler(w, nil))
	}
	return slog.New(slog.NewTextHandler(w, nil))
}

// newService builds the DFK and service from the parsed configuration.
func newService(cfg serveConfig, logger *slog.Logger) (*parsl.DFK, *service.Service, error) {
	spec := parsl.DefaultConfigSpec()
	if cfg.configPath != "" {
		loaded, err := parsl.LoadConfigFile(cfg.configPath)
		if err != nil {
			return nil, nil, err
		}
		spec = loaded
	}
	if cfg.dataDir != "" {
		// Durable runs depend on the memo table: crash resume re-executes
		// interrupted runs, and restored memo entries are what make that
		// re-execution cheap and consistent.
		spec.Memoize = true
		if cfg.workDir == "" {
			// Job directories must survive restarts alongside the journal —
			// restored memo results reference files inside them.
			cfg.workDir = filepath.Join(cfg.dataDir, "work")
		}
	}
	if cfg.workerCmd != "" {
		spec.WorkerCmd = cfg.workerCmd
	}
	if cfg.taskWalltime != 0 {
		spec.TaskWalltime = cfg.taskWalltime
	}
	if cfg.maxRedispatch != 0 {
		spec.MaxRedispatch = cfg.maxRedispatch
	}
	if cfg.netListen != "" {
		spec.NetListen = cfg.netListen
	}
	if cfg.netSecret != "" {
		spec.NetSecret = cfg.netSecret
	}
	if cfg.netCert != "" || cfg.netKey != "" {
		spec.NetCertFile = cfg.netCert
		spec.NetKeyFile = cfg.netKey
	}
	if !cfg.netSpawn {
		spec.NetSpawn = false
	}
	if cfg.batchMax != 0 {
		spec.BatchMax = cfg.batchMax
	}
	if cfg.batchLinger != 0 {
		spec.BatchLinger = cfg.batchLinger
	}
	if cfg.dispatchCodec != "" {
		spec.DispatchCodec = cfg.dispatchCodec
	}
	if cfg.warmPool != 0 {
		spec.WarmPool = cfg.warmPool
	}
	var (
		pcfg           parsl.Config
		providerLabels map[string]string
		err            error
	)
	if cfg.providers != "" {
		// Multi-backend mode: one HTEX per requested provider; a run pins one
		// via the submit body, the first named provider is the default.
		var names []string
		for _, n := range strings.Split(cfg.providers, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		spec.Executor = "htex"
		pcfg, providerLabels, err = spec.BuildMulti(names)
	} else {
		pcfg, err = spec.Build()
	}
	if err != nil {
		return nil, nil, err
	}
	var tenants *tenant.Registry
	if cfg.tenantConfig != "" {
		if tenants, err = tenant.Load(cfg.tenantConfig); err != nil {
			return nil, nil, err
		}
	}
	dfk, err := parsl.Load(pcfg)
	if err != nil {
		return nil, nil, err
	}
	svc, err := service.New(dfk, service.Options{
		Workers:           cfg.workers,
		QueueDepth:        cfg.queueDepth,
		MaxInFlight:       cfg.maxInFlight,
		CacheSize:         cfg.cacheSize,
		CacheBytes:        cfg.cacheBytes,
		WorkRoot:          cfg.workDir,
		DataDir:           cfg.dataDir,
		CheckpointPeriod:  cfg.checkpointPeriod,
		WALShards:         cfg.walShards,
		ProviderExecutors: providerLabels,
		DisableMetrics:    !cfg.metrics,
		Tenants:           tenants,
		ResultCacheSize:   cfg.resultCache,
		Logger:            logger,
	})
	if err != nil {
		dfk.Cleanup()
		return nil, nil, err
	}
	return dfk, svc, nil
}

func run(args []string, stdout, stderr io.Writer) error {
	cfg, err := parseFlags(args, stderr)
	if err != nil {
		return err
	}
	logger := newLogger(cfg.logFormat, stderr)
	dfk, svc, err := newService(cfg, logger)
	if err != nil {
		return err
	}
	defer dfk.Cleanup()

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}

	// pprof rides on its own listener and its own mux — never the API mux and
	// never http.DefaultServeMux — so profiling endpoints are opt-in and can
	// be bound to loopback while the API is public.
	if cfg.pprofAddr != "" {
		pln, err := net.Listen("tcp", cfg.pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofServer := &http.Server{Handler: pm, ReadHeaderTimeout: 10 * time.Second}
		defer pprofServer.Close()
		go func() { _ = pprofServer.Serve(pln) }()
		fmt.Fprintf(stdout, "pprof listening on http://%s/debug/pprof/\n", pln.Addr())
	}
	server := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	var executors []string
	for _, es := range dfk.ExecutorStats() {
		executors = append(executors, es.Label)
	}
	if p := svc.Stats().Persistence; p != nil {
		fmt.Fprintf(stdout, "durable runs: journal in %s (%d restored, %d re-enqueued, %d memo entries)\n",
			p.Dir, p.RestoredRuns, p.ResubmittedRuns, p.RestoredMemo)
	}
	fmt.Fprintf(stdout, "parsl-cwl-serve listening on http://%s (%d workers, queue %d, executors %s)\n",
		ln.Addr(), cfg.workers, cfg.queueDepth, strings.Join(executors, ","))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "shutting down: draining in-flight runs")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := svc.Close(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "parsl-cwl-serve:", err)
		os.Exit(1)
	}
}
