package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestHelperServe is not a real test: when re-executed with
// PARSL_CWL_SERVE_HELPER=1 it runs the server binary's main loop, so the
// resilience test below can kill -9 a genuine child process.
func TestHelperServe(t *testing.T) {
	if os.Getenv("PARSL_CWL_SERVE_HELPER") != "1" {
		t.Skip("helper process for TestKillNineResume")
	}
	args := strings.Split(os.Getenv("PARSL_CWL_SERVE_ARGS"), "\x1f")
	if err := run(args, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// startServer re-executes the test binary as a parsl-cwl-serve process and
// returns it with its base URL once it is listening.
func startServer(t *testing.T, dataDir string) (*exec.Cmd, string) {
	t.Helper()
	// Two WAL shards: the kill -9 cycle below also proves the sharded journal
	// layout replays correctly after a crash.
	args := []string{"-addr", "127.0.0.1:0", "-data-dir", dataDir, "-workers", "2", "-wal-shards", "2"}
	cmd := exec.Command(os.Args[0], "-test.run", "TestHelperServe")
	cmd.Env = append(os.Environ(),
		"PARSL_CWL_SERVE_HELPER=1",
		"PARSL_CWL_SERVE_ARGS="+strings.Join(args, "\x1f"),
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	addr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on http://"); i >= 0 {
				addr <- strings.Fields(line[i+len("listening on "):])[0]
			}
		}
	}()
	select {
	case url := <-addr:
		return cmd, url
	case <-time.After(20 * time.Second):
		t.Fatal("server never reported its listen address")
		return nil, ""
	}
}

func postRun(t *testing.T, base string, body map[string]any) map[string]any {
	t.Helper()
	data, _ := json.Marshal(body)
	resp, err := http.Post(base+"/runs", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /runs: %d %v", resp.StatusCode, out)
	}
	return out
}

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return out
}

// eventStates fetches the run's task-event state names.
func eventStates(t *testing.T, base, id string) []string {
	t.Helper()
	out := getJSON(t, base+"/runs/"+id+"/events")
	evs, _ := out["events"].([]any)
	states := make([]string, 0, len(evs))
	for _, e := range evs {
		if m, ok := e.(map[string]any); ok {
			if s, ok := m["state"].(string); ok {
				states = append(states, s)
			}
		}
	}
	return states
}

// TestKillNineResume is the durability acceptance test: kill -9 a
// parsl-cwl-serve mid-workflow, restart it against the same -data-dir, and
// observe (1) prior completed runs listed, (2) the interrupted run
// re-executed to success with at least one memo-hit task event, and (3) no
// duplicate run IDs.
func TestKillNineResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real server processes")
	}
	dataDir := t.TempDir()

	srv1, base := startServer(t, dataDir)

	// A quick run that completes before the crash: it must survive as
	// history.
	quickTool := `cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
stdout: quick.txt
inputs:
  message: {type: string, inputBinding: {position: 1}}
outputs:
  output: {type: stdout}
`
	quick := postRun(t, base, map[string]any{"cwl": quickTool, "inputs": map[string]any{"message": "survivor"}, "name": "quick"})
	quickID := quick["id"].(string)
	done := getJSON(t, base+"/runs/"+quickID+"?wait=1")
	if done["state"] != "succeeded" {
		t.Fatalf("quick run = %v", done)
	}

	// A two-step workflow: fast step, then a step that sleeps long enough to
	// be interrupted.
	slowWF := `cwlVersion: v1.2
class: Workflow
inputs:
  message: string
outputs:
  final:
    type: File
    outputSource: slow/output
steps:
  greet:
    run:
      class: CommandLineTool
      baseCommand: echo
      stdout: greet.txt
      inputs:
        message: {type: string, inputBinding: {position: 1}}
      outputs:
        output: {type: stdout}
    in: {message: message}
    out: [output]
  slow:
    run:
      class: CommandLineTool
      baseCommand: [sh, -c]
      arguments: ["sleep 4; cat \"$0\""]
      stdout: slow.txt
      inputs:
        infile: {type: File, inputBinding: {position: 1}}
      outputs:
        output: {type: stdout}
    in: {infile: greet/output}
    out: [output]
`
	wf := postRun(t, base, map[string]any{"cwl": slowWF, "inputs": map[string]any{"message": "durable"}, "name": "interrupted"})
	wfID := wf["id"].(string)

	// Wait until the first step has finished (its memo record is then in the
	// journal) while the second still sleeps.
	deadline := time.Now().Add(15 * time.Second)
	for {
		states := eventStates(t, base, wfID)
		execDone := 0
		for _, s := range states {
			if s == "exec_done" {
				execDone++
			}
		}
		if execDone >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first step never completed; states = %v", states)
		}
		time.Sleep(50 * time.Millisecond)
	}
	time.Sleep(300 * time.Millisecond) // journal writes reach the OS

	// The crash.
	if err := srv1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	srv1.Wait()

	// The resurrection.
	_, base2 := startServer(t, dataDir)

	runsOut := getJSON(t, base2+"/runs")
	runs, _ := runsOut["runs"].([]any)
	seen := map[string]bool{}
	var quickRestored map[string]any
	for _, r := range runs {
		m := r.(map[string]any)
		id := m["id"].(string)
		if seen[id] {
			t.Errorf("duplicate run ID %s in restored listing", id)
		}
		seen[id] = true
		if id == quickID {
			quickRestored = m
		}
	}
	if quickRestored == nil {
		t.Fatalf("completed run %s missing after restart; runs = %v", quickID, runsOut)
	}
	if quickRestored["state"] != "succeeded" || quickRestored["restored"] != true {
		t.Errorf("restored quick run = %v", quickRestored)
	}
	if !seen[wfID] {
		t.Fatalf("interrupted run %s missing after restart", wfID)
	}

	// The interrupted run must re-execute to success...
	final := getJSON(t, base2+"/runs/"+wfID+"?wait=1")
	if final["state"] != "succeeded" {
		t.Fatalf("re-executed run = %v", final)
	}
	// ...with the completed first step served from the restored memo table.
	states := eventStates(t, base2, wfID)
	memoHits := 0
	for _, s := range states {
		if s == "memo_done" {
			memoHits++
		}
	}
	if memoHits < 1 {
		t.Errorf("re-execution had no memo-hit events; states = %v", states)
	}

	// New submissions keep the ID sequence moving: no collisions with
	// restored runs.
	fresh := postRun(t, base2, map[string]any{"cwl": quickTool, "inputs": map[string]any{"message": "post-crash"}})
	if seen[fresh["id"].(string)] {
		t.Errorf("fresh run reused restored ID %s", fresh["id"])
	}
	getJSON(t, base2+"/runs/"+fresh["id"].(string)+"?wait=1")

	// The healthz persistence section reports the recovery.
	health := getJSON(t, base2+"/healthz")
	stats, _ := health["stats"].(map[string]any)
	pers, _ := stats["persistence"].(map[string]any)
	if pers == nil {
		t.Fatalf("healthz has no persistence section: %v", health)
	}
	if n, _ := pers["resubmittedRuns"].(float64); n < 1 {
		t.Errorf("persistence stats = %v", pers)
	}
	if n, _ := pers["shards"].(float64); n != 2 {
		t.Errorf("persistence shards = %v, want 2", pers["shards"])
	}

	// The journal really is partitioned on disk: both shard directories exist
	// and at least one holds WAL segments (run records spread by ID hash).
	walFiles := 0
	for i := 0; i < 2; i++ {
		shardDir := filepath.Join(dataDir, fmt.Sprintf("shard-%02d", i))
		entries, err := os.ReadDir(shardDir)
		if err != nil {
			t.Fatalf("shard dir missing: %v", err)
		}
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".jsonl") {
				walFiles++
			}
		}
	}
	if walFiles == 0 {
		t.Error("no WAL segments found in any shard directory")
	}
}
