package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-workers", "3", "-queue", "5"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != "127.0.0.1:0" || cfg.workers != 3 || cfg.queueDepth != 5 {
		t.Errorf("cfg = %+v", cfg)
	}
	if _, err := parseFlags([]string{"stray"}, io.Discard); err == nil {
		t.Error("stray positional argument accepted")
	}
	if _, err := parseFlags([]string{"-no-such-flag"}, io.Discard); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestParseFlagsObservability(t *testing.T) {
	cfg, err := parseFlags(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.metrics || cfg.pprofAddr != "" || cfg.logFormat != "text" {
		t.Errorf("defaults: %+v", cfg)
	}
	cfg, err = parseFlags([]string{"-metrics=false", "-pprof-addr", "127.0.0.1:0", "-log-format", "json"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.metrics || cfg.pprofAddr != "127.0.0.1:0" || cfg.logFormat != "json" {
		t.Errorf("cfg = %+v", cfg)
	}
	if _, err := parseFlags([]string{"-log-format", "xml"}, io.Discard); err == nil {
		t.Error("invalid -log-format accepted")
	}
}

func TestNewLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	newLogger("json", &buf).Info("run started", "runId", "run-000001")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json log line did not parse: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "run started" || rec["runId"] != "run-000001" {
		t.Errorf("record = %v", rec)
	}
	buf.Reset()
	newLogger("text", &buf).Info("hello")
	if !strings.Contains(buf.String(), "msg=hello") {
		t.Errorf("text log = %q", buf.String())
	}
}

func TestNewServiceFromConfigAndServe(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "config.yml")
	if err := os.WriteFile(cfgPath, []byte("executor: thread-pool\nworkers-per-node: 4\nrun-dir: "+dir+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dfk, svc, err := newService(serveConfig{configPath: cfgPath, workers: 2, queueDepth: 8, cacheSize: 4, metrics: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		svc.Close(context.Background())
		dfk.Cleanup()
	}()

	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Stats struct {
			Executors []struct {
				Label   string `json:"label"`
				Workers int    `json:"workers"`
			} `json:"executors"`
		} `json:"stats"`
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(health.Stats.Executors) != 1 || health.Stats.Executors[0].Label != "threads" ||
		health.Stats.Executors[0].Workers != 4 {
		t.Fatalf("healthz executor stats = %+v", health.Stats.Executors)
	}

	payload, _ := json.Marshal(map[string]any{
		"cwl": `cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
inputs:
  message: {type: string, inputBinding: {position: 1}}
outputs:
  output: {type: stdout}
stdout: out.txt
`,
		"inputs": map[string]any{"message": "served"},
	})
	resp, err = http.Post(srv.URL+"/runs", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var run struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/runs/" + run.ID + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	var final struct {
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if final.State != "succeeded" {
		t.Fatalf("state = %q error %q", final.State, final.Error)
	}
}

func TestNewServiceBadConfig(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.yml")
	if err := os.WriteFile(bad, []byte("executor: spark\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := newService(serveConfig{configPath: bad}, nil); err == nil || !strings.Contains(err.Error(), "executor") {
		t.Errorf("error = %v, want unknown-executor", err)
	}
	if _, _, err := newService(serveConfig{configPath: filepath.Join(dir, "missing.yml")}, nil); err == nil {
		t.Error("missing config file accepted")
	}
}
