package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleProfile = `mode: atomic
repro/internal/persist/persist.go:10.2,12.3 3 5
repro/internal/persist/persist.go:14.2,16.3 2 0
repro/internal/service/store.go:20.2,22.3 4 1
repro/internal/service/http.go:30.2,31.3 1 0
`

func TestParseProfileAggregatesPerPackage(t *testing.T) {
	pkgs, err := parseProfile(strings.NewReader(sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	p := pkgs["repro/internal/persist"]
	if p == nil || p.total != 5 || p.covered != 3 {
		t.Fatalf("persist = %+v, want 3/5", p)
	}
	s := pkgs["repro/internal/service"]
	if s == nil || s.total != 5 || s.covered != 4 {
		t.Fatalf("service = %+v, want 4/5", s)
	}
	if got := p.percent(); got != 60 {
		t.Errorf("persist percent = %v, want 60", got)
	}
}

func TestParseProfileRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "mode: atomic\n", "not a profile line\n"} {
		if _, err := parseProfile(strings.NewReader(in)); err == nil {
			t.Errorf("%q accepted", in)
		}
	}
}

func TestRunEnforcesFloors(t *testing.T) {
	dir := t.TempDir()
	profile := filepath.Join(dir, "coverage.out")
	if err := os.WriteFile(profile, []byte(sampleProfile), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	// 60% persist coverage passes a 50 floor, fails a 70 floor.
	if err := run([]string{"-profile", profile, "-floor", "repro/internal/persist=50"}, &out, io.Discard); err != nil {
		t.Errorf("floor 50 failed: %v\n%s", err, out.String())
	}
	if err := run([]string{"-profile", profile, "-floor", "repro/internal/persist=70"}, io.Discard, io.Discard); err == nil {
		t.Error("floor 70 passed at 60% coverage")
	}
	// A floored package with no data fails loudly.
	if err := run([]string{"-profile", profile, "-floor", "repro/internal/nonexistent=10"}, io.Discard, io.Discard); err == nil {
		t.Error("missing floored package passed")
	}
	// Malformed floor flag.
	if err := run([]string{"-profile", profile, "-floor", "nope"}, io.Discard, io.Discard); err == nil {
		t.Error("malformed -floor accepted")
	}
}
