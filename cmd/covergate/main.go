// Command covergate enforces per-package coverage floors in CI: it parses a
// `go test -coverprofile` file, aggregates statement coverage per package,
// prints a summary, and fails when a floored package is below its floor.
//
//	go test -coverprofile=coverage.out ./...
//	covergate -profile coverage.out \
//	    -floor repro/internal/persist=80 -floor repro/internal/service=70
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// pkgCoverage accumulates statement counts for one package.
type pkgCoverage struct {
	total   int
	covered int
}

func (p pkgCoverage) percent() float64 {
	if p.total == 0 {
		return 0
	}
	return 100 * float64(p.covered) / float64(p.total)
}

// parseProfile aggregates a coverprofile by package directory. Profile lines
// look like:
//
//	repro/internal/persist/persist.go:121.33,124.2 2 1
//
// where the trailing fields are the statement count and the hit count.
func parseProfile(r io.Reader) (map[string]*pkgCoverage, error) {
	out := map[string]*pkgCoverage{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "mode:") {
			continue
		}
		file, rest, ok := strings.Cut(text, ":")
		if !ok {
			return nil, fmt.Errorf("line %d: malformed %q", line, text)
		}
		fields := strings.Fields(rest)
		if len(fields) != 3 {
			return nil, fmt.Errorf("line %d: malformed %q", line, text)
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("line %d: statement count: %w", line, err)
		}
		hits, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("line %d: hit count: %w", line, err)
		}
		pkg := path.Dir(file)
		pc := out[pkg]
		if pc == nil {
			pc = &pkgCoverage{}
			out[pkg] = pc
		}
		pc.total += stmts
		if hits > 0 {
			pc.covered += stmts
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no coverage data found")
	}
	return out, nil
}

// floorList collects repeated -floor pkg=pct flags.
type floorList map[string]float64

func (f floorList) String() string { return fmt.Sprint(map[string]float64(f)) }

func (f floorList) Set(s string) error {
	pkg, pct, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want pkg=percent, got %q", s)
	}
	v, err := strconv.ParseFloat(pct, 64)
	if err != nil {
		return fmt.Errorf("percent in %q: %w", s, err)
	}
	f[pkg] = v
	return nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("covergate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	profilePath := fs.String("profile", "coverage.out", "coverprofile to check (- reads stdin)")
	floors := floorList{}
	fs.Var(floors, "floor", "pkg=percent floor (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var in io.Reader = os.Stdin
	if *profilePath != "-" {
		f, err := os.Open(*profilePath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	pkgs, err := parseProfile(in)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(pkgs))
	for n := range pkgs {
		names = append(names, n)
	}
	sort.Strings(names)
	var failures []string
	for _, n := range names {
		pc := pkgs[n]
		mark := " "
		if floor, ok := floors[n]; ok {
			if pc.percent() < floor {
				mark = "✗"
				failures = append(failures, fmt.Sprintf("%s: %.1f%% < floor %.1f%%", n, pc.percent(), floor))
			} else {
				mark = "✓"
			}
		}
		fmt.Fprintf(stdout, "%s %-50s %6.1f%% (%d/%d statements)\n", mark, n, pc.percent(), pc.covered, pc.total)
	}
	for pkg := range floors {
		if _, ok := pkgs[pkg]; !ok {
			failures = append(failures, fmt.Sprintf("%s: floored package has no coverage data", pkg))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("coverage floors not met:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintln(stdout, "coverage gate passed")
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(1)
	}
}
