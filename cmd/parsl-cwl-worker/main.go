// Command parsl-cwl-worker is the process-isolated execution endpoint of the
// Parsl+CWL engine's ProcessProvider. The engine launches one worker per
// pilot block and speaks a length-prefixed JSON protocol over the worker's
// stdin/stdout:
//
//	frame   = 4-byte big-endian length + JSON body
//	worker → engine:  {"proto":1,"pid":...}            (hello, once)
//	engine → worker:  {"id":N,"spec":{"kind":...}}     (run request)
//	worker → engine:  {"id":N,"ok":...,"result":...}   (one per request,
//	                                                    completion order)
//
// Requests execute concurrently; closing stdin asks the worker to drain and
// exit. The worker is stateless between tasks — a crash (segfault, OOM kill,
// scancel) costs only the tasks in flight on it, which the engine detects
// via the broken pipe and re-dispatches to another block.
//
// This binary is not meant to be run by hand; stdout belongs to the
// protocol. Diagnostics go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/provider"
)

func main() {
	printVersion := flag.Bool("version", false, "print the protocol version and exit")
	flag.Parse()
	if *printVersion {
		fmt.Printf("parsl-cwl-worker protocol %d\n", provider.ProtoVersion)
		return
	}
	if err := provider.RunWorker(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "parsl-cwl-worker:", err)
		os.Exit(1)
	}
}
