// Command parsl-cwl-worker is the execution endpoint of the Parsl+CWL
// engine's out-of-process providers. It speaks the worker session protocol —
// 4-byte big-endian length-prefixed JSON frames, a versioned hello/ack
// handshake, concurrent run requests with responses in completion order, and
// heartbeat/drain/bye session frames — over one of two transports:
//
//   - Pipe mode (default): the engine's ProcessProvider launched this worker
//     and owns its stdin/stdout. Closing stdin asks the worker to drain and
//     exit. stdout belongs to the protocol; diagnostics go to stderr.
//   - Network mode (-connect host:port): the worker dials the engine's
//     interchange listener, optionally over TLS, registers with an identity
//     and the shared secret, and serves tasks until the engine drains it
//     (reconnecting on broken connections unless -reconnect=false).
//
// In both modes SIGTERM/SIGINT triggers a graceful drain: in-flight tasks
// finish, their responses are sent, the worker deregisters with a bye frame
// and exits 0. The worker is stateless between tasks — a crash costs only
// the tasks in flight on it, which the engine re-dispatches.
package main

import (
	"crypto/tls"
	"crypto/x509"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/fabric"
	"repro/internal/provider"
)

func main() {
	printVersion := flag.Bool("version", false, "print the protocol version and exit")
	connect := flag.String("connect", "", "dial this interchange address instead of serving on stdin/stdout")
	secret := flag.String("secret", os.Getenv("PCWL_NET_SECRET"),
		"shared secret for the interchange (default $PCWL_NET_SECRET)")
	id := flag.String("id", "", "worker identity announced to the interchange (default host-pid derived)")
	capacity := flag.Int("capacity", 0, "advisory concurrent-task capacity announced to the interchange")
	useTLS := flag.Bool("tls", false, "dial the interchange over TLS using the system trust roots")
	tlsCA := flag.String("tls-ca", "", "PEM file to trust for the interchange's TLS certificate (implies TLS)")
	tlsServerName := flag.String("tls-server-name", "", "expected TLS server name (default: the -connect host)")
	tlsInsecure := flag.Bool("tls-insecure", false, "dial TLS without verifying the server certificate (implies TLS; testing only)")
	reconnect := flag.Bool("reconnect", true, "redial the interchange when the connection breaks (network mode)")
	reconnectWait := flag.Duration("reconnect-wait", 0, "initial delay between redial attempts, doubling to 30s with ±25% jitter (0 = default 1s)")
	maxAttempts := flag.Int("max-attempts", 0, "consecutive failed sessions before giving up when reconnecting (0 = unlimited)")
	noBatch := flag.Bool("no-batch", false, "do not offer the batched-frames capability (debugging; forces one frame per task)")
	codec := flag.String("codec", "auto", "frame codec to offer: auto (binary when the engine accepts) or json")
	flag.Parse()

	if *codec != "auto" && *codec != "json" {
		fmt.Fprintf(os.Stderr, "parsl-cwl-worker: -codec must be auto or json, got %q\n", *codec)
		os.Exit(2)
	}
	noBinary := *codec == "json"

	if *printVersion {
		fmt.Printf("parsl-cwl-worker protocol %d\n", provider.ProtoVersion)
		return
	}

	logger := log.New(os.Stderr, "parsl-cwl-worker: ", 0)

	// SIGTERM/SIGINT ask for a graceful drain in both modes: finish
	// in-flight tasks, send their responses and a bye, exit 0. A second
	// signal falls through to the runtime's default (hard exit).
	drain := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sigs
		logger.Printf("received %s, draining", s)
		close(drain)
		signal.Stop(sigs)
	}()

	var err error
	if *connect == "" {
		err = provider.RunPipeWorkerOpts(os.Stdin, os.Stdout, provider.PipeWorkerOptions{
			Drain:         drain,
			DisableBatch:  *noBatch,
			DisableBinary: noBinary,
		})
	} else {
		tlsConf, terr := clientTLS(*useTLS, *tlsCA, *tlsServerName, *tlsInsecure)
		if terr != nil {
			logger.Fatalln(terr)
		}
		err = fabric.RunWorker(fabric.ConnectOptions{
			Addr:          *connect,
			Secret:        *secret,
			TLS:           tlsConf,
			ID:            *id,
			Capacity:      *capacity,
			Reconnect:     *reconnect,
			ReconnectWait: *reconnectWait,
			MaxAttempts:   *maxAttempts,
			Drain:         drain,
			DisableBatch:  *noBatch,
			DisableBinary: noBinary,
			Logf:          logger.Printf,
		})
	}
	if err != nil {
		logger.Fatalln(err)
	}
}

// clientTLS builds the dial TLS config, or nil when TLS is off.
func clientTLS(on bool, caFile, serverName string, insecure bool) (*tls.Config, error) {
	if !on && caFile == "" && !insecure {
		return nil, nil
	}
	conf := &tls.Config{ServerName: serverName, InsecureSkipVerify: insecure}
	if caFile != "" {
		pem, err := os.ReadFile(caFile)
		if err != nil {
			return nil, fmt.Errorf("reading -tls-ca: %w", err)
		}
		pool := x509.NewCertPool()
		if !pool.AppendCertsFromPEM(pem) {
			return nil, fmt.Errorf("-tls-ca %s holds no usable certificates", caFile)
		}
		conf.RootCAs = pool
	}
	return conf, nil
}
