package main

import (
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/parsl"
	"repro/internal/provider"
)

// TestWorkerBinaryEndToEnd builds the real binary and drives it through a
// ProcessProvider-backed HTEX — the deployment shape parsl-cwl-serve uses.
func TestWorkerBinaryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := filepath.Join(t.TempDir(), "parsl-cwl-worker")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	prov := provider.NewProcessProvider(provider.ProcessOptions{Command: []string{bin}})
	htex := parsl.NewHighThroughputExecutor(parsl.HTEXConfig{
		Label: "htex", Provider: prov, WorkersPerNode: 2, MaxBlocks: 1,
	})
	if err := htex.Start(); err != nil {
		t.Fatal(err)
	}
	defer htex.Shutdown()

	spec, err := provider.NewEchoSpec("through-the-pipe")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan any, 1)
	htex.Submit(&parsl.Task{ID: 1, Remote: spec, Fn: func() (any, error) {
		t.Error("in-process fallback ran despite a remote spec and live worker")
		return nil, nil
	}}, func(res any, err error) {
		if err != nil {
			t.Error(err)
		}
		got <- res
	})
	if res := <-got; res != "through-the-pipe" {
		t.Fatalf("result = %#v", res)
	}
	if st := htex.Stats(); st.Provider != "process" || len(st.Blocks) == 0 {
		t.Fatalf("stats = %+v", st)
	}
}
