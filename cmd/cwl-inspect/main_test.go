package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestInspectTool(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "echo.cwl")
	os.WriteFile(path, []byte(`cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
inputs:
  message:
    type: string
    default: hi
    inputBinding: {position: 1}
outputs:
  output: {type: stdout}
stdout: o.txt
`), 0o644)
	if err := run(path); err != nil {
		t.Fatal(err)
	}
}

func TestInspectWorkflowAndExpressionTool(t *testing.T) {
	dir := t.TempDir()
	wf := filepath.Join(dir, "wf.cwl")
	os.WriteFile(wf, []byte(`cwlVersion: v1.2
class: Workflow
inputs:
  x: int
outputs: {}
steps:
  s:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        x: {type: int, inputBinding: {position: 1}}
      outputs: {}
    in:
      x: x
    out: []
`), 0o644)
	if err := run(wf); err != nil {
		t.Fatal(err)
	}
	et := filepath.Join(dir, "et.cwl")
	os.WriteFile(et, []byte(`cwlVersion: v1.2
class: ExpressionTool
requirements:
  - class: InlineJavascriptRequirement
inputs: {}
outputs: {}
expression: "${ return {}; }"
`), 0o644)
	if err := run(et); err != nil {
		t.Fatal(err)
	}
}

func TestInspectErrors(t *testing.T) {
	if err := run("/nonexistent.cwl"); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.cwl")
	os.WriteFile(bad, []byte("class: Mystery\n"), 0o644)
	if err := run(bad); err == nil {
		t.Error("unknown class accepted")
	}
}
