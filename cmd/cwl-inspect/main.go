// Command cwl-inspect parses a CWL document and prints a structural summary
// plus the raw document as JSON, useful when porting tool definitions into
// Parsl programs.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/cwl"
	"repro/internal/yamlx"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: cwl-inspect FILE.cwl")
		os.Exit(2)
	}
	if err := run(os.Args[1]); err != nil {
		fmt.Fprintln(os.Stderr, "cwl-inspect:", err)
		os.Exit(1)
	}
}

func run(path string) error {
	doc, err := cwl.LoadFile(path)
	if err != nil {
		return err
	}
	switch d := doc.(type) {
	case *cwl.CommandLineTool:
		fmt.Printf("class: CommandLineTool\nbaseCommand: %v\n", d.BaseCommand)
		fmt.Printf("inputs (%d):\n", len(d.Inputs))
		for _, in := range d.Inputs {
			def := ""
			if in.HasDef {
				def = fmt.Sprintf(" default=%v", in.Default)
			}
			fmt.Printf("  %-20s %s%s\n", in.ID, in.Type, def)
		}
		fmt.Printf("outputs (%d):\n", len(d.Outputs))
		for _, out := range d.Outputs {
			fmt.Printf("  %-20s %s\n", out.ID, out.Type)
		}
	case *cwl.Workflow:
		fmt.Printf("class: Workflow\nsteps (%d):\n", len(d.Steps))
		for _, s := range d.Steps {
			fmt.Printf("  %-20s run=%s out=%v scatter=%v\n", s.ID, runName(s), s.Out, s.Scatter)
		}
	case *cwl.ExpressionTool:
		fmt.Printf("class: ExpressionTool\nexpression: %s\n", d.Expression)
	}
	// Raw document as JSON for downstream tooling.
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	v, err := yamlx.Decode(raw)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}

func runName(s *cwl.WorkflowStep) string {
	if s.RunRef != "" {
		return s.RunRef
	}
	if s.Run != nil {
		return "(embedded " + s.Run.Class() + ")"
	}
	return "?"
}
