// Command doclint enforces the repository's godoc contract: every package it
// is pointed at must have a package comment, and every exported identifier —
// functions, methods on exported types, types, and top-level var/const
// names — must carry a doc comment. A doc comment on a grouped declaration
// satisfies every spec in the group, matching godoc's rendering.
//
//	go run ./cmd/doclint ./internal/provider ./internal/fabric ./internal/obs .
//
// Each argument is one package directory (not recursive — list the packages
// whose API surface is meant to be read). Test files are ignored. Exit
// status is 1 when anything exported is undocumented, so CI can gate on it.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <package-dir> [package-dir...]")
		os.Exit(2)
	}
	var problems []string
	for _, dir := range os.Args[1:] {
		ps, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, ps...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported identifier(s)\n", len(problems))
		os.Exit(1)
	}
}

// lintDir parses one package directory and returns one problem line per
// undocumented exported identifier.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	var problems []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		problems = append(problems, lintPackage(fset, dir, pkg)...)
	}
	return problems, nil
}

// lintPackage checks the package comment and every exported top-level
// identifier of one parsed package.
func lintPackage(fset *token.FileSet, dir string, pkg *ast.Package) []string {
	var problems []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, fmt.Sprintf(format, args...)))
	}

	hasPkgDoc := false
	for _, f := range pkg.Files {
		if f.Doc != nil {
			hasPkgDoc = true
			break
		}
	}
	if !hasPkgDoc {
		problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
	}

	// Exported types, so methods on them can be checked below.
	exportedTypes := map[string]bool{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.IsExported() {
					exportedTypes[ts.Name.Name] = true
				}
			}
		}
	}

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if recv := receiverType(d); recv != "" && !exportedTypes[recv] {
					continue // method on an unexported type: not API surface
				}
				if d.Doc == nil {
					what := "function"
					if d.Recv != nil {
						what = "method"
					}
					report(d.Pos(), "exported %s %s has no doc comment", what, d.Name.Name)
				}
			case *ast.GenDecl:
				switch d.Tok {
				case token.TYPE:
					for _, spec := range d.Specs {
						ts := spec.(*ast.TypeSpec)
						if ts.Name.IsExported() && d.Doc == nil && ts.Doc == nil {
							report(ts.Pos(), "exported type %s has no doc comment", ts.Name.Name)
						}
					}
				case token.VAR, token.CONST:
					// A doc comment on the group documents every spec in it.
					if d.Doc != nil {
						continue
					}
					for _, spec := range d.Specs {
						vs := spec.(*ast.ValueSpec)
						if vs.Doc != nil || vs.Comment != nil {
							continue
						}
						for _, n := range vs.Names {
							if n.IsExported() {
								report(n.Pos(), "exported %s %s has no doc comment", strings.ToLower(d.Tok.String()), n.Name)
							}
						}
					}
				}
			}
		}
	}
	return problems
}

// receiverType names a method's receiver type ("" for plain functions).
func receiverType(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}
