package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const echoTool = `cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
inputs:
  message:
    type: string
    inputBinding: {position: 1}
outputs:
  output: {type: stdout}
stdout: hello.txt
`

func TestCLIRunWithInputsFile(t *testing.T) {
	dir := t.TempDir()
	cfg := writeFile(t, dir, "config.yml", "executor: thread-pool\nworkers-per-node: 2\nrun-dir: "+dir+"\n")
	tool := writeFile(t, dir, "echo.cwl", echoTool)
	inputs := writeFile(t, dir, "inputs.yml", "message: cli-inputs-file\n")
	if err := run([]string{cfg, tool, inputs}); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "echo-*", "hello.txt"))
	if len(matches) != 1 {
		t.Fatalf("output files = %v", matches)
	}
	data, _ := os.ReadFile(matches[0])
	if strings.TrimSpace(string(data)) != "cli-inputs-file" {
		t.Errorf("content = %q", data)
	}
}

func TestCLIRunWithFlags(t *testing.T) {
	dir := t.TempDir()
	cfg := writeFile(t, dir, "config.yml", "executor: htex\nworkers-per-node: 2\nnodes: 1\nrun-dir: "+dir+"\n")
	tool := writeFile(t, dir, "echo.cwl", echoTool)
	if err := run([]string{cfg, tool, "--message=from-flag"}); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "echo-*", "hello.txt"))
	if len(matches) != 1 {
		t.Fatalf("output files = %v", matches)
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	cfg := writeFile(t, dir, "config.yml", "executor: thread-pool\n")
	tool := writeFile(t, dir, "echo.cwl", echoTool)
	badTool := writeFile(t, dir, "bad.cwl", "class: CommandLineTool\ncwlVersion: v1.2\ninputs: {}\noutputs: {}\n")
	badCfg := writeFile(t, dir, "bad.yml", "executor: spark\n")
	cases := [][]string{
		nil,                                 // usage
		{cfg},                               // missing tool
		{cfg, filepath.Join(dir, "no.cwl")}, // missing file
		{badCfg, tool},                      // bad executor
		{cfg, badTool},                      // fails validation (no baseCommand)
		{cfg, tool, "--message"},            // malformed flag
		{cfg, tool, "positional"},           // inputs file missing
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
