// Command parsl-cwl is the paper's §III-B runner: it executes a CWL
// CommandLineTool (or, beyond the prototype, a complete Workflow) on Parsl
// executors configured by a TaPS-style YAML file.
//
// Usage, as in the paper:
//
//	parsl-cwl config.yml echo.cwl inputs.yml
//	parsl-cwl config.yml echo.cwl --message='Hello'
//	parsl-cwl -provider=process config.yml wf.cwl inputs.yml
//
// The optional flags (before the positional arguments) override the config:
// -provider selects how HTEX pilot blocks run (local, process, sim, or net)
// and -worker-cmd points the process and net providers at a worker binary.
//
// The outputs object is printed as JSON on stdout, like cwltool.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/cwl"
	"repro/internal/parsl"
	"repro/internal/yamlx"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "parsl-cwl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("parsl-cwl", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	providerName := fs.String("provider", "", "execution provider for HTEX blocks: local|process|sim|net (overrides the config)")
	workerCmd := fs.String("worker-cmd", "", "worker command line for the process and net providers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	args = fs.Args()
	if len(args) < 2 {
		return fmt.Errorf("usage: parsl-cwl [-provider=local|process|sim|net] [-worker-cmd=...] CONFIG.yml PROCESS.cwl [INPUTS.yml | --name=value ...]")
	}
	spec, err := parsl.LoadConfigFile(args[0])
	if err != nil {
		return err
	}
	if *providerName != "" {
		spec.Provider = *providerName
		if spec.Executor != "htex" && spec.Executor != "high-throughput" {
			spec.Executor = "htex"
		}
	}
	if *workerCmd != "" {
		spec.WorkerCmd = *workerCmd
	}
	doc, err := cwl.LoadFile(args[1])
	if err != nil {
		return err
	}
	issues, err := cwl.Validate(doc)
	for _, i := range issues {
		if i.Severity == "warning" {
			fmt.Fprintln(os.Stderr, "parsl-cwl:", i)
		}
	}
	if err != nil {
		return err
	}

	inputs := yamlx.NewMap()
	rest := args[2:]
	if len(rest) == 1 && !strings.HasPrefix(rest[0], "--") {
		data, err := os.ReadFile(rest[0])
		if err != nil {
			return err
		}
		inputs, err = core.ParseInputValues(data)
		if err != nil {
			return fmt.Errorf("%s: %w", rest[0], err)
		}
	} else if len(rest) > 0 {
		inputs, err = core.ParseInputFlags(rest)
		if err != nil {
			return err
		}
	}

	cfg, err := spec.Build()
	if err != nil {
		return err
	}
	dfk, err := parsl.Load(cfg)
	if err != nil {
		return err
	}
	defer dfk.Cleanup()

	r := core.NewRunner(dfk)
	if spec.RunDir != "" {
		r.WorkRoot = spec.RunDir
	}
	outputs, err := r.Run(doc, inputs)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(outputs)
}
