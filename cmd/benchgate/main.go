// Command benchgate is the CI benchmark-regression gate: it parses `go test
// -bench` output, reduces repeated runs (-count=N) to the per-benchmark
// minimum ns/op — the least noisy statistic on shared CI runners — and
// compares it against a committed baseline with a relative tolerance,
// failing when any benchmark regresses past it.
//
//	go test -run XXX -bench . -benchtime=1x -count=3 . | tee bench.txt
//	benchgate -baseline BENCH_baseline.json -bench bench.txt -tolerance 0.25
//
// The GOMAXPROCS suffix (`-8`) is stripped from benchmark names so baselines
// recorded on one machine shape still match results from another. -update
// rewrites the baseline from the provided results instead of gating.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Baseline is the committed reference file.
type Baseline struct {
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to the
	// reference minimum ns/op.
	Benchmarks map[string]float64 `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+(?:e[+-]?\d+)?) ns/op`)

// parseBench reduces bench output to the minimum ns/op per benchmark name.
func parseBench(r io.Reader) (map[string]float64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(data), -1) {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", line, err)
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark results found in input")
	}
	return out, nil
}

// gateResult is one benchmark's verdict.
type gateResult struct {
	Name     string  `json:"name"`
	Baseline float64 `json:"baselineNsPerOp"`
	Current  float64 `json:"currentNsPerOp"`
	Ratio    float64 `json:"ratio"`
	Verdict  string  `json:"verdict"` // ok | regression | missing | new
}

// gate compares results against the baseline: a benchmark regresses when its
// minimum ns/op exceeds baseline*(1+tolerance); a baseline benchmark absent
// from the results fails too (the gate must not silently lose coverage).
func gate(baseline, results map[string]float64, tolerance float64) (verdicts []gateResult, failed bool) {
	names := make([]string, 0, len(baseline))
	for n := range baseline {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		base := baseline[n]
		cur, ok := results[n]
		switch {
		case !ok:
			verdicts = append(verdicts, gateResult{Name: n, Baseline: base, Verdict: "missing"})
			failed = true
		case base > 0 && cur > base*(1+tolerance):
			verdicts = append(verdicts, gateResult{Name: n, Baseline: base, Current: cur, Ratio: cur / base, Verdict: "regression"})
			failed = true
		default:
			r := 0.0
			if base > 0 {
				r = cur / base
			}
			verdicts = append(verdicts, gateResult{Name: n, Baseline: base, Current: cur, Ratio: r, Verdict: "ok"})
		}
	}
	extras := make([]string, 0)
	for n := range results {
		if _, ok := baseline[n]; !ok {
			extras = append(extras, n)
		}
	}
	sort.Strings(extras)
	for _, n := range extras {
		verdicts = append(verdicts, gateResult{Name: n, Current: results[n], Verdict: "new"})
	}
	return verdicts, failed
}

// writeCompare renders a benchstat-style baseline-vs-current markdown table
// (the PR comparison artifact).
func writeCompare(path string, verdicts []gateResult) error {
	var b []byte
	app := func(s string) { b = append(b, s...) }
	app("# Benchmark comparison (baseline vs this run)\n\n")
	app("| benchmark | baseline ns/op | current ns/op | delta | verdict |\n")
	app("|---|---:|---:|---:|---|\n")
	for _, v := range verdicts {
		switch v.Verdict {
		case "missing":
			app(fmt.Sprintf("| %s | %.0f | — | — | missing |\n", v.Name, v.Baseline))
		case "new":
			app(fmt.Sprintf("| %s | — | %.0f | — | new |\n", v.Name, v.Current))
		default:
			delta := "—"
			if v.Baseline > 0 {
				delta = fmt.Sprintf("%+.1f%%", (v.Current/v.Baseline-1)*100)
			}
			app(fmt.Sprintf("| %s | %.0f | %.0f | %s | %s |\n", v.Name, v.Baseline, v.Current, delta, v.Verdict))
		}
	}
	app("\nNegative delta = faster than baseline. Gate fails only on regressions past tolerance.\n")
	return os.WriteFile(path, b, 0o644)
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "BENCH_baseline.json", "committed baseline JSON")
	benchPath := fs.String("bench", "-", "go test -bench output (- reads stdin)")
	tolerance := fs.Float64("tolerance", 0.25, "allowed relative ns/op increase before failing")
	update := fs.Bool("update", false, "rewrite the baseline from the results instead of gating")
	outPath := fs.String("out", "", "write gate verdicts as JSON (CI artifact)")
	comparePath := fs.String("compare-out", "", "write a benchstat-style markdown comparison table (CI artifact)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var in io.Reader = os.Stdin
	if *benchPath != "-" {
		f, err := os.Open(*benchPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	results, err := parseBench(in)
	if err != nil {
		return err
	}

	if *update {
		data, err := json.MarshalIndent(Baseline{Benchmarks: results}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s with %d benchmarks\n", *baselinePath, len(results))
		return nil
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", *baselinePath, err)
	}
	verdicts, failed := gate(base.Benchmarks, results, *tolerance)
	for _, v := range verdicts {
		switch v.Verdict {
		case "missing":
			fmt.Fprintf(stdout, "MISSING    %-60s baseline %.0f ns/op, no result\n", v.Name, v.Baseline)
		case "new":
			fmt.Fprintf(stdout, "NEW        %-60s %.0f ns/op (not in baseline)\n", v.Name, v.Current)
		case "regression":
			fmt.Fprintf(stdout, "REGRESSION %-60s %.0f -> %.0f ns/op (%.2fx, tolerance %.2fx)\n",
				v.Name, v.Baseline, v.Current, v.Ratio, 1+*tolerance)
		default:
			fmt.Fprintf(stdout, "ok         %-60s %.0f -> %.0f ns/op (%.2fx)\n", v.Name, v.Baseline, v.Current, v.Ratio)
		}
	}
	if *outPath != "" {
		data, err := json.MarshalIndent(verdicts, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *comparePath != "" {
		if err := writeCompare(*comparePath, verdicts); err != nil {
			return err
		}
	}
	if failed {
		return fmt.Errorf("benchmark regression gate failed (tolerance %.0f%%)", *tolerance*100)
	}
	fmt.Fprintln(stdout, "benchmark gate passed")
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}
