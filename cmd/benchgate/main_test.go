package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkHTEXThroughput/blocks=1-8         	       1	    52000 ns/op	       61000 tasks/s
BenchmarkHTEXThroughput/blocks=1-8         	       1	    48000 ns/op	       63000 tasks/s
BenchmarkHTEXThroughput/blocks=1-8         	       1	    51000 ns/op	       60000 tasks/s
BenchmarkServiceSubmission/concurrent=1-8  	       1	  1400000 ns/op	         730 runs/s
BenchmarkServiceSubmission/concurrent=1-8  	       1	  1300000 ns/op	         750 runs/s
PASS
`

func TestParseBenchTakesMinAndStripsProcSuffix(t *testing.T) {
	res, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if got := res["BenchmarkHTEXThroughput/blocks=1"]; got != 48000 {
		t.Errorf("HTEX min = %v, want 48000", got)
	}
	if got := res["BenchmarkServiceSubmission/concurrent=1"]; got != 1300000 {
		t.Errorf("Service min = %v, want 1300000", got)
	}
	if len(res) != 2 {
		t.Errorf("parsed %d benchmarks, want 2: %v", len(res), res)
	}
}

func TestParseBenchEmptyFails(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\n")); err == nil {
		t.Error("empty bench output accepted")
	}
}

func TestGateVerdicts(t *testing.T) {
	baseline := map[string]float64{"A": 100, "B": 100, "C": 100}
	results := map[string]float64{"A": 110, "B": 140, "D": 50}
	verdicts, failed := gate(baseline, results, 0.25)
	if !failed {
		t.Error("gate passed despite regression and missing benchmark")
	}
	byName := map[string]string{}
	for _, v := range verdicts {
		byName[v.Name] = v.Verdict
	}
	want := map[string]string{"A": "ok", "B": "regression", "C": "missing", "D": "new"}
	for n, w := range want {
		if byName[n] != w {
			t.Errorf("%s = %s, want %s", n, byName[n], w)
		}
	}

	// Within tolerance everything passes; new benchmarks never fail the gate.
	if _, failed := gate(map[string]float64{"A": 100}, map[string]float64{"A": 124, "D": 1}, 0.25); failed {
		t.Error("gate failed within tolerance")
	}
}

func TestRunUpdateThenGate(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "bench.txt")
	basePath := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(benchPath, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-update", "-baseline", basePath, "-bench", benchPath}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	// Gating the same results against the fresh baseline passes and writes
	// the artifact.
	artifact := filepath.Join(dir, "verdicts.json")
	out.Reset()
	if err := run([]string{"-baseline", basePath, "-bench", benchPath, "-out", artifact}, &out, io.Discard); err != nil {
		t.Fatalf("gate failed against own baseline: %v\n%s", err, out.String())
	}
	if _, err := os.Stat(artifact); err != nil {
		t.Errorf("artifact not written: %v", err)
	}

	// A 2x slowdown fails.
	slow := strings.ReplaceAll(sampleBench, "48000 ns/op", "148000 ns/op")
	slow = strings.ReplaceAll(slow, "52000 ns/op", "152000 ns/op")
	slow = strings.ReplaceAll(slow, "51000 ns/op", "151000 ns/op")
	if err := os.WriteFile(benchPath, []byte(slow), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-baseline", basePath, "-bench", benchPath}, io.Discard, io.Discard); err == nil {
		t.Error("gate passed a 3x regression")
	}
}

func TestCompareArtifact(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "bench.txt")
	basePath := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(benchPath, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-update", "-baseline", basePath, "-bench", benchPath}, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	compare := filepath.Join(dir, "compare.md")
	if err := run([]string{"-baseline", basePath, "-bench", benchPath, "-compare-out", compare}, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(compare)
	if err != nil {
		t.Fatal(err)
	}
	md := string(data)
	for _, want := range []string{
		"| benchmark | baseline ns/op | current ns/op | delta | verdict |",
		"BenchmarkHTEXThroughput/blocks=1",
		"+0.0%",
		"| ok |",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("comparison artifact missing %q:\n%s", want, md)
		}
	}
}
