// Command bench-harness regenerates the paper's evaluation artifacts. Each
// experiment prints the rows/series the paper reports (see EXPERIMENTS.md
// for the paper-vs-measured comparison).
//
// Usage:
//
//	bench-harness -exp fig1a        # Fig. 1a: 3-node image workflow sweep
//	bench-harness -exp fig1b        # Fig. 1b: single-node sweep
//	bench-harness -exp fig2         # Fig. 2: expression scaling 2..1024 words
//	bench-harness -exp abl-expr     # ablation: real interpreter eval times
//	bench-harness -exp abl-scatter  # ablation: scatter width vs makespan
//	bench-harness -exp abl-overhead # ablation: serial dispatch sweep
//	bench-harness -exp hotpath      # engine overhead: expr scatter, deep chain, fan-in
//	bench-harness -exp provider     # provider layer: in-process vs pipe-protocol workers
//	bench-harness -exp all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/provider"
)

func main() {
	// Worker mode: the provider experiment re-executes this binary as a
	// protocol worker, so the harness needs no external parsl-cwl-worker.
	if os.Getenv("PARSL_CWL_WORKER_PROCESS") == "1" {
		if err := provider.RunWorker(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "bench-harness worker:", err)
			os.Exit(1)
		}
		return
	}
	exp := flag.String("exp", "all", "experiment id: fig1a|fig1b|fig2|abl-expr|abl-scatter|abl-overhead|hotpath|provider|all")
	flag.Parse()
	if err := run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "bench-harness:", err)
		os.Exit(1)
	}
}

func run(exp string) error {
	run := func(id string) error {
		switch id {
		case "fig1a":
			series, err := bench.Fig1a()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatSeries(
				"Fig 1a — CWL image workflow on three nodes (3x48 cores), simulated makespan",
				"images", "seconds", series))
		case "fig1b":
			series, err := bench.Fig1b()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatSeries(
				"Fig 1b — CWL image workflow on one node (48 cores), simulated makespan",
				"images", "seconds", series))
		case "fig2":
			fmt.Print(bench.FormatSeries(
				"Fig 2 — expression evaluation: InlineJavaScript (cwltool, toil) vs InlinePython (parsl-cwl)",
				"words", "seconds", bench.Fig2()))
		case "abl-expr":
			fmt.Println("# Ablation — measured per-evaluation cost of this repo's real interpreters")
			fmt.Println("# (in-process; the JS column lacks the node-spawn cost that dominates cwltool)")
			fmt.Printf("%-10s %14s %14s\n", "words", "js-seconds", "py-seconds")
			for _, w := range bench.Fig2WordCounts {
				js, err := bench.MeasureExprEval("js", w)
				if err != nil {
					return err
				}
				py, err := bench.MeasureExprEval("py", w)
				if err != nil {
					return err
				}
				fmt.Printf("%-10d %14.6f %14.6f\n", w, js, py)
			}
		case "abl-scatter":
			series, err := bench.AblationScatterWidth(bench.PaperThreeNode(), 256)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatSeries(
				"Ablation — makespan vs available width (256 images, 3 nodes)",
				"width", "seconds", series))
		case "abl-overhead":
			series, err := bench.AblationDispatchOverhead(500)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatSeries(
				"Ablation — serial dispatch cost sweep (500 images; x = sweep index over 1,5,10,20,50,100 ms)",
				"idx", "seconds", series))
		case "hotpath":
			fmt.Println("# Hot path — engine overhead per workflow execution (inline submitter, no subprocesses)")
			fmt.Printf("%-16s %8s %16s %14s\n", "workload", "n", "sec/execution", "tasks/s")
			for _, w := range []struct {
				kind string
				n    int
			}{
				{"expr-scatter", 1024},
				{"deep-chain", 500},
				{"wide-fanin", 256},
			} {
				sec, err := bench.MeasureHotPath(w.kind, w.n, 5)
				if err != nil {
					return err
				}
				fmt.Printf("%-16s %8d %16.6f %14.0f\n", w.kind, w.n, sec, float64(w.n)/sec)
			}
		case "provider":
			fmt.Println("# Provider layer — echo-task throughput per backend (one block)")
			fmt.Println("# process = real worker subprocess over the length-prefixed JSON pipe protocol")
			self, err := os.Executable()
			if err != nil {
				return err
			}
			env := []string{"PARSL_CWL_WORKER_PROCESS=1"}
			fmt.Printf("%-10s %8s %14s\n", "provider", "workers", "tasks/s")
			for _, row := range []struct {
				name    string
				workers int
			}{
				{"local", 1}, {"local", 8},
				{"process", 1}, {"process", 8},
			} {
				res, err := bench.MeasureProviderThroughput(row.name, []string{self}, env, row.workers, 20000)
				if err != nil {
					return err
				}
				fmt.Printf("%-10s %8d %14.0f\n", row.name, row.workers, res.TasksPerSec)
			}
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		fmt.Println()
		return nil
	}
	if exp == "all" {
		for _, id := range []string{"fig1a", "fig1b", "fig2", "abl-expr", "abl-scatter", "abl-overhead", "hotpath", "provider"} {
			if err := run(id); err != nil {
				return err
			}
		}
		return nil
	}
	return run(exp)
}
