// Command imgtool implements the image operations used by the paper's §IV
// workflow as a command-line tool, so the CWL CommandLineTool definitions
// (resize_image.cwl, filter_image.cwl, blur_image.cwl) invoke a real
// executable doing real pixel work.
//
// Usage:
//
//	imgtool resize --size N INPUT OUTPUT
//	imgtool filter [--sepia] INPUT OUTPUT
//	imgtool blur --radius N INPUT OUTPUT
//	imgtool generate --size N --seed S OUTPUT
//	imgtool info INPUT
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/imaging"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "imgtool:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: imgtool <resize|filter|blur|generate|info> ...")
	}
	switch args[0] {
	case "resize":
		fs := flag.NewFlagSet("resize", flag.ContinueOnError)
		size := fs.Int("size", 0, "target size (size×size)")
		bilinear := fs.Bool("bilinear", true, "use bilinear sampling")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		in, out, err := inOut(fs)
		if err != nil {
			return err
		}
		img, err := imaging.Decode(in)
		if err != nil {
			return err
		}
		mode := imaging.Bilinear
		if !*bilinear {
			mode = imaging.Nearest
		}
		res, err := imaging.Resize(img, *size, *size, mode)
		if err != nil {
			return err
		}
		return imaging.Encode(out, res)
	case "filter":
		fs := flag.NewFlagSet("filter", flag.ContinueOnError)
		sepia := fs.Bool("sepia", false, "apply the sepia filter")
		gray := fs.Bool("grayscale", false, "apply grayscale instead of sepia")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		in, out, err := inOut(fs)
		if err != nil {
			return err
		}
		img, err := imaging.Decode(in)
		if err != nil {
			return err
		}
		switch {
		case *gray:
			return imaging.Encode(out, imaging.Grayscale(img))
		case *sepia:
			return imaging.Encode(out, imaging.Sepia(img))
		default:
			// No filter requested: pass through unchanged, as the paper's
			// workflow does when sepia=false.
			return imaging.Encode(out, img)
		}
	case "blur":
		fs := flag.NewFlagSet("blur", flag.ContinueOnError)
		radius := fs.Int("radius", 1, "blur radius in pixels")
		gaussian := fs.Bool("gaussian", false, "use the gaussian approximation")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		in, out, err := inOut(fs)
		if err != nil {
			return err
		}
		img, err := imaging.Decode(in)
		if err != nil {
			return err
		}
		if *gaussian {
			res, err := imaging.GaussianBlur(img, *radius)
			if err != nil {
				return err
			}
			return imaging.Encode(out, res)
		}
		res, err := imaging.BoxBlur(img, *radius)
		if err != nil {
			return err
		}
		return imaging.Encode(out, res)
	case "generate":
		fs := flag.NewFlagSet("generate", flag.ContinueOnError)
		size := fs.Int("size", 256, "image size (size×size)")
		seed := fs.Int64("seed", 1, "generation seed")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return fmt.Errorf("generate: want OUTPUT")
		}
		img, err := imaging.Generate(*size, *size, *seed)
		if err != nil {
			return err
		}
		return imaging.Encode(fs.Arg(0), img)
	case "info":
		if len(args) != 2 {
			return fmt.Errorf("info: want INPUT")
		}
		img, err := imaging.Decode(args[1])
		if err != nil {
			return err
		}
		b := img.Bounds()
		fmt.Printf("%s: %dx%d meanLuma=%.1f\n", args[1], b.Dx(), b.Dy(), imaging.MeanLuma(img))
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func inOut(fs *flag.FlagSet) (string, string, error) {
	if fs.NArg() != 2 {
		return "", "", fmt.Errorf("want INPUT OUTPUT, got %d args", fs.NArg())
	}
	return fs.Arg(0), fs.Arg(1), nil
}
