package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/imaging"
)

func TestGenerateResizeFilterBlur(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.png")
	resized := filepath.Join(dir, "resized.png")
	filtered := filepath.Join(dir, "filtered.png")
	blurred := filepath.Join(dir, "blurred.png")

	steps := [][]string{
		{"generate", "--size", "64", "--seed", "5", src},
		{"resize", "--size", "32", src, resized},
		{"filter", "--sepia", resized, filtered},
		{"blur", "--radius", "2", filtered, blurred},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
	img, err := imaging.Decode(blurred)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 32 || img.Bounds().Dy() != 32 {
		t.Errorf("final size = %v", img.Bounds())
	}
}

func TestFilterPassThrough(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.png")
	out := filepath.Join(dir, "out.png")
	if err := run([]string{"generate", "--size", "8", src}); err != nil {
		t.Fatal(err)
	}
	// No --sepia: the image passes through unchanged (sepia=false case).
	if err := run([]string{"filter", src, out}); err != nil {
		t.Fatal(err)
	}
	a, _ := imaging.Decode(src)
	b, _ := imaging.Decode(out)
	if imaging.MeanLuma(a) != imaging.MeanLuma(b) {
		t.Error("pass-through changed the image")
	}
}

func TestGaussianAndGrayscale(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.png")
	if err := run([]string{"generate", "--size", "16", src}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"blur", "--gaussian", "--radius", "1", src, filepath.Join(dir, "g.png")}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"filter", "--grayscale", src, filepath.Join(dir, "gray.png")}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"info", src}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"unknown"},
		{"resize"},                               // missing args
		{"resize", "--size", "0", "a", "b"},      // bad size propagates
		{"info"},                                 // missing input
		{"info", "/nonexistent.png"},             // missing file
		{"generate", "--size", "4"},              // missing output
		{"blur", "--radius", "-1", "a.png", "b"}, // negative radius
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunHelpText(t *testing.T) {
	err := run(nil)
	if err == nil || !strings.Contains(err.Error(), "usage") {
		t.Errorf("err = %v", err)
	}
}
