package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const validTool = `cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
inputs:
  message: {type: string, inputBinding: {position: 1}}
outputs:
  output: {type: stdout}
stdout: out.txt
`

func TestValidateValidDocument(t *testing.T) {
	dir := t.TempDir()
	tool := writeFile(t, dir, "echo.cwl", validTool)
	var out, errOut strings.Builder
	if code := run([]string{tool}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "valid CommandLineTool") {
		t.Errorf("output = %q", out.String())
	}
}

func TestValidateInvalidDocument(t *testing.T) {
	dir := t.TempDir()
	// No baseCommand and no arguments: fails validation.
	bad := writeFile(t, dir, "bad.cwl", "cwlVersion: v1.2\nclass: CommandLineTool\ninputs: {}\noutputs: {}\n")
	var out, errOut strings.Builder
	if code := run([]string{bad}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "INVALID") {
		t.Errorf("output = %q", out.String())
	}
}

func TestValidateMixedDocumentsStillChecksAll(t *testing.T) {
	dir := t.TempDir()
	good := writeFile(t, dir, "good.cwl", validTool)
	bad := writeFile(t, dir, "bad.cwl", "class: Nope\n")
	var out, errOut strings.Builder
	if code := run([]string{bad, good}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d", code)
	}
	// The valid document after the invalid one is still reported.
	if !strings.Contains(out.String(), "valid CommandLineTool") {
		t.Errorf("output = %q", out.String())
	}
}

func TestValidateMissingFile(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"/no/such/file.cwl"}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d", code)
	}
}

func TestValidateUsage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(errOut.String(), "usage:") {
		t.Errorf("stderr = %q", errOut.String())
	}
}
