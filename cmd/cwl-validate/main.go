// Command cwl-validate parses and validates CWL documents, printing every
// issue found. It exits non-zero when any document has errors — the
// equivalent of `cwltool --validate`.
package main

import (
	"fmt"
	"os"

	"repro/internal/cwl"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: cwl-validate FILE.cwl [FILE.cwl ...]")
		os.Exit(2)
	}
	failed := false
	for _, path := range os.Args[1:] {
		doc, err := cwl.LoadFile(path)
		if err != nil {
			fmt.Printf("%s: INVALID\n  %v\n", path, err)
			failed = true
			continue
		}
		issues, err := cwl.Validate(doc)
		for _, i := range issues {
			fmt.Printf("%s: %s\n", path, i)
		}
		if err != nil {
			fmt.Printf("%s: INVALID (%s)\n", path, doc.Class())
			failed = true
			continue
		}
		fmt.Printf("%s: valid %s\n", path, doc.Class())
	}
	if failed {
		os.Exit(1)
	}
}
