// Command cwl-validate parses and validates CWL documents, printing every
// issue found. It exits non-zero when any document has errors — the
// equivalent of `cwltool --validate`.
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/cwl"
)

// run validates each path and returns the process exit code: 0 when all
// documents are valid, 1 when any is invalid, 2 on usage errors.
func run(args []string, out, errOut io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(errOut, "usage: cwl-validate FILE.cwl [FILE.cwl ...]")
		return 2
	}
	failed := false
	for _, path := range args {
		doc, err := cwl.LoadFile(path)
		if err != nil {
			fmt.Fprintf(out, "%s: INVALID\n  %v\n", path, err)
			failed = true
			continue
		}
		issues, err := cwl.Validate(doc)
		for _, i := range issues {
			fmt.Fprintf(out, "%s: %s\n", path, i)
		}
		if err != nil {
			fmt.Fprintf(out, "%s: INVALID (%s)\n", path, doc.Class())
			failed = true
			continue
		}
		fmt.Fprintf(out, "%s: valid %s\n", path, doc.Class())
	}
	if failed {
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
