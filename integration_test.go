package cwlparsl

// End-to-end integration tests: the paper's complete §IV image workflow —
// CWL files on disk, the real imgtool binary, real PNGs — executed by all
// three runner architectures. TestMain builds imgtool once.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cwl"
	"repro/internal/imaging"
	"repro/internal/parsl"
	"repro/internal/provider"
	"repro/internal/runners/cwltoolsim"
	"repro/internal/runners/toilsim"
	"repro/internal/yamlx"
)

var imgtoolOK bool

func TestMain(m *testing.M) {
	// Worker mode: the ProcessProvider benchmarks re-execute this test
	// binary as a protocol worker instead of requiring a prebuilt
	// parsl-cwl-worker on PATH.
	if os.Getenv("PARSL_CWL_WORKER_PROCESS") == "1" {
		if err := provider.RunWorker(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	dir, err := os.MkdirTemp("", "imgtool-bin-")
	if err == nil {
		build := exec.Command("go", "build", "-o", filepath.Join(dir, "imgtool"), "./cmd/imgtool")
		if out, err := build.CombinedOutput(); err == nil {
			os.Setenv("PATH", dir+string(os.PathListSeparator)+os.Getenv("PATH"))
			imgtoolOK = true
		} else {
			fmt.Fprintf(os.Stderr, "integration: imgtool build failed: %v\n%s", err, out)
		}
	}
	code := m.Run()
	if dir != "" {
		os.RemoveAll(dir)
	}
	os.Exit(code)
}

const integToolTemplate = `cwlVersion: v1.2
class: CommandLineTool
baseCommand: [imgtool, %s]
inputs:
  %s:
    type: %s
    inputBinding: {prefix: --%s}
  input_image:
    type: File
    inputBinding: {position: 1}
  output_image:
    type: string
    inputBinding: {position: 2}
outputs:
  output_image:
    type: File
    outputBinding:
      glob: $(inputs.output_image)
`

const integWorkflow = `cwlVersion: v1.2
class: Workflow
requirements:
  - class: StepInputExpressionRequirement
inputs:
  input_image: File
  size: int
  sepia: boolean
  radius: int
outputs:
  final_output:
    type: File
    outputSource: blur_image/output_image
steps:
  resize_image:
    run: resize_image.cwl
    in:
      input_image: input_image
      size: size
      output_image: {valueFrom: "resized.png"}
    out: [output_image]
  filter_image:
    run: filter_image.cwl
    in:
      input_image: resize_image/output_image
      sepia: sepia
      output_image: {valueFrom: "filtered.png"}
    out: [output_image]
  blur_image:
    run: blur_image.cwl
    in:
      input_image: filter_image/output_image
      radius: radius
      output_image: {valueFrom: "blurred.png"}
    out: [output_image]
`

// writeImageWorkflow stages the CWL files and one input image; it returns
// the workflow path and the image path.
func writeImageWorkflow(t *testing.T) (string, string) {
	t.Helper()
	if !imgtoolOK {
		t.Skip("imgtool build unavailable")
	}
	dir := t.TempDir()
	files := map[string]string{
		"workflow.cwl":     integWorkflow,
		"resize_image.cwl": fmt.Sprintf(integToolTemplate, "resize", "size", "int", "size"),
		"filter_image.cwl": fmt.Sprintf(integToolTemplate, "filter", "sepia", "boolean", "sepia"),
		"blur_image.cwl":   fmt.Sprintf(integToolTemplate, "blur", "radius", "int", "radius"),
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	imgs, err := bench.GenerateImageCorpus(filepath.Join(dir, "corpus"), 1, 64, 99)
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "workflow.cwl"), imgs[0]
}

func integInputs(img string) *yamlx.Map {
	return yamlx.MapOf(
		"input_image", img,
		"size", int64(32),
		"sepia", true,
		"radius", int64(1),
	)
}

// verifyOutput checks the workflow's final image end to end.
func verifyOutput(t *testing.T, outputs *yamlx.Map) {
	t.Helper()
	f, ok := outputs.Value("final_output").(*yamlx.Map)
	if !ok {
		t.Fatalf("final_output = %#v", outputs.Value("final_output"))
	}
	img, err := imaging.Decode(f.GetString("path"))
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 32 || img.Bounds().Dy() != 32 {
		t.Errorf("output dimensions = %v, want 32x32", img.Bounds())
	}
}

func TestEndToEndParslRunner(t *testing.T) {
	wfPath, img := writeImageWorkflow(t)
	doc, err := cwl.LoadFile(wfPath)
	if err != nil {
		t.Fatal(err)
	}
	dfk, err := parsl.Load(parsl.Config{
		Executors: []parsl.Executor{parsl.NewThreadPoolExecutor("threads", 4)},
		RunDir:    t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dfk.Cleanup()
	r := core.NewRunner(dfk)
	out, err := r.Run(doc, integInputs(img))
	if err != nil {
		t.Fatal(err)
	}
	verifyOutput(t, out)
	// Exactly three Parsl tasks executed (one per stage).
	if got := dfk.StateCounts()[parsl.StateDone]; got != 3 {
		t.Errorf("tasks done = %d, want 3", got)
	}
}

func TestEndToEndParslHTEX(t *testing.T) {
	wfPath, img := writeImageWorkflow(t)
	doc, err := cwl.LoadFile(wfPath)
	if err != nil {
		t.Fatal(err)
	}
	htex := parsl.NewHighThroughputExecutor(parsl.HTEXConfig{
		Label: "htex", WorkersPerNode: 2, MaxBlocks: 2, InitBlocks: 1,
	})
	dfk, err := parsl.Load(parsl.Config{Executors: []parsl.Executor{htex}, RunDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer dfk.Cleanup()
	out, err := core.NewRunner(dfk).Run(doc, integInputs(img))
	if err != nil {
		t.Fatal(err)
	}
	verifyOutput(t, out)
}

func TestEndToEndCWLToolArchitecture(t *testing.T) {
	wfPath, img := writeImageWorkflow(t)
	doc, err := cwl.LoadFile(wfPath)
	if err != nil {
		t.Fatal(err)
	}
	r := &cwltoolsim.Runner{Parallelism: 4, WorkRoot: t.TempDir()}
	out, err := r.RunDocument(doc, integInputs(img))
	if err != nil {
		t.Fatal(err)
	}
	verifyOutput(t, out)
	if r.StepsRun() != 3 {
		t.Errorf("steps = %d", r.StepsRun())
	}
}

func TestEndToEndToilArchitecture(t *testing.T) {
	wfPath, img := writeImageWorkflow(t)
	doc, err := cwl.LoadFile(wfPath)
	if err != nil {
		t.Fatal(err)
	}
	store := t.TempDir()
	r := &toilsim.Runner{Parallelism: 4, WorkRoot: t.TempDir(), JobStoreDir: store}
	out, err := r.RunDocument(doc, integInputs(img))
	if err != nil {
		t.Fatal(err)
	}
	verifyOutput(t, out)
	done, _ := filepath.Glob(filepath.Join(store, "job-*.done"))
	if len(done) != 3 {
		t.Errorf("job store done entries = %d", len(done))
	}
}

// TestRunnersAgree verifies all three architectures produce byte-identical
// final images for the same inputs — the CWL semantics are shared, only
// dispatch differs.
func TestRunnersAgree(t *testing.T) {
	wfPath, img := writeImageWorkflow(t)
	doc, err := cwl.LoadFile(wfPath)
	if err != nil {
		t.Fatal(err)
	}
	read := func(outputs *yamlx.Map) []byte {
		f := outputs.Value("final_output").(*yamlx.Map)
		data, err := os.ReadFile(f.GetString("path"))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	ct := &cwltoolsim.Runner{Parallelism: 2, WorkRoot: t.TempDir()}
	ctOut, err := ct.RunDocument(doc, integInputs(img))
	if err != nil {
		t.Fatal(err)
	}
	toil := &toilsim.Runner{Parallelism: 2, WorkRoot: t.TempDir(), JobStoreDir: t.TempDir()}
	toilOut, err := toil.RunDocument(doc, integInputs(img))
	if err != nil {
		t.Fatal(err)
	}
	dfk, err := parsl.Load(parsl.Config{
		Executors: []parsl.Executor{parsl.NewThreadPoolExecutor("threads", 2)},
		RunDir:    t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dfk.Cleanup()
	parslOut, err := core.NewRunner(dfk).Run(doc, integInputs(img))
	if err != nil {
		t.Fatal(err)
	}

	a, b, c := read(ctOut), read(toilOut), read(parslOut)
	if string(a) != string(b) || string(b) != string(c) {
		t.Errorf("runner outputs differ: cwltool=%d toil=%d parsl=%d bytes", len(a), len(b), len(c))
	}
}

// TestParslCWLCLIEquivalent drives the §III-B flow through the library the
// way cmd/parsl-cwl does: config → document → inputs file → outputs JSON.
func TestParslCWLCLIEquivalent(t *testing.T) {
	dir := t.TempDir()
	toolPath := filepath.Join(dir, "echo.cwl")
	os.WriteFile(toolPath, []byte(`cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
inputs:
  message: {type: string, inputBinding: {position: 1}}
outputs:
  output: {type: stdout}
stdout: hello.txt
`), 0o644)
	cfgPath := filepath.Join(dir, "config.yml")
	os.WriteFile(cfgPath, []byte("executor: thread-pool\nworkers-per-node: 2\nrun-dir: "+dir+"\n"), 0o644)
	inputsPath := filepath.Join(dir, "inputs.yml")
	os.WriteFile(inputsPath, []byte("message: from-inputs-yml\n"), 0o644)

	dfk, err := LoadConfigFile(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	defer dfk.Cleanup()
	doc, err := LoadCWL(toolPath)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(inputsPath)
	if err != nil {
		t.Fatal(err)
	}
	inputs, err := core.ParseInputValues(data)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(dfk)
	r.WorkRoot = dir
	out, err := r.Run(doc, inputs)
	if err != nil {
		t.Fatal(err)
	}
	f := out.Value("output").(*yamlx.Map)
	content, _ := os.ReadFile(f.GetString("path"))
	if string(content) != "from-inputs-yml\n" {
		t.Errorf("content = %q", content)
	}
}
