// Package cwlparsl is the public facade of the Parsl+CWL integration — a Go
// reproduction of "Parsl+CWL: Towards Combining the Python and CWL
// Ecosystems" (SC 2024).
//
// The three pieces a downstream user needs:
//
//   - Load a Parsl configuration and DataFlowKernel, then import CWL
//     CommandLineTools as apps (the paper's CWLApp):
//
//     dfk, _ := cwlparsl.LoadConfig(cwlparsl.ConfigSpec{Executor: "htex", WorkersPerNode: 8})
//     echo, _ := cwlparsl.NewCWLApp(dfk, "echo.cwl")
//     fut := echo.Call(cwlparsl.Args{"message": "Hello, World!"})
//     fut.Wait()
//
//   - Run complete CWL processes (tools or workflows) on Parsl executors
//     (the parsl-cwl runner):
//
//     doc, _ := cwlparsl.LoadCWL("workflow.cwl")
//     outputs, _ := cwlparsl.NewRunner(dfk).Run(doc, inputs)
//
//   - Use InlinePythonRequirement (the paper's §V extension) in any CWL
//     document: f-string call sites, expressionLib functions, and validate:
//     fields are handled by the embedded Python interpreter.
//
//   - Serve workflows over HTTP: NewService multiplexes many queued runs over
//     one shared DFK with bounded concurrency, priority scheduling,
//     cancellation, and a content-hash document cache (the parsl-cwl-serve
//     command wraps this). With ServiceOptions.DataDir the service is
//     durable: run lifecycle and memoized task results are journaled to a
//     write-ahead log, and a restart restores history, re-enqueues
//     interrupted runs, and reloads the memo table so completed steps are
//     memo hits instead of re-executions (Parsl's checkpointing model):
//
//     svc, _ := cwlparsl.NewService(dfk, cwlparsl.ServiceOptions{Workers: 8, DataDir: "data"})
//     http.ListenAndServe(":8080", svc.Handler())
//
// See the examples/ directory for complete programs and DESIGN.md for the
// architecture.
package cwlparsl

import (
	"repro/internal/core"
	"repro/internal/cwl"
	"repro/internal/parsl"
	"repro/internal/service"
	"repro/internal/tenant"
	"repro/internal/yamlx"
)

// Args are keyword arguments for an app invocation.
type Args = parsl.Args

// File references a filesystem path (parsl.File).
type File = parsl.File

// AppFuture tracks an asynchronous app invocation.
type AppFuture = parsl.AppFuture

// DataFuture represents a file an invocation will produce.
type DataFuture = parsl.DataFuture

// DFK is the Parsl DataFlowKernel.
type DFK = parsl.DFK

// Config is the programmatic Parsl configuration.
type Config = parsl.Config

// ConfigSpec is the TaPS-style YAML-facing configuration.
type ConfigSpec = parsl.ConfigSpec

// Executor runs tasks (ThreadPool or HighThroughput).
type Executor = parsl.Executor

// CWLApp is a CWL CommandLineTool imported as a Parsl app.
type CWLApp = core.CWLApp

// Runner executes CWL documents on Parsl executors.
type Runner = core.Runner

// Document is any parsed CWL process.
type Document = cwl.Document

// CommandLineTool is the parsed CWL CommandLineTool class.
type CommandLineTool = cwl.CommandLineTool

// Workflow is the parsed CWL Workflow class.
type Workflow = cwl.Workflow

// Map is the ordered mapping used for CWL input/output objects.
type Map = yamlx.Map

// NewFile wraps a path as a Parsl File.
func NewFile(path string) File { return parsl.NewFile(path) }

// NewMap creates an empty ordered map.
func NewMap() *Map { return yamlx.NewMap() }

// MapOf builds an ordered map from alternating key/value pairs.
func MapOf(pairs ...any) *Map { return yamlx.MapOf(pairs...) }

// Load starts a DFK from a programmatic config (parsl.load).
func Load(cfg Config) (*DFK, error) { return parsl.Load(cfg) }

// LoadConfig builds and starts a DFK from a TaPS-style spec.
func LoadConfig(spec ConfigSpec) (*DFK, error) {
	cfg, err := spec.Build()
	if err != nil {
		return nil, err
	}
	return parsl.Load(cfg)
}

// LoadConfigFile reads a TaPS-style YAML config and starts a DFK.
func LoadConfigFile(path string) (*DFK, error) {
	spec, err := parsl.LoadConfigFile(path)
	if err != nil {
		return nil, err
	}
	return LoadConfig(spec)
}

// NewThreadPoolExecutor creates the single-node executor the paper uses in
// Fig. 1b.
func NewThreadPoolExecutor(label string, workers int) Executor {
	return parsl.NewThreadPoolExecutor(label, workers)
}

// HTEXConfig configures the pilot-job HighThroughputExecutor: block bounds
// (MaxBlocks/MinBlocks/InitBlocks), per-node workers, heartbeat-driven fault
// tolerance (HeartbeatPeriod/HeartbeatThreshold) and idle scale-in
// (IdleTimeout).
type HTEXConfig = parsl.HTEXConfig

// NewHighThroughputExecutor creates the elastic, fault-tolerant pilot-job
// executor (the paper's multi-node deployment, Fig. 1a).
func NewHighThroughputExecutor(cfg HTEXConfig) Executor {
	return parsl.NewHighThroughputExecutor(cfg)
}

// ExecutorStats is a point-in-time executor health summary (see
// DFK.ExecutorStats and the service's /healthz).
type ExecutorStats = parsl.ExecutorStats

// NewCWLApp imports a CommandLineTool definition as a Parsl app.
func NewCWLApp(dfk *DFK, path string, opts ...core.AppOpt) (*CWLApp, error) {
	return core.NewCWLApp(dfk, path, opts...)
}

// NewRunner builds the parsl-cwl engine over a DFK.
func NewRunner(dfk *DFK) *Runner { return core.NewRunner(dfk) }

// LoadCWL parses a CWL document from disk.
func LoadCWL(path string) (Document, error) { return cwl.LoadFile(path) }

// Service is the workflow submission service: a run store, bounded
// scheduler, and document cache multiplexing many runs over one shared DFK,
// exposed as a REST API via Service.Handler.
type Service = service.Service

// ServiceOptions configures a Service.
type ServiceOptions = service.Options

// SubmitRequest is one workflow submission to a Service.
type SubmitRequest = service.SubmitRequest

// RunSnapshot is the immutable client view of one submitted run.
type RunSnapshot = service.RunSnapshot

// RunState is a run's lifecycle state
// (queued → running → succeeded/failed/canceled).
type RunState = service.RunState

// Run lifecycle states.
const (
	RunQueued    = service.RunQueued
	RunRunning   = service.RunRunning
	RunSucceeded = service.RunSucceeded
	RunFailed    = service.RunFailed
	RunCanceled  = service.RunCanceled
)

// TaskEvent is one DFK monitoring record (a run's event log entry).
type TaskEvent = parsl.TaskEvent

// MemoEntry is one DFK memoization-table entry — the unit of cross-restart
// checkpointing (see DFK.MemoSnapshot, DFK.RestoreMemo, DFK.OnMemoCommit).
type MemoEntry = parsl.MemoEntry

// PersistStats is the durability section of the service's /healthz stats:
// journal size, last snapshot time, and restored-run counts.
type PersistStats = service.PersistStats

// Tenant is one tenant of a multi-tenant Service: its API key, fair-share
// weight, and admission quotas (queue depth, concurrency, CPU-seconds
// budget). See docs/TENANCY.md.
type Tenant = tenant.Tenant

// TenantRegistry holds a Service's tenants and authenticates API keys.
type TenantRegistry = tenant.Registry

// NewTenantRegistry builds a registry from an explicit tenant list.
func NewTenantRegistry(tenants ...Tenant) (*TenantRegistry, error) {
	return tenant.NewRegistry(tenants...)
}

// LoadTenants reads a YAML tenant-registry file (the -tenant-config format
// of parsl-cwl-serve).
func LoadTenants(path string) (*TenantRegistry, error) { return tenant.Load(path) }

// NewService builds the workflow submission service over a loaded DFK.
func NewService(dfk *DFK, opts ServiceOptions) (*Service, error) {
	return service.New(dfk, opts)
}

// Validate checks a CWL document, returning all issues and an error when any
// issue is fatal.
func Validate(doc Document) ([]cwl.ValidationIssue, error) { return cwl.Validate(doc) }
