// Benchmarks regenerating every figure in the paper's evaluation (§VI), plus
// the ablations DESIGN.md calls out. Each figure has one benchmark per
// series point-set; `go test -bench=.` prints the measured values and the
// simulated makespans are reported as the custom metric "makespan_s".
//
//	BenchmarkFig1a*   — Fig. 1a (3-node image workflow sweep)
//	BenchmarkFig1b*   — Fig. 1b (single-node sweep)
//	BenchmarkFig2*    — Fig. 2 (expression scaling)
//	BenchmarkJSExpr / BenchmarkPyExpr — abl-expr (real interpreter costs)
//	BenchmarkExecutorDispatch*        — abl-overhead (live dispatch rates)
//	BenchmarkFunctionalPipeline       — end-to-end CWLApp chain on real files
package cwlparsl

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cwl"
	"repro/internal/cwlexpr"
	"repro/internal/obs"
	"repro/internal/parsl"
	"repro/internal/yamlx"
)

// benchFig1 reports the simulated makespan for one engine/topology/size.
func benchFig1(b *testing.B, kind bench.EngineKind, topo bench.Topology, images int) {
	b.Helper()
	var last bench.Fig1Result
	for i := 0; i < b.N; i++ {
		res, err := bench.SimulateImageWorkflow(kind, topo, images, bench.DefaultImageModel())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.MakespanSec, "makespan_s")
	b.ReportMetric(last.Utilization*100, "util_%")
}

func BenchmarkFig1a(b *testing.B) {
	for _, kind := range []bench.EngineKind{bench.EngineCWLTool, bench.EngineToilSlurm, bench.EngineParslHTEX} {
		for _, n := range []int{100, 500, 1000} {
			b.Run(fmt.Sprintf("%s/images=%d", kind, n), func(b *testing.B) {
				benchFig1(b, kind, bench.PaperThreeNode(), n)
			})
		}
	}
}

func BenchmarkFig1b(b *testing.B) {
	for _, kind := range []bench.EngineKind{bench.EngineCWLTool, bench.EngineToilSlurm, bench.EngineParslThreads} {
		for _, n := range []int{100, 500, 1000} {
			b.Run(fmt.Sprintf("%s/images=%d", kind, n), func(b *testing.B) {
				benchFig1(b, kind, bench.PaperSingleNode(), n)
			})
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	for _, m := range bench.ExprModels() {
		for _, w := range []int{2, 64, 1024} {
			m, w := m, w
			b.Run(fmt.Sprintf("%s/words=%d", m.Name, w), func(b *testing.B) {
				var total float64
				for i := 0; i < b.N; i++ {
					total = m.Total(w)
				}
				b.ReportMetric(total, "modelled_s")
			})
		}
	}
}

// exprBench measures real interpreter throughput on the paper's
// capitalize_words expression (abl-expr).
func exprBench(b *testing.B, engine string, words int) {
	b.Helper()
	msg := bench.WordMessage(words)
	ctx := cwlexpr.Context{Inputs: yamlx.MapOf("message", msg)}
	var eng *cwlexpr.Engine
	var expr string
	var err error
	if engine == "js" {
		eng, err = cwlexpr.NewEngine(cwl.Requirements{
			InlineJavascript: true,
			JSExpressionLib: []string{`
				function capitalize_words(message) {
					return message.split(" ").map(function(w) {
						if (w.length == 0) { return w; }
						return w.charAt(0).toUpperCase() + w.slice(1).toLowerCase();
					}).join(" ");
				}`},
		})
		expr = "$(capitalize_words(inputs.message))"
	} else {
		eng, err = cwlexpr.NewEngine(cwl.Requirements{
			InlinePython: true,
			PyExpressionLib: []string{
				"def capitalize_words(message):\n    return message.title()\n",
			},
		})
		expr = `f"{capitalize_words($(inputs.message))}"`
	}
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Eval(expr, ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJSExpr(b *testing.B) {
	for _, w := range []int{2, 64, 1024} {
		b.Run(fmt.Sprintf("words=%d", w), func(b *testing.B) { exprBench(b, "js", w) })
	}
}

func BenchmarkPyExpr(b *testing.B) {
	for _, w := range []int{2, 64, 1024} {
		b.Run(fmt.Sprintf("words=%d", w), func(b *testing.B) { exprBench(b, "py", w) })
	}
}

// BenchmarkExecutorDispatch measures live per-task dispatch cost through the
// two Parsl executors (abl-overhead's measured counterpart).
func BenchmarkExecutorDispatch(b *testing.B) {
	cases := []struct {
		name string
		mk   func() parsl.Executor
	}{
		{"threads", func() parsl.Executor { return parsl.NewThreadPoolExecutor("threads", 4) }},
		{"htex", func() parsl.Executor {
			return parsl.NewHighThroughputExecutor(parsl.HTEXConfig{
				Label: "htex", WorkersPerNode: 4, MaxBlocks: 1, InitBlocks: 1,
			})
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			dfk, err := parsl.Load(parsl.Config{Executors: []parsl.Executor{c.mk()}})
			if err != nil {
				b.Fatal(err)
			}
			defer dfk.Cleanup()
			app := parsl.NewGoApp("noop", func(parsl.Args) (any, error) { return nil, nil })
			b.ResetTimer()
			futs := make([]*parsl.AppFuture, 0, b.N)
			for i := 0; i < b.N; i++ {
				futs = append(futs, dfk.Submit(app, parsl.Args{}, parsl.CallOpts{}))
			}
			for _, f := range futs {
				if _, err := f.Wait(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFunctionalPipeline runs the real echo→cat CWLApp chain end to end
// (files on disk, subprocesses), measuring the integration's live overhead.
func BenchmarkFunctionalPipeline(b *testing.B) {
	dir := b.TempDir()
	echoCWL := `cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
inputs:
  message: {type: string, inputBinding: {position: 1}}
outputs:
  output: {type: stdout}
stdout: out.txt
`
	catCWL := `cwlVersion: v1.2
class: CommandLineTool
baseCommand: cat
inputs:
  input_file: {type: File, inputBinding: {position: 1}}
outputs:
  output: {type: stdout}
stdout: cat.txt
`
	echoPath := filepath.Join(dir, "echo.cwl")
	catPath := filepath.Join(dir, "cat.cwl")
	if err := os.WriteFile(echoPath, []byte(echoCWL), 0o644); err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(catPath, []byte(catCWL), 0o644); err != nil {
		b.Fatal(err)
	}
	dfk, err := parsl.Load(parsl.Config{
		Executors: []parsl.Executor{parsl.NewThreadPoolExecutor("threads", 8)},
		RunDir:    dir,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer dfk.Cleanup()
	echo, err := core.NewCWLApp(dfk, echoPath)
	if err != nil {
		b.Fatal(err)
	}
	cat, err := core.NewCWLApp(dfk, catPath)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f1 := echo.Call(parsl.Args{"message": "bench"})
		f2 := cat.Call(parsl.Args{"input_file": f1.Output(0)})
		if _, err := f2.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceSubmission measures the submission service's end-to-end
// submit→complete latency at varying run concurrency — the baseline perf
// trajectory for the service path (queue + store + doc cache + runner over a
// shared DFK). Each op submits `conc` echo runs and waits for all of them.
func BenchmarkServiceSubmission(b *testing.B) {
	src := []byte(`cwlVersion: v1.2
class: CommandLineTool
baseCommand: [true]
inputs: {}
outputs: {}
`)
	for _, conc := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("concurrent=%d", conc), func(b *testing.B) {
			dir := b.TempDir()
			dfk, err := parsl.Load(parsl.Config{
				Executors: []parsl.Executor{parsl.NewThreadPoolExecutor("threads", 16)},
				RunDir:    dir,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer dfk.Cleanup()
			svc, err := NewService(dfk, ServiceOptions{Workers: 8, QueueDepth: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close(context.Background())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ids := make([]string, conc)
				for j := 0; j < conc; j++ {
					snap, err := svc.Submit(SubmitRequest{Source: src})
					if err != nil {
						b.Fatal(err)
					}
					ids[j] = snap.ID
				}
				for _, id := range ids {
					snap, err := svc.Wait(context.Background(), id)
					if err != nil {
						b.Fatal(err)
					}
					if snap.State != RunSucceeded {
						b.Fatalf("run %s: %v (%s)", id, snap.State, snap.Error)
					}
				}
			}
			b.ReportMetric(float64(conc)*float64(b.N)/b.Elapsed().Seconds(), "runs/s")
		})
	}

	// The multi-tenant variant: 8 authenticated tenants submitting through
	// the fair-share scheduler. Comparing against concurrent=8 above isolates
	// the tenancy overhead (registry lookup, per-tenant sub-queues, weighted
	// round-robin) at the same offered load.
	b.Run("tenants=8", func(b *testing.B) {
		const tenants = 8
		members := make([]Tenant, tenants)
		for i := range members {
			members[i] = Tenant{Name: fmt.Sprintf("t%d", i), Key: fmt.Sprintf("key-%d", i), Weight: 1 + i%3}
		}
		reg, err := NewTenantRegistry(members...)
		if err != nil {
			b.Fatal(err)
		}
		dir := b.TempDir()
		dfk, err := parsl.Load(parsl.Config{
			Executors: []parsl.Executor{parsl.NewThreadPoolExecutor("threads", 16)},
			RunDir:    dir,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer dfk.Cleanup()
		svc, err := NewService(dfk, ServiceOptions{Workers: 8, QueueDepth: -1, Tenants: reg})
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Close(context.Background())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ids := make([]string, tenants)
			for j := 0; j < tenants; j++ {
				snap, err := svc.Submit(SubmitRequest{Source: src, Tenant: members[j].Name})
				if err != nil {
					b.Fatal(err)
				}
				ids[j] = snap.ID
			}
			for _, id := range ids {
				snap, err := svc.Wait(context.Background(), id)
				if err != nil {
					b.Fatal(err)
				}
				if snap.State != RunSucceeded {
					b.Fatalf("run %s: %v (%s)", id, snap.State, snap.Error)
				}
			}
		}
		b.ReportMetric(float64(tenants)*float64(b.N)/b.Elapsed().Seconds(), "runs/s")
	})
}

// BenchmarkHTEXThroughput measures end-to-end task throughput through the
// pilot-job executor at varying block counts — the companion baseline to
// BenchmarkServiceSubmission for the executor path (interchange → manager
// pull loop → worker pool, with the heartbeat monitor running).
func BenchmarkHTEXThroughput(b *testing.B) {
	for _, blocks := range []int{1, 4} {
		b.Run(fmt.Sprintf("blocks=%d", blocks), func(b *testing.B) {
			htex := parsl.NewHighThroughputExecutor(parsl.HTEXConfig{
				Label: "htex", WorkersPerNode: 4, MaxBlocks: blocks, InitBlocks: blocks,
			})
			dfk, err := parsl.Load(parsl.Config{Executors: []parsl.Executor{htex}})
			if err != nil {
				b.Fatal(err)
			}
			defer dfk.Cleanup()
			app := parsl.NewGoApp("noop", func(parsl.Args) (any, error) { return nil, nil })
			b.ResetTimer()
			futs := make([]*parsl.AppFuture, 0, b.N)
			for i := 0; i < b.N; i++ {
				futs = append(futs, dfk.Submit(app, parsl.Args{}, parsl.CallOpts{}))
			}
			for _, f := range futs {
				if _, err := f.Wait(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
		})
	}
}

// BenchmarkEventsFor measures per-label event retrieval on a DFK shared by
// many submission groups — the hot path behind the service's
// /runs/{id}/events endpoint, which must stay O(per-run) as the shared log
// grows.
func BenchmarkEventsFor(b *testing.B) {
	dfk, err := parsl.Load(parsl.Config{
		Executors: []parsl.Executor{parsl.NewThreadPoolExecutor("threads", 8)},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer dfk.Cleanup()
	app := parsl.NewGoApp("noop", func(parsl.Args) (any, error) { return nil, nil })
	const labels = 64
	futs := make([]*parsl.AppFuture, 0, labels*16)
	for i := 0; i < labels*16; i++ {
		label := fmt.Sprintf("run-%03d", i%labels)
		futs = append(futs, dfk.Submit(app, parsl.Args{}, parsl.CallOpts{Label: label}))
	}
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if evs := dfk.EventsFor(fmt.Sprintf("run-%03d", i%labels)); len(evs) == 0 {
			b.Fatal("no events for label")
		}
	}
}

// benchHotPath measures one workflow execution per op over the inline
// submitter — pure engine overhead (expression compilation, engine
// construction, dataflow scheduling), no subprocesses.
func benchHotPath(b *testing.B, kind string, n int) {
	b.Helper()
	wf, inputs, err := bench.BuildHotPathWorkflow(kind, n)
	if err != nil {
		b.Fatal(err)
	}
	// Warm up once so one-time costs (doc parse already excluded, shared
	// engine construction) don't skew the steady-state number.
	if err := bench.ExecuteHotPath(wf, inputs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bench.ExecuteHotPath(wf, inputs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
}

// BenchmarkExprScatter is the expression-heavy scatter workload: one step,
// scatter width 1024, a valueFrom that calls expressionLib functions. The
// compile-once hot path (cached expression programs + shared engines) is
// what this measures.
func BenchmarkExprScatter(b *testing.B) {
	benchHotPath(b, "expr-scatter", 1024)
}

// BenchmarkDeepChain is the scheduler workload: a 500-step linear chain
// where per-completion readiness discovery dominates.
func BenchmarkDeepChain(b *testing.B) {
	benchHotPath(b, "deep-chain", 500)
}

// BenchmarkWideFanIn is the fan-in workload: 256 independent producers
// feeding one merge_flattened consumer.
func BenchmarkWideFanIn(b *testing.B) {
	benchHotPath(b, "wide-fanin", 256)
}

// BenchmarkYAMLDecode measures CWL document parse cost (load-time overhead
// of the import path).
func BenchmarkYAMLDecode(b *testing.B) {
	doc := strings.Repeat(`step:
  run: tool.cwl
  in:
    x: input
  out: [y]
`, 50)
	for i := 0; i < b.N; i++ {
		if _, err := yamlx.Decode([]byte(doc)); err != nil {
			b.Fatal(err)
		}
	}
}

// providerBatchTasks is the per-op workload of the provider throughput
// benchmarks: each op pushes this many concurrent echo tasks through the
// worker transport. Batching per op — the same convention as
// BenchmarkMetricsHotPath — makes the single-shot CI run (-benchtime=1x)
// measure sustained dispatch throughput rather than one wakeup chain's
// scheduling jitter, and it exercises the frame-coalescing path the batch
// dispatcher exists for.
const providerBatchTasks = 256

// BenchmarkProcessProviderThroughput measures the pipe-protocol overhead of
// process-isolated workers: echo tasks dispatched through an HTEX whose
// blocks are real worker subprocesses (this test binary re-executed in
// worker mode). Each op is a providerBatchTasks-task concurrent batch.
// Gated against BENCH_baseline.json alongside the in-process HTEX numbers,
// so protocol or framing regressions fail CI.
func BenchmarkProcessProviderThroughput(b *testing.B) {
	exe, err := os.Executable()
	if err != nil {
		b.Fatal(err)
	}
	htex, prov, err := bench.BuildProviderHTEX("process",
		[]string{exe}, []string{"PARSL_CWL_WORKER_PROCESS=1"}, 8)
	if err != nil {
		b.Fatal(err)
	}
	if err := htex.Start(); err != nil {
		b.Fatal(err)
	}
	defer htex.Shutdown()
	// Warm up so worker spawn + session negotiation don't skew the sustained
	// number the gate watches (same convention as benchHotPath).
	if err := bench.RunEchoBatch(htex, 16); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bench.RunEchoBatch(htex, providerBatchTasks); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	total := int64(b.N) * providerBatchTasks
	if prov.RemoteTasks() < total {
		b.Fatalf("only %d of %d tasks crossed the worker pipe", prov.RemoteTasks(), total)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "tasks/s")
}

// BenchmarkNetProviderThroughput measures the network fabric's overhead:
// echo tasks dispatched through an HTEX whose single block is a worker
// dialing the engine's interchange over loopback TCP with shared-secret
// authentication. Each op is a providerBatchTasks-task concurrent batch.
// The companion to BenchmarkProcessProviderThroughput for the socket
// transport, gated against BENCH_baseline.json the same way.
func BenchmarkNetProviderThroughput(b *testing.B) {
	htex, prov, err := bench.BuildNetHTEX(8)
	if err != nil {
		b.Fatal(err)
	}
	if err := htex.Start(); err != nil {
		b.Fatal(err)
	}
	defer htex.Shutdown()
	// Warm up so the TCP dial + hello/ack exchange don't skew the sustained
	// number the gate watches.
	if err := bench.RunEchoBatch(htex, 16); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bench.RunEchoBatch(htex, providerBatchTasks); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	total := int64(b.N) * providerBatchTasks
	if prov.RemoteTasks() < total {
		b.Fatalf("only %d of %d tasks crossed the network session", prov.RemoteTasks(), total)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "tasks/s")
}

// BenchmarkMetricsHotPath gates the cost of the obs instrumentation the
// engine layers now run on every task event: a plain counter increment, a
// labeled-counter lookup+increment, and a histogram observation. Each op is
// a batch of 100k update triples so the single-shot CI run (-benchtime=1x)
// still measures real work rather than timer noise.
func BenchmarkMetricsHotPath(b *testing.B) {
	reg := obs.NewRegistry()
	ctr := reg.Counter("bench_ops_total", "Plain counter.")
	vec := reg.CounterVec("bench_ops_by_state_total", "Labeled counter.", "state")
	hist := reg.Histogram("bench_latency_seconds", "Histogram.", nil)
	const batch = 100_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			ctr.Inc()
			vec.With("launched").Inc()
			hist.Observe(float64(j%1000) / 1000)
		}
	}
	b.ReportMetric(3*batch, "updates/op")
}
