package cwlparsl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPublicAPIQuickstart exercises the facade exactly as the README does.
func TestPublicAPIQuickstart(t *testing.T) {
	dir := t.TempDir()
	cwlPath := filepath.Join(dir, "echo.cwl")
	err := os.WriteFile(cwlPath, []byte(`cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
inputs:
  message:
    type: string
    default: "Hello World"
    inputBinding: {position: 1}
outputs:
  output: {type: stdout}
stdout: hello.txt
`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	dfk, err := LoadConfig(ConfigSpec{
		Executor:       "thread-pool",
		WorkersPerNode: 2,
		Nodes:          1,
		Provider:       "local",
		RunDir:         dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dfk.Cleanup()

	echo, err := NewCWLApp(dfk, cwlPath)
	if err != nil {
		t.Fatal(err)
	}
	fut := echo.Call(Args{"message": "Hello, World!"})
	if _, err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(fut.Outputs()[0].File().Path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "Hello, World!" {
		t.Errorf("output = %q", data)
	}
}

func TestPublicAPIRunnerAndValidate(t *testing.T) {
	dir := t.TempDir()
	wfPath := filepath.Join(dir, "wf.cwl")
	err := os.WriteFile(wfPath, []byte(`cwlVersion: v1.2
class: Workflow
inputs:
  msg: string
outputs:
  out:
    type: File
    outputSource: say/output
steps:
  say:
    run:
      class: CommandLineTool
      baseCommand: echo
      stdout: said.txt
      inputs:
        message: {type: string, inputBinding: {position: 1}}
      outputs:
        output: {type: stdout}
    in:
      message: msg
    out: [output]
`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := LoadCWL(wfPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(doc); err != nil {
		t.Fatal(err)
	}
	dfk, err := Load(Config{
		Executors: []Executor{NewThreadPoolExecutor("threads", 2)},
		RunDir:    dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dfk.Cleanup()
	r := NewRunner(dfk)
	out, err := r.Run(doc, MapOf("msg", "facade"))
	if err != nil {
		t.Fatal(err)
	}
	f := out.Value("out").(*Map)
	data, _ := os.ReadFile(f.GetString("path"))
	if strings.TrimSpace(string(data)) != "facade" {
		t.Errorf("content = %q", data)
	}
}

func TestLoadConfigFileFacade(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "config.yml")
	os.WriteFile(cfgPath, []byte("executor: thread-pool\nworkers-per-node: 2\n"), 0o644)
	dfk, err := LoadConfigFile(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	dfk.Cleanup()
	if _, err := LoadConfigFile(filepath.Join(dir, "missing.yml")); err == nil {
		t.Error("missing config accepted")
	}
}

func TestFacadeHelpers(t *testing.T) {
	if NewFile("/a/b").Path != "/a/b" {
		t.Error("NewFile")
	}
	m := NewMap()
	m.Set("k", 1)
	if m.Len() != 1 {
		t.Error("NewMap")
	}
	if MapOf("x", 2).Value("x") != 2 {
		t.Error("MapOf")
	}
}
