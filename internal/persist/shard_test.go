package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

type shardPayload struct {
	Key string `json:"key"`
	N   int    `json:"n"`
}

func TestShardedAppendReplayRoutesByKey(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, 3, Options{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 3 || s.Legacy() {
		t.Fatalf("shards=%d legacy=%v", s.Shards(), s.Legacy())
	}
	keys := []string{"run-000001", "run-000002", "run-000003", "run-000004", "memo/abc"}
	// Per-key ordering: append three generations of each key.
	for gen := 0; gen < 3; gen++ {
		for _, k := range keys {
			if err := s.Append(k, "upd", shardPayload{Key: k, N: gen}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSharded(dir, 3, Options{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	lastGen := map[string]int{}
	perShard := map[int]int{}
	err = s2.Replay(
		func(int, json.RawMessage) error { t.Fatal("unexpected snapshot"); return nil },
		func(shard int, rec Record) error {
			var p shardPayload
			if err := json.Unmarshal(rec.Data, &p); err != nil {
				return err
			}
			if shard != s2.ShardOf(p.Key) {
				t.Errorf("key %q replayed from shard %d, routed to %d", p.Key, shard, s2.ShardOf(p.Key))
			}
			if prev, seen := lastGen[p.Key]; seen && p.N != prev+1 {
				t.Errorf("key %q: generation %d after %d (per-key order broken)", p.Key, p.N, prev)
			}
			lastGen[p.Key] = p.N
			perShard[shard]++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(lastGen) != len(keys) {
		t.Errorf("replayed %d keys, want %d", len(lastGen), len(keys))
	}
	total := 0
	for _, n := range perShard {
		total += n
	}
	if total != 3*len(keys) {
		t.Errorf("replayed %d records, want %d", total, 3*len(keys))
	}
	if len(perShard) < 2 {
		t.Errorf("all records landed on one shard: %v", perShard)
	}
}

func TestShardedStoredCountWinsOverRequested(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, 2, Options{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append("a", "x", shardPayload{Key: "a"}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Reopen asking for a different count: the SHARDS file pins routing.
	s2, err := OpenSharded(dir, 8, Options{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Shards() != 2 {
		t.Errorf("reopen shards = %d, want stored 2", s2.Shards())
	}
}

func TestShardedMalformedShardsFileErrors(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, shardsFile), []byte("banana\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSharded(dir, 2, Options{FsyncInterval: -1}); err == nil {
		t.Fatal("malformed SHARDS file accepted")
	}
}

func TestShardedLegacyLayoutOpensInPlace(t *testing.T) {
	dir := t.TempDir()
	// Build a legacy single-writer journal at the directory root.
	l, err := Open(dir, Options{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := l.Append("legacy", shardPayload{Key: fmt.Sprintf("k%d", i), N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := OpenSharded(dir, 4, Options{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.Legacy() || s.Shards() != 1 {
		t.Fatalf("legacy=%v shards=%d, want in-place single shard", s.Legacy(), s.Shards())
	}
	// Every key routes to shard 0 in a single-shard log.
	if got := s.ShardOf("anything"); got != 0 {
		t.Errorf("ShardOf = %d", got)
	}
	// No SHARDS file or shard dirs were created alongside the legacy layout.
	if _, err := os.Stat(filepath.Join(dir, shardsFile)); err == nil {
		t.Error("legacy open wrote a SHARDS file")
	}
	count := 0
	err = s.Replay(
		func(int, json.RawMessage) error { return nil },
		func(shard int, rec Record) error { count++; return nil })
	if err != nil || count != 4 {
		t.Errorf("legacy replay: count=%d err=%v", count, err)
	}
	// The legacy log still accepts appends.
	if err := s.Append("more", "legacy", shardPayload{Key: "more"}); err != nil {
		t.Error(err)
	}
}

func TestShardedCompactPerShardSnapshots(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, 2, Options{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"a", "b", "c", "d", "e", "f"}
	for _, k := range keys {
		if err := s.Append(k, "upd", shardPayload{Key: k, N: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot: each shard stores only the keys it owns.
	err = s.Compact(func(shard int) (any, error) {
		var own []string
		for _, k := range keys {
			if s.ShardOf(k) == shard {
				own = append(own, k)
			}
		}
		return own, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Compactions != 2 || st.JournalRecords != 0 || st.SnapshotBytes == 0 || st.LastSnapshot.IsZero() {
		t.Errorf("stats after compact = %+v", st)
	}
	s.Close()

	s2, err := OpenSharded(dir, 2, Options{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	restored := map[string]bool{}
	err = s2.Replay(
		func(shard int, data json.RawMessage) error {
			var own []string
			if err := json.Unmarshal(data, &own); err != nil {
				return err
			}
			for _, k := range own {
				if s2.ShardOf(k) != shard {
					t.Errorf("snapshot for shard %d holds foreign key %q", shard, k)
				}
				restored[k] = true
			}
			return nil
		},
		func(int, Record) error { t.Error("journal record survived compaction"); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != len(keys) {
		t.Errorf("restored %d keys from snapshots, want %d", len(restored), len(keys))
	}
}

func TestShardedCompactAbortsOnBuildError(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, 3, Options{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	calls := 0
	err = s.Compact(func(shard int) (any, error) {
		calls++
		if shard == 1 {
			return nil, fmt.Errorf("boom")
		}
		return []string{}, nil
	})
	if err == nil {
		t.Fatal("Compact swallowed a build error")
	}
	if calls != 2 {
		t.Errorf("build called %d times, want sweep aborted after shard 1", calls)
	}
}

func TestShardedStatsAggregates(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, 2, Options{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := s.Append(fmt.Sprintf("k%d", i), "x", shardPayload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.AppendedRecords != 10 || st.JournalRecords != 10 || st.JournalBytes == 0 {
		t.Errorf("aggregate stats = %+v", st)
	}
	if st.Dir != dir {
		t.Errorf("Dir = %q", st.Dir)
	}
}
