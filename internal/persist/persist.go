// Package persist is the durability layer under the Parsl+CWL service: an
// append-only, fsync-batched JSON-lines write-ahead log paired with periodic
// compacted snapshots, in pure Go with no external dependencies.
//
// A Log owns one directory holding:
//
//	snapshot.json   — the most recent compacted state (atomic tmp+rename)
//	wal-NNNNNN.jsonl — numbered journal segments; the highest is active
//	LOCK            — flock'd for the Log's lifetime (single-writer guard)
//
// Recovery is Replay: the snapshot (if any) is delivered first, then every
// journal segment's records in order. Appends reach the OS before Append
// returns (they survive a process kill) and are fsynced in batches
// (FsyncInterval), so one fsync amortizes over many records; an OS crash can
// lose at most the records inside the current batch window.
//
// Compact rotates the journal to a fresh segment under the append gate — a
// cheap in-memory step — then writes the snapshot (marshal, write, fsync,
// rename) outside the gate, so appends never stall behind snapshot I/O. Old
// segments are deleted only after the snapshot is durable.
//
// Crash safety:
//
//   - A torn final line of the active segment (the process died mid-write)
//     is detected at Open and truncated away; everything before it replays.
//     A mid-file read error is NOT treated as a torn tail — Open fails
//     rather than truncating committed records.
//   - A crash between segment rotation and snapshot durability leaves the
//     old snapshot plus all segments: a complete history. A crash after the
//     snapshot rename but before old segments are deleted replays records
//     already reflected in the snapshot.
//   - Two processes cannot share a directory: Open takes a non-blocking
//     flock on LOCK (released automatically if the process dies).
//
// Record application must therefore be idempotent: Replay may deliver
// records that the snapshot already reflects.
package persist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"
)

const (
	snapshotFile = "snapshot.json"
	lockFile     = "LOCK"
	segPrefix    = "wal-"
	segSuffix    = ".jsonl"
)

func segName(n int64) string { return fmt.Sprintf("%s%06d%s", segPrefix, n, segSuffix) }

// DefaultFsyncInterval is the fsync batching window used when
// Options.FsyncInterval is zero.
const DefaultFsyncInterval = 25 * time.Millisecond

// Record is one journal entry: a kind tag plus an opaque payload.
type Record struct {
	// Kind routes the record to its handler during Replay.
	Kind string `json:"k"`
	// Data is the record payload, unmarshalled by the handler.
	Data json.RawMessage `json:"d,omitempty"`
}

// Options tunes a Log.
type Options struct {
	// FsyncInterval is the batching window for journal fsyncs: appended
	// records reach the OS immediately (they survive a process kill) and the
	// disk within this interval (they survive an OS crash). 0 selects
	// DefaultFsyncInterval; negative fsyncs on every append.
	FsyncInterval time.Duration
	// SyncHook replaces the journal fsync call (fault injection: the chaos
	// harness uses it to simulate disk-sync failures and verify they surface
	// as append errors instead of silent data loss). Nil uses File.Sync.
	SyncHook func(f *os.File) error
}

// Stats is a point-in-time durability summary, served by the service's
// /healthz endpoint.
type Stats struct {
	// Dir is the data directory.
	Dir string `json:"dir"`
	// JournalBytes is the total size of all live journal segments.
	JournalBytes int64 `json:"journalBytes"`
	// JournalRecords counts records in the live journal (since the last
	// completed compaction), including records recovered at Open.
	JournalRecords int64 `json:"journalRecords"`
	// AppendedRecords counts records appended by this process.
	AppendedRecords int64 `json:"appendedRecords"`
	// LastSnapshot is when the current snapshot was written (zero when no
	// snapshot exists yet).
	LastSnapshot time.Time `json:"lastSnapshot,omitempty"`
	// SnapshotBytes is the size of the current snapshot file.
	SnapshotBytes int64 `json:"snapshotBytes"`
	// Compactions counts snapshots written by this process.
	Compactions int64 `json:"compactions"`
}

// Log is an append-only journal plus snapshot pair rooted in one directory.
// All methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options
	lock *os.File // flock'd LOCK file

	// compactMu serializes whole compactions (the multi-phase rotate →
	// snapshot → delete sequence), independent of the append gate mu.
	compactMu sync.Mutex

	mu        sync.Mutex
	f         *os.File
	w         *bufio.Writer
	activeSeg int64 // number of the active (highest) segment
	dirty     bool  // bytes in f not yet fsynced
	closed    bool
	stats     Stats
	flushErr  error // first background flush failure, surfaced on Append

	stop chan struct{}
	done chan struct{}
}

// snapshotEnvelope wraps the caller's snapshot state with the write time.
type snapshotEnvelope struct {
	Time time.Time       `json:"time"`
	Data json.RawMessage `json:"data"`
}

// Open creates or reopens the log rooted at dir, taking an exclusive flock
// so a second process cannot corrupt the journal. A torn trailing line of
// the active segment from a previous crash is truncated away. The returned
// Log has a background fsync loop running; Close stops it.
func Open(dir string, opts Options) (*Log, error) {
	if opts.FsyncInterval == 0 {
		opts.FsyncInterval = DefaultFsyncInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	lock, err := acquireLock(dir)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Log, error) {
		lock.Close()
		return nil, err
	}

	segs, err := listSegments(dir)
	if err != nil {
		return fail(err)
	}
	if len(segs) == 0 {
		segs = []int64{1}
	}
	active := segs[len(segs)-1]

	// Non-active segments were settled (synced) before rotation, so they
	// must be fully valid; only the active segment can have a torn tail.
	var oldBytes, oldRecs int64
	for _, n := range segs[:len(segs)-1] {
		recs, bytes, torn, err := scanSegment(filepath.Join(dir, segName(n)))
		if err != nil {
			return fail(err)
		}
		if torn {
			return fail(fmt.Errorf("persist: settled segment %s has a torn tail", segName(n)))
		}
		oldBytes += bytes
		oldRecs += recs
	}
	activePath := filepath.Join(dir, segName(active))
	records, goodBytes, _, err := scanSegment(activePath)
	if err != nil {
		return fail(err)
	}
	f, err := os.OpenFile(activePath, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fail(fmt.Errorf("persist: %w", err))
	}
	// Drop a torn trailing record (crash mid-write) before appending.
	if err := f.Truncate(goodBytes); err != nil {
		f.Close()
		return fail(fmt.Errorf("persist: repairing journal tail: %w", err))
	}
	if _, err := f.Seek(goodBytes, io.SeekStart); err != nil {
		f.Close()
		return fail(fmt.Errorf("persist: %w", err))
	}
	l := &Log{
		dir:       dir,
		opts:      opts,
		lock:      lock,
		f:         f,
		w:         bufio.NewWriterSize(f, 1<<16),
		activeSeg: active,
		stats: Stats{
			Dir:            dir,
			JournalBytes:   oldBytes + goodBytes,
			JournalRecords: oldRecs + records,
		},
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if st, err := os.Stat(filepath.Join(dir, snapshotFile)); err == nil {
		l.stats.SnapshotBytes = st.Size()
		l.stats.LastSnapshot = st.ModTime()
	}
	go l.flushLoop()
	return l, nil
}

// acquireLock flocks dir/LOCK non-blockingly; the kernel releases the lock
// automatically when the process dies, so a kill -9 never leaves the
// directory stuck.
func acquireLock(dir string) (*os.File, error) {
	lf, err := os.OpenFile(filepath.Join(dir, lockFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if err := syscall.Flock(int(lf.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lf.Close()
		if errors.Is(err, syscall.EWOULDBLOCK) {
			return nil, fmt.Errorf("persist: data directory %s is locked by another process", dir)
		}
		return nil, fmt.Errorf("persist: locking %s: %w", dir, err)
	}
	return lf, nil
}

// listSegments returns the journal segment numbers in dir, ascending.
func listSegments(dir string) ([]int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var segs []int64
	for _, e := range entries {
		name := e.Name()
		var n int64
		if _, err := fmt.Sscanf(name, segPrefix+"%d"+segSuffix, &n); err == nil && segName(n) == name {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// scanSegment validates a segment: it returns the record count and byte
// length of the valid prefix, and whether a torn/non-record tail follows it.
// A line must decode into a tagged Record — merely being valid JSON (a
// partially-synced fragment can be) does not make it replayable. Read errors
// other than a clean EOF are returned, never treated as a torn tail: a
// transient I/O failure must not cause committed records to be truncated.
func scanSegment(path string) (records, goodBytes int64, torn bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, 0, false, nil
	}
	if err != nil {
		return 0, 0, false, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var offset int64
	for {
		line, rerr := r.ReadBytes('\n')
		if rerr == io.EOF {
			// A clean end (len==0) or a final line without its newline: the
			// latter is the torn-tail case truncation repairs.
			return records, goodBytes, len(line) > 0, nil
		}
		if rerr != nil {
			return 0, 0, false, fmt.Errorf("persist: reading %s: %w", path, rerr)
		}
		offset += int64(len(line))
		var rec Record
		if uerr := json.Unmarshal(bytes.TrimSpace(line), &rec); uerr != nil || rec.Kind == "" {
			return records, goodBytes, true, nil
		}
		records++
		goodBytes = offset
	}
}

// Replay delivers the current snapshot (when one exists) and then every
// journal record across all segments, in order. It must be called before the
// first Append so the journal read does not race buffered writes. Handler
// errors abort the replay; so do journal read errors and corrupt records —
// recovery never silently truncates.
func (l *Log) Replay(snapshot func(data json.RawMessage) error, record func(Record) error) error {
	snapPath := filepath.Join(l.dir, snapshotFile)
	if data, err := os.ReadFile(snapPath); err == nil {
		var env snapshotEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			return fmt.Errorf("persist: snapshot: %w", err)
		}
		if snapshot != nil {
			if err := snapshot(env.Data); err != nil {
				return err
			}
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("persist: %w", err)
	}

	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, n := range segs {
		if err := l.replaySegment(filepath.Join(l.dir, segName(n)), record); err != nil {
			return err
		}
	}
	return nil
}

func (l *Log) replaySegment(path string, record func(Record) error) error {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 256<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			// Open truncates any non-record tail before appends resume, so a
			// malformed line mid-replay means real corruption — fail loudly
			// rather than silently dropping the rest of the journal.
			return fmt.Errorf("persist: corrupt journal record in %s: %w", path, err)
		}
		if record != nil {
			if err := record(rec); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		// An oversized line or read failure must surface as a failed
		// recovery, not a silently truncated one.
		return fmt.Errorf("persist: reading %s: %w", path, err)
	}
	return nil
}

// Append marshals v and appends it to the journal as one record. The record
// reaches the OS before Append returns (it survives a process kill); it
// reaches the disk within FsyncInterval (batched fsync).
func (l *Log) Append(kind string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("persist: encoding %q record: %w", kind, err)
	}
	line, err := json.Marshal(Record{Kind: kind, Data: data})
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	line = append(line, '\n')

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("persist: log is closed")
	}
	if l.flushErr != nil {
		return l.flushErr
	}
	if _, err := l.w.Write(line); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	// Push to the OS now: buffered bytes die with the process, written bytes
	// survive a kill -9. Only the disk sync is batched.
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	l.dirty = true
	l.stats.JournalBytes += int64(len(line))
	l.stats.JournalRecords++
	l.stats.AppendedRecords++
	metAppends.Inc()
	if l.opts.FsyncInterval < 0 {
		return l.syncLocked()
	}
	return nil
}

// Sync forces any pending journal bytes to disk.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty || l.closed {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	sync := l.opts.SyncHook
	if sync == nil {
		sync = func(f *os.File) error { return f.Sync() }
	}
	if err := sync(l.f); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	l.dirty = false
	metFsyncBatches.Inc()
	return nil
}

func (l *Log) flushLoop() {
	defer close(l.done)
	if l.opts.FsyncInterval < 0 {
		// Every Append syncs inline; nothing to batch.
		<-l.stop
		return
	}
	t := time.NewTicker(l.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if err := l.syncLocked(); err != nil && l.flushErr == nil {
				l.flushErr = err
			}
			l.mu.Unlock()
		}
	}
}

// Compact writes a fresh snapshot and retires the journal segments it
// covers. The append gate is held only for the cheap phase — settling the
// active segment, rotating to a new one, and calling build to capture the
// state — so appends are never blocked behind snapshot marshaling or disk
// I/O. build must not call back into this Log.
//
// Because build runs under the gate immediately after rotation, the state it
// captures covers every record in the retired segments; records appended
// after rotation land in the new segment and may additionally be reflected
// in the state — which is why Replay requires idempotent records. If the
// snapshot write fails (or the process crashes mid-compaction), the retired
// segments are still on disk and recovery replays them.
func (l *Log) Compact(build func() (any, error)) error {
	l.compactMu.Lock()
	defer l.compactMu.Unlock()

	// Phase 1, under the append gate: settle, rotate, capture.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errors.New("persist: log is closed")
	}
	if err := l.syncLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	retired, err := listSegments(l.dir)
	if err != nil {
		l.mu.Unlock()
		return err
	}
	newSeg := l.activeSeg + 1
	nf, err := os.OpenFile(filepath.Join(l.dir, segName(newSeg)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		l.mu.Unlock()
		return fmt.Errorf("persist: rotating journal: %w", err)
	}
	if err := l.f.Close(); err != nil {
		nf.Close()
		l.mu.Unlock()
		return fmt.Errorf("persist: %w", err)
	}
	l.f = nf
	l.w.Reset(nf)
	l.dirty = false
	l.activeSeg = newSeg
	// Everything journaled so far now lives in the retired segments.
	retiredBytes := l.stats.JournalBytes
	retiredRecs := l.stats.JournalRecords
	state, buildErr := build()
	l.mu.Unlock()
	if buildErr != nil {
		return fmt.Errorf("persist: building snapshot: %w", buildErr)
	}

	// Phase 2, off the gate: marshal and durably write the snapshot.
	data, err := json.Marshal(state)
	if err != nil {
		return fmt.Errorf("persist: encoding snapshot: %w", err)
	}
	now := time.Now()
	env, err := json.Marshal(snapshotEnvelope{Time: now, Data: data})
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	snapPath := filepath.Join(l.dir, snapshotFile)
	tmp := snapPath + ".tmp"
	if err := writeFileSync(tmp, env); err != nil {
		return err
	}
	if err := os.Rename(tmp, snapPath); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	syncDir(l.dir)

	// Phase 3: the snapshot owns the retired segments' state; delete them.
	for _, n := range retired {
		_ = os.Remove(filepath.Join(l.dir, segName(n)))
	}

	l.mu.Lock()
	l.stats.JournalBytes -= retiredBytes
	if l.stats.JournalBytes < 0 {
		l.stats.JournalBytes = 0
	}
	l.stats.JournalRecords -= retiredRecs
	if l.stats.JournalRecords < 0 {
		l.stats.JournalRecords = 0
	}
	l.stats.SnapshotBytes = int64(len(env))
	l.stats.LastSnapshot = now
	l.stats.Compactions++
	metCompactions.Inc()
	l.mu.Unlock()
	return nil
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a rename within it is durable. Errors are
// ignored: some filesystems reject directory fsync and the rename is still
// atomic on crash-consistent filesystems.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Stats returns a copy of the current durability counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close flushes and fsyncs the journal, stops the background fsync loop,
// closes the file, and releases the directory lock. Further Appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.syncLocked()
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	<-l.done
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	if l.lock != nil {
		// Closing the fd releases the flock.
		if cerr := l.lock.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
