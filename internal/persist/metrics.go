package persist

import "repro/internal/obs"

// Package-level instruments on the Default registry, aggregated across every
// Log in the process. Per-instance sizes (journal bytes, snapshot age) are
// exported by component collectors reading Stats().
var (
	metAppends = obs.Default().Counter(
		"pcwl_wal_appends_total",
		"Records appended to any write-ahead log in this process.")
	metFsyncBatches = obs.Default().Counter(
		"pcwl_wal_fsync_batches_total",
		"Journal fsync batches flushed to disk (one fsync amortizes many appends).")
	metCompactions = obs.Default().Counter(
		"pcwl_wal_compactions_total",
		"Snapshot compactions completed.")
)
