package persist

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// DefaultShards is the shard count used when OpenSharded is asked for zero.
const DefaultShards = 4

// shardsFile records the shard count in the data directory root. The stored
// count always wins on reopen: records are routed by key hash modulo the
// count, so changing it between runs would strand records in the wrong shard.
const shardsFile = "SHARDS"

func shardDirName(i int) string { return fmt.Sprintf("shard-%02d", i) }

// ShardedLog partitions a journal across N independent Logs by key hash, so
// concurrent appenders whose records hash to different shards never contend
// on one writer mutex or one fsync queue. Each shard is a full Log — its own
// directory, LOCK, segments, snapshot, and fsync batch — and per-key record
// ordering is preserved because a key always routes to the same shard.
// Cross-shard ordering is NOT preserved; callers that need a global order
// must encode a sequence number in the records and sort at replay (the
// service orders runs by their run-ID sequence).
//
// A data directory that already holds a legacy single-writer layout
// (top-level wal-* segments or snapshot.json) is opened as one shard rooted
// at the directory itself, so pre-sharding deployments upgrade in place
// without migration.
type ShardedLog struct {
	dir    string
	shards []*Log
	legacy bool
}

// OpenSharded opens (creating if needed) a sharded log under dir with n
// shards (n <= 0 selects DefaultShards). The shard count is persisted in a
// SHARDS file on first open; on reopen the stored count wins over n, keeping
// key→shard routing stable. Directories holding a legacy unsharded Log are
// opened as a single shard in place.
func OpenSharded(dir string, n int, opts Options) (*ShardedLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if legacyLayout(dir) {
		l, err := Open(dir, opts)
		if err != nil {
			return nil, err
		}
		return &ShardedLog{dir: dir, shards: []*Log{l}, legacy: true}, nil
	}
	if n <= 0 {
		n = DefaultShards
	}
	metaPath := filepath.Join(dir, shardsFile)
	if data, err := os.ReadFile(metaPath); err == nil {
		stored, err := strconv.Atoi(strings.TrimSpace(string(data)))
		if err != nil || stored <= 0 {
			return nil, fmt.Errorf("persist: %s: malformed shard count %q", metaPath, strings.TrimSpace(string(data)))
		}
		n = stored
	} else {
		if err := os.WriteFile(metaPath, []byte(strconv.Itoa(n)+"\n"), 0o644); err != nil {
			return nil, fmt.Errorf("persist: %w", err)
		}
	}
	s := &ShardedLog{dir: dir, shards: make([]*Log, n)}
	for i := range s.shards {
		l, err := Open(filepath.Join(dir, shardDirName(i)), opts)
		if err != nil {
			for _, open := range s.shards[:i] {
				open.Close()
			}
			return nil, err
		}
		s.shards[i] = l
	}
	return s, nil
}

// legacyLayout reports whether dir holds a pre-sharding single-Log layout.
func legacyLayout(dir string) bool {
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err == nil {
		return true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix) {
			return true
		}
	}
	return false
}

// Shards reports the shard count.
func (s *ShardedLog) Shards() int { return len(s.shards) }

// Legacy reports whether the directory was opened as an in-place legacy
// single-writer layout.
func (s *ShardedLog) Legacy() bool { return s.legacy }

// ShardOf maps a record key to its shard index. The mapping is stable for
// the life of the data directory (the shard count is pinned by SHARDS).
func (s *ShardedLog) ShardOf(key string) int {
	if len(s.shards) == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// Append journals one record on the shard owning key. Records sharing a key
// keep their relative order; records with different keys may interleave
// arbitrarily across shards.
func (s *ShardedLog) Append(key, kind string, v any) error {
	return s.shards[s.ShardOf(key)].Append(kind, v)
}

// Sync forces every shard's journal to disk.
func (s *ShardedLog) Sync() error {
	var first error
	for _, l := range s.shards {
		if err := l.Sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Replay delivers each shard's state in shard order: shard i's snapshot (if
// any), then its journal records, then shard i+1. Within a shard the replay
// contract matches Log.Replay; across shards no ordering is implied, so the
// caller must reorder by its own sequence numbers where global order matters.
func (s *ShardedLog) Replay(snapshot func(shard int, data json.RawMessage) error, record func(shard int, rec Record) error) error {
	for i, l := range s.shards {
		i := i
		err := l.Replay(
			func(data json.RawMessage) error { return snapshot(i, data) },
			func(rec Record) error { return record(i, rec) },
		)
		if err != nil {
			return err
		}
	}
	return nil
}

// Compact snapshots every shard. build is called once per shard and must
// return that shard's subset of the state (records keyed to other shards are
// replayed from their own snapshots). A failed shard compaction aborts the
// sweep; already-compacted shards keep their new snapshots, which is safe
// because each shard is independently consistent.
func (s *ShardedLog) Compact(build func(shard int) (any, error)) error {
	for i, l := range s.shards {
		i := i
		if err := l.Compact(func() (any, error) { return build(i) }); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Stats aggregates durability stats across shards: byte and record counts
// sum, LastSnapshot is the oldest shard snapshot (the conservative answer to
// "how stale could recovery be"), and Dir is the root directory.
func (s *ShardedLog) Stats() Stats {
	agg := Stats{Dir: s.dir}
	for i, l := range s.shards {
		st := l.Stats()
		agg.JournalBytes += st.JournalBytes
		agg.JournalRecords += st.JournalRecords
		agg.AppendedRecords += st.AppendedRecords
		agg.SnapshotBytes += st.SnapshotBytes
		agg.Compactions += st.Compactions
		if i == 0 || (st.LastSnapshot.Before(agg.LastSnapshot)) {
			agg.LastSnapshot = st.LastSnapshot
		}
	}
	return agg
}

// Close releases every shard. The first error is returned; all shards are
// closed regardless.
func (s *ShardedLog) Close() error {
	var first error
	for _, l := range s.shards {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
