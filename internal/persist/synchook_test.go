package persist

import (
	"errors"
	"os"
	"testing"
	"time"
)

// TestSyncHookFaultInjectionDirect: with per-append fsync, an injected fsync
// failure surfaces on the Append that triggered it.
func TestSyncHookFaultInjectionDirect(t *testing.T) {
	boom := errors.New("injected fsync failure")
	fails := 0
	l, err := Open(t.TempDir(), Options{
		FsyncInterval: -1, // sync on every append
		SyncHook: func(f *os.File) error {
			fails++
			if fails > 1 {
				return boom
			}
			return f.Sync()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	if err := l.Append("kv", kv{K: "a", V: 1}); err != nil {
		t.Fatalf("first append (hook passes through): %v", err)
	}
	if err := l.Append("kv", kv{K: "b", V: 2}); !errors.Is(err, boom) {
		t.Fatalf("second append err = %v, want injected failure", err)
	}
}

// TestSyncHookFaultInjectionBatched: with batched fsync the failure happens in
// the background flush loop and must surface on a later Append, so callers
// learn their journal is no longer durable.
func TestSyncHookFaultInjectionBatched(t *testing.T) {
	boom := errors.New("injected fsync failure")
	l, err := Open(t.TempDir(), Options{
		FsyncInterval: time.Millisecond,
		SyncHook:      func(*os.File) error { return boom },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	if err := l.Append("kv", kv{K: "a", V: 1}); err != nil && !errors.Is(err, boom) {
		t.Fatalf("append: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := l.Append("kv", kv{K: "b", V: 2})
		if errors.Is(err, boom) {
			return
		}
		if err != nil {
			t.Fatalf("append failed with foreign error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("background fsync failure never surfaced on Append")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
