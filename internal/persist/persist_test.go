package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

type kv struct {
	K string `json:"k"`
	V int    `json:"v"`
}

func replayAll(t *testing.T, l *Log) (snap json.RawMessage, recs []Record) {
	t.Helper()
	err := l.Replay(
		func(data json.RawMessage) error { snap = data; return nil },
		func(r Record) error { recs = append(recs, r); return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	return snap, recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append("set", kv{K: fmt.Sprintf("key%d", i), V: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	snap, recs := replayAll(t, l2)
	if snap != nil {
		t.Errorf("unexpected snapshot before any compaction: %s", snap)
	}
	if len(recs) != 10 {
		t.Fatalf("replayed %d records, want 10", len(recs))
	}
	var v kv
	if err := json.Unmarshal(recs[7].Data, &v); err != nil {
		t.Fatal(err)
	}
	if recs[7].Kind != "set" || v.K != "key7" || v.V != 7 {
		t.Errorf("record 7 = %q %+v", recs[7].Kind, v)
	}
	if st := l2.Stats(); st.JournalRecords != 10 || st.JournalBytes == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCompactSnapshotsAndTruncates(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	state := map[string]int{}
	for i := 0; i < 5; i++ {
		state[fmt.Sprintf("key%d", i)] = i
		if err := l.Append("set", kv{K: fmt.Sprintf("key%d", i), V: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact(func() (any, error) { return state, nil }); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.JournalRecords != 0 || st.JournalBytes != 0 || st.LastSnapshot.IsZero() || st.Compactions != 1 {
		t.Errorf("post-compaction stats = %+v", st)
	}
	// Records after the snapshot land in the fresh journal.
	if err := l.Append("set", kv{K: "after", V: 99}); err != nil {
		t.Fatal(err)
	}
	snap, recs := replayAll(t, l)
	var got map[string]int
	if err := json.Unmarshal(snap, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got["key3"] != 3 {
		t.Errorf("snapshot = %v", got)
	}
	if len(recs) != 1 || recs[0].Kind != "set" {
		t.Fatalf("post-snapshot records = %+v", recs)
	}
}

func TestTornTailIsRepaired(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append("set", kv{K: "k", V: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append half a record, no newline.
	f, err := os.OpenFile(filepath.Join(dir, segName(1)), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"k":"set","d":{"k":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	_, recs := replayAll(t, l2)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records after torn tail, want 3", len(recs))
	}
	// A tail that is valid JSON but not a Record (a partially-synced
	// fragment) must be truncated at Open too, not poison later replays.
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	f, err = os.OpenFile(filepath.Join(dir, segName(1)), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("5\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	l2, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, recs = replayAll(t, l2)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records after non-record tail, want 3", len(recs))
	}
	// The repaired journal accepts new appends cleanly.
	if err := l2.Append("set", kv{K: "fresh", V: 4}); err != nil {
		t.Fatal(err)
	}
	_, recs = replayAll(t, l2)
	if len(recs) != 4 {
		t.Fatalf("after repair+append: %d records, want 4", len(recs))
	}
}

func TestAppendsSurviveWithoutClose(t *testing.T) {
	// A kill -9 never calls Close; everything Append returned for must still
	// replay (writes reach the OS synchronously; only fsync is batched).
	// The live directory is flock'd, so — like the kill -9 recovery test at
	// the service layer — the crash image is a copy taken without Close.
	dir := t.TempDir()
	l, err := Open(dir, Options{FsyncInterval: time.Hour}) // batch "never"
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 4; i++ {
		if err := l.Append("set", kv{V: i}); err != nil {
			t.Fatal(err)
		}
	}
	crash := t.TempDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crash, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	l2, err := Open(crash, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, recs := replayAll(t, l2); len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
}

func TestOpenRefusesLockedDirectory(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open of a live directory succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The lock releases with Close.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	l2.Close()
}

func TestReplayOrdersAcrossLeftoverSegments(t *testing.T) {
	// A crash between segment rotation and snapshot durability leaves
	// multiple segments; replay must deliver them oldest-first.
	dir := t.TempDir()
	w1 := `{"k":"set","d":{"k":"a","v":1}}` + "\n" + `{"k":"set","d":{"k":"b","v":2}}` + "\n"
	w2 := `{"k":"set","d":{"k":"c","v":3}}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, segName(1)), []byte(w1), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(2)), []byte(w2), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	_, recs := replayAll(t, l)
	var keys []string
	for _, r := range recs {
		var v kv
		if err := json.Unmarshal(r.Data, &v); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, v.K)
	}
	if want := []string{"a", "b", "c"}; !equalStrings(keys, want) {
		t.Fatalf("replay order = %v, want %v", keys, want)
	}
	// New appends land in the highest segment; a compaction retires all the
	// leftovers.
	if err := l.Append("set", kv{K: "d", V: 4}); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(func() (any, error) { return "state", nil }); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Errorf("segments after compaction = %v, want just the fresh one", segs)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{FsyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append("set", kv{V: i}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, recs := replayAll(t, l2); len(recs) != goroutines*per {
		t.Fatalf("replayed %d records, want %d", len(recs), goroutines*per)
	}
}

func TestCompactHoldsAppendGate(t *testing.T) {
	// Appends racing a compaction must land in the journal *after* the
	// snapshot, never be lost between state capture and truncation.
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// The appender marks each id applied *before* appending it, so at any
	// build call the captured count covers every id whose append completed.
	// Replay may then see an id both in the snapshot and the journal
	// (records are idempotent by contract) but must never lose one.
	const total = 220
	var mu sync.Mutex
	applied := 0
	appendN := func(n int) {
		for i := 0; i < n; i++ {
			mu.Lock()
			applied++
			id := applied
			mu.Unlock()
			if err := l.Append("inc", kv{V: id}); err != nil {
				t.Error(err)
				return
			}
		}
	}
	appendN(20)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); appendN(total - 20) }()
	for i := 0; i < 5; i++ {
		err := l.Compact(func() (any, error) {
			mu.Lock()
			defer mu.Unlock()
			return applied, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	var base int
	journal := map[int]bool{}
	err = l.Replay(
		func(data json.RawMessage) error { return json.Unmarshal(data, &base) },
		func(r Record) error {
			var v kv
			if err := json.Unmarshal(r.Data, &v); err != nil {
				return err
			}
			journal[v.V] = true
			return nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= total; id++ {
		if id > base && !journal[id] {
			t.Fatalf("record %d lost: snapshot covers <=%d and journal has %d entries", id, base, len(journal))
		}
	}
}

func TestCloseThenAppendFails(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("set", kv{}); err == nil {
		t.Error("Append after Close succeeded")
	}
	if err := l.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestEverySyncOption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append("set", kv{V: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, recs := replayAll(t, l2); len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1", len(recs))
	}
}
