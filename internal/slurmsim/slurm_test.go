package slurmsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func newSched(nodes, cores int, opts Options) (*sim.Engine, *Scheduler) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, nodes, cores)
	return eng, New(eng, cl, opts)
}

func TestSingleJobLifecycle(t *testing.T) {
	eng, s := newSched(1, 4, DefaultOptions())
	var allocSeen []string
	j := &Job{Name: "step", Cores: 1, Run: func(alloc []string, done func()) {
		allocSeen = alloc
		eng.Schedule(10, done)
	}}
	id := s.Submit(j)
	if id != 1 {
		t.Errorf("id = %d", id)
	}
	if st, _ := s.State(id); st != StatePending {
		t.Errorf("initial state = %v", st)
	}
	end := eng.Run()
	if st, _ := s.State(id); st != StateCompleted {
		t.Errorf("final state = %v", st)
	}
	if len(allocSeen) != 1 {
		t.Errorf("alloc = %v", allocSeen)
	}
	// Makespan must include submit latency + sched cycle + start overhead + 10s run.
	opts := DefaultOptions()
	min := opts.SubmitLatency + opts.SchedInterval + opts.StartOverhead + 10
	if end < min-1e-9 {
		t.Errorf("end = %v < %v", end, min)
	}
	if j.QueueWait() < 0 {
		t.Errorf("queue wait = %v", j.QueueWait())
	}
}

func TestPerStepJobOverheadDominates(t *testing.T) {
	// 10 sequential 0.1s steps as batch jobs: the batch overhead per job
	// (submit + cycle + start) should dominate the 1s of compute. This is
	// the architectural reason Toil-on-Slurm loses in Fig. 1.
	opts := DefaultOptions()
	eng, s := newSched(1, 4, opts)
	var runNext func(i int)
	runNext = func(i int) {
		if i >= 10 {
			return
		}
		s.Submit(&Job{Cores: 1, Run: func(_ []string, done func()) {
			eng.Schedule(0.1, func() {
				done()
				runNext(i + 1)
			})
		}})
	}
	runNext(0)
	end := eng.Run()
	perJob := opts.SubmitLatency + opts.StartOverhead + 0.1
	if end < 10*perJob {
		t.Errorf("end = %v, want >= %v", end, 10*perJob)
	}
}

func TestWholeNodeAllocation(t *testing.T) {
	eng, s := newSched(3, 48, DefaultOptions())
	var alloc []string
	s.Submit(&Job{Name: "pilot", Nodes: 2, Run: func(a []string, done func()) {
		alloc = a
		eng.Schedule(5, done)
	}})
	eng.Run()
	if len(alloc) != 2 {
		t.Fatalf("alloc = %v", alloc)
	}
	if s.Cluster().FreeCores() != 144 {
		t.Errorf("cores not returned: free = %d", s.Cluster().FreeCores())
	}
}

func TestWholeNodeWaitsForFullNodes(t *testing.T) {
	eng, s := newSched(2, 4, DefaultOptions())
	var pilotStart float64
	// A core job occupies node capacity first.
	s.Submit(&Job{Cores: 1, Run: func(_ []string, done func()) {
		eng.Schedule(20, done)
	}})
	s.Submit(&Job{Nodes: 2, Run: func(_ []string, done func()) {
		pilotStart = eng.Now()
		eng.Schedule(1, done)
	}})
	eng.Run()
	if pilotStart < 20 {
		t.Errorf("pilot started at %v before node drained", pilotStart)
	}
}

func TestBackfill(t *testing.T) {
	// Head-of-queue pilot needs 2 free nodes; a 1-core job behind it should
	// backfill onto the remaining capacity instead of waiting.
	opts := DefaultOptions()
	opts.Backfill = true
	eng, s := newSched(2, 2, opts)
	// Occupy one core so the 2-node pilot cannot start.
	s.Submit(&Job{Cores: 1, Run: func(_ []string, done func()) {
		eng.Schedule(30, done)
	}})
	var pilotStart, smallStart float64 = -1, -1
	s.Submit(&Job{Nodes: 2, Run: func(_ []string, done func()) {
		pilotStart = eng.Now()
		eng.Schedule(1, done)
	}})
	s.Submit(&Job{Cores: 1, Run: func(_ []string, done func()) {
		smallStart = eng.Now()
		eng.Schedule(1, done)
	}})
	eng.Run()
	if smallStart < 0 || pilotStart < 0 {
		t.Fatalf("jobs did not run: small=%v pilot=%v", smallStart, pilotStart)
	}
	if smallStart >= pilotStart {
		t.Errorf("backfill failed: small=%v pilot=%v", smallStart, pilotStart)
	}
}

func TestNoBackfillFIFO(t *testing.T) {
	opts := DefaultOptions()
	opts.Backfill = false
	eng, s := newSched(2, 2, opts)
	s.Submit(&Job{Cores: 1, Run: func(_ []string, done func()) {
		eng.Schedule(30, done)
	}})
	var pilotStart, smallStart float64 = -1, -1
	s.Submit(&Job{Nodes: 2, Run: func(_ []string, done func()) {
		pilotStart = eng.Now()
		eng.Schedule(1, done)
	}})
	s.Submit(&Job{Cores: 1, Run: func(_ []string, done func()) {
		smallStart = eng.Now()
		eng.Schedule(1, done)
	}})
	eng.Run()
	if smallStart < pilotStart {
		t.Errorf("strict FIFO violated: small=%v pilot=%v", smallStart, pilotStart)
	}
}

func TestCancelPending(t *testing.T) {
	eng, s := newSched(1, 1, DefaultOptions())
	s.Submit(&Job{Cores: 1, Run: func(_ []string, done func()) {
		eng.Schedule(50, done)
	}})
	id := s.Submit(&Job{Cores: 1, Run: func(_ []string, done func()) {
		t.Error("cancelled job ran")
		done()
	}})
	eng.Schedule(5, func() { s.Cancel(id) })
	eng.Run()
	if st, _ := s.State(id); st != StateCancelled {
		t.Errorf("state = %v", st)
	}
}

func TestCancelUnknownJob(t *testing.T) {
	_, s := newSched(1, 1, DefaultOptions())
	s.Cancel(999) // must not panic
	if _, ok := s.State(999); ok {
		t.Error("unknown job reported state")
	}
}

func TestCountersAndQueueLength(t *testing.T) {
	eng, s := newSched(1, 1, DefaultOptions())
	for i := 0; i < 3; i++ {
		s.Submit(&Job{Cores: 1, Run: func(_ []string, done func()) {
			eng.Schedule(1, done)
		}})
	}
	eng.Run()
	if s.Started() != 3 || s.Finished() != 3 || s.QueueLength() != 0 {
		t.Errorf("started=%d finished=%d q=%d", s.Started(), s.Finished(), s.QueueLength())
	}
}

// Property: jobs never oversubscribe nodes and every submitted job reaches a
// terminal state.
func TestSchedulerConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		nodes := 1 + rng.Intn(3)
		cores := 1 + rng.Intn(4)
		cl := cluster.New(eng, nodes, cores)
		s := New(eng, cl, DefaultOptions())
		njobs := 30
		var ids []int
		for i := 0; i < njobs; i++ {
			var j *Job
			if rng.Intn(4) == 0 {
				j = &Job{Nodes: 1 + rng.Intn(nodes)}
			} else {
				j = &Job{Cores: 1 + rng.Intn(cores)}
			}
			dur := float64(rng.Intn(5))
			j.Run = func(_ []string, done func()) {
				eng.Schedule(dur, done)
			}
			delay := float64(rng.Intn(10))
			eng.Schedule(delay, func() { ids = append(ids, s.Submit(j)) })
		}
		eng.Run()
		for _, id := range ids {
			st, ok := s.State(id)
			if !ok || (st != StateCompleted && st != StateCancelled) {
				return false
			}
		}
		return cl.FreeCores() == cl.TotalCores()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestJobStateString(t *testing.T) {
	cases := map[JobState]string{
		StatePending:   "PENDING",
		StateRunning:   "RUNNING",
		StateCompleted: "COMPLETED",
		StateCancelled: "CANCELLED",
		JobState(9):    "JobState(9)",
	}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("%d.String() = %q", int(st), st.String())
		}
	}
}
