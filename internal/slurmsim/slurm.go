// Package slurmsim simulates a Slurm-style batch scheduler over the cluster
// model. Two of the paper's execution paths go through a batch system:
//
//   - toil-cwl-runner configured with the slurm batch system submits one batch
//     job per workflow step;
//   - Parsl's SlurmProvider submits pilot jobs (blocks) that then host many
//     tasks without further scheduler involvement.
//
// The simulator reproduces the characteristics that matter for those paths:
// submission latency (sbatch round trip), a periodic scheduling cycle, FIFO
// order with simple backfill, whole-job node/core allocations, and polling
// visibility (squeue).
package slurmsim

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// JobState is the lifecycle state of a batch job.
type JobState int

const (
	// StatePending means the job is queued and waiting for resources.
	StatePending JobState = iota
	// StateRunning means the job has been allocated and started.
	StateRunning
	// StateCompleted means the job finished and released its allocation.
	StateCompleted
	// StateCancelled means the job was cancelled before or during execution.
	StateCancelled
)

// String returns the squeue-style name of the state.
func (s JobState) String() string {
	switch s {
	case StatePending:
		return "PENDING"
	case StateRunning:
		return "RUNNING"
	case StateCompleted:
		return "COMPLETED"
	case StateCancelled:
		return "CANCELLED"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// Job describes a batch request. Exactly one of the two shapes is used:
// Nodes>0 requests whole nodes (pilot blocks); otherwise Cores requests that
// many cores on a single node (per-step jobs).
type Job struct {
	Name  string
	Nodes int // whole nodes wanted (0 = per-core job)
	Cores int // cores on one node (ignored if Nodes > 0)

	// Run is invoked when the allocation starts. The job holds its
	// allocation until done is called. alloc lists granted node IDs.
	Run func(alloc []string, done func())

	id      int
	state   JobState
	submitT float64
	startT  float64
	endT    float64

	grantedNodes []*cluster.Node // whole-node grants
	grantedCore  *cluster.Node   // single-node core grant
}

// ID returns the job id assigned at submit time.
func (j *Job) ID() int { return j.id }

// State returns the job's current lifecycle state.
func (j *Job) State() JobState { return j.state }

// QueueWait returns the pending duration (start − submit); for unstarted jobs
// it returns −1.
func (j *Job) QueueWait() float64 {
	if j.state == StatePending {
		return -1
	}
	return j.startT - j.submitT
}

// Options configures the simulated scheduler.
type Options struct {
	// SubmitLatency is the sbatch round-trip before a job enters the queue.
	SubmitLatency float64
	// SchedInterval is the periodic scheduling cycle (Slurm's sched cycle).
	SchedInterval float64
	// StartOverhead is slurmd job-launch overhead once resources are granted.
	StartOverhead float64
	// Backfill lets later jobs start when the queue head does not fit.
	Backfill bool
}

// DefaultOptions mirror a responsive but realistic Slurm configuration.
func DefaultOptions() Options {
	return Options{
		SubmitLatency: 0.3,
		SchedInterval: 2.0,
		StartOverhead: 0.5,
		Backfill:      true,
	}
}

// Scheduler is the simulated batch system.
type Scheduler struct {
	eng     *sim.Engine
	cluster *cluster.Cluster
	opts    Options

	queue    []*Job
	jobs     map[int]*Job
	nextID   int
	cycling  bool
	started  int
	finished int
}

// New creates a scheduler over an existing simulated cluster.
func New(eng *sim.Engine, cl *cluster.Cluster, opts Options) *Scheduler {
	if opts.SchedInterval <= 0 {
		opts.SchedInterval = 0.1
	}
	return &Scheduler{eng: eng, cluster: cl, opts: opts, jobs: map[int]*Job{}, nextID: 1}
}

// Cluster returns the underlying cluster.
func (s *Scheduler) Cluster() *cluster.Cluster { return s.cluster }

// Submit enqueues a job (after the submit latency) and returns its id
// immediately, like sbatch printing a job id.
func (s *Scheduler) Submit(j *Job) int {
	j.id = s.nextID
	s.nextID++
	j.state = StatePending
	s.jobs[j.id] = j
	s.eng.Schedule(s.opts.SubmitLatency, func() {
		j.submitT = s.eng.Now()
		s.queue = append(s.queue, j)
		s.kickCycle()
	})
	return j.id
}

// Cancel cancels a pending job (scancel). Running jobs keep their allocation
// until their Run calls done; cancelling them only marks the state.
func (s *Scheduler) Cancel(id int) {
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	switch j.state {
	case StatePending:
		j.state = StateCancelled
		for i, q := range s.queue {
			if q.id == id {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
	case StateRunning:
		j.state = StateCancelled
	}
}

// State reports a job's state (squeue/sacct).
func (s *Scheduler) State(id int) (JobState, bool) {
	j, ok := s.jobs[id]
	if !ok {
		return 0, false
	}
	return j.state, true
}

// QueueLength returns the number of pending jobs.
func (s *Scheduler) QueueLength() int { return len(s.queue) }

// Started returns how many jobs have started.
func (s *Scheduler) Started() int { return s.started }

// Finished returns how many jobs have completed or been cancelled while
// running.
func (s *Scheduler) Finished() int { return s.finished }

// kickCycle schedules a scheduling cycle if one is not already pending.
func (s *Scheduler) kickCycle() {
	if s.cycling {
		return
	}
	s.cycling = true
	s.eng.Schedule(s.opts.SchedInterval, func() {
		s.cycling = false
		s.cycle()
		if len(s.queue) > 0 {
			s.kickCycle()
		}
	})
}

// cycle attempts to start queued jobs in FIFO order; with Backfill, jobs that
// fit may start even when an earlier, larger job cannot.
func (s *Scheduler) cycle() {
	i := 0
	for i < len(s.queue) {
		j := s.queue[i]
		if s.tryStart(j) {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			continue
		}
		if !s.opts.Backfill {
			return
		}
		i++
	}
}

func (s *Scheduler) tryStart(j *Job) bool {
	if j.Nodes > 0 {
		// Whole-node allocation: need j.Nodes completely free nodes.
		var free []*cluster.Node
		for _, n := range s.cluster.Nodes {
			if n.Cores.InUse() == 0 && n.Cores.Waiting() == 0 {
				free = append(free, n)
				if len(free) == j.Nodes {
					break
				}
			}
		}
		if len(free) < j.Nodes {
			return false
		}
		for _, n := range free {
			if !n.Cores.TryAcquire(n.Cores.Capacity()) {
				panic("slurmsim: free node refused acquire")
			}
		}
		j.grantedNodes = free
		s.launch(j, nodeIDs(free))
		return true
	}
	cores := j.Cores
	if cores <= 0 {
		cores = 1
	}
	node := s.pickNode(cores)
	if node == nil {
		return false
	}
	if !node.Cores.TryAcquire(cores) {
		return false
	}
	j.grantedCore = node
	s.launch(j, []string{node.ID})
	return true
}

func (s *Scheduler) pickNode(cores int) *cluster.Node {
	var best *cluster.Node
	for _, n := range s.cluster.Nodes {
		if n.Cores.Free() < cores || n.Cores.Waiting() > 0 {
			continue
		}
		if best == nil || n.Cores.Free() > best.Cores.Free() {
			best = n
		}
	}
	return best
}

func nodeIDs(nodes []*cluster.Node) []string {
	ids := make([]string, len(nodes))
	for i, n := range nodes {
		ids[i] = n.ID
	}
	return ids
}

func (s *Scheduler) launch(j *Job, alloc []string) {
	s.eng.Schedule(s.opts.StartOverhead, func() {
		if j.state == StateCancelled {
			s.releaseJob(j)
			return
		}
		j.state = StateRunning
		j.startT = s.eng.Now()
		s.started++
		done := func() {
			if j.state == StateRunning {
				j.state = StateCompleted
			}
			j.endT = s.eng.Now()
			s.finished++
			s.releaseJob(j)
			s.kickCycle()
		}
		if j.Run != nil {
			j.Run(alloc, done)
		} else {
			done()
		}
	})
}

func (s *Scheduler) releaseJob(j *Job) {
	for _, n := range j.grantedNodes {
		n.Cores.Release(n.Cores.Capacity())
	}
	j.grantedNodes = nil
	if j.grantedCore != nil {
		cores := j.Cores
		if cores <= 0 {
			cores = 1
		}
		j.grantedCore.Cores.Release(cores)
		j.grantedCore = nil
	}
}
