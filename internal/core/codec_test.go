package core

import (
	"reflect"
	"testing"

	"repro/internal/parsl"
	"repro/internal/yamlx"
)

func TestResultCodecRoundTrips(t *testing.T) {
	c := ResultCodec{}
	cases := []any{
		nil,
		"hello",
		true,
		int64(42),
		2.5,
		parsl.NewFile("/work/out.txt"),
		parsl.BashResult{Command: "echo hi", ExitCode: 0, Stdout: "/tmp/o"},
		[]any{int64(1), "two", nil, []any{false}},
		yamlx.MapOf("out", yamlx.MapOf("class", "File", "path", "/work/x"), "count", int64(3)),
	}
	for _, in := range cases {
		raw, ok := c.Encode(in)
		if !ok {
			t.Errorf("Encode(%#v) not supported", in)
			continue
		}
		out, err := c.Decode(raw)
		if err != nil {
			t.Errorf("Decode(%s): %v", raw, err)
			continue
		}
		// Maps compare via their canonical JSON (pointer identity differs).
		if m, isMap := in.(*yamlx.Map); isMap {
			om, okm := out.(*yamlx.Map)
			if !okm {
				t.Errorf("map decoded as %T", out)
				continue
			}
			a, _ := m.MarshalJSON()
			b, _ := om.MarshalJSON()
			if string(a) != string(b) {
				t.Errorf("map round trip: %s != %s", a, b)
			}
			continue
		}
		if !reflect.DeepEqual(out, in) {
			t.Errorf("round trip %#v -> %#v", in, out)
		}
	}
}

func TestResultCodecIntWidens(t *testing.T) {
	c := ResultCodec{}
	raw, ok := c.Encode(7)
	if !ok {
		t.Fatal("int not encodable")
	}
	out, err := c.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if out != int64(7) {
		t.Errorf("int decoded as %T %v, want int64 7", out, out)
	}
}

func TestResultCodecRejectsUnsupported(t *testing.T) {
	c := ResultCodec{}
	type custom struct{ X int }
	for _, v := range []any{custom{1}, make(chan int), func() {}, map[string]any{"a": 1}, []any{custom{}}} {
		if _, ok := c.Encode(v); ok {
			t.Errorf("Encode(%T) unexpectedly supported", v)
		}
	}
}

func TestResultCodecDecodeErrors(t *testing.T) {
	c := ResultCodec{}
	for _, raw := range []string{``, `{"t":"wat","v":1}`, `{"t":"obj","v":[1]}`, `{"t":"file","v":{}}`} {
		if _, err := c.Decode([]byte(raw)); err == nil {
			t.Errorf("Decode(%q) succeeded", raw)
		}
	}
}
