package core

import (
	"os"
	"testing"

	"repro/internal/cwl"
	"repro/internal/parsl"
	"repro/internal/provider"
	"repro/internal/runner"
	"repro/internal/yamlx"
)

const echoToolSrc = `cwlVersion: v1.2
class: CommandLineTool
baseCommand: [echo, -n]
inputs:
  message:
    type: string
    inputBinding: {position: 1}
outputs:
  out:
    type: stdout
stdout: out.txt
`

func loadEchoTool(t *testing.T) *cwl.CommandLineTool {
	t.Helper()
	doc, err := cwl.ParseBytes([]byte(echoToolSrc), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	tool, ok := doc.(*cwl.CommandLineTool)
	if !ok {
		t.Fatalf("parsed %T", doc)
	}
	return tool
}

// TestToolAppRemoteSpecMatchesInProcess proves provider independence at the
// task level: executing the serialized invocation out of band produces the
// same outputs object as the in-process Execute path.
func TestToolAppRemoteSpecMatchesInProcess(t *testing.T) {
	tool := loadEchoTool(t)
	if tool.Raw == nil {
		t.Fatal("parsed tool lost its raw source")
	}
	inputs := yamlx.NewMap()
	inputs.Set("message", "same-everywhere")

	inApp := &toolApp{name: "t", tool: tool, inputs: inputs, workRoot: t.TempDir()}
	local, err := inApp.Execute(nil, parsl.Args{})
	if err != nil {
		t.Fatal(err)
	}

	remApp := &toolApp{name: "t", tool: tool, inputs: inputs, workRoot: t.TempDir()}
	spec := remApp.RemoteSpec(parsl.Args{})
	if spec == nil {
		t.Fatal("no remote spec for a serializable invocation")
	}
	raw, err := provider.ExecuteRemote(spec)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := provider.DecodeResult(raw)
	if err != nil {
		t.Fatal(err)
	}

	lm := local.(*yamlx.Map)
	rm := remote.(*yamlx.Map)
	lf, _ := lm.Value("out").(*yamlx.Map)
	rf, _ := rm.Value("out").(*yamlx.Map)
	if lf == nil || rf == nil {
		t.Fatalf("missing out file: local=%v remote=%v", lm.Keys(), rm.Keys())
	}
	lb, err := os.ReadFile(lf.GetString("path"))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := os.ReadFile(rf.GetString("path"))
	if err != nil {
		t.Fatal(err)
	}
	if string(lb) != "same-everywhere" || string(lb) != string(rb) {
		t.Fatalf("outputs differ: local=%q remote=%q", lb, rb)
	}
}

// TestToolAppRemoteSpecDisabledForCustomBackend: a test-seam ToolRunner means
// the invocation must stay in-process.
func TestToolAppRemoteSpecDisabledForCustomBackend(t *testing.T) {
	tool := loadEchoTool(t)
	app := &toolApp{name: "t", tool: tool, tr: &runner.ToolRunner{}}
	if app.RemoteSpec(parsl.Args{}) != nil {
		t.Fatal("custom-backend app offered a remote spec")
	}
	tool.Raw = nil
	app = &toolApp{name: "t", tool: tool}
	if app.RemoteSpec(parsl.Args{}) != nil {
		t.Fatal("raw-less tool offered a remote spec")
	}
}
