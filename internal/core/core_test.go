package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cwl"
	"repro/internal/parsl"
	"repro/internal/yamlx"
)

const echoCWL = `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
inputs:
  message:
    type: string
    default: "Hello World"
    inputBinding:
      position: 1
outputs:
  output:
    type: stdout
stdout: hello.txt
`

func writeCWL(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func newDFK(t *testing.T, workers int) *parsl.DFK {
	t.Helper()
	dfk, err := parsl.Load(parsl.Config{
		Executors: []parsl.Executor{parsl.NewThreadPoolExecutor("threads", workers)},
		RunDir:    t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dfk.Cleanup() })
	return dfk
}

// TestPaperListing2 reproduces the paper's Listing 2 end to end: load a
// config, create a CWLApp from echo.cwl, call it, wait, read the output.
func TestPaperListing2(t *testing.T) {
	dir := t.TempDir()
	path := writeCWL(t, dir, "echo.cwl", echoCWL)
	dfk := newDFK(t, 4)
	echo, err := NewCWLApp(dfk, path)
	if err != nil {
		t.Fatal(err)
	}
	fut := echo.Call(parsl.Args{
		"message": "Hello, World!",
		"stdout":  "hello.txt",
	})
	if _, err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(fut.Outputs()) != 1 {
		t.Fatalf("outputs = %d", len(fut.Outputs()))
	}
	data, err := os.ReadFile(fut.Outputs()[0].File().Path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "Hello, World!" {
		t.Errorf("content = %q", data)
	}
}

func TestCWLAppDefaultApplied(t *testing.T) {
	dir := t.TempDir()
	path := writeCWL(t, dir, "echo.cwl", echoCWL)
	dfk := newDFK(t, 2)
	echo, err := NewCWLApp(dfk, path)
	if err != nil {
		t.Fatal(err)
	}
	fut := echo.Call(parsl.Args{})
	if _, err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(fut.Outputs()[0].File().Path)
	if strings.TrimSpace(string(data)) != "Hello World" {
		t.Errorf("content = %q", data)
	}
}

func TestCWLAppIntrospection(t *testing.T) {
	dir := t.TempDir()
	path := writeCWL(t, dir, "echo.cwl", echoCWL)
	dfk := newDFK(t, 1)
	echo, err := NewCWLApp(dfk, path)
	if err != nil {
		t.Fatal(err)
	}
	if echo.Name() != "echo" {
		t.Errorf("name = %q", echo.Name())
	}
	if ids := echo.InputIDs(); len(ids) != 1 || ids[0] != "message" {
		t.Errorf("inputs = %v", ids)
	}
	if ids := echo.OutputIDs(); len(ids) != 1 || ids[0] != "output" {
		t.Errorf("outputs = %v", ids)
	}
	if echo.Tool() == nil {
		t.Error("Tool() nil")
	}
}

func TestCWLAppRejectsWorkflow(t *testing.T) {
	dir := t.TempDir()
	path := writeCWL(t, dir, "wf.cwl", `
cwlVersion: v1.2
class: Workflow
inputs: {}
outputs: {}
steps: {}
`)
	dfk := newDFK(t, 1)
	if _, err := NewCWLApp(dfk, path); err == nil || !strings.Contains(err.Error(), "CommandLineTool") {
		t.Fatalf("err = %v", err)
	}
}

// catTool consumes a File input and produces stdout — used for chaining.
const catTool = `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: cat
inputs:
  input_file:
    type: File
    inputBinding: {position: 1}
outputs:
  output:
    type: stdout
stdout: cat-out.txt
`

// TestCWLAppChaining is the paper's §IV pattern: DataFutures from one CWLApp
// feed the next without waiting.
func TestCWLAppChaining(t *testing.T) {
	dir := t.TempDir()
	echoPath := writeCWL(t, dir, "echo.cwl", echoCWL)
	catPath := writeCWL(t, dir, "cat.cwl", catTool)
	dfk := newDFK(t, 4)
	echo, err := NewCWLApp(dfk, echoPath)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := NewCWLApp(dfk, catPath)
	if err != nil {
		t.Fatal(err)
	}
	f1 := echo.Call(parsl.Args{"message": "chained-payload"})
	f2 := cat.Call(parsl.Args{"input_file": f1.Output(0)})
	if _, err := f2.Wait(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(f2.Outputs()[0].File().Path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "chained-payload" {
		t.Errorf("content = %q", data)
	}
}

func TestCWLAppConcurrentCalls(t *testing.T) {
	dir := t.TempDir()
	path := writeCWL(t, dir, "echo.cwl", echoCWL)
	dfk := newDFK(t, 8)
	echo, err := NewCWLApp(dfk, path)
	if err != nil {
		t.Fatal(err)
	}
	var futs []*parsl.AppFuture
	for i := 0; i < 20; i++ {
		futs = append(futs, echo.Call(parsl.Args{"message": "multi"}))
	}
	for i, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	// Every call must land in a distinct job directory.
	seen := map[string]bool{}
	for _, f := range futs {
		p := f.Outputs()[0].File().Path
		if seen[p] {
			t.Fatalf("duplicate output path %s", p)
		}
		seen[p] = true
	}
}

func TestCWLAppFailurePropagates(t *testing.T) {
	dir := t.TempDir()
	path := writeCWL(t, dir, "fail.cwl", `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: [sh, -c, "exit 9"]
inputs: {}
outputs: {}
`)
	dfk := newDFK(t, 1)
	app, err := NewCWLApp(dfk, path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = app.Call(parsl.Args{}).Wait()
	if err == nil || !strings.Contains(err.Error(), "exit code 9") {
		t.Fatalf("err = %v", err)
	}
}

func TestCWLAppUnknownInputFails(t *testing.T) {
	dir := t.TempDir()
	path := writeCWL(t, dir, "echo.cwl", echoCWL)
	dfk := newDFK(t, 1)
	app, err := NewCWLApp(dfk, path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = app.Call(parsl.Args{"nonsense": 1}).Wait()
	if err == nil || !strings.Contains(err.Error(), "unknown input") {
		t.Fatalf("err = %v", err)
	}
}

func TestCWLAppInlinePythonArgument(t *testing.T) {
	// Paper Listing 5 through the full CWLApp path.
	dir := t.TempDir()
	path := writeCWL(t, dir, "cap.cwl", `
cwlVersion: v1.2
class: CommandLineTool
requirements:
  - class: InlinePythonRequirement
    expressionLib:
      - |
        def capitalize_words(message):
            return message.title()
baseCommand: echo
inputs:
  message:
    type: string
arguments:
  - f"{capitalize_words($(inputs.message))}"
outputs:
  out: stdout
stdout: cap.txt
`)
	dfk := newDFK(t, 1)
	app, err := NewCWLApp(dfk, path)
	if err != nil {
		t.Fatal(err)
	}
	fut := app.Call(parsl.Args{"message": "hello cwl world"})
	if _, err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(fut.Outputs()[0].File().Path)
	if strings.TrimSpace(string(data)) != "Hello Cwl World" {
		t.Errorf("content = %q", data)
	}
}

func TestRunnerRunTool(t *testing.T) {
	dir := t.TempDir()
	path := writeCWL(t, dir, "echo.cwl", echoCWL)
	doc, err := cwl.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dfk := newDFK(t, 2)
	r := NewRunner(dfk)
	r.WorkRoot = t.TempDir()
	out, err := r.Run(doc, yamlx.MapOf("message", "via runner"))
	if err != nil {
		t.Fatal(err)
	}
	f := out.Value("output").(*yamlx.Map)
	data, _ := os.ReadFile(f.GetString("path"))
	if strings.TrimSpace(string(data)) != "via runner" {
		t.Errorf("content = %q", data)
	}
}

func TestRunnerRunWorkflow(t *testing.T) {
	// Future-work feature: full workflow execution on Parsl.
	dir := t.TempDir()
	writeCWL(t, dir, "echo.cwl", echoCWL)
	wfPath := writeCWL(t, dir, "wf.cwl", `
cwlVersion: v1.2
class: Workflow
inputs:
  msg: string
outputs:
  final:
    type: File
    outputSource: say/output
steps:
  say:
    run: echo.cwl
    in:
      message: msg
    out: [output]
`)
	doc, err := cwl.LoadFile(wfPath)
	if err != nil {
		t.Fatal(err)
	}
	dfk := newDFK(t, 2)
	r := NewRunner(dfk)
	r.WorkRoot = t.TempDir()
	out, err := r.Run(doc, yamlx.MapOf("msg", "workflow-on-parsl"))
	if err != nil {
		t.Fatal(err)
	}
	f := out.Value("final").(*yamlx.Map)
	data, _ := os.ReadFile(f.GetString("path"))
	if strings.TrimSpace(string(data)) != "workflow-on-parsl" {
		t.Errorf("content = %q", data)
	}
}

func TestParseInputFlags(t *testing.T) {
	m, err := ParseInputFlags([]string{"--message=Hello", "--count=3", "--flag=true", "--name=O'Brien"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Value("message") != "Hello" || m.Value("count") != int64(3) || m.Value("flag") != true {
		t.Errorf("m = %v", m)
	}
	if m.Value("name") != "O'Brien" {
		t.Errorf("name = %v", m.Value("name"))
	}
	for _, bad := range []string{"plain", "--noequals", "--=x"} {
		if _, err := ParseInputFlags([]string{bad}); err == nil {
			t.Errorf("ParseInputFlags(%q) accepted", bad)
		}
	}
}

func TestParseInputValues(t *testing.T) {
	m, err := ParseInputValues([]byte("message: hi\nn: 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Value("message") != "hi" || m.Value("n") != int64(2) {
		t.Errorf("m = %v", m)
	}
	if _, err := ParseInputValues([]byte("- a\n- b\n")); err == nil {
		t.Error("list inputs accepted")
	}
	empty, err := ParseInputValues(nil)
	if err != nil || empty.Len() != 0 {
		t.Errorf("empty = %v err=%v", empty, err)
	}
}

func TestCWLAppOnHTEX(t *testing.T) {
	dir := t.TempDir()
	path := writeCWL(t, dir, "echo.cwl", echoCWL)
	htex := parsl.NewHighThroughputExecutor(parsl.HTEXConfig{
		Label: "htex", WorkersPerNode: 2, MaxBlocks: 2, InitBlocks: 1,
	})
	dfk, err := parsl.Load(parsl.Config{Executors: []parsl.Executor{htex}, RunDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer dfk.Cleanup()
	app, err := NewCWLApp(dfk, path)
	if err != nil {
		t.Fatal(err)
	}
	var futs []*parsl.AppFuture
	for i := 0; i < 10; i++ {
		futs = append(futs, app.Call(parsl.Args{"message": "on htex"}))
	}
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}
