// Package core implements the paper's primary contribution: the integration
// of CWL and Parsl.
//
//   - CWLApp (§III-A) imports a CWL CommandLineTool definition as a callable
//     Parsl app: tool inputs become keyword arguments, File outputs become
//     DataFutures available before execution, and invocation builds and runs
//     the command per the CWL binding rules.
//   - Runner (§III-B) is the parsl-cwl engine: it executes CommandLineTools —
//     and, going beyond the paper's prototype, complete CWL Workflows — on
//     Parsl executors configured from a TaPS-style YAML file.
//
// InlinePythonRequirement (§V) flows through both paths via the cwl/cwlexpr
// packages.
package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"repro/internal/cwl"
	"repro/internal/cwlexpr"
	"repro/internal/parsl"
	"repro/internal/runner"
	"repro/internal/yamlx"
)

// Reserved keyword arguments on CWLApp.Call, mirroring Parsl bash_app.
const (
	// ArgStdout redirects the tool's standard output.
	ArgStdout = "stdout"
	// ArgStderr redirects the tool's standard error.
	ArgStderr = "stderr"
)

// CWLApp is a CWL CommandLineTool imported as a Parsl app (paper §III-A).
// Create one per tool definition and invoke it any number of times; each
// invocation returns an AppFuture immediately.
type CWLApp struct {
	dfk       *parsl.DFK
	tool      *cwl.CommandLineTool
	name      string
	workRoot  string
	inputsDir string
	executor  string
	label     string
	seq       atomic.Int64
	tr        *runner.ToolRunner
}

// AppOpt customizes a CWLApp.
type AppOpt func(*CWLApp)

// WithExecutor routes invocations to the executor with the given label.
func WithExecutor(label string) AppOpt {
	return func(a *CWLApp) { a.executor = label }
}

// WithWorkRoot sets where per-invocation job directories are created.
func WithWorkRoot(dir string) AppOpt {
	return func(a *CWLApp) { a.workRoot = dir }
}

// WithInputsDir sets the directory relative input file paths resolve
// against (default: the process working directory).
func WithInputsDir(dir string) AppOpt {
	return func(a *CWLApp) { a.inputsDir = dir }
}

// WithLabel tags every invocation's monitoring events with a submission
// label, so one run's tasks can be isolated from a shared DFK's stream.
func WithLabel(label string) AppOpt {
	return func(a *CWLApp) { a.label = label }
}

// NewCWLApp loads a CommandLineTool definition from a .cwl file and wraps it
// as a Parsl app — the paper's `CWLApp("echo.cwl")`.
func NewCWLApp(dfk *parsl.DFK, path string, opts ...AppOpt) (*CWLApp, error) {
	doc, err := cwl.LoadFile(path)
	if err != nil {
		return nil, err
	}
	tool, ok := doc.(*cwl.CommandLineTool)
	if !ok {
		return nil, fmt.Errorf("%s: CWLApp requires a CommandLineTool, got %s", path, doc.Class())
	}
	return NewCWLAppFromTool(dfk, tool, opts...)
}

// NewCWLAppFromTool wraps an already-parsed CommandLineTool.
func NewCWLAppFromTool(dfk *parsl.DFK, tool *cwl.CommandLineTool, opts ...AppOpt) (*CWLApp, error) {
	if _, err := cwl.Validate(tool); err != nil {
		return nil, err
	}
	a := &CWLApp{
		dfk:      dfk,
		tool:     tool,
		name:     appName(tool),
		workRoot: dfk.RunDir(),
	}
	for _, o := range opts {
		o(a)
	}
	if a.workRoot == "" {
		a.workRoot = "."
	}
	return a, nil
}

func appName(tool *cwl.CommandLineTool) string {
	if tool.ID != "" {
		return tool.ID
	}
	if tool.Path != "" {
		base := filepath.Base(tool.Path)
		return strings.TrimSuffix(base, filepath.Ext(base))
	}
	if len(tool.BaseCommand) > 0 {
		return tool.BaseCommand[0]
	}
	return "cwlapp"
}

// Tool returns the wrapped CommandLineTool.
func (a *CWLApp) Tool() *cwl.CommandLineTool { return a.tool }

// Name returns the app name used in monitoring.
func (a *CWLApp) Name() string { return a.name }

// InputIDs lists the tool's input parameter ids (the legal kwargs).
func (a *CWLApp) InputIDs() []string {
	out := make([]string, len(a.tool.Inputs))
	for i, in := range a.tool.Inputs {
		out[i] = in.ID
	}
	return out
}

// OutputIDs lists the tool's output ids in declaration order — the order of
// the future's Outputs().
func (a *CWLApp) OutputIDs() []string {
	out := make([]string, len(a.tool.Outputs))
	for i, o := range a.tool.Outputs {
		out[i] = o.ID
	}
	return out
}

// Call invokes the tool with keyword arguments and returns a future
// immediately. Arguments may be plain values, parsl.File, *parsl.AppFuture
// or *parsl.DataFuture (which establish dataflow dependencies). The reserved
// kwargs "stdout" and "stderr" redirect those streams. The future's
// Outputs() carry one DataFuture per predictable File-producing output, in
// declaration order.
func (a *CWLApp) Call(args parsl.Args) *parsl.AppFuture {
	return a.CallContext(context.Background(), args)
}

// CallContext is Call with deadline propagation: when ctx carries a deadline
// (e.g. an HTTP request timeout on a service run), each task submitted under
// it inherits that deadline, so the engine-side watchdog fails tasks that
// outlive the request instead of letting them run on as zombies.
func (a *CWLApp) CallContext(ctx context.Context, args parsl.Args) *parsl.AppFuture {
	seq := a.seq.Add(1)
	deadline, _ := ctx.Deadline()
	jobdir := filepath.Join(a.workRoot, fmt.Sprintf("%s-%04d", a.name, seq))

	callArgs := parsl.Args{}
	for k, v := range args {
		callArgs[k] = v
	}
	stdoutOverride, _ := popString(callArgs, ArgStdout)
	stderrOverride, _ := popString(callArgs, ArgStderr)

	outFiles, err := a.predictOutputs(callArgs, jobdir, stdoutOverride, stderrOverride)
	opts := parsl.CallOpts{
		Executor: a.executor,
		Label:    a.label,
		Outputs:  outFiles,
		Stdout:   stdoutOverride,
		Stderr:   stderrOverride,
		Deadline: deadline,
	}
	if err != nil {
		// Fail through the future so call sites stay uniform.
		failing := parsl.NewGoApp(a.name, func(parsl.Args) (any, error) { return nil, err })
		return a.dfk.Submit(failing, parsl.Args{}, parsl.CallOpts{Executor: a.executor, Label: a.label})
	}

	inputsDir := a.inputsDir
	if inputsDir == "" {
		inputsDir, _ = os.Getwd()
	}
	exec := &toolApp{
		name:      a.name,
		tool:      a.tool,
		workRoot:  a.workRoot,
		inputsDir: inputsDir,
		outDir:    jobdir,
		stdout:    stdoutOverride,
		stderr:    stderrOverride,
		walltime:  a.dfk.TaskWalltime(),
		tr:        a.tr,
	}
	return a.dfk.Submit(exec, callArgs, opts)
}

func popString(args parsl.Args, key string) (string, bool) {
	v, ok := args[key]
	if !ok {
		return "", false
	}
	delete(args, key)
	s, _ := v.(string)
	return s, s != ""
}

// predictOutputs computes the DataFuture paths for the invocation: stdout/
// stderr-typed outputs use the (possibly overridden) redirect path, and
// File outputs with literal or resolvable globs use the glob result. Globs
// depending on unresolved futures or containing wildcards yield no
// DataFuture (the value is still present in the future's result map).
func (a *CWLApp) predictOutputs(args parsl.Args, jobdir, stdoutOverride, stderrOverride string) ([]parsl.File, error) {
	// Build a best-effort inputs map: DataFutures already know their paths;
	// AppFutures are omitted.
	known := yamlx.NewMap()
	for k, v := range args {
		switch t := v.(type) {
		case *parsl.AppFuture:
			continue
		case *parsl.DataFuture:
			known.Set(k, runner.MakeFileObject("File", absIn(t.File().Path, jobdir)))
		case parsl.File:
			known.Set(k, runner.MakeFileObject("File", absIn(t.Path, jobdir)))
		default:
			known.Set(k, v)
		}
	}
	// Apply defaults for prediction only.
	for _, in := range a.tool.Inputs {
		if !known.Has(in.ID) && in.HasDef {
			known.Set(in.ID, in.Default)
		}
	}
	reqs := a.tool.Hints.Merge(a.tool.Requirements)
	eng, err := cwlexpr.SharedEngine(reqs)
	if err != nil {
		return nil, err
	}
	ctx := cwlexpr.Context{Inputs: known}

	stdoutPath := stdoutOverride
	if stdoutPath == "" {
		stdoutPath = a.tool.Stdout
	}
	stderrPath := stderrOverride
	if stderrPath == "" {
		stderrPath = a.tool.Stderr
	}
	var outs []parsl.File
	for _, out := range a.tool.Outputs {
		if out.Type == nil {
			continue
		}
		switch out.Type.Name {
		case "stdout":
			p := stdoutPath
			if p == "" {
				p = out.ID + ".stdout.txt"
			}
			outs = append(outs, parsl.NewFile(absIn(p, jobdir)))
			continue
		case "stderr":
			p := stderrPath
			if p == "" {
				p = out.ID + ".stderr.txt"
			}
			outs = append(outs, parsl.NewFile(absIn(p, jobdir)))
			continue
		}
		if out.Binding == nil || len(out.Binding.Glob) != 1 || !out.Type.IsFile() {
			continue
		}
		pattern := out.Binding.Glob[0]
		if cwlexpr.NeedsEval(pattern) {
			s, err := eng.EvalToString(pattern, ctx)
			if err != nil {
				continue // depends on an unresolved future; no DataFuture
			}
			pattern = s
		}
		if strings.ContainsAny(pattern, "*?[") {
			continue
		}
		outs = append(outs, parsl.NewFile(absIn(pattern, jobdir)))
	}
	return outs, nil
}

func absIn(path, dir string) string {
	if filepath.IsAbs(path) {
		return path
	}
	return filepath.Join(dir, path)
}

// fromParslValue converts Parsl values to CWL document values.
func fromParslValue(v any) any {
	switch t := v.(type) {
	case parsl.File:
		return t.Path
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = fromParslValue(e)
		}
		return out
	default:
		return v
	}
}
