package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/parsl"
	"repro/internal/yamlx"
)

// ResultCodec serializes Parsl task results for cross-process memo
// checkpointing (the DFK exports MemoEntry values; the persistence layer
// stores what this codec can encode and skips the rest). Supported shapes —
// which cover every result the CWL paths produce — round-trip exactly:
//
//   - *yamlx.Map   (tool/step output objects)     → "obj"
//   - parsl.File                                  → "file"
//   - parsl.BashResult                            → "bash"
//   - nil, string, bool, int64/int, float64       → "val"
//   - []any of the above (recursively)            → "list"
//
// Anything else (app-specific structs, channels, closures) is not
// checkpointable: Encode reports false and the entry simply stays
// process-local.
type ResultCodec struct{}

// taggedValue is the wire form: a type tag plus the encoded payload.
type taggedValue struct {
	T string          `json:"t"`
	V json.RawMessage `json:"v,omitempty"`
}

// Encode serializes a task result, reporting false when the value is not a
// supported shape.
func (c ResultCodec) Encode(v any) (json.RawMessage, bool) {
	switch t := v.(type) {
	case nil:
		return mustTag("val", json.RawMessage("null")), true
	case *yamlx.Map:
		raw, err := t.MarshalJSON()
		if err != nil {
			return nil, false
		}
		return mustTag("obj", raw), true
	case parsl.File:
		raw, err := json.Marshal(t.Path)
		if err != nil {
			return nil, false
		}
		return mustTag("file", raw), true
	case parsl.BashResult:
		raw, err := json.Marshal(t)
		if err != nil {
			return nil, false
		}
		return mustTag("bash", raw), true
	case string, bool, int, int64, float64:
		raw, err := json.Marshal(t)
		if err != nil {
			return nil, false
		}
		return mustTag("val", raw), true
	case []any:
		elems := make([]json.RawMessage, len(t))
		for i, e := range t {
			enc, ok := c.Encode(e)
			if !ok {
				return nil, false
			}
			elems[i] = enc
		}
		raw, err := json.Marshal(elems)
		if err != nil {
			return nil, false
		}
		return mustTag("list", raw), true
	default:
		return nil, false
	}
}

func mustTag(tag string, raw json.RawMessage) json.RawMessage {
	out, _ := json.Marshal(taggedValue{T: tag, V: raw})
	return out
}

// Decode reverses Encode.
func (c ResultCodec) Decode(raw json.RawMessage) (any, error) {
	var tv taggedValue
	if err := json.Unmarshal(raw, &tv); err != nil {
		return nil, fmt.Errorf("result codec: %w", err)
	}
	switch tv.T {
	case "val":
		if len(tv.V) == 0 {
			return nil, nil
		}
		// DecodeJSON types integers as int64, matching live results.
		return yamlx.DecodeJSON(tv.V)
	case "obj":
		v, err := yamlx.DecodeJSON(tv.V)
		if err != nil {
			return nil, fmt.Errorf("result codec: obj: %w", err)
		}
		m, ok := v.(*yamlx.Map)
		if !ok {
			return nil, fmt.Errorf("result codec: obj payload is %T", v)
		}
		return m, nil
	case "file":
		var path string
		if err := json.Unmarshal(tv.V, &path); err != nil {
			return nil, fmt.Errorf("result codec: file: %w", err)
		}
		return parsl.NewFile(path), nil
	case "bash":
		var br parsl.BashResult
		if err := json.Unmarshal(tv.V, &br); err != nil {
			return nil, fmt.Errorf("result codec: bash: %w", err)
		}
		return br, nil
	case "list":
		var elems []json.RawMessage
		if err := json.Unmarshal(tv.V, &elems); err != nil {
			return nil, fmt.Errorf("result codec: list: %w", err)
		}
		out := make([]any, len(elems))
		for i, e := range elems {
			v, err := c.Decode(e)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	default:
		return nil, fmt.Errorf("result codec: unknown tag %q", tv.T)
	}
}
