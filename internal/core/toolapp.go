package core

import (
	"encoding/json"
	"time"

	"repro/internal/cwl"
	"repro/internal/parsl"
	"repro/internal/provider"
	"repro/internal/runner"
	"repro/internal/yamlx"
)

// toolApp is one CWL CommandLineTool invocation as a Parsl app. It executes
// in-process through runner.ToolRunner, and — when the tool retains its raw
// source — also describes the invocation as a provider.RemoteSpec, so HTEX
// over a ProcessProvider ships the whole invocation (staging, command
// construction, execution, output collection) to a process-isolated worker.
type toolApp struct {
	name string
	tool *cwl.CommandLineTool
	// inputs is the fixed job object (workflow-step path). Nil derives the
	// job from the resolved call arguments (CWLApp path).
	inputs    *yamlx.Map
	extraReqs *cwl.Requirements
	workRoot  string
	inputsDir string
	outDir    string
	stdout    string
	stderr    string
	// walltime bounds each invocation's tool process (0 = unbounded); it is
	// enforced wherever the tool actually runs — in-process or on a worker —
	// and is tightened further by the document's own ToolTimeLimit.
	walltime time.Duration
	// tr overrides the tool runner (test seam). A custom runner cannot cross
	// a process boundary, so it also disables RemoteSpec.
	tr *runner.ToolRunner
}

// Name implements parsl.App.
func (a *toolApp) Name() string { return a.name }

// jobInputs materializes the job object for one invocation.
func (a *toolApp) jobInputs(args parsl.Args) *yamlx.Map {
	if a.inputs != nil {
		return a.inputs
	}
	m := yamlx.NewMap()
	for k, v := range args {
		m.Set(k, fromParslValue(v))
	}
	return m
}

// Execute implements parsl.App: the in-process path, also the fallback when
// the invocation cannot be serialized.
func (a *toolApp) Execute(_ *parsl.TaskContext, args parsl.Args) (any, error) {
	tr := a.tr
	if tr == nil {
		tr = &runner.ToolRunner{WorkRoot: a.workRoot}
	}
	res, err := tr.RunTool(a.tool, a.jobInputs(args), runner.RunOpts{
		ExtraReqs:  a.extraReqs,
		InputsDir:  a.inputsDir,
		OutDir:     a.outDir,
		StdoutPath: a.stdout,
		StderrPath: a.stderr,
		Walltime:   a.walltime,
	})
	if err != nil {
		return nil, err
	}
	return res.Outputs, nil
}

// RemoteSpec implements parsl.RemoteSpecer: the invocation in wire form, or
// nil when it cannot be expressed (in-memory tool without raw source, custom
// backend, unserializable inputs) — the task then runs in-process via
// Execute.
func (a *toolApp) RemoteSpec(args parsl.Args) *provider.RemoteSpec {
	if a.tr != nil || a.tool == nil || a.tool.Raw == nil {
		return nil
	}
	// The document JSON and hash are cached on the tool (RawDoc), so scatter
	// siblings sharing one tool serialize it once; the shared-doc spec lets
	// binary worker sessions ship it once per session as well.
	toolJSON, docHash, err := a.tool.RawDoc()
	if err != nil {
		return nil
	}
	inputsJSON, err := a.jobInputs(args).MarshalJSON()
	if err != nil {
		return nil
	}
	var reqsJSON json.RawMessage
	if a.extraReqs != nil {
		b, err := json.Marshal(a.extraReqs)
		if err != nil {
			return nil
		}
		reqsJSON = b
	}
	spec, err := provider.NewSharedDocToolSpec(provider.CWLToolPayload{
		Tool:       toolJSON,
		Path:       a.tool.Path,
		Inputs:     inputsJSON,
		ExtraReqs:  reqsJSON,
		WorkRoot:   a.workRoot,
		InputsDir:  a.inputsDir,
		OutDir:     a.outDir,
		Stdout:     a.stdout,
		Stderr:     a.stderr,
		WalltimeMs: int(a.walltime / time.Millisecond),
	}, docHash)
	if err != nil {
		return nil
	}
	return spec
}
