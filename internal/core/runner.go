package core

import (
	"context"
	"fmt"
	"os"
	"strings"

	"repro/internal/cwl"
	"repro/internal/parsl"
	"repro/internal/runner"
	"repro/internal/yamlx"
)

// Runner is the parsl-cwl engine (paper §III-B): it executes CWL processes
// on Parsl executors. The paper's prototype handles CommandLineTools; this
// implementation also runs complete Workflows (the paper's stated future
// work) by pairing the shared workflow engine with a Parsl-backed submitter.
type Runner struct {
	DFK *parsl.DFK
	// WorkRoot is where job directories are created.
	WorkRoot string
	// InputsDir resolves relative input file paths (defaults to the current
	// working directory).
	InputsDir string
	// Executor selects a specific executor label ("" = default).
	Executor string
	// Label tags every task this runner submits, so one run's monitoring
	// events can be isolated from a shared DFK's stream (DFK.EventsFor).
	Label string
}

// NewRunner builds a Runner over a loaded DFK.
func NewRunner(dfk *parsl.DFK) *Runner {
	wd, _ := os.Getwd()
	root := dfk.RunDir()
	if root == "" {
		root = wd
	}
	return &Runner{DFK: dfk, WorkRoot: root, InputsDir: wd}
}

// Run executes any supported CWL document with the given inputs.
func (r *Runner) Run(doc cwl.Document, inputs *yamlx.Map) (*yamlx.Map, error) {
	return r.RunContext(context.Background(), doc, inputs)
}

// RunContext is Run with cancellation: when ctx is cancelled the run stops
// waiting, submits no further tasks, and returns ctx's error. Tasks already
// handed to an executor run to completion in the background (the shared DFK
// stays consistent); their results are discarded.
func (r *Runner) RunContext(ctx context.Context, doc cwl.Document, inputs *yamlx.Map) (*yamlx.Map, error) {
	switch d := doc.(type) {
	case *cwl.CommandLineTool:
		return r.RunToolContext(ctx, d, inputs)
	case *cwl.Workflow:
		return r.RunWorkflowContext(ctx, d, inputs)
	default:
		return nil, fmt.Errorf("parsl-cwl cannot execute class %s", doc.Class())
	}
}

// RunTool executes one CommandLineTool as a Parsl task and waits for it.
func (r *Runner) RunTool(tool *cwl.CommandLineTool, inputs *yamlx.Map) (*yamlx.Map, error) {
	return r.RunToolContext(context.Background(), tool, inputs)
}

// RunToolContext is RunTool with cancellation.
func (r *Runner) RunToolContext(ctx context.Context, tool *cwl.CommandLineTool, inputs *yamlx.Map) (*yamlx.Map, error) {
	app, err := NewCWLAppFromTool(r.DFK, tool, WithWorkRoot(r.WorkRoot), WithExecutor(r.Executor), WithLabel(r.Label))
	if err != nil {
		return nil, err
	}
	args := parsl.Args{}
	if inputs != nil {
		for _, k := range inputs.Keys() {
			args[k] = inputs.Value(k)
		}
	}
	fut := app.Call(args)
	res, err := fut.Result(ctx)
	if err != nil {
		return nil, err
	}
	out, _ := res.(*yamlx.Map)
	return out, nil
}

// RunWorkflow executes a complete CWL Workflow with every tool invocation
// dispatched as a Parsl task.
func (r *Runner) RunWorkflow(wf *cwl.Workflow, inputs *yamlx.Map) (*yamlx.Map, error) {
	return r.RunWorkflowContext(context.Background(), wf, inputs)
}

// RunWorkflowContext is RunWorkflow with cancellation: a cancelled ctx stops
// new step submissions and unblocks every in-flight step wait.
func (r *Runner) RunWorkflowContext(ctx context.Context, wf *cwl.Workflow, inputs *yamlx.Map) (*yamlx.Map, error) {
	if _, err := cwl.Validate(wf); err != nil {
		return nil, err
	}
	eng := &runner.WorkflowEngine{
		Submitter: &ParslSubmitter{Ctx: ctx, DFK: r.DFK, WorkRoot: r.WorkRoot, Executor: r.Executor, InputsDir: r.InputsDir, Label: r.Label},
		InputsDir: r.InputsDir,
	}
	return eng.Execute(wf, inputs)
}

// ParslSubmitter adapts the Parsl DFK to the shared workflow engine: every
// CWL step job becomes one Parsl task.
type ParslSubmitter struct {
	// Ctx, when non-nil, cancels pending submissions: a cancelled context
	// rejects new steps and abandons waits on in-flight ones.
	Ctx       context.Context
	DFK       *parsl.DFK
	WorkRoot  string
	Executor  string
	InputsDir string
	// Label tags submitted tasks' monitoring events.
	Label string
}

// SubmitTool implements runner.Submitter.
func (s *ParslSubmitter) SubmitTool(tool *cwl.CommandLineTool, inputs *yamlx.Map, extraReqs *cwl.Requirements, done func(*yamlx.Map, error)) {
	ctx := s.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		done(nil, err)
		return
	}
	tr := &runner.ToolRunner{WorkRoot: s.WorkRoot}
	app := parsl.NewGoApp("cwl-step", func(parsl.Args) (any, error) {
		res, err := tr.RunTool(tool, inputs, runner.RunOpts{ExtraReqs: extraReqs, InputsDir: s.InputsDir})
		if err != nil {
			return nil, err
		}
		return res.Outputs, nil
	})
	// Step tasks carry no distinguishing arguments (the tool and inputs are
	// closed over), so memoizing them would collide every step onto one key.
	fut := s.DFK.Submit(app, parsl.Args{}, parsl.CallOpts{Executor: s.Executor, Label: s.Label, NoMemo: true})
	go func() {
		res, err := fut.Result(ctx)
		if err != nil {
			done(nil, err)
			return
		}
		done(res.(*yamlx.Map), nil)
	}()
}

// ParseInputValues decodes a job-order document (inputs.yml) into the map
// form runners accept.
func ParseInputValues(data []byte) (*yamlx.Map, error) {
	v, err := yamlx.Decode(data)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return yamlx.NewMap(), nil
	}
	m, ok := v.(*yamlx.Map)
	if !ok {
		return nil, fmt.Errorf("inputs document must be a mapping")
	}
	return m, nil
}

// ParseInputFlags turns --name=value command-line arguments into an inputs
// map, typing scalar values like YAML would (the paper's
// `parsl-cwl config.yml echo.cwl --message='Hello'` form).
func ParseInputFlags(args []string) (*yamlx.Map, error) {
	m := yamlx.NewMap()
	for _, a := range args {
		if !strings.HasPrefix(a, "--") {
			return nil, fmt.Errorf("unexpected argument %q (want --name=value)", a)
		}
		body := strings.TrimPrefix(a, "--")
		name, val, found := strings.Cut(body, "=")
		if !found {
			return nil, fmt.Errorf("input flag %q is missing '='", a)
		}
		if name == "" {
			return nil, fmt.Errorf("input flag %q has an empty name", a)
		}
		parsed, err := yamlx.DecodeString(val)
		if err != nil {
			parsed = val
		}
		m.Set(name, parsed)
	}
	return m, nil
}
