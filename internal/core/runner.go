package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cwl"
	"repro/internal/parsl"
	"repro/internal/runner"
	"repro/internal/yamlx"
)

// Runner is the parsl-cwl engine (paper §III-B): it executes CWL processes
// on Parsl executors. The paper's prototype handles CommandLineTools; this
// implementation also runs complete Workflows (the paper's stated future
// work) by pairing the shared workflow engine with a Parsl-backed submitter.
type Runner struct {
	DFK *parsl.DFK
	// WorkRoot is where job directories are created.
	WorkRoot string
	// InputsDir resolves relative input file paths (defaults to the current
	// working directory).
	InputsDir string
	// Executor selects a specific executor label ("" = default).
	Executor string
	// Label tags every task this runner submits, so one run's monitoring
	// events can be isolated from a shared DFK's stream (DFK.EventsFor).
	Label string
	// Scope is a stable content identity for the document being run (e.g.
	// the service's source hash). When set — and the DFK memoizes — workflow
	// step results are keyed on scope + step id + canonicalized inputs, so
	// identical steps are memo hits across runs and, with the persistence
	// layer restoring the memo table, across process restarts.
	Scope string
	// StepIndex is an optional prebuilt dataflow index for the workflow being
	// run (runner.BuildStepIndex); the service's DocCache supplies it so
	// repeated runs of a cached document skip graph construction. An index
	// built for a different workflow is ignored.
	StepIndex *runner.StepIndex
	// ScatterWorkers bounds per-step scatter submission concurrency
	// (0 = GOMAXPROCS-derived default).
	ScatterWorkers int
}

// NewRunner builds a Runner over a loaded DFK.
func NewRunner(dfk *parsl.DFK) *Runner {
	wd, _ := os.Getwd()
	root := dfk.RunDir()
	if root == "" {
		root = wd
	}
	return &Runner{DFK: dfk, WorkRoot: root, InputsDir: wd}
}

// Run executes any supported CWL document with the given inputs.
func (r *Runner) Run(doc cwl.Document, inputs *yamlx.Map) (*yamlx.Map, error) {
	return r.RunContext(context.Background(), doc, inputs)
}

// RunContext is Run with cancellation: when ctx is cancelled the run stops
// waiting, submits no further tasks, and returns ctx's error. Tasks already
// handed to an executor run to completion in the background (the shared DFK
// stays consistent); their results are discarded.
func (r *Runner) RunContext(ctx context.Context, doc cwl.Document, inputs *yamlx.Map) (*yamlx.Map, error) {
	switch d := doc.(type) {
	case *cwl.CommandLineTool:
		return r.RunToolContext(ctx, d, inputs)
	case *cwl.Workflow:
		return r.RunWorkflowContext(ctx, d, inputs)
	default:
		return nil, fmt.Errorf("parsl-cwl cannot execute class %s", doc.Class())
	}
}

// RunTool executes one CommandLineTool as a Parsl task and waits for it.
func (r *Runner) RunTool(tool *cwl.CommandLineTool, inputs *yamlx.Map) (*yamlx.Map, error) {
	return r.RunToolContext(context.Background(), tool, inputs)
}

// RunToolContext is RunTool with cancellation.
func (r *Runner) RunToolContext(ctx context.Context, tool *cwl.CommandLineTool, inputs *yamlx.Map) (*yamlx.Map, error) {
	app, err := NewCWLAppFromTool(r.DFK, tool, WithWorkRoot(r.WorkRoot), WithExecutor(r.Executor), WithLabel(r.Label), WithInputsDir(r.InputsDir))
	if err != nil {
		return nil, err
	}
	args := parsl.Args{}
	if inputs != nil {
		for _, k := range inputs.Keys() {
			args[k] = inputs.Value(k)
		}
	}
	fut := app.CallContext(ctx, args)
	res, err := fut.Result(ctx)
	if err != nil {
		return nil, err
	}
	out, _ := res.(*yamlx.Map)
	return out, nil
}

// RunWorkflow executes a complete CWL Workflow with every tool invocation
// dispatched as a Parsl task.
func (r *Runner) RunWorkflow(wf *cwl.Workflow, inputs *yamlx.Map) (*yamlx.Map, error) {
	return r.RunWorkflowContext(context.Background(), wf, inputs)
}

// RunWorkflowContext is RunWorkflow with cancellation: a cancelled ctx stops
// new step submissions and unblocks every in-flight step wait.
func (r *Runner) RunWorkflowContext(ctx context.Context, wf *cwl.Workflow, inputs *yamlx.Map) (*yamlx.Map, error) {
	if _, err := cwl.Validate(wf); err != nil {
		return nil, err
	}
	eng := &runner.WorkflowEngine{
		Submitter:      &ParslSubmitter{Ctx: ctx, DFK: r.DFK, WorkRoot: r.WorkRoot, Executor: r.Executor, InputsDir: r.InputsDir, Label: r.Label},
		InputsDir:      r.InputsDir,
		Scope:          r.Scope,
		Index:          r.StepIndex,
		ScatterWorkers: r.ScatterWorkers,
	}
	return eng.Execute(wf, inputs)
}

// ParslSubmitter adapts the Parsl DFK to the shared workflow engine: every
// CWL step job becomes one Parsl task.
type ParslSubmitter struct {
	// Ctx, when non-nil, cancels pending submissions: a cancelled context
	// rejects new steps and abandons waits on in-flight ones.
	Ctx       context.Context
	DFK       *parsl.DFK
	WorkRoot  string
	Executor  string
	InputsDir string
	// Label tags submitted tasks' monitoring events.
	Label string
}

// SubmitTool implements runner.Submitter.
func (s *ParslSubmitter) SubmitTool(tool *cwl.CommandLineTool, inputs *yamlx.Map, extraReqs *cwl.Requirements, done func(*yamlx.Map, error)) {
	ctx := s.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		done(nil, err)
		return
	}
	app := &toolApp{
		name:      "cwl-step",
		tool:      tool,
		inputs:    inputs,
		extraReqs: extraReqs,
		workRoot:  s.WorkRoot,
		inputsDir: s.InputsDir,
		walltime:  s.DFK.TaskWalltime(),
	}
	deadline, _ := ctx.Deadline()
	// Step tasks carry no distinguishing arguments (the tool and inputs are
	// closed over), so memoizing them would collide every step onto one key.
	fut := s.DFK.Submit(app, parsl.Args{}, parsl.CallOpts{Executor: s.Executor, Label: s.Label, NoMemo: true, Deadline: deadline})
	s.awaitStep(ctx, fut, done)
}

// SubmitToolKeyed implements runner.KeyedSubmitter: when the workflow engine
// knows a stable document scope, the step job becomes memoizable. Its memo
// identity is the app name (scope + step) plus the canonicalized job inputs
// passed as a task argument — the tool body and merged requirements are fully
// determined by the scope, so closing over them is safe. The job directory is
// likewise derived from that identity, so a restarted process re-creates the
// same paths and restored memo results stay valid on disk.
func (s *ParslSubmitter) SubmitToolKeyed(inv runner.ToolInvocation, tool *cwl.CommandLineTool, inputs *yamlx.Map, extraReqs *cwl.Requirements, done func(*yamlx.Map, error)) {
	ctx := s.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		done(nil, err)
		return
	}
	jobJSON, err := inputs.MarshalJSON()
	if err != nil {
		// Inputs that cannot be canonicalized cannot be keyed; run unkeyed.
		s.SubmitTool(tool, inputs, extraReqs, done)
		return
	}
	jobdir := filepath.Join(s.WorkRoot, stepJobDir(inv, jobJSON))
	app := &toolApp{
		name:      "step:" + inv.Step,
		tool:      tool,
		inputs:    inputs,
		extraReqs: extraReqs,
		workRoot:  s.WorkRoot,
		inputsDir: s.InputsDir,
		outDir:    jobdir,
		walltime:  s.DFK.TaskWalltime(),
	}
	deadline, _ := ctx.Deadline()
	args := parsl.Args{"scope": inv.Scope, "step": inv.Step, "job": string(jobJSON)}
	fut := s.DFK.Submit(app, args, parsl.CallOpts{Executor: s.Executor, Label: s.Label, Deadline: deadline})
	s.awaitStep(ctx, fut, done)
}

func (s *ParslSubmitter) awaitStep(ctx context.Context, fut *parsl.AppFuture, done func(*yamlx.Map, error)) {
	go func() {
		res, err := fut.Result(ctx)
		if err != nil {
			done(nil, err)
			return
		}
		done(res.(*yamlx.Map), nil)
	}()
}

// stepJobDir derives a deterministic, collision-free job directory for one
// keyed step job: the sanitized step id plus a short hash of the invocation
// identity. Scatter siblings differ in inputs, so they get distinct
// directories; a restarted run reproduces the same path, keeping restored
// memo results (which reference files inside it) valid.
func stepJobDir(inv runner.ToolInvocation, jobJSON []byte) string {
	h := sha256.New()
	h.Write([]byte(inv.Scope))
	h.Write([]byte{0})
	h.Write([]byte(inv.Step))
	h.Write([]byte{0})
	h.Write(jobJSON)
	sum := h.Sum(nil)
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, inv.Step)
	return fmt.Sprintf("%s-%s", safe, hex.EncodeToString(sum[:6]))
}

// ParseInputValues decodes a job-order document (inputs.yml) into the map
// form runners accept.
func ParseInputValues(data []byte) (*yamlx.Map, error) {
	v, err := yamlx.Decode(data)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return yamlx.NewMap(), nil
	}
	m, ok := v.(*yamlx.Map)
	if !ok {
		return nil, fmt.Errorf("inputs document must be a mapping")
	}
	return m, nil
}

// ParseInputFlags turns --name=value command-line arguments into an inputs
// map, typing scalar values like YAML would (the paper's
// `parsl-cwl config.yml echo.cwl --message='Hello'` form).
func ParseInputFlags(args []string) (*yamlx.Map, error) {
	m := yamlx.NewMap()
	for _, a := range args {
		if !strings.HasPrefix(a, "--") {
			return nil, fmt.Errorf("unexpected argument %q (want --name=value)", a)
		}
		body := strings.TrimPrefix(a, "--")
		name, val, found := strings.Cut(body, "=")
		if !found {
			return nil, fmt.Errorf("input flag %q is missing '='", a)
		}
		if name == "" {
			return nil, fmt.Errorf("input flag %q has an empty name", a)
		}
		parsed, err := yamlx.DecodeString(val)
		if err != nil {
			parsed = val
		}
		m.Set(name, parsed)
	}
	return m, nil
}
