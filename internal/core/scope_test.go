package core

import (
	"strings"
	"testing"

	"repro/internal/cwl"
	"repro/internal/parsl"
	"repro/internal/yamlx"
)

const scopedWorkflow = `
cwlVersion: v1.2
class: Workflow
inputs:
  message: string
outputs:
  final:
    type: File
    outputSource: relay/output
steps:
  greet:
    run:
      class: CommandLineTool
      baseCommand: echo
      stdout: greet.txt
      inputs:
        message: {type: string, inputBinding: {position: 1}}
      outputs:
        output: {type: stdout}
    in: {message: message}
    out: [output]
  relay:
    run:
      class: CommandLineTool
      baseCommand: cat
      stdout: relay.txt
      inputs:
        infile: {type: File, inputBinding: {position: 1}}
      outputs:
        output: {type: stdout}
    in: {infile: greet/output}
    out: [output]
`

func memoizingDFK(t *testing.T, dir string) *parsl.DFK {
	t.Helper()
	dfk, err := parsl.Load(parsl.Config{
		Executors: []parsl.Executor{parsl.NewThreadPoolExecutor("threads", 4)},
		RunDir:    dir,
		Memoize:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dfk.Cleanup() })
	return dfk
}

func countStates(events []parsl.TaskEvent, state parsl.TaskState) int {
	n := 0
	for _, ev := range events {
		if ev.State == state {
			n++
		}
	}
	return n
}

// TestScopedWorkflowMemoizesAcrossRestart simulates the crash-resume path at
// the library level: run a scoped workflow, snapshot the memo table, restore
// it into a fresh DFK (a "new process"), and re-run the identical workflow
// against the same work root — every step must be a memo hit and the outputs
// must reference the same on-disk files.
func TestScopedWorkflowMemoizesAcrossRestart(t *testing.T) {
	doc, err := cwl.ParseBytes([]byte(scopedWorkflow), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	wf := doc.(*cwl.Workflow)
	work := t.TempDir()
	inputs := yamlx.MapOf("message", "hello-durable")

	dfk1 := memoizingDFK(t, work)
	r1 := &Runner{DFK: dfk1, WorkRoot: work, InputsDir: work, Label: "run1", Scope: "dochash-1"}
	out1, err := r1.RunWorkflow(wf, inputs)
	if err != nil {
		t.Fatal(err)
	}
	ev1 := dfk1.EventsFor("run1")
	if hits := countStates(ev1, parsl.StateMemoHit); hits != 0 {
		t.Fatalf("first run had %d memo hits, want 0", hits)
	}
	if done := countStates(ev1, parsl.StateDone); done != 2 {
		t.Fatalf("first run executed %d steps, want 2", done)
	}
	snap := dfk1.MemoSnapshot()
	if len(snap) != 2 {
		t.Fatalf("memo snapshot has %d entries, want 2", len(snap))
	}

	// "Restart": encode/decode through the result codec like the persistence
	// layer does, then restore into a fresh DFK.
	codec := ResultCodec{}
	restored := make([]parsl.MemoEntry, 0, len(snap))
	for _, e := range snap {
		raw, ok := codec.Encode(e.Value)
		if !ok {
			t.Fatalf("step result %#v is not checkpointable", e.Value)
		}
		v, err := codec.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		restored = append(restored, parsl.MemoEntry{Key: e.Key, App: e.App, Value: v})
	}
	dfk2 := memoizingDFK(t, work)
	if n := dfk2.RestoreMemo(restored); n != 2 {
		t.Fatalf("restored %d memo entries, want 2", n)
	}
	r2 := &Runner{DFK: dfk2, WorkRoot: work, InputsDir: work, Label: "run2", Scope: "dochash-1"}
	out2, err := r2.RunWorkflow(wf, inputs)
	if err != nil {
		t.Fatal(err)
	}
	ev2 := dfk2.EventsFor("run2")
	if hits := countStates(ev2, parsl.StateMemoHit); hits != 2 {
		t.Fatalf("re-run had %d memo hits, want 2 (events: %v)", hits, ev2)
	}
	a, _ := out1.MarshalJSON()
	b, _ := out2.MarshalJSON()
	if string(a) != string(b) {
		t.Errorf("outputs diverged across restart:\n  %s\n  %s", a, b)
	}
	if !strings.Contains(string(b), "relay.txt") {
		t.Errorf("outputs = %s", b)
	}
}

// TestScopeDisabledKeepsStepsUnmemoized pins the default: without a scope the
// engine must not key step tasks, so repeated runs re-execute.
func TestScopeDisabledKeepsStepsUnmemoized(t *testing.T) {
	doc, err := cwl.ParseBytes([]byte(scopedWorkflow), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	wf := doc.(*cwl.Workflow)
	work := t.TempDir()
	dfk := memoizingDFK(t, work)
	r := &Runner{DFK: dfk, WorkRoot: work, InputsDir: work, Label: "unscoped"}
	for i := 0; i < 2; i++ {
		if _, err := r.RunWorkflow(wf, yamlx.MapOf("message", "hi")); err != nil {
			t.Fatal(err)
		}
	}
	if hits := countStates(dfk.EventsFor("unscoped"), parsl.StateMemoHit); hits != 0 {
		t.Errorf("unscoped runs produced %d memo hits, want 0", hits)
	}
}
