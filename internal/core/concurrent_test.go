package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cwl"
	"repro/internal/parsl"
	"repro/internal/yamlx"
)

// TestConcurrentRunnersShareDFK is the invariant the submission service's
// scheduler depends on: many Runner.Run calls executing in parallel over one
// shared DFK must be race-free and each produce its own correct outputs.
// Run with -race.
func TestConcurrentRunnersShareDFK(t *testing.T) {
	dir := t.TempDir()
	dfk, err := parsl.Load(parsl.Config{
		Executors: []parsl.Executor{parsl.NewThreadPoolExecutor("threads", 8)},
		RunDir:    dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dfk.Cleanup()

	toolSrc := []byte(`cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
inputs:
  message: {type: string, inputBinding: {position: 1}}
outputs:
  output: {type: stdout}
stdout: out.txt
`)
	wfSrc := []byte(`cwlVersion: v1.2
class: Workflow
inputs:
  message: string
outputs:
  final:
    type: File
    outputSource: relay/output
steps:
  greet:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        message: {type: string, inputBinding: {position: 1}}
      outputs:
        output: {type: stdout}
      stdout: greet.txt
    in: {message: message}
    out: [output]
  relay:
    run:
      class: CommandLineTool
      baseCommand: cat
      inputs:
        infile: {type: File, inputBinding: {position: 1}}
      outputs:
        output: {type: stdout}
      stdout: relay.txt
    in: {infile: greet/output}
    out: [output]
`)
	tool, err := cwl.ParseBytes(toolSrc, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	wf, err := cwl.ParseBytes(wfSrc, "", nil)
	if err != nil {
		t.Fatal(err)
	}

	const n = 12 // ≥ 8 parallel runs, tools and workflows interleaved
	outputs := make([]*yamlx.Map, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := &Runner{
				DFK:      dfk,
				WorkRoot: filepath.Join(dir, fmt.Sprintf("run-%d", i)),
				Label:    fmt.Sprintf("run-%d", i),
			}
			doc := cwl.Document(tool)
			if i%2 == 1 {
				doc = wf
			}
			outputs[i], errs[i] = r.Run(doc, yamlx.MapOf("message", fmt.Sprintf("msg-%d", i)))
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		key := "output"
		if i%2 == 1 {
			key = "final"
		}
		f, _ := outputs[i].Value(key).(*yamlx.Map)
		if f == nil {
			t.Fatalf("run %d outputs = %v", i, outputs[i])
		}
		data, err := os.ReadFile(f.GetString("path"))
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimSpace(string(data)) != fmt.Sprintf("msg-%d", i) {
			t.Errorf("run %d output = %q, want msg-%d", i, data, i)
		}
	}

	// Labels keep each run's events separable from the shared stream.
	for i := 0; i < n; i++ {
		evs := dfk.EventsFor(fmt.Sprintf("run-%d", i))
		if len(evs) == 0 {
			t.Errorf("run %d has no labeled events", i)
		}
	}
}

// TestWorkflowStepsDoNotShareMemo guards against step tasks colliding in the
// memo table: all steps submit under one app name with empty args, so with
// Memoize enabled they must opt out (CallOpts.NoMemo) or every step would
// return the first step's result.
func TestWorkflowStepsDoNotShareMemo(t *testing.T) {
	dir := t.TempDir()
	dfk, err := parsl.Load(parsl.Config{
		Executors: []parsl.Executor{parsl.NewThreadPoolExecutor("threads", 4)},
		RunDir:    dir,
		Memoize:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dfk.Cleanup()

	wf, err := cwl.ParseBytes([]byte(`cwlVersion: v1.2
class: Workflow
inputs: {}
outputs:
  a: {type: File, outputSource: first/output}
  b: {type: File, outputSource: second/output}
steps:
  first:
    run:
      class: CommandLineTool
      baseCommand: [echo, alpha]
      inputs: {}
      outputs:
        output: {type: stdout}
      stdout: a.txt
    in: {}
    out: [output]
  second:
    run:
      class: CommandLineTool
      baseCommand: [echo, beta]
      inputs: {}
      outputs:
        output: {type: stdout}
      stdout: b.txt
    in: {}
    out: [output]
`), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewRunner(dfk).Run(wf, nil)
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]string{"a": "alpha", "b": "beta"} {
		f, _ := out.Value(key).(*yamlx.Map)
		if f == nil {
			t.Fatalf("output %q = %v", key, out.Value(key))
		}
		data, err := os.ReadFile(f.GetString("path"))
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimSpace(string(data)) != want {
			t.Errorf("output %q = %q, want %q (memo collision?)", key, data, want)
		}
	}
}

// TestRunContextCancelsMidRun covers the cancellation path the service's
// DELETE /runs/{id} uses: a canceled context unblocks RunContext promptly.
func TestRunContextCancelsMidRun(t *testing.T) {
	dir := t.TempDir()
	dfk, err := parsl.Load(parsl.Config{
		Executors: []parsl.Executor{parsl.NewThreadPoolExecutor("threads", 2)},
		RunDir:    dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dfk.Cleanup()

	doc, err := cwl.ParseBytes([]byte(`cwlVersion: v1.2
class: CommandLineTool
baseCommand: [sleep, "2"]
inputs: {}
outputs: {}
`), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := NewRunner(dfk)
	done := make(chan error, 1)
	go func() {
		_, err := r.RunContext(ctx, doc, nil)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the task launch
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("error = %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Errorf("cancellation took %v", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunContext did not return after cancel")
	}
}

// TestRunnerOnCleanedDFKFailsCleanly is the Runner/Cleanup interaction the
// service's drain path depends on: a run racing (or following) DFK.Cleanup
// must fail with an error — never panic on a closed executor queue and never
// hang. Run with -race.
func TestRunnerOnCleanedDFKFailsCleanly(t *testing.T) {
	dir := t.TempDir()
	dfk, err := parsl.Load(parsl.Config{
		Executors: []parsl.Executor{parsl.NewThreadPoolExecutor("threads", 4)},
		RunDir:    dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := cwl.ParseBytes([]byte(`cwlVersion: v1.2
class: CommandLineTool
baseCommand: [true]
inputs: {}
outputs: {}
`), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Runs racing Cleanup either succeed (submitted before shutdown) or fail
	// cleanly with the DFK's shutdown error.
	const n = 8
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := NewRunner(dfk)
			r.WorkRoot = filepath.Join(dir, fmt.Sprintf("race-%d", i))
			_, errs[i] = r.Run(doc, nil)
		}(i)
	}
	if err := dfk.Cleanup(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil && !strings.Contains(err.Error(), "shut down") {
			t.Errorf("run %d: unexpected error %v", i, err)
		}
	}
	// After Cleanup, every run fails with the shutdown error.
	r := NewRunner(dfk)
	if _, err := r.Run(doc, nil); err == nil || !strings.Contains(err.Error(), "shut down") {
		t.Errorf("run on cleaned DFK: err = %v, want shutdown error", err)
	}
}
