package cwl

import (
	"fmt"
	"strings"
)

// ValidationIssue is one problem found by Validate.
type ValidationIssue struct {
	Severity string // "error" or "warning"
	Path     string // document element, e.g. "steps/resize_image/in/size"
	Msg      string
}

func (v ValidationIssue) String() string {
	return fmt.Sprintf("%s: %s: %s", v.Severity, v.Path, v.Msg)
}

// ValidationError aggregates errors (warnings are reported separately).
type ValidationError struct{ Issues []ValidationIssue }

func (e *ValidationError) Error() string {
	var parts []string
	for _, i := range e.Issues {
		parts = append(parts, i.String())
	}
	return "cwl validation failed:\n  " + strings.Join(parts, "\n  ")
}

// Validate checks a document for structural problems. It returns all issues
// (errors and warnings) and a non-nil error if any issue is an error.
func Validate(doc Document) ([]ValidationIssue, error) {
	var issues []ValidationIssue
	switch d := doc.(type) {
	case *CommandLineTool:
		issues = validateTool(d)
	case *Workflow:
		issues = validateWorkflow(d)
	case *ExpressionTool:
		issues = validateExprTool(d)
	default:
		issues = []ValidationIssue{{Severity: "error", Path: "/", Msg: "unknown document class"}}
	}
	var errs []ValidationIssue
	for _, i := range issues {
		if i.Severity == "error" {
			errs = append(errs, i)
		}
	}
	if len(errs) > 0 {
		return issues, &ValidationError{Issues: errs}
	}
	return issues, nil
}

func errIssue(path, format string, args ...any) ValidationIssue {
	return ValidationIssue{Severity: "error", Path: path, Msg: fmt.Sprintf(format, args...)}
}

func warnIssue(path, format string, args ...any) ValidationIssue {
	return ValidationIssue{Severity: "warning", Path: path, Msg: fmt.Sprintf(format, args...)}
}

func validateCommon(version string, reqs, hints Requirements) []ValidationIssue {
	var issues []ValidationIssue
	if version == "" {
		issues = append(issues, warnIssue("cwlVersion", "missing cwlVersion (assuming v1.2)"))
	} else if !strings.HasPrefix(version, "v1.") {
		issues = append(issues, errIssue("cwlVersion", "unsupported cwlVersion %q", version))
	}
	for _, u := range reqs.Unknown {
		issues = append(issues, errIssue("requirements", "unsupported requirement %q", u))
	}
	for _, u := range hints.Unknown {
		issues = append(issues, warnIssue("hints", "ignoring unsupported hint %q", u))
	}
	if reqs.InlineJavascript && reqs.InlinePython {
		issues = append(issues, warnIssue("requirements",
			"both InlineJavascriptRequirement and InlinePythonRequirement are enabled; ${...} bodies use JavaScript"))
	}
	return issues
}

func validateTool(t *CommandLineTool) []ValidationIssue {
	issues := validateCommon(t.CWLVersion, t.Requirements, t.Hints)
	if len(t.BaseCommand) == 0 && len(t.Arguments) == 0 {
		issues = append(issues, errIssue("baseCommand", "tool has neither baseCommand nor arguments"))
	}
	seen := map[string]bool{}
	for _, in := range t.Inputs {
		path := "inputs/" + in.ID
		if seen[in.ID] {
			issues = append(issues, errIssue(path, "duplicate input id"))
		}
		seen[in.ID] = true
		if in.Type == nil {
			issues = append(issues, errIssue(path, "missing type"))
			continue
		}
		if in.HasDef && in.Default != nil {
			if _, err := in.Type.Accepts(in.Default); err != nil {
				issues = append(issues, errIssue(path, "default value does not match type %s: %v", in.Type, err))
			}
		}
		if in.Validate != "" && !t.Requirements.InlinePython {
			issues = append(issues, errIssue(path, "validate: requires InlinePythonRequirement"))
		}
	}
	stdoutUsed := false
	outSeen := map[string]bool{}
	for _, out := range t.Outputs {
		path := "outputs/" + out.ID
		if outSeen[out.ID] {
			issues = append(issues, errIssue(path, "duplicate output id"))
		}
		outSeen[out.ID] = true
		if out.Type == nil {
			issues = append(issues, errIssue(path, "missing type"))
			continue
		}
		switch out.Type.Name {
		case "stdout":
			if stdoutUsed {
				issues = append(issues, errIssue(path, "multiple outputs of type stdout"))
			}
			stdoutUsed = true
		case "File", "Directory", "array":
			if out.Binding == nil || len(out.Binding.Glob) == 0 {
				if out.Binding == nil || out.Binding.OutputEval == "" {
					issues = append(issues, errIssue(path, "File output needs outputBinding.glob or outputEval"))
				}
			}
		}
	}
	return issues
}

func validateExprTool(t *ExpressionTool) []ValidationIssue {
	issues := validateCommon(t.CWLVersion, t.Requirements, Requirements{})
	if !t.Requirements.InlineJavascript && !t.Requirements.InlinePython {
		issues = append(issues, warnIssue("requirements",
			"ExpressionTool without InlineJavascriptRequirement or InlinePythonRequirement"))
	}
	return issues
}

func validateWorkflow(w *Workflow) []ValidationIssue {
	issues := validateCommon(w.CWLVersion, w.Requirements, w.Hints)
	inputIDs := map[string]bool{}
	for _, in := range w.Inputs {
		if inputIDs[in.ID] {
			issues = append(issues, errIssue("inputs/"+in.ID, "duplicate input id"))
		}
		inputIDs[in.ID] = true
	}
	// step id → set of outputs it exposes
	stepOutputs := map[string]map[string]bool{}
	for _, s := range w.Steps {
		outs := map[string]bool{}
		for _, o := range s.Out {
			outs[o] = true
		}
		stepOutputs[s.ID] = outs
	}
	validSource := func(src string) bool {
		src = strings.TrimPrefix(src, "#")
		if i := strings.IndexByte(src, '/'); i >= 0 {
			step, out := src[:i], src[i+1:]
			outs, ok := stepOutputs[step]
			return ok && outs[out]
		}
		return inputIDs[src]
	}

	scatterUsed := false
	subworkflowUsed := false
	for _, s := range w.Steps {
		base := "steps/" + s.ID
		if s.Run == nil {
			issues = append(issues, errIssue(base, "missing run"))
			continue
		}
		if _, ok := s.Run.(*Workflow); ok {
			subworkflowUsed = true
			sub := s.Run.(*Workflow)
			subIssues := validateWorkflow(sub)
			for _, i := range subIssues {
				i.Path = base + "/run/" + i.Path
				issues = append(issues, i)
			}
		}
		if tool, ok := s.Run.(*CommandLineTool); ok {
			for _, i := range validateTool(tool) {
				i.Path = base + "/run/" + i.Path
				issues = append(issues, i)
			}
		}
		// Every step "out" must exist on the run process.
		runOuts := map[string]bool{}
		switch run := s.Run.(type) {
		case *CommandLineTool:
			for _, o := range run.Outputs {
				runOuts[o.ID] = true
			}
		case *Workflow:
			for _, o := range run.Outputs {
				runOuts[o.ID] = true
			}
		case *ExpressionTool:
			for _, o := range run.Outputs {
				runOuts[o.ID] = true
			}
		}
		for _, o := range s.Out {
			if !runOuts[o] {
				issues = append(issues, errIssue(base+"/out", "step exposes output %q not produced by its process", o))
			}
		}
		// Step inputs must reference valid sources and (for tools) real inputs.
		runIns := map[string]bool{}
		switch run := s.Run.(type) {
		case *CommandLineTool:
			for _, in := range run.Inputs {
				runIns[in.ID] = true
			}
		case *Workflow:
			for _, in := range run.Inputs {
				runIns[in.ID] = true
			}
		case *ExpressionTool:
			for _, in := range run.Inputs {
				runIns[in.ID] = true
			}
		}
		seenIn := map[string]bool{}
		for _, in := range s.In {
			p := base + "/in/" + in.ID
			if seenIn[in.ID] {
				issues = append(issues, errIssue(p, "duplicate step input"))
			}
			seenIn[in.ID] = true
			if !runIns[in.ID] {
				// A step may carry inputs the run process does not declare
				// when the step has a `when` guard or the input feeds a
				// valueFrom expression — both evaluate against the full step
				// input object (CWL v1.2 §WorkflowStepInput).
				if s.When == "" && in.ValueFrom == "" {
					issues = append(issues, errIssue(p, "step input %q does not exist on the run process", in.ID))
				} else {
					issues = append(issues, warnIssue(p, "step input %q is not consumed by the run process (available to when/valueFrom only)", in.ID))
				}
			}
			for _, src := range in.Source {
				if !validSource(src) {
					issues = append(issues, errIssue(p, "unknown source %q", src))
				}
			}
			if len(in.Source) > 1 && !w.Requirements.MultipleInput {
				issues = append(issues, errIssue(p, "multiple sources require MultipleInputFeatureRequirement"))
			}
			if in.ValueFrom != "" && !w.Requirements.StepInputExpression {
				issues = append(issues, errIssue(p, "valueFrom requires StepInputExpressionRequirement"))
			}
		}
		// Scatter names must be step inputs.
		if len(s.Scatter) > 0 {
			scatterUsed = true
			for _, sc := range s.Scatter {
				if !seenIn[sc] {
					issues = append(issues, errIssue(base+"/scatter", "scatter references unknown input %q", sc))
				}
			}
			switch s.ScatterMethod {
			case "", "dotproduct", "nested_crossproduct", "flat_crossproduct":
			default:
				issues = append(issues, errIssue(base+"/scatterMethod", "unknown scatter method %q", s.ScatterMethod))
			}
		}
		if s.When != "" && !strings.Contains(s.When, "$(") && !strings.Contains(s.When, "${") {
			issues = append(issues, warnIssue(base+"/when", "'when' is not an expression; step will always or never run"))
		}
	}
	if scatterUsed && !w.Requirements.Scatter {
		issues = append(issues, errIssue("requirements", "scatter used without ScatterFeatureRequirement"))
	}
	if subworkflowUsed && !w.Requirements.Subworkflow {
		issues = append(issues, errIssue("requirements", "nested workflows require SubworkflowFeatureRequirement"))
	}
	for _, o := range w.Outputs {
		p := "outputs/" + o.ID
		if len(o.OutputSource) == 0 {
			issues = append(issues, errIssue(p, "workflow output missing outputSource"))
			continue
		}
		for _, src := range o.OutputSource {
			if !validSource(src) {
				issues = append(issues, errIssue(p, "unknown outputSource %q", src))
			}
		}
	}
	return issues
}
