// Package cwl implements the CWL v1.2 document model the paper's integration
// consumes: CommandLineTool and Workflow classes, the type system, input and
// output bindings, requirements (including the paper's InlinePythonRequirement
// extension), plus loading and validation.
package cwl

import (
	"fmt"
	"strings"

	"repro/internal/yamlx"
)

// Type is a parsed CWL type. Exactly one of the shape fields is set for
// non-primitive types.
type Type struct {
	// Name is the primitive or class name: null, boolean, int, long, float,
	// double, string, File, Directory, Any, stdout, stderr, array, enum,
	// record.
	Name string
	// Optional marks "type?" / ["null", T] unions.
	Optional bool
	// Items is the element type when Name == "array".
	Items *Type
	// Symbols are the legal values when Name == "enum".
	Symbols []string
	// Fields are record fields when Name == "record".
	Fields []RecordField
}

// RecordField is one field of a record type.
type RecordField struct {
	Name string
	Type *Type
}

var primitives = map[string]bool{
	"null": true, "boolean": true, "int": true, "long": true, "float": true,
	"double": true, "string": true, "File": true, "Directory": true,
	"Any": true, "stdout": true, "stderr": true,
}

// ParseType parses any of the CWL type syntaxes: "string", "File[]",
// "int?", ["null", "string"], {type: array, items: string},
// {type: enum, symbols: [...]}, {type: record, fields: [...]}.
func ParseType(v any) (*Type, error) {
	switch x := v.(type) {
	case string:
		return parseTypeString(x)
	case []any:
		// Union; we support the common ["null", T] form plus single-element
		// unions.
		var nonNull []any
		optional := false
		for _, e := range x {
			if s, ok := e.(string); ok && s == "null" {
				optional = true
				continue
			}
			nonNull = append(nonNull, e)
		}
		if len(nonNull) == 0 {
			return &Type{Name: "null"}, nil
		}
		if len(nonNull) > 1 {
			// General unions degrade to Any (accepted, validated loosely).
			return &Type{Name: "Any", Optional: optional}, nil
		}
		t, err := ParseType(nonNull[0])
		if err != nil {
			return nil, err
		}
		t.Optional = t.Optional || optional
		return t, nil
	case *yamlx.Map:
		typeName, _ := x.Value("type").(string)
		switch typeName {
		case "array":
			items, ok := x.Get("items")
			if !ok {
				return nil, fmt.Errorf("array type missing 'items'")
			}
			it, err := ParseType(items)
			if err != nil {
				return nil, err
			}
			return &Type{Name: "array", Items: it}, nil
		case "enum":
			var symbols []string
			for _, s := range x.GetSlice("symbols") {
				str, ok := s.(string)
				if !ok {
					return nil, fmt.Errorf("enum symbol %v is not a string", s)
				}
				// Symbols may carry a namespace prefix like "file#sym".
				if i := strings.LastIndexAny(str, "#/"); i >= 0 {
					str = str[i+1:]
				}
				symbols = append(symbols, str)
			}
			if len(symbols) == 0 {
				return nil, fmt.Errorf("enum type has no symbols")
			}
			return &Type{Name: "enum", Symbols: symbols}, nil
		case "record":
			var fields []RecordField
			switch fv := x.Value("fields").(type) {
			case []any:
				for _, f := range fv {
					fm, ok := f.(*yamlx.Map)
					if !ok {
						return nil, fmt.Errorf("record field is not a mapping")
					}
					ft, err := ParseType(fm.Value("type"))
					if err != nil {
						return nil, err
					}
					fields = append(fields, RecordField{Name: fm.GetString("name"), Type: ft})
				}
			case *yamlx.Map:
				for _, name := range fv.Keys() {
					spec := fv.Value(name)
					if fm, ok := spec.(*yamlx.Map); ok && fm.Has("type") {
						spec = fm.Value("type")
					}
					ft, err := ParseType(spec)
					if err != nil {
						return nil, err
					}
					fields = append(fields, RecordField{Name: name, Type: ft})
				}
			}
			return &Type{Name: "record", Fields: fields}, nil
		case "":
			return nil, fmt.Errorf("type mapping missing 'type' key")
		default:
			t, err := parseTypeString(typeName)
			if err != nil {
				return nil, err
			}
			return t, nil
		}
	case nil:
		return nil, fmt.Errorf("missing type")
	}
	return nil, fmt.Errorf("unsupported type specification %T", v)
}

func parseTypeString(s string) (*Type, error) {
	optional := false
	if strings.HasSuffix(s, "?") {
		optional = true
		s = strings.TrimSuffix(s, "?")
	}
	if strings.HasSuffix(s, "[]") {
		inner, err := parseTypeString(strings.TrimSuffix(s, "[]"))
		if err != nil {
			return nil, err
		}
		return &Type{Name: "array", Items: inner, Optional: optional}, nil
	}
	if !primitives[s] {
		return nil, fmt.Errorf("unknown CWL type %q", s)
	}
	return &Type{Name: s, Optional: optional}, nil
}

// String renders the type in CWL shorthand.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	s := t.Name
	switch t.Name {
	case "array":
		s = t.Items.String() + "[]"
	case "enum":
		s = "enum(" + strings.Join(t.Symbols, "|") + ")"
	}
	if t.Optional {
		s += "?"
	}
	return s
}

// IsFile reports whether values of this type are File objects.
func (t *Type) IsFile() bool { return t.Name == "File" }

// Accepts checks whether a document value conforms to the type, performing
// the implicit conversions CWL allows (int→long, int→double, etc.). It
// returns the possibly-coerced value.
func (t *Type) Accepts(v any) (any, error) {
	if v == nil {
		if t.Optional || t.Name == "null" || t.Name == "Any" {
			return nil, nil
		}
		return nil, fmt.Errorf("null value for non-optional type %s", t)
	}
	switch t.Name {
	case "Any":
		return v, nil
	case "boolean":
		if b, ok := v.(bool); ok {
			return b, nil
		}
	case "int", "long":
		switch n := v.(type) {
		case int64:
			return n, nil
		case int:
			return int64(n), nil
		case float64:
			if n == float64(int64(n)) {
				return int64(n), nil
			}
		}
	case "float", "double":
		switch n := v.(type) {
		case float64:
			return n, nil
		case int64:
			return float64(n), nil
		case int:
			return float64(n), nil
		}
	case "string":
		if s, ok := v.(string); ok {
			return s, nil
		}
	case "File", "Directory":
		switch f := v.(type) {
		case *yamlx.Map:
			if cls := f.GetString("class"); cls == "" || cls == t.Name {
				return f, nil
			}
			return nil, fmt.Errorf("expected %s, got class %q", t.Name, f.GetString("class"))
		case string:
			// A bare path is promoted to a File/Directory object.
			m := yamlx.NewMap()
			m.Set("class", t.Name)
			m.Set("path", f)
			return m, nil
		}
	case "array":
		arr, ok := v.([]any)
		if !ok {
			return nil, fmt.Errorf("expected array of %s, got %T", t.Items, v)
		}
		out := make([]any, len(arr))
		for i, e := range arr {
			c, err := t.Items.Accepts(e)
			if err != nil {
				return nil, fmt.Errorf("array element %d: %w", i, err)
			}
			out[i] = c
		}
		return out, nil
	case "enum":
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("expected enum symbol, got %T", v)
		}
		for _, sym := range t.Symbols {
			if sym == s {
				return s, nil
			}
		}
		return nil, fmt.Errorf("value %q is not one of enum symbols %v", s, t.Symbols)
	case "record":
		m, ok := v.(*yamlx.Map)
		if !ok {
			return nil, fmt.Errorf("expected record, got %T", v)
		}
		for _, f := range t.Fields {
			fv, has := m.Get(f.Name)
			if !has {
				if !f.Type.Optional {
					return nil, fmt.Errorf("record missing field %q", f.Name)
				}
				continue
			}
			c, err := f.Type.Accepts(fv)
			if err != nil {
				return nil, fmt.Errorf("record field %q: %w", f.Name, err)
			}
			m.Set(f.Name, c)
		}
		return m, nil
	case "stdout", "stderr":
		// Output-only types; no input values.
		return v, nil
	case "null":
		return nil, fmt.Errorf("non-null value for null type")
	}
	return nil, fmt.Errorf("value %v (%T) does not match type %s", v, v, t)
}
