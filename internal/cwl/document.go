package cwl

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"repro/internal/yamlx"
)

// Binding is a CommandLineTool inputBinding.
type Binding struct {
	HasPosition   bool
	Position      int
	PositionExpr  string // expression form of position (rare)
	Prefix        string
	Separate      bool // default true
	ItemSeparator string
	ValueFrom     string
	ShellQuote    bool // default true
	LoadContents  bool
}

func parseBinding(m *yamlx.Map) (*Binding, error) {
	if m == nil {
		return nil, nil
	}
	b := &Binding{Separate: true, ShellQuote: true}
	for _, k := range m.Keys() {
		v := m.Value(k)
		switch k {
		case "position":
			switch n := v.(type) {
			case int64:
				b.Position = int(n)
				b.HasPosition = true
			case string:
				b.PositionExpr = n
				b.HasPosition = true
			default:
				return nil, fmt.Errorf("position must be an int or expression, got %T", v)
			}
		case "prefix":
			s, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("prefix must be a string")
			}
			b.Prefix = s
		case "separate":
			bb, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("separate must be a boolean")
			}
			b.Separate = bb
		case "itemSeparator":
			s, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("itemSeparator must be a string")
			}
			b.ItemSeparator = s
		case "valueFrom":
			b.ValueFrom = stringify(v)
		case "shellQuote":
			bb, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("shellQuote must be a boolean")
			}
			b.ShellQuote = bb
		case "loadContents":
			bb, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("loadContents must be a boolean")
			}
			b.LoadContents = bb
		default:
			return nil, fmt.Errorf("unknown inputBinding field %q", k)
		}
	}
	return b, nil
}

func stringify(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case nil:
		return ""
	default:
		return fmt.Sprint(v)
	}
}

// OutputBinding is a CommandLineTool outputBinding.
type OutputBinding struct {
	Glob         []string // glob patterns (may contain expressions)
	LoadContents bool
	OutputEval   string
}

func parseOutputBinding(m *yamlx.Map) (*OutputBinding, error) {
	if m == nil {
		return nil, nil
	}
	b := &OutputBinding{}
	for _, k := range m.Keys() {
		v := m.Value(k)
		switch k {
		case "glob":
			switch g := v.(type) {
			case string:
				b.Glob = []string{g}
			case []any:
				for _, e := range g {
					s, ok := e.(string)
					if !ok {
						return nil, fmt.Errorf("glob entries must be strings")
					}
					b.Glob = append(b.Glob, s)
				}
			default:
				return nil, fmt.Errorf("glob must be a string or list of strings")
			}
		case "loadContents":
			bb, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("loadContents must be a boolean")
			}
			b.LoadContents = bb
		case "outputEval":
			b.OutputEval = stringify(v)
		default:
			return nil, fmt.Errorf("unknown outputBinding field %q", k)
		}
	}
	return b, nil
}

// InputParam describes one tool or workflow input.
type InputParam struct {
	ID      string
	Type    *Type
	Label   string
	Doc     string
	Default any
	HasDef  bool
	Binding *Binding
	// Validate is the paper's InlinePython extension: an f-string expression
	// evaluated before execution; raising rejects the input.
	Validate string
	// Streamable and Format are parsed for compatibility.
	Streamable bool
	Format     string
}

// OutputParam describes one tool output.
type OutputParam struct {
	ID      string
	Type    *Type
	Label   string
	Doc     string
	Binding *OutputBinding
	Format  string
}

// WorkflowOutput describes one workflow-level output.
type WorkflowOutput struct {
	ID           string
	Type         *Type
	Doc          string
	OutputSource []string
	LinkMerge    string
	PickValue    string
}

// ArgEntry is one element of a tool's arguments list: either a plain string
// (possibly an expression) or a binding with valueFrom.
type ArgEntry struct {
	ValueFrom string
	Binding   *Binding // position/prefix/shellQuote for this argument
}

// CommandLineTool is the CWL CommandLineTool class.
type CommandLineTool struct {
	CWLVersion   string
	ID           string
	Label        string
	Doc          string
	BaseCommand  []string
	Arguments    []ArgEntry
	Inputs       []*InputParam
	Outputs      []*OutputParam
	Stdin        string
	Stdout       string
	Stderr       string
	Requirements Requirements
	Hints        Requirements
	SuccessCodes []int

	// Path is where the document was loaded from ("" for in-memory docs).
	Path string

	// Raw is the source mapping the tool was parsed from (nil for tools
	// constructed in memory). It is what lets a tool invocation be shipped to
	// a process-isolated worker: the worker re-parses the same document, so
	// the wire format never chases the parsed representation. Treat it as
	// read-only.
	Raw *yamlx.Map

	// RawDoc's lazily computed cache: scatter siblings share one tool
	// pointer, so the document serializes and hashes once per tool, not once
	// per invocation.
	rawOnce sync.Once
	rawJSON []byte
	rawHash string
	rawErr  error
}

// RawDoc returns Raw's JSON encoding and its content hash (the same
// sha256-hex form service-layer doc caching uses), computed once per tool.
// Dispatch layers use the hash to ship a shared document a single time per
// worker session. Returns an error for in-memory tools without raw source.
func (t *CommandLineTool) RawDoc() (doc []byte, hash string, err error) {
	t.rawOnce.Do(func() {
		if t.Raw == nil {
			t.rawErr = fmt.Errorf("tool %s has no raw source document", t.ID)
			return
		}
		t.rawJSON, t.rawErr = t.Raw.MarshalJSON()
		if t.rawErr == nil {
			sum := sha256.Sum256(t.rawJSON)
			t.rawHash = hex.EncodeToString(sum[:])
		}
	})
	return t.rawJSON, t.rawHash, t.rawErr
}

// Class returns "CommandLineTool".
func (t *CommandLineTool) Class() string { return "CommandLineTool" }

// Input returns the input with the given id, or nil.
func (t *CommandLineTool) Input(id string) *InputParam {
	for _, in := range t.Inputs {
		if in.ID == id {
			return in
		}
	}
	return nil
}

// Output returns the output with the given id, or nil.
func (t *CommandLineTool) Output(id string) *OutputParam {
	for _, out := range t.Outputs {
		if out.ID == id {
			return out
		}
	}
	return nil
}

// StepInput is one "in:" entry of a workflow step.
type StepInput struct {
	ID        string
	Source    []string
	LinkMerge string
	PickValue string
	Default   any
	HasDef    bool
	ValueFrom string
}

// WorkflowStep is one step of a Workflow.
type WorkflowStep struct {
	ID            string
	RunRef        string // original "run:" string ("" when embedded)
	Run           Document
	In            []*StepInput
	Out           []string
	Scatter       []string
	ScatterMethod string // dotproduct (default), nested_crossproduct, flat_crossproduct
	When          string
	Label         string
	Doc           string
	Requirements  Requirements
}

// Input returns the step input with the given id, or nil.
func (s *WorkflowStep) Input(id string) *StepInput {
	for _, in := range s.In {
		if in.ID == id {
			return in
		}
	}
	return nil
}

// Workflow is the CWL Workflow class.
type Workflow struct {
	CWLVersion   string
	ID           string
	Label        string
	Doc          string
	Inputs       []*InputParam
	Outputs      []*WorkflowOutput
	Steps        []*WorkflowStep
	Requirements Requirements
	Hints        Requirements

	Path string
}

// Class returns "Workflow".
func (w *Workflow) Class() string { return "Workflow" }

// Input returns the workflow input with the given id, or nil.
func (w *Workflow) Input(id string) *InputParam {
	for _, in := range w.Inputs {
		if in.ID == id {
			return in
		}
	}
	return nil
}

// Step returns the step with the given id, or nil.
func (w *Workflow) Step(id string) *WorkflowStep {
	for _, s := range w.Steps {
		if s.ID == id {
			return s
		}
	}
	return nil
}

// ExpressionTool is the CWL ExpressionTool class: a pure expression step.
type ExpressionTool struct {
	CWLVersion   string
	ID           string
	Doc          string
	Inputs       []*InputParam
	Outputs      []*OutputParam
	Expression   string
	Requirements Requirements

	Path string
}

// Class returns "ExpressionTool".
func (e *ExpressionTool) Class() string { return "ExpressionTool" }

// Document is any parsed CWL process object.
type Document interface{ Class() string }

// EnvDef is one environment variable definition from EnvVarRequirement.
type EnvDef struct {
	Name  string
	Value string // may be an expression
}

// ResourceReq mirrors ResourceRequirement; values may be numbers or
// expressions (kept as any).
type ResourceReq struct {
	CoresMin any
	CoresMax any
	RAMMin   any
	RAMMax   any
}

// DockerReq mirrors DockerRequirement. The runners parse it and record the
// image, executing the tool as a plain command (container engines are out of
// scope for the reproduction; see DESIGN.md).
type DockerReq struct {
	Pull string
	Load string
}

// InitialWorkDir mirrors InitialWorkDirRequirement; Listing entries are
// either expressions or {entryname, entry} dirents.
type InitialWorkDir struct {
	Listing []Dirent
}

// Dirent is one InitialWorkDirRequirement listing entry.
type Dirent struct {
	EntryName string // may be an expression
	Entry     string // may be an expression
	Writable  bool
}

// Requirements is the parsed union of the requirement classes the engine
// understands.
type Requirements struct {
	InlineJavascript    bool
	JSExpressionLib     []string
	InlinePython        bool
	PyExpressionLib     []string
	StepInputExpression bool
	Scatter             bool
	Subworkflow         bool
	MultipleInput       bool
	ShellCommand        bool
	EnvVars             []EnvDef
	Resource            *ResourceReq
	Docker              *DockerReq
	WorkDir             *InitialWorkDir
	// TimeLimitSec is ToolTimeLimit's walltime bound in seconds (CWL v1.1):
	// past it the tool invocation is killed and fails. 0 = unbounded.
	TimeLimitSec int64
	// Unknown lists requirement classes the engine does not implement;
	// validation reports them (errors for requirements, warnings for hints).
	Unknown []string
}

// Merge overlays child requirements on top of parent ones (step-level
// requirements extend process-level ones).
func (r Requirements) Merge(child Requirements) Requirements {
	out := r
	out.InlineJavascript = r.InlineJavascript || child.InlineJavascript
	out.JSExpressionLib = append(append([]string{}, r.JSExpressionLib...), child.JSExpressionLib...)
	out.InlinePython = r.InlinePython || child.InlinePython
	out.PyExpressionLib = append(append([]string{}, r.PyExpressionLib...), child.PyExpressionLib...)
	out.StepInputExpression = r.StepInputExpression || child.StepInputExpression
	out.Scatter = r.Scatter || child.Scatter
	out.Subworkflow = r.Subworkflow || child.Subworkflow
	out.MultipleInput = r.MultipleInput || child.MultipleInput
	out.ShellCommand = r.ShellCommand || child.ShellCommand
	out.EnvVars = append(append([]EnvDef{}, r.EnvVars...), child.EnvVars...)
	if child.Resource != nil {
		out.Resource = child.Resource
	}
	if child.Docker != nil {
		out.Docker = child.Docker
	}
	if child.WorkDir != nil {
		out.WorkDir = child.WorkDir
	}
	if child.TimeLimitSec != 0 {
		out.TimeLimitSec = child.TimeLimitSec
	}
	out.Unknown = append(append([]string{}, r.Unknown...), child.Unknown...)
	return out
}

func parseRequirements(v any) (Requirements, error) {
	var r Requirements
	if v == nil {
		return r, nil
	}
	// Requirements may be a list of {class: ...} maps or a map keyed by class.
	var entries []*yamlx.Map
	switch x := v.(type) {
	case []any:
		for _, e := range x {
			m, ok := e.(*yamlx.Map)
			if !ok {
				return r, fmt.Errorf("requirement entry is not a mapping")
			}
			entries = append(entries, m)
		}
	case *yamlx.Map:
		for _, cls := range x.Keys() {
			body, _ := x.Value(cls).(*yamlx.Map)
			if body == nil {
				body = yamlx.NewMap()
			}
			m := body.Clone()
			m.Set("class", cls)
			entries = append(entries, m)
		}
	default:
		return r, fmt.Errorf("requirements must be a list or mapping")
	}
	for _, m := range entries {
		cls := m.GetString("class")
		switch cls {
		case "InlineJavascriptRequirement":
			r.InlineJavascript = true
			for _, lib := range m.GetSlice("expressionLib") {
				if s, ok := lib.(string); ok {
					r.JSExpressionLib = append(r.JSExpressionLib, s)
				}
			}
		case "InlinePythonRequirement":
			r.InlinePython = true
			for _, lib := range m.GetSlice("expressionLib") {
				if s, ok := lib.(string); ok {
					r.PyExpressionLib = append(r.PyExpressionLib, s)
				}
			}
		case "StepInputExpressionRequirement":
			r.StepInputExpression = true
		case "ScatterFeatureRequirement":
			r.Scatter = true
		case "SubworkflowFeatureRequirement":
			r.Subworkflow = true
		case "MultipleInputFeatureRequirement":
			r.MultipleInput = true
		case "ShellCommandRequirement":
			r.ShellCommand = true
		case "EnvVarRequirement":
			switch def := m.Value("envDef").(type) {
			case *yamlx.Map:
				for _, name := range def.Keys() {
					r.EnvVars = append(r.EnvVars, EnvDef{Name: name, Value: stringify(def.Value(name))})
				}
			case []any:
				for _, e := range def {
					em, ok := e.(*yamlx.Map)
					if !ok {
						return r, fmt.Errorf("envDef entry is not a mapping")
					}
					r.EnvVars = append(r.EnvVars, EnvDef{
						Name:  em.GetString("envName"),
						Value: stringify(em.Value("envValue")),
					})
				}
			}
		case "ResourceRequirement":
			r.Resource = &ResourceReq{
				CoresMin: m.Value("coresMin"),
				CoresMax: m.Value("coresMax"),
				RAMMin:   m.Value("ramMin"),
				RAMMax:   m.Value("ramMax"),
			}
		case "DockerRequirement":
			r.Docker = &DockerReq{
				Pull: m.GetString("dockerPull"),
				Load: m.GetString("dockerLoad"),
			}
		case "ToolTimeLimit":
			switch t := m.Value("timelimit").(type) {
			case int64:
				r.TimeLimitSec = t
			case int:
				r.TimeLimitSec = int64(t)
			case float64:
				r.TimeLimitSec = int64(t)
			default:
				return r, fmt.Errorf("ToolTimeLimit timelimit must be a number of seconds, got %T", t)
			}
		case "InitialWorkDirRequirement":
			wd := &InitialWorkDir{}
			for _, e := range m.GetSlice("listing") {
				switch ent := e.(type) {
				case string:
					wd.Listing = append(wd.Listing, Dirent{Entry: ent})
				case *yamlx.Map:
					wd.Listing = append(wd.Listing, Dirent{
						EntryName: stringify(ent.Value("entryname")),
						Entry:     stringify(ent.Value("entry")),
						Writable:  ent.GetBool("writable", false),
					})
				}
			}
			r.WorkDir = wd
		case "":
			return r, fmt.Errorf("requirement entry missing 'class'")
		default:
			r.Unknown = append(r.Unknown, cls)
		}
	}
	return r, nil
}

// parseInputs handles both the map form (id → spec) and list form
// ([{id: ..., ...}]) of inputs.
func parseInputs(v any, forTool bool) ([]*InputParam, error) {
	var out []*InputParam
	addFromMap := func(id string, spec any) error {
		p := &InputParam{ID: id}
		switch sv := spec.(type) {
		case string, []any:
			t, err := ParseType(sv)
			if err != nil {
				return fmt.Errorf("input %q: %w", id, err)
			}
			p.Type = t
		case *yamlx.Map:
			t, err := ParseType(sv.Value("type"))
			if err != nil {
				return fmt.Errorf("input %q: %w", id, err)
			}
			p.Type = t
			p.Label = sv.GetString("label")
			p.Doc = docString(sv.Value("doc"))
			if d, ok := sv.Get("default"); ok {
				p.Default = d
				p.HasDef = true
			}
			if b := sv.GetMap("inputBinding"); b != nil {
				pb, err := parseBinding(b)
				if err != nil {
					return fmt.Errorf("input %q: %w", id, err)
				}
				p.Binding = pb
			}
			p.Validate = stringify(sv.Value("validate"))
			p.Streamable = sv.GetBool("streamable", false)
			p.Format = sv.GetString("format")
		default:
			return fmt.Errorf("input %q: unsupported specification %T", id, spec)
		}
		out = append(out, p)
		return nil
	}
	switch x := v.(type) {
	case nil:
		return nil, nil
	case *yamlx.Map:
		for _, id := range x.Keys() {
			if err := addFromMap(id, x.Value(id)); err != nil {
				return nil, err
			}
		}
	case []any:
		for _, e := range x {
			m, ok := e.(*yamlx.Map)
			if !ok {
				return nil, fmt.Errorf("input list entry is not a mapping")
			}
			id := m.GetString("id")
			if id == "" {
				return nil, fmt.Errorf("input list entry missing 'id'")
			}
			spec := m.Clone()
			spec.Delete("id")
			if err := addFromMap(strings.TrimPrefix(id, "#"), spec); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("inputs must be a mapping or list")
	}
	return out, nil
}

func docString(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case []any:
		parts := make([]string, 0, len(x))
		for _, e := range x {
			parts = append(parts, stringify(e))
		}
		return strings.Join(parts, "\n")
	}
	return ""
}
