package cwl

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/yamlx"
)

// LoadFile reads and parses a CWL document from disk, resolving relative
// "run:" references in workflows.
func LoadFile(path string) (Document, error) {
	return loadFileRec(path, map[string]bool{})
}

func loadFileRec(path string, inFlight map[string]bool) (Document, error) {
	abs, err := filepath.Abs(path)
	if err != nil {
		return nil, err
	}
	if inFlight[abs] {
		return nil, fmt.Errorf("cwl: circular reference through %s", path)
	}
	inFlight[abs] = true
	defer delete(inFlight, abs)

	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cwl: %w", err)
	}
	doc, err := ParseBytes(data, filepath.Dir(abs), inFlight)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	setPath(doc, abs)
	return doc, nil
}

func setPath(doc Document, path string) {
	switch d := doc.(type) {
	case *CommandLineTool:
		d.Path = path
	case *Workflow:
		d.Path = path
	case *ExpressionTool:
		d.Path = path
	}
}

// ParseBytes parses CWL YAML. baseDir resolves relative run references;
// pass "" to forbid file references. Packed documents ($graph) are
// supported: the main process is selected and #id references are inlined.
func ParseBytes(data []byte, baseDir string, inFlight map[string]bool) (Document, error) {
	v, err := yamlx.Decode(data)
	if err != nil {
		return nil, err
	}
	m, ok := v.(*yamlx.Map)
	if !ok {
		return nil, fmt.Errorf("cwl: document is not a mapping")
	}
	if m.Has("$graph") {
		main, err := resolveGraph(m)
		if err != nil {
			return nil, err
		}
		m = main
	}
	return ParseValue(m, baseDir, inFlight)
}

// resolveGraph handles packed documents: it picks the main process (id
// "main", else the first Workflow, else the first entry) and recursively
// inlines "#id" run references from the graph.
func resolveGraph(doc *yamlx.Map) (*yamlx.Map, error) {
	entries, ok := doc.Value("$graph").([]any)
	if !ok || len(entries) == 0 {
		return nil, fmt.Errorf("cwl: $graph must be a non-empty list")
	}
	byID := map[string]*yamlx.Map{}
	var main, firstWF, first *yamlx.Map
	for i, e := range entries {
		em, ok := e.(*yamlx.Map)
		if !ok {
			return nil, fmt.Errorf("cwl: $graph[%d] is not a mapping", i)
		}
		// Propagate the top-level cwlVersion into each process.
		if !em.Has("cwlVersion") && doc.Has("cwlVersion") {
			em = em.Clone()
			em.Set("cwlVersion", doc.Value("cwlVersion"))
		}
		id := strings.TrimPrefix(em.GetString("id"), "#")
		if id != "" {
			byID[id] = em
		}
		if first == nil {
			first = em
		}
		if id == "main" {
			main = em
		}
		if firstWF == nil && em.GetString("class") == "Workflow" {
			firstWF = em
		}
	}
	if main == nil {
		main = firstWF
	}
	if main == nil {
		main = first
	}
	inlined, err := inlineGraphRefs(main, byID, map[string]bool{})
	if err != nil {
		return nil, err
	}
	return inlined, nil
}

// inlineGraphRefs deep-copies a process map, replacing step run "#id"
// strings with the referenced graph entries.
func inlineGraphRefs(m *yamlx.Map, byID map[string]*yamlx.Map, inFlight map[string]bool) (*yamlx.Map, error) {
	out := yamlx.NewMap()
	var walk func(v any) (any, error)
	walk = func(v any) (any, error) {
		switch x := v.(type) {
		case *yamlx.Map:
			c := yamlx.NewMap()
			for _, k := range x.Keys() {
				vv := x.Value(k)
				if k == "run" {
					if ref, ok := vv.(string); ok && strings.HasPrefix(ref, "#") {
						id := strings.TrimPrefix(ref, "#")
						target, found := byID[id]
						if !found {
							return nil, fmt.Errorf("cwl: $graph reference %q not found", ref)
						}
						if inFlight[id] {
							return nil, fmt.Errorf("cwl: circular $graph reference through %q", ref)
						}
						inFlight[id] = true
						inlinedTarget, err := inlineGraphRefs(target, byID, inFlight)
						delete(inFlight, id)
						if err != nil {
							return nil, err
						}
						c.Set(k, inlinedTarget)
						continue
					}
				}
				w, err := walk(vv)
				if err != nil {
					return nil, err
				}
				c.Set(k, w)
			}
			return c, nil
		case []any:
			outList := make([]any, len(x))
			for i, e := range x {
				w, err := walk(e)
				if err != nil {
					return nil, err
				}
				outList[i] = w
			}
			return outList, nil
		default:
			return v, nil
		}
	}
	w, err := walk(m)
	if err != nil {
		return nil, err
	}
	out = w.(*yamlx.Map)
	return out, nil
}

// ParseValue parses an already-decoded CWL document body.
func ParseValue(m *yamlx.Map, baseDir string, inFlight map[string]bool) (Document, error) {
	if inFlight == nil {
		inFlight = map[string]bool{}
	}
	switch cls := m.GetString("class"); cls {
	case "CommandLineTool":
		return parseCommandLineTool(m)
	case "Workflow":
		return parseWorkflow(m, baseDir, inFlight)
	case "ExpressionTool":
		return parseExpressionTool(m)
	case "":
		return nil, fmt.Errorf("cwl: document missing 'class'")
	default:
		return nil, fmt.Errorf("cwl: unsupported document class %q", cls)
	}
}

func parseCommandLineTool(m *yamlx.Map) (*CommandLineTool, error) {
	t := &CommandLineTool{
		CWLVersion: m.GetString("cwlVersion"),
		ID:         strings.TrimPrefix(m.GetString("id"), "#"),
		Label:      m.GetString("label"),
		Doc:        docString(m.Value("doc")),
		Stdin:      m.GetString("stdin"),
		Stdout:     m.GetString("stdout"),
		Stderr:     m.GetString("stderr"),
		Raw:        m,
	}
	switch bc := m.Value("baseCommand").(type) {
	case string:
		t.BaseCommand = []string{bc}
	case []any:
		for _, e := range bc {
			switch s := e.(type) {
			case string:
				t.BaseCommand = append(t.BaseCommand, s)
			case bool, int64, float64:
				// YAML types bare words like "true"; commands are strings.
				t.BaseCommand = append(t.BaseCommand, stringify(s))
			default:
				return nil, fmt.Errorf("baseCommand entries must be strings")
			}
		}
	case nil:
	default:
		return nil, fmt.Errorf("baseCommand must be a string or list")
	}
	for i, a := range m.GetSlice("arguments") {
		switch arg := a.(type) {
		case string:
			t.Arguments = append(t.Arguments, ArgEntry{ValueFrom: arg})
		case int64, float64, bool:
			t.Arguments = append(t.Arguments, ArgEntry{ValueFrom: stringify(arg)})
		case *yamlx.Map:
			b, err := parseBinding(arg)
			if err != nil {
				return nil, fmt.Errorf("arguments[%d]: %w", i, err)
			}
			t.Arguments = append(t.Arguments, ArgEntry{ValueFrom: b.ValueFrom, Binding: b})
		default:
			return nil, fmt.Errorf("arguments[%d]: unsupported entry %T", i, a)
		}
	}
	ins, err := parseInputs(m.Value("inputs"), true)
	if err != nil {
		return nil, err
	}
	t.Inputs = ins
	outs, err := parseToolOutputs(m.Value("outputs"))
	if err != nil {
		return nil, err
	}
	t.Outputs = outs
	reqs, err := parseRequirements(m.Value("requirements"))
	if err != nil {
		return nil, err
	}
	t.Requirements = reqs
	hints, err := parseRequirements(m.Value("hints"))
	if err != nil {
		return nil, err
	}
	t.Hints = hints
	for _, c := range m.GetSlice("successCodes") {
		if n, ok := c.(int64); ok {
			t.SuccessCodes = append(t.SuccessCodes, int(n))
		}
	}
	return t, nil
}

func parseToolOutputs(v any) ([]*OutputParam, error) {
	var out []*OutputParam
	add := func(id string, spec any) error {
		p := &OutputParam{ID: id}
		switch sv := spec.(type) {
		case string, []any:
			t, err := ParseType(sv)
			if err != nil {
				return fmt.Errorf("output %q: %w", id, err)
			}
			p.Type = t
		case *yamlx.Map:
			t, err := ParseType(sv.Value("type"))
			if err != nil {
				return fmt.Errorf("output %q: %w", id, err)
			}
			p.Type = t
			p.Label = sv.GetString("label")
			p.Doc = docString(sv.Value("doc"))
			p.Format = sv.GetString("format")
			if b := sv.GetMap("outputBinding"); b != nil {
				ob, err := parseOutputBinding(b)
				if err != nil {
					return fmt.Errorf("output %q: %w", id, err)
				}
				p.Binding = ob
			}
		default:
			return fmt.Errorf("output %q: unsupported specification %T", id, spec)
		}
		out = append(out, p)
		return nil
	}
	switch x := v.(type) {
	case nil:
		return nil, nil
	case *yamlx.Map:
		for _, id := range x.Keys() {
			if err := add(id, x.Value(id)); err != nil {
				return nil, err
			}
		}
	case []any:
		for _, e := range x {
			m, ok := e.(*yamlx.Map)
			if !ok {
				return nil, fmt.Errorf("output list entry is not a mapping")
			}
			id := strings.TrimPrefix(m.GetString("id"), "#")
			if id == "" {
				return nil, fmt.Errorf("output list entry missing 'id'")
			}
			spec := m.Clone()
			spec.Delete("id")
			if err := add(id, spec); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("outputs must be a mapping or list")
	}
	return out, nil
}

func parseExpressionTool(m *yamlx.Map) (*ExpressionTool, error) {
	e := &ExpressionTool{
		CWLVersion: m.GetString("cwlVersion"),
		ID:         strings.TrimPrefix(m.GetString("id"), "#"),
		Doc:        docString(m.Value("doc")),
		Expression: stringify(m.Value("expression")),
	}
	ins, err := parseInputs(m.Value("inputs"), false)
	if err != nil {
		return nil, err
	}
	e.Inputs = ins
	outs, err := parseToolOutputs(m.Value("outputs"))
	if err != nil {
		return nil, err
	}
	e.Outputs = outs
	reqs, err := parseRequirements(m.Value("requirements"))
	if err != nil {
		return nil, err
	}
	e.Requirements = reqs
	if e.Expression == "" {
		return nil, fmt.Errorf("ExpressionTool missing 'expression'")
	}
	return e, nil
}

func parseWorkflow(m *yamlx.Map, baseDir string, inFlight map[string]bool) (*Workflow, error) {
	w := &Workflow{
		CWLVersion: m.GetString("cwlVersion"),
		ID:         strings.TrimPrefix(m.GetString("id"), "#"),
		Label:      m.GetString("label"),
		Doc:        docString(m.Value("doc")),
	}
	ins, err := parseInputs(m.Value("inputs"), false)
	if err != nil {
		return nil, err
	}
	w.Inputs = ins
	outs, err := parseWorkflowOutputs(m.Value("outputs"))
	if err != nil {
		return nil, err
	}
	w.Outputs = outs
	reqs, err := parseRequirements(m.Value("requirements"))
	if err != nil {
		return nil, err
	}
	w.Requirements = reqs
	hints, err := parseRequirements(m.Value("hints"))
	if err != nil {
		return nil, err
	}
	w.Hints = hints

	steps, err := parseSteps(m.Value("steps"), baseDir, inFlight)
	if err != nil {
		return nil, err
	}
	w.Steps = steps
	return w, nil
}

func parseWorkflowOutputs(v any) ([]*WorkflowOutput, error) {
	var out []*WorkflowOutput
	add := func(id string, spec any) error {
		p := &WorkflowOutput{ID: id}
		switch sv := spec.(type) {
		case string, []any:
			t, err := ParseType(sv)
			if err != nil {
				return fmt.Errorf("workflow output %q: %w", id, err)
			}
			p.Type = t
		case *yamlx.Map:
			t, err := ParseType(sv.Value("type"))
			if err != nil {
				return fmt.Errorf("workflow output %q: %w", id, err)
			}
			p.Type = t
			p.Doc = docString(sv.Value("doc"))
			p.LinkMerge = sv.GetString("linkMerge")
			p.PickValue = sv.GetString("pickValue")
			switch src := sv.Value("outputSource").(type) {
			case string:
				p.OutputSource = []string{src}
			case []any:
				for _, s := range src {
					if ss, ok := s.(string); ok {
						p.OutputSource = append(p.OutputSource, ss)
					}
				}
			}
		default:
			return fmt.Errorf("workflow output %q: unsupported specification %T", id, spec)
		}
		out = append(out, p)
		return nil
	}
	switch x := v.(type) {
	case nil:
		return nil, nil
	case *yamlx.Map:
		for _, id := range x.Keys() {
			if err := add(id, x.Value(id)); err != nil {
				return nil, err
			}
		}
	case []any:
		for _, e := range x {
			m, ok := e.(*yamlx.Map)
			if !ok {
				return nil, fmt.Errorf("workflow output list entry is not a mapping")
			}
			id := strings.TrimPrefix(m.GetString("id"), "#")
			spec := m.Clone()
			spec.Delete("id")
			if err := add(id, spec); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("workflow outputs must be a mapping or list")
	}
	return out, nil
}

func parseSteps(v any, baseDir string, inFlight map[string]bool) ([]*WorkflowStep, error) {
	var steps []*WorkflowStep
	add := func(id string, spec *yamlx.Map) error {
		s := &WorkflowStep{
			ID:    id,
			Label: spec.GetString("label"),
			Doc:   docString(spec.Value("doc")),
			When:  stringify(spec.Value("when")),
		}
		switch run := spec.Value("run").(type) {
		case string:
			s.RunRef = run
			if baseDir == "" {
				return fmt.Errorf("step %q: file reference %q not allowed for in-memory documents", id, run)
			}
			doc, err := loadFileRec(filepath.Join(baseDir, run), inFlight)
			if err != nil {
				return fmt.Errorf("step %q: %w", id, err)
			}
			s.Run = doc
		case *yamlx.Map:
			doc, err := ParseValue(run, baseDir, inFlight)
			if err != nil {
				return fmt.Errorf("step %q: %w", id, err)
			}
			s.Run = doc
		case nil:
			return fmt.Errorf("step %q: missing 'run'", id)
		default:
			return fmt.Errorf("step %q: unsupported 'run' %T", id, run)
		}
		ins, err := parseStepInputs(spec.Value("in"))
		if err != nil {
			return fmt.Errorf("step %q: %w", id, err)
		}
		s.In = ins
		switch outs := spec.Value("out").(type) {
		case []any:
			for _, o := range outs {
				switch ov := o.(type) {
				case string:
					s.Out = append(s.Out, ov)
				case *yamlx.Map:
					s.Out = append(s.Out, ov.GetString("id"))
				}
			}
		case nil:
		default:
			return fmt.Errorf("step %q: 'out' must be a list", id)
		}
		switch sc := spec.Value("scatter").(type) {
		case string:
			s.Scatter = []string{sc}
		case []any:
			for _, e := range sc {
				if ss, ok := e.(string); ok {
					s.Scatter = append(s.Scatter, ss)
				}
			}
		}
		s.ScatterMethod = spec.GetString("scatterMethod")
		reqs, err := parseRequirements(spec.Value("requirements"))
		if err != nil {
			return fmt.Errorf("step %q: %w", id, err)
		}
		s.Requirements = reqs
		steps = append(steps, s)
		return nil
	}
	switch x := v.(type) {
	case nil:
		return nil, nil
	case *yamlx.Map:
		for _, id := range x.Keys() {
			spec, ok := x.Value(id).(*yamlx.Map)
			if !ok {
				return nil, fmt.Errorf("step %q is not a mapping", id)
			}
			if err := add(id, spec); err != nil {
				return nil, err
			}
		}
	case []any:
		for _, e := range x {
			m, ok := e.(*yamlx.Map)
			if !ok {
				return nil, fmt.Errorf("step list entry is not a mapping")
			}
			id := strings.TrimPrefix(m.GetString("id"), "#")
			if id == "" {
				return nil, fmt.Errorf("step list entry missing 'id'")
			}
			if err := add(id, m); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("steps must be a mapping or list")
	}
	return steps, nil
}

func parseStepInputs(v any) ([]*StepInput, error) {
	var out []*StepInput
	add := func(id string, spec any) error {
		si := &StepInput{ID: id}
		switch sv := spec.(type) {
		case string:
			si.Source = []string{sv}
		case []any:
			for _, s := range sv {
				if ss, ok := s.(string); ok {
					si.Source = append(si.Source, ss)
				}
			}
		case *yamlx.Map:
			switch src := sv.Value("source").(type) {
			case string:
				si.Source = []string{src}
			case []any:
				for _, s := range src {
					if ss, ok := s.(string); ok {
						si.Source = append(si.Source, ss)
					}
				}
			}
			si.LinkMerge = sv.GetString("linkMerge")
			si.PickValue = sv.GetString("pickValue")
			if d, ok := sv.Get("default"); ok {
				si.Default = d
				si.HasDef = true
			}
			si.ValueFrom = stringify(sv.Value("valueFrom"))
		case nil:
			// "in: {x: }" — an unconnected input (filled by default/valueFrom).
		default:
			return fmt.Errorf("step input %q: unsupported specification %T", id, spec)
		}
		out = append(out, si)
		return nil
	}
	switch x := v.(type) {
	case nil:
		return nil, nil
	case *yamlx.Map:
		for _, id := range x.Keys() {
			if err := add(id, x.Value(id)); err != nil {
				return nil, err
			}
		}
	case []any:
		for _, e := range x {
			m, ok := e.(*yamlx.Map)
			if !ok {
				return nil, fmt.Errorf("step input list entry is not a mapping")
			}
			id := strings.TrimPrefix(m.GetString("id"), "#")
			spec := m.Clone()
			spec.Delete("id")
			if err := add(id, spec); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("step inputs must be a mapping or list")
	}
	return out, nil
}
