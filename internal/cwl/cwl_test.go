package cwl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/yamlx"
)

// Paper Listing 1: the echo CommandLineTool.
const echoCWL = `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
inputs:
  message:
    type: string
    default: "Hello World"
    inputBinding:
      position: 1
outputs:
  output:
    type: stdout
stdout: hello.txt
`

func parseTool(t *testing.T, src string) *CommandLineTool {
	t.Helper()
	doc, err := ParseBytes([]byte(src), "", nil)
	if err != nil {
		t.Fatalf("ParseBytes: %v", err)
	}
	tool, ok := doc.(*CommandLineTool)
	if !ok {
		t.Fatalf("got %T, want *CommandLineTool", doc)
	}
	return tool
}

func TestParseEchoTool(t *testing.T) {
	tool := parseTool(t, echoCWL)
	if tool.CWLVersion != "v1.2" {
		t.Errorf("version = %q", tool.CWLVersion)
	}
	if len(tool.BaseCommand) != 1 || tool.BaseCommand[0] != "echo" {
		t.Errorf("baseCommand = %v", tool.BaseCommand)
	}
	msg := tool.Input("message")
	if msg == nil {
		t.Fatal("no message input")
	}
	if msg.Type.Name != "string" {
		t.Errorf("type = %v", msg.Type)
	}
	if msg.Default != "Hello World" || !msg.HasDef {
		t.Errorf("default = %v", msg.Default)
	}
	if msg.Binding == nil || msg.Binding.Position != 1 || !msg.Binding.HasPosition {
		t.Errorf("binding = %+v", msg.Binding)
	}
	out := tool.Output("output")
	if out == nil || out.Type.Name != "stdout" {
		t.Fatalf("output = %+v", out)
	}
	if tool.Stdout != "hello.txt" {
		t.Errorf("stdout = %q", tool.Stdout)
	}
	if issues, err := Validate(tool); err != nil {
		t.Errorf("validate: %v (%v)", err, issues)
	}
}

func TestParseTypeForms(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{"string", "string"},
		{"int?", "int?"},
		{"File[]", "File[]"},
		{"string[]?", "string[]?"},
		{[]any{"null", "int"}, "int?"},
		{[]any{"null", "File[]"}, "File[]?"},
		{yamlx.MapOf("type", "array", "items", "string"), "string[]"},
		{yamlx.MapOf("type", "enum", "symbols", []any{"a", "b"}), "enum(a|b)"},
	}
	for _, c := range cases {
		tp, err := ParseType(c.in)
		if err != nil {
			t.Fatalf("ParseType(%v): %v", c.in, err)
		}
		if tp.String() != c.want {
			t.Errorf("ParseType(%v) = %s, want %s", c.in, tp, c.want)
		}
	}
}

func TestParseTypeErrors(t *testing.T) {
	for _, in := range []any{"bogus", nil, yamlx.MapOf("type", "array"), yamlx.MapOf("type", "enum"), 42} {
		if _, err := ParseType(in); err == nil {
			t.Errorf("ParseType(%v) succeeded, want error", in)
		}
	}
}

func TestTypeAccepts(t *testing.T) {
	str, _ := ParseType("string")
	if _, err := str.Accepts("x"); err != nil {
		t.Error(err)
	}
	if _, err := str.Accepts(int64(1)); err == nil {
		t.Error("string accepted int")
	}
	intT, _ := ParseType("int")
	if v, err := intT.Accepts(int64(5)); err != nil || v != int64(5) {
		t.Errorf("int: %v %v", v, err)
	}
	if v, err := intT.Accepts(5.0); err != nil || v != int64(5) {
		t.Errorf("int from float: %v %v", v, err)
	}
	if _, err := intT.Accepts(5.5); err == nil {
		t.Error("int accepted 5.5")
	}
	dbl, _ := ParseType("double")
	if v, err := dbl.Accepts(int64(2)); err != nil || v != 2.0 {
		t.Errorf("double from int: %v %v", v, err)
	}
	opt, _ := ParseType("string?")
	if v, err := opt.Accepts(nil); err != nil || v != nil {
		t.Errorf("optional nil: %v %v", v, err)
	}
	if _, err := str.Accepts(nil); err == nil {
		t.Error("non-optional accepted nil")
	}
	arr, _ := ParseType("int[]")
	if v, err := arr.Accepts([]any{int64(1), 2.0}); err != nil {
		t.Errorf("array: %v", err)
	} else if vs := v.([]any); vs[1] != int64(2) {
		t.Errorf("array coercion: %v", vs)
	}
	enum, _ := ParseType(yamlx.MapOf("type", "enum", "symbols", []any{"fast", "slow"}))
	if _, err := enum.Accepts("fast"); err != nil {
		t.Error(err)
	}
	if _, err := enum.Accepts("medium"); err == nil {
		t.Error("enum accepted bad symbol")
	}
	file, _ := ParseType("File")
	v, err := file.Accepts("data.txt")
	if err != nil {
		t.Fatal(err)
	}
	fm := v.(*yamlx.Map)
	if fm.GetString("class") != "File" || fm.GetString("path") != "data.txt" {
		t.Errorf("file promotion = %v", fm)
	}
}

// Property: every parseable type string round-trips through String→ParseType.
func TestTypeStringRoundTripProperty(t *testing.T) {
	bases := []string{"boolean", "int", "long", "float", "double", "string", "File", "Directory"}
	f := func(baseIdx uint8, arr, opt bool) bool {
		s := bases[int(baseIdx)%len(bases)]
		if arr {
			s += "[]"
		}
		if opt {
			s += "?"
		}
		tp, err := ParseType(s)
		if err != nil {
			return false
		}
		tp2, err := ParseType(tp.String())
		if err != nil {
			return false
		}
		return tp.String() == tp2.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseRequirements(t *testing.T) {
	tool := parseTool(t, `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: cat
requirements:
  - class: InlineJavascriptRequirement
    expressionLib:
      - "function f(x) { return x; }"
  - class: EnvVarRequirement
    envDef:
      MODE: fast
  - class: ResourceRequirement
    coresMin: 2
  - class: ShellCommandRequirement
hints:
  - class: DockerRequirement
    dockerPull: ubuntu:22.04
inputs: {}
outputs: {}
`)
	r := tool.Requirements
	if !r.InlineJavascript || len(r.JSExpressionLib) != 1 {
		t.Errorf("js req = %+v", r)
	}
	if len(r.EnvVars) != 1 || r.EnvVars[0].Name != "MODE" || r.EnvVars[0].Value != "fast" {
		t.Errorf("env = %+v", r.EnvVars)
	}
	if r.Resource == nil || r.Resource.CoresMin != int64(2) {
		t.Errorf("resource = %+v", r.Resource)
	}
	if !r.ShellCommand {
		t.Error("shell requirement missing")
	}
	if tool.Hints.Docker == nil || tool.Hints.Docker.Pull != "ubuntu:22.04" {
		t.Errorf("docker hint = %+v", tool.Hints.Docker)
	}
}

func TestParseInlinePythonRequirement(t *testing.T) {
	// Paper Listing 5.
	tool := parseTool(t, `
cwlVersion: v1.2
class: CommandLineTool
requirements:
  - class: InlinePythonRequirement
    expressionLib:
      - |
        def capitalize_words(message):
            return message.title()
baseCommand: echo
inputs:
  message:
    type: string
arguments:
  - f"{capitalize_words($(inputs.message))}"
outputs: {}
`)
	if !tool.Requirements.InlinePython {
		t.Fatal("InlinePythonRequirement not recognized")
	}
	if len(tool.Requirements.PyExpressionLib) != 1 {
		t.Fatalf("lib = %v", tool.Requirements.PyExpressionLib)
	}
	if !strings.Contains(tool.Requirements.PyExpressionLib[0], "def capitalize_words") {
		t.Errorf("lib content = %q", tool.Requirements.PyExpressionLib[0])
	}
	if len(tool.Arguments) != 1 || !strings.Contains(tool.Arguments[0].ValueFrom, "capitalize_words") {
		t.Errorf("arguments = %+v", tool.Arguments)
	}
}

func TestParseValidateExtension(t *testing.T) {
	// Paper Listing 6.
	tool := parseTool(t, `
cwlVersion: v1.2
class: CommandLineTool
requirements:
  - class: InlinePythonRequirement
    expressionLib:
      - |
        def valid_file(file, ext):
            if not file.lower().endswith(ext):
                raise Exception(f"Invalid file. Expected '{ext}'")
baseCommand: cat
inputs:
  data_file:
    type: File
    validate: |
      f"{valid_file($(inputs.data_file), '.csv')}"
    inputBinding:
      position: 1
outputs:
  validated_output:
    type: stdout
`)
	in := tool.Input("data_file")
	if in == nil || in.Validate == "" {
		t.Fatalf("validate missing: %+v", in)
	}
	if _, err := Validate(tool); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestValidateRejectsValidateWithoutPython(t *testing.T) {
	tool := parseTool(t, `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: cat
inputs:
  f:
    type: File
    validate: f"{check($(inputs.f))}"
outputs: {}
`)
	_, err := Validate(tool)
	if err == nil || !strings.Contains(err.Error(), "InlinePythonRequirement") {
		t.Fatalf("err = %v", err)
	}
}

func TestListFormInputs(t *testing.T) {
	tool := parseTool(t, `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: sort
inputs:
  - id: input_file
    type: File
    inputBinding: {position: 1}
  - id: numeric
    type: boolean?
    inputBinding: {prefix: -n}
outputs:
  - id: sorted_out
    type: stdout
`)
	if len(tool.Inputs) != 2 {
		t.Fatalf("inputs = %d", len(tool.Inputs))
	}
	if tool.Inputs[0].ID != "input_file" || tool.Inputs[1].Type.String() != "boolean?" {
		t.Errorf("inputs = %+v %+v", tool.Inputs[0], tool.Inputs[1])
	}
	if tool.Inputs[1].Binding.Prefix != "-n" {
		t.Errorf("prefix = %q", tool.Inputs[1].Binding.Prefix)
	}
}

// imageWorkflowCWL is the paper's Listing 3 workflow (trimmed doc strings).
const imageWorkflowCWL = `
cwlVersion: v1.2
class: Workflow
requirements:
  - class: StepInputExpressionRequirement
inputs:
  input_image:
    type: File
  size:
    type: int
  sepia:
    type: boolean
  radius:
    type: int
outputs:
  final_output:
    type: File
    outputSource: blur_image/output_image
steps:
  resize_image:
    run: resize_image.cwl
    in:
      input_image: input_image
      size: size
      output_image:
        valueFrom: "resized.png"
    out: [output_image]
  filter_image:
    run: filter_image.cwl
    in:
      input_image: resize_image/output_image
      sepia: sepia
      output_image:
        valueFrom: "filtered.png"
    out: [output_image]
  blur_image:
    run: blur_image.cwl
    in:
      input_image: filter_image/output_image
      radius: radius
      output_image:
        valueFrom: "blurred.png"
    out: [output_image]
`

func imgToolCWL(extra string) string {
	return `cwlVersion: v1.2
class: CommandLineTool
baseCommand: [imgtool, op]
inputs:
  input_image:
    type: File
    inputBinding: {position: 1}
` + extra + `
  output_image:
    type: string
    inputBinding: {position: 2}
outputs:
  output_image:
    type: File
    outputBinding:
      glob: $(inputs.output_image)
`
}

func writeImageWorkflow(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"workflow.cwl":     imageWorkflowCWL,
		"resize_image.cwl": imgToolCWL("  size:\n    type: int\n    inputBinding: {prefix: --size}"),
		"filter_image.cwl": imgToolCWL("  sepia:\n    type: boolean\n    inputBinding: {prefix: --sepia}"),
		"blur_image.cwl":   imgToolCWL("  radius:\n    type: int\n    inputBinding: {prefix: --radius}"),
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return filepath.Join(dir, "workflow.cwl")
}

func TestLoadImageWorkflow(t *testing.T) {
	doc, err := LoadFile(writeImageWorkflow(t))
	if err != nil {
		t.Fatal(err)
	}
	wf, ok := doc.(*Workflow)
	if !ok {
		t.Fatalf("got %T", doc)
	}
	if len(wf.Steps) != 3 {
		t.Fatalf("steps = %d", len(wf.Steps))
	}
	if !wf.Requirements.StepInputExpression {
		t.Error("StepInputExpressionRequirement missing")
	}
	resize := wf.Step("resize_image")
	if resize == nil {
		t.Fatal("no resize step")
	}
	tool, ok := resize.Run.(*CommandLineTool)
	if !ok {
		t.Fatalf("run = %T", resize.Run)
	}
	if tool.Input("size") == nil {
		t.Error("resize tool missing size input")
	}
	vf := resize.Input("output_image")
	if vf == nil || vf.ValueFrom != "resized.png" {
		t.Errorf("valueFrom = %+v", vf)
	}
	filter := wf.Step("filter_image")
	src := filter.Input("input_image")
	if len(src.Source) != 1 || src.Source[0] != "resize_image/output_image" {
		t.Errorf("source = %v", src.Source)
	}
	if issues, err := Validate(wf); err != nil {
		t.Errorf("validate: %v\n%v", err, issues)
	}
}

func TestValidateCatchesBadSource(t *testing.T) {
	doc, err := ParseBytes([]byte(`
cwlVersion: v1.2
class: Workflow
inputs:
  x: int
outputs:
  out:
    type: int
    outputSource: nosuchstep/y
steps:
  s1:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        v:
          type: int
          inputBinding: {position: 1}
      outputs:
        o: stdout
    in:
      v: missing_input
    out: [o]
`), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Validate(doc)
	if err == nil {
		t.Fatal("expected validation errors")
	}
	msg := err.Error()
	for _, want := range []string{"unknown source", "unknown outputSource"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error missing %q:\n%s", want, msg)
		}
	}
}

func TestValidateScatterRequiresFeature(t *testing.T) {
	doc, err := ParseBytes([]byte(`
cwlVersion: v1.2
class: Workflow
inputs:
  xs: int[]
outputs: {}
steps:
  s1:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        v:
          type: int
          inputBinding: {position: 1}
      outputs: {}
    in:
      v: xs
    scatter: v
    out: []
`), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Validate(doc)
	if err == nil || !strings.Contains(err.Error(), "ScatterFeatureRequirement") {
		t.Fatalf("err = %v", err)
	}
}

func TestEmbeddedToolInWorkflow(t *testing.T) {
	doc, err := ParseBytes([]byte(`
cwlVersion: v1.2
class: Workflow
inputs:
  msg: string
outputs:
  out:
    type: File
    outputSource: say/output
steps:
  say:
    run:
      class: CommandLineTool
      baseCommand: echo
      stdout: out.txt
      inputs:
        message:
          type: string
          inputBinding: {position: 1}
      outputs:
        output: stdout
    in:
      message: msg
    out: [output]
`), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	wf := doc.(*Workflow)
	if _, ok := wf.Steps[0].Run.(*CommandLineTool); !ok {
		t.Fatalf("embedded run = %T", wf.Steps[0].Run)
	}
	if _, err := Validate(wf); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestCircularReferenceDetected(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.cwl")
	b := filepath.Join(dir, "b.cwl")
	wf := func(run string) string {
		return `cwlVersion: v1.2
class: Workflow
requirements:
  - class: SubworkflowFeatureRequirement
inputs:
  x: int
outputs: {}
steps:
  s:
    run: ` + run + `
    in:
      x: x
    out: []
`
	}
	os.WriteFile(a, []byte(wf("b.cwl")), 0o644)
	os.WriteFile(b, []byte(wf("a.cwl")), 0o644)
	if _, err := LoadFile(a); err == nil || !strings.Contains(err.Error(), "circular") {
		t.Fatalf("err = %v", err)
	}
}

func TestMissingRunFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.cwl")
	os.WriteFile(path, []byte(`
cwlVersion: v1.2
class: Workflow
inputs: {}
outputs: {}
steps:
  s:
    run: does_not_exist.cwl
    in: {}
    out: []
`), 0o644)
	if _, err := LoadFile(path); err == nil {
		t.Fatal("expected error for missing run file")
	}
}

func TestExpressionTool(t *testing.T) {
	doc, err := ParseBytes([]byte(`
cwlVersion: v1.2
class: ExpressionTool
requirements:
  - class: InlineJavascriptRequirement
inputs:
  n: int
outputs:
  doubled: int
expression: "${ return {doubled: inputs.n * 2}; }"
`), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	et, ok := doc.(*ExpressionTool)
	if !ok {
		t.Fatalf("got %T", doc)
	}
	if et.Expression == "" || len(et.Inputs) != 1 || len(et.Outputs) != 1 {
		t.Errorf("et = %+v", et)
	}
	if _, err := Validate(et); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestUnknownRequirementIsError(t *testing.T) {
	tool := parseTool(t, `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
requirements:
  - class: SoftwareRequirement
inputs: {}
outputs: {}
`)
	if _, err := Validate(tool); err == nil {
		t.Fatal("unknown requirement should be a validation error")
	}
}

func TestUnknownHintIsWarning(t *testing.T) {
	tool := parseTool(t, `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
hints:
  - class: SoftwareRequirement
inputs: {}
outputs: {}
`)
	issues, err := Validate(tool)
	if err != nil {
		t.Fatalf("hints must not fail validation: %v", err)
	}
	found := false
	for _, i := range issues {
		if i.Severity == "warning" && strings.Contains(i.Msg, "SoftwareRequirement") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected warning, got %v", issues)
	}
}

func TestRequirementsMerge(t *testing.T) {
	parent := Requirements{InlineJavascript: true, JSExpressionLib: []string{"a"}}
	child := Requirements{JSExpressionLib: []string{"b"}, ShellCommand: true}
	merged := parent.Merge(child)
	if !merged.InlineJavascript || !merged.ShellCommand {
		t.Error("flags lost in merge")
	}
	if len(merged.JSExpressionLib) != 2 || merged.JSExpressionLib[0] != "a" {
		t.Errorf("lib = %v", merged.JSExpressionLib)
	}
}

func TestStepListForm(t *testing.T) {
	doc, err := ParseBytes([]byte(`
cwlVersion: v1.2
class: Workflow
inputs:
  msg: string
outputs: {}
steps:
  - id: one
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        message: {type: string, inputBinding: {position: 1}}
      outputs: {}
    in:
      - id: message
        source: msg
    out: []
`), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	wf := doc.(*Workflow)
	if len(wf.Steps) != 1 || wf.Steps[0].ID != "one" {
		t.Fatalf("steps = %+v", wf.Steps)
	}
	if wf.Steps[0].In[0].Source[0] != "msg" {
		t.Errorf("in = %+v", wf.Steps[0].In[0])
	}
}

// TestPackedGraphDocument loads a $graph packed workflow — the format
// `cwltool --pack` produces and registries distribute.
func TestPackedGraphDocument(t *testing.T) {
	doc, err := ParseBytes([]byte(`
cwlVersion: v1.2
$graph:
  - id: echo_tool
    class: CommandLineTool
    baseCommand: echo
    stdout: o.txt
    inputs:
      message: {type: string, inputBinding: {position: 1}}
    outputs:
      out: {type: stdout}
  - id: main
    class: Workflow
    inputs:
      msg: string
    outputs:
      result:
        type: File
        outputSource: say/out
    steps:
      say:
        run: "#echo_tool"
        in:
          message: msg
        out: [out]
`), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	wf, ok := doc.(*Workflow)
	if !ok {
		t.Fatalf("got %T", doc)
	}
	if wf.CWLVersion != "v1.2" {
		t.Errorf("cwlVersion not propagated: %q", wf.CWLVersion)
	}
	tool, ok := wf.Steps[0].Run.(*CommandLineTool)
	if !ok {
		t.Fatalf("run = %T", wf.Steps[0].Run)
	}
	if tool.BaseCommand[0] != "echo" {
		t.Errorf("tool = %+v", tool)
	}
	if _, err := Validate(wf); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestPackedGraphPicksFirstWorkflowWithoutMain(t *testing.T) {
	doc, err := ParseBytes([]byte(`
cwlVersion: v1.2
$graph:
  - id: helper
    class: CommandLineTool
    baseCommand: "true"
    inputs: {}
    outputs: {}
  - id: pipeline
    class: Workflow
    inputs: {}
    outputs: {}
    steps:
      go:
        run: "#helper"
        in: {}
        out: []
`), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := doc.(*Workflow); !ok {
		t.Fatalf("got %T, want the Workflow entry", doc)
	}
}

func TestPackedGraphErrors(t *testing.T) {
	// Unknown reference.
	_, err := ParseBytes([]byte(`
cwlVersion: v1.2
$graph:
  - id: main
    class: Workflow
    inputs: {}
    outputs: {}
    steps:
      s:
        run: "#missing"
        in: {}
        out: []
`), "", nil)
	if err == nil || !strings.Contains(err.Error(), "#missing") {
		t.Fatalf("err = %v", err)
	}
	// Empty graph.
	if _, err := ParseBytes([]byte("$graph: []\n"), "", nil); err == nil {
		t.Fatal("empty $graph accepted")
	}
	// Circular reference between workflows.
	_, err = ParseBytes([]byte(`
cwlVersion: v1.2
$graph:
  - id: a
    class: Workflow
    inputs: {}
    outputs: {}
    steps:
      s:
        run: "#b"
        in: {}
        out: []
  - id: b
    class: Workflow
    inputs: {}
    outputs: {}
    steps:
      s:
        run: "#a"
        in: {}
        out: []
`), "", nil)
	if err == nil || !strings.Contains(err.Error(), "circular") {
		t.Fatalf("circular err = %v", err)
	}
}

func TestRequirementsMapForm(t *testing.T) {
	// Requirements may also be a mapping keyed by class.
	tool := parseTool(t, `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
requirements:
  InlineJavascriptRequirement: {}
  EnvVarRequirement:
    envDef:
      - envName: K
        envValue: v
inputs: {}
outputs: {}
`)
	if !tool.Requirements.InlineJavascript {
		t.Error("map-form requirement not parsed")
	}
	if len(tool.Requirements.EnvVars) != 1 || tool.Requirements.EnvVars[0].Name != "K" {
		t.Errorf("envDef list form = %+v", tool.Requirements.EnvVars)
	}
}

func TestOutputListForm(t *testing.T) {
	tool := parseTool(t, `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: "true"
inputs: {}
outputs:
  - id: a
    type: File
    outputBinding: {glob: "*.x", loadContents: true}
  - id: b
    type: stdout
stdout: o.txt
`)
	if len(tool.Outputs) != 2 || tool.Outputs[0].ID != "a" {
		t.Fatalf("outputs = %+v", tool.Outputs)
	}
	if tool.Outputs[0].Binding == nil || !tool.Outputs[0].Binding.LoadContents {
		t.Errorf("binding = %+v", tool.Outputs[0].Binding)
	}
}

func TestWorkflowOutputListFormAndLinkMerge(t *testing.T) {
	doc, err := ParseBytes([]byte(`
cwlVersion: v1.2
class: Workflow
requirements:
  - class: MultipleInputFeatureRequirement
inputs:
  x: int
outputs:
  - id: merged
    type: int[]
    linkMerge: merge_flattened
    pickValue: all_non_null
    outputSource: [s/o, s/o]
steps:
  s:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        x: {type: int, inputBinding: {position: 1}}
      outputs:
        o: {type: stdout}
    in:
      x: x
    out: [o]
`), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	wf := doc.(*Workflow)
	if len(wf.Outputs) != 1 {
		t.Fatalf("outputs = %+v", wf.Outputs)
	}
	o := wf.Outputs[0]
	if o.LinkMerge != "merge_flattened" || o.PickValue != "all_non_null" || len(o.OutputSource) != 2 {
		t.Errorf("output = %+v", o)
	}
}

func TestRecordAndEnumTypes(t *testing.T) {
	rec, err := ParseType(yamlx.MapOf(
		"type", "record",
		"fields", []any{
			yamlx.MapOf("name", "a", "type", "int"),
			yamlx.MapOf("name", "b", "type", "string?"),
		},
	))
	if err != nil {
		t.Fatal(err)
	}
	v, err := rec.Accepts(yamlx.MapOf("a", int64(1)))
	if err != nil {
		t.Fatalf("optional field missing should pass: %v", err)
	}
	if v.(*yamlx.Map).Value("a") != int64(1) {
		t.Errorf("v = %v", v)
	}
	if _, err := rec.Accepts(yamlx.MapOf("b", "only")); err == nil {
		t.Error("missing required record field accepted")
	}
	// Record fields in map form.
	rec2, err := ParseType(yamlx.MapOf(
		"type", "record",
		"fields", yamlx.MapOf("x", yamlx.MapOf("type", "int")),
	))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Fields) != 1 || rec2.Fields[0].Name != "x" {
		t.Errorf("fields = %+v", rec2.Fields)
	}
	// Enum symbols with namespace prefixes.
	en, err := ParseType(yamlx.MapOf("type", "enum", "symbols", []any{"file.cwl#fast", "slow"}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := en.Accepts("fast"); err != nil {
		t.Errorf("namespaced symbol not stripped: %v", err)
	}
}

func TestInitialWorkDirParsing(t *testing.T) {
	tool := parseTool(t, `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: "true"
requirements:
  - class: InitialWorkDirRequirement
    listing:
      - entryname: cfg.ini
        entry: "k=v"
        writable: true
      - $(inputs.f)
inputs:
  f: File?
outputs: {}
`)
	wd := tool.Requirements.WorkDir
	if wd == nil || len(wd.Listing) != 2 {
		t.Fatalf("workdir = %+v", wd)
	}
	if wd.Listing[0].EntryName != "cfg.ini" || !wd.Listing[0].Writable {
		t.Errorf("dirent = %+v", wd.Listing[0])
	}
	if wd.Listing[1].Entry != "$(inputs.f)" {
		t.Errorf("expr dirent = %+v", wd.Listing[1])
	}
}

func TestLoadFileErrors(t *testing.T) {
	if _, err := LoadFile("/nonexistent.cwl"); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.cwl")
	os.WriteFile(bad, []byte("a: [1,\n"), 0o644)
	if _, err := LoadFile(bad); err == nil {
		t.Error("bad yaml accepted")
	}
	noclass := filepath.Join(dir, "noclass.cwl")
	os.WriteFile(noclass, []byte("cwlVersion: v1.2\n"), 0o644)
	if _, err := LoadFile(noclass); err == nil {
		t.Error("classless document accepted")
	}
	scalar := filepath.Join(dir, "scalar.cwl")
	os.WriteFile(scalar, []byte("just a string\n"), 0o644)
	if _, err := LoadFile(scalar); err == nil {
		t.Error("scalar document accepted")
	}
}

func TestValidationIssueString(t *testing.T) {
	i := ValidationIssue{Severity: "error", Path: "inputs/x", Msg: "broken"}
	if got := i.String(); !strings.Contains(got, "inputs/x") || !strings.Contains(got, "broken") {
		t.Errorf("String() = %q", got)
	}
	e := &ValidationError{Issues: []ValidationIssue{i}}
	if !strings.Contains(e.Error(), "validation failed") {
		t.Errorf("Error() = %q", e.Error())
	}
}

func TestArgumentsScalarForms(t *testing.T) {
	tool := parseTool(t, `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
arguments:
  - plain
  - 42
  - true
  - valueFrom: computed
    position: 5
inputs: {}
outputs: {}
`)
	if len(tool.Arguments) != 4 {
		t.Fatalf("arguments = %+v", tool.Arguments)
	}
	if tool.Arguments[1].ValueFrom != "42" || tool.Arguments[2].ValueFrom != "true" {
		t.Errorf("scalar args = %+v", tool.Arguments)
	}
	if tool.Arguments[3].Binding == nil || tool.Arguments[3].Binding.Position != 5 {
		t.Errorf("bound arg = %+v", tool.Arguments[3])
	}
}
