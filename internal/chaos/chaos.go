// Package chaos is the deterministic fault-injection harness: a seeded
// ExecutionProvider wrapper that kills workers, fails launches, and delays
// executions on a fixed schedule, so failure-policy behavior (bounded
// redispatch, poison-task quarantine, scale-out backoff) is testable without
// racing external signals.
//
// Determinism is the design constraint. Which faults fire is driven entirely
// by task identity and per-handle execution counters — never by the random
// source — so the same scenario produces the same quarantine outcome under
// any seed. The seed only shapes *timing* (injected delays), which is exactly
// the part allowed to differ between runs while outcomes must not.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/provider"
)

// Config selects which faults the wrapped provider injects.
type Config struct {
	// Seed initializes the delay source. Two runs with different seeds see
	// different injected latencies but identical fault outcomes.
	Seed int64
	// KillTaskIDs lists DFK task ids that are poison: every worker handle
	// that picks one up dies (handle marked dead, underlying block closed,
	// ErrWorkerLost returned) without executing the task. Independent of
	// scheduling order, so redispatch-budget tests are exact.
	KillTaskIDs []int
	// KillEveryN kills the handle on its Nth, 2Nth, ... task execution
	// (per-handle counter; 0 disables) — steady worker churn.
	KillEveryN int
	// MaxKills bounds total injected kills across all handles (0 = no bound).
	MaxKills int
	// FailLaunches fails the provider's first N block launches before the
	// inner provider is consulted — exercises the executor's scale-out
	// backoff path.
	FailLaunches int
	// MaxDelay adds a seeded pseudo-random delay in [0, MaxDelay) before
	// each task execution (0 disables). Timing-only: never changes outcomes.
	MaxDelay time.Duration
	// DropFrames, when the wrapped provider can sever live connections
	// (fabric.NetProvider), severs the connection of the block executing
	// every listed task id instead of returning ErrWorkerLost directly.
	DropFrames bool
}

// Stats counts the faults injected so far.
type Stats struct {
	Kills          int64 `json:"kills"`
	LaunchesFailed int64 `json:"launchesFailed"`
	Delays         int64 `json:"delays"`
	ConnsSevered   int64 `json:"connsSevered"`
}

// ConnKiller is the optional capability of providers that can sever a live
// worker transport (fabric.NetProvider implements it).
type ConnKiller interface {
	KillConnection(block int) bool
}

// Provider wraps an ExecutionProvider with deterministic fault injection.
type Provider struct {
	inner provider.ExecutionProvider
	cfg   Config

	killIDs map[int]bool

	mu       sync.Mutex
	rng      *rand.Rand
	launches int

	kills          atomic.Int64
	launchesFailed atomic.Int64
	delays         atomic.Int64
	connsSevered   atomic.Int64
}

// Wrap builds the fault-injecting wrapper around inner.
func Wrap(inner provider.ExecutionProvider, cfg Config) *Provider {
	ids := make(map[int]bool, len(cfg.KillTaskIDs))
	for _, id := range cfg.KillTaskIDs {
		ids[id] = true
	}
	return &Provider{
		inner:   inner,
		cfg:     cfg,
		killIDs: ids,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Name implements provider.ExecutionProvider.
func (p *Provider) Name() string { return "chaos+" + p.inner.Name() }

// Launch implements provider.ExecutionProvider, failing the first
// FailLaunches attempts before delegating.
func (p *Provider) Launch(block int) (provider.ManagerHandle, error) {
	p.mu.Lock()
	p.launches++
	n := p.launches
	p.mu.Unlock()
	if n <= p.cfg.FailLaunches {
		p.launchesFailed.Add(1)
		return nil, fmt.Errorf("chaos: injected launch failure %d/%d", n, p.cfg.FailLaunches)
	}
	h, err := p.inner.Launch(block)
	if err != nil {
		return nil, err
	}
	return &handle{p: p, inner: h}, nil
}

// Status implements provider.ExecutionProvider.
func (p *Provider) Status() map[int]provider.BlockStatus { return p.inner.Status() }

// Cancel implements provider.ExecutionProvider.
func (p *Provider) Cancel() error { return p.inner.Cancel() }

// RemoteCapable forwards the wrapped provider's remote capability, so chaos
// wrapping does not silently change which execution path tasks take.
func (p *Provider) RemoteCapable() bool {
	if rc, ok := p.inner.(provider.RemoteCapable); ok {
		return rc.RemoteCapable()
	}
	return false
}

// Stats reports the faults injected so far.
func (p *Provider) Stats() Stats {
	return Stats{
		Kills:          p.kills.Load(),
		LaunchesFailed: p.launchesFailed.Load(),
		Delays:         p.delays.Load(),
		ConnsSevered:   p.connsSevered.Load(),
	}
}

// delay returns the next seeded execution delay (0 when disabled).
func (p *Provider) delay() time.Duration {
	if p.cfg.MaxDelay <= 0 {
		return 0
	}
	p.mu.Lock()
	d := time.Duration(p.rng.Int63n(int64(p.cfg.MaxDelay)))
	p.mu.Unlock()
	p.delays.Add(1)
	return d
}

// shouldKill decides — deterministically — whether this execution kills the
// worker. nthExec is the handle's own execution counter.
func (p *Provider) shouldKill(taskID int, nthExec int64) bool {
	if p.cfg.MaxKills > 0 && p.kills.Load() >= int64(p.cfg.MaxKills) {
		return false
	}
	if p.killIDs[taskID] {
		return true
	}
	return p.cfg.KillEveryN > 0 && nthExec%int64(p.cfg.KillEveryN) == 0
}

// handle wraps one launched block.
type handle struct {
	p     *Provider
	inner provider.ManagerHandle
	dead  atomic.Bool
	execs atomic.Int64
}

// Block implements provider.ManagerHandle.
func (h *handle) Block() int { return h.inner.Block() }

// Alive implements provider.ManagerHandle: an injected kill is sticky.
func (h *handle) Alive() bool { return !h.dead.Load() && h.inner.Alive() }

// Close implements provider.ManagerHandle.
func (h *handle) Close() error { return h.inner.Close() }

// Run implements provider.ManagerHandle, injecting the configured faults
// around the real execution.
func (h *handle) Run(t *provider.Task) (any, error) {
	if h.dead.Load() {
		return nil, fmt.Errorf("chaos: block already killed: %w", provider.ErrWorkerLost)
	}
	if d := h.p.delay(); d > 0 {
		time.Sleep(d)
	}
	if h.p.shouldKill(t.ID, h.execs.Add(1)) {
		h.p.kills.Add(1)
		h.dead.Store(true)
		if h.p.cfg.DropFrames {
			if ck, ok := h.p.inner.(ConnKiller); ok && ck.KillConnection(h.inner.Block()) {
				// The severed transport makes the in-flight roundtrip (and
				// the block) fail on its own; still report the loss directly
				// so the task never reaches the dying worker.
				h.p.connsSevered.Add(1)
				return nil, fmt.Errorf("chaos: severed connection of block %d for task %d: %w",
					h.inner.Block(), t.ID, provider.ErrWorkerLost)
			}
		}
		// Close the real block so the kill is not merely cosmetic: worker
		// processes exit, heartbeats stop, Status reflects the death.
		_ = h.inner.Close()
		return nil, fmt.Errorf("chaos: killed worker on task %d: %w", t.ID, provider.ErrWorkerLost)
	}
	return h.inner.Run(t)
}
