package chaos_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/parsl"
	"repro/internal/provider"
)

// quarantineOutcome is everything about a chaos run that must be
// seed-independent. Injection *stats* (kill counts, delays) are deliberately
// not here: a redispatched poison task may land on a block that is already
// dying, which costs no fresh kill — that is timing, not outcome.
type quarantineOutcome struct {
	poisonFailed bool
	poisonTaskID int
	redispatches int
	quarantined  int64
	okResults    string
}

// runQuarantineScenario drives one poison task plus co-resident work through
// an HTEX over a chaos-wrapped local provider.
func runQuarantineScenario(t *testing.T, seed int64) quarantineOutcome {
	t.Helper()
	const maxRedispatch = 3
	prov := chaos.Wrap(&provider.LocalProvider{}, chaos.Config{
		Seed:        seed,
		KillTaskIDs: []int{0},
		MaxDelay:    2 * time.Millisecond,
	})
	htex := parsl.NewHighThroughputExecutor(parsl.HTEXConfig{
		Label: "htex", Provider: prov,
		WorkersPerNode: 2, MaxBlocks: 3, MinBlocks: 1, InitBlocks: 1,
		HeartbeatPeriod: 20 * time.Millisecond,
		MaxRedispatch:   maxRedispatch,
	})
	d, err := parsl.Load(parsl.Config{Executors: []parsl.Executor{htex}, Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Cleanup()

	poison := parsl.NewGoApp("poison", func(parsl.Args) (any, error) { return "unreachable", nil })
	pfut := d.Submit(poison, parsl.Args{}, parsl.CallOpts{})
	ok := parsl.NewGoApp("ok", func(args parsl.Args) (any, error) { return args["i"], nil })
	var futs []*parsl.AppFuture
	for i := 0; i < 12; i++ {
		futs = append(futs, d.Submit(ok, parsl.Args{"i": i}, parsl.CallOpts{}))
	}

	_, perr := pfut.Wait()
	if err := parsl.WaitAll(context.Background(), futs...); err != nil {
		t.Fatalf("co-resident tasks: %v", err)
	}
	results := ""
	for _, f := range futs {
		res, rerr, _ := f.TryResult()
		if rerr != nil {
			t.Fatalf("co-resident task failed: %v", rerr)
		}
		results += fmt.Sprint(res, ",")
	}

	// At least one injected kill had to happen for the task to be poison at
	// all; the exact count depends on whether redispatches land on blocks that
	// are already dying.
	if kills := prov.Stats().Kills; kills < 1 || kills > maxRedispatch+1 {
		t.Errorf("seed %d: injected kills = %d, want 1..%d", seed, kills, maxRedispatch+1)
	}

	st := htex.Stats()
	out := quarantineOutcome{
		poisonFailed: errors.Is(perr, parsl.ErrPoisonTask),
		poisonTaskID: pfut.TaskID(),
		quarantined:  st.TasksQuarantined,
		okResults:    results,
	}
	if len(st.Quarantined) == 1 {
		out.redispatches = st.Quarantined[0].Redispatches
	}
	return out
}

// TestQuarantineOutcomeSeedIndependent is the acceptance criterion: the same
// poison scenario under two different seeds — which shuffle injected delays —
// must produce identical quarantine outcomes.
func TestQuarantineOutcomeSeedIndependent(t *testing.T) {
	a := runQuarantineScenario(t, 1)
	b := runQuarantineScenario(t, 424242)
	if a != b {
		t.Fatalf("outcome differs across seeds:\n seed 1:      %+v\n seed 424242: %+v", a, b)
	}
	if !a.poisonFailed {
		t.Error("poison task did not fail with ErrPoisonTask")
	}
	if a.redispatches != 3 {
		t.Errorf("redispatches = %d, want exactly 3", a.redispatches)
	}
	if a.quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", a.quarantined)
	}
}

// TestInjectedLaunchFailures: the wrapper fails exactly the first N launches,
// then hands through to the real provider.
func TestInjectedLaunchFailures(t *testing.T) {
	prov := chaos.Wrap(&provider.LocalProvider{}, chaos.Config{FailLaunches: 2})
	for i := 0; i < 2; i++ {
		if _, err := prov.Launch(i); err == nil {
			t.Fatalf("launch %d succeeded, want injected failure", i)
		}
	}
	h, err := prov.Launch(2)
	if err != nil {
		t.Fatalf("launch 3: %v", err)
	}
	defer h.Close()
	if !h.Alive() {
		t.Error("pass-through handle not alive")
	}
	res, err := h.Run(&provider.Task{ID: 7, Fn: func() (any, error) { return "ran", nil }})
	if err != nil || res != "ran" {
		t.Fatalf("run through wrapper: res=%v err=%v", res, err)
	}
	if got := prov.Stats().LaunchesFailed; got != 2 {
		t.Errorf("launch failures = %d, want 2", got)
	}
	if prov.Name() != "chaos+local" {
		t.Errorf("name = %q", prov.Name())
	}
}

// TestKillEveryN: the per-handle execution counter kills deterministically on
// the Nth task, and a killed handle stays dead.
func TestKillEveryN(t *testing.T) {
	prov := chaos.Wrap(&provider.LocalProvider{}, chaos.Config{KillEveryN: 3})
	h, err := prov.Launch(0)
	if err != nil {
		t.Fatal(err)
	}
	fn := func() (any, error) { return nil, nil }
	for i := 1; i <= 2; i++ {
		if _, err := h.Run(&provider.Task{ID: i, Fn: fn}); err != nil {
			t.Fatalf("exec %d: %v", i, err)
		}
	}
	if _, err := h.Run(&provider.Task{ID: 3, Fn: fn}); !errors.Is(err, provider.ErrWorkerLost) {
		t.Fatalf("exec 3: err = %v, want ErrWorkerLost", err)
	}
	if h.Alive() {
		t.Error("handle alive after injected kill")
	}
	if _, err := h.Run(&provider.Task{ID: 4, Fn: fn}); !errors.Is(err, provider.ErrWorkerLost) {
		t.Fatalf("exec on dead handle: err = %v, want ErrWorkerLost", err)
	}
	if got := prov.Stats().Kills; got != 1 {
		t.Errorf("kills = %d, want 1 (dead-handle hits are not new kills)", got)
	}
}

// TestMaxKillsBound: MaxKills stops the kill schedule, letting the fleet
// recover.
func TestMaxKillsBound(t *testing.T) {
	prov := chaos.Wrap(&provider.LocalProvider{}, chaos.Config{KillEveryN: 1, MaxKills: 1})
	h1, _ := prov.Launch(0)
	if _, err := h1.Run(&provider.Task{ID: 1, Fn: func() (any, error) { return nil, nil }}); !errors.Is(err, provider.ErrWorkerLost) {
		t.Fatalf("first exec: %v, want injected kill", err)
	}
	h2, _ := prov.Launch(1)
	res, err := h2.Run(&provider.Task{ID: 2, Fn: func() (any, error) { return "ok", nil }})
	if err != nil || res != "ok" {
		t.Fatalf("post-budget exec: res=%v err=%v", res, err)
	}
}
