package conformance

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cwl"
	"repro/internal/fabric"
	"repro/internal/parsl"
	"repro/internal/yamlx"
)

// TestNetConnectionKillRedispatch is the network-fabric variant of
// TestProcessWorkerKillRedispatch: instead of SIGKILLing a worker process, it
// severs one block's TCP connection mid-scatter — the network-partition /
// remote-host-loss failure mode — and asserts the heartbeat/redispatch
// machinery recovers: the run succeeds, the lost tasks re-dispatch to
// another worker, and the DFK monitoring stream records no duplicate
// terminal events.
func TestNetConnectionKillRedispatch(t *testing.T) {
	opts := fabric.Options{
		Addr:            "127.0.0.1:0",
		Secret:          netSecret,
		HeartbeatPeriod: 30 * time.Millisecond,
		AdoptTimeout:    10 * time.Second,
	}
	var prov *fabric.NetProvider
	opts.Spawn = func(block int) error {
		go func() {
			_ = fabric.RunWorker(fabric.ConnectOptions{
				Addr:   prov.Addr(),
				Secret: netSecret,
				ID:     fmt.Sprintf("kill-%d", block),
			})
		}()
		return nil
	}
	prov, err := fabric.Listen(opts)
	if err != nil {
		t.Fatal(err)
	}
	htex := parsl.NewHighThroughputExecutor(parsl.HTEXConfig{
		Label:           "htex",
		Provider:        prov,
		WorkersPerNode:  2,
		MaxBlocks:       2,
		MinBlocks:       1,
		InitBlocks:      2,
		HeartbeatPeriod: 30 * time.Millisecond,
	})
	workRoot := t.TempDir()
	dfk, err := parsl.Load(parsl.Config{Executors: []parsl.Executor{htex}, RunDir: workRoot})
	if err != nil {
		t.Fatal(err)
	}
	defer dfk.Cleanup()

	doc, err := cwl.ParseBytes([]byte(killWorkflow), workRoot, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := core.NewRunner(dfk)
	r.WorkRoot = workRoot
	r.Label = "netkill-run"
	// A scope keys step jobs onto deterministic directories, so a task
	// re-dispatched after the kill lands in the same place it started.
	r.Scope = "netkill"
	names := []any{"a", "b", "c", "d", "e", "f", "g", "h"}

	type result struct {
		out *yamlx.Map
		err error
	}
	done := make(chan result, 1)
	go func() {
		out, err := r.Run(doc, yamlx.MapOf("names", names))
		done <- result{out, err}
	}()

	// Wait until tasks are genuinely in flight over the sockets, then sever
	// one live block's connection.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no live block with in-flight tasks to sever")
		}
		if blocks := prov.LiveBlocks(); len(blocks) >= 1 && prov.RemoteTasks() >= 2 {
			time.Sleep(100 * time.Millisecond) // land the kill mid-sleep
			if prov.KillConnection(blocks[0]) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	res := <-done
	if res.err != nil {
		t.Fatalf("run failed after connection kill: %v", res.err)
	}
	files, _ := res.out.Value("stamped").([]any)
	if len(files) != len(names) {
		t.Fatalf("stamped = %d files, want %d", len(files), len(names))
	}
	for i, f := range files {
		fm := f.(*yamlx.Map)
		data, err := os.ReadFile(fm.GetString("path"))
		if err != nil {
			t.Fatal(err)
		}
		want := "done-" + names[i].(string)
		if string(data) != want {
			t.Errorf("file %d = %q, want %q", i, data, want)
		}
	}

	st := htex.Stats()
	if st.TasksRedispatched < 1 {
		t.Errorf("redispatched = %d, want >= 1", st.TasksRedispatched)
	}
	if st.ManagersLost < 1 {
		t.Errorf("managers lost = %d, want >= 1", st.ManagersLost)
	}

	// Exactly one terminal event per task: a severed connection's
	// re-dispatched task must complete once, never twice.
	terminal := map[int]int{}
	launches := map[int]int{}
	for _, ev := range dfk.EventsFor("netkill-run") {
		switch ev.State {
		case parsl.StateDone, parsl.StateFailed, parsl.StateDepFail, parsl.StateMemoHit:
			terminal[ev.TaskID]++
		case parsl.StateLaunched:
			launches[ev.TaskID]++
		}
	}
	if len(terminal) != len(names) {
		t.Errorf("terminal events for %d tasks, want %d", len(terminal), len(names))
	}
	for id, n := range terminal {
		if n != 1 {
			t.Errorf("task %d has %d terminal events", id, n)
		}
	}
	// The kill must be visible as extra launch events on at least one task.
	relaunched := 0
	for _, n := range launches {
		if n > 1 {
			relaunched++
		}
	}
	if relaunched == 0 {
		t.Error("no task recorded an executor-level re-launch")
	}
}
