package conformance

import (
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cwl"
	"repro/internal/parsl"
	"repro/internal/provider"
	"repro/internal/yamlx"
)

// killWorkflow scatters slow tools so a worker can be SIGKILLed mid-task.
const killWorkflow = `cwlVersion: v1.2
class: Workflow
requirements:
  - class: ScatterFeatureRequirement
inputs:
  names: string[]
outputs:
  stamped:
    type: File[]
    outputSource: stamp/out
steps:
  stamp:
    run:
      class: CommandLineTool
      baseCommand: [sh, -c, 'sleep 0.4; printf "done-%s" "$1"', shell]
      inputs:
        name: {type: string, inputBinding: {position: 1}}
      outputs:
        out: {type: stdout}
      stdout: stamp.txt
    in: {name: names}
    scatter: [name]
    out: [out]
`

// TestProcessWorkerKillRedispatch is the worker-kill variant of the service's
// TestKillNineResume: instead of restarting the whole engine, it SIGKILLs one
// ProcessProvider worker while its tasks are in flight and asserts the
// heartbeat/redispatch machinery recovers — the run succeeds, the lost tasks
// re-dispatch to another worker, and the DFK monitoring stream records no
// duplicate terminal events.
func TestProcessWorkerKillRedispatch(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	prov := provider.NewProcessProvider(provider.ProcessOptions{
		Command: []string{exe},
		Env:     []string{"PARSL_CWL_WORKER_PROCESS=1"},
	})
	htex := parsl.NewHighThroughputExecutor(parsl.HTEXConfig{
		Label:           "htex",
		Provider:        prov,
		WorkersPerNode:  2,
		MaxBlocks:       2,
		MinBlocks:       1,
		InitBlocks:      2,
		HeartbeatPeriod: 30 * time.Millisecond,
	})
	workRoot := t.TempDir()
	dfk, err := parsl.Load(parsl.Config{Executors: []parsl.Executor{htex}, RunDir: workRoot})
	if err != nil {
		t.Fatal(err)
	}
	defer dfk.Cleanup()

	doc, err := cwl.ParseBytes([]byte(killWorkflow), workRoot, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := core.NewRunner(dfk)
	r.WorkRoot = workRoot
	r.Label = "kill-run"
	// A scope keys step jobs onto deterministic directories, so a task
	// re-dispatched after the kill lands in the same place it started.
	r.Scope = "kill"
	names := []any{"a", "b", "c", "d", "e", "f", "g", "h"}

	type result struct {
		out *yamlx.Map
		err error
	}
	done := make(chan result, 1)
	go func() {
		out, err := r.Run(doc, yamlx.MapOf("names", names))
		done <- result{out, err}
	}()

	// Wait until tasks are genuinely in flight on the workers, then SIGKILL
	// one worker process.
	victim := 0
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no busy worker to kill")
		}
		pids := prov.WorkerPids()
		if len(pids) >= 1 && prov.RemoteTasks() >= 2 {
			for _, pid := range pids {
				victim = pid
				break
			}
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // land the kill mid-sleep
	if err := syscall.Kill(victim, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}

	res := <-done
	if res.err != nil {
		t.Fatalf("run failed after worker kill: %v", res.err)
	}
	files, _ := res.out.Value("stamped").([]any)
	if len(files) != len(names) {
		t.Fatalf("stamped = %d files, want %d", len(files), len(names))
	}
	for i, f := range files {
		fm := f.(*yamlx.Map)
		data, err := os.ReadFile(fm.GetString("path"))
		if err != nil {
			t.Fatal(err)
		}
		want := "done-" + names[i].(string)
		if string(data) != want {
			t.Errorf("file %d = %q, want %q", i, data, want)
		}
	}

	st := htex.Stats()
	if st.TasksRedispatched < 1 {
		t.Errorf("redispatched = %d, want >= 1", st.TasksRedispatched)
	}
	if st.ManagersLost < 1 {
		t.Errorf("managers lost = %d, want >= 1", st.ManagersLost)
	}

	// Exactly one terminal event per task: a killed worker's re-dispatched
	// task must complete once, never twice.
	terminal := map[int]int{}
	launches := map[int]int{}
	for _, ev := range dfk.EventsFor("kill-run") {
		switch ev.State {
		case parsl.StateDone, parsl.StateFailed, parsl.StateDepFail, parsl.StateMemoHit:
			terminal[ev.TaskID]++
		case parsl.StateLaunched:
			launches[ev.TaskID]++
		}
	}
	if len(terminal) != len(names) {
		t.Errorf("terminal events for %d tasks, want %d", len(terminal), len(names))
	}
	for id, n := range terminal {
		if n != 1 {
			t.Errorf("task %d has %d terminal events", id, n)
		}
	}
	// The kill must be visible as extra launch events on at least one task.
	relaunched := 0
	for _, n := range launches {
		if n > 1 {
			relaunched++
		}
	}
	if relaunched == 0 {
		t.Error("no task recorded an executor-level re-launch")
	}

	// The dead worker's job directory contents were rebuilt by the retry.
	if entries, err := os.ReadDir(workRoot); err == nil {
		found := false
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "stamp") {
				found = true
			}
		}
		if !found {
			t.Error("no stamp job directories in the work root")
		}
	}
}
