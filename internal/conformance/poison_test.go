package conformance

import (
	"errors"
	"os"
	"testing"
	"time"

	"repro/internal/parsl"
	"repro/internal/provider"
)

// remoteApp ships a fixed RemoteSpec to the worker; the in-process fallback
// must never run for it.
type remoteApp struct {
	name string
	spec *provider.RemoteSpec
}

func (a *remoteApp) Name() string { return a.name }

func (a *remoteApp) Execute(*parsl.TaskContext, parsl.Args) (any, error) {
	return nil, errors.New("remoteApp must execute on a worker, not in-process")
}

func (a *remoteApp) RemoteSpec(parsl.Args) *provider.RemoteSpec { return a.spec }

// TestProcessWorkerPoisonQuarantine runs a task whose RemoteSpec
// deterministically kills the worker process executing it (os.Exit from
// inside the worker — the subprocess analogue of a segfault). The bounded
// redispatch policy must quarantine it with ErrPoisonTask after burning its
// budget, while co-resident remote tasks on the same executor — some of them
// stranded on the killed workers — all complete.
func TestProcessWorkerPoisonQuarantine(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	prov := provider.NewProcessProvider(provider.ProcessOptions{
		Command: []string{exe},
		Env:     []string{"PARSL_CWL_WORKER_PROCESS=1"},
	})
	const maxRedispatch = 2
	htex := parsl.NewHighThroughputExecutor(parsl.HTEXConfig{
		Label:           "htex",
		Provider:        prov,
		WorkersPerNode:  2,
		MaxBlocks:       2,
		MinBlocks:       1,
		InitBlocks:      1,
		HeartbeatPeriod: 30 * time.Millisecond,
		MaxRedispatch:   maxRedispatch,
	})
	dfk, err := parsl.Load(parsl.Config{Executors: []parsl.Executor{htex}})
	if err != nil {
		t.Fatal(err)
	}
	defer dfk.Cleanup()

	crash, err := provider.NewCrashSpec(137, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	pfut := dfk.Submit(&remoteApp{name: "crash", spec: crash}, parsl.Args{}, parsl.CallOpts{})

	var futs []*parsl.AppFuture
	for i := 0; i < 8; i++ {
		spec, err := provider.NewEchoSpec(i)
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, dfk.Submit(&remoteApp{name: "echo", spec: spec}, parsl.Args{}, parsl.CallOpts{}))
	}

	if _, perr := pfut.Wait(); !errors.Is(perr, parsl.ErrPoisonTask) {
		t.Fatalf("crash task error = %v, want ErrPoisonTask", perr)
	}
	for i, f := range futs {
		res, ferr := f.Wait()
		if ferr != nil {
			t.Fatalf("co-resident echo %d failed: %v", i, ferr)
		}
		// Remote echo results decode as JSON integers (int64).
		if got, ok := res.(int64); !ok || int(got) != i {
			t.Fatalf("echo %d = %v (%T), want the echoed index", i, res, res)
		}
	}

	st := htex.Stats()
	if st.TasksQuarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.TasksQuarantined)
	}
	if len(st.Quarantined) != 1 || st.Quarantined[0].Redispatches != maxRedispatch {
		t.Fatalf("quarantine records = %+v, want one with exactly %d redispatches", st.Quarantined, maxRedispatch)
	}
}
