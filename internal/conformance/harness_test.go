// Package conformance is the engine's cross-provider conformance corpus: a
// table of golden CWL workflows executed end to end under every execution
// provider (local in-process managers, process-isolated workers, simulated
// batch allocations, network workers over loopback TCP). The same workflow
// must produce byte-identical canonical outputs on all backends — the
// property that makes "which provider" an operational choice instead of a
// semantic one.
package conformance

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cwl"
	"repro/internal/fabric"
	"repro/internal/parsl"
	"repro/internal/provider"
	"repro/internal/yamlx"
)

// TestMain doubles as the worker binary: re-executed with
// PARSL_CWL_WORKER_PROCESS=1 the test binary speaks the worker protocol, so
// the process provider runs against genuine subprocesses.
func TestMain(m *testing.M) {
	if os.Getenv("PARSL_CWL_WORKER_PROCESS") == "1" {
		if err := provider.RunWorker(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// providerNames lists every backend the corpus must agree across. The
// "-json" variants force the legacy JSON codec on the worker transport so
// both wire encodings are held to the same byte-identical outputs.
var providerNames = []string{"local", "process", "process-json", "sim", "net", "net-json"}

// netSecret authenticates the loopback conformance workers to the
// interchange.
const netSecret = "conformance-secret"

// buildProvider constructs one execution provider for a conformance run.
func buildProvider(t *testing.T, name string) provider.ExecutionProvider {
	t.Helper()
	switch name {
	case "local":
		return &provider.LocalProvider{}
	case "process", "process-json":
		exe, err := os.Executable()
		if err != nil {
			t.Fatal(err)
		}
		opts := provider.ProcessOptions{
			Command: []string{exe},
			Env:     []string{"PARSL_CWL_WORKER_PROCESS=1"},
		}
		if name == "process-json" {
			opts.Dispatch.Codec = provider.CodecJSON
		}
		return provider.NewProcessProvider(opts)
	case "sim":
		return provider.NewSimProvider(provider.SimOptions{
			Nodes:        2,
			CoresPerNode: 4,
			TimeScale:    200 * time.Microsecond,
		})
	case "net", "net-json":
		// Loopback network fabric: each Launch spawns an in-process worker
		// goroutine that dials the interchange over real TCP and
		// authenticates with the shared secret, so every tool invocation
		// crosses an authenticated socket.
		opts := fabric.Options{
			Addr:            "127.0.0.1:0",
			Secret:          netSecret,
			HeartbeatPeriod: 50 * time.Millisecond,
			AdoptTimeout:    10 * time.Second,
		}
		if name == "net-json" {
			opts.Dispatch.Codec = provider.CodecJSON
		}
		var np *fabric.NetProvider
		opts.Spawn = func(block int) error {
			go func() {
				_ = fabric.RunWorker(fabric.ConnectOptions{
					Addr:   np.Addr(),
					Secret: netSecret,
					ID:     fmt.Sprintf("conf-%d", block),
				})
			}()
			return nil
		}
		np, err := fabric.Listen(opts)
		if err != nil {
			t.Fatal(err)
		}
		return np
	default:
		t.Fatalf("unknown provider %q", name)
		return nil
	}
}

// runUnderProvider executes one corpus case on the named backend and returns
// its canonical output bytes.
func runUnderProvider(t *testing.T, name string, c Case, fixture string) []byte {
	t.Helper()
	return runWithProvider(t, name, buildProvider(t, name), c, fixture)
}

// runWithProvider executes one corpus case on an already-built provider and
// returns its canonical output bytes. Every provider reuses the same work
// root path (wiped in between), so job directories — which are keyed on
// scope + step + canonical inputs — land on identical absolute paths and the
// outputs can be compared byte for byte.
func runWithProvider(t *testing.T, name string, prov provider.ExecutionProvider, c Case, fixture string) []byte {
	t.Helper()
	workRoot := filepath.Join(fixture, "work")
	if err := os.RemoveAll(workRoot); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(workRoot, 0o755); err != nil {
		t.Fatal(err)
	}

	htex := parsl.NewHighThroughputExecutor(parsl.HTEXConfig{
		Label:           "htex",
		Provider:        prov,
		WorkersPerNode:  4,
		MaxBlocks:       2,
		InitBlocks:      1,
		HeartbeatPeriod: 50 * time.Millisecond,
	})
	dfk, err := parsl.Load(parsl.Config{Executors: []parsl.Executor{htex}, RunDir: workRoot})
	if err != nil {
		t.Fatal(err)
	}
	defer dfk.Cleanup()

	doc, err := cwl.ParseBytes([]byte(c.Doc), fixture, nil)
	if err != nil {
		t.Fatalf("%s: parse: %v", c.Name, err)
	}
	r := core.NewRunner(dfk)
	r.WorkRoot = workRoot
	r.InputsDir = fixture
	r.Scope = "conformance/" + c.Name

	inputs := yamlx.NewMap()
	if c.Inputs != nil {
		inputs = c.Inputs(fixture)
	}
	outputs, err := r.Run(doc, inputs)
	if err != nil {
		t.Fatalf("%s under %s: %v", c.Name, name, err)
	}
	if c.Check != nil {
		c.Check(t, outputs)
	}
	// Remote execution must be real, not a silent in-process fallback: every
	// tool invocation the workflow performs has to cross the pipe (process
	// provider) or the TCP session (net provider).
	if rc, ok := prov.(interface{ RemoteTasks() int64 }); ok {
		if got := rc.RemoteTasks(); got < int64(c.MinToolRuns()) {
			t.Errorf("%s: only %d tasks crossed the %s worker transport, want >= %d",
				c.Name, got, name, c.MinToolRuns())
		}
	}
	return canonicalize(t, outputs, workRoot, fixture)
}

// canonicalize renders an outputs object in provider-independent form: JSON
// with the run's work root and fixture directory replaced by stable markers.
func canonicalize(t *testing.T, outputs *yamlx.Map, workRoot, fixture string) []byte {
	t.Helper()
	if outputs == nil {
		return []byte("null")
	}
	raw, err := outputs.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	raw = bytes.ReplaceAll(raw, []byte("file://"+workRoot), []byte("${WORK}"))
	raw = bytes.ReplaceAll(raw, []byte(workRoot), []byte("${WORK}"))
	raw = bytes.ReplaceAll(raw, []byte("file://"+fixture), []byte("${INPUTS}"))
	raw = bytes.ReplaceAll(raw, []byte(fixture), []byte("${INPUTS}"))
	return raw
}

// readOutputFile reads the file behind a File object in an outputs map.
func readOutputFile(t *testing.T, outputs *yamlx.Map, key string) string {
	t.Helper()
	f, _ := outputs.Value(key).(*yamlx.Map)
	if f == nil {
		t.Fatalf("output %q is not a File: %v", key, outputs.Keys())
	}
	data, err := os.ReadFile(f.GetString("path"))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestConformanceCorpus is the cross-provider matrix: every corpus workflow
// under every provider, with canonical outputs compared against the local
// baseline byte for byte.
func TestConformanceCorpus(t *testing.T) {
	for _, c := range Corpus {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			fixture := t.TempDir()
			if c.Fixture != nil {
				c.Fixture(t, fixture)
			}
			baseline := runUnderProvider(t, providerNames[0], c, fixture)
			for _, name := range providerNames[1:] {
				got := runUnderProvider(t, name, c, fixture)
				if !bytes.Equal(baseline, got) {
					t.Errorf("%s: canonical outputs diverge from %s:\n%s: %s\n%s: %s",
						name, providerNames[0], providerNames[0], baseline, name, got)
				}
			}
		})
	}
}
