package conformance

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/provider"
)

// chaosSeed pins the injected-delay schedule so the CI chaos-smoke job is
// reproducible: a failure here replays locally with the same seed.
const chaosSeed = 20240808

// TestConformanceCorpusUnderChaos reruns the whole corpus on a local provider
// wrapped in the deterministic fault injector: workers are killed mid-run
// (every 2nd execution on a handle, bounded at 3 kills per case) and every
// execution gets a small seeded delay. The failure-policy layer — worker-loss
// redispatch, block relaunch, bounded redispatch budgets — must absorb the
// churn and still produce outputs byte-identical to the undisturbed baseline.
func TestConformanceCorpusUnderChaos(t *testing.T) {
	for _, c := range Corpus {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			fixture := t.TempDir()
			if c.Fixture != nil {
				c.Fixture(t, fixture)
			}
			baseline := runUnderProvider(t, "local", c, fixture)
			prov := chaos.Wrap(&provider.LocalProvider{}, chaos.Config{
				Seed:       chaosSeed,
				KillEveryN: 2,
				// Three kills keeps every task inside the default redispatch
				// budget (MaxRedispatch 3), so churn never escalates to a
				// quarantine: the run must merely survive, not give up.
				MaxKills: 3,
				MaxDelay: time.Millisecond,
			})
			got := runWithProvider(t, "chaos+local", prov, c, fixture)
			if !bytes.Equal(baseline, got) {
				t.Errorf("canonical outputs diverge under chaos:\nlocal: %s\nchaos: %s", baseline, got)
			}
			if kills := prov.Stats().Kills; kills < 1 {
				t.Logf("note: no kill fired for %s (fewer than 2 executions per handle)", c.Name)
			}
		})
	}
}
