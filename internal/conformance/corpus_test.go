package conformance

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/yamlx"
)

// Case is one golden workflow of the conformance corpus.
type Case struct {
	Name string
	// Doc is the self-contained CWL source (inline step bodies only).
	Doc string
	// Fixture creates input files under the case's fixture directory.
	Fixture func(t *testing.T, dir string)
	// Inputs builds the job order (fixture = the fixture directory).
	Inputs func(fixture string) *yamlx.Map
	// Check asserts semantic expectations on the outputs (beyond the
	// cross-provider byte comparison the harness always performs).
	Check func(t *testing.T, outputs *yamlx.Map)
	// NoToolRuns marks cases whose workflow legitimately executes zero
	// command-line tools (skipped conditionals, empty scatters).
	NoToolRuns bool
}

// MinToolRuns is the least number of tool invocations the case must ship to
// process-isolated workers.
func (c Case) MinToolRuns() int {
	if c.NoToolRuns {
		return 0
	}
	return 1
}

// Corpus is the conformance table. Every entry runs end to end — real
// commands, real files — under the local, process, and sim providers.
var Corpus = []Case{
	{
		Name: "echo-tool",
		Doc: `cwlVersion: v1.2
class: CommandLineTool
baseCommand: [echo, -n]
inputs:
  message: {type: string, inputBinding: {position: 1}}
outputs:
  out: {type: stdout}
stdout: out.txt
`,
		Inputs: func(string) *yamlx.Map { return yamlx.MapOf("message", "hello conformance") },
		Check: func(t *testing.T, out *yamlx.Map) {
			if got := readOutputFile(t, out, "out"); got != "hello conformance" {
				t.Errorf("out = %q", got)
			}
		},
	},
	{
		Name: "two-step-chain",
		Doc: `cwlVersion: v1.2
class: Workflow
inputs:
  message: string
outputs:
  final:
    type: File
    outputSource: upper/out
steps:
  greet:
    run:
      class: CommandLineTool
      baseCommand: [echo, -n]
      inputs:
        m: {type: string, inputBinding: {position: 1}}
      outputs:
        out: {type: stdout}
      stdout: greet.txt
    in: {m: message}
    out: [out]
  upper:
    run:
      class: CommandLineTool
      baseCommand: [tr, a-z, A-Z]
      inputs:
        infile: {type: File}
      stdin: $(inputs.infile.path)
      outputs:
        out: {type: stdout}
      stdout: upper.txt
    in: {infile: greet/out}
    out: [out]
`,
		Inputs: func(string) *yamlx.Map { return yamlx.MapOf("message", "shout this") },
		Check: func(t *testing.T, out *yamlx.Map) {
			if got := readOutputFile(t, out, "final"); got != "SHOUT THIS" {
				t.Errorf("final = %q", got)
			}
		},
	},
	{
		Name: "scatter-dotproduct",
		Doc: `cwlVersion: v1.2
class: Workflow
requirements:
  - class: ScatterFeatureRequirement
inputs:
  names: string[]
  tags: string[]
outputs:
  labeled:
    type: File[]
    outputSource: label/out
steps:
  label:
    run:
      class: CommandLineTool
      baseCommand: [printf, '%s=%s']
      inputs:
        name: {type: string, inputBinding: {position: 1}}
        tag: {type: string, inputBinding: {position: 2}}
      outputs:
        out: {type: stdout}
      stdout: pair.txt
    in: {name: names, tag: tags}
    scatter: [name, tag]
    scatterMethod: dotproduct
    out: [out]
`,
		Inputs: func(string) *yamlx.Map {
			return yamlx.MapOf(
				"names", []any{"alpha", "beta", "gamma"},
				"tags", []any{"1", "2", "3"},
			)
		},
		Check: func(t *testing.T, out *yamlx.Map) {
			files, _ := out.Value("labeled").([]any)
			if len(files) != 3 {
				t.Fatalf("labeled = %#v", out.Value("labeled"))
			}
			first, _ := files[0].(*yamlx.Map)
			data, _ := os.ReadFile(first.GetString("path"))
			if string(data) != "alpha=1" {
				t.Errorf("first = %q", data)
			}
		},
	},
	{
		Name: "scatter-flat-crossproduct",
		Doc: `cwlVersion: v1.2
class: Workflow
requirements:
  - class: ScatterFeatureRequirement
inputs:
  xs: string[]
  ys: string[]
outputs:
  combos:
    type: File[]
    outputSource: combine/out
steps:
  combine:
    run:
      class: CommandLineTool
      baseCommand: [printf, '%s%s']
      inputs:
        x: {type: string, inputBinding: {position: 1}}
        y: {type: string, inputBinding: {position: 2}}
      outputs:
        out: {type: stdout}
      stdout: combo.txt
    in: {x: xs, y: ys}
    scatter: [x, y]
    scatterMethod: flat_crossproduct
    out: [out]
`,
		Inputs: func(string) *yamlx.Map {
			return yamlx.MapOf("xs", []any{"a", "b"}, "ys", []any{"1", "2", "3"})
		},
		Check: func(t *testing.T, out *yamlx.Map) {
			files, _ := out.Value("combos").([]any)
			if len(files) != 6 {
				t.Fatalf("combos = %d entries", len(files))
			}
		},
	},
	{
		Name: "scatter-nested-crossproduct",
		Doc: `cwlVersion: v1.2
class: Workflow
requirements:
  - class: ScatterFeatureRequirement
inputs:
  rows: string[]
  cols: string[]
outputs:
  grid:
    type:
      type: array
      items: {type: array, items: File}
    outputSource: cell/out
steps:
  cell:
    run:
      class: CommandLineTool
      baseCommand: [printf, '%s:%s']
      inputs:
        r: {type: string, inputBinding: {position: 1}}
        c: {type: string, inputBinding: {position: 2}}
      outputs:
        out: {type: stdout}
      stdout: cell.txt
    in: {r: rows, c: cols}
    scatter: [r, c]
    scatterMethod: nested_crossproduct
    out: [out]
`,
		Inputs: func(string) *yamlx.Map {
			return yamlx.MapOf("rows", []any{"r1", "r2"}, "cols", []any{"c1", "c2", "c3"})
		},
		Check: func(t *testing.T, out *yamlx.Map) {
			rows, _ := out.Value("grid").([]any)
			if len(rows) != 2 {
				t.Fatalf("grid rows = %#v", out.Value("grid"))
			}
			inner, _ := rows[1].([]any)
			if len(inner) != 3 {
				t.Fatalf("grid row 1 = %#v", rows[1])
			}
		},
	},
	{
		Name:       "scatter-empty-input",
		NoToolRuns: true,
		Doc: `cwlVersion: v1.2
class: Workflow
requirements:
  - class: ScatterFeatureRequirement
inputs:
  names: string[]
outputs:
  echoed:
    type: File[]
    outputSource: say/out
steps:
  say:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        name: {type: string, inputBinding: {position: 1}}
      outputs:
        out: {type: stdout}
      stdout: say.txt
    in: {name: names}
    scatter: [name]
    out: [out]
`,
		Inputs: func(string) *yamlx.Map { return yamlx.MapOf("names", []any{}) },
		Check: func(t *testing.T, out *yamlx.Map) {
			if files, _ := out.Value("echoed").([]any); len(files) != 0 {
				t.Errorf("echoed = %#v, want empty", out.Value("echoed"))
			}
		},
	},
	{
		Name: "fanin-merge-flattened",
		Doc: `cwlVersion: v1.2
class: Workflow
requirements:
  - class: MultipleInputFeatureRequirement
inputs:
  a: string
  b: string
outputs:
  both:
    type: File[]
    outputSource: [sayA/out, sayB/out]
    linkMerge: merge_flattened
steps:
  sayA:
    run:
      class: CommandLineTool
      baseCommand: [echo, -n]
      inputs:
        w: {type: string, inputBinding: {position: 1}}
      outputs:
        out: {type: stdout}
      stdout: a.txt
    in: {w: a}
    out: [out]
  sayB:
    run:
      class: CommandLineTool
      baseCommand: [echo, -n]
      inputs:
        w: {type: string, inputBinding: {position: 1}}
      outputs:
        out: {type: stdout}
      stdout: b.txt
    in: {w: b}
    out: [out]
`,
		Inputs: func(string) *yamlx.Map { return yamlx.MapOf("a", "first", "b", "second") },
		Check: func(t *testing.T, out *yamlx.Map) {
			files, _ := out.Value("both").([]any)
			if len(files) != 2 {
				t.Fatalf("both = %#v", out.Value("both"))
			}
		},
	},
	{
		Name: "conditional-when-runs",
		Doc: `cwlVersion: v1.2
class: Workflow
requirements:
  - class: InlineJavascriptRequirement
  - class: MultipleInputFeatureRequirement
inputs:
  useLoud: boolean
  word: string
outputs:
  chosen:
    type: File
    outputSource: [loud/out, quiet/out]
    pickValue: first_non_null
steps:
  loud:
    run:
      class: CommandLineTool
      baseCommand: [sh, -c, 'printf "%s!!!" "$1"', shell]
      inputs:
        w: {type: string, inputBinding: {position: 1}}
      outputs:
        out: {type: stdout}
      stdout: loud.txt
    when: $(inputs.useLoud)
    in: {useLoud: useLoud, w: word}
    out: [out]
  quiet:
    run:
      class: CommandLineTool
      baseCommand: [printf, '%s']
      inputs:
        w: {type: string, inputBinding: {position: 1}}
      outputs:
        out: {type: stdout}
      stdout: quiet.txt
    when: $(!inputs.useLoud)
    in: {useLoud: useLoud, w: word}
    out: [out]
`,
		Inputs: func(string) *yamlx.Map { return yamlx.MapOf("useLoud", true, "word", "hey") },
		Check: func(t *testing.T, out *yamlx.Map) {
			if got := readOutputFile(t, out, "chosen"); got != "hey!!!" {
				t.Errorf("chosen = %q", got)
			}
		},
	},
	{
		Name:       "conditional-when-skips",
		NoToolRuns: true,
		Doc: `cwlVersion: v1.2
class: Workflow
requirements:
  - class: InlineJavascriptRequirement
inputs:
  go: boolean
  word: string
outputs:
  maybe:
    type: File?
    outputSource: step/out
steps:
  step:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        w: {type: string, inputBinding: {position: 1}}
      outputs:
        out: {type: stdout}
      stdout: maybe.txt
    when: $(inputs.go)
    in: {go: go, w: word}
    out: [out]
`,
		Inputs: func(string) *yamlx.Map { return yamlx.MapOf("go", false, "word", "nope") },
		Check: func(t *testing.T, out *yamlx.Map) {
			if out.Value("maybe") != nil {
				t.Errorf("maybe = %#v, want null (step skipped)", out.Value("maybe"))
			}
		},
	},
	{
		Name: "nested-subworkflow",
		Doc: `cwlVersion: v1.2
class: Workflow
requirements:
  - class: SubworkflowFeatureRequirement
inputs:
  word: string
outputs:
  final:
    type: File
    outputSource: outer/result
steps:
  outer:
    run:
      class: Workflow
      inputs:
        w: string
      outputs:
        result:
          type: File
          outputSource: wrap/out
      steps:
        wrap:
          run:
            class: CommandLineTool
            baseCommand: [sh, -c, 'printf "[%s]" "$1"', shell]
            inputs:
              v: {type: string, inputBinding: {position: 1}}
            outputs:
              out: {type: stdout}
            stdout: wrapped.txt
          in: {v: w}
          out: [out]
    in: {w: word}
    out: [result]
`,
		Inputs: func(string) *yamlx.Map { return yamlx.MapOf("word", "inner") },
		Check: func(t *testing.T, out *yamlx.Map) {
			if got := readOutputFile(t, out, "final"); got != "[inner]" {
				t.Errorf("final = %q", got)
			}
		},
	},
	{
		Name: "expression-tool-step",
		Doc: `cwlVersion: v1.2
class: Workflow
requirements:
  - class: InlineJavascriptRequirement
inputs:
  n: int
outputs:
  echoed:
    type: File
    outputSource: say/out
steps:
  calc:
    run:
      class: ExpressionTool
      requirements:
        - class: InlineJavascriptRequirement
      inputs:
        n: int
      outputs:
        tripled: int
      expression: "${ return {tripled: inputs.n * 3}; }"
    in: {n: n}
    out: [tripled]
  say:
    run:
      class: CommandLineTool
      baseCommand: [printf, '%s']
      inputs:
        v: {type: int, inputBinding: {position: 1}}
      outputs:
        out: {type: stdout}
      stdout: n.txt
    in: {v: calc/tripled}
    out: [out]
`,
		Inputs: func(string) *yamlx.Map { return yamlx.MapOf("n", int64(14)) },
		Check: func(t *testing.T, out *yamlx.Map) {
			if got := readOutputFile(t, out, "echoed"); got != "42" {
				t.Errorf("echoed = %q", got)
			}
		},
	},
	{
		Name: "inline-python-validate",
		Doc: `cwlVersion: v1.2
class: CommandLineTool
requirements:
  - class: InlinePythonRequirement
    expressionLib:
      - |
        def valid_file(file, ext):
            if not file.lower().endswith(ext):
                raise Exception(f"Invalid file. Expected '{ext}'")
baseCommand: [cat]
inputs:
  data_file:
    type: File
    validate: |
      f"{valid_file($(inputs.data_file), '.csv')}"
    inputBinding: {position: 1}
outputs:
  validated: {type: stdout}
stdout: validated.csv
`,
		Fixture: func(t *testing.T, dir string) {
			writeFixture(t, dir, "table.csv", "x,y\n1,2\n")
		},
		Inputs: func(string) *yamlx.Map { return yamlx.MapOf("data_file", "table.csv") },
		Check: func(t *testing.T, out *yamlx.Map) {
			if got := readOutputFile(t, out, "validated"); got != "x,y\n1,2\n" {
				t.Errorf("validated = %q", got)
			}
		},
	},
	{
		Name: "initial-workdir-staging",
		Doc: `cwlVersion: v1.2
class: CommandLineTool
requirements:
  - class: InitialWorkDirRequirement
    listing:
      - entryname: config.ini
        entry: "threshold=$(inputs.threshold)"
baseCommand: [cat, config.ini]
inputs:
  threshold: {type: int}
outputs:
  out: {type: stdout}
stdout: staged.txt
`,
		Inputs: func(string) *yamlx.Map { return yamlx.MapOf("threshold", int64(7)) },
		Check: func(t *testing.T, out *yamlx.Map) {
			if got := readOutputFile(t, out, "out"); got != "threshold=7" {
				t.Errorf("out = %q", got)
			}
		},
	},
	{
		Name: "env-var-requirement",
		Doc: `cwlVersion: v1.2
class: CommandLineTool
requirements:
  - class: EnvVarRequirement
    envDef:
      GREETING: $(inputs.word)
baseCommand: [sh, -c, 'printf "%s" "$GREETING"']
inputs:
  word: {type: string}
outputs:
  out: {type: stdout}
stdout: env.txt
`,
		Inputs: func(string) *yamlx.Map { return yamlx.MapOf("word", "from-env") },
		Check: func(t *testing.T, out *yamlx.Map) {
			if got := readOutputFile(t, out, "out"); got != "from-env" {
				t.Errorf("out = %q", got)
			}
		},
	},
	{
		Name: "file-input-staging",
		Doc: `cwlVersion: v1.2
class: Workflow
inputs:
  data: File
outputs:
  counted:
    type: File
    outputSource: count/out
steps:
  count:
    run:
      class: CommandLineTool
      baseCommand: [wc, -c]
      inputs:
        f: {type: File, inputBinding: {position: 1}}
      outputs:
        out: {type: stdout}
      stdout: count.txt
    in: {f: data}
    out: [out]
`,
		Fixture: func(t *testing.T, dir string) {
			writeFixture(t, dir, "data.bin", "0123456789")
		},
		Inputs: func(string) *yamlx.Map { return yamlx.MapOf("data", "data.bin") },
		Check: func(t *testing.T, out *yamlx.Map) {
			got := readOutputFile(t, out, "counted")
			if !strings.HasPrefix(strings.TrimSpace(got), "10") {
				t.Errorf("counted = %q", got)
			}
		},
	},
	{
		Name: "stdout-and-stderr",
		Doc: `cwlVersion: v1.2
class: CommandLineTool
baseCommand: [sh, -c, 'printf good; printf bad >&2']
inputs: {}
outputs:
  outFile: {type: stdout}
  errFile: {type: stderr}
stdout: streams.out
stderr: streams.err
`,
		Check: func(t *testing.T, out *yamlx.Map) {
			if got := readOutputFile(t, out, "outFile"); got != "good" {
				t.Errorf("stdout = %q", got)
			}
			if got := readOutputFile(t, out, "errFile"); got != "bad" {
				t.Errorf("stderr = %q", got)
			}
		},
	},
	{
		Name: "expression-glob-output",
		Doc: `cwlVersion: v1.2
class: CommandLineTool
requirements:
  - class: InlineJavascriptRequirement
baseCommand: [sh, -c, 'printf payload > "$1".bin', shell]
inputs:
  stem: {type: string, inputBinding: {position: 1}}
outputs:
  made:
    type: File
    outputBinding:
      glob: $(inputs.stem).bin
`,
		Inputs: func(string) *yamlx.Map { return yamlx.MapOf("stem", "artifact") },
		Check: func(t *testing.T, out *yamlx.Map) {
			f, _ := out.Value("made").(*yamlx.Map)
			if f == nil || f.GetString("basename") != "artifact.bin" {
				t.Fatalf("made = %#v", out.Value("made"))
			}
			if got := readOutputFile(t, out, "made"); got != "payload" {
				t.Errorf("made content = %q", got)
			}
		},
	},
}

func writeFixture(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
