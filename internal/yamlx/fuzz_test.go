package yamlx

import (
	"testing"
)

// FuzzDecode hammers the YAML document parser: no input may panic it, and
// anything it accepts must survive a marshal → decode round trip (the
// property the persistence and wire layers rely on). Crashers found by `go
// test -fuzz=FuzzDecode` become seeds here.
func FuzzDecode(f *testing.F) {
	seeds := []string{
		"",
		"a: 1\nb: two\n",
		"- 1\n- 2\n- x\n",
		"cwlVersion: v1.2\nclass: CommandLineTool\nbaseCommand: [echo, -n]\n",
		"nested:\n  deep:\n    deeper: [1, {k: v}, 'q']\n",
		"key: |\n  block\n  text\n",
		"key: >\n  folded\n  text\n",
		"a: {inline: [1, 2], b: {c: d}}\n",
		"s: \"quo\\\"ted\"\nt: 'single'\n",
		"n: null\nb: true\nf: 1.5\ni: -3\n",
		"# comment only\n",
		"a:\n- 1\n-\n",
		"\t",
		"a: b: c",
		"---\na: 1\n",
		"x: [",
		"y: {",
		"'",
		"a: !!str 1",
		"&anchor x",
		"key:\n  - {a: [}\n",
		"0:\n 0:\n  0:\n   0:\n    0:\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		out, err := Marshal(v)
		if err != nil {
			// Values produced by Decode must always be encodable.
			t.Fatalf("decoded value %T does not marshal: %v", v, err)
		}
		if _, err := Decode(out); err != nil {
			t.Fatalf("marshal output does not re-decode: %v\ninput: %q\nmarshaled: %q", err, data, out)
		}
	})
}

// FuzzDecodeJSON covers the JSON entry point the worker protocol and
// persistence layers decode untrusted bytes with.
func FuzzDecodeJSON(f *testing.F) {
	for _, s := range []string{
		`{}`, `[]`, `null`, `{"a":1,"b":[true,null,"x"]}`, `{"nested":{"k":1.5}}`,
		`[[[[[]]]]]`, `{"a":`, `"lone`, `{"dup":1,"dup":2}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeJSON(data)
		if err != nil {
			return
		}
		if _, err := Marshal(v); err != nil {
			t.Fatalf("decoded JSON value %T does not marshal: %v", v, err)
		}
	})
}
