package yamlx

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Marshal renders v as block-style YAML. It supports the value vocabulary the
// decoder produces (nil, bool, int/int64, float64, string, []any, *Map) plus
// map[string]any (encoded with sorted keys) and []string.
func Marshal(v any) ([]byte, error) {
	var b strings.Builder
	if err := encodeNode(&b, v, 0, false); err != nil {
		return nil, err
	}
	s := b.String()
	if s != "" && !strings.HasSuffix(s, "\n") {
		s += "\n"
	}
	return []byte(s), nil
}

// MarshalString is Marshal returning a string, for convenience in tests and
// log output.
func MarshalString(v any) string {
	b, err := Marshal(v)
	if err != nil {
		return "!!error " + err.Error()
	}
	return string(b)
}

func encodeNode(b *strings.Builder, v any, indent int, inline bool) error {
	switch val := v.(type) {
	case nil:
		b.WriteString("null\n")
	case bool:
		fmt.Fprintf(b, "%t\n", val)
	case int:
		fmt.Fprintf(b, "%d\n", val)
	case int64:
		fmt.Fprintf(b, "%d\n", val)
	case float64:
		b.WriteString(formatFloat(val))
		b.WriteByte('\n')
	case string:
		b.WriteString(encodeString(val, indent))
		b.WriteByte('\n')
	case []any:
		return encodeSeq(b, val, indent, inline)
	case []string:
		anyv := make([]any, len(val))
		for i, s := range val {
			anyv[i] = s
		}
		return encodeSeq(b, anyv, indent, inline)
	case *Map:
		return encodeMap(b, val.Keys(), val.Value, indent, inline)
	case map[string]any:
		keys := make([]string, 0, len(val))
		for k := range val {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return encodeMap(b, keys, func(k string) any { return val[k] }, indent, inline)
	default:
		return fmt.Errorf("yamlx: cannot marshal %T", v)
	}
	return nil
}

func encodeSeq(b *strings.Builder, items []any, indent int, inline bool) error {
	if len(items) == 0 {
		b.WriteString("[]\n")
		return nil
	}
	if inline {
		b.WriteByte('\n')
	}
	pad := strings.Repeat("  ", indent)
	for _, it := range items {
		b.WriteString(pad)
		b.WriteString("- ")
		switch it.(type) {
		case []any, []string, *Map, map[string]any:
			// Nested collection: render compact starting on the same line
			// only for maps; sequences go on the next line.
			if isEmptyColl(it) {
				if err := encodeNode(b, it, indent+1, false); err != nil {
					return err
				}
				continue
			}
			if m, ok := collAsMap(it); ok {
				if err := encodeMapInlineFirst(b, m, indent+1); err != nil {
					return err
				}
				continue
			}
			b.WriteByte('\n')
			if err := encodeNode(b, it, indent+1, false); err != nil {
				return err
			}
		default:
			if err := encodeNode(b, it, indent+1, false); err != nil {
				return err
			}
		}
	}
	return nil
}

func isEmptyColl(v any) bool {
	switch val := v.(type) {
	case []any:
		return len(val) == 0
	case []string:
		return len(val) == 0
	case *Map:
		return val.Len() == 0
	case map[string]any:
		return len(val) == 0
	}
	return false
}

func collAsMap(v any) (*Map, bool) {
	switch val := v.(type) {
	case *Map:
		return val, true
	case map[string]any:
		m := NewMap()
		keys := make([]string, 0, len(val))
		for k := range val {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			m.Set(k, val[k])
		}
		return m, true
	}
	return nil, false
}

// encodeMapInlineFirst renders a map as a sequence item: the first key sits on
// the dash line; later keys are indented below it.
func encodeMapInlineFirst(b *strings.Builder, m *Map, indent int) error {
	pad := strings.Repeat("  ", indent)
	for i, k := range m.Keys() {
		if i > 0 {
			b.WriteString(pad)
		}
		if err := encodeEntry(b, k, m.Value(k), indent); err != nil {
			return err
		}
	}
	return nil
}

func encodeMap(b *strings.Builder, keys []string, get func(string) any, indent int, inline bool) error {
	if len(keys) == 0 {
		b.WriteString("{}\n")
		return nil
	}
	if inline {
		b.WriteByte('\n')
	}
	pad := strings.Repeat("  ", indent)
	for _, k := range keys {
		b.WriteString(pad)
		if err := encodeEntry(b, k, get(k), indent); err != nil {
			return err
		}
	}
	return nil
}

func encodeEntry(b *strings.Builder, k string, v any, indent int) error {
	b.WriteString(encodeKey(k))
	b.WriteByte(':')
	switch v.(type) {
	case []any, []string, *Map, map[string]any:
		if isEmptyColl(v) {
			b.WriteByte(' ')
			return encodeNode(b, v, indent+1, false)
		}
		return encodeNode(b, v, indent+1, true)
	case string:
		s := v.(string)
		if strings.Contains(s, "\n") {
			return encodeBlockString(b, s, indent+1)
		}
		b.WriteByte(' ')
		return encodeNode(b, v, indent, false)
	default:
		b.WriteByte(' ')
		return encodeNode(b, v, indent, false)
	}
}

func encodeBlockString(b *strings.Builder, s string, indent int) error {
	b.WriteString(" |")
	if !strings.HasSuffix(s, "\n") {
		b.WriteByte('-')
	}
	b.WriteByte('\n')
	pad := strings.Repeat("  ", indent)
	for _, ln := range strings.Split(strings.TrimSuffix(s, "\n"), "\n") {
		b.WriteString(pad)
		b.WriteString(ln)
		b.WriteByte('\n')
	}
	return nil
}

func encodeKey(k string) string {
	if needsQuoting(k) {
		return strconv.Quote(k)
	}
	return k
}

func encodeString(s string, indent int) string {
	if needsQuoting(s) {
		return strconv.Quote(s)
	}
	return s
}

// needsQuoting reports whether a plain rendering of s would not round-trip.
func needsQuoting(s string) bool {
	if s == "" {
		return true
	}
	if _, isStr := typedScalar(s).(string); !isStr {
		return true // would re-parse as null/bool/number
	}
	if strings.TrimSpace(s) != s {
		return true
	}
	switch s[0] {
	case '-', '?', ':', '#', '&', '*', '!', '|', '>', '\'', '"', '%', '@', '`', '[', ']', '{', '}', ',':
		return true
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 {
			return true
		}
		if c == ':' && (i+1 == len(s) || s[i+1] == ' ') {
			return true
		}
		if c == '#' && i > 0 && s[i-1] == ' ' {
			return true
		}
	}
	return false
}

func formatFloat(f float64) string {
	switch {
	case math.IsInf(f, 1):
		return ".inf"
	case math.IsInf(f, -1):
		return "-.inf"
	case math.IsNaN(f):
		return ".nan"
	}
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}
