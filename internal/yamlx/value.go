// Package yamlx implements the subset of YAML needed to load CWL documents,
// tool inputs, and TaPS-style Parsl configurations.
//
// The decoder understands block and flow collections, plain/quoted scalars
// with YAML 1.2 core-schema typing, literal (|) and folded (>) block scalars
// with chomping indicators, comments, anchors/aliases, and multi-document
// streams. Mappings decode into *Map, an insertion-order-preserving map,
// because CWL semantics (e.g. command-line binding tie-breaks) depend on
// document order.
package yamlx

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// Map is a YAML mapping that preserves key insertion order.
// The zero value is ready to use.
type Map struct {
	keys []string
	vals map[string]any
}

// NewMap returns an empty ordered mapping.
func NewMap() *Map { return &Map{vals: map[string]any{}} }

// NewMapCap returns an empty ordered mapping preallocated for n entries —
// use when the final size is known to avoid growth reallocations.
func NewMapCap(n int) *Map {
	if n < 0 {
		n = 0
	}
	return &Map{keys: make([]string, 0, n), vals: make(map[string]any, n)}
}

// MapOf builds a Map from alternating key/value pairs. It panics if given an
// odd number of arguments or a non-string key; it is intended for tests and
// literals.
func MapOf(pairs ...any) *Map {
	if len(pairs)%2 != 0 {
		panic("yamlx.MapOf: odd number of arguments")
	}
	m := NewMap()
	for i := 0; i < len(pairs); i += 2 {
		k, ok := pairs[i].(string)
		if !ok {
			panic("yamlx.MapOf: non-string key")
		}
		m.Set(k, pairs[i+1])
	}
	return m
}

// Len reports the number of entries.
func (m *Map) Len() int {
	if m == nil {
		return 0
	}
	return len(m.keys)
}

// Keys returns the keys in insertion order. The returned slice is shared;
// callers must not modify it.
func (m *Map) Keys() []string {
	if m == nil {
		return nil
	}
	return m.keys
}

// Get returns the value for key and whether it was present.
func (m *Map) Get(key string) (any, bool) {
	if m == nil || m.vals == nil {
		return nil, false
	}
	v, ok := m.vals[key]
	return v, ok
}

// Value returns the value for key, or nil when absent.
func (m *Map) Value(key string) any {
	v, _ := m.Get(key)
	return v
}

// Has reports whether key is present.
func (m *Map) Has(key string) bool {
	_, ok := m.Get(key)
	return ok
}

// Set stores key=value, appending the key if new.
func (m *Map) Set(key string, value any) {
	if m.vals == nil {
		m.vals = map[string]any{}
	}
	if _, ok := m.vals[key]; !ok {
		m.keys = append(m.keys, key)
	}
	m.vals[key] = value
}

// Delete removes key if present.
func (m *Map) Delete(key string) {
	if m == nil || m.vals == nil {
		return
	}
	if _, ok := m.vals[key]; !ok {
		return
	}
	delete(m.vals, key)
	for i, k := range m.keys {
		if k == key {
			m.keys = append(m.keys[:i], m.keys[i+1:]...)
			break
		}
	}
}

// Range calls fn for each entry in insertion order, stopping early if fn
// returns false.
func (m *Map) Range(fn func(key string, value any) bool) {
	if m == nil {
		return
	}
	for _, k := range m.keys {
		if !fn(k, m.vals[k]) {
			return
		}
	}
}

// Clone returns a shallow copy. Key order and capacity are preserved without
// the per-key lookups Set would pay, keeping the step-input hot path (one
// clone per scatter job) at three allocations regardless of size.
func (m *Map) Clone() *Map {
	if m == nil || len(m.keys) == 0 {
		return NewMap()
	}
	c := &Map{
		keys: make([]string, len(m.keys)),
		vals: make(map[string]any, len(m.keys)),
	}
	copy(c.keys, m.keys)
	for k, v := range m.vals {
		c.vals[k] = v
	}
	return c
}

// String returns a compact JSON-ish rendering, mostly for debugging.
func (m *Map) String() string {
	b, _ := m.MarshalJSON()
	return string(b)
}

// MarshalJSON renders the mapping as a JSON object in insertion order.
func (m *Map) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, k := range m.Keys() {
		if i > 0 {
			buf.WriteByte(',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		buf.Write(kb)
		buf.WriteByte(':')
		vb, err := json.Marshal(m.vals[k])
		if err != nil {
			return nil, err
		}
		buf.Write(vb)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// GetString returns the string value for key ("" when absent or non-string).
func (m *Map) GetString(key string) string {
	if s, ok := m.Value(key).(string); ok {
		return s
	}
	return ""
}

// GetMap returns the nested *Map for key, or nil.
func (m *Map) GetMap(key string) *Map {
	if sub, ok := m.Value(key).(*Map); ok {
		return sub
	}
	return nil
}

// GetSlice returns the []any for key, or nil.
func (m *Map) GetSlice(key string) []any {
	if s, ok := m.Value(key).([]any); ok {
		return s
	}
	return nil
}

// GetBool returns the bool value for key with a default.
func (m *Map) GetBool(key string, def bool) bool {
	if b, ok := m.Value(key).(bool); ok {
		return b
	}
	return def
}

// GetInt returns an integer value for key with a default, accepting int64 or
// float64 representations.
func (m *Map) GetInt(key string, def int) int {
	switch v := m.Value(key).(type) {
	case int64:
		return int(v)
	case int:
		return v
	case float64:
		return int(v)
	}
	return def
}

var (
	intRe   = regexp.MustCompile(`^[-+]?[0-9]+$`)
	hexRe   = regexp.MustCompile(`^0x[0-9a-fA-F]+$`)
	octRe   = regexp.MustCompile(`^0o[0-7]+$`)
	floatRe = regexp.MustCompile(`^[-+]?(\.[0-9]+|[0-9]+(\.[0-9]*)?)([eE][-+]?[0-9]+)?$`)
)

// typedScalar converts a plain (unquoted) scalar to its YAML 1.2 core-schema
// value: null, bool, int64, float64, or string.
func typedScalar(s string) any {
	switch s {
	case "", "~", "null", "Null", "NULL":
		return nil
	case "true", "True", "TRUE":
		return true
	case "false", "False", "FALSE":
		return false
	case ".inf", ".Inf", ".INF", "+.inf", "+.Inf", "+.INF":
		return math.Inf(1)
	case "-.inf", "-.Inf", "-.INF":
		return math.Inf(-1)
	case ".nan", ".NaN", ".NAN":
		return math.NaN()
	}
	if intRe.MatchString(s) {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			return n
		}
		// Out-of-range integers fall through to float.
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return f
		}
	}
	if hexRe.MatchString(s) {
		if n, err := strconv.ParseInt(s[2:], 16, 64); err == nil {
			return n
		}
	}
	if octRe.MatchString(s) {
		if n, err := strconv.ParseInt(s[2:], 8, 64); err == nil {
			return n
		}
	}
	if floatRe.MatchString(s) && strings.ContainsAny(s, ".eE") {
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return f
		}
	}
	return s
}

// Error describes a YAML syntax error with a 1-based line number.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("yaml: line %d: %s", e.Line, e.Msg)
	}
	return "yaml: " + e.Msg
}

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}
