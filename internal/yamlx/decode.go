package yamlx

import (
	"strings"
)

type line struct {
	num    int    // 1-based line number in the source
	indent int    // number of leading spaces
	text   string // content after the indent (may include trailing comment)
	blank  bool   // line is empty or whitespace-only
}

type parser struct {
	lines   []line
	pos     int
	anchors map[string]any
}

// Decode parses the first YAML document in data.
func Decode(data []byte) (any, error) {
	docs, err := DecodeAll(data)
	if err != nil {
		return nil, err
	}
	if len(docs) == 0 {
		return nil, nil
	}
	return docs[0], nil
}

// DecodeString is Decode on a string.
func DecodeString(s string) (any, error) { return Decode([]byte(s)) }

// DecodeAll parses every document in a YAML stream.
func DecodeAll(data []byte) ([]any, error) {
	lines, err := splitLines(string(data))
	if err != nil {
		return nil, err
	}
	var docs []any
	p := &parser{lines: lines, anchors: map[string]any{}}
	for {
		// Skip blanks, directives and bare document markers.
		for {
			p.skipBlank()
			if p.pos >= len(p.lines) {
				break
			}
			l := p.lines[p.pos]
			if l.indent == 0 && (strings.HasPrefix(l.text, "%") || l.text == "---" || l.text == "...") {
				p.pos++
				continue
			}
			break
		}
		if p.pos >= len(p.lines) {
			break
		}
		// "--- value" on one line.
		if l := p.lines[p.pos]; l.indent == 0 && strings.HasPrefix(l.text, "--- ") {
			p.lines[p.pos].text = strings.TrimSpace(l.text[4:])
			p.lines[p.pos].indent = 4
		}
		p.anchors = map[string]any{}
		v, err := p.parseNode(0)
		if err != nil {
			return nil, err
		}
		docs = append(docs, v)
		p.skipBlank()
		if p.pos < len(p.lines) {
			l := p.lines[p.pos]
			if l.indent == 0 && (l.text == "---" || strings.HasPrefix(l.text, "--- ") || l.text == "...") {
				continue
			}
			return nil, errf(l.num, "unexpected content %q after document", l.text)
		}
		break
	}
	return docs, nil
}

func splitLines(s string) ([]line, error) {
	s = strings.ReplaceAll(s, "\r\n", "\n")
	s = strings.ReplaceAll(s, "\r", "\n")
	raw := strings.Split(s, "\n")
	out := make([]line, 0, len(raw))
	for i, r := range raw {
		trimmed := strings.TrimRight(r, " \t")
		indent := 0
		for indent < len(trimmed) && trimmed[indent] == ' ' {
			indent++
		}
		if indent < len(trimmed) && trimmed[indent] == '\t' {
			return nil, errf(i+1, "tab character used for indentation")
		}
		text := trimmed[indent:]
		out = append(out, line{num: i + 1, indent: indent, text: text, blank: text == ""})
	}
	return out, nil
}

// skipBlank advances past blank lines and whole-line comments.
func (p *parser) skipBlank() {
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.blank || strings.HasPrefix(l.text, "#") {
			p.pos++
			continue
		}
		return
	}
}

func (p *parser) atDocBoundary() bool {
	if p.pos >= len(p.lines) {
		return true
	}
	l := p.lines[p.pos]
	return l.indent == 0 && (l.text == "---" || strings.HasPrefix(l.text, "--- ") || l.text == "...")
}

// parseNode parses the next node whose first line has indent >= minIndent.
func (p *parser) parseNode(minIndent int) (any, error) {
	p.skipBlank()
	if p.pos >= len(p.lines) || p.atDocBoundary() {
		return nil, nil
	}
	l := p.lines[p.pos]
	if l.indent < minIndent {
		return nil, nil
	}
	if isSeqItem(l.text) {
		return p.parseSequence(l.indent)
	}
	if _, _, ok := splitKey(l.text); ok {
		return p.parseMapping(l.indent)
	}
	// Scalar (or flow collection) node.
	p.pos++
	return p.parseValue(l.text, l.num, l.indent)
}

func isSeqItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

// splitKey splits "key: rest" at the first top-level colon. It returns ok=false
// when the line is not a mapping entry.
func splitKey(text string) (key, rest string, ok bool) {
	if strings.HasPrefix(text, "#") {
		return "", "", false
	}
	i := 0
	n := len(text)
	if n == 0 {
		return "", "", false
	}
	// Quoted key. Escapes are scanned forward ('\\' consumes the next byte)
	// so an escaped backslash before the closing quote — "k\\" — terminates
	// correctly; a backward text[i-1] check misreads it. Found by FuzzDecode.
	if text[0] == '"' || text[0] == '\'' {
		q := text[0]
		i = 1
		for i < n {
			if q == '\'' {
				if text[i] == '\'' {
					if i+1 < n && text[i+1] == '\'' {
						i += 2
						continue
					}
					break
				}
				i++
				continue
			}
			if text[i] == '\\' {
				i += 2
				continue
			}
			if text[i] == '"' {
				break
			}
			i++
		}
		if i >= n {
			return "", "", false
		}
		i++ // past closing quote
		j := i
		for j < n && text[j] == ' ' {
			j++
		}
		if j < n && text[j] == ':' && (j+1 == n || text[j+1] == ' ') {
			k, err := unquoteScalar(text[:i])
			if err != nil {
				return "", "", false
			}
			ks, _ := k.(string)
			return ks, strings.TrimSpace(text[j+1:]), true
		}
		return "", "", false
	}
	depth := 0
	for ; i < n; i++ {
		switch text[i] {
		case '[', '{':
			depth++
		case ']', '}':
			depth--
		case '"', '\'':
			q := text[i]
			i++
			for i < n && text[i] != q {
				if q == '"' && text[i] == '\\' {
					i++
				}
				i++
			}
			if i >= n {
				return "", "", false
			}
		case '#':
			if i > 0 && text[i-1] == ' ' {
				return "", "", false
			}
		case ':':
			if depth == 0 && (i+1 == n || text[i+1] == ' ') {
				key = strings.TrimSpace(text[:i])
				if key == "" {
					return "", "", false
				}
				return key, strings.TrimSpace(text[i+1:]), true
			}
		}
	}
	return "", "", false
}

func (p *parser) parseMapping(indent int) (any, error) {
	m := NewMap()
	for {
		p.skipBlank()
		if p.pos >= len(p.lines) || p.atDocBoundary() {
			break
		}
		l := p.lines[p.pos]
		if l.indent != indent {
			if l.indent > indent {
				return nil, errf(l.num, "unexpected indentation (%d > %d)", l.indent, indent)
			}
			break
		}
		key, rest, ok := splitKey(l.text)
		if !ok {
			if isSeqItem(l.text) {
				break
			}
			return nil, errf(l.num, "expected 'key: value' mapping entry, got %q", l.text)
		}
		p.pos++
		val, err := p.parseEntryValue(rest, l.num, indent)
		if err != nil {
			return nil, err
		}
		if key == "<<" {
			// Merge key: fold the referenced mapping(s) in.
			mergeInto(m, val)
			continue
		}
		m.Set(key, val)
	}
	return m, nil
}

func mergeInto(m *Map, val any) {
	switch v := val.(type) {
	case *Map:
		v.Range(func(k string, vv any) bool {
			if !m.Has(k) {
				m.Set(k, vv)
			}
			return true
		})
	case []any:
		for _, item := range v {
			mergeInto(m, item)
		}
	}
}

// parseEntryValue parses the value part of a mapping entry or sequence item
// whose inline remainder is rest. ownerIndent is the indent of the owning line.
func (p *parser) parseEntryValue(rest string, lnum, ownerIndent int) (any, error) {
	// Anchor definition.
	if name, after, ok := cutAnchor(rest, '&'); ok {
		v, err := p.parseEntryValue(after, lnum, ownerIndent)
		if err != nil {
			return nil, err
		}
		p.anchors[name] = v
		return v, nil
	}
	// Tag: record whether it forces string, then continue with remainder.
	forceStr := false
	if strings.HasPrefix(rest, "!") {
		var tag string
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			tag, rest = rest, ""
		} else {
			tag, rest = rest[:sp], strings.TrimSpace(rest[sp+1:])
		}
		if tag == "!!str" {
			forceStr = true
		}
	}
	if rest == "" {
		v, err := p.parseChild(ownerIndent)
		if err != nil {
			return nil, err
		}
		return v, nil
	}
	if h, ok := blockHeader(rest); ok {
		return p.parseBlockScalar(h, ownerIndent)
	}
	v, err := p.parseValue(rest, lnum, ownerIndent)
	if err != nil {
		return nil, err
	}
	if forceStr {
		if _, isStr := v.(string); !isStr {
			return plainString(rest), nil
		}
	}
	return v, nil
}

func plainString(s string) string {
	if i := commentIndex(s); i >= 0 {
		s = strings.TrimRight(s[:i], " ")
	}
	return s
}

// parseChild parses the node nested under a mapping key or sequence dash at
// ownerIndent. A block sequence may sit at the same indent as its key.
func (p *parser) parseChild(ownerIndent int) (any, error) {
	p.skipBlank()
	if p.pos >= len(p.lines) || p.atDocBoundary() {
		return nil, nil
	}
	l := p.lines[p.pos]
	if l.indent > ownerIndent {
		return p.parseNode(ownerIndent + 1)
	}
	if l.indent == ownerIndent && isSeqItem(l.text) {
		return p.parseSequence(ownerIndent)
	}
	return nil, nil
}

func (p *parser) parseSequence(indent int) (any, error) {
	items := []any{}
	for {
		p.skipBlank()
		if p.pos >= len(p.lines) || p.atDocBoundary() {
			break
		}
		l := p.lines[p.pos]
		if l.indent != indent || !isSeqItem(l.text) {
			break
		}
		rest := strings.TrimSpace(l.text[1:])
		if rest == "" {
			p.pos++
			item, err := p.parseChild(indent)
			if err != nil {
				return nil, err
			}
			items = append(items, item)
			continue
		}
		// Rewrite the line in place so its content starts at the rest's
		// column; then any block structure (compact mapping, nested
		// sequence) parses naturally.
		restCol := indent + (len(l.text) - len(rest))
		p.lines[p.pos].indent = restCol
		p.lines[p.pos].text = rest
		item, err := p.parseSeqItemNode(restCol, indent)
		if err != nil {
			return nil, err
		}
		items = append(items, item)
	}
	return items, nil
}

// parseSeqItemNode parses a sequence item whose inline content begins at
// itemIndent (the dash sits at dashIndent < itemIndent).
func (p *parser) parseSeqItemNode(itemIndent, dashIndent int) (any, error) {
	l := p.lines[p.pos]
	if isSeqItem(l.text) {
		return p.parseSequence(itemIndent)
	}
	if _, _, ok := splitKey(l.text); ok {
		return p.parseMapping(itemIndent)
	}
	if h, ok := blockHeader(l.text); ok {
		p.pos++
		return p.parseBlockScalar(h, dashIndent)
	}
	p.pos++
	return p.parseValue(l.text, l.num, dashIndent)
}

func cutAnchor(s string, marker byte) (name, rest string, ok bool) {
	if len(s) < 2 || s[0] != marker {
		return "", "", false
	}
	i := 1
	for i < len(s) && s[i] != ' ' {
		i++
	}
	name = s[1:i]
	if name == "" {
		return "", "", false
	}
	return name, strings.TrimSpace(s[i:]), true
}

type blockHdr struct {
	folded  bool // '>' vs '|'
	chomp   byte // 0 (clip), '-' (strip), '+' (keep)
	indent  int  // explicit indentation indicator, 0 = auto
	comment bool
}

// blockHeader recognizes block scalar headers such as "|", ">-", "|2+".
func blockHeader(s string) (blockHdr, bool) {
	if s == "" || (s[0] != '|' && s[0] != '>') {
		return blockHdr{}, false
	}
	h := blockHdr{folded: s[0] == '>'}
	rest := s[1:]
	for rest != "" {
		c := rest[0]
		switch {
		case c == '-' || c == '+':
			if h.chomp != 0 {
				return blockHdr{}, false
			}
			h.chomp = c
		case c >= '1' && c <= '9':
			if h.indent != 0 {
				return blockHdr{}, false
			}
			h.indent = int(c - '0')
		case c == ' ':
			rest = strings.TrimLeft(rest, " ")
			if rest == "" || rest[0] == '#' {
				return h, true
			}
			return blockHdr{}, false
		default:
			return blockHdr{}, false
		}
		rest = rest[1:]
	}
	return h, true
}

func (p *parser) parseBlockScalar(h blockHdr, ownerIndent int) (any, error) {
	// Collect raw body lines: all lines more indented than ownerIndent, plus
	// interior blank lines.
	var body []line
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.blank {
			body = append(body, l)
			p.pos++
			continue
		}
		if l.indent <= ownerIndent {
			break
		}
		body = append(body, l)
		p.pos++
	}
	// Trim trailing blank lines out of the body (kept for chomp '+').
	trailing := 0
	for len(body) > 0 && body[len(body)-1].blank {
		trailing++
		body = body[:len(body)-1]
	}
	blockIndent := -1
	if h.indent > 0 {
		blockIndent = ownerIndent + h.indent
	} else {
		for _, l := range body {
			if !l.blank {
				blockIndent = l.indent
				break
			}
		}
	}
	if blockIndent < 0 { // empty scalar
		switch h.chomp {
		case '+':
			return strings.Repeat("\n", trailing), nil
		default:
			return "", nil
		}
	}
	var lines []string
	for _, l := range body {
		if l.blank {
			lines = append(lines, "")
			continue
		}
		pad := ""
		if l.indent > blockIndent {
			pad = strings.Repeat(" ", l.indent-blockIndent)
		}
		lines = append(lines, pad+l.text)
	}
	var text string
	if !h.folded {
		text = strings.Join(lines, "\n")
	} else {
		var b strings.Builder
		prevBlank := true
		prevIndented := false
		for i, ln := range lines {
			indented := strings.HasPrefix(ln, " ")
			switch {
			case i == 0:
				b.WriteString(ln)
			case ln == "":
				b.WriteByte('\n')
			case prevBlank || prevIndented || indented:
				if !prevBlank {
					b.WriteByte('\n')
				}
				b.WriteString(ln)
			default:
				b.WriteByte(' ')
				b.WriteString(ln)
			}
			prevBlank = ln == ""
			prevIndented = indented
		}
		text = b.String()
	}
	switch h.chomp {
	case '-':
		text = strings.TrimRight(text, "\n")
	case '+':
		text += strings.Repeat("\n", trailing+1)
	default:
		text = strings.TrimRight(text, "\n") + "\n"
		if strings.TrimRight(text, "\n") == "" {
			text = ""
		}
	}
	return text, nil
}

// commentIndex returns the byte index of an inline comment (" #") that is
// outside quotes, or -1.
func commentIndex(s string) int {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS && (i == 0 || s[i-1] != '\\') {
				inD = !inD
			}
		case '#':
			if !inS && !inD && i > 0 && (s[i-1] == ' ' || s[i-1] == '\t') {
				return i
			}
			if !inS && !inD && i == 0 {
				return 0
			}
		}
	}
	return -1
}

// parseValue parses an inline value: alias, flow collection, quoted scalar, or
// plain scalar with possible multi-line continuation.
func (p *parser) parseValue(s string, lnum, ownerIndent int) (any, error) {
	s = strings.TrimSpace(s)
	if name, after, ok := cutAnchor(s, '&'); ok {
		v, err := p.parseValue(after, lnum, ownerIndent)
		if err != nil {
			return nil, err
		}
		p.anchors[name] = v
		return v, nil
	}
	if name, after, ok := cutAnchor(s, '*'); ok && commentOnly(after) {
		if v, found := p.anchors[name]; found {
			return v, nil
		}
		return nil, errf(lnum, "unknown anchor %q", name)
	}
	if s != "" && (s[0] == '[' || s[0] == '{') {
		full, err := p.collectFlow(s, lnum)
		if err != nil {
			return nil, err
		}
		v, rest, err := p.parseFlow(full, lnum)
		if err != nil {
			return nil, err
		}
		rest = strings.TrimSpace(rest)
		if rest != "" && !strings.HasPrefix(rest, "#") {
			return nil, errf(lnum, "unexpected trailing content %q after flow value", rest)
		}
		return v, nil
	}
	if s != "" && (s[0] == '"' || s[0] == '\'') {
		end, err := quotedEnd(s, 0)
		if err != nil {
			return nil, errf(lnum, "%v", err)
		}
		tail := strings.TrimSpace(s[end+1:])
		if tail != "" && !strings.HasPrefix(tail, "#") {
			return nil, errf(lnum, "unexpected content %q after quoted scalar", tail)
		}
		return unquoteScalar(s[:end+1])
	}
	// Plain scalar, possibly continued on more-indented lines.
	text := plainString(s)
	for {
		save := p.pos
		p.skipBlank()
		if p.pos >= len(p.lines) || p.atDocBoundary() {
			p.pos = save
			break
		}
		l := p.lines[p.pos]
		if l.indent <= ownerIndent || isSeqItem(l.text) {
			p.pos = save
			break
		}
		if _, _, isKey := splitKey(l.text); isKey {
			p.pos = save
			break
		}
		text += " " + plainString(l.text)
		p.pos++
	}
	return typedScalar(strings.TrimSpace(text)), nil
}

func commentOnly(s string) bool {
	s = strings.TrimSpace(s)
	return s == "" || strings.HasPrefix(s, "#")
}

// collectFlow gathers a flow collection that may span multiple lines, with
// comments stripped, until brackets balance.
func (p *parser) collectFlow(first string, lnum int) (string, error) {
	var b strings.Builder
	cur := first
	for {
		if i := commentIndex(cur); i >= 0 {
			cur = strings.TrimRight(cur[:i], " ")
		}
		b.WriteString(cur)
		if flowBalanced(b.String()) {
			return b.String(), nil
		}
		if p.pos >= len(p.lines) {
			return "", errf(lnum, "unterminated flow collection")
		}
		b.WriteByte(' ')
		cur = p.lines[p.pos].text
		p.pos++
	}
}

func flowBalanced(s string) bool {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[', '{':
			depth++
		case ']', '}':
			depth--
		case '"', '\'':
			q := s[i]
			i++
			for i < len(s) && s[i] != q {
				if q == '"' && s[i] == '\\' {
					i++
				}
				i++
			}
		}
	}
	return depth <= 0
}

// parseFlow parses a flow value at the start of s and returns the remainder.
func (p *parser) parseFlow(s string, lnum int) (any, string, error) {
	s = strings.TrimLeft(s, " ")
	if s == "" {
		return nil, "", errf(lnum, "empty flow value")
	}
	switch s[0] {
	case '[':
		s = strings.TrimLeft(s[1:], " ")
		items := []any{}
		for {
			if s == "" {
				return nil, "", errf(lnum, "unterminated flow sequence")
			}
			if s[0] == ']' {
				return items, s[1:], nil
			}
			v, rest, err := p.parseFlow(s, lnum)
			if err != nil {
				return nil, "", err
			}
			items = append(items, v)
			s = strings.TrimLeft(rest, " ")
			if s != "" && s[0] == ',' {
				s = strings.TrimLeft(s[1:], " ")
			}
		}
	case '{':
		s = strings.TrimLeft(s[1:], " ")
		m := NewMap()
		for {
			if s == "" {
				return nil, "", errf(lnum, "unterminated flow mapping")
			}
			if s[0] == '}' {
				return m, s[1:], nil
			}
			// Key: quoted or plain up to ':'.
			var key string
			if s[0] == '"' || s[0] == '\'' {
				end, err := quotedEnd(s, 0)
				if err != nil {
					return nil, "", errf(lnum, "%v", err)
				}
				kv, err := unquoteScalar(s[:end+1])
				if err != nil {
					return nil, "", errf(lnum, "%v", err)
				}
				key, _ = kv.(string)
				s = strings.TrimLeft(s[end+1:], " ")
			} else {
				ci := strings.IndexAny(s, ":,}")
				if ci < 0 || s[ci] != ':' {
					return nil, "", errf(lnum, "missing ':' in flow mapping near %q", s)
				}
				key = strings.TrimSpace(s[:ci])
				s = s[ci:]
			}
			if s == "" || s[0] != ':' {
				return nil, "", errf(lnum, "missing ':' in flow mapping")
			}
			s = strings.TrimLeft(s[1:], " ")
			if s != "" && (s[0] == ',' || s[0] == '}') {
				m.Set(key, nil)
			} else {
				v, rest, err := p.parseFlow(s, lnum)
				if err != nil {
					return nil, "", err
				}
				m.Set(key, v)
				s = strings.TrimLeft(rest, " ")
			}
			if s != "" && s[0] == ',' {
				s = strings.TrimLeft(s[1:], " ")
			}
		}
	case '"', '\'':
		end, err := quotedEnd(s, 0)
		if err != nil {
			return nil, "", errf(lnum, "%v", err)
		}
		v, err := unquoteScalar(s[:end+1])
		if err != nil {
			return nil, "", errf(lnum, "%v", err)
		}
		return v, s[end+1:], nil
	case '*':
		i := 1
		for i < len(s) && s[i] != ',' && s[i] != ']' && s[i] != '}' && s[i] != ' ' {
			i++
		}
		name := s[1:i]
		v, ok := p.anchors[name]
		if !ok {
			return nil, "", errf(lnum, "unknown anchor %q", name)
		}
		return v, s[i:], nil
	default:
		i := 0
		for i < len(s) && s[i] != ',' && s[i] != ']' && s[i] != '}' {
			i++
		}
		if i == 0 {
			// s starts with a terminator the caller did not consume (a stray
			// '}' inside [...], a leading ','): returning a zero-length
			// scalar would hand the caller back its own input and loop
			// forever. Found by FuzzDecode.
			return nil, "", errf(lnum, "unexpected %q in flow value", s[0])
		}
		return typedScalar(strings.TrimSpace(s[:i])), s[i:], nil
	}
}

// quotedEnd returns the index of the closing quote of the quoted scalar
// starting at s[start].
func quotedEnd(s string, start int) (int, error) {
	q := s[start]
	i := start + 1
	for i < len(s) {
		if q == '\'' {
			if s[i] == '\'' {
				if i+1 < len(s) && s[i+1] == '\'' {
					i += 2
					continue
				}
				return i, nil
			}
		} else {
			if s[i] == '\\' {
				i += 2
				continue
			}
			if s[i] == '"' {
				return i, nil
			}
		}
		i++
	}
	return 0, &Error{Msg: "unterminated quoted scalar"}
}

// unquoteScalar interprets a single- or double-quoted YAML scalar.
func unquoteScalar(s string) (any, error) {
	if len(s) < 2 {
		return s, nil
	}
	q := s[0]
	body := s[1 : len(s)-1]
	if q == '\'' {
		return strings.ReplaceAll(body, "''", "'"), nil
	}
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return nil, &Error{Msg: "dangling escape in double-quoted scalar"}
		}
		switch body[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case '0':
			b.WriteByte(0)
		case 'a':
			b.WriteByte(7)
		case 'b':
			b.WriteByte(8)
		case 'f':
			b.WriteByte(12)
		case 'v':
			b.WriteByte(11)
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case '/':
			b.WriteByte('/')
		case 'x':
			if i+2 >= len(body) {
				return nil, &Error{Msg: "truncated \\x escape"}
			}
			var n int
			if _, err := fmtSscanfHex(body[i+1:i+3], &n); err != nil {
				return nil, &Error{Msg: "bad \\x escape"}
			}
			b.WriteByte(byte(n))
			i += 2
		case 'u':
			if i+4 >= len(body) {
				return nil, &Error{Msg: "truncated \\u escape"}
			}
			var n int
			if _, err := fmtSscanfHex(body[i+1:i+5], &n); err != nil {
				return nil, &Error{Msg: "bad \\u escape"}
			}
			b.WriteRune(rune(n))
			i += 4
		case 'U':
			if i+8 >= len(body) {
				return nil, &Error{Msg: "truncated \\U escape"}
			}
			var n int
			if _, err := fmtSscanfHex(body[i+1:i+9], &n); err != nil {
				return nil, &Error{Msg: "bad \\U escape"}
			}
			b.WriteRune(rune(n))
			i += 8
		default:
			return nil, &Error{Msg: "unknown escape \\" + string(body[i])}
		}
	}
	return b.String(), nil
}

func fmtSscanfHex(s string, n *int) (int, error) {
	v := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			v = v*16 + int(c-'0')
		case c >= 'a' && c <= 'f':
			v = v*16 + int(c-'a'+10)
		case c >= 'A' && c <= 'F':
			v = v*16 + int(c-'A'+10)
		default:
			return 0, &Error{Msg: "bad hex digit"}
		}
	}
	*n = v
	return len(s), nil
}
