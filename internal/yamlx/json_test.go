package yamlx

import (
	"reflect"
	"testing"
)

func TestDecodeJSONShapes(t *testing.T) {
	v, err := DecodeJSON([]byte(`{"b": 1, "a": {"nested": [1, 2.5, "x", true, null]}}`))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := v.(*Map)
	if !ok {
		t.Fatalf("got %T, want *Map", v)
	}
	if got := m.Keys(); !reflect.DeepEqual(got, []string{"b", "a"}) {
		t.Errorf("key order = %v", got)
	}
	if n, ok := m.Value("b").(int64); !ok || n != 1 {
		t.Errorf("integer decoded as %T %v, want int64 1", m.Value("b"), m.Value("b"))
	}
	nested := m.GetMap("a").GetSlice("nested")
	want := []any{int64(1), 2.5, "x", true, nil}
	if !reflect.DeepEqual(nested, want) {
		t.Errorf("nested = %#v, want %#v", nested, want)
	}
}

func TestDecodeJSONScalars(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want any
	}{
		{`"hi"`, "hi"},
		{`42`, int64(42)},
		{`4.5`, 4.5},
		{`true`, true},
		{`null`, nil},
		{`[]`, []any(nil)},
	} {
		v, err := DecodeJSON([]byte(tc.in))
		if err != nil {
			t.Errorf("%s: %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(v, tc.want) {
			t.Errorf("%s = %#v, want %#v", tc.in, v, tc.want)
		}
	}
}

func TestDecodeJSONErrors(t *testing.T) {
	for _, in := range []string{``, `{`, `{"a": 1} trailing`, `nope`} {
		if _, err := DecodeJSON([]byte(in)); err == nil {
			t.Errorf("%q: expected error", in)
		}
	}
}

func TestDecodeJSONRoundTripsMarshal(t *testing.T) {
	m := MapOf("z", int64(1), "a", MapOf("k", "v"), "list", []any{int64(1), "two"})
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := back.(*Map).MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Errorf("round trip changed JSON:\n  %s\n  %s", data, data2)
	}
}
