package yamlx

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// DecodeJSON parses one JSON value into the same shapes the YAML decoder
// produces: objects become *Map (preserving key order — CWL binding
// tie-breaks depend on it), arrays []any, integers int64, other numbers
// float64, plus string/bool/nil. It is the JSON twin of Decode, used for
// service request bodies and the persistence layer's snapshots.
func DecodeJSON(data []byte) (any, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	v, err := decodeJSONValue(dec)
	if err != nil {
		return nil, err
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, errors.New("trailing data after JSON value")
	}
	return v, nil
}

func decodeJSONValue(dec *json.Decoder) (any, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, err
	}
	switch t := tok.(type) {
	case json.Delim:
		switch t {
		case '{':
			m := NewMap()
			for dec.More() {
				keyTok, err := dec.Token()
				if err != nil {
					return nil, err
				}
				key, _ := keyTok.(string)
				val, err := decodeJSONValue(dec)
				if err != nil {
					return nil, err
				}
				m.Set(key, val)
			}
			if _, err := dec.Token(); err != nil { // consume '}'
				return nil, err
			}
			return m, nil
		case '[':
			var list []any
			for dec.More() {
				val, err := decodeJSONValue(dec)
				if err != nil {
					return nil, err
				}
				list = append(list, val)
			}
			if _, err := dec.Token(); err != nil { // consume ']'
				return nil, err
			}
			return list, nil
		}
		return nil, fmt.Errorf("unexpected delimiter %v", t)
	case json.Number:
		if n, err := t.Int64(); err == nil {
			return n, nil
		}
		return t.Float64()
	default:
		return tok, nil // string, bool, nil
	}
}
