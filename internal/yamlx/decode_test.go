package yamlx

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// mustDecode decodes s or fails the test.
func mustDecode(t *testing.T, s string) any {
	t.Helper()
	v, err := DecodeString(s)
	if err != nil {
		t.Fatalf("Decode(%q): %v", s, err)
	}
	return v
}

// jsonOf renders a decoded value canonically for comparison.
func jsonOf(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("json.Marshal: %v", err)
	}
	return string(b)
}

func TestScalarTyping(t *testing.T) {
	cases := []struct {
		in   string
		want any
	}{
		{"hello", "hello"},
		{"42", int64(42)},
		{"-7", int64(-7)},
		{"+3", int64(3)},
		{"3.14", 3.14},
		{"2.5e3", 2500.0},
		{"0x1F", int64(31)},
		{"0o17", int64(15)},
		{"true", true},
		{"True", true},
		{"false", false},
		{"null", nil},
		{"~", nil},
		{"", nil},
		{".inf", math.Inf(1)},
		{"-.inf", math.Inf(-1)},
		{"yes", "yes"}, // core schema: not a bool
		{"no", "no"},   // core schema: not a bool
		{"1.2.3", "1.2.3"},
		{"12abc", "12abc"},
		{"-", "-"},
	}
	for _, c := range cases {
		got := typedScalar(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("typedScalar(%q) = %#v (%T), want %#v", c.in, got, got, c.want)
		}
	}
}

func TestScalarNaN(t *testing.T) {
	got := typedScalar(".nan")
	f, ok := got.(float64)
	if !ok || !math.IsNaN(f) {
		t.Fatalf("typedScalar(.nan) = %#v, want NaN", got)
	}
}

func TestSimpleMapping(t *testing.T) {
	v := mustDecode(t, "a: 1\nb: two\nc: true\n")
	m, ok := v.(*Map)
	if !ok {
		t.Fatalf("got %T, want *Map", v)
	}
	if got := m.Value("a"); got != int64(1) {
		t.Errorf("a = %#v", got)
	}
	if got := m.Value("b"); got != "two" {
		t.Errorf("b = %#v", got)
	}
	if got := m.Value("c"); got != true {
		t.Errorf("c = %#v", got)
	}
	if !reflect.DeepEqual(m.Keys(), []string{"a", "b", "c"}) {
		t.Errorf("keys = %v", m.Keys())
	}
}

func TestNestedMapping(t *testing.T) {
	v := mustDecode(t, `
outer:
  inner:
    deep: value
  sibling: 2
top: 3
`)
	want := `{"outer":{"inner":{"deep":"value"},"sibling":2},"top":3}`
	if got := jsonOf(t, v); got != want {
		t.Errorf("got %s want %s", got, want)
	}
}

func TestSequences(t *testing.T) {
	v := mustDecode(t, `
- one
- 2
- true
- null
`)
	want := `["one",2,true,null]`
	if got := jsonOf(t, v); got != want {
		t.Errorf("got %s want %s", got, want)
	}
}

func TestSequenceOfMappings(t *testing.T) {
	v := mustDecode(t, `
steps:
  - name: resize
    cores: 1
  - name: blur
    cores: 2
`)
	want := `{"steps":[{"name":"resize","cores":1},{"name":"blur","cores":2}]}`
	if got := jsonOf(t, v); got != want {
		t.Errorf("got %s want %s", got, want)
	}
}

func TestSequenceAtKeyIndent(t *testing.T) {
	// YAML allows a block sequence at the same indent as its key.
	v := mustDecode(t, `
requirements:
- class: InlineJavascriptRequirement
- class: ScatterFeatureRequirement
`)
	want := `{"requirements":[{"class":"InlineJavascriptRequirement"},{"class":"ScatterFeatureRequirement"}]}`
	if got := jsonOf(t, v); got != want {
		t.Errorf("got %s want %s", got, want)
	}
}

func TestNestedSequences(t *testing.T) {
	v := mustDecode(t, `
- - a
  - b
- - c
`)
	want := `[["a","b"],["c"]]`
	if got := jsonOf(t, v); got != want {
		t.Errorf("got %s want %s", got, want)
	}
}

func TestSequenceWithNestedBlock(t *testing.T) {
	v := mustDecode(t, `
-
  name: x
  v: 1
- scalar
`)
	want := `[{"name":"x","v":1},"scalar"]`
	if got := jsonOf(t, v); got != want {
		t.Errorf("got %s want %s", got, want)
	}
}

func TestFlowCollections(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a: [1, 2, 3]", `{"a":[1,2,3]}`},
		{"a: []", `{"a":[]}`},
		{"a: {}", `{"a":{}}`},
		{"a: {x: 1, y: two}", `{"a":{"x":1,"y":"two"}}`},
		{"a: [one, [2, 3], {k: v}]", `{"a":["one",[2,3],{"k":"v"}]}`},
		{`a: ["q, uo", 'ted']`, `{"a":["q, uo","ted"]}`},
		{"a: [1, 2,]", `{"a":[1,2]}`},
	}
	for _, c := range cases {
		v := mustDecode(t, c.in)
		if got := jsonOf(t, v); got != c.want {
			t.Errorf("Decode(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestMultilineFlow(t *testing.T) {
	v := mustDecode(t, `
args:
  - [a,
     b,
     c]
`)
	want := `{"args":[["a","b","c"]]}`
	if got := jsonOf(t, v); got != want {
		t.Errorf("got %s want %s", got, want)
	}
}

func TestQuotedScalars(t *testing.T) {
	cases := []struct {
		in   string
		want any
	}{
		{`a: "hello world"`, "hello world"},
		{`a: "line1\nline2"`, "line1\nline2"},
		{`a: "tab\there"`, "tab\there"},
		{`a: "unié"`, "unié"},
		{`a: 'single'`, "single"},
		{`a: 'it''s'`, "it's"},
		{`a: "42"`, "42"}, // quoted numbers stay strings
		{`a: "true"`, "true"},
		{`a: ""`, ""},
	}
	for _, c := range cases {
		m := mustDecode(t, c.in).(*Map)
		if got := m.Value("a"); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Decode(%q)[a] = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestComments(t *testing.T) {
	v := mustDecode(t, `
# leading comment
a: 1 # trailing comment
# interior
b: "val # not a comment"
c: [1, 2] # after flow
`)
	want := `{"a":1,"b":"val # not a comment","c":[1,2]}`
	if got := jsonOf(t, v); got != want {
		t.Errorf("got %s want %s", got, want)
	}
}

func TestLiteralBlockScalar(t *testing.T) {
	m := mustDecode(t, `
script: |
  def f(x):
      return x + 1

  print(f(1))
after: 1
`).(*Map)
	want := "def f(x):\n    return x + 1\n\nprint(f(1))\n"
	if got := m.Value("script"); got != want {
		t.Errorf("script = %q, want %q", got, want)
	}
	if m.Value("after") != int64(1) {
		t.Errorf("after = %#v", m.Value("after"))
	}
}

func TestLiteralBlockChomping(t *testing.T) {
	keep := mustDecode(t, "a: |+\n  x\n\n\nb: 1\n").(*Map)
	if got := keep.Value("a"); got != "x\n\n\n" {
		t.Errorf("keep = %q", got)
	}
	strip := mustDecode(t, "a: |-\n  x\n\nb: 1\n").(*Map)
	if got := strip.Value("a"); got != "x" {
		t.Errorf("strip = %q", got)
	}
	clip := mustDecode(t, "a: |\n  x\n\nb: 1\n").(*Map)
	if got := clip.Value("a"); got != "x\n" {
		t.Errorf("clip = %q", got)
	}
}

func TestFoldedBlockScalar(t *testing.T) {
	m := mustDecode(t, `
doc: >
  one two
  three

  new para
`).(*Map)
	want := "one two three\nnew para\n"
	if got := m.Value("doc"); got != want {
		t.Errorf("doc = %q, want %q", got, want)
	}
}

func TestBlockScalarDeeperIndent(t *testing.T) {
	m := mustDecode(t, "code: |\n  if x:\n    y = 1\n").(*Map)
	want := "if x:\n  y = 1\n"
	if got := m.Value("code"); got != want {
		t.Errorf("code = %q, want %q", got, want)
	}
}

func TestBlockScalarInSequence(t *testing.T) {
	m := mustDecode(t, `
expressionLib:
  - |
    def f(x):
        return x
`).(*Map)
	lib := m.GetSlice("expressionLib")
	if len(lib) != 1 {
		t.Fatalf("lib = %#v", lib)
	}
	want := "def f(x):\n    return x\n"
	if lib[0] != want {
		t.Errorf("lib[0] = %q, want %q", lib[0], want)
	}
}

func TestAnchorsAndAliases(t *testing.T) {
	v := mustDecode(t, `
base: &b
  x: 1
  y: 2
ref: *b
scalar: &s hello
use: *s
`)
	want := `{"base":{"x":1,"y":2},"ref":{"x":1,"y":2},"scalar":"hello","use":"hello"}`
	if got := jsonOf(t, v); got != want {
		t.Errorf("got %s want %s", got, want)
	}
}

func TestMergeKey(t *testing.T) {
	v := mustDecode(t, `
defaults: &d
  cores: 4
  mem: 8
job:
  <<: *d
  cores: 8
`)
	m := v.(*Map).GetMap("job")
	if m.GetInt("cores", 0) != 8 {
		t.Errorf("cores = %v", m.Value("cores"))
	}
	if m.GetInt("mem", 0) != 8 {
		t.Errorf("mem = %v", m.Value("mem"))
	}
}

func TestMultiDocument(t *testing.T) {
	docs, err := DecodeAll([]byte("---\na: 1\n---\nb: 2\n...\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("got %d docs", len(docs))
	}
	if docs[0].(*Map).Value("a") != int64(1) || docs[1].(*Map).Value("b") != int64(2) {
		t.Errorf("docs = %v %v", docs[0], docs[1])
	}
}

func TestEmptyValues(t *testing.T) {
	v := mustDecode(t, "a:\nb: 1\n")
	m := v.(*Map)
	if got, ok := m.Get("a"); !ok || got != nil {
		t.Errorf("a = %#v ok=%v", got, ok)
	}
}

func TestPlainMultilineScalar(t *testing.T) {
	m := mustDecode(t, `
doc: This CWL workflow processes images by
  performing a series of tasks
next: 1
`).(*Map)
	want := "This CWL workflow processes images by performing a series of tasks"
	if got := m.Value("doc"); got != want {
		t.Errorf("doc = %q", got)
	}
}

func TestQuotedKeys(t *testing.T) {
	m := mustDecode(t, `"key: with colon": v1
'another key': v2
`).(*Map)
	if m.Value("key: with colon") != "v1" {
		t.Errorf("quoted key 1 = %#v (keys %v)", m.Value("key: with colon"), m.Keys())
	}
	if m.Value("another key") != "v2" {
		t.Errorf("quoted key 2 = %#v", m.Value("another key"))
	}
}

func TestURLValueNotSplit(t *testing.T) {
	m := mustDecode(t, "url: https://example.org/x\n").(*Map)
	if m.Value("url") != "https://example.org/x" {
		t.Errorf("url = %#v", m.Value("url"))
	}
}

func TestCWLDocument(t *testing.T) {
	// The echo tool from the paper's Listing 1.
	v := mustDecode(t, `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
inputs:
  message:
    type: string
    default: "Hello World"
    inputBinding:
      position: 1
outputs:
  output:
    type: stdout
stdout: hello.txt
`)
	m := v.(*Map)
	if m.GetString("cwlVersion") != "v1.2" {
		t.Errorf("cwlVersion = %v", m.Value("cwlVersion"))
	}
	msg := m.GetMap("inputs").GetMap("message")
	if msg.GetString("type") != "string" {
		t.Errorf("type = %v", msg.Value("type"))
	}
	if msg.GetString("default") != "Hello World" {
		t.Errorf("default = %v", msg.Value("default"))
	}
	if msg.GetMap("inputBinding").GetInt("position", -1) != 1 {
		t.Errorf("position = %v", msg.GetMap("inputBinding").Value("position"))
	}
	if m.GetString("stdout") != "hello.txt" {
		t.Errorf("stdout = %v", m.Value("stdout"))
	}
}

func TestWorkflowDocument(t *testing.T) {
	// Condensed version of the paper's Listing 3.
	v := mustDecode(t, `
cwlVersion: v1.2
class: Workflow
requirements:
  - class: StepInputExpressionRequirement
inputs:
  input_image:
    type: File
  size:
    type: int
outputs:
  final_output:
    type: File
    outputSource: blur_image/output_image
steps:
  resize_image:
    run: resize_image.cwl
    in:
      input_image: input_image
      size: size
      output_image:
        valueFrom: "resized.png"
    out: [output_image]
`)
	m := v.(*Map)
	steps := m.GetMap("steps")
	if steps == nil {
		t.Fatal("no steps")
	}
	rs := steps.GetMap("resize_image")
	if rs.GetString("run") != "resize_image.cwl" {
		t.Errorf("run = %v", rs.Value("run"))
	}
	out := rs.GetSlice("out")
	if len(out) != 1 || out[0] != "output_image" {
		t.Errorf("out = %#v", out)
	}
	vf := rs.GetMap("in").GetMap("output_image")
	if vf.GetString("valueFrom") != "resized.png" {
		t.Errorf("valueFrom = %v", vf.Value("valueFrom"))
	}
}

func TestErrorTabIndent(t *testing.T) {
	if _, err := DecodeString("a:\n\tb: 1\n"); err == nil {
		t.Fatal("expected error for tab indentation")
	}
}

func TestErrorUnknownAnchor(t *testing.T) {
	if _, err := DecodeString("a: *missing\n"); err == nil {
		t.Fatal("expected error for unknown anchor")
	}
}

func TestErrorBadFlow(t *testing.T) {
	if _, err := DecodeString("a: [1, 2\n"); err == nil {
		t.Fatal("expected error for unterminated flow")
	}
}

func TestErrorLineNumber(t *testing.T) {
	_, err := DecodeString("ok: 1\na:\n\tb: 1\n")
	yerr, ok := err.(*Error)
	if !ok {
		t.Fatalf("err = %v (%T)", err, err)
	}
	if yerr.Line != 3 {
		t.Errorf("line = %d, want 3", yerr.Line)
	}
}

func TestDashOnlyScalar(t *testing.T) {
	m := mustDecode(t, `a: "-"`).(*Map)
	if m.Value("a") != "-" {
		t.Errorf("a = %#v", m.Value("a"))
	}
}

func TestDocumentStartMarkerWithContent(t *testing.T) {
	v := mustDecode(t, "--- 42\n")
	if v != int64(42) {
		t.Errorf("v = %#v", v)
	}
}

func TestTopLevelScalar(t *testing.T) {
	if v := mustDecode(t, "just a string\n"); v != "just a string" {
		t.Errorf("v = %#v", v)
	}
}

func TestTopLevelSequenceDoc(t *testing.T) {
	v := mustDecode(t, "- a: 1\n- b: 2\n")
	want := `[{"a":1},{"b":2}]`
	if got := jsonOf(t, v); got != want {
		t.Errorf("got %s want %s", got, want)
	}
}

func TestStrTag(t *testing.T) {
	m := mustDecode(t, "a: !!str 42\n").(*Map)
	if got := m.Value("a"); got != "42" {
		t.Errorf("a = %#v, want \"42\"", got)
	}
}

func TestDeepNesting(t *testing.T) {
	var b strings.Builder
	depth := 30
	for i := 0; i < depth; i++ {
		b.WriteString(strings.Repeat("  ", i))
		b.WriteString("k:\n")
	}
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString("leaf: 1\n")
	v := mustDecode(t, b.String())
	cur := v.(*Map)
	for i := 0; i < depth; i++ {
		cur = cur.GetMap("k")
		if cur == nil {
			t.Fatalf("lost nesting at depth %d", i)
		}
	}
	if cur.Value("leaf") != int64(1) {
		t.Errorf("leaf = %#v", cur.Value("leaf"))
	}
}

func TestCRLFInput(t *testing.T) {
	m := mustDecode(t, "a: 1\r\nb: 2\r\n").(*Map)
	if m.Value("a") != int64(1) || m.Value("b") != int64(2) {
		t.Errorf("m = %v", m)
	}
}

func TestNullVariants(t *testing.T) {
	m := mustDecode(t, "a: null\nb: ~\nc: Null\nd: NULL\n").(*Map)
	for _, k := range []string{"a", "b", "c", "d"} {
		if v, ok := m.Get(k); !ok || v != nil {
			t.Errorf("%s = %#v", k, v)
		}
	}
}

func TestAstralPlaneEscapes(t *testing.T) {
	// YAML 1.2 \U 8-digit escapes (what strconv.Quote emits for runes
	// beyond the BMP).
	m := mustDecode(t, `a: "\U0001F600 and é"`).(*Map)
	if m.Value("a") != "\U0001F600 and é" {
		t.Errorf("a = %q", m.Value("a"))
	}
	if _, err := DecodeString(`a: "\U00ZZZZZZ"`); err == nil {
		t.Error("bad \\U escape accepted")
	}
	if _, err := DecodeString(`a: "\U0001"`); err == nil {
		t.Error("truncated \\U escape accepted")
	}
}
