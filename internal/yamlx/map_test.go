package yamlx

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestMapBasics(t *testing.T) {
	m := NewMap()
	if m.Len() != 0 {
		t.Fatalf("empty len = %d", m.Len())
	}
	m.Set("a", 1)
	m.Set("b", 2)
	m.Set("a", 3) // overwrite keeps position
	if !reflect.DeepEqual(m.Keys(), []string{"a", "b"}) {
		t.Errorf("keys = %v", m.Keys())
	}
	if m.Value("a") != 3 {
		t.Errorf("a = %v", m.Value("a"))
	}
	m.Delete("a")
	if m.Has("a") || m.Len() != 1 {
		t.Errorf("after delete: %v", m.Keys())
	}
	m.Delete("missing") // no-op
}

func TestMapRangeEarlyStop(t *testing.T) {
	m := MapOf("a", 1, "b", 2, "c", 3)
	var seen []string
	m.Range(func(k string, v any) bool {
		seen = append(seen, k)
		return k != "b"
	})
	if !reflect.DeepEqual(seen, []string{"a", "b"}) {
		t.Errorf("seen = %v", seen)
	}
}

func TestMapClone(t *testing.T) {
	m := MapOf("x", 1, "y", "two")
	c := m.Clone()
	c.Set("x", 99)
	if m.Value("x") != 1 {
		t.Errorf("clone mutated original")
	}
	if c.Value("y") != "two" {
		t.Errorf("clone missing values")
	}
}

// TestMapCloneAllocs pins the clone hot path (one per scatter job) at a
// constant allocation count — struct, keys slice, map header and its
// buckets — regardless of entry count (pre-optimization it was ~2 per key).
func TestMapCloneAllocs(t *testing.T) {
	m := NewMapCap(32)
	for i := 0; i < 32; i++ {
		m.Set(fmt.Sprintf("key-%02d", i), i)
	}
	allocs := testing.AllocsPerRun(200, func() {
		_ = m.Clone()
	})
	if allocs > 4 {
		t.Errorf("Clone allocates %.0f per run for 32 entries, want <= 4", allocs)
	}
}

// TestMapCloneKeyOrderAndIndependence verifies the preallocated clone keeps
// insertion order and shares nothing mutable with the original.
func TestMapCloneKeyOrderAndIndependence(t *testing.T) {
	m := MapOf("c", 1, "a", 2, "b", 3)
	c := m.Clone()
	if !reflect.DeepEqual(c.Keys(), []string{"c", "a", "b"}) {
		t.Errorf("clone keys = %v", c.Keys())
	}
	c.Set("d", 4)
	c.Delete("a")
	if m.Len() != 3 || !m.Has("a") {
		t.Errorf("clone mutation leaked into original: %v", m)
	}
	if (&Map{}).Clone().Len() != 0 {
		t.Error("cloning an empty map broke")
	}
	var nilMap *Map
	if nilMap.Clone().Len() != 0 {
		t.Error("cloning a nil map broke")
	}
}

// BenchmarkMapClone tracks the per-clone cost (run with -benchmem); the
// scatter path clones one map per job.
func BenchmarkMapClone(b *testing.B) {
	m := NewMapCap(16)
	for i := 0; i < 16; i++ {
		m.Set(fmt.Sprintf("key-%02d", i), i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Clone()
	}
}

func TestMapJSON(t *testing.T) {
	m := MapOf("z", 1, "a", []any{int64(1), "s"}, "m", MapOf("k", nil))
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"z":1,"a":[1,"s"],"m":{"k":null}}`
	if string(b) != want {
		t.Errorf("json = %s, want %s", b, want)
	}
}

func TestMapGettersOnNil(t *testing.T) {
	var m *Map
	if m.Len() != 0 || m.Has("x") || m.Value("x") != nil {
		t.Error("nil map accessors should be safe")
	}
	m.Range(func(string, any) bool { t.Error("range on nil visited"); return true })
}

func TestMapTypedGetters(t *testing.T) {
	m := MapOf("s", "str", "i", int64(7), "f", 2.0, "b", true, "m", MapOf(), "l", []any{1})
	if m.GetString("s") != "str" || m.GetString("i") != "" {
		t.Error("GetString")
	}
	if m.GetInt("i", -1) != 7 || m.GetInt("f", -1) != 2 || m.GetInt("s", -1) != -1 {
		t.Error("GetInt")
	}
	if !m.GetBool("b", false) || m.GetBool("s", true) != true {
		t.Error("GetBool")
	}
	if m.GetMap("m") == nil || m.GetMap("s") != nil {
		t.Error("GetMap")
	}
	if m.GetSlice("l") == nil || m.GetSlice("s") != nil {
		t.Error("GetSlice")
	}
}

func TestMapOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on odd args")
		}
	}()
	MapOf("only-key")
}

// Property: keys set in any order are returned in exactly insertion order with
// the last value winning.
func TestMapInsertionOrderProperty(t *testing.T) {
	f := func(keys []string) bool {
		m := NewMap()
		var order []string
		seen := map[string]bool{}
		for i, k := range keys {
			m.Set(k, i)
			if !seen[k] {
				seen[k] = true
				order = append(order, k)
			}
		}
		if m.Len() != len(order) {
			return false
		}
		got := m.Keys()
		for i := range order {
			if got[i] != order[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: scalar encode→decode round-trips for strings.
func TestStringRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		if !isPlainText(s) {
			return true // only check single-line printable strings here
		}
		doc := "v: " + encodeString(s, 0) + "\n"
		v, err := DecodeString(doc)
		if err != nil {
			return false
		}
		m, ok := v.(*Map)
		if !ok {
			return false
		}
		return m.Value("v") == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func isPlainText(s string) bool {
	for _, r := range s {
		if r == '\n' || r == '\r' || r == utf8Invalid {
			return false
		}
	}
	return strings.ToValidUTF8(s, "") == s
}

const utf8Invalid = '�'

// Property: integers round-trip through Marshal/Decode.
func TestIntRoundTripProperty(t *testing.T) {
	f := func(n int64) bool {
		b, err := Marshal(MapOf("n", n))
		if err != nil {
			return false
		}
		v, err := Decode(b)
		if err != nil {
			return false
		}
		return v.(*Map).Value("n") == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: finite floats round-trip through Marshal/Decode.
func TestFloatRoundTripProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		b, err := Marshal(MapOf("x", x))
		if err != nil {
			return false
		}
		v, err := Decode(b)
		if err != nil {
			return false
		}
		got := v.(*Map).Value("x")
		switch g := got.(type) {
		case float64:
			return g == x
		case int64:
			return float64(g) == x
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: nested structures round-trip through Marshal/Decode.
func TestStructureRoundTripProperty(t *testing.T) {
	type node struct {
		depth int
	}
	var build func(r *rngSrc, depth int) any
	build = func(r *rngSrc, depth int) any {
		if depth <= 0 {
			switch r.next() % 4 {
			case 0:
				return int64(r.next() % 1000)
			case 1:
				return fmt.Sprintf("s%d", r.next()%100)
			case 2:
				return r.next()%2 == 0
			default:
				return nil
			}
		}
		switch r.next() % 2 {
		case 0:
			n := int(r.next() % 4)
			items := make([]any, 0, n)
			for i := 0; i < n; i++ {
				items = append(items, build(r, depth-1))
			}
			return items
		default:
			n := int(r.next() % 4)
			m := NewMap()
			for i := 0; i < n; i++ {
				m.Set(fmt.Sprintf("k%d", i), build(r, depth-1))
			}
			return m
		}
	}
	for seed := uint64(1); seed <= 60; seed++ {
		r := &rngSrc{state: seed}
		v := build(r, 4)
		b, err := Marshal(v)
		if err != nil {
			t.Fatalf("seed %d: marshal: %v\nvalue: %#v", seed, err, v)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("seed %d: decode: %v\nyaml:\n%s", seed, err, b)
		}
		if jsonDump(t, got) != jsonDump(t, v) {
			t.Fatalf("seed %d: round-trip mismatch\nin:  %s\nout: %s\nyaml:\n%s",
				seed, jsonDump(t, v), jsonDump(t, got), b)
		}
	}
	_ = node{}
}

type rngSrc struct{ state uint64 }

func (r *rngSrc) next() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state >> 33
}

func jsonDump(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	return string(b)
}

func TestMarshalScalars(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{nil, "null\n"},
		{true, "true\n"},
		{int64(42), "42\n"},
		{3.5, "3.5\n"},
		{"plain", "plain\n"},
		{"42", "\"42\"\n"}, // must quote to stay a string
		{"true", "\"true\"\n"},
		{"", "\"\"\n"},
		{"- dash", "\"- dash\"\n"},
	}
	for _, c := range cases {
		b, err := Marshal(c.in)
		if err != nil {
			t.Fatalf("Marshal(%#v): %v", c.in, err)
		}
		if string(b) != c.want {
			t.Errorf("Marshal(%#v) = %q, want %q", c.in, b, c.want)
		}
	}
}

func TestMarshalMultilineString(t *testing.T) {
	b, err := Marshal(MapOf("s", "a\nb\n"))
	if err != nil {
		t.Fatal(err)
	}
	v, err := Decode(b)
	if err != nil {
		t.Fatalf("decode %q: %v", b, err)
	}
	if got := v.(*Map).Value("s"); got != "a\nb\n" {
		t.Errorf("round trip = %q", got)
	}
}

func TestMarshalUnsupported(t *testing.T) {
	if _, err := Marshal(struct{}{}); err == nil {
		t.Error("expected error for unsupported type")
	}
}

func TestMarshalStringSliceAndPlainMap(t *testing.T) {
	b, err := Marshal(map[string]any{"zz": []string{"a", "b"}, "aa": 1})
	if err != nil {
		t.Fatal(err)
	}
	v, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	m := v.(*Map)
	// map[string]any encodes with sorted keys
	if !reflect.DeepEqual(m.Keys(), []string{"aa", "zz"}) {
		t.Errorf("keys = %v", m.Keys())
	}
	if got := jsonDump(t, m.Value("zz")); got != `["a","b"]` {
		t.Errorf("zz = %s", got)
	}
}
