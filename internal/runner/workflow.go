package runner

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/cwl"
	"repro/internal/cwlexpr"
	"repro/internal/yamlx"
)

// Submitter dispatches one CommandLineTool job. Each runner (Parsl-CWL,
// cwltool-style, Toil-style) provides its own implementation; the workflow
// engine is shared, so all systems execute identical CWL semantics and
// differ only in dispatch, which is the variable the paper's evaluation
// measures.
type Submitter interface {
	// SubmitTool runs the tool with the given inputs. extraReqs carries
	// workflow- and step-level requirement overlays. done is called exactly
	// once from any goroutine.
	SubmitTool(tool *cwl.CommandLineTool, inputs *yamlx.Map, extraReqs *cwl.Requirements, done func(outputs *yamlx.Map, err error))
}

// ToolInvocation is a stable identity for one step job, independent of the
// process that runs it: Scope is a content identity for the enclosing
// document (the engine extends it with step paths when recursing into
// subworkflows) and Step is the step id within that scope. Together with the
// job's canonicalized inputs they form a cross-restart memoization key — the
// tool body and merged requirements are fully determined by Scope+Step, so
// they need not be hashed separately.
type ToolInvocation struct {
	Scope string
	Step  string
}

// KeyedSubmitter is an optional Submitter extension: engines that know a
// stable document identity (WorkflowEngine.Scope) announce each step job's
// ToolInvocation, which lets submitters memoize or checkpoint results across
// runs and process restarts. Submitters that don't implement it receive plain
// SubmitTool calls.
type KeyedSubmitter interface {
	SubmitToolKeyed(inv ToolInvocation, tool *cwl.CommandLineTool, inputs *yamlx.Map, extraReqs *cwl.Requirements, done func(outputs *yamlx.Map, err error))
}

// WorkflowEngine executes CWL Workflows as a dataflow over a Submitter:
// steps launch as soon as their sources resolve (never in document order),
// scatter fans out sub-jobs, "when" guards steps, and subworkflows recurse.
type WorkflowEngine struct {
	Submitter Submitter
	// InputsDir resolves relative paths in workflow input files.
	InputsDir string
	// MaxScatterWidth bounds fan-out per step (0 = unlimited).
	MaxScatterWidth int
	// ScatterWorkers bounds how many scatter jobs of one step run
	// concurrently (0 selects a GOMAXPROCS-derived default). Tool execution
	// happens in the Submitter, so this caps in-flight submissions — not
	// executor parallelism — and keeps a 100k-wide scatter from spawning
	// 100k goroutines at once.
	ScatterWorkers int
	// Scope is a stable content identity for the workflow document (e.g. its
	// source hash). When set and the Submitter implements KeyedSubmitter,
	// each step job is announced with a ToolInvocation so results can be
	// memoized across runs and process restarts. Empty disables keying.
	Scope string
	// Index, when set to BuildStepIndex(wf) of the workflow being executed,
	// skips rebuilding the dataflow index per Execute call (the service's
	// DocCache prebuilds it per cached document). An index for a different
	// workflow is ignored.
	Index *StepIndex
}

// StepIndex is a workflow's precomputed dataflow graph: for every step, the
// distinct value keys it consumes, and for every key, the steps waiting on
// it. With it, scheduling is O(edges) per workflow execution — each
// completion touches only its dependents — instead of rescanning every step
// on every completion. A StepIndex is immutable after construction and
// shareable across concurrent executions of the same workflow.
type StepIndex struct {
	wf *cwl.Workflow
	// required lists each step's distinct source keys ("#"-prefix trimmed).
	required [][]string
	// deps maps a value key ("input" or "step/out") to the indexes of steps
	// consuming it.
	deps map[string][]int
}

// BuildStepIndex precomputes the dataflow index for a workflow.
func BuildStepIndex(wf *cwl.Workflow) *StepIndex {
	ix := &StepIndex{wf: wf, required: make([][]string, len(wf.Steps)), deps: map[string][]int{}}
	for i, step := range wf.Steps {
		seen := map[string]bool{}
		for _, in := range step.In {
			for _, src := range in.Source {
				key := strings.TrimPrefix(src, "#")
				if seen[key] {
					continue
				}
				seen[key] = true
				ix.required[i] = append(ix.required[i], key)
				ix.deps[key] = append(ix.deps[key], i)
			}
		}
	}
	return ix
}

// SizeEstimate approximates the index's memory footprint in bytes (map and
// slice headers plus key strings and edge ints), so byte-bounded caches that
// retain prebuilt indexes can account for them. A nil index costs nothing.
func (ix *StepIndex) SizeEstimate() int64 {
	if ix == nil {
		return 0
	}
	const (
		sliceHeader = 24
		intSize     = 8
		mapOverhead = 48 // per-bucket bookkeeping, amortized
	)
	size := int64(sliceHeader + mapOverhead)
	for _, keys := range ix.required {
		size += sliceHeader
		for _, k := range keys {
			size += sliceHeader + int64(len(k))
		}
	}
	for k, steps := range ix.deps {
		size += mapOverhead + int64(len(k)) + sliceHeader + intSize*int64(len(steps))
	}
	return size
}

type wfState struct {
	mu          sync.Mutex
	cond        *sync.Cond
	values      map[string]any // "input" and "step/out" keys
	launched    map[string]bool
	outstanding int
	err         error

	// Indexed-scheduler state: the immutable dataflow index, the per-step
	// count of still-unsatisfied source keys, and the launch context.
	idx     *StepIndex
	pending []int
	wf      *cwl.Workflow
	wfReqs  cwl.Requirements
}

// Execute runs the workflow with the provided inputs and returns the
// workflow outputs.
func (we *WorkflowEngine) Execute(wf *cwl.Workflow, provided *yamlx.Map) (*yamlx.Map, error) {
	reqs := wf.Hints.Merge(wf.Requirements)
	eng, err := cwlexpr.SharedEngine(reqs)
	if err != nil {
		return nil, err
	}
	inputs, err := ProcessInputs(wf.Inputs, provided, eng, we.InputsDir)
	if err != nil {
		return nil, fmt.Errorf("workflow %s: %w", wf.ID, err)
	}

	idx := we.Index
	if idx == nil || idx.wf != wf {
		idx = BuildStepIndex(wf)
	}
	st := &wfState{
		values: make(map[string]any, len(wf.Inputs)+len(wf.Steps)), launched: make(map[string]bool, len(wf.Steps)),
		idx: idx, pending: make([]int, len(wf.Steps)), wf: wf, wfReqs: reqs,
	}
	st.cond = sync.NewCond(&st.mu)
	for _, in := range wf.Inputs {
		st.values[in.ID] = inputs.Value(in.ID)
	}

	st.mu.Lock()
	// Seed pending counts against the initially-available values (workflow
	// inputs) and launch every step that is already satisfied.
	for i, keys := range idx.required {
		n := 0
		for _, k := range keys {
			if _, ok := st.values[k]; !ok {
				n++
			}
		}
		st.pending[i] = n
		if n == 0 {
			we.launchStep(i, st)
		}
	}
	for st.outstanding > 0 {
		st.cond.Wait()
	}
	err = st.err
	st.mu.Unlock()
	if err != nil {
		return nil, err
	}

	// Verify everything ran (a dangling step means an unsatisfiable source).
	for _, s := range wf.Steps {
		if !st.launched[s.ID] {
			return nil, fmt.Errorf("workflow %s: step %q never became ready (missing source?)", wf.ID, s.ID)
		}
	}

	outputs := yamlx.NewMap()
	for _, out := range wf.Outputs {
		v, err := gatherSources(st.values, out.OutputSource, out.LinkMerge, out.PickValue)
		if err != nil {
			return nil, fmt.Errorf("workflow output %q: %w", out.ID, err)
		}
		outputs.Set(out.ID, v)
	}
	return outputs, nil
}

// launchStep starts step i. Caller holds st.mu.
func (we *WorkflowEngine) launchStep(i int, st *wfState) {
	step := st.wf.Steps[i]
	if st.launched[step.ID] {
		return
	}
	st.launched[step.ID] = true
	st.outstanding++
	go we.runStep(st.wf, st.wfReqs, step, st)
}

// finishStep records a step's outcome, pushes newly-satisfied dependents
// onto the ready path, and wakes the executor. Each completion does
// O(dependent edges) work.
func (we *WorkflowEngine) finishStep(step *cwl.WorkflowStep, st *wfState, outputs map[string]any, err error) {
	st.mu.Lock()
	if err != nil {
		if st.err == nil {
			st.err = fmt.Errorf("step %q: %w", step.ID, err)
		}
	} else {
		for k, v := range outputs {
			key := step.ID + "/" + k
			if _, dup := st.values[key]; dup {
				continue
			}
			st.values[key] = v
			if st.err != nil {
				continue // completions after a failure resolve values but launch nothing
			}
			for _, dep := range st.idx.deps[key] {
				st.pending[dep]--
				if st.pending[dep] == 0 {
					we.launchStep(dep, st)
				}
			}
		}
	}
	st.outstanding--
	st.cond.Broadcast()
	st.mu.Unlock()
}

func (we *WorkflowEngine) runStep(wf *cwl.Workflow, wfReqs cwl.Requirements, step *cwl.WorkflowStep, st *wfState) {
	stepReqs := wfReqs.Merge(step.Requirements)
	eng, err := cwlexpr.SharedEngine(stepReqs)
	if err != nil {
		we.finishStep(step, st, nil, err)
		return
	}

	// Resolve sources into the pre-valueFrom step input object.
	st.mu.Lock()
	base := yamlx.NewMap()
	for _, in := range step.In {
		v, gerr := gatherSources(st.values, in.Source, in.LinkMerge, in.PickValue)
		if gerr != nil {
			st.mu.Unlock()
			we.finishStep(step, st, nil, gerr)
			return
		}
		if v == nil && in.HasDef {
			v = cloneValue(in.Default)
		}
		base.Set(in.ID, v)
	}
	st.mu.Unlock()

	if len(step.Scatter) == 0 {
		outputs, err := we.runStepJob(step, stepReqs, eng, base)
		we.finishStep(step, st, outputs, err)
		return
	}

	// Scatter: fan out one job per combination.
	jobs, shape, err := scatterJobs(step, base, we.MaxScatterWidth)
	if err != nil {
		we.finishStep(step, st, nil, err)
		return
	}
	// A bounded worker pool drains the fan-out: submission-side concurrency
	// stays capped no matter the scatter width. Workers block inside the
	// Submitter waiting on results, so the cap is sized above GOMAXPROCS to
	// keep executors saturated.
	n := len(jobs)
	results := make([]map[string]any, n)
	errs := make([]error, n)
	workers := we.scatterWorkerCount(n)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = we.runStepJob(step, stepReqs, eng, jobs[i])
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			we.finishStep(step, st, nil, e)
			return
		}
	}
	outputs := map[string]any{}
	for _, outID := range step.Out {
		flat := make([]any, n)
		for i := range results {
			flat[i] = results[i][outID]
		}
		outputs[outID] = reshapeScatter(flat, shape)
	}
	we.finishStep(step, st, outputs, nil)
}

// runStepJob executes one (possibly scattered) step job: valueFrom, when,
// then dispatch by process class.
func (we *WorkflowEngine) runStepJob(step *cwl.WorkflowStep, stepReqs cwl.Requirements, eng *cwlexpr.Engine, base *yamlx.Map) (map[string]any, error) {
	// valueFrom: self is the pre-valueFrom value, inputs is the full
	// pre-valueFrom object (per the CWL spec).
	jobInputs := yamlx.NewMap()
	for _, in := range step.In {
		v := base.Value(in.ID)
		if in.ValueFrom != "" {
			ctx := cwlexpr.Context{Inputs: base, Self: v}
			ev, err := eng.Eval(in.ValueFrom, ctx)
			if err != nil {
				return nil, fmt.Errorf("in/%s valueFrom: %w", in.ID, err)
			}
			v = ev
		}
		jobInputs.Set(in.ID, v)
	}

	if step.When != "" {
		ctx := cwlexpr.Context{Inputs: jobInputs}
		v, err := eng.Eval(step.When, ctx)
		if err != nil {
			return nil, fmt.Errorf("when: %w", err)
		}
		run, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("when: expression yielded %T, want boolean", v)
		}
		if !run {
			skipped := map[string]any{}
			for _, o := range step.Out {
				skipped[o] = nil
			}
			return skipped, nil
		}
	}

	// Drop inputs the child process does not declare (extra step inputs are
	// legal and only feed valueFrom expressions).
	filterTo := func(params []*cwl.InputParam) *yamlx.Map {
		out := yamlx.NewMap()
		for _, p := range params {
			if v, ok := jobInputs.Get(p.ID); ok {
				out.Set(p.ID, v)
			}
		}
		return out
	}

	switch run := step.Run.(type) {
	case *cwl.CommandLineTool:
		ch := make(chan struct {
			out *yamlx.Map
			err error
		}, 1)
		done := func(out *yamlx.Map, err error) {
			ch <- struct {
				out *yamlx.Map
				err error
			}{out, err}
		}
		if ks, ok := we.Submitter.(KeyedSubmitter); ok && we.Scope != "" {
			ks.SubmitToolKeyed(ToolInvocation{Scope: we.Scope, Step: step.ID}, run, filterTo(run.Inputs), &stepReqs, done)
		} else {
			we.Submitter.SubmitTool(run, filterTo(run.Inputs), &stepReqs, done)
		}
		res := <-ch
		if res.err != nil {
			return nil, res.err
		}
		return mapToGo(res.out), nil
	case *cwl.Workflow:
		// Subworkflow steps extend the scope with their step path so a step
		// id reused across nesting levels cannot collide.
		subScope := ""
		if we.Scope != "" {
			subScope = we.Scope + "/" + step.ID
		}
		sub := &WorkflowEngine{Submitter: we.Submitter, InputsDir: we.InputsDir, MaxScatterWidth: we.MaxScatterWidth, ScatterWorkers: we.ScatterWorkers, Scope: subScope}
		out, err := sub.Execute(run, filterTo(run.Inputs))
		if err != nil {
			return nil, err
		}
		return mapToGo(out), nil
	case *cwl.ExpressionTool:
		return runExpressionTool(run, stepReqs, filterTo(run.Inputs))
	}
	return nil, fmt.Errorf("unsupported process class %T", step.Run)
}

func mapToGo(m *yamlx.Map) map[string]any {
	out := map[string]any{}
	m.Range(func(k string, v any) bool {
		out[k] = v
		return true
	})
	return out
}

// scatterWorkerCount resolves the scatter concurrency bound for a fan-out of
// n jobs: the configured ScatterWorkers, else 4×GOMAXPROCS (minimum 8), and
// never more workers than jobs.
func (we *WorkflowEngine) scatterWorkerCount(n int) int {
	w := we.ScatterWorkers
	if w <= 0 {
		w = 4 * runtime.GOMAXPROCS(0)
		if w < 8 {
			w = 8
		}
	}
	if w > n {
		w = n
	}
	return w
}

func runExpressionTool(et *cwl.ExpressionTool, extra cwl.Requirements, provided *yamlx.Map) (map[string]any, error) {
	reqs := extra.Merge(et.Requirements)
	eng, err := cwlexpr.SharedEngine(reqs)
	if err != nil {
		return nil, err
	}
	inputs, err := ProcessInputs(et.Inputs, provided, eng, "")
	if err != nil {
		return nil, err
	}
	v, err := eng.Eval(et.Expression, cwlexpr.Context{Inputs: inputs})
	if err != nil {
		return nil, err
	}
	obj, ok := v.(*yamlx.Map)
	if !ok {
		return nil, fmt.Errorf("expression tool must return an object, got %T", v)
	}
	out := map[string]any{}
	for _, o := range et.Outputs {
		out[o.ID] = obj.Value(o.ID)
	}
	return out, nil
}

// gatherSources resolves source references with linkMerge/pickValue.
func gatherSources(values map[string]any, sources []string, linkMerge, pickValue string) (any, error) {
	if len(sources) == 0 {
		return nil, nil
	}
	var vals []any
	for _, src := range sources {
		v, ok := values[strings.TrimPrefix(src, "#")]
		if !ok {
			return nil, fmt.Errorf("source %q is not available", src)
		}
		vals = append(vals, v)
	}
	var out any
	if len(vals) == 1 && linkMerge == "" {
		out = vals[0]
	} else {
		switch linkMerge {
		case "", "merge_nested":
			out = vals
		case "merge_flattened":
			var flat []any
			for _, v := range vals {
				if arr, ok := v.([]any); ok {
					flat = append(flat, arr...)
				} else {
					flat = append(flat, v)
				}
			}
			out = flat
		default:
			return nil, fmt.Errorf("unknown linkMerge %q", linkMerge)
		}
	}
	switch pickValue {
	case "":
		return out, nil
	case "first_non_null":
		arr, ok := out.([]any)
		if !ok {
			arr = []any{out}
		}
		for _, v := range arr {
			if v != nil {
				return v, nil
			}
		}
		return nil, fmt.Errorf("pickValue first_non_null: all values are null")
	case "the_only_non_null":
		arr, ok := out.([]any)
		if !ok {
			arr = []any{out}
		}
		var found any
		count := 0
		for _, v := range arr {
			if v != nil {
				found = v
				count++
			}
		}
		if count != 1 {
			return nil, fmt.Errorf("pickValue the_only_non_null: %d non-null values", count)
		}
		return found, nil
	case "all_non_null":
		arr, ok := out.([]any)
		if !ok {
			arr = []any{out}
		}
		var keep []any
		for _, v := range arr {
			if v != nil {
				keep = append(keep, v)
			}
		}
		return keep, nil
	default:
		return nil, fmt.Errorf("unknown pickValue %q", pickValue)
	}
}

// scatterShape records how to reassemble nested_crossproduct outputs.
type scatterShape struct {
	method string
	dims   []int
}

// scatterJobs expands a scattered step into per-item input objects.
func scatterJobs(step *cwl.WorkflowStep, base *yamlx.Map, maxWidth int) ([]*yamlx.Map, scatterShape, error) {
	arrays := make([][]any, len(step.Scatter))
	for i, name := range step.Scatter {
		v := base.Value(name)
		arr, ok := v.([]any)
		if !ok {
			return nil, scatterShape{}, fmt.Errorf("scatter input %q is %T, want array", name, v)
		}
		arrays[i] = arr
	}
	method := step.ScatterMethod
	if method == "" {
		method = "dotproduct"
	}
	var combos [][]any
	shape := scatterShape{method: method}
	switch method {
	case "dotproduct":
		n := len(arrays[0])
		for _, a := range arrays[1:] {
			if len(a) != n {
				return nil, shape, fmt.Errorf("dotproduct scatter arrays have different lengths (%d vs %d)", n, len(a))
			}
		}
		for i := 0; i < n; i++ {
			row := make([]any, len(arrays))
			for j := range arrays {
				row[j] = arrays[j][i]
			}
			combos = append(combos, row)
		}
	case "flat_crossproduct", "nested_crossproduct":
		combos = [][]any{{}}
		for _, a := range arrays {
			var next [][]any
			for _, c := range combos {
				for _, item := range a {
					row := append(append([]any{}, c...), item)
					next = append(next, row)
				}
			}
			combos = next
			shape.dims = append(shape.dims, len(a))
		}
	default:
		return nil, shape, fmt.Errorf("unknown scatterMethod %q", method)
	}
	if maxWidth > 0 && len(combos) > maxWidth {
		return nil, shape, fmt.Errorf("scatter fan-out %d exceeds limit %d", len(combos), maxWidth)
	}
	jobs := make([]*yamlx.Map, len(combos))
	for i, combo := range combos {
		jb := base.Clone()
		for j, name := range step.Scatter {
			jb.Set(name, combo[j])
		}
		jobs[i] = jb
	}
	return jobs, shape, nil
}

// reshapeScatter rebuilds nested arrays for nested_crossproduct; other
// methods return the flat list.
func reshapeScatter(flat []any, shape scatterShape) any {
	if shape.method != "nested_crossproduct" || len(shape.dims) <= 1 {
		return flat
	}
	var build func(dims []int, items []any) ([]any, []any)
	build = func(dims []int, items []any) ([]any, []any) {
		if len(dims) == 1 {
			return items[:dims[0]], items[dims[0]:]
		}
		var out []any
		rest := items
		for i := 0; i < dims[0]; i++ {
			var sub []any
			sub, rest = build(dims[1:], rest)
			out = append(out, sub)
		}
		return out, rest
	}
	out, _ := build(shape.dims, flat)
	return out
}
