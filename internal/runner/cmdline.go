// Package runner implements the CWL execution semantics shared by every
// engine in this repository (the Parsl-CWL integration and the cwltool/Toil
// baseline architectures): input processing, command-line construction per
// the CWL binding rules, job staging, output collection, and a dataflow
// workflow engine. Runners differ in *how* jobs are dispatched, not in what
// a job means — keeping CWL behaviour identical across the systems the paper
// compares.
package runner

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cwl"
	"repro/internal/cwlexpr"
	"repro/internal/yamlx"
)

// cmdPart is one command-line element with its CWL sorting key: entries sort
// by position, then arguments (numeric keys) before inputs (string keys),
// then by key.
type cmdPart struct {
	position int
	argIdx   int    // for arguments entries
	inputKey string // for input entries ("" for arguments)
	tokens   []string
	noQuote  bool // shellQuote: false
}

// BuildCommandLine constructs the argv for a tool invocation following the
// CWL v1.2 binding rules. inputs must already be processed (defaults applied,
// types coerced). The returned parts preserve shellQuote information for
// ShellCommandRequirement handling.
func BuildCommandLine(tool *cwl.CommandLineTool, inputs *yamlx.Map, eng *cwlexpr.Engine, runtime *yamlx.Map) ([]string, []cmdPart, error) {
	ctx := cwlexpr.Context{Inputs: inputs, Runtime: runtime}
	var parts []cmdPart

	for i, arg := range tool.Arguments {
		p := cmdPart{argIdx: i}
		b := arg.Binding
		if b != nil {
			if b.HasPosition {
				pos, err := resolvePosition(b, eng, ctx)
				if err != nil {
					return nil, nil, fmt.Errorf("arguments[%d]: %w", i, err)
				}
				p.position = pos
			}
			p.noQuote = !b.ShellQuote
		}
		src := arg.ValueFrom
		if src == "" {
			continue
		}
		val := any(src)
		if cwlexpr.NeedsEval(src) {
			v, err := eng.Eval(src, ctx)
			if err != nil {
				return nil, nil, fmt.Errorf("arguments[%d]: %w", i, err)
			}
			val = v
		}
		tokens := valueTokens(val)
		if b != nil && b.Prefix != "" {
			tokens = applyPrefix(b, tokens)
		}
		p.tokens = tokens
		if len(p.tokens) > 0 {
			parts = append(parts, p)
		}
	}

	for _, in := range tool.Inputs {
		if in.Binding == nil {
			continue
		}
		val, _ := inputs.Get(in.ID)
		tokens, err := bindInput(in, val, eng, ctx)
		if err != nil {
			return nil, nil, fmt.Errorf("input %q: %w", in.ID, err)
		}
		if len(tokens) == 0 {
			continue
		}
		p := cmdPart{inputKey: in.ID, tokens: tokens, noQuote: !in.Binding.ShellQuote}
		if in.Binding.HasPosition {
			pos, err := resolvePosition(in.Binding, eng, ctx)
			if err != nil {
				return nil, nil, fmt.Errorf("input %q: %w", in.ID, err)
			}
			p.position = pos
		}
		parts = append(parts, p)
	}

	sort.SliceStable(parts, func(a, b int) bool {
		pa, pb := parts[a], parts[b]
		if pa.position != pb.position {
			return pa.position < pb.position
		}
		// Numeric keys (arguments) sort before string keys (inputs).
		aArg := pa.inputKey == ""
		bArg := pb.inputKey == ""
		if aArg != bArg {
			return aArg
		}
		if aArg {
			return pa.argIdx < pb.argIdx
		}
		return pa.inputKey < pb.inputKey
	})

	argv := append([]string{}, tool.BaseCommand...)
	for _, p := range parts {
		argv = append(argv, p.tokens...)
	}
	if len(argv) == 0 {
		return nil, nil, fmt.Errorf("empty command line")
	}
	return argv, parts, nil
}

func resolvePosition(b *cwl.Binding, eng *cwlexpr.Engine, ctx cwlexpr.Context) (int, error) {
	if b.PositionExpr == "" {
		return b.Position, nil
	}
	v, err := eng.Eval(b.PositionExpr, ctx)
	if err != nil {
		return 0, err
	}
	switch n := v.(type) {
	case int64:
		return int(n), nil
	case float64:
		return int(n), nil
	}
	return 0, fmt.Errorf("position expression yielded %T, want int", v)
}

// bindInput renders one bound input into command tokens.
func bindInput(in *cwl.InputParam, val any, eng *cwlexpr.Engine, ctx cwlexpr.Context) ([]string, error) {
	b := in.Binding
	if b.ValueFrom != "" {
		vctx := ctx
		vctx.Self = val
		v, err := eng.Eval(b.ValueFrom, vctx)
		if err != nil {
			return nil, err
		}
		val = v
	}
	switch v := val.(type) {
	case nil:
		return nil, nil
	case bool:
		// boolean: true → prefix alone; false → nothing.
		if !v {
			return nil, nil
		}
		if b.Prefix == "" {
			return nil, nil
		}
		return []string{b.Prefix}, nil
	case []any:
		if len(v) == 0 {
			return nil, nil
		}
		items := make([]string, 0, len(v))
		for _, e := range v {
			items = append(items, cwlexpr.ValueToString(e))
		}
		if b.ItemSeparator != "" {
			joined := strings.Join(items, b.ItemSeparator)
			return applyPrefix(b, []string{joined}), nil
		}
		return applyPrefix(b, items), nil
	default:
		return applyPrefix(b, []string{cwlexpr.ValueToString(val)}), nil
	}
}

// applyPrefix attaches the binding prefix to tokens, honouring separate.
func applyPrefix(b *cwl.Binding, tokens []string) []string {
	if b.Prefix == "" {
		return tokens
	}
	if !b.Separate && len(tokens) > 0 {
		out := append([]string{b.Prefix + tokens[0]}, tokens[1:]...)
		return out
	}
	return append([]string{b.Prefix}, tokens...)
}

func valueTokens(val any) []string {
	switch v := val.(type) {
	case nil:
		return nil
	case []any:
		out := make([]string, 0, len(v))
		for _, e := range v {
			out = append(out, cwlexpr.ValueToString(e))
		}
		return out
	default:
		return []string{cwlexpr.ValueToString(val)}
	}
}

// ShellCommand joins argv into a single shell command string, quoting every
// token except those from bindings with shellQuote: false.
func ShellCommand(tool *cwl.CommandLineTool, argv []string, parts []cmdPart) string {
	// Build a set of raw tokens (shellQuote: false).
	raw := map[string]bool{}
	for _, p := range parts {
		if p.noQuote {
			for _, t := range p.tokens {
				raw[t] = true
			}
		}
	}
	quoted := make([]string, len(argv))
	for i, a := range argv {
		if raw[a] {
			quoted[i] = a
			continue
		}
		quoted[i] = shellQuote(a)
	}
	return strings.Join(quoted, " ")
}

// shellQuote quotes a token for POSIX sh.
func shellQuote(s string) string {
	if s == "" {
		return "''"
	}
	if !strings.ContainsAny(s, " \t\n\"'`$&|;<>()*?[]#~=%\\{}") {
		return s
	}
	return "'" + strings.ReplaceAll(s, "'", `'"'"'`) + "'"
}
