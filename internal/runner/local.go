package runner

import (
	"repro/internal/cwl"
	"repro/internal/yamlx"
)

// PoolSubmitter runs tool jobs through a ToolRunner with bounded
// parallelism. It is the simplest Submitter and the building block the
// baseline runners wrap with their architecture-specific overheads.
type PoolSubmitter struct {
	Runner *ToolRunner
	sem    chan struct{}
	// Hook, when set, observes every job just before execution (used by the
	// baseline runner models and tests).
	Hook func(tool *cwl.CommandLineTool)
}

// NewPoolSubmitter creates a submitter running at most parallelism jobs at
// once.
func NewPoolSubmitter(r *ToolRunner, parallelism int) *PoolSubmitter {
	if parallelism <= 0 {
		parallelism = 1
	}
	return &PoolSubmitter{Runner: r, sem: make(chan struct{}, parallelism)}
}

// SubmitTool implements Submitter.
func (s *PoolSubmitter) SubmitTool(tool *cwl.CommandLineTool, inputs *yamlx.Map, extraReqs *cwl.Requirements, done func(*yamlx.Map, error)) {
	go func() {
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		if s.Hook != nil {
			s.Hook(tool)
		}
		res, err := s.Runner.RunTool(tool, inputs, RunOpts{ExtraReqs: extraReqs})
		if err != nil {
			done(nil, err)
			return
		}
		done(res.Outputs, nil)
	}()
}
