package runner

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cwl"
	"repro/internal/yamlx"
)

// fakeSubmitter runs tools as a pure function of their inputs, so scatter
// shapes can be asserted without shelling out.
type fakeSubmitter struct {
	fn func(tool *cwl.CommandLineTool, inputs *yamlx.Map) (*yamlx.Map, error)
	// keyed records the ToolInvocations announced via SubmitToolKeyed.
	keyed []ToolInvocation
}

func (f *fakeSubmitter) SubmitTool(tool *cwl.CommandLineTool, inputs *yamlx.Map, _ *cwl.Requirements, done func(*yamlx.Map, error)) {
	go func() { done(f.fn(tool, inputs)) }()
}

func (f *fakeSubmitter) SubmitToolKeyed(inv ToolInvocation, tool *cwl.CommandLineTool, inputs *yamlx.Map, reqs *cwl.Requirements, done func(*yamlx.Map, error)) {
	f.keyed = append(f.keyed, inv)
	f.SubmitTool(tool, inputs, reqs, done)
}

const crossWF = `
cwlVersion: v1.2
class: Workflow
requirements:
  - class: ScatterFeatureRequirement
inputs:
  nums: int[]
  tags: string[]
outputs:
  grid:
    type: string[]
    outputSource: combine/out
steps:
  combine:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        n: {type: int}
        tag: {type: string}
      outputs:
        out: {type: string}
    in: {n: nums, tag: tags}
    scatter: [n, tag]
    scatterMethod: nested_crossproduct
    out: [out]
`

func mustWorkflow(t *testing.T, src string) *cwl.Workflow {
	t.Helper()
	doc, err := cwl.ParseBytes([]byte(src), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	return doc.(*cwl.Workflow)
}

func combineSubmitter() *fakeSubmitter {
	return &fakeSubmitter{fn: func(_ *cwl.CommandLineTool, inputs *yamlx.Map) (*yamlx.Map, error) {
		return yamlx.MapOf("out", fmt.Sprintf("%v%v", inputs.Value("n"), inputs.Value("tag"))), nil
	}}
}

func TestNestedCrossproductReshapesEndToEnd(t *testing.T) {
	wf := mustWorkflow(t, crossWF)
	eng := &WorkflowEngine{Submitter: combineSubmitter()}
	out, err := eng.Execute(wf, yamlx.MapOf(
		"nums", []any{int64(1), int64(2)},
		"tags", []any{"a", "b", "c"},
	))
	if err != nil {
		t.Fatal(err)
	}
	want := []any{
		[]any{"1a", "1b", "1c"},
		[]any{"2a", "2b", "2c"},
	}
	if got := out.Value("grid"); !reflect.DeepEqual(got, want) {
		t.Errorf("grid = %#v, want %#v", got, want)
	}
}

func TestNestedCrossproductEmptyInnerDimension(t *testing.T) {
	wf := mustWorkflow(t, crossWF)
	eng := &WorkflowEngine{Submitter: combineSubmitter()}
	out, err := eng.Execute(wf, yamlx.MapOf(
		"nums", []any{int64(1), int64(2)},
		"tags", []any{},
	))
	if err != nil {
		t.Fatal(err)
	}
	// Two outer rows, each empty: the shape survives even with zero jobs.
	got, ok := out.Value("grid").([]any)
	if !ok || len(got) != 2 {
		t.Fatalf("grid = %#v, want 2 empty rows", out.Value("grid"))
	}
	for i, row := range got {
		if r, ok := row.([]any); !ok || len(r) != 0 {
			t.Errorf("row %d = %#v, want empty", i, row)
		}
	}
}

func TestNestedCrossproductEmptyOuterDimension(t *testing.T) {
	wf := mustWorkflow(t, crossWF)
	eng := &WorkflowEngine{Submitter: combineSubmitter()}
	out, err := eng.Execute(wf, yamlx.MapOf(
		"nums", []any{},
		"tags", []any{"a", "b"},
	))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := out.Value("grid").([]any); !ok || len(got) != 0 {
		t.Errorf("grid = %#v, want empty outer list", out.Value("grid"))
	}
}

func TestScatterEmptyArrays(t *testing.T) {
	step := &cwl.WorkflowStep{
		Scatter: []string{"a", "b"},
		In:      []*cwl.StepInput{{ID: "a"}, {ID: "b"}},
	}
	// Dotproduct over two empty arrays: zero jobs, no error.
	jobs, _, err := scatterJobs(step, yamlx.MapOf("a", []any{}, "b", []any{}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Errorf("dotproduct over empty arrays produced %d jobs", len(jobs))
	}
	// Flat crossproduct with one empty dimension: zero jobs.
	step.ScatterMethod = "flat_crossproduct"
	jobs, _, err = scatterJobs(step, yamlx.MapOf("a", []any{1, 2}, "b", []any{}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Errorf("crossproduct with empty dimension produced %d jobs", len(jobs))
	}
	// Nested crossproduct records the dims even when empty.
	step.ScatterMethod = "nested_crossproduct"
	jobs, shape, err := scatterJobs(step, yamlx.MapOf("a", []any{1, 2}, "b", []any{}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 || !reflect.DeepEqual(shape.dims, []int{2, 0}) {
		t.Errorf("jobs = %d, dims = %v", len(jobs), shape.dims)
	}
	// A scalar where an array is required is an error, not a panic.
	if _, _, err := scatterJobs(step, yamlx.MapOf("a", "not-an-array", "b", []any{}), 0); err == nil {
		t.Error("non-array scatter input accepted")
	}
	// Unknown method.
	step.ScatterMethod = "diagonal"
	if _, _, err := scatterJobs(step, yamlx.MapOf("a", []any{1}, "b", []any{2}), 0); err == nil {
		t.Error("unknown scatterMethod accepted")
	}
	// Width limit.
	step.ScatterMethod = "flat_crossproduct"
	if _, _, err := scatterJobs(step, yamlx.MapOf("a", []any{1, 2, 3}, "b", []any{4, 5, 6}), 4); err == nil {
		t.Error("scatter width limit not enforced")
	}
}

func TestReshapeScatterShapes(t *testing.T) {
	// Three dimensions: 2x2x2.
	flat := []any{1, 2, 3, 4, 5, 6, 7, 8}
	out := reshapeScatter(flat, scatterShape{method: "nested_crossproduct", dims: []int{2, 2, 2}})
	want := []any{
		[]any{[]any{1, 2}, []any{3, 4}},
		[]any{[]any{5, 6}, []any{7, 8}},
	}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("2x2x2 = %#v", out)
	}
	// Single dimension and non-nested methods pass through untouched.
	if got := reshapeScatter([]any{1, 2}, scatterShape{method: "nested_crossproduct", dims: []int{2}}); !reflect.DeepEqual(got, []any{1, 2}) {
		t.Errorf("single-dim = %#v", got)
	}
	if got := reshapeScatter([]any{1, 2}, scatterShape{method: "flat_crossproduct", dims: []int{1, 2}}); !reflect.DeepEqual(got, []any{1, 2}) {
		t.Errorf("flat = %#v", got)
	}
}

func TestGatherSourcesCombinations(t *testing.T) {
	values := map[string]any{
		"s/one":    "v1",
		"s/nil":    nil,
		"s/arr":    []any{"a", "b"},
		"s/arr2":   []any{"c"},
		"s/scalar": "solo",
	}
	cases := []struct {
		name      string
		sources   []string
		linkMerge string
		pickValue string
		want      any
		wantErr   string
	}{
		{name: "single source passthrough", sources: []string{"s/one"}, want: "v1"},
		{name: "multi default merge_nested", sources: []string{"s/one", "s/nil"}, want: []any{"v1", nil}},
		{name: "explicit merge_nested single", sources: []string{"s/arr"}, linkMerge: "merge_nested", want: []any{[]any{"a", "b"}}},
		{name: "merge_flattened arrays", sources: []string{"s/arr", "s/arr2"}, linkMerge: "merge_flattened", want: []any{"a", "b", "c"}},
		{name: "merge_flattened mixed scalar", sources: []string{"s/arr", "s/scalar"}, linkMerge: "merge_flattened", want: []any{"a", "b", "solo"}},
		{name: "first_non_null picks", sources: []string{"s/nil", "s/one"}, pickValue: "first_non_null", want: "v1"},
		{name: "first_non_null scalar self", sources: []string{"s/scalar"}, pickValue: "first_non_null", want: "solo"},
		{name: "first_non_null all null", sources: []string{"s/nil"}, pickValue: "first_non_null", wantErr: "all values are null"},
		{name: "the_only_non_null ok", sources: []string{"s/nil", "s/one"}, pickValue: "the_only_non_null", want: "v1"},
		{name: "the_only_non_null too many", sources: []string{"s/one", "s/scalar"}, pickValue: "the_only_non_null", wantErr: "2 non-null"},
		{name: "all_non_null filters", sources: []string{"s/nil", "s/one", "s/scalar"}, pickValue: "all_non_null", want: []any{"v1", "solo"}},
		{name: "all_non_null empty result", sources: []string{"s/nil"}, pickValue: "all_non_null", want: []any(nil)},
		{name: "flattened then first_non_null", sources: []string{"s/arr", "s/arr2"}, linkMerge: "merge_flattened", pickValue: "first_non_null", want: "a"},
		{name: "missing source", sources: []string{"s/ghost"}, wantErr: "not available"},
		{name: "unknown linkMerge", sources: []string{"s/one", "s/arr"}, linkMerge: "merge_sideways", wantErr: "unknown linkMerge"},
		{name: "unknown pickValue", sources: []string{"s/one"}, pickValue: "last_non_null", wantErr: "unknown pickValue"},
		{name: "no sources", sources: nil, want: nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := gatherSources(values, tc.sources, tc.linkMerge, tc.pickValue)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("got %#v, want %#v", got, tc.want)
			}
		})
	}
}

// TestKeyedSubmitterSelection pins when the engine announces step identities:
// only with a Scope and a KeyedSubmitter, and subworkflow scopes nest.
func TestKeyedSubmitterSelection(t *testing.T) {
	wf := mustWorkflow(t, crossWF)
	inputs := yamlx.MapOf("nums", []any{int64(1)}, "tags", []any{"a"})

	unscoped := combineSubmitter()
	if _, err := (&WorkflowEngine{Submitter: unscoped}).Execute(wf, inputs); err != nil {
		t.Fatal(err)
	}
	if len(unscoped.keyed) != 0 {
		t.Errorf("unscoped engine announced %d invocations, want 0", len(unscoped.keyed))
	}

	scoped := combineSubmitter()
	if _, err := (&WorkflowEngine{Submitter: scoped, Scope: "hash123"}).Execute(wf, inputs); err != nil {
		t.Fatal(err)
	}
	if len(scoped.keyed) != 1 || scoped.keyed[0] != (ToolInvocation{Scope: "hash123", Step: "combine"}) {
		t.Errorf("scoped invocations = %+v", scoped.keyed)
	}
}
