package runner

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cwl"
	"repro/internal/cwlexpr"
	"repro/internal/yamlx"
)

// ProcessInputs applies defaults, coerces values against declared types,
// normalizes File objects and runs the paper's validate: extension. The
// returned map is job-ready.
func ProcessInputs(params []*cwl.InputParam, provided *yamlx.Map, eng *cwlexpr.Engine, baseDir string) (*yamlx.Map, error) {
	out := yamlx.NewMap()
	if provided == nil {
		provided = yamlx.NewMap()
	}
	for _, k := range provided.Keys() {
		found := false
		for _, p := range params {
			if p.ID == k {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown input %q", k)
		}
	}
	for _, p := range params {
		val, has := provided.Get(p.ID)
		if !has || val == nil {
			if p.HasDef {
				val = cloneValue(p.Default)
			} else if p.Type != nil && !p.Type.Optional && p.Type.Name != "null" {
				return nil, fmt.Errorf("missing required input %q (type %s)", p.ID, p.Type)
			} else {
				out.Set(p.ID, nil)
				continue
			}
		}
		if p.Type != nil {
			coerced, err := p.Type.Accepts(val)
			if err != nil {
				return nil, fmt.Errorf("input %q: %w", p.ID, err)
			}
			val = coerced
		}
		val = normalizeFiles(val, baseDir)
		out.Set(p.ID, val)
	}
	// validate: extension runs after all inputs resolve so expressions can
	// reference sibling inputs.
	for _, p := range params {
		if p.Validate == "" {
			continue
		}
		ctx := cwlexpr.Context{Inputs: out}
		if err := eng.RunValidate(p.Validate, ctx); err != nil {
			return nil, fmt.Errorf("input %q: %w", p.ID, err)
		}
	}
	return out, nil
}

// cloneValue deep-copies the mutable shapes of a CWL value (maps, slices),
// preallocated to their known sizes; immutable scalars (strings, numbers,
// bools, nil) are shared, not copied. Used for defaults on every step-input
// resolution, so allocation count matters.
func cloneValue(v any) any {
	switch x := v.(type) {
	case *yamlx.Map:
		out := yamlx.NewMapCap(x.Len())
		x.Range(func(k string, vv any) bool {
			out.Set(k, cloneValue(vv))
			return true
		})
		return out
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = cloneValue(e)
		}
		return out
	default:
		return v
	}
}

// normalizeFiles makes File/Directory paths absolute (against baseDir) and
// fills in derived attributes.
func normalizeFiles(v any, baseDir string) any {
	switch x := v.(type) {
	case *yamlx.Map:
		cls := x.GetString("class")
		if cls == "File" || cls == "Directory" {
			path := x.GetString("path")
			if path == "" {
				path = x.GetString("location")
			}
			if path != "" && !filepath.IsAbs(path) && baseDir != "" {
				path = filepath.Join(baseDir, path)
			}
			return MakeFileObject(cls, path)
		}
		out := yamlx.NewMap()
		x.Range(func(k string, vv any) bool {
			out.Set(k, normalizeFiles(vv, baseDir))
			return true
		})
		return out
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = normalizeFiles(e, baseDir)
		}
		return out
	default:
		return v
	}
}

// MakeFileObject builds a CWL File/Directory object for a path, populating
// basename/nameroot/nameext/dirname and size when the file exists.
func MakeFileObject(class, path string) *yamlx.Map {
	m := yamlx.NewMap()
	m.Set("class", class)
	m.Set("path", path)
	m.Set("location", "file://"+path)
	base := filepath.Base(path)
	m.Set("basename", base)
	m.Set("dirname", filepath.Dir(path))
	if class == "File" {
		ext := filepath.Ext(base)
		m.Set("nameroot", base[:len(base)-len(ext)])
		m.Set("nameext", ext)
		if st, err := os.Stat(path); err == nil {
			m.Set("size", st.Size())
		}
	}
	return m
}

// LoadFileContents reads up to 64 KiB of a file into the File object's
// contents field, per the CWL loadContents rules.
func LoadFileContents(fileObj *yamlx.Map) error {
	path := fileObj.GetString("path")
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 64*1024)
	n, err := f.Read(buf)
	if err != nil && n == 0 && err.Error() != "EOF" {
		return err
	}
	fileObj.Set("contents", string(buf[:n]))
	return nil
}

// RuntimeContext builds the CWL runtime object for a job.
func RuntimeContext(outdir, tmpdir string, cores int, ramMB int) *yamlx.Map {
	m := yamlx.NewMap()
	m.Set("outdir", outdir)
	m.Set("tmpdir", tmpdir)
	m.Set("cores", int64(cores))
	m.Set("ram", int64(ramMB))
	return m
}
