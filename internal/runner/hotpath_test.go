package runner

import (
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cwl"
	"repro/internal/yamlx"
)

// TestRunToolCleansGeneratedDirOnError pins the failure-path cleanup
// contract: a generated job directory is removed when the tool fails, kept
// when KeepDirs is set, and caller-supplied directories are never touched.
func TestRunToolCleansGeneratedDirOnError(t *testing.T) {
	failing := mustTool(t, `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: ["false"]
inputs: {}
outputs: {}
`)
	workRoot := t.TempDir()
	list := func() []os.DirEntry {
		ents, err := os.ReadDir(workRoot)
		if err != nil {
			t.Fatal(err)
		}
		return ents
	}

	r := &ToolRunner{WorkRoot: workRoot}
	res, err := r.RunTool(failing, yamlx.NewMap(), RunOpts{})
	if err == nil {
		t.Fatal("failing tool succeeded")
	}
	if got := list(); len(got) != 0 {
		t.Errorf("generated job dir survived a failed run: %v", got)
	}
	if res != nil && res.OutDir != "" {
		if _, statErr := os.Stat(res.OutDir); statErr == nil {
			t.Errorf("OutDir %s still exists after failed run", res.OutDir)
		}
	}

	keep := &ToolRunner{WorkRoot: workRoot, KeepDirs: true}
	if _, err := keep.RunTool(failing, yamlx.NewMap(), RunOpts{}); err == nil {
		t.Fatal("failing tool succeeded")
	}
	if got := list(); len(got) != 1 {
		t.Errorf("KeepDirs did not preserve the failed job dir: %v", got)
	}

	supplied := t.TempDir()
	if _, err := r.RunTool(failing, yamlx.NewMap(), RunOpts{OutDir: supplied}); err == nil {
		t.Fatal("failing tool succeeded")
	}
	if _, err := os.Stat(supplied); err != nil {
		t.Errorf("caller-supplied OutDir was removed: %v", err)
	}

	// Success still leaves the generated directory (it holds the outputs).
	ok := mustTool(t, `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: ["true"]
inputs: {}
outputs: {}
`)
	okRoot := t.TempDir()
	r2 := &ToolRunner{WorkRoot: okRoot}
	if _, err := r2.RunTool(ok, yamlx.NewMap(), RunOpts{}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(okRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("successful run's job dir missing: %v", ents)
	}
}

// TestScatterWorkerPoolBound proves scatter fan-out is drained by a bounded
// worker pool: with ScatterWorkers=4 a 100-wide scatter never has more than
// 4 jobs in flight.
func TestScatterWorkerPoolBound(t *testing.T) {
	const width = 100
	const cap = 4
	var inFlight, peak int64
	sub := &fakeSubmitter{fn: func(_ *cwl.CommandLineTool, inputs *yamlx.Map) (*yamlx.Map, error) {
		cur := atomic.AddInt64(&inFlight, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if cur <= p || atomic.CompareAndSwapInt64(&peak, p, cur) {
				break
			}
		}
		defer atomic.AddInt64(&inFlight, -1)
		return yamlx.MapOf("out", inputs.Value("x")), nil
	}}
	wf := mustWorkflow(t, `
cwlVersion: v1.2
class: Workflow
requirements:
  - class: ScatterFeatureRequirement
inputs:
  items: int[]
outputs:
  out: {type: Any, outputSource: work/out}
steps:
  work:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        x: {type: int}
      outputs:
        out: {type: Any}
    in: {x: items}
    scatter: x
    out: [out]
`)
	items := make([]any, width)
	for i := range items {
		items[i] = int64(i)
	}
	eng := &WorkflowEngine{Submitter: sub, ScatterWorkers: cap}
	out, err := eng.Execute(wf, yamlx.MapOf("items", items))
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Value("out").([]any); len(got) != width {
		t.Fatalf("scatter produced %d outputs, want %d", len(got), width)
	}
	if p := atomic.LoadInt64(&peak); p > cap {
		t.Errorf("peak in-flight scatter jobs = %d, want <= %d", p, cap)
	}
}

// TestExecuteWithPrebuiltIndex verifies a shared prebuilt StepIndex produces
// identical results across repeated and concurrent executions, and that a
// mismatched index is ignored rather than trusted.
func TestExecuteWithPrebuiltIndex(t *testing.T) {
	wfSrc := `
cwlVersion: v1.2
class: Workflow
inputs:
  seed: {type: int}
outputs:
  out: {type: Any, outputSource: b/out}
steps:
  a:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        x: {type: Any}
      outputs:
        out: {type: Any}
    in: {x: seed}
    out: [out]
  b:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        x: {type: Any}
      outputs:
        out: {type: Any}
    in: {x: a/out}
    out: [out]
`
	wf := mustWorkflow(t, wfSrc)
	echo := func(_ *cwl.CommandLineTool, inputs *yamlx.Map) (*yamlx.Map, error) {
		return yamlx.MapOf("out", inputs.Value("x")), nil
	}
	idx := BuildStepIndex(wf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			eng := &WorkflowEngine{Submitter: &fakeSubmitter{fn: echo}, Index: idx}
			out, err := eng.Execute(wf, yamlx.MapOf("seed", int64(g)))
			if err != nil {
				t.Error(err)
				return
			}
			if out.Value("out") != int64(g) {
				t.Errorf("g=%d: out = %v", g, out.Value("out"))
			}
		}(g)
	}
	wg.Wait()

	other := mustWorkflow(t, wfSrc)
	eng := &WorkflowEngine{Submitter: &fakeSubmitter{fn: echo}, Index: BuildStepIndex(other)}
	out, err := eng.Execute(wf, yamlx.MapOf("seed", int64(7)))
	if err != nil {
		t.Fatal(err)
	}
	if out.Value("out") != int64(7) {
		t.Errorf("mismatched index: out = %v", out.Value("out"))
	}
}

// BenchmarkCloneValue tracks default-value deep-copy cost on the step-input
// path (run with -benchmem): nested maps/slices copy with preallocated
// shapes, scalars are shared.
func BenchmarkCloneValue(b *testing.B) {
	v := yamlx.MapOf(
		"class", "File",
		"path", "/data/in.csv",
		"meta", yamlx.MapOf("size", int64(12), "tags", []any{"a", "b", "c"}),
		"rows", []any{int64(1), int64(2), int64(3), int64(4)},
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = cloneValue(v)
	}
}

// TestDanglingSourceStillFails pins the indexed scheduler's unsatisfiable
// dependency diagnostics (a step whose source never materializes).
func TestDanglingSourceStillFails(t *testing.T) {
	wf := mustWorkflow(t, `
cwlVersion: v1.2
class: Workflow
inputs:
  seed: {type: int}
outputs: []
steps:
  stuck:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        x: {type: Any}
      outputs:
        out: {type: Any}
    in: {x: ghost/out}
    out: [out]
`)
	eng := &WorkflowEngine{Submitter: &fakeSubmitter{fn: func(_ *cwl.CommandLineTool, inputs *yamlx.Map) (*yamlx.Map, error) {
		return yamlx.MapOf("out", inputs.Value("x")), nil
	}}}
	_, err := eng.Execute(wf, yamlx.MapOf("seed", int64(1)))
	if err == nil {
		t.Fatal("workflow with dangling source succeeded")
	}
	if want := "never became ready"; !strings.Contains(err.Error(), want) {
		t.Errorf("err = %v, want mention of %q", err, want)
	}
}
