package runner

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cwl"
	"repro/internal/cwlexpr"
	"repro/internal/yamlx"
)

func mustTool(t *testing.T, src string) *cwl.CommandLineTool {
	t.Helper()
	doc, err := cwl.ParseBytes([]byte(src), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	return doc.(*cwl.CommandLineTool)
}

func mustEngine(t *testing.T, reqs cwl.Requirements) *cwlexpr.Engine {
	t.Helper()
	eng, err := cwlexpr.NewEngine(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func buildArgv(t *testing.T, toolSrc string, inputs *yamlx.Map) []string {
	t.Helper()
	tool := mustTool(t, toolSrc)
	eng := mustEngine(t, tool.Requirements)
	processed, err := ProcessInputs(tool.Inputs, inputs, eng, "")
	if err != nil {
		t.Fatal(err)
	}
	argv, _, err := BuildCommandLine(tool, processed, eng, RuntimeContext("/out", "/tmp", 4, 1024))
	if err != nil {
		t.Fatal(err)
	}
	return argv
}

func TestCommandLinePositions(t *testing.T) {
	argv := buildArgv(t, `
class: CommandLineTool
cwlVersion: v1.2
baseCommand: [tool, sub]
inputs:
  third:
    type: string
    inputBinding: {position: 3}
  first:
    type: string
    inputBinding: {position: 1}
  second:
    type: string
    inputBinding: {position: 2}
outputs: {}
`, yamlx.MapOf("third", "c", "first", "a", "second", "b"))
	want := []string{"tool", "sub", "a", "b", "c"}
	if !reflect.DeepEqual(argv, want) {
		t.Errorf("argv = %v, want %v", argv, want)
	}
}

func TestCommandLineTieBreakByKey(t *testing.T) {
	// Same position: inputs sort lexicographically by id.
	argv := buildArgv(t, `
class: CommandLineTool
cwlVersion: v1.2
baseCommand: t
inputs:
  zebra:
    type: string
    inputBinding: {position: 1}
  apple:
    type: string
    inputBinding: {position: 1}
outputs: {}
`, yamlx.MapOf("zebra", "z", "apple", "a"))
	want := []string{"t", "a", "z"}
	if !reflect.DeepEqual(argv, want) {
		t.Errorf("argv = %v, want %v", argv, want)
	}
}

func TestArgumentsSortBeforeInputsAtSamePosition(t *testing.T) {
	argv := buildArgv(t, `
class: CommandLineTool
cwlVersion: v1.2
baseCommand: t
arguments:
  - valueFrom: "--fixed"
    position: 1
inputs:
  a:
    type: string
    inputBinding: {position: 1}
outputs: {}
`, yamlx.MapOf("a", "val"))
	want := []string{"t", "--fixed", "val"}
	if !reflect.DeepEqual(argv, want) {
		t.Errorf("argv = %v, want %v", argv, want)
	}
}

func TestPrefixAndSeparate(t *testing.T) {
	argv := buildArgv(t, `
class: CommandLineTool
cwlVersion: v1.2
baseCommand: t
inputs:
  normal:
    type: string
    inputBinding: {position: 1, prefix: --name}
  joined:
    type: string
    inputBinding: {position: 2, prefix: --id=, separate: false}
outputs: {}
`, yamlx.MapOf("normal", "x", "joined", "42"))
	want := []string{"t", "--name", "x", "--id=42"}
	if !reflect.DeepEqual(argv, want) {
		t.Errorf("argv = %v, want %v", argv, want)
	}
}

func TestBooleanFlags(t *testing.T) {
	src := `
class: CommandLineTool
cwlVersion: v1.2
baseCommand: t
inputs:
  verbose:
    type: boolean
    inputBinding: {position: 1, prefix: -v}
  quiet:
    type: boolean
    inputBinding: {position: 2, prefix: -q}
outputs: {}
`
	argv := buildArgv(t, src, yamlx.MapOf("verbose", true, "quiet", false))
	want := []string{"t", "-v"}
	if !reflect.DeepEqual(argv, want) {
		t.Errorf("argv = %v, want %v", argv, want)
	}
}

func TestArrayBindings(t *testing.T) {
	// itemSeparator joins; without it elements become separate tokens.
	argv := buildArgv(t, `
class: CommandLineTool
cwlVersion: v1.2
baseCommand: t
inputs:
  joined:
    type: string[]
    inputBinding: {position: 1, prefix: -j, itemSeparator: ","}
  separate_items:
    type: string[]
    inputBinding: {position: 2, prefix: -s}
outputs: {}
`, yamlx.MapOf(
		"joined", []any{"a", "b", "c"},
		"separate_items", []any{"x", "y"},
	))
	want := []string{"t", "-j", "a,b,c", "-s", "x", "y"}
	if !reflect.DeepEqual(argv, want) {
		t.Errorf("argv = %v, want %v", argv, want)
	}
}

func TestOptionalInputOmitted(t *testing.T) {
	argv := buildArgv(t, `
class: CommandLineTool
cwlVersion: v1.2
baseCommand: t
inputs:
  opt:
    type: string?
    inputBinding: {position: 1, prefix: --opt}
outputs: {}
`, yamlx.NewMap())
	want := []string{"t"}
	if !reflect.DeepEqual(argv, want) {
		t.Errorf("argv = %v, want %v", argv, want)
	}
}

func TestValueFromBinding(t *testing.T) {
	argv := buildArgv(t, `
class: CommandLineTool
cwlVersion: v1.2
requirements:
  - class: InlineJavascriptRequirement
baseCommand: t
inputs:
  n:
    type: int
    inputBinding:
      position: 1
      valueFrom: $(self * 2)
outputs: {}
`, yamlx.MapOf("n", int64(21)))
	want := []string{"t", "42"}
	if !reflect.DeepEqual(argv, want) {
		t.Errorf("argv = %v, want %v", argv, want)
	}
}

func TestFileInputBecomesPath(t *testing.T) {
	argv := buildArgv(t, `
class: CommandLineTool
cwlVersion: v1.2
baseCommand: cat
inputs:
  f:
    type: File
    inputBinding: {position: 1}
outputs: {}
`, yamlx.MapOf("f", "/abs/data.txt"))
	want := []string{"cat", "/abs/data.txt"}
	if !reflect.DeepEqual(argv, want) {
		t.Errorf("argv = %v, want %v", argv, want)
	}
}

func TestProcessInputsDefaultsAndErrors(t *testing.T) {
	tool := mustTool(t, `
class: CommandLineTool
cwlVersion: v1.2
baseCommand: t
inputs:
  msg:
    type: string
    default: "hi"
  needed:
    type: int
  opt:
    type: boolean?
outputs: {}
`)
	eng := mustEngine(t, cwl.Requirements{})
	got, err := ProcessInputs(tool.Inputs, yamlx.MapOf("needed", int64(1)), eng, "")
	if err != nil {
		t.Fatal(err)
	}
	if got.Value("msg") != "hi" || got.Value("needed") != int64(1) {
		t.Errorf("inputs = %v", got)
	}
	if v, ok := got.Get("opt"); !ok || v != nil {
		t.Errorf("opt = %v ok=%v", v, ok)
	}
	if _, err := ProcessInputs(tool.Inputs, yamlx.NewMap(), eng, ""); err == nil {
		t.Error("missing required input accepted")
	}
	if _, err := ProcessInputs(tool.Inputs, yamlx.MapOf("needed", int64(1), "bogus", 1), eng, ""); err == nil {
		t.Error("unknown input accepted")
	}
	if _, err := ProcessInputs(tool.Inputs, yamlx.MapOf("needed", "notanint"), eng, ""); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestRunEchoTool(t *testing.T) {
	// Paper Listing 1 executed for real.
	tool := mustTool(t, `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
inputs:
  message:
    type: string
    default: "Hello World"
    inputBinding:
      position: 1
outputs:
  output:
    type: stdout
stdout: hello.txt
`)
	r := &ToolRunner{WorkRoot: t.TempDir()}
	res, err := r.RunTool(tool, yamlx.MapOf("message", "Hello, World!"), RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outputs.Value("output").(*yamlx.Map)
	data, err := os.ReadFile(out.GetString("path"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "Hello, World!" {
		t.Errorf("stdout content = %q", data)
	}
	if filepath.Base(out.GetString("path")) != "hello.txt" {
		t.Errorf("stdout file = %q", out.GetString("path"))
	}
}

func TestRunToolProducesGlobbedFile(t *testing.T) {
	tool := mustTool(t, `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: [touch]
inputs:
  name:
    type: string
    inputBinding: {position: 1}
outputs:
  produced:
    type: File
    outputBinding:
      glob: $(inputs.name)
`)
	r := &ToolRunner{WorkRoot: t.TempDir()}
	res, err := r.RunTool(tool, yamlx.MapOf("name", "made.dat"), RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Outputs.Value("produced").(*yamlx.Map)
	if f.GetString("basename") != "made.dat" {
		t.Errorf("output = %v", f)
	}
}

func TestRunToolMissingOutput(t *testing.T) {
	tool := mustTool(t, `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: [true]
inputs: {}
outputs:
  produced:
    type: File
    outputBinding:
      glob: never.txt
`)
	r := &ToolRunner{WorkRoot: t.TempDir()}
	_, err := r.RunTool(tool, yamlx.NewMap(), RunOpts{})
	if err == nil || !strings.Contains(err.Error(), "no file matched") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunToolNonZeroExit(t *testing.T) {
	tool := mustTool(t, `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: [sh, -c, "exit 7"]
inputs: {}
outputs: {}
`)
	r := &ToolRunner{WorkRoot: t.TempDir()}
	_, err := r.RunTool(tool, yamlx.NewMap(), RunOpts{})
	if err == nil || !strings.Contains(err.Error(), "exit code 7") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunToolSuccessCodes(t *testing.T) {
	tool := mustTool(t, `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: [sh, -c, "exit 7"]
successCodes: [7]
inputs: {}
outputs: {}
`)
	r := &ToolRunner{WorkRoot: t.TempDir()}
	res, err := r.RunTool(tool, yamlx.NewMap(), RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 7 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestEnvVarRequirement(t *testing.T) {
	tool := mustTool(t, `
cwlVersion: v1.2
class: CommandLineTool
requirements:
  - class: EnvVarRequirement
    envDef:
      GREETING: $(inputs.word)
baseCommand: [sh, -c, "echo $GREETING"]
inputs:
  word:
    type: string
outputs:
  out: stdout
stdout: env.txt
`)
	r := &ToolRunner{WorkRoot: t.TempDir()}
	res, err := r.RunTool(tool, yamlx.MapOf("word", "bonjour"), RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(res.Outputs.Value("out").(*yamlx.Map).GetString("path"))
	if strings.TrimSpace(string(data)) != "bonjour" {
		t.Errorf("env output = %q", data)
	}
}

func TestInitialWorkDir(t *testing.T) {
	tool := mustTool(t, `
cwlVersion: v1.2
class: CommandLineTool
requirements:
  - class: InitialWorkDirRequirement
    listing:
      - entryname: config.txt
        entry: "threshold=$(inputs.threshold)"
baseCommand: [cat, config.txt]
inputs:
  threshold:
    type: int
outputs:
  out: stdout
stdout: cat.txt
`)
	r := &ToolRunner{WorkRoot: t.TempDir()}
	res, err := r.RunTool(tool, yamlx.MapOf("threshold", int64(9)), RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(res.Outputs.Value("out").(*yamlx.Map).GetString("path"))
	if strings.TrimSpace(string(data)) != "threshold=9" {
		t.Errorf("workdir output = %q", data)
	}
}

func TestValidateExtensionRejectsBadInput(t *testing.T) {
	// Paper Listing 6, end to end through ProcessInputs.
	tool := mustTool(t, `
cwlVersion: v1.2
class: CommandLineTool
requirements:
  - class: InlinePythonRequirement
    expressionLib:
      - |
        def valid_file(file, ext):
            if not file.lower().endswith(ext):
                raise Exception(f"Invalid file. Expected '{ext}'")
baseCommand: cat
inputs:
  data_file:
    type: File
    validate: |
      f"{valid_file($(inputs.data_file), '.csv')}"
    inputBinding:
      position: 1
outputs:
  validated_output:
    type: stdout
`)
	dir := t.TempDir()
	csv := filepath.Join(dir, "ok.csv")
	os.WriteFile(csv, []byte("a,b\n"), 0o644)
	txt := filepath.Join(dir, "bad.txt")
	os.WriteFile(txt, []byte("nope"), 0o644)

	r := &ToolRunner{WorkRoot: t.TempDir()}
	if _, err := r.RunTool(tool, yamlx.MapOf("data_file", csv), RunOpts{}); err != nil {
		t.Fatalf("csv rejected: %v", err)
	}
	_, err := r.RunTool(tool, yamlx.MapOf("data_file", txt), RunOpts{})
	if err == nil || !strings.Contains(err.Error(), "Expected '.csv'") {
		t.Fatalf("err = %v", err)
	}
}

// --- Workflow engine ---

func runWorkflow(t *testing.T, wfSrc string, inputs *yamlx.Map, parallelism int) (*yamlx.Map, error) {
	t.Helper()
	doc, err := cwl.ParseBytes([]byte(wfSrc), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	wf := doc.(*cwl.Workflow)
	tr := &ToolRunner{WorkRoot: t.TempDir()}
	eng := &WorkflowEngine{Submitter: NewPoolSubmitter(tr, parallelism)}
	return eng.Execute(wf, inputs)
}

const twoStepWF = `
cwlVersion: v1.2
class: Workflow
inputs:
  word: string
outputs:
  final:
    type: File
    outputSource: shout/out
steps:
  make:
    run:
      class: CommandLineTool
      baseCommand: echo
      stdout: made.txt
      inputs:
        w: {type: string, inputBinding: {position: 1}}
      outputs:
        out: stdout
    in:
      w: word
    out: [out]
  shout:
    run:
      class: CommandLineTool
      requirements:
        - class: ShellCommandRequirement
      baseCommand: []
      arguments:
        - valueFrom: tr a-z A-Z <
          shellQuote: false
      stdout: shouted.txt
      inputs:
        f: {type: File, inputBinding: {position: 1}}
      outputs:
        out: stdout
    in:
      f: make/out
    out: [out]
`

func TestWorkflowTwoStepDataflow(t *testing.T) {
	out, err := runWorkflow(t, twoStepWF, yamlx.MapOf("word", "quiet"), 2)
	if err != nil {
		t.Fatal(err)
	}
	f := out.Value("final").(*yamlx.Map)
	data, err := os.ReadFile(f.GetString("path"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "QUIET" {
		t.Errorf("final = %q", data)
	}
}

const scatterWF = `
cwlVersion: v1.2
class: Workflow
requirements:
  - class: ScatterFeatureRequirement
inputs:
  words: string[]
outputs:
  all:
    type: File[]
    outputSource: say/out
steps:
  say:
    run:
      class: CommandLineTool
      baseCommand: echo
      stdout: said.txt
      inputs:
        w: {type: string, inputBinding: {position: 1}}
      outputs:
        out: stdout
    in:
      w: words
    scatter: w
    out: [out]
`

func TestWorkflowScatter(t *testing.T) {
	out, err := runWorkflow(t, scatterWF, yamlx.MapOf("words", []any{"a", "b", "c"}), 4)
	if err != nil {
		t.Fatal(err)
	}
	files := out.Value("all").([]any)
	if len(files) != 3 {
		t.Fatalf("files = %d", len(files))
	}
	var contents []string
	for _, f := range files {
		data, _ := os.ReadFile(f.(*yamlx.Map).GetString("path"))
		contents = append(contents, strings.TrimSpace(string(data)))
	}
	if !reflect.DeepEqual(contents, []string{"a", "b", "c"}) {
		t.Errorf("contents = %v (scatter order must be preserved)", contents)
	}
}

func TestWorkflowScatterEmpty(t *testing.T) {
	out, err := runWorkflow(t, scatterWF, yamlx.MapOf("words", []any{}), 2)
	if err != nil {
		t.Fatal(err)
	}
	files := out.Value("all").([]any)
	if len(files) != 0 {
		t.Errorf("files = %v", files)
	}
}

func TestWorkflowWhenConditional(t *testing.T) {
	src := `
cwlVersion: v1.2
class: Workflow
requirements:
  - class: InlineJavascriptRequirement
inputs:
  go: boolean
  word: string
outputs:
  result:
    type: File?
    outputSource: maybe/out
steps:
  maybe:
    run:
      class: CommandLineTool
      baseCommand: echo
      stdout: maybe.txt
      inputs:
        w: {type: string, inputBinding: {position: 1}}
      outputs:
        out: stdout
    when: $(inputs.go)
    in:
      go: go
      w: word
    out: [out]
`
	out, err := runWorkflow(t, src, yamlx.MapOf("go", true, "word", "yes"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Value("result") == nil {
		t.Error("step should have run")
	}
	out, err = runWorkflow(t, src, yamlx.MapOf("go", false, "word", "no"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Value("result") != nil {
		t.Error("step should have been skipped")
	}
}

func TestWorkflowStepFailureAborts(t *testing.T) {
	src := `
cwlVersion: v1.2
class: Workflow
inputs: {}
outputs: {}
steps:
  fails:
    run:
      class: CommandLineTool
      baseCommand: [sh, -c, "exit 1"]
      inputs: {}
      outputs: {}
    in: {}
    out: []
`
	_, err := runWorkflow(t, src, yamlx.NewMap(), 2)
	if err == nil || !strings.Contains(err.Error(), `step "fails"`) {
		t.Fatalf("err = %v", err)
	}
}

func TestWorkflowValueFromStepInput(t *testing.T) {
	// The paper's Listing 3 pattern: valueFrom provides output filenames.
	src := `
cwlVersion: v1.2
class: Workflow
requirements:
  - class: StepInputExpressionRequirement
inputs:
  word: string
outputs:
  f:
    type: File
    outputSource: s/found
steps:
  s:
    run:
      class: CommandLineTool
      baseCommand: touch
      inputs:
        name: {type: string, inputBinding: {position: 1}}
      outputs:
        found:
          type: File
          outputBinding: {glob: "*.flag"}
    in:
      word: word
      name:
        valueFrom: $(inputs.word).flag
    out: [found]
`
	out, err := runWorkflow(t, src, yamlx.MapOf("word", "hello"), 2)
	if err != nil {
		t.Fatal(err)
	}
	f := out.Value("f").(*yamlx.Map)
	if f.GetString("basename") != "hello.flag" {
		t.Errorf("basename = %q", f.GetString("basename"))
	}
}

func TestWorkflowExpressionToolStep(t *testing.T) {
	src := `
cwlVersion: v1.2
class: Workflow
requirements:
  - class: InlineJavascriptRequirement
inputs:
  n: int
outputs:
  result:
    type: int
    outputSource: calc/doubled
steps:
  calc:
    run:
      class: ExpressionTool
      requirements:
        - class: InlineJavascriptRequirement
      inputs:
        n: int
      outputs:
        doubled: int
      expression: "${ return {doubled: inputs.n * 2}; }"
    in:
      n: n
    out: [doubled]
`
	out, err := runWorkflow(t, src, yamlx.MapOf("n", int64(21)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Value("result") != int64(42) {
		t.Errorf("result = %v", out.Value("result"))
	}
}

func TestWorkflowSubworkflow(t *testing.T) {
	src := `
cwlVersion: v1.2
class: Workflow
requirements:
  - class: SubworkflowFeatureRequirement
inputs:
  word: string
outputs:
  final:
    type: File
    outputSource: inner/out
steps:
  inner:
    run:
      class: Workflow
      inputs:
        w: string
      outputs:
        out:
          type: File
          outputSource: say/out
      steps:
        say:
          run:
            class: CommandLineTool
            baseCommand: echo
            stdout: inner.txt
            inputs:
              w: {type: string, inputBinding: {position: 1}}
            outputs:
              out: stdout
          in:
            w: w
          out: [out]
    in:
      w: word
    out: [out]
`
	out, err := runWorkflow(t, src, yamlx.MapOf("word", "nested"), 2)
	if err != nil {
		t.Fatal(err)
	}
	f := out.Value("final").(*yamlx.Map)
	data, _ := os.ReadFile(f.GetString("path"))
	if strings.TrimSpace(string(data)) != "nested" {
		t.Errorf("content = %q", data)
	}
}

func TestScatterDotproductAndCross(t *testing.T) {
	step := &cwl.WorkflowStep{
		Scatter: []string{"a", "b"},
		In:      []*cwl.StepInput{{ID: "a"}, {ID: "b"}},
	}
	base := yamlx.MapOf("a", []any{1, 2}, "b", []any{"x", "y"})
	jobs, _, err := scatterJobs(step, base, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("dotproduct jobs = %d", len(jobs))
	}
	if jobs[1].Value("a") != 2 || jobs[1].Value("b") != "y" {
		t.Errorf("job = %v", jobs[1])
	}
	step.ScatterMethod = "flat_crossproduct"
	jobs, _, err = scatterJobs(step, base, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("cross jobs = %d", len(jobs))
	}
	step.ScatterMethod = "dotproduct"
	base.Set("b", []any{"only"})
	if _, _, err = scatterJobs(step, base, 0); err == nil {
		t.Error("dotproduct length mismatch accepted")
	}
}

func TestReshapeNestedCross(t *testing.T) {
	flat := []any{1, 2, 3, 4, 5, 6}
	out := reshapeScatter(flat, scatterShape{method: "nested_crossproduct", dims: []int{2, 3}})
	nested := out.([]any)
	if len(nested) != 2 {
		t.Fatalf("outer = %d", len(nested))
	}
	inner := nested[1].([]any)
	if !reflect.DeepEqual(inner, []any{4, 5, 6}) {
		t.Errorf("inner = %v", inner)
	}
}

func TestGatherSourcesLinkMergeAndPickValue(t *testing.T) {
	values := map[string]any{
		"a/x": []any{1, 2},
		"b/x": []any{3},
		"c/x": nil,
		"d/x": "v",
	}
	v, err := gatherSources(values, []string{"a/x", "b/x"}, "merge_flattened", "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v, []any{1, 2, 3}) {
		t.Errorf("flattened = %v", v)
	}
	v, err = gatherSources(values, []string{"c/x", "d/x"}, "merge_nested", "first_non_null")
	if err != nil {
		t.Fatal(err)
	}
	if v != "v" {
		t.Errorf("first_non_null = %v", v)
	}
	if _, err := gatherSources(values, []string{"c/x"}, "", "first_non_null"); err == nil {
		t.Error("all-null first_non_null accepted")
	}
	v, err = gatherSources(values, []string{"c/x", "d/x"}, "merge_nested", "all_non_null")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v, []any{"v"}) {
		t.Errorf("all_non_null = %v", v)
	}
}

func TestShellQuote(t *testing.T) {
	cases := map[string]string{
		"plain":     "plain",
		"has space": "'has space'",
		"":          "''",
		"it's":      `'it'"'"'s'`,
		"a$b":       "'a$b'",
	}
	for in, want := range cases {
		if got := shellQuote(in); got != want {
			t.Errorf("shellQuote(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMakeFileObject(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "x.tar.gz")
	os.WriteFile(p, []byte("12345"), 0o644)
	f := MakeFileObject("File", p)
	if f.GetString("basename") != "x.tar.gz" {
		t.Errorf("basename = %q", f.GetString("basename"))
	}
	if f.GetString("nameroot") != "x.tar" || f.GetString("nameext") != ".gz" {
		t.Errorf("nameroot/ext = %q %q", f.GetString("nameroot"), f.GetString("nameext"))
	}
	if f.Value("size") != int64(5) {
		t.Errorf("size = %v", f.Value("size"))
	}
}

// Property: the built argv is independent of the order inputs are provided
// in the job object — binding order depends only on position and key.
func TestArgvOrderIndependenceProperty(t *testing.T) {
	toolSrc := `
class: CommandLineTool
cwlVersion: v1.2
baseCommand: t
inputs:
  alpha: {type: string, inputBinding: {position: 2}}
  beta: {type: string, inputBinding: {position: 1}}
  gamma: {type: string, inputBinding: {position: 1, prefix: -g}}
  delta: {type: boolean, inputBinding: {prefix: -d}}
outputs: {}
`
	keys := []string{"alpha", "beta", "gamma", "delta"}
	vals := map[string]any{"alpha": "A", "beta": "B", "gamma": "G", "delta": true}
	var ref []string
	f := func(perm4 uint8) bool {
		order := append([]string{}, keys...)
		// Apply a deterministic permutation derived from perm4.
		p := int(perm4)
		for i := len(order) - 1; i > 0; i-- {
			j := p % (i + 1)
			p /= (i + 1)
			order[i], order[j] = order[j], order[i]
		}
		in := yamlx.NewMap()
		for _, k := range order {
			in.Set(k, vals[k])
		}
		argv := buildArgv(t, toolSrc, in)
		if ref == nil {
			ref = argv
			return true
		}
		return reflect.DeepEqual(argv, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 48}); err != nil {
		t.Fatal(err)
	}
}

func TestStdinRedirect(t *testing.T) {
	dir := t.TempDir()
	inFile := filepath.Join(dir, "input.txt")
	os.WriteFile(inFile, []byte("via stdin\n"), 0o644)
	tool := mustTool(t, `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: cat
stdin: $(inputs.src.path)
inputs:
  src:
    type: File
outputs:
  out: stdout
stdout: copied.txt
`)
	r := &ToolRunner{WorkRoot: t.TempDir()}
	res, err := r.RunTool(tool, yamlx.MapOf("src", inFile), RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(res.Outputs.Value("out").(*yamlx.Map).GetString("path"))
	if string(data) != "via stdin\n" {
		t.Errorf("content = %q", data)
	}
}

func TestWorkflowUnsatisfiableSourceDetected(t *testing.T) {
	// A step whose source can never resolve (its producer step is not
	// connected) must be reported, not hang. Validation catches the unknown
	// source, so bypass Validate and drive the engine directly.
	doc, err := cwl.ParseBytes([]byte(`
cwlVersion: v1.2
class: Workflow
inputs: {}
outputs: {}
steps:
  consumer:
    run:
      class: CommandLineTool
      baseCommand: echo
      inputs:
        x: {type: string, inputBinding: {position: 1}}
      outputs: {}
    in:
      x: ghost/out
    out: []
`), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := &WorkflowEngine{Submitter: NewPoolSubmitter(&ToolRunner{WorkRoot: t.TempDir()}, 1)}
	_, err = eng.Execute(doc.(*cwl.Workflow), yamlx.NewMap())
	if err == nil || !strings.Contains(err.Error(), "never became ready") {
		t.Fatalf("err = %v", err)
	}
}
