package runner

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cwl"
	"repro/internal/cwlexpr"
	"repro/internal/yamlx"
)

// ExecSpec describes one concrete process invocation.
type ExecSpec struct {
	Argv     []string
	UseShell bool // run ShellCmd via "sh -c" instead of Argv directly
	ShellCmd string
	Dir      string
	Env      []string // KEY=VALUE pairs appended to the host environment
	Stdin    string   // path or ""
	Stdout   string   // path or ""
	Stderr   string   // path or ""
	// Walltime, when positive, bounds the invocation: past it the whole
	// process group is SIGKILLed and Run returns a walltime error. The
	// process group (not just the direct child) is killed so a tool that
	// forks cannot outlive its deadline.
	Walltime time.Duration
}

// ExecResult is the outcome of a process invocation.
type ExecResult struct {
	ExitCode int
}

// ExecBackend runs processes. The real backend uses os/exec; the benchmark
// harness substitutes a simulated one.
type ExecBackend interface {
	Run(spec ExecSpec) (ExecResult, error)
}

// RealBackend executes commands on the local machine.
type RealBackend struct{}

// Run implements ExecBackend.
func (RealBackend) Run(spec ExecSpec) (ExecResult, error) {
	var cmd *exec.Cmd
	if spec.UseShell {
		cmd = exec.Command("sh", "-c", spec.ShellCmd)
	} else {
		if len(spec.Argv) == 0 {
			return ExecResult{}, fmt.Errorf("empty argv")
		}
		cmd = exec.Command(spec.Argv[0], spec.Argv[1:]...)
	}
	cmd.Dir = spec.Dir
	if len(spec.Env) > 0 {
		cmd.Env = append(os.Environ(), spec.Env...)
	}
	var closers []*os.File
	defer func() {
		for _, f := range closers {
			f.Close()
		}
	}()
	if spec.Stdin != "" {
		f, err := os.Open(spec.Stdin)
		if err != nil {
			return ExecResult{}, fmt.Errorf("stdin: %w", err)
		}
		closers = append(closers, f)
		cmd.Stdin = f
	}
	open := func(path string) (*os.File, error) {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return nil, err
		}
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		closers = append(closers, f)
		return f, nil
	}
	if spec.Stdout != "" {
		f, err := open(spec.Stdout)
		if err != nil {
			return ExecResult{}, fmt.Errorf("stdout: %w", err)
		}
		cmd.Stdout = f
	}
	if spec.Stderr != "" {
		f, err := open(spec.Stderr)
		if err != nil {
			return ExecResult{}, fmt.Errorf("stderr: %w", err)
		}
		cmd.Stderr = f
	}
	var walltimed atomic.Bool
	var err error
	if spec.Walltime > 0 {
		// Walltime-bounded tools run in their own process group so the
		// deadline kill reaps the whole tree, not just the direct child.
		cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
		if err = cmd.Start(); err == nil {
			pgid := cmd.Process.Pid
			timer := time.AfterFunc(spec.Walltime, func() {
				walltimed.Store(true)
				_ = syscall.Kill(-pgid, syscall.SIGKILL)
			})
			err = cmd.Wait()
			timer.Stop()
		}
	} else {
		err = cmd.Run()
	}
	res := ExecResult{}
	if cmd.ProcessState != nil {
		res.ExitCode = cmd.ProcessState.ExitCode()
	}
	if walltimed.Load() && err != nil {
		return res, fmt.Errorf("command exceeded its %s walltime and was killed", spec.Walltime)
	}
	if err != nil {
		if _, isExit := err.(*exec.ExitError); isExit {
			return res, nil // exit code carries the signal; caller decides
		}
		return res, err
	}
	return res, nil
}

// ToolRunner executes CommandLineTools with shared CWL semantics.
type ToolRunner struct {
	// Backend runs the processes (RealBackend by default).
	Backend ExecBackend
	// WorkRoot is where per-job directories are created (temp dir if "").
	WorkRoot string
	// Cores/RAMMB describe the resource context exposed to expressions.
	Cores int
	RAMMB int
	// KeepDirs prevents job directory cleanup (useful for debugging).
	KeepDirs bool

	seq atomic.Int64
}

// ToolResult is a finished tool invocation.
type ToolResult struct {
	Outputs  *yamlx.Map
	ExitCode int
	OutDir   string
	Argv     []string
}

// RunOpts adjusts one tool invocation.
type RunOpts struct {
	// ExtraReqs are merged over the tool's own requirements (step overrides).
	ExtraReqs *cwl.Requirements
	// InputsDir resolves relative input file paths.
	InputsDir string
	// OutDir overrides the generated job directory.
	OutDir string
	// StdoutPath/StderrPath override the tool's stdout/stderr destinations
	// (the CWLApp bridge exposes them as reserved keyword arguments, like
	// Parsl bash_app's stdout=/stderr=). Relative paths resolve against the
	// job directory.
	StdoutPath string
	StderrPath string
	// Walltime bounds the tool's process execution (CWL ToolTimeLimit
	// style): past it the process group is killed and the invocation fails
	// (0 = unbounded).
	Walltime time.Duration
}

// RunTool executes one CommandLineTool invocation end to end: input
// processing, staging, command construction, execution, output collection.
func (r *ToolRunner) RunTool(tool *cwl.CommandLineTool, provided *yamlx.Map, opts RunOpts) (*ToolResult, error) {
	backend := r.Backend
	if backend == nil {
		backend = RealBackend{}
	}
	reqs := tool.Hints.Merge(tool.Requirements)
	if opts.ExtraReqs != nil {
		reqs = reqs.Merge(*opts.ExtraReqs)
	}
	eng, err := cwlexpr.SharedEngine(reqs)
	if err != nil {
		return nil, fmt.Errorf("tool %s: %w", toolName(tool), err)
	}

	inputs, err := ProcessInputs(tool.Inputs, provided, eng, opts.InputsDir)
	if err != nil {
		return nil, fmt.Errorf("tool %s: %w", toolName(tool), err)
	}

	generated := opts.OutDir == ""
	outdir := opts.OutDir
	if generated {
		root := r.WorkRoot
		if root == "" {
			root = os.TempDir()
		}
		if err := os.MkdirAll(root, 0o755); err != nil {
			return nil, err
		}
		// MkdirTemp makes the directory unique across ToolRunner instances
		// and processes: concurrent invocations (scatter siblings, separate
		// worker processes) must never share a job directory.
		outdir, err = os.MkdirTemp(root, fmt.Sprintf("%s-%03d-", toolName(tool), r.seq.Add(1)))
		if err != nil {
			return nil, err
		}
	}
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return nil, err
	}
	// On success the directory stays — the caller inspects outputs via the
	// returned File objects inside it. On failure a generated directory is
	// debris; remove it unless KeepDirs asks to keep it for debugging.
	succeeded := false
	if generated && !r.KeepDirs {
		defer func() {
			if !succeeded {
				os.RemoveAll(outdir)
			}
		}()
	}

	cores := r.Cores
	if cores <= 0 {
		cores = 1
	}
	ram := r.RAMMB
	if ram <= 0 {
		ram = 1024
	}
	runtimeCtx := RuntimeContext(outdir, outdir, cores, ram)
	ctx := cwlexpr.Context{Inputs: inputs, Runtime: runtimeCtx}

	// loadContents on File inputs.
	for _, in := range tool.Inputs {
		if in.Binding != nil && in.Binding.LoadContents {
			if f, ok := inputs.Value(in.ID).(*yamlx.Map); ok && f.GetString("class") == "File" {
				if err := LoadFileContents(f); err != nil {
					return nil, fmt.Errorf("loadContents %q: %w", in.ID, err)
				}
			}
		}
	}

	// InitialWorkDirRequirement staging.
	if reqs.WorkDir != nil {
		if err := stageWorkDir(reqs.WorkDir, eng, ctx, outdir); err != nil {
			return nil, fmt.Errorf("tool %s: InitialWorkDir: %w", toolName(tool), err)
		}
	}

	argv, parts, err := BuildCommandLine(tool, inputs, eng, runtimeCtx)
	if err != nil {
		return nil, fmt.Errorf("tool %s: %w", toolName(tool), err)
	}

	spec := ExecSpec{Argv: argv, Dir: outdir, Walltime: effectiveWalltime(opts.Walltime, reqs.TimeLimitSec)}
	if reqs.ShellCommand {
		spec.UseShell = true
		spec.ShellCmd = ShellCommand(tool, argv, parts)
	}
	for _, ev := range reqs.EnvVars {
		val := ev.Value
		if cwlexpr.NeedsEval(val) {
			s, err := eng.EvalToString(val, ctx)
			if err != nil {
				return nil, fmt.Errorf("env %s: %w", ev.Name, err)
			}
			val = s
		}
		spec.Env = append(spec.Env, ev.Name+"="+val)
	}

	stdinPath, stdoutPath, stderrPath, err := resolveStdio(tool, eng, ctx, outdir)
	if err != nil {
		return nil, err
	}
	if opts.StdoutPath != "" {
		stdoutPath = opts.StdoutPath
		if !filepath.IsAbs(stdoutPath) {
			stdoutPath = filepath.Join(outdir, stdoutPath)
		}
	}
	if opts.StderrPath != "" {
		stderrPath = opts.StderrPath
		if !filepath.IsAbs(stderrPath) {
			stderrPath = filepath.Join(outdir, stderrPath)
		}
	}
	spec.Stdin, spec.Stdout, spec.Stderr = stdinPath, stdoutPath, stderrPath

	res, err := backend.Run(spec)
	if err != nil {
		return nil, fmt.Errorf("tool %s: %w", toolName(tool), err)
	}
	if !exitOK(res.ExitCode, tool.SuccessCodes) {
		return &ToolResult{ExitCode: res.ExitCode, OutDir: outdir, Argv: argv},
			fmt.Errorf("tool %s: exit code %d (command: %s)", toolName(tool), res.ExitCode, strings.Join(argv, " "))
	}

	outputs, err := CollectOutputs(tool, eng, ctx, outdir, stdoutPath, stderrPath)
	if err != nil {
		return nil, fmt.Errorf("tool %s: %w", toolName(tool), err)
	}
	succeeded = true
	return &ToolResult{Outputs: outputs, ExitCode: res.ExitCode, OutDir: outdir, Argv: argv}, nil
}

// effectiveWalltime combines the caller's walltime bound with the document's
// ToolTimeLimit: whichever is tighter wins; 0 means unbounded on either side.
func effectiveWalltime(opt time.Duration, limitSec int64) time.Duration {
	lim := time.Duration(limitSec) * time.Second
	if lim <= 0 {
		return opt
	}
	if opt <= 0 || lim < opt {
		return lim
	}
	return opt
}

func toolName(tool *cwl.CommandLineTool) string {
	if tool.ID != "" {
		return tool.ID
	}
	if tool.Path != "" {
		base := filepath.Base(tool.Path)
		return strings.TrimSuffix(base, filepath.Ext(base))
	}
	if len(tool.BaseCommand) > 0 {
		return tool.BaseCommand[0]
	}
	return "tool"
}

func exitOK(code int, successCodes []int) bool {
	if len(successCodes) == 0 {
		return code == 0
	}
	for _, c := range successCodes {
		if c == code {
			return true
		}
	}
	return false
}

func resolveStdio(tool *cwl.CommandLineTool, eng *cwlexpr.Engine, ctx cwlexpr.Context, outdir string) (stdin, stdout, stderr string, err error) {
	resolve := func(s string) (string, error) {
		if s == "" {
			return "", nil
		}
		if cwlexpr.NeedsEval(s) {
			return eng.EvalToString(s, ctx)
		}
		return s, nil
	}
	if stdin, err = resolve(tool.Stdin); err != nil {
		return
	}
	if stdin != "" && !filepath.IsAbs(stdin) {
		stdin = filepath.Join(outdir, stdin)
	}
	if stdout, err = resolve(tool.Stdout); err != nil {
		return
	}
	if stderr, err = resolve(tool.Stderr); err != nil {
		return
	}
	// Outputs typed stdout/stderr force capture even without a filename.
	for _, out := range tool.Outputs {
		if out.Type == nil {
			continue
		}
		if out.Type.Name == "stdout" && stdout == "" {
			stdout = out.ID + ".stdout.txt"
		}
		if out.Type.Name == "stderr" && stderr == "" {
			stderr = out.ID + ".stderr.txt"
		}
	}
	if stdout != "" && !filepath.IsAbs(stdout) {
		stdout = filepath.Join(outdir, stdout)
	}
	if stderr != "" && !filepath.IsAbs(stderr) {
		stderr = filepath.Join(outdir, stderr)
	}
	return
}

func stageWorkDir(wd *cwl.InitialWorkDir, eng *cwlexpr.Engine, ctx cwlexpr.Context, outdir string) error {
	for i, ent := range wd.Listing {
		name := ent.EntryName
		if cwlexpr.NeedsEval(name) {
			s, err := eng.EvalToString(name, ctx)
			if err != nil {
				return fmt.Errorf("listing[%d] entryname: %w", i, err)
			}
			name = s
		}
		content := ent.Entry
		if cwlexpr.NeedsEval(content) {
			v, err := eng.Eval(content, ctx)
			if err != nil {
				return fmt.Errorf("listing[%d] entry: %w", i, err)
			}
			// A File object stages by copying; anything else by rendering.
			if f, ok := v.(*yamlx.Map); ok && f.GetString("class") == "File" {
				src := f.GetString("path")
				if name == "" {
					name = f.GetString("basename")
				}
				data, err := os.ReadFile(src)
				if err != nil {
					return err
				}
				if err := os.WriteFile(filepath.Join(outdir, name), data, 0o644); err != nil {
					return err
				}
				continue
			}
			content = cwlexpr.ValueToString(v)
		}
		if name == "" {
			return fmt.Errorf("listing[%d]: missing entryname", i)
		}
		if err := os.WriteFile(filepath.Join(outdir, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// CollectOutputs gathers a finished job's outputs per each output's type and
// binding.
func CollectOutputs(tool *cwl.CommandLineTool, eng *cwlexpr.Engine, ctx cwlexpr.Context, outdir, stdoutPath, stderrPath string) (*yamlx.Map, error) {
	outputs := yamlx.NewMap()
	for _, out := range tool.Outputs {
		if out.Type == nil {
			continue
		}
		switch out.Type.Name {
		case "stdout":
			outputs.Set(out.ID, MakeFileObject("File", stdoutPath))
			continue
		case "stderr":
			outputs.Set(out.ID, MakeFileObject("File", stderrPath))
			continue
		}
		if out.Binding == nil {
			outputs.Set(out.ID, nil)
			continue
		}
		var matches []any
		for _, pattern := range out.Binding.Glob {
			p := pattern
			if cwlexpr.NeedsEval(p) {
				s, err := eng.EvalToString(p, ctx)
				if err != nil {
					return nil, fmt.Errorf("output %q glob: %w", out.ID, err)
				}
				p = s
			}
			paths, err := filepath.Glob(filepath.Join(outdir, p))
			if err != nil {
				return nil, fmt.Errorf("output %q glob %q: %w", out.ID, p, err)
			}
			for _, path := range paths {
				f := MakeFileObject("File", path)
				if out.Binding.LoadContents {
					if err := LoadFileContents(f); err != nil {
						return nil, fmt.Errorf("output %q loadContents: %w", out.ID, err)
					}
				}
				matches = append(matches, f)
			}
		}
		var value any
		switch {
		case out.Binding.OutputEval != "":
			ectx := ctx
			ectx.Self = matches
			v, err := eng.Eval(out.Binding.OutputEval, ectx)
			if err != nil {
				return nil, fmt.Errorf("output %q outputEval: %w", out.ID, err)
			}
			value = v
		case out.Type.Name == "array":
			value = matches
		case len(matches) == 0:
			if !out.Type.Optional {
				return nil, fmt.Errorf("output %q: no file matched glob %v in %s", out.ID, out.Binding.Glob, outdir)
			}
			value = nil
		case len(matches) > 1:
			return nil, fmt.Errorf("output %q: glob matched %d files, want 1", out.ID, len(matches))
		default:
			value = matches[0]
		}
		outputs.Set(out.ID, value)
	}
	return outputs, nil
}
