package pyexpr

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/yamlx"
)

func evalP(t *testing.T, src string, vars map[string]any) any {
	t.Helper()
	v, err := New().EvalExpr(src, vars)
	if err != nil {
		t.Fatalf("EvalExpr(%q): %v", src, err)
	}
	return v
}

func bodyP(t *testing.T, src string, vars map[string]any) any {
	t.Helper()
	v, err := New().EvalBody(src, vars)
	if err != nil {
		t.Fatalf("EvalBody(%q): %v", src, err)
	}
	return v
}

func TestPyLiterals(t *testing.T) {
	cases := []struct {
		src  string
		want any
	}{
		{"42", int64(42)},
		{"-3", int64(-3)},
		{"3.5", 3.5},
		{"1_000_000", int64(1000000)},
		{"1e3", 1000.0},
		{`"hello"`, "hello"},
		{"'world'", "world"},
		{`"a\nb"`, "a\nb"},
		{"True", true},
		{"False", false},
		{"None", nil},
		{`"con" "cat"`, "concat"},
		{`r"raw\n"`, `raw\n`},
	}
	for _, c := range cases {
		if got := evalP(t, c.src, nil); got != c.want {
			t.Errorf("%s = %#v (%T), want %#v", c.src, got, got, c.want)
		}
	}
}

func TestPyArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want any
	}{
		{"1 + 2", int64(3)},
		{"7 - 10", int64(-3)},
		{"6 * 7", int64(42)},
		{"7 / 2", 3.5}, // true division
		{"7 // 2", int64(3)},
		{"-7 // 2", int64(-4)}, // floor division
		{"7 % 3", int64(1)},
		{"-7 % 3", int64(2)}, // Python modulo sign
		{"2 ** 10", int64(1024)},
		{"2 ** -1", 0.5},
		{"1 + 2 * 3", int64(7)},
		{"(1 + 2) * 3", int64(9)},
		{"1.5 + 1", 2.5},
		{"True + 1", int64(2)},
		{`"ab" + "cd"`, "abcd"},
		{`"ab" * 3`, "ababab"},
		{"10 / 4", 2.5},
	}
	for _, c := range cases {
		if got := evalP(t, c.src, nil); got != c.want {
			t.Errorf("%s = %#v (%T), want %#v", c.src, got, got, c.want)
		}
	}
}

func TestPyDivisionByZero(t *testing.T) {
	for _, src := range []string{"1 / 0", "1 // 0", "1 % 0"} {
		_, err := New().EvalExpr(src, nil)
		r, ok := err.(*Raised)
		if !ok || r.Exc.Type != "ZeroDivisionError" {
			t.Errorf("%s: err = %v", src, err)
		}
	}
}

func TestPyComparisons(t *testing.T) {
	cases := []struct {
		src  string
		want any
	}{
		{"1 < 2", true},
		{"2 <= 2", true},
		{"3 > 4", false},
		{"1 == 1.0", true},
		{"1 != 2", true},
		{`"a" < "b"`, true},
		{"1 < 2 < 3", true},  // chained
		{"1 < 2 > 3", false}, // chained
		{"0 <= 5 <= 10", true},
		{"[1, 2] == [1, 2]", true},
		{"(1, 2) == (1, 2)", true},
		{"[1, 2] < [1, 3]", true},
		{"{'a': 1} == {'a': 1}", true},
		{"None is None", true},
		{"None is not None", false},
		{"1 in [1, 2]", true},
		{"3 not in [1, 2]", true},
		{`"ell" in "hello"`, true},
		{`"k" in {"k": 1}`, true},
		{"2 in range(5)", true},
		{"7 in range(5)", false},
		{"True and False", false},
		{"True or False", true},
		{"not True", false},
		{`"" or "fallback"`, "fallback"},
		{"0 and 1", int64(0)},
	}
	for _, c := range cases {
		if got := evalP(t, c.src, nil); got != c.want {
			t.Errorf("%s = %#v, want %#v", c.src, got, c.want)
		}
	}
}

func TestPyTernaryAndLambda(t *testing.T) {
	if got := evalP(t, `"yes" if 1 < 2 else "no"`, nil); got != "yes" {
		t.Errorf("ternary = %#v", got)
	}
	if got := evalP(t, "(lambda x: x * 2)(21)", nil); got != int64(42) {
		t.Errorf("lambda = %#v", got)
	}
	if got := evalP(t, "(lambda x, y=10: x + y)(5)", nil); got != int64(15) {
		t.Errorf("lambda default = %#v", got)
	}
}

func TestPyStringMethods(t *testing.T) {
	cases := []struct {
		src  string
		want any
	}{
		{`"hello world".title()`, "Hello World"},
		{`"hELLO wORLD".title()`, "Hello World"},
		{`"hello".upper()`, "HELLO"},
		{`"HELLO".lower()`, "hello"},
		{`"hello".capitalize()`, "Hello"},
		{`"  x  ".strip()`, "x"},
		{`"xxhixx".strip("x")`, "hi"},
		{`"  x".lstrip()`, "x"},
		{`"x  ".rstrip()`, "x"},
		{`"a,b,c".split(",")[1]`, "b"},
		{`len("a b  c".split())`, int64(3)},
		{`"a,b,c".split(",", 1)[1]`, "b,c"},
		{`"-".join(["a", "b"])`, "a-b"},
		{`"hello".replace("l", "L")`, "heLLo"},
		{`"data.csv".endswith(".csv")`, true},
		{`"data.csv".endswith((".tsv", ".csv"))`, true},
		{`"data.csv".startswith("data")`, true},
		{`"hello".find("ll")`, int64(2)},
		{`"hello".find("z")`, int64(-1)},
		{`"hello".count("l")`, int64(2)},
		{`"5".zfill(3)`, "005"},
		{`"-5".zfill(4)`, "-005"},
		{`"abc".ljust(5, ".")`, "abc.."},
		{`"abc".rjust(5, ".")`, "..abc"},
		{`"123".isdigit()`, true},
		{`"12a".isdigit()`, false},
		{`"abc".isalpha()`, true},
		{`"   ".isspace()`, true},
		{`"abc123".isalnum()`, true},
		{`"abc".islower()`, true},
		{`"ABC".isupper()`, true},
		{`"a\nb".splitlines()[1]`, "b"},
		{`"{} and {}".format(1, "two")`, "1 and two"},
		{`"{1}{0}".format("a", "b")`, "ba"},
		{`"{name}!".format(name="hi")`, "hi!"},
		{`"%s=%d" % ("x", 5)`, "x=5"},
		{`"%.2f" % 3.14159`, "3.14"},
		{`len("héllo")`, int64(5)}, // rune length
		{`"hello"[1]`, "e"},
		{`"hello"[-1]`, "o"},
		{`"hello"[1:3]`, "el"},
		{`"hello"[:2]`, "he"},
		{`"hello"[2:]`, "llo"},
		{`"hello"[::-1]`, "olleh"},
		{`"hello"[::2]`, "hlo"},
	}
	for _, c := range cases {
		if got := evalP(t, c.src, nil); got != c.want {
			t.Errorf("%s = %#v, want %#v", c.src, got, c.want)
		}
	}
}

func TestPyFStrings(t *testing.T) {
	vars := map[string]any{"name": "world", "n": int64(7), "pi": 3.14159}
	cases := []struct {
		src  string
		want string
	}{
		{`f"hello {name}"`, "hello world"},
		{`f"{n} + 1 = {n + 1}"`, "7 + 1 = 8"},
		{`f"{pi:.2f}"`, "3.14"},
		{`f"{n:04d}"`, "0007"},
		{`f"{name:>10}"`, "     world"},
		{`f"{name:<10}|"`, "world     |"},
		{`f"{{literal}}"`, "{literal}"},
		{`f"{name!r}"`, "'world'"},
		{`f"{name.upper()}"`, "WORLD"},
		{`f"{'a' + 'b'}"`, "ab"},
		{`f""`, ""},
		{`f"{1000000:,d}"`, "1,000,000"},
	}
	for _, c := range cases {
		if got := evalP(t, c.src, vars); got != c.want {
			t.Errorf("%s = %#v, want %q", c.src, got, c.want)
		}
	}
}

func TestPyListsAndDicts(t *testing.T) {
	cases := []struct {
		src  string
		want string // JSON
	}{
		{"[1, 2, 3]", "[1,2,3]"},
		{"[1, 2][0]", "1"},
		{"[1, 2, 3][-1]", "3"},
		{"[1, 2, 3][1:]", "[2,3]"},
		{"[3, 1, 2]", "[3,1,2]"},
		{"sorted([3, 1, 2])", "[1,2,3]"},
		{"sorted([3, 1, 2], reverse=True)", "[3,2,1]"},
		{`sorted(["bb", "a"], key=lambda s: len(s))`, `["a","bb"]`},
		{"list(range(4))", "[0,1,2,3]"},
		{"list(range(1, 7, 2))", "[1,3,5]"},
		{"list(range(5, 0, -1))", "[5,4,3,2,1]"},
		{"len([1, 2])", "2"},
		{"sum([1, 2, 3])", "6"},
		{"min([3, 1, 2])", "1"},
		{"max(3, 1, 2)", "3"},
		{"any([False, True])", "true"},
		{"all([True, True])", "true"},
		{"list(reversed([1, 2, 3]))", "[3,2,1]"},
		{"[x * 2 for x in [1, 2, 3]]", "[2,4,6]"},
		{"[x for x in range(10) if x % 3 == 0]", "[0,3,6,9]"},
		{"[k for k, v in {'a': 1, 'b': 2}.items()]", `["a","b"]`},
		{`{"a": 1}["a"]`, "1"},
		{`{"a": 1}.get("b", 99)`, "99"},
		{`list({"a": 1, "b": 2}.keys())`, `["a","b"]`},
		{`list({"a": 1, "b": 2}.values())`, "[1,2]"},
		{"list(zip([1, 2], ['a', 'b']))[1]", `[2,"b"]`},
		{"list(enumerate(['x', 'y']))[1]", `[1,"y"]`},
		{"(1, 2, 3)[1]", "2"},
		{"len(set([1, 2, 2, 3]))", "3"},
		{"[1, 2] + [3]", "[1,2,3]"},
		{"[0] * 3", "[0,0,0]"},
	}
	for _, c := range cases {
		got := evalP(t, c.src, nil)
		b, err := json.Marshal(got)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if string(b) != c.want {
			t.Errorf("%s = %s, want %s", c.src, b, c.want)
		}
	}
}

func TestPyBuiltinConversions(t *testing.T) {
	cases := []struct {
		src  string
		want any
	}{
		{`int("42")`, int64(42)},
		{"int(3.9)", int64(3)},
		{"int(True)", int64(1)},
		{`float("2.5")`, 2.5},
		{"float(2)", 2.0},
		{"str(42)", "42"},
		{"str(2.5)", "2.5"},
		{"str(None)", "None"},
		{"str(True)", "True"},
		{"str([1, 'a'])", "[1, 'a']"},
		{"repr('x')", "'x'"},
		{"bool([])", false},
		{"bool([0])", true},
		{"abs(-2.5)", 2.5},
		{"round(2.675, 2)", 2.68},
		{"round(2.5)", int64(3)},
		{"type(1)", "int"},
		{"type('x')", "str"},
		{"isinstance(1, int)", true},
		{"isinstance('a', str)", true},
		{"isinstance(1, str)", false},
		{"isinstance(1, (str, int))", true},
		{"isinstance(True, int)", true},
	}
	for _, c := range cases {
		if got := evalP(t, c.src, nil); got != c.want {
			t.Errorf("%s = %#v, want %#v", c.src, got, c.want)
		}
	}
}

func TestPyIntError(t *testing.T) {
	_, err := New().EvalExpr(`int("abc")`, nil)
	r, ok := err.(*Raised)
	if !ok || r.Exc.Type != "ValueError" {
		t.Fatalf("err = %v", err)
	}
}

func TestPyDefAndCall(t *testing.T) {
	ip := New()
	err := ip.LoadLib(`
def double(x):
    return x * 2

def greet(name, punct="!"):
    return "Hello, " + name + punct

BASE = 100
`)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := ip.EvalExpr("double(21)", nil); err != nil || v != int64(42) {
		t.Errorf("double = %#v err=%v", v, err)
	}
	if v, err := ip.EvalExpr(`greet("CWL")`, nil); err != nil || v != "Hello, CWL!" {
		t.Errorf("greet = %#v err=%v", v, err)
	}
	if v, err := ip.EvalExpr(`greet("CWL", punct="?")`, nil); err != nil || v != "Hello, CWL?" {
		t.Errorf("greet kw = %#v err=%v", v, err)
	}
	if v, err := ip.EvalExpr("BASE + 1", nil); err != nil || v != int64(101) {
		t.Errorf("BASE = %#v err=%v", v, err)
	}
}

func TestPyCallAPI(t *testing.T) {
	ip := New()
	if err := ip.LoadLib("def add(a, b):\n    return a + b\n"); err != nil {
		t.Fatal(err)
	}
	v, err := ip.Call("add", int64(2), int64(3))
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(5) {
		t.Errorf("v = %#v", v)
	}
	if _, err := ip.Call("missing"); err == nil {
		t.Error("expected error for missing function")
	}
}

func TestPyControlFlow(t *testing.T) {
	v := bodyP(t, `
total = 0
for i in range(1, 11):
    if i % 2 == 0:
        continue
    if i > 8:
        break
    total += i
return total
`, nil)
	if v != int64(16) { // 1+3+5+7
		t.Errorf("total = %#v", v)
	}
}

func TestPyWhile(t *testing.T) {
	v := bodyP(t, `
n = 1
count = 0
while n < 100:
    n = n * 2
    count += 1
return count
`, nil)
	if v != int64(7) {
		t.Errorf("count = %#v", v)
	}
}

func TestPyElifChain(t *testing.T) {
	src := `
def classify(n):
    if n < 0:
        return "neg"
    elif n == 0:
        return "zero"
    elif n < 10:
        return "small"
    else:
        return "big"
return [classify(-1), classify(0), classify(5), classify(50)]
`
	v := bodyP(t, src, nil)
	b, _ := json.Marshal(v)
	if string(b) != `["neg","zero","small","big"]` {
		t.Errorf("got %s", b)
	}
}

func TestPyRecursion(t *testing.T) {
	v := bodyP(t, `
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
return fib(15)
`, nil)
	if v != int64(610) {
		t.Errorf("fib = %#v", v)
	}
}

func TestPyClosures(t *testing.T) {
	v := bodyP(t, `
def make_adder(n):
    def add(x):
        return x + n
    return add
add5 = make_adder(5)
return add5(10)
`, nil)
	if v != int64(15) {
		t.Errorf("v = %#v", v)
	}
}

func TestPyTupleUnpack(t *testing.T) {
	v := bodyP(t, `
a, b = (1, 2)
pairs = [(1, "x"), (2, "y")]
out = []
for n, s in pairs:
    out.append(s * n)
return [a, b, out]
`, nil)
	b, _ := json.Marshal(v)
	if string(b) != `[1,2,["x","yy"]]` {
		t.Errorf("got %s", b)
	}
}

func TestPyRaiseAndCatch(t *testing.T) {
	v := bodyP(t, `
def risky(x):
    if x < 0:
        raise ValueError("negative input")
    return x

try:
    risky(-1)
except ValueError as e:
    return "caught: " + str(e)
`, nil)
	if v != "caught: negative input" {
		t.Errorf("v = %#v", v)
	}
}

func TestPyUncaughtRaise(t *testing.T) {
	_, err := New().EvalBody(`raise Exception("boom")`, nil)
	r, ok := err.(*Raised)
	if !ok || r.Exc.Type != "Exception" || r.Exc.Msg != "boom" {
		t.Fatalf("err = %v", err)
	}
}

func TestPyExceptHierarchy(t *testing.T) {
	// except Exception catches ValueError.
	v := bodyP(t, `
try:
    raise ValueError("ve")
except Exception:
    return "caught"
`, nil)
	if v != "caught" {
		t.Errorf("v = %#v", v)
	}
	// except KeyError does NOT catch ValueError.
	_, err := New().EvalBody(`
try:
    raise ValueError("ve")
except KeyError:
    return "wrong"
`, nil)
	if err == nil {
		t.Error("ValueError should escape except KeyError")
	}
}

func TestPyFinally(t *testing.T) {
	ip := New()
	v, err := ip.EvalBody(`
log = []
try:
    log.append("try")
    raise ValueError("x")
except ValueError:
    log.append("except")
finally:
    log.append("finally")
return log
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(v)
	if string(b) != `["try","except","finally"]` {
		t.Errorf("got %s", b)
	}
}

func TestPyRuntimeErrorsCatchable(t *testing.T) {
	v := bodyP(t, `
try:
    x = [1, 2][10]
except IndexError:
    return "index"
`, nil)
	if v != "index" {
		t.Errorf("v = %#v", v)
	}
	v = bodyP(t, `
try:
    x = {"a": 1}["b"]
except KeyError:
    return "key"
`, nil)
	if v != "key" {
		t.Errorf("v = %#v", v)
	}
}

func TestPyInfiniteLoopBudget(t *testing.T) {
	ip := New()
	ip.SetMaxSteps(10_000)
	_, err := ip.EvalBody("while True:\n    pass\n", nil)
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("err = %v", err)
	}
}

func TestPySyntaxErrors(t *testing.T) {
	bad := []string{
		"def f(:\n    pass",
		"1 +",
		"if True\n    pass",
		"import os",
		"class X:\n    pass",
		"x = = 2",
		"'unterminated",
	}
	for _, src := range bad {
		if _, err := New().EvalBody(src, nil); err == nil {
			t.Errorf("EvalBody(%q) succeeded, want error", src)
		}
	}
}

func TestPyIndentationError(t *testing.T) {
	_, err := New().EvalBody("if True:\n    x = 1\n   y = 2\n", nil)
	if err == nil {
		t.Fatal("expected inconsistent indentation error")
	}
}

func TestPyPrintCapture(t *testing.T) {
	ip := New()
	_, err := ip.EvalBody(`print("a", 1, sep="-")`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ip.Stdout.String() != "a-1\n" {
		t.Errorf("stdout = %q", ip.Stdout.String())
	}
}

func TestPyDocstringsIgnored(t *testing.T) {
	ip := New()
	err := ip.LoadLib(`
def documented(x):
    """
    This is a docstring.

    Args:
        x: a thing
    """
    return x
`)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := ip.Call("documented", int64(1)); err != nil || v != int64(1) {
		t.Errorf("v = %#v err = %v", v, err)
	}
}

func TestPaperListing5CapitalizeWords(t *testing.T) {
	// Verbatim function from the paper's Listing 5.
	ip := New()
	err := ip.LoadLib(`
def capitalize_words(message):
    """
    Capitalize each word in the given message.

    Args:
        message (str): The input message.

    Returns:
        str: The message with each word capitalized.
    """
    return message.title()
`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ip.Call("capitalize_words", "hello, world")
	if err != nil {
		t.Fatal(err)
	}
	if v != "Hello, World" {
		t.Errorf("v = %#v", v)
	}
}

func TestPaperListing6ValidFile(t *testing.T) {
	// Verbatim function from the paper's Listing 6.
	ip := New()
	err := ip.LoadLib(`
def valid_file(file, ext):
    """
    Check if a file is valid

    Args:
        file (str): Path to the file
        ext (str): Expected file extension

    Raises:
        Exception: If the file is invalid
    """
    if not file.lower().endswith(ext):
        raise Exception(f"Invalid file. Expected '{ext}'")
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ip.Call("valid_file", "data.CSV", ".csv"); err != nil {
		t.Errorf("valid csv rejected: %v", err)
	}
	_, err = ip.Call("valid_file", "data.txt", ".csv")
	r, ok := err.(*Raised)
	if !ok {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(r.Exc.Msg, "Expected '.csv'") {
		t.Errorf("msg = %q", r.Exc.Msg)
	}
}

func TestPyConversionBoundary(t *testing.T) {
	ip := New()
	vars := map[string]any{
		"inputs": yamlx.MapOf(
			"count", int64(5),
			"names", []any{"a", "b"},
			"file", yamlx.MapOf("basename", "x.csv"),
		),
	}
	// Dict attribute access extension: file.basename works like CWL users expect.
	if v, err := ip.EvalExpr(`inputs["file"].basename`, vars); err != nil || v != "x.csv" {
		t.Errorf("attr = %#v err=%v", v, err)
	}
	if v, err := ip.EvalExpr(`inputs["names"][1]`, vars); err != nil || v != "b" {
		t.Errorf("idx = %#v err=%v", v, err)
	}
	// int64 stays int64 through the boundary (no float mangling like JS).
	if v, err := ip.EvalExpr(`inputs["count"] + 1`, vars); err != nil || v != int64(6) {
		t.Errorf("count = %#v err=%v", v, err)
	}
}

// Property: Python arithmetic on int64 matches Go for + - * and Python
// floor-division/modulo laws hold: (a//b)*b + a%b == a.
func TestPyArithmeticProperty(t *testing.T) {
	ip := New()
	f := func(a, b int16) bool {
		v, err := ip.EvalExpr("a + b * 3 - a * b", map[string]any{"a": int64(a), "b": int64(b)})
		if err != nil {
			return false
		}
		if v != int64(a)+int64(b)*3-int64(a)*int64(b) {
			return false
		}
		if b == 0 {
			return true
		}
		v2, err := ip.EvalExpr("(a // b) * b + a % b == a", map[string]any{"a": int64(a), "b": int64(b)})
		if err != nil {
			return false
		}
		return v2 == true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: title() is idempotent.
func TestPyTitleIdempotentProperty(t *testing.T) {
	f := func(words []string) bool {
		s := strings.Join(words, " ")
		once := pyTitle(s)
		twice := pyTitle(once)
		return once == twice
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: ToPy/FromPy round-trips document values exactly (ints preserved).
func TestPyConversionRoundTripProperty(t *testing.T) {
	f := func(n int64, s string, b bool) bool {
		in := []any{n, s, b, nil, []any{n, s}, map[string]any{"k": n}}
		out := FromPy(ToPy(in))
		outs, ok := out.([]any)
		if !ok || len(outs) != 6 {
			return false
		}
		if outs[0] != n || outs[1] != s || outs[2] != b || outs[3] != nil {
			return false
		}
		inner, ok := outs[4].([]any)
		if !ok || inner[0] != n || inner[1] != s {
			return false
		}
		m, ok := outs[5].(*yamlx.Map)
		return ok && m.Value("k") == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPySortStability(t *testing.T) {
	v := bodyP(t, `
pairs = [("b", 1), ("a", 2), ("b", 0), ("a", 1)]
s = sorted(pairs, key=lambda p: p[0])
return [p[1] for p in s]
`, nil)
	b, _ := json.Marshal(v)
	if string(b) != "[2,1,1,0]" {
		t.Errorf("got %s (stability violated)", b)
	}
}

func TestPyListMutation(t *testing.T) {
	v := bodyP(t, `
l = [1, 2, 3]
l.append(4)
l.extend([5, 6])
l.remove(2)
l.insert(0, 0)
popped = l.pop()
l.reverse()
return [l, popped, l.count(3), l.index(4)]
`, nil)
	b, _ := json.Marshal(v)
	if string(b) != `[[5,4,3,1,0],6,1,1]` {
		t.Errorf("got %s", b)
	}
}

func TestPyDictMutation(t *testing.T) {
	v := bodyP(t, `
d = {"a": 1}
d["b"] = 2
d.update({"c": 3})
d.setdefault("d", 4)
d.pop("a")
return d
`, nil)
	b, _ := json.Marshal(v)
	if string(b) != `{"b":2,"c":3,"d":4}` {
		t.Errorf("got %s", b)
	}
}

func TestPyNameError(t *testing.T) {
	_, err := New().EvalExpr("missing_name", nil)
	r, ok := err.(*Raised)
	if !ok || r.Exc.Type != "NameError" {
		t.Fatalf("err = %v", err)
	}
}

func TestPySemicolonsAndInlineSuites(t *testing.T) {
	v := bodyP(t, "x = 1; y = 2\nif x < y: return \"lt\"\nreturn \"ge\"", nil)
	if v != "lt" {
		t.Errorf("v = %#v", v)
	}
}
