package pyexpr

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestProgramConcurrentEval proves one compiled Program plus one Interp are
// goroutine-safe (run with -race): concurrent evaluations with distinct
// variables never observe each other.
func TestProgramConcurrentEval(t *testing.T) {
	ip := New()
	if err := ip.LoadLib("BASE = 100\ndef scale(v):\n    return v * 2 + BASE\n"); err != nil {
		t.Fatal(err)
	}
	prog, err := CompileExpr("scale(x) + len([i for i in range(x % 5)])")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				x := g*200 + i
				v, err := ip.RunProgram(prog, map[string]any{"x": x})
				if err != nil {
					errs <- err
					return
				}
				want := int64(x*2 + 100 + x%5)
				if v != want {
					errs <- fmt.Errorf("x=%d: got %v, want %d", x, v, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMutableLibGlobalsSerialize covers list/dict library globals mutated in
// place: such interpreters serialize evaluation, so concurrent use stays
// race-free (run with -race) and every mutation lands.
func TestMutableLibGlobalsSerialize(t *testing.T) {
	ip := New()
	if err := ip.LoadLib("hits = []\n"); err != nil {
		t.Fatal(err)
	}
	prog, err := CompileBody("hits.append(x)\nreturn len(hits)\n")
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, evals = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < evals; i++ {
				if _, err := ip.RunProgram(prog, map[string]any{"x": g}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	v, err := ip.EvalExpr("len(hits)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(goroutines*evals) {
		t.Errorf("len(hits) = %v, want %d (lost mutations)", v, goroutines*evals)
	}
}

// TestFunctionOnlyLibsStayParallel pins the serialization heuristic: plain
// function/scalar libraries run parallel; mutable defaults do not.
func TestFunctionOnlyLibsStayParallel(t *testing.T) {
	ip := New()
	if err := ip.LoadLib("K = 3\ndef f(v):\n    return v + K\n"); err != nil {
		t.Fatal(err)
	}
	ip.seal()
	if ip.serialize {
		t.Error("function-and-scalar library forced serialization")
	}
	mut := New()
	if err := mut.LoadLib("def g(v, acc=[]):\n    acc.append(v)\n    return acc\n"); err != nil {
		t.Fatal(err)
	}
	mut.seal()
	if !mut.serialize {
		t.Error("mutable-default library not serialized")
	}
}

// TestSealedGlobalIsolation verifies a rebind of a library global inside one
// evaluation binds locally and does not leak into later evaluations.
func TestSealedGlobalIsolation(t *testing.T) {
	ip := New()
	if err := ip.LoadLib("MODE = 'lib'\n"); err != nil {
		t.Fatal(err)
	}
	v, err := ip.EvalBody("MODE = 'local'\nreturn MODE\n", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != "local" {
		t.Fatalf("in-eval read = %v, want shadowed value", v)
	}
	v, err = ip.EvalExpr("MODE", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != "lib" {
		t.Fatalf("library global = %v after foreign eval, want 'lib'", v)
	}
}

// TestLoadLibAfterSeal verifies library loading is rejected once evaluation
// has sealed the global scope.
func TestLoadLibAfterSeal(t *testing.T) {
	ip := New()
	if _, err := ip.EvalExpr("1 + 1", nil); err != nil {
		t.Fatal(err)
	}
	if err := ip.LoadLib("def f():\n    return 1\n"); err == nil {
		t.Fatal("LoadLib after evaluation succeeded, want sealed-scope error")
	}
}

// TestBufferBounded verifies the print() sink never retains more than its
// cap — pooled engines live for the process lifetime, so the sink must not
// grow without bound.
func TestBufferBounded(t *testing.T) {
	var b Buffer
	chunk := strings.Repeat("x", 64*1024)
	for i := 0; i < 64; i++ {
		if _, err := b.WriteString(chunk); err != nil {
			t.Fatal(err)
		}
	}
	got := b.String()
	if len(got) > BufferMaxBytes+len(chunk) {
		t.Errorf("buffer retained %d bytes, cap is %d", len(got), BufferMaxBytes)
	}
	if !strings.Contains(got, "[...output trimmed...]") {
		t.Error("trim marker missing after overflow")
	}
}

// TestCallSerializesOnMutableLibs verifies Call takes the same serialization
// path as RunProgram (run with -race).
func TestCallSerializesOnMutableLibs(t *testing.T) {
	ip := New()
	if err := ip.LoadLib("hits = []\ndef add(v):\n    hits.append(v)\n    return len(hits)\n"); err != nil {
		t.Fatal(err)
	}
	prog, err := CompileExpr("add(x)")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if g%2 == 0 {
					if _, err := ip.Call("add", g); err != nil {
						t.Error(err)
						return
					}
				} else if _, err := ip.RunProgram(prog, map[string]any{"x": g}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	v, err := ip.EvalExpr("len(hits)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(8*25) {
		t.Errorf("len(hits) = %v, want %d", v, 8*25)
	}
}

// TestConcurrentPrint verifies the shared Stdout sink tolerates concurrent
// print() without tearing individual writes.
func TestConcurrentPrint(t *testing.T) {
	ip := New()
	prog, err := CompileBody("print('line', tag)\n")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := ip.RunProgram(prog, map[string]any{"tag": g}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(ip.Stdout.String(), "\n"), "\n")
	if len(lines) != 8*50 {
		t.Fatalf("got %d print lines, want %d", len(lines), 8*50)
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "line ") {
			t.Fatalf("torn print output: %q", ln)
		}
	}
}
