package pyexpr

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/yamlx"
)

// pyBinOp implements the arithmetic and sequence operators.
func pyBinOp(op string, l, r any, line int) (any, error) {
	// bool participates in arithmetic as 0/1.
	l = boolToInt(l)
	r = boolToInt(r)
	switch op {
	case "+":
		switch lv := l.(type) {
		case int64:
			switch rv := r.(type) {
			case int64:
				return lv + rv, nil
			case float64:
				return float64(lv) + rv, nil
			}
		case float64:
			switch rv := r.(type) {
			case int64:
				return lv + float64(rv), nil
			case float64:
				return lv + rv, nil
			}
		case string:
			if rv, ok := r.(string); ok {
				return lv + rv, nil
			}
		case *List:
			if rv, ok := r.(*List); ok {
				return &List{E: append(append([]any{}, lv.E...), rv.E...)}, nil
			}
		case *Tuple:
			if rv, ok := r.(*Tuple); ok {
				return &Tuple{E: append(append([]any{}, lv.E...), rv.E...)}, nil
			}
		}
		return nil, raisef("TypeError", "unsupported operand type(s) for +: '%s' and '%s' (line %d)", pyTypeName(l), pyTypeName(r), line)
	case "-":
		return numOp(l, r, line, "-", func(a, b int64) (int64, error) { return a - b, nil },
			func(a, b float64) float64 { return a - b })
	case "*":
		if ls, ok := l.(string); ok {
			if rn, ok := r.(int64); ok {
				return repeatStr(ls, rn)
			}
		}
		if rn, ok := l.(int64); ok {
			if rs, ok := r.(string); ok {
				return repeatStr(rs, rn)
			}
		}
		if ll, ok := l.(*List); ok {
			if rn, ok := r.(int64); ok {
				return repeatList(ll, rn)
			}
		}
		if ln, ok := l.(int64); ok {
			if rl, ok := r.(*List); ok {
				return repeatList(rl, ln)
			}
		}
		return numOp(l, r, line, "*", func(a, b int64) (int64, error) { return a * b, nil },
			func(a, b float64) float64 { return a * b })
	case "/":
		ln, lok := toFloat(l)
		rn, rok := toFloat(r)
		if !lok || !rok {
			return nil, raisef("TypeError", "unsupported operand type(s) for /: '%s' and '%s' (line %d)", pyTypeName(l), pyTypeName(r), line)
		}
		if rn == 0 {
			return nil, raisef("ZeroDivisionError", "division by zero (line %d)", line)
		}
		return ln / rn, nil
	case "//":
		return numOp(l, r, line, "//", func(a, b int64) (int64, error) {
			if b == 0 {
				return 0, raisef("ZeroDivisionError", "integer division or modulo by zero (line %d)", line)
			}
			q := a / b
			if (a%b != 0) && ((a < 0) != (b < 0)) {
				q--
			}
			return q, nil
		}, func(a, b float64) float64 { return math.Floor(a / b) })
	case "%":
		if ls, ok := l.(string); ok {
			// printf-style formatting with a single value or tuple.
			return pyPercentFormat(ls, r)
		}
		return numOp(l, r, line, "%", func(a, b int64) (int64, error) {
			if b == 0 {
				return 0, raisef("ZeroDivisionError", "integer division or modulo by zero (line %d)", line)
			}
			m := a % b
			if m != 0 && ((m < 0) != (b < 0)) {
				m += b
			}
			return m, nil
		}, func(a, b float64) float64 {
			m := math.Mod(a, b)
			if m != 0 && ((m < 0) != (b < 0)) {
				m += b
			}
			return m
		})
	case "**":
		if li, ok := l.(int64); ok {
			if ri, ok := r.(int64); ok && ri >= 0 {
				out := int64(1)
				for i := int64(0); i < ri; i++ {
					out *= li
				}
				return out, nil
			}
		}
		ln, lok := toFloat(l)
		rn, rok := toFloat(r)
		if !lok || !rok {
			return nil, raisef("TypeError", "unsupported operand type(s) for **: '%s' and '%s' (line %d)", pyTypeName(l), pyTypeName(r), line)
		}
		return math.Pow(ln, rn), nil
	}
	return nil, fmt.Errorf("unsupported operator %q (line %d)", op, line)
}

func boolToInt(v any) any {
	if b, ok := v.(bool); ok {
		if b {
			return int64(1)
		}
		return int64(0)
	}
	return v
}

func repeatStr(s string, n int64) (any, error) {
	if n < 0 {
		n = 0
	}
	if int64(len(s))*n > 100_000_000 {
		return nil, raisef("OverflowError", "repeated string is too long")
	}
	return strings.Repeat(s, int(n)), nil
}

func repeatList(l *List, n int64) (any, error) {
	if n < 0 {
		n = 0
	}
	if int64(len(l.E))*n > 50_000_000 {
		return nil, raisef("OverflowError", "repeated list is too long")
	}
	out := &List{}
	for i := int64(0); i < n; i++ {
		out.E = append(out.E, l.E...)
	}
	return out, nil
}

func numOp(l, r any, line int, opName string, iop func(a, b int64) (int64, error), fop func(a, b float64) float64) (any, error) {
	if li, ok := l.(int64); ok {
		if ri, ok := r.(int64); ok {
			return iop(li, ri)
		}
	}
	ln, lok := toFloat(l)
	rn, rok := toFloat(r)
	if !lok || !rok {
		return nil, raisef("TypeError", "unsupported operand type(s) for %s: '%s' and '%s' (line %d)", opName, pyTypeName(l), pyTypeName(r), line)
	}
	return fop(ln, rn), nil
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// pyCompare implements one link of a comparison chain.
func pyCompare(op string, l, r any, line int) (bool, error) {
	switch op {
	case "==":
		return pyEq(l, r), nil
	case "!=":
		return !pyEq(l, r), nil
	case "is":
		return pyIs(l, r), nil
	case "is not":
		return !pyIs(l, r), nil
	case "in":
		return pyContains(r, l, line)
	case "not in":
		ok, err := pyContains(r, l, line)
		return !ok, err
	}
	c, err := pyOrder(l, r, line)
	if err != nil {
		return false, err
	}
	switch op {
	case "<":
		return c < 0, nil
	case "<=":
		return c <= 0, nil
	case ">":
		return c > 0, nil
	case ">=":
		return c >= 0, nil
	}
	return false, fmt.Errorf("unsupported comparison %q", op)
}

func pyIs(l, r any) bool {
	if l == nil || r == nil {
		return l == nil && r == nil
	}
	if lb, ok := l.(bool); ok {
		rb, ok2 := r.(bool)
		return ok2 && lb == rb
	}
	return l == r
}

func pyEq(l, r any) bool {
	l, r = boolNorm(l), boolNorm(r)
	switch lv := l.(type) {
	case nil:
		return r == nil
	case bool:
		rv, ok := r.(bool)
		return ok && lv == rv
	case int64:
		switch rv := r.(type) {
		case int64:
			return lv == rv
		case float64:
			return float64(lv) == rv
		}
		return false
	case float64:
		switch rv := r.(type) {
		case int64:
			return lv == float64(rv)
		case float64:
			return lv == rv
		}
		return false
	case string:
		rv, ok := r.(string)
		return ok && lv == rv
	case *List:
		rv, ok := r.(*List)
		return ok && seqEq(lv.E, rv.E)
	case *Tuple:
		rv, ok := r.(*Tuple)
		return ok && seqEq(lv.E, rv.E)
	case *Set:
		rv, ok := r.(*Set)
		if !ok || len(lv.E) != len(rv.E) {
			return false
		}
		for _, e := range lv.E {
			found := false
			for _, f := range rv.E {
				if pyEq(e, f) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	case *Dict:
		rv, ok := r.(*Dict)
		if !ok || lv.Len() != rv.Len() {
			return false
		}
		eq := true
		lv.Range(func(k string, v any) bool {
			rvv, has := rv.Get(k)
			if !has || !pyEq(v, rvv) {
				eq = false
				return false
			}
			return true
		})
		return eq
	case *Exception:
		rv, ok := r.(*Exception)
		return ok && lv.Type == rv.Type && lv.Msg == rv.Msg
	}
	return l == r
}

// boolNorm keeps bool distinct from int for pyEq's type switch, except that
// Python treats True == 1. We normalize bools to int for numeric comparison
// only when the other side is numeric; handled by callers via boolToInt.
func boolNorm(v any) any { return v }

func seqEq(a, b []any) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !pyEq(a[i], b[i]) {
			return false
		}
	}
	return true
}

func pyOrder(l, r any, line int) (int, error) {
	ln, lok := toFloat(l)
	rn, rok := toFloat(r)
	if lok && rok {
		switch {
		case ln < rn:
			return -1, nil
		case ln > rn:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if ls, ok := l.(string); ok {
		if rs, ok := r.(string); ok {
			return strings.Compare(ls, rs), nil
		}
	}
	la, laok := sequenceOf(l)
	ra, raok := sequenceOf(r)
	if laok && raok && pyTypeName(l) == pyTypeName(r) {
		for i := 0; i < len(la) && i < len(ra); i++ {
			c, err := pyOrder(la[i], ra[i], line)
			if err != nil {
				return 0, err
			}
			if c != 0 {
				return c, nil
			}
		}
		switch {
		case len(la) < len(ra):
			return -1, nil
		case len(la) > len(ra):
			return 1, nil
		default:
			return 0, nil
		}
	}
	return 0, raisef("TypeError", "'<' not supported between instances of '%s' and '%s' (line %d)", pyTypeName(l), pyTypeName(r), line)
}

func pyContains(container, item any, line int) (bool, error) {
	switch c := container.(type) {
	case string:
		s, ok := item.(string)
		if !ok {
			return false, raisef("TypeError", "'in <string>' requires string as left operand (line %d)", line)
		}
		return strings.Contains(c, s), nil
	case *List:
		for _, e := range c.E {
			if pyEq(e, item) {
				return true, nil
			}
		}
		return false, nil
	case *Tuple:
		for _, e := range c.E {
			if pyEq(e, item) {
				return true, nil
			}
		}
		return false, nil
	case *Set:
		for _, e := range c.E {
			if pyEq(e, item) {
				return true, nil
			}
		}
		return false, nil
	case *Dict:
		ks, err := dictKey(item)
		if err != nil {
			return false, err
		}
		return c.Has(ks), nil
	case rangeVal:
		n, ok := item.(int64)
		if !ok {
			return false, nil
		}
		if c.step > 0 {
			return n >= c.start && n < c.stop && (n-c.start)%c.step == 0, nil
		}
		return n <= c.start && n > c.stop && (c.start-n)%(-c.step) == 0, nil
	}
	return false, raisef("TypeError", "argument of type '%s' is not iterable (line %d)", pyTypeName(container), line)
}

func pyGetItem(obj, key any, line int) (any, error) {
	switch o := obj.(type) {
	case *List:
		i, ok := key.(int64)
		if !ok {
			return nil, raisef("TypeError", "list indices must be integers, not %s (line %d)", pyTypeName(key), line)
		}
		idx, err := normIndex(i, len(o.E))
		if err != nil {
			return nil, err
		}
		return o.E[idx], nil
	case *Tuple:
		i, ok := key.(int64)
		if !ok {
			return nil, raisef("TypeError", "tuple indices must be integers (line %d)", line)
		}
		idx, err := normIndex(i, len(o.E))
		if err != nil {
			return nil, err
		}
		return o.E[idx], nil
	case string:
		i, ok := key.(int64)
		if !ok {
			return nil, raisef("TypeError", "string indices must be integers (line %d)", line)
		}
		runes := []rune(o)
		idx, err := normIndex(i, len(runes))
		if err != nil {
			return nil, err
		}
		return string(runes[idx]), nil
	case *Dict:
		ks, err := dictKey(key)
		if err != nil {
			return nil, err
		}
		if v, ok := o.Get(ks); ok {
			return v, nil
		}
		return nil, raisef("KeyError", "%s (line %d)", pyRepr(key), line)
	case rangeVal:
		i, ok := key.(int64)
		if !ok {
			return nil, raisef("TypeError", "range indices must be integers (line %d)", line)
		}
		n := o.length()
		if i < 0 {
			i += n
		}
		if i < 0 || i >= n {
			return nil, raisef("IndexError", "range object index out of range (line %d)", line)
		}
		return o.start + i*o.step, nil
	}
	return nil, raisef("TypeError", "'%s' object is not subscriptable (line %d)", pyTypeName(obj), line)
}

// getAttr resolves method lookups and, as a CWL convenience extension, dict
// item access via attribute syntax (File objects: f.basename).
func (ip *Interp) getAttr(obj any, name string, line int) (any, error) {
	switch o := obj.(type) {
	case string:
		if m, ok := strMethods[name]; ok {
			return &boundPyMethod{name: name, recv: o, fn: m}, nil
		}
	case *List:
		if m, ok := listMethods[name]; ok {
			return &boundPyMethod{name: name, recv: o, fn: m}, nil
		}
	case *Tuple:
		if m, ok := tupleMethods[name]; ok {
			return &boundPyMethod{name: name, recv: o, fn: m}, nil
		}
	case *Set:
		if m, ok := setMethods[name]; ok {
			return &boundPyMethod{name: name, recv: o, fn: m}, nil
		}
	case *Dict:
		if m, ok := dictMethods[name]; ok {
			return &boundPyMethod{name: name, recv: o, fn: m}, nil
		}
		if v, ok := o.Get(name); ok {
			return v, nil
		}
	case *Exception:
		switch name {
		case "args":
			return &Tuple{E: []any{o.Msg}}, nil
		case "message":
			return o.Msg, nil
		}
	}
	return nil, raisef("AttributeError", "'%s' object has no attribute '%s' (line %d)", pyTypeName(obj), name, line)
}

type pyMethod = func(ip *Interp, recv any, args []any, kw map[string]any) (any, error)

func strM(fn func(s string, args []any) (any, error)) pyMethod {
	return func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
		return fn(recv.(string), args)
	}
}

func pyArgStr(args []any, i int, name string) (string, error) {
	if i >= len(args) {
		return "", raisef("TypeError", "missing argument %q", name)
	}
	s, ok := args[i].(string)
	if !ok {
		return "", raisef("TypeError", "argument %q must be str, not %s", name, pyTypeName(args[i]))
	}
	return s, nil
}

var strMethods = map[string]pyMethod{
	"upper": strM(func(s string, _ []any) (any, error) { return strings.ToUpper(s), nil }),
	"lower": strM(func(s string, _ []any) (any, error) { return strings.ToLower(s), nil }),
	"title": strM(func(s string, _ []any) (any, error) { return pyTitle(s), nil }),
	"capitalize": strM(func(s string, _ []any) (any, error) {
		if s == "" {
			return s, nil
		}
		return strings.ToUpper(s[:1]) + strings.ToLower(s[1:]), nil
	}),
	"strip": strM(func(s string, args []any) (any, error) {
		if len(args) == 0 {
			return strings.TrimSpace(s), nil
		}
		cut, err := pyArgStr(args, 0, "chars")
		if err != nil {
			return nil, err
		}
		return strings.Trim(s, cut), nil
	}),
	"lstrip": strM(func(s string, args []any) (any, error) {
		if len(args) == 0 {
			return strings.TrimLeft(s, " \t\n\r\v\f"), nil
		}
		cut, err := pyArgStr(args, 0, "chars")
		if err != nil {
			return nil, err
		}
		return strings.TrimLeft(s, cut), nil
	}),
	"rstrip": strM(func(s string, args []any) (any, error) {
		if len(args) == 0 {
			return strings.TrimRight(s, " \t\n\r\v\f"), nil
		}
		cut, err := pyArgStr(args, 0, "chars")
		if err != nil {
			return nil, err
		}
		return strings.TrimRight(s, cut), nil
	}),
	"split": strM(func(s string, args []any) (any, error) {
		if len(args) == 0 || args[0] == nil {
			fields := strings.Fields(s)
			out := &List{E: make([]any, len(fields))}
			for i, f := range fields {
				out.E[i] = f
			}
			return out, nil
		}
		sep, err := pyArgStr(args, 0, "sep")
		if err != nil {
			return nil, err
		}
		if sep == "" {
			return nil, raisef("ValueError", "empty separator")
		}
		maxSplit := -1
		if len(args) > 1 {
			n, ok := args[1].(int64)
			if !ok {
				return nil, raisef("TypeError", "maxsplit must be int")
			}
			maxSplit = int(n)
		}
		var parts []string
		if maxSplit < 0 {
			parts = strings.Split(s, sep)
		} else {
			parts = strings.SplitN(s, sep, maxSplit+1)
		}
		out := &List{E: make([]any, len(parts))}
		for i, p := range parts {
			out.E[i] = p
		}
		return out, nil
	}),
	"splitlines": strM(func(s string, _ []any) (any, error) {
		s = strings.ReplaceAll(s, "\r\n", "\n")
		lines := strings.Split(strings.TrimSuffix(s, "\n"), "\n")
		out := &List{}
		if s == "" {
			return out, nil
		}
		for _, l := range lines {
			out.E = append(out.E, l)
		}
		return out, nil
	}),
	"join": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
		sep := recv.(string)
		if len(args) == 0 {
			return nil, raisef("TypeError", "join() takes exactly one argument")
		}
		items, err := iterValues(args[0], 0)
		if err != nil {
			return nil, err
		}
		parts := make([]string, len(items))
		for i, it := range items {
			s, ok := it.(string)
			if !ok {
				return nil, raisef("TypeError", "sequence item %d: expected str instance, %s found", i, pyTypeName(it))
			}
			parts[i] = s
		}
		return strings.Join(parts, sep), nil
	},
	"replace": strM(func(s string, args []any) (any, error) {
		old, err := pyArgStr(args, 0, "old")
		if err != nil {
			return nil, err
		}
		nw, err := pyArgStr(args, 1, "new")
		if err != nil {
			return nil, err
		}
		return strings.ReplaceAll(s, old, nw), nil
	}),
	"startswith": strM(func(s string, args []any) (any, error) {
		switch p := arg0(args).(type) {
		case string:
			return strings.HasPrefix(s, p), nil
		case *Tuple:
			for _, e := range p.E {
				if es, ok := e.(string); ok && strings.HasPrefix(s, es) {
					return true, nil
				}
			}
			return false, nil
		}
		return nil, raisef("TypeError", "startswith first arg must be str or a tuple of str")
	}),
	"endswith": strM(func(s string, args []any) (any, error) {
		switch p := arg0(args).(type) {
		case string:
			return strings.HasSuffix(s, p), nil
		case *Tuple:
			for _, e := range p.E {
				if es, ok := e.(string); ok && strings.HasSuffix(s, es) {
					return true, nil
				}
			}
			return false, nil
		}
		return nil, raisef("TypeError", "endswith first arg must be str or a tuple of str")
	}),
	"find": strM(func(s string, args []any) (any, error) {
		sub, err := pyArgStr(args, 0, "sub")
		if err != nil {
			return nil, err
		}
		return int64(strings.Index(s, sub)), nil
	}),
	"rfind": strM(func(s string, args []any) (any, error) {
		sub, err := pyArgStr(args, 0, "sub")
		if err != nil {
			return nil, err
		}
		return int64(strings.LastIndex(s, sub)), nil
	}),
	"index": strM(func(s string, args []any) (any, error) {
		sub, err := pyArgStr(args, 0, "sub")
		if err != nil {
			return nil, err
		}
		i := strings.Index(s, sub)
		if i < 0 {
			return nil, raisef("ValueError", "substring not found")
		}
		return int64(i), nil
	}),
	"count": strM(func(s string, args []any) (any, error) {
		sub, err := pyArgStr(args, 0, "sub")
		if err != nil {
			return nil, err
		}
		return int64(strings.Count(s, sub)), nil
	}),
	"zfill": strM(func(s string, args []any) (any, error) {
		n, ok := arg0(args).(int64)
		if !ok {
			return nil, raisef("TypeError", "zfill width must be int")
		}
		neg := strings.HasPrefix(s, "-")
		body := s
		if neg {
			body = s[1:]
		}
		for int64(len(body))+b2i(neg) < n {
			body = "0" + body
		}
		if neg {
			return "-" + body, nil
		}
		return body, nil
	}),
	"ljust":   justMethod(false),
	"rjust":   justMethod(true),
	"isdigit": classMethod(unicode.IsDigit),
	"isalpha": classMethod(unicode.IsLetter),
	"isspace": classMethod(unicode.IsSpace),
	"isalnum": classMethod(func(r rune) bool { return unicode.IsLetter(r) || unicode.IsDigit(r) }),
	"islower": strM(func(s string, _ []any) (any, error) {
		return s != "" && s == strings.ToLower(s) && s != strings.ToUpper(s), nil
	}),
	"isupper": strM(func(s string, _ []any) (any, error) {
		return s != "" && s == strings.ToUpper(s) && s != strings.ToLower(s), nil
	}),
	"format": func(ip *Interp, recv any, args []any, kw map[string]any) (any, error) {
		return pyStrFormat(recv.(string), args, kw)
	},
}

func arg0(args []any) any {
	if len(args) > 0 {
		return args[0]
	}
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func justMethod(right bool) pyMethod {
	return strM(func(s string, args []any) (any, error) {
		n, ok := arg0(args).(int64)
		if !ok {
			return nil, raisef("TypeError", "width must be int")
		}
		fill := " "
		if len(args) > 1 {
			f, ok := args[1].(string)
			if !ok || len(f) != 1 {
				return nil, raisef("TypeError", "fill character must be a single str")
			}
			fill = f
		}
		for int64(len(s)) < n {
			if right {
				s = fill + s
			} else {
				s = s + fill
			}
		}
		return s, nil
	})
}

func classMethod(pred func(rune) bool) pyMethod {
	return strM(func(s string, _ []any) (any, error) {
		if s == "" {
			return false, nil
		}
		for _, r := range s {
			if !pred(r) {
				return false, nil
			}
		}
		return true, nil
	})
}

// pyTitle reproduces str.title(): capitalize the first letter of each run of
// letters, lowercase the rest.
func pyTitle(s string) string {
	var b strings.Builder
	prevLetter := false
	for _, r := range s {
		if unicode.IsLetter(r) {
			if prevLetter {
				b.WriteRune(unicode.ToLower(r))
			} else {
				b.WriteRune(unicode.ToUpper(r))
			}
			prevLetter = true
		} else {
			b.WriteRune(r)
			prevLetter = false
		}
	}
	return b.String()
}

// listMethods is populated in init to break the initialization cycle
// through Interp.call.
var listMethods map[string]pyMethod

func init() {
	listMethods = map[string]pyMethod{
		"append": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
			l := recv.(*List)
			l.E = append(l.E, arg0(args))
			return nil, nil
		},
		"extend": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
			l := recv.(*List)
			items, err := iterValues(arg0(args), 0)
			if err != nil {
				return nil, err
			}
			l.E = append(l.E, items...)
			return nil, nil
		},
		"insert": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
			l := recv.(*List)
			i, ok := arg0(args).(int64)
			if !ok || len(args) < 2 {
				return nil, raisef("TypeError", "insert(index, item) requires an int index")
			}
			idx := int(i)
			if idx < 0 {
				idx += len(l.E)
			}
			if idx < 0 {
				idx = 0
			}
			if idx > len(l.E) {
				idx = len(l.E)
			}
			l.E = append(l.E[:idx], append([]any{args[1]}, l.E[idx:]...)...)
			return nil, nil
		},
		"pop": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
			l := recv.(*List)
			if len(l.E) == 0 {
				return nil, raisef("IndexError", "pop from empty list")
			}
			i := int64(len(l.E) - 1)
			if len(args) > 0 {
				n, ok := args[0].(int64)
				if !ok {
					return nil, raisef("TypeError", "pop index must be int")
				}
				i = n
			}
			idx, err := normIndex(i, len(l.E))
			if err != nil {
				return nil, err
			}
			v := l.E[idx]
			l.E = append(l.E[:idx], l.E[idx+1:]...)
			return v, nil
		},
		"remove": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
			l := recv.(*List)
			for i, e := range l.E {
				if pyEq(e, arg0(args)) {
					l.E = append(l.E[:i], l.E[i+1:]...)
					return nil, nil
				}
			}
			return nil, raisef("ValueError", "list.remove(x): x not in list")
		},
		"index": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
			l := recv.(*List)
			for i, e := range l.E {
				if pyEq(e, arg0(args)) {
					return int64(i), nil
				}
			}
			return nil, raisef("ValueError", "%s is not in list", pyRepr(arg0(args)))
		},
		"count": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
			l := recv.(*List)
			n := int64(0)
			for _, e := range l.E {
				if pyEq(e, arg0(args)) {
					n++
				}
			}
			return n, nil
		},
		"reverse": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
			l := recv.(*List)
			for i, j := 0, len(l.E)-1; i < j; i, j = i+1, j-1 {
				l.E[i], l.E[j] = l.E[j], l.E[i]
			}
			return nil, nil
		},
		"copy": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
			l := recv.(*List)
			return &List{E: append([]any{}, l.E...)}, nil
		},
		"clear": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
			l := recv.(*List)
			l.E = nil
			return nil, nil
		},
		"sort": func(ip *Interp, recv any, args []any, kw map[string]any) (any, error) {
			l := recv.(*List)
			sorted, err := sortSeq(ip, l.E, kw)
			if err != nil {
				return nil, err
			}
			l.E = sorted
			return nil, nil
		},
	}
}

var tupleMethods = map[string]pyMethod{
	"count": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
		t := recv.(*Tuple)
		n := int64(0)
		for _, e := range t.E {
			if pyEq(e, arg0(args)) {
				n++
			}
		}
		return n, nil
	},
	"index": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
		t := recv.(*Tuple)
		for i, e := range t.E {
			if pyEq(e, arg0(args)) {
				return int64(i), nil
			}
		}
		return nil, raisef("ValueError", "tuple.index(x): x not in tuple")
	},
}

var setMethods = map[string]pyMethod{
	"add": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
		setAdd(recv.(*Set), arg0(args))
		return nil, nil
	},
	"discard": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
		s := recv.(*Set)
		for i, e := range s.E {
			if pyEq(e, arg0(args)) {
				s.E = append(s.E[:i], s.E[i+1:]...)
				break
			}
		}
		return nil, nil
	},
	"remove": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
		s := recv.(*Set)
		for i, e := range s.E {
			if pyEq(e, arg0(args)) {
				s.E = append(s.E[:i], s.E[i+1:]...)
				return nil, nil
			}
		}
		return nil, raisef("KeyError", "%s", pyRepr(arg0(args)))
	},
	"union": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
		s := recv.(*Set)
		out := &Set{E: append([]any{}, s.E...)}
		for _, a := range args {
			items, err := iterValues(a, 0)
			if err != nil {
				return nil, err
			}
			for _, it := range items {
				setAdd(out, it)
			}
		}
		return out, nil
	},
}

var dictMethods = map[string]pyMethod{
	"get": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
		d := recv.(*Dict)
		ks, err := dictKey(arg0(args))
		if err != nil {
			return nil, err
		}
		if v, ok := d.Get(ks); ok {
			return v, nil
		}
		if len(args) > 1 {
			return args[1], nil
		}
		return nil, nil
	},
	"keys": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
		d := recv.(*Dict)
		out := &List{}
		for _, k := range d.Keys() {
			out.E = append(out.E, k)
		}
		return out, nil
	},
	"values": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
		d := recv.(*Dict)
		out := &List{}
		for _, k := range d.Keys() {
			out.E = append(out.E, d.Value(k))
		}
		return out, nil
	},
	"items": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
		d := recv.(*Dict)
		out := &List{}
		for _, k := range d.Keys() {
			out.E = append(out.E, &Tuple{E: []any{k, d.Value(k)}})
		}
		return out, nil
	},
	"update": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
		d := recv.(*Dict)
		if o, ok := arg0(args).(*Dict); ok {
			o.Range(func(k string, v any) bool {
				d.Set(k, v)
				return true
			})
			return nil, nil
		}
		return nil, raisef("TypeError", "update() argument must be dict")
	},
	"pop": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
		d := recv.(*Dict)
		ks, err := dictKey(arg0(args))
		if err != nil {
			return nil, err
		}
		if v, ok := d.Get(ks); ok {
			d.Delete(ks)
			return v, nil
		}
		if len(args) > 1 {
			return args[1], nil
		}
		return nil, raisef("KeyError", "%s", pyRepr(arg0(args)))
	},
	"setdefault": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
		d := recv.(*Dict)
		ks, err := dictKey(arg0(args))
		if err != nil {
			return nil, err
		}
		if v, ok := d.Get(ks); ok {
			return v, nil
		}
		var def any
		if len(args) > 1 {
			def = args[1]
		}
		d.Set(ks, def)
		return def, nil
	},
	"copy": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
		return recv.(*Dict).Clone(), nil
	},
	"clear": func(_ *Interp, recv any, args []any, _ map[string]any) (any, error) {
		d := recv.(*Dict)
		for _, k := range append([]string{}, d.Keys()...) {
			d.Delete(k)
		}
		return nil, nil
	},
}

func sortSeq(ip *Interp, items []any, kw map[string]any) ([]any, error) {
	out := append([]any{}, items...)
	var keyFn any
	reverse := false
	if kw != nil {
		if k, ok := kw["key"]; ok && k != nil {
			keyFn = k
		}
		if r, ok := kw["reverse"]; ok {
			reverse = pyTruthy(r)
		}
	}
	keys := make([]any, len(out))
	for i, e := range out {
		if keyFn == nil {
			keys[i] = e
			continue
		}
		k, err := ip.call(keyFn, []any{e}, nil, 0)
		if err != nil {
			return nil, err
		}
		keys[i] = k
	}
	var sortErr error
	idx := make([]int, len(out))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if sortErr != nil {
			return false
		}
		c, err := pyOrder(keys[idx[a]], keys[idx[b]], 0)
		if err != nil {
			sortErr = err
			return false
		}
		if reverse {
			return c > 0
		}
		return c < 0
	})
	if sortErr != nil {
		return nil, sortErr
	}
	sorted := make([]any, len(out))
	for i, j := range idx {
		sorted[i] = out[j]
	}
	return sorted, nil
}

func installPyBuiltins(g *penv) {
	bi := func(name string, fn func(ip *Interp, args []any, kw map[string]any) (any, error)) {
		g.vars[name] = &Builtin{Name: name, Fn: fn}
	}
	bi("len", func(_ *Interp, args []any, _ map[string]any) (any, error) {
		switch x := arg0(args).(type) {
		case string:
			return int64(len([]rune(x))), nil
		case *List:
			return int64(len(x.E)), nil
		case *Tuple:
			return int64(len(x.E)), nil
		case *Set:
			return int64(len(x.E)), nil
		case *Dict:
			return int64(x.Len()), nil
		case rangeVal:
			return x.length(), nil
		}
		return nil, raisef("TypeError", "object of type '%s' has no len()", pyTypeName(arg0(args)))
	})
	bi("str", func(_ *Interp, args []any, _ map[string]any) (any, error) {
		if len(args) == 0 {
			return "", nil
		}
		return pyStr(args[0]), nil
	})
	bi("repr", func(_ *Interp, args []any, _ map[string]any) (any, error) {
		return pyRepr(arg0(args)), nil
	})
	bi("int", func(_ *Interp, args []any, _ map[string]any) (any, error) {
		switch x := arg0(args).(type) {
		case nil:
			return int64(0), nil
		case int64:
			return x, nil
		case float64:
			return int64(math.Trunc(x)), nil
		case bool:
			return b2i(x), nil
		case string:
			n, err := strconv.ParseInt(strings.TrimSpace(x), 10, 64)
			if err != nil {
				return nil, raisef("ValueError", "invalid literal for int() with base 10: %s", pyRepr(x))
			}
			return n, nil
		}
		return nil, raisef("TypeError", "int() argument must be a string or a number")
	})
	bi("float", func(_ *Interp, args []any, _ map[string]any) (any, error) {
		switch x := arg0(args).(type) {
		case nil:
			return 0.0, nil
		case int64:
			return float64(x), nil
		case float64:
			return x, nil
		case bool:
			return float64(b2i(x)), nil
		case string:
			f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
			if err != nil {
				return nil, raisef("ValueError", "could not convert string to float: %s", pyRepr(x))
			}
			return f, nil
		}
		return nil, raisef("TypeError", "float() argument must be a string or a number")
	})
	bi("bool", func(_ *Interp, args []any, _ map[string]any) (any, error) {
		return pyTruthy(arg0(args)), nil
	})
	bi("abs", func(_ *Interp, args []any, _ map[string]any) (any, error) {
		switch x := arg0(args).(type) {
		case int64:
			if x < 0 {
				return -x, nil
			}
			return x, nil
		case float64:
			return math.Abs(x), nil
		}
		return nil, raisef("TypeError", "bad operand type for abs(): '%s'", pyTypeName(arg0(args)))
	})
	bi("round", func(_ *Interp, args []any, _ map[string]any) (any, error) {
		f, ok := toFloat(arg0(args))
		if !ok {
			return nil, raisef("TypeError", "round() argument must be a number")
		}
		if len(args) > 1 {
			nd, ok := args[1].(int64)
			if !ok {
				return nil, raisef("TypeError", "ndigits must be int")
			}
			scale := math.Pow(10, float64(nd))
			return math.Round(f*scale) / scale, nil
		}
		return int64(math.Round(f)), nil
	})
	bi("min", extremum(true))
	bi("max", extremum(false))
	bi("sum", func(_ *Interp, args []any, _ map[string]any) (any, error) {
		items, err := iterValues(arg0(args), 0)
		if err != nil {
			return nil, err
		}
		var acc any = int64(0)
		if len(args) > 1 {
			acc = args[1]
		}
		for _, it := range items {
			acc, err = pyBinOp("+", acc, it, 0)
			if err != nil {
				return nil, err
			}
		}
		return acc, nil
	})
	bi("range", func(_ *Interp, args []any, _ map[string]any) (any, error) {
		get := func(i int) (int64, error) {
			n, ok := args[i].(int64)
			if !ok {
				return 0, raisef("TypeError", "range() arguments must be integers")
			}
			return n, nil
		}
		switch len(args) {
		case 1:
			stop, err := get(0)
			if err != nil {
				return nil, err
			}
			return rangeVal{0, stop, 1}, nil
		case 2:
			start, err := get(0)
			if err != nil {
				return nil, err
			}
			stop, err := get(1)
			if err != nil {
				return nil, err
			}
			return rangeVal{start, stop, 1}, nil
		case 3:
			start, err := get(0)
			if err != nil {
				return nil, err
			}
			stop, err := get(1)
			if err != nil {
				return nil, err
			}
			step, err := get(2)
			if err != nil {
				return nil, err
			}
			if step == 0 {
				return nil, raisef("ValueError", "range() arg 3 must not be zero")
			}
			return rangeVal{start, stop, step}, nil
		}
		return nil, raisef("TypeError", "range expected 1 to 3 arguments, got %d", len(args))
	})
	bi("enumerate", func(_ *Interp, args []any, kw map[string]any) (any, error) {
		items, err := iterValues(arg0(args), 0)
		if err != nil {
			return nil, err
		}
		start := int64(0)
		if len(args) > 1 {
			if n, ok := args[1].(int64); ok {
				start = n
			}
		} else if kw != nil {
			if s, ok := kw["start"].(int64); ok {
				start = s
			}
		}
		out := &List{}
		for i, it := range items {
			out.E = append(out.E, &Tuple{E: []any{start + int64(i), it}})
		}
		return out, nil
	})
	bi("zip", func(_ *Interp, args []any, _ map[string]any) (any, error) {
		var seqs [][]any
		minLen := -1
		for _, a := range args {
			items, err := iterValues(a, 0)
			if err != nil {
				return nil, err
			}
			seqs = append(seqs, items)
			if minLen < 0 || len(items) < minLen {
				minLen = len(items)
			}
		}
		out := &List{}
		for i := 0; i < minLen; i++ {
			row := &Tuple{}
			for _, s := range seqs {
				row.E = append(row.E, s[i])
			}
			out.E = append(out.E, row)
		}
		return out, nil
	})
	bi("sorted", func(ip *Interp, args []any, kw map[string]any) (any, error) {
		items, err := iterValues(arg0(args), 0)
		if err != nil {
			return nil, err
		}
		out, err := sortSeq(ip, items, kw)
		if err != nil {
			return nil, err
		}
		return &List{E: out}, nil
	})
	bi("reversed", func(_ *Interp, args []any, _ map[string]any) (any, error) {
		items, err := iterValues(arg0(args), 0)
		if err != nil {
			return nil, err
		}
		out := &List{E: make([]any, len(items))}
		for i, it := range items {
			out.E[len(items)-1-i] = it
		}
		return out, nil
	})
	bi("list", func(_ *Interp, args []any, _ map[string]any) (any, error) {
		if len(args) == 0 {
			return &List{}, nil
		}
		items, err := iterValues(args[0], 0)
		if err != nil {
			return nil, err
		}
		return &List{E: items}, nil
	})
	bi("tuple", func(_ *Interp, args []any, _ map[string]any) (any, error) {
		if len(args) == 0 {
			return &Tuple{}, nil
		}
		items, err := iterValues(args[0], 0)
		if err != nil {
			return nil, err
		}
		return &Tuple{E: items}, nil
	})
	bi("set", func(_ *Interp, args []any, _ map[string]any) (any, error) {
		out := &Set{}
		if len(args) > 0 {
			items, err := iterValues(args[0], 0)
			if err != nil {
				return nil, err
			}
			for _, it := range items {
				setAdd(out, it)
			}
		}
		return out, nil
	})
	bi("dict", func(_ *Interp, args []any, kw map[string]any) (any, error) {
		d := yamlx.NewMap()
		if len(args) > 0 {
			if o, ok := args[0].(*Dict); ok {
				o.Range(func(k string, v any) bool {
					d.Set(k, v)
					return true
				})
			} else {
				items, err := iterValues(args[0], 0)
				if err != nil {
					return nil, err
				}
				for _, it := range items {
					pair, ok := sequenceOf(it)
					if !ok || len(pair) != 2 {
						return nil, raisef("TypeError", "dict() requires key/value pairs")
					}
					ks, err := dictKey(pair[0])
					if err != nil {
						return nil, err
					}
					d.Set(ks, pair[1])
				}
			}
		}
		keys := make([]string, 0, len(kw))
		for k := range kw {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			d.Set(k, kw[k])
		}
		return d, nil
	})
	bi("any", func(_ *Interp, args []any, _ map[string]any) (any, error) {
		items, err := iterValues(arg0(args), 0)
		if err != nil {
			return nil, err
		}
		for _, it := range items {
			if pyTruthy(it) {
				return true, nil
			}
		}
		return false, nil
	})
	bi("all", func(_ *Interp, args []any, _ map[string]any) (any, error) {
		items, err := iterValues(arg0(args), 0)
		if err != nil {
			return nil, err
		}
		for _, it := range items {
			if !pyTruthy(it) {
				return false, nil
			}
		}
		return true, nil
	})
	bi("print", func(ip *Interp, args []any, kw map[string]any) (any, error) {
		sep := " "
		end := "\n"
		if kw != nil {
			if s, ok := kw["sep"].(string); ok {
				sep = s
			}
			if e, ok := kw["end"].(string); ok {
				end = e
			}
		}
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = pyStr(a)
		}
		ip.Stdout.WriteString(strings.Join(parts, sep) + end)
		return nil, nil
	})
	bi("type", func(_ *Interp, args []any, _ map[string]any) (any, error) {
		return pyTypeName(arg0(args)), nil
	})
	bi("isinstance", func(_ *Interp, args []any, _ map[string]any) (any, error) {
		if len(args) != 2 {
			return nil, raisef("TypeError", "isinstance expected 2 arguments")
		}
		name := pyTypeName(args[0])
		check := func(cls any) bool {
			b, ok := cls.(*Builtin)
			if !ok {
				return false
			}
			if b.Name == name {
				return true
			}
			// int is acceptable where float is requested? No — but bool is
			// a subclass of int in Python.
			if b.Name == "int" && name == "bool" {
				return true
			}
			return false
		}
		if t, ok := args[1].(*Tuple); ok {
			for _, cls := range t.E {
				if check(cls) {
					return true, nil
				}
			}
			return false, nil
		}
		return check(args[1]), nil
	})
	// Exception classes: calling one constructs an Exception value.
	for _, name := range []string{
		"Exception", "ValueError", "TypeError", "KeyError", "IndexError",
		"RuntimeError", "ZeroDivisionError", "AttributeError", "NameError",
		"FileNotFoundError", "NotImplementedError", "OverflowError",
	} {
		name := name
		bi(name, func(_ *Interp, args []any, _ map[string]any) (any, error) {
			msg := ""
			if len(args) > 0 {
				msg = pyStr(args[0])
			}
			return &Exception{Type: name, Msg: msg}, nil
		})
	}
}

func extremum(isMin bool) func(ip *Interp, args []any, kw map[string]any) (any, error) {
	return func(ip *Interp, args []any, kw map[string]any) (any, error) {
		var items []any
		if len(args) == 1 {
			var err error
			items, err = iterValues(args[0], 0)
			if err != nil {
				return nil, err
			}
		} else {
			items = args
		}
		if len(items) == 0 {
			if isMin {
				return nil, raisef("ValueError", "min() arg is an empty sequence")
			}
			return nil, raisef("ValueError", "max() arg is an empty sequence")
		}
		var keyFn any
		if kw != nil {
			keyFn = kw["key"]
		}
		keyOf := func(v any) (any, error) {
			if keyFn == nil {
				return v, nil
			}
			return ip.call(keyFn, []any{v}, nil, 0)
		}
		best := items[0]
		bestKey, err := keyOf(best)
		if err != nil {
			return nil, err
		}
		for _, it := range items[1:] {
			k, err := keyOf(it)
			if err != nil {
				return nil, err
			}
			c, err := pyOrder(k, bestKey, 0)
			if err != nil {
				return nil, err
			}
			if (isMin && c < 0) || (!isMin && c > 0) {
				best, bestKey = it, k
			}
		}
		return best, nil
	}
}

// formatValue applies an f-string/format() spec to a value.
func formatValue(v any, spec string) (string, error) {
	if spec == "" {
		return pyStr(v), nil
	}
	return applyFormatSpec(v, spec)
}

func applySpec(s, spec string) string {
	out, err := applyFormatSpec(s, spec)
	if err != nil {
		return s
	}
	return out
}

// applyFormatSpec supports the common subset: [[fill]align][0][width][,][.prec][type]
func applyFormatSpec(v any, spec string) (string, error) {
	fill := ' '
	align := byte(0)
	i := 0
	if len(spec) >= 2 && (spec[1] == '<' || spec[1] == '>' || spec[1] == '^') {
		fill = rune(spec[0])
		align = spec[1]
		i = 2
	} else if len(spec) >= 1 && (spec[0] == '<' || spec[0] == '>' || spec[0] == '^') {
		align = spec[0]
		i = 1
	}
	zeroPad := false
	if i < len(spec) && spec[i] == '0' {
		zeroPad = true
		i++
	}
	width := 0
	for i < len(spec) && spec[i] >= '0' && spec[i] <= '9' {
		width = width*10 + int(spec[i]-'0')
		i++
	}
	comma := false
	if i < len(spec) && spec[i] == ',' {
		comma = true
		i++
	}
	prec := -1
	if i < len(spec) && spec[i] == '.' {
		i++
		prec = 0
		for i < len(spec) && spec[i] >= '0' && spec[i] <= '9' {
			prec = prec*10 + int(spec[i]-'0')
			i++
		}
	}
	typ := byte(0)
	if i < len(spec) {
		typ = spec[i]
		i++
	}
	if i < len(spec) {
		return "", raisef("ValueError", "invalid format spec %q", spec)
	}
	var body string
	switch typ {
	case 'd':
		n, ok := v.(int64)
		if !ok {
			if b, isB := v.(bool); isB {
				n = b2i(b)
			} else {
				return "", raisef("ValueError", "unknown format code 'd' for object of type '%s'", pyTypeName(v))
			}
		}
		body = strconv.FormatInt(n, 10)
		if comma {
			body = addThousands(body)
		}
	case 'f', 'F':
		f, ok := toFloat(v)
		if !ok {
			return "", raisef("ValueError", "unknown format code 'f' for object of type '%s'", pyTypeName(v))
		}
		p := 6
		if prec >= 0 {
			p = prec
		}
		body = strconv.FormatFloat(f, 'f', p, 64)
	case 'e', 'E':
		f, ok := toFloat(v)
		if !ok {
			return "", raisef("ValueError", "bad value for format code 'e'")
		}
		p := 6
		if prec >= 0 {
			p = prec
		}
		body = strconv.FormatFloat(f, byte(typ), p, 64)
	case 'x':
		n, ok := v.(int64)
		if !ok {
			return "", raisef("ValueError", "bad value for format code 'x'")
		}
		body = strconv.FormatInt(n, 16)
	case 'X':
		n, ok := v.(int64)
		if !ok {
			return "", raisef("ValueError", "bad value for format code 'X'")
		}
		body = strings.ToUpper(strconv.FormatInt(n, 16))
	case 'o':
		n, ok := v.(int64)
		if !ok {
			return "", raisef("ValueError", "bad value for format code 'o'")
		}
		body = strconv.FormatInt(n, 8)
	case 'b':
		n, ok := v.(int64)
		if !ok {
			return "", raisef("ValueError", "bad value for format code 'b'")
		}
		body = strconv.FormatInt(n, 2)
	case 'g':
		f, ok := toFloat(v)
		if !ok {
			return "", raisef("ValueError", "bad value for format code 'g'")
		}
		p := -1
		if prec >= 0 {
			p = prec
		}
		body = strconv.FormatFloat(f, 'g', p, 64)
	case 's', 0:
		body = pyStr(v)
		if prec >= 0 && prec < len(body) {
			body = body[:prec]
		}
	case '%':
		f, ok := toFloat(v)
		if !ok {
			return "", raisef("ValueError", "bad value for format code '%%'")
		}
		p := 6
		if prec >= 0 {
			p = prec
		}
		body = strconv.FormatFloat(f*100, 'f', p, 64) + "%"
	default:
		return "", raisef("ValueError", "unknown format code %q", string(typ))
	}
	if zeroPad && align == 0 {
		neg := strings.HasPrefix(body, "-")
		if neg {
			body = body[1:]
		}
		for len(body)+int(b2i(neg)) < width {
			body = "0" + body
		}
		if neg {
			body = "-" + body
		}
	}
	for len([]rune(body)) < width {
		switch align {
		case '<':
			body = body + string(fill)
		case '^':
			if (width-len([]rune(body)))%2 == 1 {
				body = body + string(fill)
			} else {
				body = string(fill) + body
			}
		default: // '>' and numeric default
			if typ == 's' || typ == 0 {
				if align == '>' {
					body = string(fill) + body
				} else {
					body = body + string(fill)
				}
			} else {
				body = string(fill) + body
			}
		}
	}
	return body, nil
}

func addThousands(s string) string {
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		return "-" + out
	}
	return out
}

// pyStrFormat implements str.format with positional {} / {0} and named {key}
// fields plus format specs.
func pyStrFormat(tmpl string, args []any, kw map[string]any) (string, error) {
	var b strings.Builder
	auto := 0
	i := 0
	for i < len(tmpl) {
		c := tmpl[i]
		if c == '{' {
			if i+1 < len(tmpl) && tmpl[i+1] == '{' {
				b.WriteByte('{')
				i += 2
				continue
			}
			j := strings.IndexByte(tmpl[i:], '}')
			if j < 0 {
				return "", raisef("ValueError", "single '{' encountered in format string")
			}
			field := tmpl[i+1 : i+j]
			i += j + 1
			name, spec := field, ""
			if k := strings.IndexByte(field, ':'); k >= 0 {
				name, spec = field[:k], field[k+1:]
			}
			var v any
			switch {
			case name == "":
				if auto >= len(args) {
					return "", raisef("IndexError", "Replacement index %d out of range", auto)
				}
				v = args[auto]
				auto++
			case isAllDigits(name):
				n, _ := strconv.Atoi(name)
				if n >= len(args) {
					return "", raisef("IndexError", "Replacement index %d out of range", n)
				}
				v = args[n]
			default:
				vv, ok := kw[name]
				if !ok {
					return "", raisef("KeyError", "'%s'", name)
				}
				v = vv
			}
			s, err := formatValue(v, spec)
			if err != nil {
				return "", err
			}
			b.WriteString(s)
			continue
		}
		if c == '}' {
			if i+1 < len(tmpl) && tmpl[i+1] == '}' {
				b.WriteByte('}')
				i += 2
				continue
			}
			return "", raisef("ValueError", "single '}' encountered in format string")
		}
		b.WriteByte(c)
		i++
	}
	return b.String(), nil
}

func isAllDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// pyPercentFormat implements the "%" operator on strings for %s/%d/%f/%x/%%.
func pyPercentFormat(tmpl string, right any) (any, error) {
	var vals []any
	if t, ok := right.(*Tuple); ok {
		vals = t.E
	} else {
		vals = []any{right}
	}
	var b strings.Builder
	vi := 0
	for i := 0; i < len(tmpl); i++ {
		c := tmpl[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(tmpl) {
			return nil, raisef("ValueError", "incomplete format")
		}
		if tmpl[i] == '%' {
			b.WriteByte('%')
			continue
		}
		// precision like %.2f
		spec := ""
		for i < len(tmpl) && (tmpl[i] == '.' || (tmpl[i] >= '0' && tmpl[i] <= '9')) {
			spec += string(tmpl[i])
			i++
		}
		if i >= len(tmpl) {
			return nil, raisef("ValueError", "incomplete format")
		}
		if vi >= len(vals) {
			return nil, raisef("TypeError", "not enough arguments for format string")
		}
		v := vals[vi]
		vi++
		switch tmpl[i] {
		case 's':
			b.WriteString(pyStr(v))
		case 'r':
			b.WriteString(pyRepr(v))
		case 'd', 'i':
			f, ok := toFloat(v)
			if !ok {
				return nil, raisef("TypeError", "%%d format: a number is required, not %s", pyTypeName(v))
			}
			b.WriteString(strconv.FormatInt(int64(f), 10))
		case 'f':
			f, ok := toFloat(v)
			if !ok {
				return nil, raisef("TypeError", "float required")
			}
			p := 6
			if strings.HasPrefix(spec, ".") {
				if n, err := strconv.Atoi(spec[1:]); err == nil {
					p = n
				}
			}
			b.WriteString(strconv.FormatFloat(f, 'f', p, 64))
		case 'x':
			n, ok := v.(int64)
			if !ok {
				return nil, raisef("TypeError", "int required")
			}
			b.WriteString(strconv.FormatInt(n, 16))
		default:
			return nil, raisef("ValueError", "unsupported format character %q", string(tmpl[i]))
		}
	}
	return b.String(), nil
}
