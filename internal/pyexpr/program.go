package pyexpr

// Compile-once / evaluate-many support, mirroring jsexpr: a Program is a
// parsed expression or statement block that can be evaluated repeatedly —
// and concurrently — against one Interp. Per-evaluation interpreter state
// (the step counter and the variable scope) lives in a per-call evaluator.

// Program is a reusable, goroutine-safe compiled Python fragment. The AST is
// immutable after Compile; evaluation never mutates it.
type Program struct {
	expr  expr
	stmts []stmt
	src   string
}

// Source returns the source text the program was compiled from.
func (p *Program) Source() string { return p.src }

// CompileExpr parses a single Python expression into a reusable Program.
func CompileExpr(src string) (*Program, error) {
	node, err := parsePyExpression(src)
	if err != nil {
		return nil, err
	}
	return &Program{expr: node, src: src}, nil
}

// CompileBody parses a statement block into a reusable Program; evaluation
// returns the value of a top-level return (or None).
func CompileBody(src string) (*Program, error) {
	stmts, err := parsePyProgram(src)
	if err != nil {
		return nil, err
	}
	return &Program{stmts: stmts, src: src}, nil
}

// RunProgram evaluates a compiled program with the given variables in scope,
// returning a CWL document value. Safe to call concurrently: the global
// scope is sealed on first use and each call runs on a fresh per-call
// evaluator holding its own step counter and scope. Interpreters whose
// library holds in-place-mutable state serialize their evaluations instead
// (see Interp).
func (ip *Interp) RunProgram(p *Program, vars map[string]any) (any, error) {
	ev := ip.evaluator()
	if ip.serialize {
		ip.evalMu.Lock()
		defer ip.evalMu.Unlock()
	}
	env := ev.scopeWith(vars)
	if p.expr != nil {
		v, err := ev.eval(p.expr, env)
		if err != nil {
			return nil, err
		}
		return FromPy(v), nil
	}
	c, err := ev.execStmts(p.stmts, env)
	if err != nil {
		return nil, err
	}
	if c != nil && c.kind == ctrlReturn {
		return FromPy(c.value), nil
	}
	return nil, nil
}

// evaluator seals the global scope and returns a fresh per-call interpreter
// sharing the (now read-only) global environment and the Stdout sink.
func (ip *Interp) evaluator() *Interp {
	ip.seal()
	return &Interp{global: ip.global, maxSteps: ip.maxSteps, Stdout: ip.Stdout}
}

// seal freezes the global scope and decides whether mutable library state
// forces serialized evaluation; see the jsexpr counterpart.
func (ip *Interp) seal() {
	ip.sealOnce.Do(func() {
		ip.global.frozen = true
		ip.serialize = ip.libHasMutableState()
	})
}

// libHasMutableState reports whether any library-defined global carries
// state an expression could mutate in place: lists, dicts, sets, tuples
// containing them, functions with mutable defaults, or functions over a
// captured (non-global) scope.
func (ip *Interp) libHasMutableState() bool {
	for k, v := range ip.global.vars {
		if bv, ok := ip.builtinVals[k]; ok && bv == v {
			continue
		}
		if pyMutable(ip, v, 0) {
			return true
		}
	}
	return false
}

func pyMutable(ip *Interp, v any, depth int) bool {
	if depth > 8 {
		return true // deep enough to stop looking; be conservative
	}
	switch x := v.(type) {
	case *List, *Dict, *Set:
		return true
	case *Tuple:
		for _, e := range x.E {
			if pyMutable(ip, e, depth+1) {
				return true
			}
		}
		return false
	case *PyFunc:
		if x.env != ip.global {
			return true
		}
		for _, d := range x.Defaults {
			if pyMutable(ip, d, depth+1) {
				return true
			}
		}
		return false
	}
	return false
}
