// Package pyexpr implements the Python expression subset the paper's
// InlinePythonRequirement embeds in CWL documents: def functions with
// docstrings, f-strings, if/elif/else, for/while, try/except, raise,
// comprehensions, and the string/list/dict method surface the listings use.
//
// Like the real feature (Python running inside the Parsl runner process),
// evaluation happens in-process — the architectural property behind the
// paper's Fig. 2 result.
package pyexpr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokKind int

const (
	tEOF tokKind = iota
	tNewline
	tIndent
	tDedent
	tNum
	tStr
	tFStr // raw f-string body, interpolations parsed later
	tName
	tOp
)

type token struct {
	kind  tokKind
	text  string
	num   float64
	isInt bool
	ival  int64
	line  int
}

// SyntaxError reports a Python parse failure.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("python syntax error at line %d: %s", e.Line, e.Msg)
}

var pyKeywords = map[string]bool{
	"def": true, "return": true, "if": true, "elif": true, "else": true,
	"for": true, "while": true, "in": true, "not": true, "and": true,
	"or": true, "True": true, "False": true, "None": true, "break": true,
	"continue": true, "pass": true, "raise": true, "try": true,
	"except": true, "finally": true, "as": true, "lambda": true,
	"is": true, "del": true, "global": true, "import": true, "from": true,
	"class": true, "with": true, "yield": true, "assert": true,
}

type lexer struct {
	src     string
	pos     int
	line    int
	indents []int
	toks    []token
	paren   int // bracket nesting depth: newlines inside brackets are ignored
}

func lexPy(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, indents: []int{0}}
	atLineStart := true
	for {
		if atLineStart && l.paren == 0 {
			if err := l.handleIndent(); err != nil {
				return nil, err
			}
			atLineStart = false
			continue
		}
		l.skipSpaces()
		if l.pos >= len(l.src) {
			break
		}
		c := l.src[l.pos]
		switch {
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '\n':
			l.pos++
			l.line++
			if l.paren == 0 {
				// Collapse duplicate newlines.
				if len(l.toks) > 0 && l.toks[len(l.toks)-1].kind != tNewline && l.toks[len(l.toks)-1].kind != tIndent && l.toks[len(l.toks)-1].kind != tDedent {
					l.emit(token{kind: tNewline, line: l.line - 1})
				}
				atLineStart = true
			}
		case c == '\\' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '\n':
			l.pos += 2
			l.line++
		case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && isDig(l.src[l.pos+1]):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '"' || c == '\'':
			if err := l.lexString(false); err != nil {
				return nil, err
			}
		case (c == 'f' || c == 'F') && l.pos+1 < len(l.src) && (l.src[l.pos+1] == '"' || l.src[l.pos+1] == '\''):
			l.pos++
			if err := l.lexString(true); err != nil {
				return nil, err
			}
		case (c == 'r' || c == 'R') && l.pos+1 < len(l.src) && (l.src[l.pos+1] == '"' || l.src[l.pos+1] == '\''):
			l.pos++
			if err := l.lexRawString(); err != nil {
				return nil, err
			}
		case isNameStart(rune(c)) || c >= utf8.RuneSelf:
			l.lexName()
		default:
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		}
	}
	if len(l.toks) > 0 && l.toks[len(l.toks)-1].kind != tNewline {
		l.emit(token{kind: tNewline, line: l.line})
	}
	for len(l.indents) > 1 {
		l.indents = l.indents[:len(l.indents)-1]
		l.emit(token{kind: tDedent, line: l.line})
	}
	l.emit(token{kind: tEOF, line: l.line})
	return l.toks, nil
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) skipSpaces() {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' || l.src[l.pos] == '\r') {
		l.pos++
	}
}

// handleIndent processes the leading whitespace of a logical line, emitting
// INDENT/DEDENT tokens.
func (l *lexer) handleIndent() error {
	for {
		start := l.pos
		width := 0
		for l.pos < len(l.src) {
			switch l.src[l.pos] {
			case ' ':
				width++
			case '\t':
				width += 8 - width%8
			case '\r':
			default:
				goto measured
			}
			l.pos++
		}
	measured:
		if l.pos >= len(l.src) {
			return nil
		}
		if l.src[l.pos] == '\n' {
			l.pos++
			l.line++
			continue // blank line: no indent change
		}
		if l.src[l.pos] == '#' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		cur := l.indents[len(l.indents)-1]
		switch {
		case width > cur:
			l.indents = append(l.indents, width)
			l.emit(token{kind: tIndent, line: l.line})
		case width < cur:
			for len(l.indents) > 1 && l.indents[len(l.indents)-1] > width {
				l.indents = l.indents[:len(l.indents)-1]
				l.emit(token{kind: tDedent, line: l.line})
			}
			if l.indents[len(l.indents)-1] != width {
				return &SyntaxError{Line: l.line, Msg: "inconsistent indentation"}
			}
		}
		_ = start
		return nil
	}
}

func isDig(c byte) bool { return c >= '0' && c <= '9' }

func isNameStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isNamePart(r rune) bool  { return isNameStart(r) || unicode.IsDigit(r) }

func (l *lexer) lexNumber() error {
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) && (isDig(l.src[l.pos]) || l.src[l.pos] == '_') {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' && (l.pos+1 >= len(l.src) || l.src[l.pos+1] != '.') {
		// not part of a name/method chain like 1..real; Python floats
		nxt := byte(0)
		if l.pos+1 < len(l.src) {
			nxt = l.src[l.pos+1]
		}
		if isDig(nxt) || !isNameStart(rune(nxt)) {
			isFloat = true
			l.pos++
			for l.pos < len(l.src) && (isDig(l.src[l.pos]) || l.src[l.pos] == '_') {
				l.pos++
			}
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		save := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos < len(l.src) && isDig(l.src[l.pos]) {
			isFloat = true
			for l.pos < len(l.src) && isDig(l.src[l.pos]) {
				l.pos++
			}
		} else {
			l.pos = save
		}
	}
	text := strings.ReplaceAll(l.src[start:l.pos], "_", "")
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return &SyntaxError{Line: l.line, Msg: "bad float literal " + text}
		}
		l.emit(token{kind: tNum, num: f, text: text, line: l.line})
		return nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		f, ferr := strconv.ParseFloat(text, 64)
		if ferr != nil {
			return &SyntaxError{Line: l.line, Msg: "bad number literal " + text}
		}
		l.emit(token{kind: tNum, num: f, text: text, line: l.line})
		return nil
	}
	l.emit(token{kind: tNum, isInt: true, ival: n, text: text, line: l.line})
	return nil
}

func (l *lexer) lexString(isF bool) error {
	quote := l.src[l.pos]
	startLine := l.line
	// Triple-quoted?
	triple := strings.HasPrefix(l.src[l.pos:], strings.Repeat(string(quote), 3))
	var body strings.Builder
	if triple {
		l.pos += 3
		closing := strings.Repeat(string(quote), 3)
		end := strings.Index(l.src[l.pos:], closing)
		if end < 0 {
			return &SyntaxError{Line: startLine, Msg: "unterminated triple-quoted string"}
		}
		raw := l.src[l.pos : l.pos+end]
		l.line += strings.Count(raw, "\n")
		l.pos += end + 3
		if isF {
			l.emit(token{kind: tFStr, text: raw, line: startLine})
		} else {
			l.emit(token{kind: tStr, text: raw, line: startLine})
		}
		return nil
	}
	l.pos++
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			kind := tStr
			if isF {
				kind = tFStr
			}
			l.emit(token{kind: kind, text: body.String(), line: startLine})
			return nil
		}
		if c == '\n' {
			return &SyntaxError{Line: startLine, Msg: "unterminated string literal"}
		}
		if c == '\\' && !isF {
			l.pos++
			if l.pos >= len(l.src) {
				break
			}
			body.WriteString(unescapePy(l.src[l.pos]))
			l.pos++
			continue
		}
		if c == '\\' && isF {
			// Keep escapes raw in f-strings; interpolation parsing handles them.
			body.WriteByte(c)
			l.pos++
			if l.pos < len(l.src) {
				body.WriteByte(l.src[l.pos])
				l.pos++
			}
			continue
		}
		body.WriteByte(c)
		l.pos++
	}
	return &SyntaxError{Line: startLine, Msg: "unterminated string literal"}
}

func (l *lexer) lexRawString() error {
	quote := l.src[l.pos]
	startLine := l.line
	l.pos++
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] != quote {
		if l.src[l.pos] == '\n' {
			return &SyntaxError{Line: startLine, Msg: "unterminated raw string"}
		}
		l.pos++
	}
	if l.pos >= len(l.src) {
		return &SyntaxError{Line: startLine, Msg: "unterminated raw string"}
	}
	l.emit(token{kind: tStr, text: l.src[start:l.pos], line: startLine})
	l.pos++
	return nil
}

func unescapePy(c byte) string {
	switch c {
	case 'n':
		return "\n"
	case 't':
		return "\t"
	case 'r':
		return "\r"
	case '\\':
		return "\\"
	case '\'':
		return "'"
	case '"':
		return "\""
	case '0':
		return "\x00"
	case 'a':
		return "\a"
	case 'b':
		return "\b"
	case 'f':
		return "\f"
	case 'v':
		return "\v"
	default:
		return "\\" + string(c)
	}
}

func (l *lexer) lexName() {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isNamePart(r) {
			break
		}
		l.pos += size
	}
	l.emit(token{kind: tName, text: l.src[start:l.pos], line: l.line})
}

var pyOps = []string{
	"**=", "//=", "...",
	"**", "//", "==", "!=", "<=", ">=", "->", "+=", "-=", "*=", "/=", "%=",
	"+", "-", "*", "/", "%", "(", ")", "[", "]", "{", "}", ",", ":", ";",
	".", "<", ">", "=", "@", "&", "|", "^", "~",
}

func (l *lexer) lexOp() error {
	for _, op := range pyOps {
		if strings.HasPrefix(l.src[l.pos:], op) {
			switch op {
			case "(", "[", "{":
				l.paren++
			case ")", "]", "}":
				if l.paren > 0 {
					l.paren--
				}
			}
			l.emit(token{kind: tOp, text: op, line: l.line})
			l.pos += len(op)
			return nil
		}
	}
	return &SyntaxError{Line: l.line, Msg: fmt.Sprintf("unexpected character %q", l.src[l.pos])}
}
