package pyexpr

// stmt is a Python statement node.
type stmt interface{ stmtLine() int }

// expr is a Python expression node.
type expr interface{ exprLine() int }

type pos struct{ Line int }

func (p pos) stmtLine() int { return p.Line }
func (p pos) exprLine() int { return p.Line }

// --- Expressions ---

type intLit struct {
	pos
	V int64
}

type floatLit struct {
	pos
	V float64
}

type strLit struct {
	pos
	V string
}

type fstrLit struct {
	pos
	// Parts alternate literal text and embedded expressions.
	Parts []fstrPart
}

type fstrPart struct {
	Text string // literal segment (when Expr is nil)
	Expr expr   // interpolated expression
	Spec string // format spec after ':', e.g. ".2f"
	Conv byte   // conversion !r / !s, 0 if none
}

type boolLit struct {
	pos
	V bool
}

type noneLit struct{ pos }

type nameRef struct {
	pos
	Name string
}

type listLit struct {
	pos
	Elems []expr
}

type tupleLit struct {
	pos
	Elems []expr
}

type dictLit struct {
	pos
	Keys []expr
	Vals []expr
}

type setLit struct {
	pos
	Elems []expr
}

type attrRef struct {
	pos
	Obj  expr
	Name string
}

type subscript struct {
	pos
	Obj expr
	Key expr
}

type sliceExpr struct {
	pos
	Obj              expr
	Low, High, Step_ expr // nil = omitted
}

type callExpr struct {
	pos
	Fn     expr
	Args   []expr
	KwName []string
	KwVal  []expr
}

type unaryOp struct {
	pos
	Op string // "-", "+", "not"
	X  expr
}

type binOp struct {
	pos
	Op   string
	L, R expr
}

type boolOp struct {
	pos
	Op   string // "and" / "or"
	L, R expr
}

// compare handles chained comparisons: a < b <= c.
type compare struct {
	pos
	First expr
	Ops   []string
	Rest  []expr
}

type ternary struct {
	pos
	Then, Test, Else expr
}

type lambdaExpr struct {
	pos
	Params   []string
	Defaults []expr
	Body     expr
}

// listComp is [out for var in iter if cond].
type listComp struct {
	pos
	Out  expr
	Vars []string // loop targets (tuple unpack allowed)
	Iter expr
	Cond expr // nil = unconditional
}

// --- Statements ---

type exprStatement struct {
	pos
	X expr
}

type assignStmt struct {
	pos
	// Targets: nameRef, attrRef, subscript, or tupleLit of names.
	Target expr
	Op     string // "=", "+=", ...
	Value  expr
}

type returnStatement struct {
	pos
	X expr // nil = None
}

type passStmt struct{ pos }

type breakStatement struct{ pos }

type continueStatement struct{ pos }

type raiseStmt struct {
	pos
	X expr // nil = re-raise
}

type ifStatement struct {
	pos
	Test expr
	Then []stmt
	Else []stmt // may contain a single ifStatement for elif chains
}

type whileStatement struct {
	pos
	Test expr
	Body []stmt
}

type forStatement struct {
	pos
	Vars []string
	Iter expr
	Body []stmt
}

type defStatement struct {
	pos
	Name     string
	Params   []string
	Defaults []expr // aligned to the tail of Params
	Body     []stmt
}

type tryStatement struct {
	pos
	Body     []stmt
	Handlers []exceptClause
	Finally  []stmt
}

type exceptClause struct {
	Types []string // exception class names; empty = catch all
	As    string   // bound name, "" if none
	Body  []stmt
}
