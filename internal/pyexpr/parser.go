package pyexpr

import (
	"fmt"
	"strings"
)

type pparser struct {
	toks []token
	pos  int
}

// parsePyProgram parses a module (an expressionLib entry).
func parsePyProgram(src string) ([]stmt, error) {
	toks, err := lexPy(src)
	if err != nil {
		return nil, err
	}
	p := &pparser{toks: toks}
	var stmts []stmt
	for !p.at(tEOF, "") {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		if s != nil {
			stmts = append(stmts, s)
		}
	}
	return stmts, nil
}

// parsePyExpression parses a single expression.
func parsePyExpression(src string) (expr, error) {
	toks, err := lexPy(strings.TrimSpace(src))
	if err != nil {
		return nil, err
	}
	p := &pparser{toks: toks}
	e, err := p.exprTop()
	if err != nil {
		return nil, err
	}
	p.eat(tNewline, "")
	if !p.at(tEOF, "") {
		return nil, p.errHere("unexpected token %q after expression", p.cur().text)
	}
	return e, nil
}

func (p *pparser) cur() token  { return p.toks[p.pos] }
func (p *pparser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *pparser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *pparser) atKw(kw string) bool {
	t := p.cur()
	return t.kind == tName && t.text == kw
}

func (p *pparser) eat(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *pparser) eatKw(kw string) bool {
	if p.atKw(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *pparser) expect(kind tokKind, text string) error {
	if p.eat(kind, text) {
		return nil
	}
	found := p.cur().text
	if p.cur().kind == tNewline {
		found = "newline"
	} else if p.cur().kind == tEOF {
		found = "end of input"
	} else if p.cur().kind == tIndent {
		found = "indent"
	} else if p.cur().kind == tDedent {
		found = "dedent"
	}
	return p.errHere("expected %q, found %q", text, found)
}

func (p *pparser) errHere(format string, args ...any) error {
	return &SyntaxError{Line: p.cur().line, Msg: fmt.Sprintf(format, args...)}
}

// --- Statements ---

func (p *pparser) statement() (stmt, error) {
	// Swallow stray newlines between statements.
	for p.eat(tNewline, "") {
	}
	if p.at(tEOF, "") {
		return nil, nil
	}
	t := p.cur()
	if t.kind == tName {
		switch t.text {
		case "def":
			return p.defStatementParse()
		case "if":
			return p.ifStatementParse()
		case "while":
			return p.whileStatementParse()
		case "for":
			return p.forStatementParse()
		case "try":
			return p.tryStatementParse()
		case "return":
			p.next()
			var x expr
			if !p.at(tNewline, "") && !p.at(tEOF, "") && !p.at(tOp, ";") {
				var err error
				x, err = p.exprTop()
				if err != nil {
					return nil, err
				}
			}
			p.endSimple()
			return &returnStatement{pos: pos{t.line}, X: x}, nil
		case "pass":
			p.next()
			p.endSimple()
			return &passStmt{pos: pos{t.line}}, nil
		case "break":
			p.next()
			p.endSimple()
			return &breakStatement{pos: pos{t.line}}, nil
		case "continue":
			p.next()
			p.endSimple()
			return &continueStatement{pos: pos{t.line}}, nil
		case "raise":
			p.next()
			var x expr
			if !p.at(tNewline, "") && !p.at(tEOF, "") {
				var err error
				x, err = p.exprTop()
				if err != nil {
					return nil, err
				}
			}
			p.endSimple()
			return &raiseStmt{pos: pos{t.line}, X: x}, nil
		case "import", "from", "class", "with", "global", "yield", "assert", "del":
			return nil, p.errHere("%q statements are not supported in CWL inline Python", t.text)
		}
	}
	// Expression or assignment.
	target, err := p.exprList()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "+=", "-=", "*=", "/=", "//=", "%=", "**="} {
		if p.at(tOp, op) {
			p.next()
			val, err := p.exprList()
			if err != nil {
				return nil, err
			}
			if err := validTarget(target); err != nil {
				return nil, &SyntaxError{Line: t.line, Msg: err.Error()}
			}
			p.endSimple()
			return &assignStmt{pos: pos{t.line}, Target: target, Op: op, Value: val}, nil
		}
	}
	p.endSimple()
	return &exprStatement{pos: pos{t.line}, X: target}, nil
}

func validTarget(e expr) error {
	switch x := e.(type) {
	case *nameRef, *subscript, *attrRef:
		return nil
	case *tupleLit:
		for _, el := range x.Elems {
			if _, ok := el.(*nameRef); !ok {
				return fmt.Errorf("unsupported assignment target in tuple")
			}
		}
		return nil
	}
	return fmt.Errorf("invalid assignment target")
}

// endSimple consumes the statement terminator (newline or semicolon).
func (p *pparser) endSimple() {
	if p.eat(tOp, ";") {
		return
	}
	p.eat(tNewline, "")
}

// suite parses ":" NEWLINE INDENT stmts DEDENT, or an inline simple statement.
func (p *pparser) suite() ([]stmt, error) {
	if err := p.expect(tOp, ":"); err != nil {
		return nil, err
	}
	if !p.eat(tNewline, "") {
		// Inline suite: one or more simple statements on the same line.
		var stmts []stmt
		for {
			s, err := p.statement()
			if err != nil {
				return nil, err
			}
			if s != nil {
				stmts = append(stmts, s)
			}
			if !p.at(tOp, ";") {
				break
			}
		}
		return stmts, nil
	}
	if !p.eat(tIndent, "") {
		return nil, p.errHere("expected an indented block")
	}
	var stmts []stmt
	for !p.at(tDedent, "") && !p.at(tEOF, "") {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		if s != nil {
			stmts = append(stmts, s)
		}
	}
	p.eat(tDedent, "")
	return stmts, nil
}

func (p *pparser) defStatementParse() (stmt, error) {
	t := p.next() // def
	nameTok := p.cur()
	if nameTok.kind != tName || pyKeywords[nameTok.text] {
		return nil, p.errHere("expected function name")
	}
	p.next()
	if err := p.expect(tOp, "("); err != nil {
		return nil, err
	}
	var params []string
	var defaults []expr
	for !p.at(tOp, ")") {
		pt := p.cur()
		if pt.kind != tName || pyKeywords[pt.text] {
			return nil, p.errHere("expected parameter name")
		}
		p.next()
		params = append(params, pt.text)
		if p.eat(tOp, "=") {
			d, err := p.exprTop()
			if err != nil {
				return nil, err
			}
			defaults = append(defaults, d)
		} else if len(defaults) > 0 {
			return nil, p.errHere("non-default parameter after default parameter")
		}
		if !p.eat(tOp, ",") {
			break
		}
	}
	if err := p.expect(tOp, ")"); err != nil {
		return nil, err
	}
	body, err := p.suite()
	if err != nil {
		return nil, err
	}
	return &defStatement{pos: pos{t.line}, Name: nameTok.text, Params: params, Defaults: defaults, Body: body}, nil
}

func (p *pparser) ifStatementParse() (stmt, error) {
	t := p.next() // if / elif
	test, err := p.exprTop()
	if err != nil {
		return nil, err
	}
	then, err := p.suite()
	if err != nil {
		return nil, err
	}
	node := &ifStatement{pos: pos{t.line}, Test: test, Then: then}
	for p.eat(tNewline, "") {
	}
	if p.atKw("elif") {
		elifStmt, err := p.ifStatementParse()
		if err != nil {
			return nil, err
		}
		node.Else = []stmt{elifStmt}
	} else if p.atKw("else") {
		p.next()
		els, err := p.suite()
		if err != nil {
			return nil, err
		}
		node.Else = els
	}
	return node, nil
}

func (p *pparser) whileStatementParse() (stmt, error) {
	t := p.next()
	test, err := p.exprTop()
	if err != nil {
		return nil, err
	}
	body, err := p.suite()
	if err != nil {
		return nil, err
	}
	return &whileStatement{pos: pos{t.line}, Test: test, Body: body}, nil
}

func (p *pparser) forStatementParse() (stmt, error) {
	t := p.next()
	vars, err := p.targetNames()
	if err != nil {
		return nil, err
	}
	if !p.eatKw("in") {
		return nil, p.errHere("expected 'in' in for statement")
	}
	iter, err := p.exprList()
	if err != nil {
		return nil, err
	}
	body, err := p.suite()
	if err != nil {
		return nil, err
	}
	return &forStatement{pos: pos{t.line}, Vars: vars, Iter: iter, Body: body}, nil
}

func (p *pparser) targetNames() ([]string, error) {
	var names []string
	paren := p.eat(tOp, "(")
	for {
		t := p.cur()
		if t.kind != tName || pyKeywords[t.text] {
			return nil, p.errHere("expected loop variable name")
		}
		p.next()
		names = append(names, t.text)
		if !p.eat(tOp, ",") {
			break
		}
	}
	if paren {
		if err := p.expect(tOp, ")"); err != nil {
			return nil, err
		}
	}
	return names, nil
}

func (p *pparser) tryStatementParse() (stmt, error) {
	t := p.next() // try
	body, err := p.suite()
	if err != nil {
		return nil, err
	}
	node := &tryStatement{pos: pos{t.line}, Body: body}
	for {
		for p.eat(tNewline, "") {
		}
		if p.atKw("except") {
			p.next()
			var clause exceptClause
			if !p.at(tOp, ":") {
				paren := p.eat(tOp, "(")
				for {
					et := p.cur()
					if et.kind != tName {
						return nil, p.errHere("expected exception class name")
					}
					p.next()
					clause.Types = append(clause.Types, et.text)
					if !paren || !p.eat(tOp, ",") {
						break
					}
				}
				if paren {
					if err := p.expect(tOp, ")"); err != nil {
						return nil, err
					}
				}
				if p.eatKw("as") {
					at := p.cur()
					if at.kind != tName {
						return nil, p.errHere("expected name after 'as'")
					}
					p.next()
					clause.As = at.text
				}
			}
			cbody, err := p.suite()
			if err != nil {
				return nil, err
			}
			clause.Body = cbody
			node.Handlers = append(node.Handlers, clause)
			continue
		}
		if p.atKw("finally") {
			p.next()
			fbody, err := p.suite()
			if err != nil {
				return nil, err
			}
			node.Finally = fbody
		}
		break
	}
	if len(node.Handlers) == 0 && node.Finally == nil {
		return nil, p.errHere("try without except or finally")
	}
	return node, nil
}

// --- Expressions ---

// exprList parses comma-separated expressions into a tuple (Python's "1, 2").
func (p *pparser) exprList() (expr, error) {
	first, err := p.exprTop()
	if err != nil {
		return nil, err
	}
	if !p.at(tOp, ",") {
		return first, nil
	}
	tl := &tupleLit{pos: pos{p.cur().line}, Elems: []expr{first}}
	for p.eat(tOp, ",") {
		if p.at(tNewline, "") || p.at(tOp, "=") || p.at(tEOF, "") {
			break
		}
		e, err := p.exprTop()
		if err != nil {
			return nil, err
		}
		tl.Elems = append(tl.Elems, e)
	}
	return tl, nil
}

// exprTop parses ternary / lambda level.
func (p *pparser) exprTop() (expr, error) {
	if p.atKw("lambda") {
		t := p.next()
		var params []string
		var defaults []expr
		for !p.at(tOp, ":") {
			pt := p.cur()
			if pt.kind != tName || pyKeywords[pt.text] {
				return nil, p.errHere("expected lambda parameter")
			}
			p.next()
			params = append(params, pt.text)
			if p.eat(tOp, "=") {
				d, err := p.exprTop()
				if err != nil {
					return nil, err
				}
				defaults = append(defaults, d)
			}
			if !p.eat(tOp, ",") {
				break
			}
		}
		if err := p.expect(tOp, ":"); err != nil {
			return nil, err
		}
		body, err := p.exprTop()
		if err != nil {
			return nil, err
		}
		return &lambdaExpr{pos: pos{t.line}, Params: params, Defaults: defaults, Body: body}, nil
	}
	e, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if p.atKw("if") {
		t := p.next()
		test, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if !p.eatKw("else") {
			return nil, p.errHere("expected 'else' in conditional expression")
		}
		els, err := p.exprTop()
		if err != nil {
			return nil, err
		}
		return &ternary{pos: pos{t.line}, Then: e, Test: test, Else: els}, nil
	}
	return e, nil
}

func (p *pparser) orExpr() (expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.atKw("or") {
		t := p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &boolOp{pos: pos{t.line}, Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *pparser) andExpr() (expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.atKw("and") {
		t := p.next()
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &boolOp{pos: pos{t.line}, Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *pparser) notExpr() (expr, error) {
	if p.atKw("not") {
		t := p.next()
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &unaryOp{pos: pos{t.line}, Op: "not", X: x}, nil
	}
	return p.comparison()
}

var compOps = map[string]bool{"==": true, "!=": true, "<": true, ">": true, "<=": true, ">=": true}

func (p *pparser) comparison() (expr, error) {
	l, err := p.arith()
	if err != nil {
		return nil, err
	}
	var ops []string
	var rest []expr
	for {
		var op string
		switch {
		case p.cur().kind == tOp && compOps[p.cur().text]:
			op = p.next().text
		case p.atKw("in"):
			p.next()
			op = "in"
		case p.atKw("not"):
			// "not in"
			save := p.pos
			p.next()
			if !p.eatKw("in") {
				p.pos = save
				goto done
			}
			op = "not in"
		case p.atKw("is"):
			p.next()
			if p.eatKw("not") {
				op = "is not"
			} else {
				op = "is"
			}
		default:
			goto done
		}
		r, err := p.arith()
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
		rest = append(rest, r)
	}
done:
	if len(ops) == 0 {
		return l, nil
	}
	return &compare{pos: pos{l.exprLine()}, First: l, Ops: ops, Rest: rest}, nil
}

func (p *pparser) arith() (expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.at(tOp, "+") || p.at(tOp, "-") {
		t := p.next()
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		l = &binOp{pos: pos{t.line}, Op: t.text, L: l, R: r}
	}
	return l, nil
}

func (p *pparser) term() (expr, error) {
	l, err := p.factor()
	if err != nil {
		return nil, err
	}
	for p.at(tOp, "*") || p.at(tOp, "/") || p.at(tOp, "//") || p.at(tOp, "%") {
		t := p.next()
		r, err := p.factor()
		if err != nil {
			return nil, err
		}
		l = &binOp{pos: pos{t.line}, Op: t.text, L: l, R: r}
	}
	return l, nil
}

func (p *pparser) factor() (expr, error) {
	if p.at(tOp, "-") || p.at(tOp, "+") {
		t := p.next()
		x, err := p.factor()
		if err != nil {
			return nil, err
		}
		return &unaryOp{pos: pos{t.line}, Op: t.text, X: x}, nil
	}
	return p.power()
}

func (p *pparser) power() (expr, error) {
	l, err := p.postfix()
	if err != nil {
		return nil, err
	}
	if p.at(tOp, "**") {
		t := p.next()
		r, err := p.factor() // right-associative
		if err != nil {
			return nil, err
		}
		return &binOp{pos: pos{t.line}, Op: "**", L: l, R: r}, nil
	}
	return l, nil
}

func (p *pparser) postfix() (expr, error) {
	x, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tOp, "."):
			p.next()
			t := p.cur()
			if t.kind != tName {
				return nil, p.errHere("expected attribute name after '.'")
			}
			p.next()
			x = &attrRef{pos: pos{t.line}, Obj: x, Name: t.text}
		case p.at(tOp, "["):
			t := p.next()
			// Slice or index.
			var low, high, step expr
			hasColon := false
			if !p.at(tOp, ":") {
				low, err = p.exprTop()
				if err != nil {
					return nil, err
				}
			}
			if p.eat(tOp, ":") {
				hasColon = true
				if !p.at(tOp, ":") && !p.at(tOp, "]") {
					high, err = p.exprTop()
					if err != nil {
						return nil, err
					}
				}
				if p.eat(tOp, ":") {
					if !p.at(tOp, "]") {
						step, err = p.exprTop()
						if err != nil {
							return nil, err
						}
					}
				}
			}
			if err := p.expect(tOp, "]"); err != nil {
				return nil, err
			}
			if hasColon {
				x = &sliceExpr{pos: pos{t.line}, Obj: x, Low: low, High: high, Step_: step}
			} else {
				x = &subscript{pos: pos{t.line}, Obj: x, Key: low}
			}
		case p.at(tOp, "("):
			t := p.next()
			c := &callExpr{pos: pos{t.line}, Fn: x}
			for !p.at(tOp, ")") {
				// keyword argument?
				if p.cur().kind == tName && !pyKeywords[p.cur().text] && p.toks[p.pos+1].kind == tOp && p.toks[p.pos+1].text == "=" {
					kw := p.next().text
					p.next() // =
					v, err := p.exprTop()
					if err != nil {
						return nil, err
					}
					c.KwName = append(c.KwName, kw)
					c.KwVal = append(c.KwVal, v)
				} else {
					a, err := p.exprTop()
					if err != nil {
						return nil, err
					}
					if len(c.KwName) > 0 {
						return nil, p.errHere("positional argument after keyword argument")
					}
					c.Args = append(c.Args, a)
				}
				if !p.eat(tOp, ",") {
					break
				}
			}
			if err := p.expect(tOp, ")"); err != nil {
				return nil, err
			}
			x = c
		default:
			return x, nil
		}
	}
}

func (p *pparser) atom() (expr, error) {
	t := p.cur()
	switch t.kind {
	case tNum:
		p.next()
		if t.isInt {
			return &intLit{pos: pos{t.line}, V: t.ival}, nil
		}
		return &floatLit{pos: pos{t.line}, V: t.num}, nil
	case tStr:
		p.next()
		// Adjacent string literal concatenation.
		s := t.text
		for p.cur().kind == tStr {
			s += p.next().text
		}
		return &strLit{pos: pos{t.line}, V: s}, nil
	case tFStr:
		p.next()
		return parseFString(t.text, t.line)
	case tName:
		switch t.text {
		case "True", "False":
			p.next()
			return &boolLit{pos: pos{t.line}, V: t.text == "True"}, nil
		case "None":
			p.next()
			return &noneLit{pos: pos{t.line}}, nil
		}
		if pyKeywords[t.text] && t.text != "lambda" {
			return nil, p.errHere("unexpected keyword %q", t.text)
		}
		p.next()
		return &nameRef{pos: pos{t.line}, Name: t.text}, nil
	case tOp:
		switch t.text {
		case "(":
			p.next()
			if p.eat(tOp, ")") {
				return &tupleLit{pos: pos{t.line}}, nil
			}
			e, err := p.exprTop()
			if err != nil {
				return nil, err
			}
			if p.at(tOp, ",") {
				tl := &tupleLit{pos: pos{t.line}, Elems: []expr{e}}
				for p.eat(tOp, ",") {
					if p.at(tOp, ")") {
						break
					}
					e2, err := p.exprTop()
					if err != nil {
						return nil, err
					}
					tl.Elems = append(tl.Elems, e2)
				}
				if err := p.expect(tOp, ")"); err != nil {
					return nil, err
				}
				return tl, nil
			}
			if err := p.expect(tOp, ")"); err != nil {
				return nil, err
			}
			return e, nil
		case "[":
			p.next()
			if p.eat(tOp, "]") {
				return &listLit{pos: pos{t.line}}, nil
			}
			first, err := p.exprTop()
			if err != nil {
				return nil, err
			}
			if p.atKw("for") {
				// list comprehension
				p.next()
				vars, err := p.targetNames()
				if err != nil {
					return nil, err
				}
				if !p.eatKw("in") {
					return nil, p.errHere("expected 'in' in comprehension")
				}
				iter, err := p.orExpr()
				if err != nil {
					return nil, err
				}
				var cond expr
				if p.eatKw("if") {
					cond, err = p.orExpr()
					if err != nil {
						return nil, err
					}
				}
				if err := p.expect(tOp, "]"); err != nil {
					return nil, err
				}
				return &listComp{pos: pos{t.line}, Out: first, Vars: vars, Iter: iter, Cond: cond}, nil
			}
			ll := &listLit{pos: pos{t.line}, Elems: []expr{first}}
			for p.eat(tOp, ",") {
				if p.at(tOp, "]") {
					break
				}
				e, err := p.exprTop()
				if err != nil {
					return nil, err
				}
				ll.Elems = append(ll.Elems, e)
			}
			if err := p.expect(tOp, "]"); err != nil {
				return nil, err
			}
			return ll, nil
		case "{":
			p.next()
			if p.eat(tOp, "}") {
				return &dictLit{pos: pos{t.line}}, nil
			}
			firstKey, err := p.exprTop()
			if err != nil {
				return nil, err
			}
			if p.at(tOp, ":") {
				p.next()
				firstVal, err := p.exprTop()
				if err != nil {
					return nil, err
				}
				dl := &dictLit{pos: pos{t.line}, Keys: []expr{firstKey}, Vals: []expr{firstVal}}
				for p.eat(tOp, ",") {
					if p.at(tOp, "}") {
						break
					}
					k, err := p.exprTop()
					if err != nil {
						return nil, err
					}
					if err := p.expect(tOp, ":"); err != nil {
						return nil, err
					}
					v, err := p.exprTop()
					if err != nil {
						return nil, err
					}
					dl.Keys = append(dl.Keys, k)
					dl.Vals = append(dl.Vals, v)
				}
				if err := p.expect(tOp, "}"); err != nil {
					return nil, err
				}
				return dl, nil
			}
			// set literal
			sl := &setLit{pos: pos{t.line}, Elems: []expr{firstKey}}
			for p.eat(tOp, ",") {
				if p.at(tOp, "}") {
					break
				}
				e, err := p.exprTop()
				if err != nil {
					return nil, err
				}
				sl.Elems = append(sl.Elems, e)
			}
			if err := p.expect(tOp, "}"); err != nil {
				return nil, err
			}
			return sl, nil
		}
	}
	found := t.text
	switch t.kind {
	case tNewline:
		found = "newline"
	case tEOF:
		found = "end of input"
	}
	return nil, p.errHere("unexpected %q", found)
}

// parseFString splits an f-string body into literal and expression parts.
func parseFString(body string, line int) (expr, error) {
	node := &fstrLit{pos: pos{line}}
	var lit strings.Builder
	i := 0
	for i < len(body) {
		c := body[i]
		if c == '{' {
			if i+1 < len(body) && body[i+1] == '{' {
				lit.WriteByte('{')
				i += 2
				continue
			}
			if lit.Len() > 0 {
				node.Parts = append(node.Parts, fstrPart{Text: unescapeLit(lit.String())})
				lit.Reset()
			}
			// Find the matching close brace, respecting nesting and quotes.
			depth := 1
			j := i + 1
			for j < len(body) && depth > 0 {
				switch body[j] {
				case '{':
					depth++
				case '}':
					depth--
				case '\'', '"':
					q := body[j]
					j++
					for j < len(body) && body[j] != q {
						j++
					}
				}
				j++
			}
			if depth != 0 {
				return nil, &SyntaxError{Line: line, Msg: "unbalanced braces in f-string"}
			}
			inner := body[i+1 : j-1]
			part := fstrPart{}
			// Conversion: !r or !s before format spec.
			if k := strings.LastIndex(inner, "!"); k >= 0 && k+1 < len(inner) && (inner[k+1] == 'r' || inner[k+1] == 's') && (k+2 == len(inner) || inner[k+2] == ':') {
				part.Conv = inner[k+1]
				rest := inner[k+2:]
				inner = inner[:k]
				if strings.HasPrefix(rest, ":") {
					part.Spec = rest[1:]
				}
			} else if k := topLevelColon(inner); k >= 0 {
				part.Spec = inner[k+1:]
				inner = inner[:k]
			}
			e, err := parsePyExpression(inner)
			if err != nil {
				return nil, err
			}
			part.Expr = e
			node.Parts = append(node.Parts, part)
			i = j
			continue
		}
		if c == '}' {
			if i+1 < len(body) && body[i+1] == '}' {
				lit.WriteByte('}')
				i += 2
				continue
			}
			return nil, &SyntaxError{Line: line, Msg: "single '}' in f-string"}
		}
		lit.WriteByte(c)
		i++
	}
	if lit.Len() > 0 {
		node.Parts = append(node.Parts, fstrPart{Text: unescapeLit(lit.String())})
	}
	return node, nil
}

// topLevelColon finds a ':' outside brackets/quotes (format spec separator).
func topLevelColon(s string) int {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
		case '\'', '"':
			q := s[i]
			i++
			for i < len(s) && s[i] != q {
				i++
			}
		case ':':
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

// unescapeLit processes backslash escapes kept raw during f-string lexing.
func unescapeLit(s string) string {
	if !strings.Contains(s, "\\") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			b.WriteString(unescapePy(s[i+1]))
			i++
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
