package pyexpr

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/yamlx"
)

// List is a mutable Python list.
type List struct{ E []any }

// NewList builds a list value.
func NewList(elems ...any) *List { return &List{E: elems} }

// Tuple is an immutable Python tuple.
type Tuple struct{ E []any }

// Set is a Python set with insertion-ordered elements (deterministic
// iteration; membership uses value equality).
type Set struct{ E []any }

// Dict is a Python dict with insertion-ordered string keys. Non-string keys
// are stored via their repr, which covers CWL usage.
type Dict = yamlx.Map

// Exception is a Python exception value.
type Exception struct {
	Type string // class name, e.g. "Exception", "ValueError"
	Msg  string
}

func (e *Exception) String() string {
	if e.Msg == "" {
		return e.Type
	}
	return e.Type + ": " + e.Msg
}

// Raised is the Go error wrapping a raised Python exception.
type Raised struct{ Exc *Exception }

func (r *Raised) Error() string { return "python exception: " + r.Exc.String() }

func raisef(typ, format string, args ...any) error {
	return &Raised{Exc: &Exception{Type: typ, Msg: fmt.Sprintf(format, args...)}}
}

// PyFunc is a user-defined function.
type PyFunc struct {
	Name     string
	Params   []string
	Defaults []any // evaluated at def time, aligned to tail of Params
	Body     []stmt
	env      *penv
	isLambda bool
	lambdaX  expr
}

// Builtin is a native function exposed to Python code.
type Builtin struct {
	Name string
	Fn   func(ip *Interp, args []any, kw map[string]any) (any, error)
}

// rangeVal is the lazy result of range().
type rangeVal struct{ start, stop, step int64 }

func (r rangeVal) length() int64 {
	if r.step > 0 {
		if r.stop <= r.start {
			return 0
		}
		return (r.stop - r.start + r.step - 1) / r.step
	}
	if r.stop >= r.start {
		return 0
	}
	return (r.start - r.stop - r.step - 1) / (-r.step)
}

type penv struct {
	vars   map[string]any
	parent *penv
	// frozen marks the shared global scope after library loading: assignments
	// never touch it, binding locally instead (closer to real Python scoping,
	// and what makes concurrent evaluation race-free).
	frozen bool
}

func newPenv(parent *penv) *penv { return &penv{vars: map[string]any{}, parent: parent} }

func (e *penv) lookup(name string) (any, bool) {
	for env := e; env != nil; env = env.parent {
		if v, ok := env.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (e *penv) assign(name string, v any) {
	// Python semantics-lite: assignment binds in the local scope unless the
	// name already exists in an enclosing scope that we created via def
	// nesting. For the CWL subset, local-bind is the right default; we update
	// an existing binding if one is visible to keep loops working. Frozen
	// (global) scopes are never written — a rebind of a library global binds
	// locally, as real Python would without a `global` declaration.
	for env := e; env != nil && !env.frozen; env = env.parent {
		if _, ok := env.vars[name]; ok {
			env.vars[name] = v
			return
		}
	}
	e.vars[name] = v
}

// Buffer is a concurrency-safe string sink; print() output from concurrent
// evaluations is interleaved per-write but never torn. Retention is bounded:
// pooled engines live for the process lifetime, so an unbounded sink would
// leak under sustained print() traffic — past the cap the oldest half is
// dropped (a "[...output trimmed...]\n" marker notes the cut).
type Buffer struct {
	mu sync.Mutex
	b  strings.Builder
}

// BufferMaxBytes bounds how much print() output a Buffer retains.
const BufferMaxBytes = 1 << 20

// WriteString appends s (implements io.StringWriter).
func (o *Buffer) WriteString(s string) (int, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.b.Len()+len(s) > BufferMaxBytes {
		tail := o.b.String()
		if len(tail) > BufferMaxBytes/2 {
			tail = tail[len(tail)-BufferMaxBytes/2:]
		}
		o.b.Reset()
		o.b.WriteString("[...output trimmed...]\n")
		o.b.WriteString(tail)
	}
	return o.b.WriteString(s)
}

// String returns everything written so far.
func (o *Buffer) String() string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.b.String()
}

// Reset discards accumulated output.
func (o *Buffer) Reset() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.b.Reset()
}

// Interp is a Python interpreter instance holding the loaded expression
// library. Load libraries first (LoadLib), then evaluate: the first
// evaluation seals the global scope, after which one Interp may evaluate
// compiled Programs from many goroutines concurrently.
//
// Concurrency is fully parallel when the library consists of functions and
// scalar constants. A library holding mutable state reachable from globals —
// list/dict/set globals, mutable function defaults, or functions over
// captured scopes — can be mutated in place by expressions, so evaluation on
// such an Interp is transparently serialized instead.
type Interp struct {
	global   *penv
	steps    int
	maxSteps int
	sealOnce sync.Once
	// builtinVals snapshots the installed builtins, so sealing can tell
	// library-defined globals apart from the standard ones.
	builtinVals map[string]any
	// serialize (decided at seal time) forces evaluations to take evalMu.
	serialize bool
	evalMu    sync.Mutex
	// Stdout captures print() output (shared across per-call evaluators).
	Stdout *Buffer
}

// DefaultMaxSteps bounds evaluation work per call.
const DefaultMaxSteps = 5_000_000

// New creates an interpreter with builtins installed.
func New() *Interp {
	ip := &Interp{maxSteps: DefaultMaxSteps, Stdout: &Buffer{}}
	ip.global = newPenv(nil)
	installPyBuiltins(ip.global)
	ip.builtinVals = make(map[string]any, len(ip.global.vars))
	for k, v := range ip.global.vars {
		ip.builtinVals[k] = v
	}
	return ip
}

// SetMaxSteps overrides the evaluation budget.
func (ip *Interp) SetMaxSteps(n int) { ip.maxSteps = n }

// LoadLib executes expressionLib source (def statements, constants) in the
// global scope. All libraries must load before the first evaluation:
// evaluating seals the global scope for concurrent use.
func (ip *Interp) LoadLib(src string) error {
	if ip.global.frozen {
		return fmt.Errorf("pyexpr: LoadLib called after evaluation started (global scope is sealed)")
	}
	prog, err := parsePyProgram(src)
	if err != nil {
		return err
	}
	ip.steps = 0
	_, err = ip.execStmts(prog, ip.global)
	return err
}

// EvalExpr evaluates one expression with vars in scope, returning a CWL
// document value. It is a thin compile-then-run wrapper; callers on a hot
// path should Compile once and RunProgram many times.
func (ip *Interp) EvalExpr(src string, vars map[string]any) (any, error) {
	p, err := CompileExpr(src)
	if err != nil {
		return nil, err
	}
	return ip.RunProgram(p, vars)
}

// EvalBody executes a statement block; the value of a top-level return (or
// None) is converted back to document vocabulary. Like EvalExpr, it is a
// thin wrapper over CompileBody + RunProgram.
func (ip *Interp) EvalBody(src string, vars map[string]any) (any, error) {
	p, err := CompileBody(src)
	if err != nil {
		return nil, err
	}
	return ip.RunProgram(p, vars)
}

// Call invokes a named function from the loaded library with document values.
// Like RunProgram, it serializes on interpreters whose library holds mutable
// state.
func (ip *Interp) Call(name string, args ...any) (any, error) {
	ev := ip.evaluator()
	if ip.serialize {
		ip.evalMu.Lock()
		defer ip.evalMu.Unlock()
	}
	fnv, ok := ip.global.lookup(name)
	if !ok {
		return nil, fmt.Errorf("python function %q is not defined", name)
	}
	pyArgs := make([]any, len(args))
	for i, a := range args {
		pyArgs[i] = ToPy(a)
	}
	v, err := ev.call(fnv, pyArgs, nil, 0)
	if err != nil {
		return nil, err
	}
	return FromPy(v), nil
}

func (ip *Interp) scopeWith(vars map[string]any) *penv {
	env := newPenv(ip.global)
	for k, v := range vars {
		env.vars[k] = ToPy(v)
	}
	return env
}

func (ip *Interp) tick(line int) error {
	ip.steps++
	if ip.steps > ip.maxSteps {
		return fmt.Errorf("python evaluation exceeded %d steps (line %d): possible infinite loop", ip.maxSteps, line)
	}
	return nil
}

type ctrl struct {
	kind  ctrlKind
	value any
}

type ctrlKind int

const (
	ctrlReturn ctrlKind = iota + 1
	ctrlBreak
	ctrlContinue
)

func (ip *Interp) execStmts(stmts []stmt, env *penv) (*ctrl, error) {
	for _, s := range stmts {
		c, err := ip.exec(s, env)
		if err != nil || c != nil {
			return c, err
		}
	}
	return nil, nil
}

func (ip *Interp) exec(s stmt, env *penv) (*ctrl, error) {
	if err := ip.tick(s.stmtLine()); err != nil {
		return nil, err
	}
	switch st := s.(type) {
	case *exprStatement:
		_, err := ip.eval(st.X, env)
		return nil, err
	case *passStmt:
		return nil, nil
	case *assignStmt:
		val, err := ip.eval(st.Value, env)
		if err != nil {
			return nil, err
		}
		if st.Op != "=" {
			old, err := ip.eval(st.Target, env)
			if err != nil {
				return nil, err
			}
			val, err = pyBinOp(strings.TrimSuffix(st.Op, "="), old, val, st.Line)
			if err != nil {
				return nil, err
			}
		}
		return nil, ip.assignTo(st.Target, val, env)
	case *returnStatement:
		var v any
		if st.X != nil {
			var err error
			v, err = ip.eval(st.X, env)
			if err != nil {
				return nil, err
			}
		}
		return &ctrl{kind: ctrlReturn, value: v}, nil
	case *breakStatement:
		return &ctrl{kind: ctrlBreak}, nil
	case *continueStatement:
		return &ctrl{kind: ctrlContinue}, nil
	case *raiseStmt:
		if st.X == nil {
			return nil, raisef("RuntimeError", "no active exception to re-raise")
		}
		v, err := ip.eval(st.X, env)
		if err != nil {
			return nil, err
		}
		switch exc := v.(type) {
		case *Exception:
			return nil, &Raised{Exc: exc}
		case string:
			return nil, &Raised{Exc: &Exception{Type: "Exception", Msg: exc}}
		case *Builtin:
			// raise ValueError  (class without call)
			return nil, &Raised{Exc: &Exception{Type: exc.Name}}
		}
		return nil, raisef("TypeError", "exceptions must derive from BaseException")
	case *ifStatement:
		t, err := ip.eval(st.Test, env)
		if err != nil {
			return nil, err
		}
		if pyTruthy(t) {
			return ip.execStmts(st.Then, env)
		}
		return ip.execStmts(st.Else, env)
	case *whileStatement:
		for {
			if err := ip.tick(st.Line); err != nil {
				return nil, err
			}
			t, err := ip.eval(st.Test, env)
			if err != nil {
				return nil, err
			}
			if !pyTruthy(t) {
				return nil, nil
			}
			c, err := ip.execStmts(st.Body, env)
			if err != nil {
				return nil, err
			}
			if c != nil {
				switch c.kind {
				case ctrlBreak:
					return nil, nil
				case ctrlContinue:
					continue
				default:
					return c, nil
				}
			}
		}
	case *forStatement:
		items, err := ip.iterate(st.Iter, env, st.Line)
		if err != nil {
			return nil, err
		}
		for _, item := range items {
			if err := ip.tick(st.Line); err != nil {
				return nil, err
			}
			if err := bindLoopVars(env, st.Vars, item, st.Line); err != nil {
				return nil, err
			}
			c, err := ip.execStmts(st.Body, env)
			if err != nil {
				return nil, err
			}
			if c != nil {
				switch c.kind {
				case ctrlBreak:
					return nil, nil
				case ctrlContinue:
					continue
				default:
					return c, nil
				}
			}
		}
		return nil, nil
	case *defStatement:
		defaults := make([]any, len(st.Defaults))
		for i, d := range st.Defaults {
			v, err := ip.eval(d, env)
			if err != nil {
				return nil, err
			}
			defaults[i] = v
		}
		env.vars[st.Name] = &PyFunc{
			Name: st.Name, Params: st.Params, Defaults: defaults,
			Body: st.Body, env: env,
		}
		return nil, nil
	case *tryStatement:
		c, err := ip.execStmts(st.Body, env)
		if err != nil {
			if raised, ok := err.(*Raised); ok {
				for _, h := range st.Handlers {
					if excMatches(h.Types, raised.Exc.Type) {
						hEnv := env
						if h.As != "" {
							env.vars[h.As] = raised.Exc
						}
						c2, err2 := ip.execStmts(h.Body, hEnv)
						fc, ferr := ip.execStmts(st.Finally, env)
						if ferr != nil {
							return nil, ferr
						}
						if fc != nil {
							return fc, nil
						}
						return c2, err2
					}
				}
			}
			if _, ferr := ip.execStmts(st.Finally, env); ferr != nil {
				return nil, ferr
			}
			return nil, err
		}
		fc, ferr := ip.execStmts(st.Finally, env)
		if ferr != nil {
			return nil, ferr
		}
		if fc != nil {
			return fc, nil
		}
		return c, nil
	}
	return nil, fmt.Errorf("unsupported statement %T", s)
}

// excMatches reports whether an except clause with the given class names
// catches excType. "Exception" and "BaseException" catch everything.
func excMatches(types []string, excType string) bool {
	if len(types) == 0 {
		return true
	}
	for _, t := range types {
		if t == excType || t == "Exception" || t == "BaseException" {
			return true
		}
	}
	return false
}

func bindLoopVars(env *penv, vars []string, item any, line int) error {
	if len(vars) == 1 {
		env.assign(vars[0], item)
		return nil
	}
	elems, ok := sequenceOf(item)
	if !ok {
		return raisef("TypeError", "cannot unpack non-sequence (line %d)", line)
	}
	if len(elems) != len(vars) {
		return raisef("ValueError", "expected %d values to unpack, got %d (line %d)", len(vars), len(elems), line)
	}
	for i, name := range vars {
		env.assign(name, elems[i])
	}
	return nil
}

func sequenceOf(v any) ([]any, bool) {
	switch x := v.(type) {
	case *List:
		return x.E, true
	case *Tuple:
		return x.E, true
	}
	return nil, false
}

func (ip *Interp) iterate(iterExpr expr, env *penv, line int) ([]any, error) {
	v, err := ip.eval(iterExpr, env)
	if err != nil {
		return nil, err
	}
	return iterValues(v, line)
}

func iterValues(v any, line int) ([]any, error) {
	switch x := v.(type) {
	case *List:
		return append([]any{}, x.E...), nil
	case *Tuple:
		return append([]any{}, x.E...), nil
	case *Set:
		return append([]any{}, x.E...), nil
	case string:
		out := make([]any, 0, len(x))
		for _, r := range x {
			out = append(out, string(r))
		}
		return out, nil
	case *Dict:
		out := make([]any, 0, x.Len())
		for _, k := range x.Keys() {
			out = append(out, k)
		}
		return out, nil
	case rangeVal:
		n := x.length()
		if n > 50_000_000 {
			return nil, raisef("OverflowError", "range too large (line %d)", line)
		}
		out := make([]any, 0, n)
		for i, val := int64(0), x.start; i < n; i, val = i+1, val+x.step {
			out = append(out, val)
		}
		return out, nil
	}
	return nil, raisef("TypeError", "'%s' object is not iterable (line %d)", pyTypeName(v), line)
}

func (ip *Interp) assignTo(target expr, val any, env *penv) error {
	switch t := target.(type) {
	case *nameRef:
		env.assign(t.Name, val)
		return nil
	case *tupleLit:
		elems, ok := sequenceOf(val)
		if !ok {
			return raisef("TypeError", "cannot unpack non-sequence")
		}
		if len(elems) != len(t.Elems) {
			return raisef("ValueError", "expected %d values to unpack, got %d", len(t.Elems), len(elems))
		}
		for i, el := range t.Elems {
			name := el.(*nameRef)
			env.assign(name.Name, elems[i])
		}
		return nil
	case *subscript:
		obj, err := ip.eval(t.Obj, env)
		if err != nil {
			return err
		}
		key, err := ip.eval(t.Key, env)
		if err != nil {
			return err
		}
		switch o := obj.(type) {
		case *List:
			i, ok := key.(int64)
			if !ok {
				return raisef("TypeError", "list indices must be integers")
			}
			idx, err := normIndex(i, len(o.E))
			if err != nil {
				return err
			}
			o.E[idx] = val
			return nil
		case *Dict:
			ks, err := dictKey(key)
			if err != nil {
				return err
			}
			o.Set(ks, val)
			return nil
		}
		return raisef("TypeError", "'%s' object does not support item assignment", pyTypeName(obj))
	case *attrRef:
		obj, err := ip.eval(t.Obj, env)
		if err != nil {
			return err
		}
		if d, ok := obj.(*Dict); ok {
			d.Set(t.Name, val)
			return nil
		}
		return raisef("AttributeError", "cannot set attribute %q on %s", t.Name, pyTypeName(obj))
	}
	return fmt.Errorf("invalid assignment target %T", target)
}

func normIndex(i int64, n int) (int, error) {
	if i < 0 {
		i += int64(n)
	}
	if i < 0 || i >= int64(n) {
		return 0, raisef("IndexError", "index out of range")
	}
	return int(i), nil
}

// dictKey converts a key to the string form Dict stores. Strings pass through;
// other hashables use their repr, keeping lookups consistent.
func dictKey(key any) (string, error) {
	switch k := key.(type) {
	case string:
		return k, nil
	case int64, float64, bool, nil:
		return pyRepr(k), nil
	case *Tuple:
		return pyRepr(k), nil
	}
	return "", raisef("TypeError", "unhashable type: '%s'", pyTypeName(key))
}

func (ip *Interp) eval(e expr, env *penv) (any, error) {
	if err := ip.tick(e.exprLine()); err != nil {
		return nil, err
	}
	switch x := e.(type) {
	case *intLit:
		return x.V, nil
	case *floatLit:
		return x.V, nil
	case *strLit:
		return x.V, nil
	case *boolLit:
		return x.V, nil
	case *noneLit:
		return nil, nil
	case *nameRef:
		if v, ok := env.lookup(x.Name); ok {
			return v, nil
		}
		return nil, raisef("NameError", "name '%s' is not defined (line %d)", x.Name, x.Line)
	case *fstrLit:
		var b strings.Builder
		for _, part := range x.Parts {
			if part.Expr == nil {
				b.WriteString(part.Text)
				continue
			}
			v, err := ip.eval(part.Expr, env)
			if err != nil {
				return nil, err
			}
			if part.Conv == 'r' {
				b.WriteString(applySpec(pyRepr(v), part.Spec))
				continue
			}
			s, err := formatValue(v, part.Spec)
			if err != nil {
				return nil, err
			}
			b.WriteString(s)
		}
		return b.String(), nil
	case *listLit:
		l := &List{}
		for _, el := range x.Elems {
			v, err := ip.eval(el, env)
			if err != nil {
				return nil, err
			}
			l.E = append(l.E, v)
		}
		return l, nil
	case *tupleLit:
		t := &Tuple{}
		for _, el := range x.Elems {
			v, err := ip.eval(el, env)
			if err != nil {
				return nil, err
			}
			t.E = append(t.E, v)
		}
		return t, nil
	case *setLit:
		s := &Set{}
		for _, el := range x.Elems {
			v, err := ip.eval(el, env)
			if err != nil {
				return nil, err
			}
			setAdd(s, v)
		}
		return s, nil
	case *dictLit:
		d := yamlx.NewMap()
		for i := range x.Keys {
			k, err := ip.eval(x.Keys[i], env)
			if err != nil {
				return nil, err
			}
			v, err := ip.eval(x.Vals[i], env)
			if err != nil {
				return nil, err
			}
			ks, err := dictKey(k)
			if err != nil {
				return nil, err
			}
			d.Set(ks, v)
		}
		return d, nil
	case *attrRef:
		obj, err := ip.eval(x.Obj, env)
		if err != nil {
			return nil, err
		}
		return ip.getAttr(obj, x.Name, x.Line)
	case *subscript:
		obj, err := ip.eval(x.Obj, env)
		if err != nil {
			return nil, err
		}
		key, err := ip.eval(x.Key, env)
		if err != nil {
			return nil, err
		}
		return pyGetItem(obj, key, x.Line)
	case *sliceExpr:
		obj, err := ip.eval(x.Obj, env)
		if err != nil {
			return nil, err
		}
		return ip.evalSlice(obj, x, env)
	case *callExpr:
		fn, err := ip.eval(x.Fn, env)
		if err != nil {
			return nil, err
		}
		args := make([]any, 0, len(x.Args))
		for _, a := range x.Args {
			v, err := ip.eval(a, env)
			if err != nil {
				return nil, err
			}
			args = append(args, v)
		}
		var kw map[string]any
		if len(x.KwName) > 0 {
			kw = map[string]any{}
			for i, name := range x.KwName {
				v, err := ip.eval(x.KwVal[i], env)
				if err != nil {
					return nil, err
				}
				kw[name] = v
			}
		}
		return ip.call(fn, args, kw, x.Line)
	case *unaryOp:
		v, err := ip.eval(x.X, env)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "not":
			return !pyTruthy(v), nil
		case "-":
			switch n := v.(type) {
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			case bool:
				if n {
					return int64(-1), nil
				}
				return int64(0), nil
			}
			return nil, raisef("TypeError", "bad operand type for unary -: '%s'", pyTypeName(v))
		case "+":
			switch v.(type) {
			case int64, float64:
				return v, nil
			}
			return nil, raisef("TypeError", "bad operand type for unary +: '%s'", pyTypeName(v))
		}
	case *binOp:
		l, err := ip.eval(x.L, env)
		if err != nil {
			return nil, err
		}
		r, err := ip.eval(x.R, env)
		if err != nil {
			return nil, err
		}
		return pyBinOp(x.Op, l, r, x.Line)
	case *boolOp:
		l, err := ip.eval(x.L, env)
		if err != nil {
			return nil, err
		}
		if x.Op == "and" {
			if !pyTruthy(l) {
				return l, nil
			}
			return ip.eval(x.R, env)
		}
		if pyTruthy(l) {
			return l, nil
		}
		return ip.eval(x.R, env)
	case *compare:
		left, err := ip.eval(x.First, env)
		if err != nil {
			return nil, err
		}
		for i, op := range x.Ops {
			right, err := ip.eval(x.Rest[i], env)
			if err != nil {
				return nil, err
			}
			ok, err := pyCompare(op, left, right, x.Line)
			if err != nil {
				return nil, err
			}
			if !ok {
				return false, nil
			}
			left = right
		}
		return true, nil
	case *ternary:
		t, err := ip.eval(x.Test, env)
		if err != nil {
			return nil, err
		}
		if pyTruthy(t) {
			return ip.eval(x.Then, env)
		}
		return ip.eval(x.Else, env)
	case *lambdaExpr:
		defaults := make([]any, len(x.Defaults))
		for i, d := range x.Defaults {
			v, err := ip.eval(d, env)
			if err != nil {
				return nil, err
			}
			defaults[i] = v
		}
		return &PyFunc{Name: "<lambda>", Params: x.Params, Defaults: defaults, env: env, isLambda: true, lambdaX: x.Body}, nil
	case *listComp:
		items, err := ip.iterate(x.Iter, env, x.Line)
		if err != nil {
			return nil, err
		}
		out := &List{}
		compEnv := newPenv(env)
		for _, item := range items {
			if err := ip.tick(x.Line); err != nil {
				return nil, err
			}
			if err := bindLoopVars(compEnv, x.Vars, item, x.Line); err != nil {
				return nil, err
			}
			if x.Cond != nil {
				c, err := ip.eval(x.Cond, compEnv)
				if err != nil {
					return nil, err
				}
				if !pyTruthy(c) {
					continue
				}
			}
			v, err := ip.eval(x.Out, compEnv)
			if err != nil {
				return nil, err
			}
			out.E = append(out.E, v)
		}
		return out, nil
	}
	return nil, fmt.Errorf("unsupported expression %T", e)
}

func (ip *Interp) evalSlice(obj any, x *sliceExpr, env *penv) (any, error) {
	evalOr := func(e expr, def int64) (int64, error) {
		if e == nil {
			return def, nil
		}
		v, err := ip.eval(e, env)
		if err != nil {
			return 0, err
		}
		n, ok := v.(int64)
		if !ok {
			return 0, raisef("TypeError", "slice indices must be integers")
		}
		return n, nil
	}
	slice := func(n int) (int, int, int64, error) {
		step, err := evalOr(x.Step_, 1)
		if err != nil {
			return 0, 0, 0, err
		}
		if step == 0 {
			return 0, 0, 0, raisef("ValueError", "slice step cannot be zero")
		}
		if step != 1 {
			return 0, 0, step, nil // handled by caller via element walk
		}
		lo, err := evalOr(x.Low, 0)
		if err != nil {
			return 0, 0, 0, err
		}
		hi, err := evalOr(x.High, int64(n))
		if err != nil {
			return 0, 0, 0, err
		}
		norm := func(i int64) int {
			if i < 0 {
				i += int64(n)
			}
			if i < 0 {
				i = 0
			}
			if i > int64(n) {
				i = int64(n)
			}
			return int(i)
		}
		l, h := norm(lo), norm(hi)
		if l > h {
			h = l
		}
		return l, h, 1, nil
	}
	walk := func(elems []any) ([]any, error) {
		n := len(elems)
		lo, hi, step, err := slice(n)
		if err != nil {
			return nil, err
		}
		if step == 1 {
			return append([]any{}, elems[lo:hi]...), nil
		}
		// General step (incl. negative).
		loE, hiE := x.Low, x.High
		var start, stop int64
		if step > 0 {
			start, stop = 0, int64(n)
		} else {
			start, stop = int64(n)-1, -1
		}
		if loE != nil {
			v, err := evalOr(loE, 0)
			if err != nil {
				return nil, err
			}
			if v < 0 {
				v += int64(n)
			}
			start = v
		}
		if hiE != nil {
			v, err := evalOr(hiE, 0)
			if err != nil {
				return nil, err
			}
			if v < 0 {
				v += int64(n)
			}
			stop = v
		}
		var out []any
		if step > 0 {
			for i := start; i < stop && i < int64(n); i += step {
				if i >= 0 {
					out = append(out, elems[i])
				}
			}
		} else {
			for i := start; i > stop && i >= 0; i += step {
				if i < int64(n) {
					out = append(out, elems[i])
				}
			}
		}
		return out, nil
	}
	switch o := obj.(type) {
	case string:
		runes := []rune(o)
		elems := make([]any, len(runes))
		for i, r := range runes {
			elems[i] = string(r)
		}
		out, err := walk(elems)
		if err != nil {
			return nil, err
		}
		var b strings.Builder
		for _, s := range out {
			b.WriteString(s.(string))
		}
		return b.String(), nil
	case *List:
		out, err := walk(o.E)
		if err != nil {
			return nil, err
		}
		return &List{E: out}, nil
	case *Tuple:
		out, err := walk(o.E)
		if err != nil {
			return nil, err
		}
		return &Tuple{E: out}, nil
	}
	return nil, raisef("TypeError", "'%s' object is not subscriptable", pyTypeName(obj))
}

func (ip *Interp) call(fn any, args []any, kw map[string]any, line int) (any, error) {
	switch f := fn.(type) {
	case *PyFunc:
		fnEnv := newPenv(f.env)
		nParams := len(f.Params)
		firstDefault := nParams - len(f.Defaults)
		if len(args) > nParams {
			return nil, raisef("TypeError", "%s() takes %d arguments but %d were given", f.Name, nParams, len(args))
		}
		for i, p := range f.Params {
			switch {
			case i < len(args):
				fnEnv.vars[p] = args[i]
			case kw != nil && hasKw(kw, p):
				fnEnv.vars[p] = kw[p]
			case i >= firstDefault:
				fnEnv.vars[p] = f.Defaults[i-firstDefault]
			default:
				return nil, raisef("TypeError", "%s() missing required argument: '%s'", f.Name, p)
			}
		}
		for k := range kw {
			if !contains(f.Params, k) {
				return nil, raisef("TypeError", "%s() got an unexpected keyword argument '%s'", f.Name, k)
			}
		}
		if f.isLambda {
			return ip.eval(f.lambdaX, fnEnv)
		}
		c, err := ip.execStmts(f.Body, fnEnv)
		if err != nil {
			return nil, err
		}
		if c != nil && c.kind == ctrlReturn {
			return c.value, nil
		}
		return nil, nil
	case *Builtin:
		return f.Fn(ip, args, kw)
	case *boundPyMethod:
		return f.fn(ip, f.recv, args, kw)
	}
	return nil, raisef("TypeError", "'%s' object is not callable (line %d)", pyTypeName(fn), line)
}

func hasKw(kw map[string]any, name string) bool {
	_, ok := kw[name]
	return ok
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

type boundPyMethod struct {
	name string
	recv any
	fn   func(ip *Interp, recv any, args []any, kw map[string]any) (any, error)
}

func setAdd(s *Set, v any) {
	for _, e := range s.E {
		if pyEq(e, v) {
			return
		}
	}
	s.E = append(s.E, v)
}

// pyTypeName returns the Python type name for error messages.
func pyTypeName(v any) string {
	switch v.(type) {
	case nil:
		return "NoneType"
	case bool:
		return "bool"
	case int64:
		return "int"
	case float64:
		return "float"
	case string:
		return "str"
	case *List:
		return "list"
	case *Tuple:
		return "tuple"
	case *Set:
		return "set"
	case *Dict:
		return "dict"
	case *PyFunc, *Builtin, *boundPyMethod:
		return "function"
	case *Exception:
		return "Exception"
	case rangeVal:
		return "range"
	}
	return fmt.Sprintf("%T", v)
}

func pyTruthy(v any) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case int64:
		return x != 0
	case float64:
		return x != 0
	case string:
		return x != ""
	case *List:
		return len(x.E) > 0
	case *Tuple:
		return len(x.E) > 0
	case *Set:
		return len(x.E) > 0
	case *Dict:
		return x.Len() > 0
	case rangeVal:
		return x.length() > 0
	default:
		return true
	}
}

// ToPy converts a CWL document value to Python-space values.
func ToPy(v any) any {
	switch x := v.(type) {
	case nil, bool, int64, float64, string:
		return x
	case int:
		return int64(x)
	case []any:
		l := &List{E: make([]any, len(x))}
		for i, e := range x {
			l.E[i] = ToPy(e)
		}
		return l
	case []string:
		l := &List{E: make([]any, len(x))}
		for i, e := range x {
			l.E[i] = e
		}
		return l
	case *yamlx.Map:
		d := yamlx.NewMap()
		x.Range(func(k string, vv any) bool {
			d.Set(k, ToPy(vv))
			return true
		})
		return d
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		d := yamlx.NewMap()
		for _, k := range keys {
			d.Set(k, ToPy(x[k]))
		}
		return d
	default:
		return v
	}
}

// FromPy converts interpreter values back to the CWL document vocabulary.
func FromPy(v any) any {
	switch x := v.(type) {
	case *List:
		out := make([]any, len(x.E))
		for i, e := range x.E {
			out[i] = FromPy(e)
		}
		return out
	case *Tuple:
		out := make([]any, len(x.E))
		for i, e := range x.E {
			out[i] = FromPy(e)
		}
		return out
	case *Set:
		out := make([]any, len(x.E))
		for i, e := range x.E {
			out[i] = FromPy(e)
		}
		return out
	case *Dict:
		d := yamlx.NewMap()
		x.Range(func(k string, vv any) bool {
			d.Set(k, FromPy(vv))
			return true
		})
		return d
	case rangeVal:
		items, _ := iterValues(x, 0)
		return FromPy(&List{E: items})
	case *Exception:
		return x.String()
	default:
		return v
	}
}

// pyStr is str(v); pyRepr is repr(v).
func pyStr(v any) string {
	switch x := v.(type) {
	case nil:
		return "None"
	case bool:
		if x {
			return "True"
		}
		return "False"
	case int64:
		return fmt.Sprintf("%d", x)
	case float64:
		return formatPyFloat(x)
	case string:
		return x
	case *Exception:
		return x.Msg
	default:
		return pyRepr(v)
	}
}

func pyRepr(v any) string {
	switch x := v.(type) {
	case string:
		return "'" + strings.NewReplacer("\\", "\\\\", "'", "\\'", "\n", "\\n", "\t", "\\t").Replace(x) + "'"
	case *List:
		parts := make([]string, len(x.E))
		for i, e := range x.E {
			parts[i] = pyRepr(e)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case *Tuple:
		parts := make([]string, len(x.E))
		for i, e := range x.E {
			parts[i] = pyRepr(e)
		}
		if len(parts) == 1 {
			return "(" + parts[0] + ",)"
		}
		return "(" + strings.Join(parts, ", ") + ")"
	case *Set:
		if len(x.E) == 0 {
			return "set()"
		}
		parts := make([]string, len(x.E))
		for i, e := range x.E {
			parts[i] = pyRepr(e)
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *Dict:
		parts := make([]string, 0, x.Len())
		x.Range(func(k string, vv any) bool {
			parts = append(parts, pyRepr(k)+": "+pyRepr(vv))
			return true
		})
		return "{" + strings.Join(parts, ", ") + "}"
	case *Exception:
		return x.Type + "(" + pyRepr(x.Msg) + ")"
	case *PyFunc:
		return "<function " + x.Name + ">"
	case rangeVal:
		if x.step == 1 {
			return fmt.Sprintf("range(%d, %d)", x.start, x.stop)
		}
		return fmt.Sprintf("range(%d, %d, %d)", x.start, x.stop, x.step)
	default:
		return pyStr(v)
	}
}

func formatPyFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "inf"
	}
	if math.IsInf(f, -1) {
		return "-inf"
	}
	if math.IsNaN(f) {
		return "nan"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e16 {
		return fmt.Sprintf("%.1f", f)
	}
	return fmt.Sprintf("%g", f)
}
