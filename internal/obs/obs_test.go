package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndVec(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-2) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter value = %d, want 5", got)
	}
	if again := r.Counter("test_total", "a counter"); again != c {
		t.Fatal("re-registration should return the same counter")
	}

	v := r.CounterVec("test_labeled_total", "labeled", "kind")
	v.With("a").Add(2)
	v.With("b").Inc()
	v.With("a").Inc()
	fams := r.Gather()
	if got, ok := Value(fams, "test_labeled_total", Label{"kind", "a"}); !ok || got != 3 {
		t.Fatalf("labeled a = %v (ok=%v), want 3", got, ok)
	}
	if got, ok := Value(fams, "test_labeled_total", Label{"kind", "b"}); !ok || got != 1 {
		t.Fatalf("labeled b = %v (ok=%v), want 1", got, ok)
	}
	if _, ok := Value(fams, "test_labeled_total", Label{"kind", "c"}); ok {
		t.Fatal("absent series should not be found")
	}
	if n := len(Samples(fams, "test_labeled_total")); n != 2 {
		t.Fatalf("samples = %d, want 2", n)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(10)
	g.Add(-3.5)
	if got := g.Value(); got != 6.5 {
		t.Fatalf("gauge = %v, want 6.5", got)
	}
	r.GaugeVec("test_gauge_vec", "labeled gauge", "x").With("y").Set(2)
	r.GaugeFunc("test_gauge_fn", "func gauge", func() float64 { return 42 })
	fams := r.Gather()
	if got, _ := Value(fams, "test_gauge_vec", Label{"x", "y"}); got != 2 {
		t.Fatalf("gauge vec = %v, want 2", got)
	}
	if got, _ := Value(fams, "test_gauge_fn"); got != 42 {
		t.Fatalf("gauge fn = %v, want 42", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "a histogram", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	fams := r.Gather()
	var hs *HistogramSample
	for _, f := range fams {
		if f.Name == "test_seconds" {
			hs = &f.Hist[0]
		}
	}
	if hs == nil {
		t.Fatal("histogram family not gathered")
	}
	if hs.Count != 5 {
		t.Fatalf("count = %d, want 5", hs.Count)
	}
	if hs.Sum != 56.05 {
		t.Fatalf("sum = %v, want 56.05", hs.Sum)
	}
	wantCum := []uint64{1, 3, 4}
	for i, w := range wantCum {
		if hs.Counts[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d", i, hs.Counts[i], w)
		}
	}

	hv := r.HistogramVec("test_vec_seconds", "labeled histogram", nil, "op")
	hv.With("read").Observe(0.002)
	fams = r.Gather()
	for _, f := range fams {
		if f.Name == "test_vec_seconds" {
			if len(f.Hist) != 1 || f.Hist[0].Count != 1 {
				t.Fatalf("vec histogram not recorded: %+v", f.Hist)
			}
			if !equalFloats(f.Hist[0].Bounds, DefBuckets) {
				t.Fatal("nil bounds should select DefBuckets")
			}
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if !equalFloats(b, want) {
		t.Fatalf("ExpBuckets = %v, want %v", b, want)
	}
}

func TestRegistryPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	expectPanic("invalid metric name", func() { r.Counter("9bad", "x") })
	expectPanic("invalid label name", func() { r.CounterVec("ok_total", "x", "le") })
	r.Counter("shape_total", "x")
	expectPanic("shape change", func() { r.Gauge("shape_total", "x") })
	expectPanic("descending bounds", func() { r.Histogram("desc_seconds", "x", []float64{2, 1}) })
	v := r.CounterVec("arity_total", "x", "a", "b")
	expectPanic("label arity", func() { v.With("only-one") })
}

func TestCollectorAndMerge(t *testing.T) {
	r := NewRegistry()
	r.Counter("merge_total", "from instrument").Inc()
	r.Collect(func() []Family {
		return []Family{
			{Name: "merge_total", Type: TypeCounter, Samples: []Sample{{Labels: []Label{{"src", "collector"}}, Value: 7}}},
			{Name: "alone_gauge", Help: "collector-only", Type: TypeGauge, Samples: []Sample{{Value: 1}}},
		}
	})
	fams := r.Gather()
	if got, _ := Value(fams, "merge_total"); got != 1 {
		t.Fatalf("instrument sample = %v, want 1", got)
	}
	if got, _ := Value(fams, "merge_total", Label{"src", "collector"}); got != 7 {
		t.Fatalf("collector sample = %v, want 7", got)
	}
	// Gather output must be sorted by name.
	for i := 1; i < len(fams); i++ {
		if fams[i].Name < fams[i-1].Name {
			t.Fatalf("families not sorted: %q after %q", fams[i].Name, fams[i-1].Name)
		}
	}
}

// TestExpositionRoundTrip renders a registry with every instrument kind and
// feeds it back through the strict parser — the same check CI runs against
// the live /metrics endpoint.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_total", "counter help with \\ and\nnewline").Add(3)
	r.CounterVec("rt_labeled_total", "labeled", "name").With("weird\"va\\lue\nx").Inc()
	r.Gauge("rt_gauge", "gauge").Set(2.5)
	r.Histogram("rt_seconds", "histogram", []float64{0.1, 1}).Observe(0.5)

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type = %q, want %q", ct, ContentType)
	}
	fams, err := ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition failed strict parse: %v", err)
	}
	if fams["rt_total"].Series[0].Value != 3 {
		t.Fatalf("rt_total = %v, want 3", fams["rt_total"].Series[0].Value)
	}
	got := fams["rt_labeled_total"].Series[0].Labels[0]
	if got.Value != "weird\"va\\lue\nx" {
		t.Fatalf("label value did not round-trip: %q", got.Value)
	}
	h := fams["rt_seconds"]
	if h.Type != "histogram" || len(h.Series) != 4 { // 2 bounds + Inf bucket + sum + count = 5? bounds(2)+inf(1)+sum+count
		if len(h.Series) != 5 {
			t.Fatalf("histogram series = %d, want 5", len(h.Series))
		}
	}
}

func TestWritePrometheusFloats(t *testing.T) {
	var sb strings.Builder
	err := WritePrometheus(&sb, []Family{{
		Name: "f_gauge", Type: TypeGauge,
		Samples: []Sample{
			{Value: math.Inf(1)},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "f_gauge +Inf") {
		t.Fatalf("infinity not rendered: %q", sb.String())
	}
}

func TestParseExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE":   "loose_total 1\n",
		"duplicate family":     "# TYPE a counter\n# TYPE a counter\n",
		"duplicate series":     "# TYPE a counter\na{x=\"1\"} 1\na{x=\"1\"} 2\n",
		"negative counter":     "# TYPE a counter\na -1\n",
		"bad type":             "# TYPE a enum\n",
		"bad metric name":      "# TYPE 9a counter\n",
		"bare histogram":       "# TYPE h histogram\nh 1\n",
		"missing Inf bucket":   "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"non-cumulative":       "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"count mismatch":       "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
		"repeated label":       "# TYPE a counter\na{x=\"1\",x=\"2\"} 1\n",
		"unquoted label":       "# TYPE a counter\na{x=1} 1\n",
		"unterminated value":   "# TYPE a counter\na{x=\"1} 1\n",
		"bad escape":           "# TYPE a counter\na{x=\"\\t\"} 1\n",
		"garbage value":        "# TYPE a counter\na one\n",
		"suffix on counter":    "# TYPE a counter\na_bucket{le=\"1\"} 1\n",
		"unexpected comment":   "# EOF\n",
		"malformed TYPE":       "# TYPE onlyname\n",
		"count without bucket": "# TYPE h histogram\nh_count 1\n",
	}
	for name, input := range cases {
		if _, err := ParseExposition(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
	// And one valid gauge document with special values parses fine.
	ok := "# HELP g help\n# TYPE g gauge\ng{x=\"a\"} NaN\ng{x=\"b\"} -Inf\ng 1e9\n"
	if _, err := ParseExposition(strings.NewReader(ok)); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
}

func TestTracer(t *testing.T) {
	tr := NewTracer(2, 4)
	var sunk []Span
	tr.SetSink(func(s Span) { sunk = append(sunk, s) })
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	tr.Emit(Span{Trace: "r1", ID: "a", Name: "run", Kind: KindRun, Start: base, End: base.Add(time.Second)})
	tr.Emit(Span{Trace: "r1", ID: "b", Parent: "a", Name: "task", Kind: KindTask, Start: base})
	tr.Emit(Span{Trace: ""}) // no trace: dropped

	spans := tr.SpansFor("r1")
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Duration() != time.Second {
		t.Fatalf("duration = %v, want 1s", spans[0].Duration())
	}
	if spans[1].Duration() != 0 {
		t.Fatal("open span should report zero duration")
	}
	if len(sunk) != 2 {
		t.Fatalf("sink saw %d spans, want 2", len(sunk))
	}

	// LRU trace eviction: adding a third trace evicts the oldest.
	tr.Emit(Span{Trace: "r2", ID: "c"})
	tr.Emit(Span{Trace: "r3", ID: "d"})
	if tr.Len() != 2 {
		t.Fatalf("tracer len = %d, want 2", tr.Len())
	}
	if got := tr.SpansFor("r1"); got != nil {
		t.Fatalf("r1 should be evicted, got %d spans", len(got))
	}

	// Per-trace span cap compacts to half the cap.
	for i := 0; i < 10; i++ {
		tr.Emit(Span{Trace: "r2", ID: "x"})
	}
	if n := len(tr.SpansFor("r2")); n > 4 {
		t.Fatalf("span cap not enforced: %d spans", n)
	}

	tr.Forget("r2")
	if tr.SpansFor("r2") != nil {
		t.Fatal("Forget did not drop the trace")
	}
	tr.Forget("never-existed") // no-op
	if tr.Len() != 1 {
		t.Fatalf("len after forget = %d, want 1", tr.Len())
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "x")
	g := r.Gauge("conc_gauge", "x")
	h := r.Histogram("conc_seconds", "x", nil)
	v := r.CounterVec("conc_vec_total", "x", "w")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.01)
				v.With("a").Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { // gather concurrently with writes
		for {
			select {
			case <-done:
				return
			default:
				r.Gather()
			}
		}
	}()
	wg.Wait()
	close(done)
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v, want 8000", g.Value())
	}
	fams := r.Gather()
	if got, _ := Value(fams, "conc_vec_total", Label{"w", "a"}); got != 8000 {
		t.Fatalf("vec = %v, want 8000", got)
	}
}

func TestTypeString(t *testing.T) {
	if TypeCounter.String() != "counter" || TypeGauge.String() != "gauge" || TypeHistogram.String() != "histogram" {
		t.Fatal("Type.String mismatch")
	}
	if Type(99).String() != "Type(99)" {
		t.Fatal("unknown type string")
	}
}

func TestDefaultRegistry(t *testing.T) {
	if Default() == nil || Default() != Default() {
		t.Fatal("Default registry must be a stable singleton")
	}
}
