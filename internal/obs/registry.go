// Package obs is the engine's observability substrate: a dependency-free
// metrics registry with atomic hot paths, Prometheus text-format exposition,
// a strict exposition parser (CI lints /metrics output with it), and a
// lightweight span tracer for run→step→task timing.
//
// Two registries matter in practice:
//
//   - the package Default registry holds process-wide instruments created by
//     the engine layers (DFK task counters, provider frame counters, WAL
//     append counters, expression-cache counters). These are package-level
//     vars: cheap atomic counters that aggregate across every DFK/provider
//     instance in the process, exactly like Prometheus client counters.
//   - per-component registries (e.g. one per service.Service) hold gauges
//     and collectors whose lifetime is tied to that component. Handler
//     merges any number of registries into one /metrics page.
//
// Instruments are created through the registry (Counter, Gauge, Histogram
// and their label-vector variants); creation is idempotent per name so
// package-level construction can never double-register. Collectors produce
// families at gather time for values that live elsewhere (executor stats,
// WAL stats, cache stats) — the same numbers /healthz reports, read from the
// same source at the same call, so the two surfaces cannot drift.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Type classifies a metric family for exposition.
type Type int

const (
	// TypeCounter is a monotonically increasing value.
	TypeCounter Type = iota
	// TypeGauge is a value that can go up and down.
	TypeGauge
	// TypeHistogram is a bucketed distribution with sum and count.
	TypeHistogram
)

// String renders the TYPE token used in the exposition format.
func (t Type) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// Sample is one series' current value within a family.
type Sample struct {
	Labels []Label
	Value  float64
}

// HistogramSample is one series' current distribution within a histogram
// family. Counts are cumulative per upper bound, Prometheus-style; the
// implicit +Inf bucket equals Count.
type HistogramSample struct {
	Labels []Label
	// Bounds are the bucket upper bounds, ascending, excluding +Inf.
	Bounds []float64
	// Counts[i] is the cumulative observation count for Bounds[i].
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Family is a named metric family with its current samples.
type Family struct {
	Name string
	Help string
	Type Type
	// Samples holds counter/gauge series; Hist holds histogram series.
	Samples []Sample
	Hist    []HistogramSample
}

// CollectorFunc produces metric families at gather time, for values owned by
// another component (executor stats, WAL stats). It must be fast and must not
// call back into the registry it is registered on.
type CollectorFunc func() []Family

// Registry holds instruments and collectors and gathers them into families.
type Registry struct {
	mu         sync.Mutex
	order      []string
	families   map[string]*instrumentFamily
	collectors []CollectorFunc
}

// instrumentFamily is one registered instrument family (fixed label names,
// samples keyed by label values).
type instrumentFamily struct {
	name       string
	help       string
	typ        Type
	labelNames []string
	bounds     []float64 // histogram families only

	mu     sync.Mutex
	order  []string
	series map[string]any // *Counter, *Gauge, *Histogram, or gaugeFn keyed by label signature
	labels map[string][]string
}

type gaugeFn func() float64

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*instrumentFamily{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry holding the engine layers'
// package-level instruments.
func Default() *Registry { return defaultRegistry }

// family returns the named instrument family, creating it on first use.
// Re-registration with a different type, label set, or bucket layout panics:
// that is always a programming error, caught at init time because instruments
// are package-level vars.
func (r *Registry) family(name, help string, typ Type, labelNames []string, bounds []float64) *instrumentFamily {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labelNames {
		if !validName(l) || strings.HasPrefix(l, "__") || l == "le" {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labelNames, labelNames) || !equalFloats(f.bounds, bounds) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return f
	}
	f := &instrumentFamily{
		name:       name,
		help:       help,
		typ:        typ,
		labelNames: labelNames,
		bounds:     bounds,
		series:     map[string]any{},
		labels:     map[string][]string{},
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// series returns the instrument stored for one label-value signature,
// creating it with make on first use.
func (f *instrumentFamily) at(values []string, make func() any) any {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labelNames), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := make()
	f.series[key] = s
	f.labels[key] = append([]string{}, values...)
	f.order = append(f.order, key)
	return s
}

// --- Counter ---

// Counter is a monotonically increasing value with an atomic hot path.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; negative deltas are ignored to keep the
// counter monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter returns the registry's counter with the given name, creating and
// registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, TypeCounter, nil, nil)
	return f.at(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct {
	f *instrumentFamily
}

// CounterVec returns the registry's labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, TypeCounter, labelNames, nil)}
}

// With returns the counter for one label-value combination.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.at(values, func() any { return &Counter{} }).(*Counter)
}

// --- Gauge ---

// Gauge is a settable value. It stores float64 bits atomically so Set/Add
// stay lock-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value reports the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge returns the registry's gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, TypeGauge, nil, nil)
	return f.at(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct {
	f *instrumentFamily
}

// GaugeVec returns the registry's labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, TypeGauge, labelNames, nil)}
}

// With returns the gauge for one label-value combination.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.at(values, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is read by fn at gather time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, TypeGauge, nil, nil)
	f.at(nil, func() any { return gaugeFn(fn) })
}

// --- Histogram ---

// DefBuckets are the default histogram bounds (seconds), matching the
// Prometheus client defaults.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// ExpBuckets returns n exponential bucket bounds starting at start and
// multiplying by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Histogram is a fixed-bucket distribution with atomic observation counts.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
}

// Observe records one value (seconds, bytes — whatever the family measures).
func (h *Histogram) Observe(v float64) {
	// Linear scan beats binary search at these sizes and keeps the hot path
	// branch-predictable: most observations land in the first few buckets.
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// snapshot renders the cumulative bucket view.
func (h *Histogram) snapshot(labels []Label) HistogramSample {
	out := HistogramSample{
		Labels: labels,
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.bounds)),
		Count:  uint64(h.count.Load()),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	var cum uint64
	for i := range h.counts {
		cum += uint64(h.counts[i].Load())
		out.Counts[i] = cum
	}
	return out
}

// Histogram returns the registry's histogram with the given name. bounds nil
// selects DefBuckets; bounds must be ascending.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	bounds = checkBounds(name, bounds)
	f := r.family(name, help, TypeHistogram, nil, bounds)
	return f.at(nil, func() any { return newHistogram(bounds) }).(*Histogram)
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct {
	f *instrumentFamily
}

// HistogramVec returns the registry's labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	bounds = checkBounds(name, bounds)
	return &HistogramVec{f: r.family(name, help, TypeHistogram, labelNames, bounds)}
}

// With returns the histogram for one label-value combination.
func (v *HistogramVec) With(values ...string) *Histogram {
	bounds := v.f.bounds
	return v.f.at(values, func() any { return newHistogram(bounds) }).(*Histogram)
}

func checkBounds(name string, bounds []float64) []float64 {
	if bounds == nil {
		return DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds are not ascending", name))
		}
	}
	return bounds
}

// --- Collectors and gathering ---

// Collect registers fn to contribute families at gather time.
func (r *Registry) Collect(fn CollectorFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Gather snapshots every instrument and collector into families sorted by
// name. Families with the same name (e.g. an instrument plus a collector
// contribution) are merged; the first help/type wins.
func (r *Registry) Gather() []Family {
	r.mu.Lock()
	names := append([]string{}, r.order...)
	fams := make([]*instrumentFamily, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	collectors := append([]CollectorFunc{}, r.collectors...)
	r.mu.Unlock()

	var out []Family
	for _, f := range fams {
		out = append(out, f.gather())
	}
	for _, c := range collectors {
		out = append(out, c()...)
	}
	return MergeFamilies(out)
}

func (f *instrumentFamily) gather() Family {
	f.mu.Lock()
	defer f.mu.Unlock()
	fam := Family{Name: f.name, Help: f.help, Type: f.typ}
	for _, key := range f.order {
		labels := zipLabels(f.labelNames, f.labels[key])
		switch s := f.series[key].(type) {
		case *Counter:
			fam.Samples = append(fam.Samples, Sample{Labels: labels, Value: float64(s.Value())})
		case *Gauge:
			fam.Samples = append(fam.Samples, Sample{Labels: labels, Value: s.Value()})
		case gaugeFn:
			fam.Samples = append(fam.Samples, Sample{Labels: labels, Value: s()})
		case *Histogram:
			fam.Hist = append(fam.Hist, s.snapshot(labels))
		}
	}
	return fam
}

func zipLabels(names, values []string) []Label {
	if len(names) == 0 {
		return nil
	}
	out := make([]Label, len(names))
	for i := range names {
		out[i] = Label{Name: names[i], Value: values[i]}
	}
	return out
}

// MergeFamilies combines families with the same name (keeping the first
// help/type) and sorts the result by name. Sample order within a family is
// preserved.
func MergeFamilies(fams []Family) []Family {
	byName := map[string]*Family{}
	var order []string
	for _, f := range fams {
		if ex, ok := byName[f.Name]; ok {
			ex.Samples = append(ex.Samples, f.Samples...)
			ex.Hist = append(ex.Hist, f.Hist...)
			continue
		}
		cp := f
		byName[f.Name] = &cp
		order = append(order, f.Name)
	}
	sort.Strings(order)
	out := make([]Family, 0, len(order))
	for _, n := range order {
		out = append(out, *byName[n])
	}
	return out
}

// Value finds one series' value in gathered families; labels must match
// exactly (order-insensitive). It reports false when the series is absent.
func Value(fams []Family, name string, labels ...Label) (float64, bool) {
	for _, f := range fams {
		if f.Name != name {
			continue
		}
		for _, s := range f.Samples {
			if labelsMatch(s.Labels, labels) {
				return s.Value, true
			}
		}
	}
	return 0, false
}

// Samples returns every sample of the named family in gathered families.
func Samples(fams []Family, name string) []Sample {
	for _, f := range fams {
		if f.Name == name {
			return f.Samples
		}
	}
	return nil
}

func labelsMatch(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for _, la := range a {
		found := false
		for _, lb := range b {
			if la == lb {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// validName checks the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
