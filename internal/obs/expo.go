package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders families in the Prometheus text exposition format
// (version 0.0.4): one # HELP / # TYPE header per family, then one line per
// series; histograms expand into _bucket/_sum/_count series with cumulative
// le buckets ending at +Inf.
func WritePrometheus(w io.Writer, fams []Family) error {
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Samples {
			writeSample(bw, f.Name, s.Labels, "", s.Value)
		}
		for _, h := range f.Hist {
			for i, ub := range h.Bounds {
				writeSample(bw, f.Name+"_bucket", h.Labels, formatFloat(ub), float64(h.Counts[i]))
			}
			writeSample(bw, f.Name+"_bucket", h.Labels, "+Inf", float64(h.Count))
			writeSample(bw, f.Name+"_sum", h.Labels, "", h.Sum)
			writeSample(bw, f.Name+"_count", h.Labels, "", float64(h.Count))
		}
	}
	return bw.Flush()
}

func writeSample(w io.Writer, name string, labels []Label, le string, v float64) {
	io.WriteString(w, name)
	if len(labels) > 0 || le != "" {
		io.WriteString(w, "{")
		first := true
		for _, l := range labels {
			if !first {
				io.WriteString(w, ",")
			}
			first = false
			fmt.Fprintf(w, `%s="%s"`, l.Name, escapeLabel(l.Value))
		}
		if le != "" {
			if !first {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, `le="%s"`, le)
		}
		io.WriteString(w, "}")
	}
	io.WriteString(w, " ")
	io.WriteString(w, formatFloat(v))
	io.WriteString(w, "\n")
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

// escapeLabel escapes the three characters the exposition grammar reserves
// inside quoted label values.
func escapeLabel(s string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(s)
}

// ContentType is the value served with exposition responses.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the merged families of the given registries as a
// Prometheus /metrics endpoint. Passing several registries composes the
// process-wide Default registry with component-scoped ones.
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var fams []Family
		for _, r := range regs {
			fams = append(fams, r.Gather()...)
		}
		fams = MergeFamilies(fams)
		w.Header().Set("Content-Type", ContentType)
		_ = WritePrometheus(w, fams)
	})
}
