package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParsedSeries is one scraped series: a metric name, its sorted label pairs,
// and the value.
type ParsedSeries struct {
	Name   string
	Labels []Label
	Value  float64
}

// ParsedFamily is one scraped metric family.
type ParsedFamily struct {
	Name   string
	Help   string
	Type   string
	Series []ParsedSeries
}

// ParseExposition strictly parses Prometheus text exposition (as produced by
// WritePrometheus) and validates it:
//
//   - metric and label names must match the Prometheus grammar
//   - every sample must belong to a family declared with # TYPE first, and a
//     family may be declared only once
//   - histogram samples may only use the _bucket/_sum/_count suffixes, their
//     buckets must be cumulative and end with le="+Inf" equal to _count
//   - counter values must be non-negative and finite
//   - duplicate series (same name and label set) are rejected
//
// CI lints /metrics output with it, so a malformed or duplicated series is a
// test failure, not a scrape-time surprise.
func ParseExposition(r io.Reader) (map[string]*ParsedFamily, error) {
	fams := map[string]*ParsedFamily{}
	seen := map[string]bool{} // duplicate-series detection: name + sorted labels
	var current *ParsedFamily
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 64<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line[len("# TYPE "):])
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			name, typ := fields[0], fields[1]
			if !validName(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			if _, dup := fams[name]; dup {
				return nil, fmt.Errorf("line %d: family %q declared twice", lineNo, name)
			}
			current = &ParsedFamily{Name: name, Type: typ}
			fams[name] = current
			continue
		}
		if strings.HasPrefix(line, "#") {
			return nil, fmt.Errorf("line %d: unexpected comment %q", lineNo, line)
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam, base, err := familyFor(fams, current, s.Name)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if fam.Type == "counter" && (s.Value < 0 || math.IsNaN(s.Value) || math.IsInf(s.Value, 0)) {
			return nil, fmt.Errorf("line %d: counter %s has non-monotonic value %v", lineNo, s.Name, s.Value)
		}
		key := seriesKey(s)
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
		_ = base
		fam.Series = append(fam.Series, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range fams {
		if f.Type == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// familyFor resolves which declared family a sample belongs to: its own name,
// or — for histogram sub-series — the name with _bucket/_sum/_count stripped.
func familyFor(fams map[string]*ParsedFamily, current *ParsedFamily, name string) (*ParsedFamily, string, error) {
	if f, ok := fams[name]; ok {
		if f.Type == "histogram" {
			return nil, "", fmt.Errorf("histogram family %q sampled without a _bucket/_sum/_count suffix", name)
		}
		return f, name, nil
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if f, ok := fams[base]; ok {
			if f.Type != "histogram" && f.Type != "summary" {
				return nil, "", fmt.Errorf("series %q uses suffix %q but family %q is a %s", name, suffix, base, f.Type)
			}
			return f, base, nil
		}
	}
	return nil, "", fmt.Errorf("series %q has no preceding # TYPE declaration", name)
}

// parseSample parses `name{label="value",...} value`.
func parseSample(line string) (ParsedSeries, error) {
	var s ParsedSeries
	i := 0
	for i < len(line) && isNameChar(line[i], i) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " \t")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional timestamp
		return s, fmt.Errorf("malformed sample %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(tok string) (float64, error) {
	switch tok {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(tok, 64)
}

func isNameChar(c byte, pos int) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return pos > 0
	}
	return false
}

// parseLabels parses a {name="value",...} block, returning the index just
// past the closing brace.
func parseLabels(s string) (int, []Label, error) {
	var labels []Label
	i := 1 // past '{'
	names := map[string]bool{}
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, labels, nil
		}
		start := i
		for i < len(s) && isNameChar(s[i], i-start) {
			i++
		}
		if i == start {
			return 0, nil, fmt.Errorf("malformed labels in %q", s)
		}
		name := s[start:i]
		if names[name] {
			return 0, nil, fmt.Errorf("label %q repeated in %q", name, s)
		}
		names[name] = true
		if i >= len(s) || s[i] != '=' {
			return 0, nil, fmt.Errorf("label %q missing '=' in %q", name, s)
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("label %q value is not quoted in %q", name, s)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("unterminated label value in %q", s)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, nil, fmt.Errorf("dangling escape in %q", s)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("invalid escape \\%c in %q", s[i+1], s)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels = append(labels, Label{Name: name, Value: val.String()})
	}
}

// seriesKey canonicalizes name + labels for duplicate detection.
func seriesKey(s ParsedSeries) string {
	labels := append([]Label{}, s.Labels...)
	sort.Slice(labels, func(i, j int) bool { return labels[i].Name < labels[j].Name })
	var b strings.Builder
	b.WriteString(s.Name)
	for _, l := range labels {
		b.WriteString("{")
		b.WriteString(l.Name)
		b.WriteString("=")
		b.WriteString(l.Value)
		b.WriteString("}")
	}
	return b.String()
}

// checkHistogram validates one histogram family: per label set, buckets must
// be cumulative (non-decreasing by ascending le), include le="+Inf", and the
// +Inf bucket must equal the _count series.
func checkHistogram(f *ParsedFamily) error {
	type histState struct {
		buckets []ParsedSeries
		count   *float64
	}
	groups := map[string]*histState{}
	groupOf := func(s ParsedSeries, dropLe bool) *histState {
		labels := make([]Label, 0, len(s.Labels))
		for _, l := range s.Labels {
			if dropLe && l.Name == "le" {
				continue
			}
			labels = append(labels, l)
		}
		key := seriesKey(ParsedSeries{Name: f.Name, Labels: labels})
		g := groups[key]
		if g == nil {
			g = &histState{}
			groups[key] = g
		}
		return g
	}
	for _, s := range f.Series {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			g := groupOf(s, true)
			g.buckets = append(g.buckets, s)
		case strings.HasSuffix(s.Name, "_count"):
			g := groupOf(s, false)
			v := s.Value
			g.count = &v
		}
	}
	for key, g := range groups {
		if len(g.buckets) == 0 {
			if g.count != nil {
				return fmt.Errorf("histogram %s has _count but no buckets", key)
			}
			continue
		}
		type bound struct {
			le  float64
			val float64
		}
		bounds := make([]bound, 0, len(g.buckets))
		hasInf := false
		var infVal float64
		for _, b := range g.buckets {
			var leStr string
			for _, l := range b.Labels {
				if l.Name == "le" {
					leStr = l.Value
				}
			}
			if leStr == "" {
				return fmt.Errorf("histogram %s bucket is missing its le label", key)
			}
			le, err := parseValue(leStr)
			if err != nil {
				return fmt.Errorf("histogram %s has unparsable le=%q", key, leStr)
			}
			if math.IsInf(le, 1) {
				hasInf = true
				infVal = b.Value
			}
			bounds = append(bounds, bound{le: le, val: b.Value})
		}
		if !hasInf {
			return fmt.Errorf("histogram %s is missing its le=\"+Inf\" bucket", key)
		}
		sort.Slice(bounds, func(i, j int) bool { return bounds[i].le < bounds[j].le })
		for i := 1; i < len(bounds); i++ {
			if bounds[i].val < bounds[i-1].val {
				return fmt.Errorf("histogram %s buckets are not cumulative", key)
			}
		}
		if g.count != nil && *g.count != infVal {
			return fmt.Errorf("histogram %s +Inf bucket (%v) disagrees with _count (%v)", key, infVal, *g.count)
		}
	}
	return nil
}
