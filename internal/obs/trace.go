package obs

import (
	"sync"
	"time"
)

// SpanKind classifies a span within the run→step→task hierarchy.
type SpanKind string

// The three levels of the span hierarchy: one run span per workflow run,
// one step span per workflow step, one task span per DFK task.
const (
	KindRun  SpanKind = "run"
	KindStep SpanKind = "step"
	KindTask SpanKind = "task"
)

// Span is one timed unit of work inside a trace. A trace groups every span
// for one workflow run; the span tree is Run → Step → Task. Durations for
// interesting sub-phases (queue wait, execution, remote round-trip) ride in
// Attrs rather than as child spans to keep the store small.
type Span struct {
	Trace  string            `json:"trace"`
	ID     string            `json:"id"`
	Parent string            `json:"parent,omitempty"`
	Name   string            `json:"name"`
	Kind   SpanKind          `json:"kind"`
	Start  time.Time         `json:"start"`
	End    time.Time         `json:"end,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Duration returns End-Start, or 0 for an unfinished span.
func (s Span) Duration() time.Duration {
	if s.End.IsZero() || s.End.Before(s.Start) {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Tracer is a bounded in-memory span store. Traces are evicted LRU once
// maxTraces is exceeded, and each trace holds at most maxSpans spans (older
// spans are dropped first), so a long-lived server cannot grow without bound.
// An optional sink observes every emitted span synchronously — keep it fast.
type Tracer struct {
	mu        sync.Mutex
	traces    map[string]*traceLog
	order     []string // LRU order, oldest first
	maxTraces int
	maxSpans  int
	sink      func(Span)
}

type traceLog struct {
	spans []Span
}

// NewTracer builds a tracer retaining up to maxTraces traces of up to
// maxSpans spans each. Non-positive arguments select generous defaults.
func NewTracer(maxTraces, maxSpans int) *Tracer {
	if maxTraces <= 0 {
		maxTraces = 256
	}
	if maxSpans <= 0 {
		maxSpans = 4096
	}
	return &Tracer{
		traces:    make(map[string]*traceLog),
		maxTraces: maxTraces,
		maxSpans:  maxSpans,
	}
}

// SetSink installs a callback invoked synchronously for every emitted span,
// e.g. to mirror spans into structured logs.
func (t *Tracer) SetSink(fn func(Span)) {
	t.mu.Lock()
	t.sink = fn
	t.mu.Unlock()
}

// Emit records a finished (or still-open) span under its trace.
func (t *Tracer) Emit(s Span) {
	if s.Trace == "" {
		return
	}
	t.mu.Lock()
	tl := t.traces[s.Trace]
	if tl == nil {
		tl = &traceLog{}
		t.traces[s.Trace] = tl
		t.order = append(t.order, s.Trace)
		t.evictLocked()
	}
	tl.spans = append(tl.spans, s)
	if len(tl.spans) > t.maxSpans {
		// Drop the oldest spans in one copy; keeps amortized cost low.
		keep := t.maxSpans / 2
		tl.spans = append(tl.spans[:0], tl.spans[len(tl.spans)-keep:]...)
	}
	sink := t.sink
	t.mu.Unlock()
	if sink != nil {
		sink(s)
	}
}

// evictLocked drops the least recently created traces beyond maxTraces.
func (t *Tracer) evictLocked() {
	for len(t.order) > t.maxTraces {
		victim := t.order[0]
		t.order = t.order[1:]
		delete(t.traces, victim)
	}
}

// SpansFor returns a copy of the spans recorded for the given trace, in
// emission order.
func (t *Tracer) SpansFor(trace string) []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	tl := t.traces[trace]
	if tl == nil {
		return nil
	}
	out := make([]Span, len(tl.spans))
	copy(out, tl.spans)
	return out
}

// Forget drops all spans for a trace, e.g. when the run is evicted from the
// run store.
func (t *Tracer) Forget(trace string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.traces[trace]; !ok {
		return
	}
	delete(t.traces, trace)
	for i, id := range t.order {
		if id == trace {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
}

// Len reports how many traces are currently retained.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}
