// Package toilsim reproduces the execution architecture of toil-cwl-runner
// configured with a batch system (the paper runs it against Slurm):
//
//   - every workflow step becomes one batch job: an sbatch submission, a
//     scheduler wait, and job launch overhead precede the actual command;
//   - Toil tracks every job in a job store on shared disk, adding
//     bookkeeping writes per state transition;
//   - parallelism comes from the batch system, so Toil does scale across
//     nodes — at the cost of per-step scheduler latency, the behaviour
//     behind Toil's position in Fig. 1.
//
// Functional mode keeps the job-store bookkeeping (real files) but defaults
// all latencies to zero; the calibrated discrete-event model lives in
// internal/bench.
package toilsim

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/cwl"
	"repro/internal/runner"
	"repro/internal/yamlx"
)

// Runner is a functional Toil-architecture CWL runner.
type Runner struct {
	// WorkRoot hosts job directories.
	WorkRoot string
	// JobStoreDir holds per-job bookkeeping files (a temp dir when empty).
	JobStoreDir string
	// Parallelism models the batch system's usable slot count.
	Parallelism int
	// SubmitDelay models the sbatch round trip per job. Zero for tests.
	SubmitDelay time.Duration
	// SchedulerDelay models queue wait before a job starts. Zero for tests.
	SchedulerDelay time.Duration

	jobSeq atomic.Int64
}

// JobsSubmitted reports how many batch jobs were created.
func (r *Runner) JobsSubmitted() int64 { return r.jobSeq.Load() }

// RunDocument executes a CWL document with the given inputs.
func (r *Runner) RunDocument(doc cwl.Document, inputs *yamlx.Map) (*yamlx.Map, error) {
	if r.JobStoreDir == "" {
		dir, err := os.MkdirTemp("", "toil-jobstore-")
		if err != nil {
			return nil, err
		}
		r.JobStoreDir = dir
	}
	if err := os.MkdirAll(r.JobStoreDir, 0o755); err != nil {
		return nil, err
	}
	switch d := doc.(type) {
	case *cwl.CommandLineTool:
		sub := r.submitter()
		ch := make(chan result, 1)
		sub.SubmitTool(d, inputs, nil, func(out *yamlx.Map, err error) {
			ch <- result{out, err}
		})
		res := <-ch
		return res.out, res.err
	case *cwl.Workflow:
		eng := &runner.WorkflowEngine{Submitter: r.submitter()}
		return eng.Execute(d, inputs)
	default:
		return nil, fmt.Errorf("toil runner cannot execute class %s", doc.Class())
	}
}

type result struct {
	out *yamlx.Map
	err error
}

func (r *Runner) submitter() *batchSubmitter {
	par := r.Parallelism
	if par <= 0 {
		par = 1
	}
	return &batchSubmitter{
		runner: &runner.ToolRunner{WorkRoot: r.WorkRoot},
		slots:  make(chan struct{}, par),
		parent: r,
	}
}

// batchSubmitter models one batch job per tool step with job-store
// bookkeeping around each state transition.
type batchSubmitter struct {
	runner *runner.ToolRunner
	slots  chan struct{}
	parent *Runner
}

// SubmitTool implements runner.Submitter.
func (s *batchSubmitter) SubmitTool(tool *cwl.CommandLineTool, inputs *yamlx.Map, extraReqs *cwl.Requirements, done func(*yamlx.Map, error)) {
	go func() {
		id := s.parent.jobSeq.Add(1)
		entry := filepath.Join(s.parent.JobStoreDir, fmt.Sprintf("job-%06d", id))
		// sbatch round trip.
		if s.parent.SubmitDelay > 0 {
			time.Sleep(s.parent.SubmitDelay)
		}
		if err := os.WriteFile(entry+".pending", []byte(toolID(tool)+"\n"), 0o644); err != nil {
			done(nil, fmt.Errorf("job store: %w", err))
			return
		}
		// Wait for a batch slot (queue), then launch latency.
		s.slots <- struct{}{}
		defer func() { <-s.slots }()
		if s.parent.SchedulerDelay > 0 {
			time.Sleep(s.parent.SchedulerDelay)
		}
		if err := os.Rename(entry+".pending", entry+".running"); err != nil {
			done(nil, fmt.Errorf("job store: %w", err))
			return
		}
		res, err := s.runner.RunTool(tool, inputs, runner.RunOpts{ExtraReqs: extraReqs})
		final := ".done"
		if err != nil {
			final = ".failed"
		}
		if rerr := os.Rename(entry+".running", entry+final); rerr != nil && err == nil {
			err = fmt.Errorf("job store: %w", rerr)
		}
		if err != nil {
			done(nil, err)
			return
		}
		done(res.Outputs, nil)
	}()
}

func toolID(tool *cwl.CommandLineTool) string {
	if tool.ID != "" {
		return tool.ID
	}
	if len(tool.BaseCommand) > 0 {
		return tool.BaseCommand[0]
	}
	return "tool"
}
