package toilsim

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cwl"
	"repro/internal/yamlx"
)

const scatterWF = `
cwlVersion: v1.2
class: Workflow
requirements:
  - class: ScatterFeatureRequirement
inputs:
  words: string[]
outputs:
  all:
    type: File[]
    outputSource: say/out
steps:
  say:
    run:
      class: CommandLineTool
      baseCommand: echo
      stdout: said.txt
      inputs:
        w: {type: string, inputBinding: {position: 1}}
      outputs:
        out: stdout
    in:
      w: words
    scatter: w
    out: [out]
`

func parse(t *testing.T, src string) cwl.Document {
	t.Helper()
	doc, err := cwl.ParseBytes([]byte(src), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestRunWorkflowAsBatchJobs(t *testing.T) {
	store := t.TempDir()
	r := &Runner{Parallelism: 3, WorkRoot: t.TempDir(), JobStoreDir: store}
	out, err := r.RunDocument(parse(t, scatterWF), yamlx.MapOf("words", []any{"x", "y", "z"}))
	if err != nil {
		t.Fatal(err)
	}
	files := out.Value("all").([]any)
	if len(files) != 3 {
		t.Fatalf("files = %d", len(files))
	}
	if r.JobsSubmitted() != 3 {
		t.Errorf("jobs = %d", r.JobsSubmitted())
	}
	// Every job must have reached the done state in the job store.
	done, err := filepath.Glob(filepath.Join(store, "job-*.done"))
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 3 {
		t.Errorf("done entries = %d", len(done))
	}
}

func TestJobStoreRecordsFailure(t *testing.T) {
	store := t.TempDir()
	wf := parse(t, `
cwlVersion: v1.2
class: Workflow
inputs: {}
outputs: {}
steps:
  boom:
    run:
      class: CommandLineTool
      baseCommand: [sh, -c, "exit 1"]
      inputs: {}
      outputs: {}
    in: {}
    out: []
`)
	r := &Runner{Parallelism: 1, WorkRoot: t.TempDir(), JobStoreDir: store}
	if _, err := r.RunDocument(wf, yamlx.NewMap()); err == nil {
		t.Fatal("expected failure")
	}
	failed, _ := filepath.Glob(filepath.Join(store, "job-*.failed"))
	if len(failed) != 1 {
		t.Errorf("failed entries = %d", len(failed))
	}
}

func TestSingleToolJob(t *testing.T) {
	tool := parse(t, `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
stdout: o.txt
inputs:
  m: {type: string, inputBinding: {position: 1}}
outputs:
  out: stdout
`)
	r := &Runner{Parallelism: 1, WorkRoot: t.TempDir(), JobStoreDir: t.TempDir()}
	out, err := r.RunDocument(tool, yamlx.MapOf("m", "batch"))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out.Value("out").(*yamlx.Map).GetString("path"))
	if strings.TrimSpace(string(data)) != "batch" {
		t.Errorf("out = %q", data)
	}
}

func TestSubmitDelayAccumulates(t *testing.T) {
	r := &Runner{
		Parallelism: 8,
		WorkRoot:    t.TempDir(),
		JobStoreDir: t.TempDir(),
		SubmitDelay: 15 * time.Millisecond,
	}
	start := time.Now()
	_, err := r.RunDocument(parse(t, scatterWF), yamlx.MapOf("words", []any{"a", "b", "c"}))
	if err != nil {
		t.Fatal(err)
	}
	// Scatter jobs submit concurrently, but each pays the sbatch round trip.
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("elapsed = %v", elapsed)
	}
}

func TestParallelismBound(t *testing.T) {
	// With one slot and a scheduler delay per job, jobs serialize.
	r := &Runner{
		Parallelism:    1,
		WorkRoot:       t.TempDir(),
		JobStoreDir:    t.TempDir(),
		SchedulerDelay: 10 * time.Millisecond,
	}
	start := time.Now()
	_, err := r.RunDocument(parse(t, scatterWF), yamlx.MapOf("words", []any{"a", "b", "c"}))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("elapsed = %v, want >= 30ms", elapsed)
	}
}
