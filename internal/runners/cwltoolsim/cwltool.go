// Package cwltoolsim reproduces the execution architecture of cwltool, the
// CWL reference runner, over this repository's shared CWL semantics. The
// model follows how cwltool --parallel behaves in the paper's evaluation:
//
//   - a single coordinator process walks the workflow and dispatches ready
//     steps serially (one dispatch at a time);
//   - each step runs as a freshly spawned subprocess with non-trivial
//     per-step setup cost (Python startup, staging, fork/exec);
//   - parallelism is bounded by one node's cores — cwltool does not scale
//     across nodes;
//   - JavaScript expressions are evaluated by spawning a Node.js subprocess,
//     the behaviour behind Fig. 2's superlinear curve.
//
// Functionally (wall-clock mode) the delays default to zero so tests run
// fast; the benchmark harness uses the calibrated cost model in
// internal/bench instead.
package cwltoolsim

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cwl"
	"repro/internal/runner"
	"repro/internal/yamlx"
)

// Runner is a functional cwltool-architecture CWL runner.
type Runner struct {
	// Parallelism bounds concurrently running steps (cwltool --parallel);
	// cwltool without --parallel is sequential (set 1).
	Parallelism int
	// WorkRoot hosts job directories.
	WorkRoot string
	// StepSetupDelay models per-step subprocess setup cost. Zero for tests.
	StepSetupDelay time.Duration
	// DispatchDelay models the coordinator's serial dispatch cost per step.
	DispatchDelay time.Duration

	dispatchMu sync.Mutex // cwltool dispatches from one loop
	stepsRun   atomic.Int64
}

// StepsRun reports how many tool steps have been dispatched.
func (r *Runner) StepsRun() int64 { return r.stepsRun.Load() }

// RunDocument executes a CWL document with the given inputs.
func (r *Runner) RunDocument(doc cwl.Document, inputs *yamlx.Map) (*yamlx.Map, error) {
	switch d := doc.(type) {
	case *cwl.CommandLineTool:
		res, err := r.toolRunner().RunTool(d, inputs, runner.RunOpts{})
		if err != nil {
			return nil, err
		}
		return res.Outputs, nil
	case *cwl.Workflow:
		eng := &runner.WorkflowEngine{Submitter: r.submitter()}
		return eng.Execute(d, inputs)
	default:
		return nil, &cwl.ValidationError{Issues: []cwl.ValidationIssue{{
			Severity: "error", Path: "/", Msg: "cwltool runner cannot execute class " + doc.Class(),
		}}}
	}
}

func (r *Runner) toolRunner() *runner.ToolRunner {
	return &runner.ToolRunner{WorkRoot: r.WorkRoot}
}

func (r *Runner) submitter() runner.Submitter {
	par := r.Parallelism
	if par <= 0 {
		par = 1
	}
	ps := runner.NewPoolSubmitter(r.toolRunner(), par)
	ps.Hook = func(*cwl.CommandLineTool) {
		// Serial dispatch through the coordinator, then per-step setup.
		r.dispatchMu.Lock()
		if r.DispatchDelay > 0 {
			time.Sleep(r.DispatchDelay)
		}
		r.dispatchMu.Unlock()
		if r.StepSetupDelay > 0 {
			time.Sleep(r.StepSetupDelay)
		}
		r.stepsRun.Add(1)
	}
	return ps
}
