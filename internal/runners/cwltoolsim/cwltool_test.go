package cwltoolsim

import (
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/cwl"
	"repro/internal/yamlx"
)

const echoWF = `
cwlVersion: v1.2
class: Workflow
requirements:
  - class: ScatterFeatureRequirement
inputs:
  words: string[]
outputs:
  all:
    type: File[]
    outputSource: say/out
steps:
  say:
    run:
      class: CommandLineTool
      baseCommand: echo
      stdout: said.txt
      inputs:
        w: {type: string, inputBinding: {position: 1}}
      outputs:
        out: stdout
    in:
      w: words
    scatter: w
    out: [out]
`

func parse(t *testing.T, src string) cwl.Document {
	t.Helper()
	doc, err := cwl.ParseBytes([]byte(src), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestRunWorkflowParallel(t *testing.T) {
	r := &Runner{Parallelism: 4, WorkRoot: t.TempDir()}
	out, err := r.RunDocument(parse(t, echoWF), yamlx.MapOf("words", []any{"a", "b", "c", "d"}))
	if err != nil {
		t.Fatal(err)
	}
	files := out.Value("all").([]any)
	if len(files) != 4 {
		t.Fatalf("files = %d", len(files))
	}
	if r.StepsRun() != 4 {
		t.Errorf("steps = %d", r.StepsRun())
	}
	for i, f := range files {
		data, _ := os.ReadFile(f.(*yamlx.Map).GetString("path"))
		want := string(rune('a' + i))
		if strings.TrimSpace(string(data)) != want {
			t.Errorf("file %d = %q, want %q", i, data, want)
		}
	}
}

func TestRunSingleTool(t *testing.T) {
	tool := parse(t, `
cwlVersion: v1.2
class: CommandLineTool
baseCommand: echo
stdout: o.txt
inputs:
  m: {type: string, inputBinding: {position: 1}}
outputs:
  out: stdout
`)
	r := &Runner{Parallelism: 1, WorkRoot: t.TempDir()}
	out, err := r.RunDocument(tool, yamlx.MapOf("m", "single"))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out.Value("out").(*yamlx.Map).GetString("path"))
	if strings.TrimSpace(string(data)) != "single" {
		t.Errorf("out = %q", data)
	}
}

func TestSerialDispatchDelay(t *testing.T) {
	// With a dispatch delay, total time is at least steps × delay even with
	// high parallelism — cwltool's serial coordinator.
	r := &Runner{
		Parallelism:   8,
		WorkRoot:      t.TempDir(),
		DispatchDelay: 20 * time.Millisecond,
	}
	start := time.Now()
	_, err := r.RunDocument(parse(t, echoWF), yamlx.MapOf("words", []any{"a", "b", "c", "d"}))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("elapsed = %v, want >= 80ms (serial dispatch)", elapsed)
	}
}

func TestUnsupportedClass(t *testing.T) {
	et := parse(t, `
cwlVersion: v1.2
class: ExpressionTool
requirements:
  - class: InlineJavascriptRequirement
inputs: {}
outputs: {}
expression: "${ return {}; }"
`)
	r := &Runner{WorkRoot: t.TempDir()}
	if _, err := r.RunDocument(et, yamlx.NewMap()); err == nil {
		t.Fatal("expression tool at top level should be rejected")
	}
}
