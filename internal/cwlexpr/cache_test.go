package cwlexpr

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cwl"
	"repro/internal/yamlx"
)

// TestEngineConcurrentEval hammers one shared Engine from many goroutines
// across all three expression forms (run with -race): the program cache, the
// interpreters, and the counters must all tolerate concurrency.
func TestEngineConcurrentEval(t *testing.T) {
	e, err := NewEngine(cwl.Requirements{
		InlineJavascript: true,
		JSExpressionLib:  []string{"function dub(v) { return v * 2; }"},
		InlinePython:     true,
		PyExpressionLib:  []string{"def tri(v):\n    return v * 3\n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for g := 0; g < 24; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				n := int64(g*100 + i)
				ctx := Context{Inputs: yamlx.MapOf("n", n)}
				v, err := e.Eval("$(dub(inputs.n) + 1)", ctx)
				if err != nil {
					errs <- err
					return
				}
				if v != n*2+1 {
					errs <- fmt.Errorf("dub(%d): got %v", n, v)
					return
				}
				v, err = e.Eval("${ var acc = 0; for (var i = 0; i < 3; i++) { acc += inputs.n; } return acc; }", ctx)
				if err != nil {
					errs <- err
					return
				}
				if v != n*3 {
					errs <- fmt.Errorf("body(%d): got %v", n, v)
					return
				}
				v, err = e.Eval(`f"{tri($(inputs.n))}"`, ctx)
				if err != nil {
					errs <- err
					return
				}
				if v != fmt.Sprintf("%d", n*3) {
					errs <- fmt.Errorf("fstring(%d): got %v", n, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&e.JSEvals); got != 24*100*2 {
		t.Errorf("JSEvals = %d, want %d", got, 24*100*2)
	}
	if got := atomic.LoadInt64(&e.PyEvals); got != 24*100 {
		t.Errorf("PyEvals = %d, want %d", got, 24*100)
	}
}

// TestProgramCacheReuse verifies repeated evaluation of the same source
// compiles once (cache length stays flat) and that results stay correct.
func TestProgramCacheReuse(t *testing.T) {
	e := jsEngine(t)
	ctx := testCtx()
	for i := 0; i < 50; i++ {
		if _, err := e.Eval("$(inputs.count + 1)", ctx); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.ProgramCacheLen(); n != 2 {
		t.Errorf("cache holds %d entries after 50 identical evals, want 2 (split + program)", n)
	}
}

// TestProgramCacheEviction verifies the LRU bound: capacity 2 retains two
// programs, evicted sources still evaluate correctly (recompiled).
func TestProgramCacheEviction(t *testing.T) {
	e := jsEngine(t)
	e.SetProgramCacheCap(2)
	ctx := testCtx()
	exprs := []string{"$(inputs.count + 1)", "$(inputs.count + 2)", "$(inputs.count + 3)"}
	for _, src := range exprs {
		if _, err := e.Eval(src, ctx); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.ProgramCacheLen(); n != 2 {
		t.Errorf("cache holds %d entries, want cap 2", n)
	}
	// The first expression was evicted; it must still evaluate.
	v, err := e.Eval(exprs[0], ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(4) {
		t.Errorf("evicted re-eval = %v, want 4", v)
	}
}

// TestProgramCacheCachesErrors verifies a bad expression fails identically
// from the cache (one parse, repeated failures).
func TestProgramCacheCachesErrors(t *testing.T) {
	e := jsEngine(t)
	ctx := testCtx()
	for i := 0; i < 3; i++ {
		if _, err := e.Eval("$(inputs.count +)", ctx); err == nil {
			t.Fatal("bad expression evaluated without error")
		}
	}
	if n := e.ProgramCacheLen(); n != 2 {
		t.Errorf("cache holds %d entries, want 2 (interpolation split + cached error)", n)
	}
}

// TestSharedEnginePool verifies identity: equal requirement sets share one
// engine (libraries load once per set), different sets get distinct engines.
func TestSharedEnginePool(t *testing.T) {
	ResetEnginePool()
	t.Cleanup(ResetEnginePool)
	reqs := cwl.Requirements{InlineJavascript: true, JSExpressionLib: []string{"function f(v) { return v + 1; }"}}
	e1, err := SharedEngine(reqs)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := SharedEngine(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("same requirements produced distinct engines")
	}
	hits, misses, size := EnginePoolStats()
	if hits != 1 || misses != 1 || size != 1 {
		t.Errorf("pool stats = %d hits / %d misses / %d engines, want 1/1/1", hits, misses, size)
	}
	other, err := SharedEngine(cwl.Requirements{InlineJavascript: true, JSExpressionLib: []string{"function f(v) { return v + 2; }"}})
	if err != nil {
		t.Fatal(err)
	}
	if other == e1 {
		t.Fatal("different expressionLib shared an engine")
	}
	v, err := e1.Eval("$(f(inputs.count))", testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(4) {
		t.Errorf("pooled engine eval = %v, want 4", v)
	}
	v, err = other.Eval("$(f(inputs.count))", testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(5) {
		t.Errorf("second pooled engine eval = %v, want 5", v)
	}
}

// TestEngineKeyNoCollision covers the separator-injection corner: library
// lists that concatenate identically must still key differently (each
// source is length-prefixed).
func TestEngineKeyNoCollision(t *testing.T) {
	a := engineKey(cwl.Requirements{InlineJavascript: true, JSExpressionLib: []string{"var A = 1;", "var B = 2;"}})
	b := engineKey(cwl.Requirements{InlineJavascript: true, JSExpressionLib: []string{"var A = 1;var B = 2;"}})
	if a == b {
		t.Fatal("distinct library lists produced the same engine key")
	}
	// js-lib vs py-lib with identical source must differ too.
	c := engineKey(cwl.Requirements{InlineJavascript: true, JSExpressionLib: []string{"x"}})
	d := engineKey(cwl.Requirements{InlinePython: true, PyExpressionLib: []string{"x"}})
	if c == d {
		t.Fatal("js and py requirement sets produced the same engine key")
	}
	ResetEnginePool()
	t.Cleanup(ResetEnginePool)
	e1, err1 := SharedEngine(cwl.Requirements{InlineJavascript: true, JSExpressionLib: []string{"var A = 1;", "var B = 2;"}})
	e2, err2 := SharedEngine(cwl.Requirements{InlineJavascript: true, JSExpressionLib: []string{"var A = 1;var B = 2;"}})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if e1 == e2 {
		t.Fatal("colliding requirement sets shared an engine")
	}
}

// TestEnginePoolEviction verifies the pool LRU: past the cap the
// least-recently-used engine is dropped and rebuilt on next use.
func TestEnginePoolEviction(t *testing.T) {
	ResetEnginePool()
	t.Cleanup(func() { SetEnginePoolCap(DefaultEnginePoolCap); ResetEnginePool() })
	SetEnginePoolCap(2)
	mk := func(i int) cwl.Requirements {
		return cwl.Requirements{InlineJavascript: true, JSExpressionLib: []string{fmt.Sprintf("var N = %d;", i)}}
	}
	engines := make([]*Engine, 3)
	for i := range engines {
		e, err := SharedEngine(mk(i))
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	if _, _, size := EnginePoolStats(); size != 2 {
		t.Fatalf("pool size = %d, want cap 2", size)
	}
	// Engine 0 was evicted: re-requesting it is a miss that rebuilds.
	_, missesBefore, _ := EnginePoolStats()
	rebuilt, err := SharedEngine(mk(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, misses, _ := EnginePoolStats(); misses != missesBefore+1 {
		t.Errorf("re-request of evicted engine was not a miss (%d → %d)", missesBefore, misses)
	}
	if v, err := rebuilt.Eval("$(N)", testCtx()); err != nil || v != int64(0) {
		t.Fatalf("rebuilt engine eval = %v, %v", v, err)
	}
}

// TestSharedEngineCachesErrors verifies a broken expressionLib costs one
// construction: the error is pooled.
func TestSharedEngineCachesErrors(t *testing.T) {
	ResetEnginePool()
	t.Cleanup(ResetEnginePool)
	bad := cwl.Requirements{InlineJavascript: true, JSExpressionLib: []string{"function ("}}
	if _, err := SharedEngine(bad); err == nil {
		t.Fatal("broken lib accepted")
	}
	if _, err := SharedEngine(bad); err == nil {
		t.Fatal("broken lib accepted on second lookup")
	}
	hits, misses, _ := EnginePoolStats()
	if misses != 1 || hits != 1 {
		t.Errorf("error entry not pooled: %d hits / %d misses, want 1/1", hits, misses)
	}
}

// TestSharedEnginePoolConcurrent races many goroutines resolving the same
// and different requirement sets (run with -race).
func TestSharedEnginePoolConcurrent(t *testing.T) {
	ResetEnginePool()
	t.Cleanup(ResetEnginePool)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			reqs := cwl.Requirements{InlineJavascript: true, JSExpressionLib: []string{fmt.Sprintf("var G = %d;", g%4)}}
			for i := 0; i < 50; i++ {
				e, err := SharedEngine(reqs)
				if err != nil {
					t.Error(err)
					return
				}
				v, err := e.Eval("$(G + inputs.count)", Context{Inputs: yamlx.MapOf("count", int64(1))})
				if err != nil {
					t.Error(err)
					return
				}
				if v != int64(g%4+1) {
					t.Errorf("g=%d: got %v", g, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if _, _, size := EnginePoolStats(); size != 4 {
		t.Errorf("pool size = %d, want 4 distinct requirement sets", size)
	}
}
