package cwlexpr

import (
	"strings"
	"testing"
)

// FuzzSplitInterpolation hammers the $()-interpolation splitter: no input may
// panic it, and on success the segments must reassemble to the input (modulo
// the documented "\$(" escape). Crashers found by `go test
// -fuzz=FuzzSplitInterpolation` become seeds here.
func FuzzSplitInterpolation(f *testing.F) {
	seeds := []string{
		"",
		"plain text",
		"$(inputs.message)",
		"pre $(inputs.a) mid $(inputs.b) post",
		`\$(escaped)`,
		"$(nested(parens(deep)))",
		"$(unbalanced",
		"$",
		"$(",
		"$()",
		"$$(double)",
		`\$(`,
		"$(a)$(b)$(c)",
		"text with ) stray paren",
		"$(strings \"with)\" quoted parens)",
		"$('single ) quote')",
		"$(/* comment ) */ x)",
		"emoji 🎉 $(inputs.x) ✓",
		"$(" + strings.Repeat("(", 100) + strings.Repeat(")", 100) + ")",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		segs, err := splitInterpolation(s)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		if len(segs) == 0 {
			t.Fatalf("no segments for %q", s)
		}
		// Reassembly: literals verbatim, expressions re-wrapped. The "\$("
		// escape collapses to "$(" by design, so compare against the input
		// with escapes collapsed.
		var b strings.Builder
		for _, seg := range segs {
			if seg.isExpr {
				b.WriteString("$(")
				b.WriteString(seg.text)
				b.WriteString(")")
			} else {
				b.WriteString(seg.text)
			}
		}
		want := strings.ReplaceAll(s, `\$(`, "$(")
		if got := b.String(); got != want {
			t.Fatalf("segments do not reassemble:\ninput: %q\nwant:  %q\ngot:   %q", s, want, got)
		}
	})
}

// FuzzNeedsEval pairs the splitter fuzzer with the cheap pre-check the hot
// path uses to skip engine evaluation entirely.
func FuzzNeedsEval(f *testing.F) {
	for _, s := range []string{"", "x", "$(a)", "${body}", `\$(x)`, "$ (", "${", "f\"{x}\""} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		// Must never panic; and a string the splitter finds expressions in
		// must be flagged as needing evaluation.
		needs := NeedsEval(s)
		segs, err := splitInterpolation(s)
		if err != nil || needs {
			return
		}
		for _, seg := range segs {
			if seg.isExpr {
				t.Fatalf("NeedsEval(%q) = false but the splitter found expression %q", s, seg.text)
			}
		}
	})
}
