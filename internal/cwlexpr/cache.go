package cwlexpr

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cwl"
)

// This file holds the two caches behind the compile-once hot path, both
// instances of one bounded LRU type:
//
//   - per-Engine program caches: compiled expression programs ($(...)
//     bodies, ${...} bodies, rewritten f-strings) and splitInterpolation
//     results, keyed by source text. Compile errors are cached too, so a
//     bad expression costs one parse, not one per task.
//   - the package-level engine pool: Engines keyed by the canonical
//     identity of their expression-relevant requirements (flags +
//     expressionLib sources), so repeated RunTool / runStep / Execute calls
//     for the same requirement set share one Engine — expression libraries
//     parse and execute once per distinct requirement set, not once per
//     task.

// DefaultProgramCacheCap bounds each Engine's compiled-program cache.
const DefaultProgramCacheCap = 4096

// DefaultEnginePoolCap bounds the shared engine pool (distinct requirement
// sets retained).
const DefaultEnginePoolCap = 128

type cacheEntry struct {
	key string
	val any
	err error
}

// lruCache is a small mutex-guarded bounded LRU keyed by strings, with
// hit/miss counters. Values (and errors) are memoized via cached().
type lruCache struct {
	mu     sync.Mutex
	cap    int
	m      map[string]*list.Element
	l      *list.List // front = most recently used
	hits   int64
	misses int64
	// onHit/onMiss mirror lookups into process-wide metrics; both caches
	// built from this type feed different counter families. Called with the
	// lock held — must be a cheap atomic increment, nothing more.
	onHit  func()
	onMiss func()
}

func newProgCache(capacity int) *lruCache {
	if capacity <= 0 {
		capacity = DefaultProgramCacheCap
	}
	return &lruCache{cap: capacity, m: map[string]*list.Element{}, l: list.New()}
}

func (c *lruCache) get(key string) (any, error, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses++
		if c.onMiss != nil {
			c.onMiss()
		}
		return nil, nil, false
	}
	c.hits++
	if c.onHit != nil {
		c.onHit()
	}
	c.l.MoveToFront(el)
	ent := el.Value.(*cacheEntry)
	return ent.val, ent.err, true
}

func (c *lruCache) add(key string, val any, err error) (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		// Another goroutine raced us past the miss; keep its entry.
		c.l.MoveToFront(el)
		ent := el.Value.(*cacheEntry)
		return ent.val, ent.err
	}
	c.m[key] = c.l.PushFront(&cacheEntry{key: key, val: val, err: err})
	for c.l.Len() > c.cap {
		oldest := c.l.Back()
		c.l.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
	return val, err
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.l.Len()
}

func (c *lruCache) stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.l.Len()
}

// setCap rebounds the cache (minimum 1), evicting LRU entries past the cap.
func (c *lruCache) setCap(n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = n
	for c.l.Len() > c.cap {
		oldest := c.l.Back()
		c.l.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// reset drops all entries and counters.
func (c *lruCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = map[string]*list.Element{}
	c.l = list.New()
	c.hits, c.misses = 0, 0
}

// cached memoizes compute by key, including its error. The computation runs
// outside the lock: concurrent misses on one key may duplicate work but
// never block unrelated lookups; the first insert wins.
func (c *lruCache) cached(key string, compute func() (any, error)) (any, error) {
	if v, err, ok := c.get(key); ok {
		return v, err
	}
	v, err := compute()
	return c.add(key, v, err)
}

// Program-cache key prefixes: one byte of kind plus a NUL keeps distinct
// program kinds compiled from identical source text apart.
const (
	kindJSExpr = "e\x00"
	kindJSBody = "b\x00"
	kindPyExpr = "p\x00"
	kindSegs   = "s\x00"
)

// --- Engine pool ---

var enginePool = func() *lruCache {
	c := newProgCache(DefaultEnginePoolCap)
	c.onHit = metEnginePoolHits.Inc
	c.onMiss = metEnginePoolMisses.Inc
	return c
}()

// newProgramCache builds a per-engine compiled-program cache wired to the
// process-wide program-cache counters.
func newProgramCache(capacity int) *lruCache {
	c := newProgCache(capacity)
	c.onHit = metProgCacheHits.Inc
	c.onMiss = metProgCacheMisses.Inc
	return c
}

// engineKey canonicalizes the expression-relevant requirement fields. Two
// requirement sets with the same flags and the same expressionLib sources
// (in order) share an engine; everything else about the requirements
// (Docker, resources, env, workdir) does not affect expression evaluation
// and is deliberately excluded. The full key — not a hash of it — is the map
// key, and each library source is length-prefixed, so distinct requirement
// sets can never collide (not even via embedded separator bytes).
func engineKey(reqs cwl.Requirements) string {
	var b strings.Builder
	if reqs.InlineJavascript {
		b.WriteString("js\x01")
		for _, lib := range reqs.JSExpressionLib {
			b.WriteString(strconv.Itoa(len(lib)))
			b.WriteByte(':')
			b.WriteString(lib)
		}
	}
	if reqs.InlinePython {
		b.WriteString("py\x01")
		for _, lib := range reqs.PyExpressionLib {
			b.WriteString(strconv.Itoa(len(lib)))
			b.WriteByte(':')
			b.WriteString(lib)
		}
	}
	return b.String()
}

// SharedEngine returns a pooled Engine for the given (merged) requirements,
// building and caching one on first use. Pooled engines are shared across
// goroutines and across tool invocations: expression libraries are parsed
// and executed once per distinct requirement set. Construction errors are
// cached alongside, so a broken expressionLib costs one parse total.
//
// Callers that need an unshared engine (e.g. to read the JSEvals/PyEvals
// counters in isolation) should use NewEngine instead.
func SharedEngine(reqs cwl.Requirements) (*Engine, error) {
	v, err := enginePool.cached(engineKey(reqs), func() (any, error) {
		return NewEngine(reqs)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Engine), nil
}

// EnginePoolStats reports pool effectiveness counters and current size.
func EnginePoolStats() (hits, misses int64, size int) {
	return enginePool.stats()
}

// SetEnginePoolCap adjusts how many distinct requirement sets the pool
// retains (minimum 1), evicting least-recently-used engines past the cap.
func SetEnginePoolCap(n int) { enginePool.setCap(n) }

// ResetEnginePool drops all pooled engines and counters (tests, benchmarks).
func ResetEnginePool() { enginePool.reset() }
