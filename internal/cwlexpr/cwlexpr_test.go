package cwlexpr

import (
	"strings"
	"testing"

	"repro/internal/cwl"
	"repro/internal/yamlx"
)

func fileObj(path string) *yamlx.Map {
	m := yamlx.NewMap()
	m.Set("class", "File")
	m.Set("path", path)
	return m
}

func testCtx() Context {
	return Context{
		Inputs: yamlx.MapOf(
			"message", "hello world",
			"count", int64(3),
			"flag", true,
			"data_file", fileObj("/data/input.csv"),
			"names", []any{"a", "b", "c"},
			"with space", "spaced",
		),
		Runtime: yamlx.MapOf("cores", int64(8), "outdir", "/out"),
	}
}

func plainEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(cwl.Requirements{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func jsEngine(t *testing.T, lib ...string) *Engine {
	t.Helper()
	e, err := NewEngine(cwl.Requirements{InlineJavascript: true, JSExpressionLib: lib})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func pyEngine(t *testing.T, lib ...string) *Engine {
	t.Helper()
	e, err := NewEngine(cwl.Requirements{InlinePython: true, PyExpressionLib: lib})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestParamRefsNoEngine(t *testing.T) {
	e := plainEngine(t)
	ctx := testCtx()
	cases := []struct {
		src  string
		want any
	}{
		{"$(inputs.message)", "hello world"},
		{"$(inputs.count)", int64(3)},
		{"$(inputs.flag)", true},
		{"$(runtime.cores)", int64(8)},
		{"$(inputs.names[1])", "b"},
		{`$(inputs["with space"])`, "spaced"},
		{"$(inputs.data_file.path)", "/data/input.csv"},
		{"$(inputs.data_file.basename)", "input.csv"},
		{"$(inputs.data_file.nameroot)", "input"},
		{"$(inputs.data_file.nameext)", ".csv"},
		{"$(inputs.data_file.dirname)", "/data"},
		{"$(inputs.missing)", nil},
	}
	for _, c := range cases {
		got, err := e.Eval(c.src, ctx)
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("Eval(%q) = %#v, want %#v", c.src, got, c.want)
		}
	}
}

func TestInterpolation(t *testing.T) {
	e := plainEngine(t)
	ctx := testCtx()
	cases := []struct {
		src  string
		want string
	}{
		{"prefix-$(inputs.message)-suffix", "prefix-hello world-suffix"},
		{"n=$(inputs.count)", "n=3"},
		{"$(inputs.count)x$(runtime.cores)", "3x8"},
		{"file: $(inputs.data_file)", "file: /data/input.csv"},
		{"no expressions here", "no expressions here"},
		{`escaped \$(inputs.message)`, "escaped $(inputs.message)"},
	}
	for _, c := range cases {
		got, err := e.Eval(c.src, ctx)
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("Eval(%q) = %#v, want %q", c.src, got, c.want)
		}
	}
}

func TestComplexExprRequiresEngine(t *testing.T) {
	e := plainEngine(t)
	_, err := e.Eval("$(inputs.count + 1)", testCtx())
	if err == nil || !strings.Contains(err.Error(), "Requirement") {
		t.Fatalf("err = %v", err)
	}
	_, err = e.Eval("${ return 1; }", testCtx())
	if err == nil || !strings.Contains(err.Error(), "InlineJavascriptRequirement") {
		t.Fatalf("body err = %v", err)
	}
}

func TestJSExpressions(t *testing.T) {
	e := jsEngine(t)
	ctx := testCtx()
	cases := []struct {
		src  string
		want any
	}{
		{"$(inputs.count + 1)", int64(4)},
		{"$(inputs.message.toUpperCase())", "HELLO WORLD"},
		{"$(inputs.names.length)", int64(3)},
		{"${ return inputs.count * runtime.cores; }", int64(24)},
		{"$(inputs.flag ? 'yes' : 'no')", "yes"},
	}
	for _, c := range cases {
		got, err := e.Eval(c.src, ctx)
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("Eval(%q) = %#v, want %#v", c.src, got, c.want)
		}
	}
	if e.JSEvals == 0 {
		t.Error("JSEvals counter not incremented")
	}
}

func TestJSExpressionLib(t *testing.T) {
	e := jsEngine(t, "function tripled(x) { return x * 3; }")
	got, err := e.Eval("$(tripled(inputs.count))", testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(9) {
		t.Errorf("got %#v", got)
	}
}

func TestPaperFStringCapitalize(t *testing.T) {
	// Paper Listing 5: the argument f-string.
	e := pyEngine(t, `
def capitalize_words(message):
    return message.title()
`)
	got, err := e.Eval(`f"{capitalize_words($(inputs.message))}"`, testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if got != "Hello World" {
		t.Errorf("got %#v", got)
	}
	if e.PyEvals != 1 {
		t.Errorf("PyEvals = %d", e.PyEvals)
	}
}

func TestPaperValidateAccepts(t *testing.T) {
	// Paper Listing 6: valid file passes, invalid raises.
	lib := `
def valid_file(file, ext):
    if not file.lower().endswith(ext):
        raise Exception(f"Invalid file. Expected '{ext}'")
`
	e := pyEngine(t, lib)
	err := e.RunValidate(`f"{valid_file($(inputs.data_file), '.csv')}"`, testCtx())
	if err != nil {
		t.Fatalf("csv rejected: %v", err)
	}
	badCtx := testCtx()
	badCtx.Inputs.Set("data_file", fileObj("/data/input.txt"))
	err = e.RunValidate(`f"{valid_file($(inputs.data_file), '.csv')}"`, badCtx)
	if err == nil || !strings.Contains(err.Error(), "Expected '.csv'") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRequiresPython(t *testing.T) {
	e := plainEngine(t)
	err := e.RunValidate(`f"{check($(inputs.count))}"`, testCtx())
	if err == nil || !strings.Contains(err.Error(), "InlinePythonRequirement") {
		t.Fatalf("err = %v", err)
	}
}

func TestPythonDollarExprExtension(t *testing.T) {
	// With only InlinePythonRequirement, complex $() bodies evaluate as Python.
	e := pyEngine(t)
	got, err := e.Eval("$(inputs.count + 1)", testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(4) {
		t.Errorf("got %#v", got)
	}
}

func TestFStringFileBecomesPath(t *testing.T) {
	e := pyEngine(t)
	got, err := e.Eval(`f"{$(inputs.data_file).upper()}"`, testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if got != "/DATA/INPUT.CSV" {
		t.Errorf("got %#v", got)
	}
}

func TestValueToString(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{"s", "s"},
		{int64(42), "42"},
		{3.5, "3.5"},
		{4.0, "4"},
		{true, "true"},
		{false, "false"},
		{nil, "null"},
		{fileObj("/a/b.txt"), "/a/b.txt"},
		{[]any{int64(1), "x"}, `[1,"x"]`},
		{yamlx.MapOf("k", int64(1)), `{"k":1}`},
	}
	for _, c := range cases {
		if got := ValueToString(c.in); got != c.want {
			t.Errorf("ValueToString(%#v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNeedsEval(t *testing.T) {
	cases := map[string]bool{
		"plain":               false,
		"$(inputs.x)":         true,
		"${ return 1; }":      true,
		`f"{f($(inputs.x))}"`: true,
		"a $(inputs.x) b":     true,
		"cost is $5":          false,
	}
	for s, want := range cases {
		if got := NeedsEval(s); got != want {
			t.Errorf("NeedsEval(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestUnbalancedInterpolation(t *testing.T) {
	e := plainEngine(t)
	if _, err := e.Eval("$(inputs.x", testCtx()); err == nil {
		t.Fatal("expected unbalanced error")
	}
}

func TestSelfContext(t *testing.T) {
	e := plainEngine(t)
	ctx := Context{Self: []any{fileObj("/out/result.txt")}}
	got, err := e.Eval("$(self[0].basename)", ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != "result.txt" {
		t.Errorf("got %#v", got)
	}
}

func TestEngineErrorsPropagate(t *testing.T) {
	e := jsEngine(t)
	_, err := e.Eval("$(undefined_function())", testCtx())
	if err == nil || !strings.Contains(err.Error(), "not defined") {
		t.Fatalf("err = %v", err)
	}
	pe := pyEngine(t)
	_, err = pe.Eval(`f"{missing($(inputs.count))}"`, testCtx())
	if err == nil {
		t.Fatal("expected python error")
	}
}

func TestBadExpressionLib(t *testing.T) {
	if _, err := NewEngine(cwl.Requirements{InlineJavascript: true, JSExpressionLib: []string{"function ("}}); err == nil {
		t.Error("bad JS lib accepted")
	}
	if _, err := NewEngine(cwl.Requirements{InlinePython: true, PyExpressionLib: []string{"def f(:"}}); err == nil {
		t.Error("bad Python lib accepted")
	}
}

func TestNestedParensInRef(t *testing.T) {
	e := jsEngine(t)
	got, err := e.Eval("$(Math.max(inputs.count, (1 + 2)))", testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(3) {
		t.Errorf("got %#v", got)
	}
}

func TestInterpolationWithJSON(t *testing.T) {
	e := plainEngine(t)
	got, err := e.Eval("names: $(inputs.names)", testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if got != `names: ["a","b","c"]` {
		t.Errorf("got %#v", got)
	}
}
