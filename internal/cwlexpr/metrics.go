package cwlexpr

import "repro/internal/obs"

// Package-level instruments on the Default registry, aggregated across every
// Engine in the process. Per-engine counters (Engine.JSEvals, per-cache
// sizes) remain available for isolated measurement.
var (
	metProgCacheHits = obs.Default().Counter(
		"pcwl_expr_program_cache_hits_total",
		"Compiled-program cache hits across all expression engines.")
	metProgCacheMisses = obs.Default().Counter(
		"pcwl_expr_program_cache_misses_total",
		"Compiled-program cache misses (each one compiles an expression).")
	metEnginePoolHits = obs.Default().Counter(
		"pcwl_expr_engine_pool_hits_total",
		"Shared engine pool hits (requirement set already had an engine).")
	metEnginePoolMisses = obs.Default().Counter(
		"pcwl_expr_engine_pool_misses_total",
		"Shared engine pool misses (each one builds an engine and parses its expressionLib).")
	metJSEvals = obs.Default().Counter(
		"pcwl_expr_js_evals_total",
		"JavaScript expression evaluations.")
	metPyEvals = obs.Default().Counter(
		"pcwl_expr_py_evals_total",
		"Python expression evaluations.")
)
