// Package cwlexpr dispatches CWL expressions to the right engine. It
// implements the three expression forms the integrated system supports:
//
//   - $(...) parameter references and expressions, resolved directly for
//     simple references (per the CWL spec these need no expression engine)
//     and through the JavaScript interpreter when
//     InlineJavascriptRequirement is set — or through the Python interpreter
//     when only InlinePythonRequirement is set (the paper's extension);
//   - ${...} function bodies, which are JavaScript per the CWL spec;
//   - f"..." call sites, the paper's InlinePythonRequirement form: a Python
//     f-string in which $(...) references are substituted before evaluation.
//
// One Engine wraps one process's requirements: expression libraries load
// once at construction, and every expression source compiles once into a
// bounded per-engine program cache. Engines are safe for concurrent use —
// evaluation runs on per-call interpreter state — and the package-level
// engine pool (SharedEngine) shares them across tool invocations with the
// same requirement set.
package cwlexpr

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/cwl"
	"repro/internal/jsexpr"
	"repro/internal/pyexpr"
	"repro/internal/yamlx"
)

// Context carries the variables CWL exposes to expressions.
type Context struct {
	Inputs  *yamlx.Map
	Self    any
	Runtime *yamlx.Map
}

func (c Context) vars() map[string]any {
	vars := map[string]any{}
	if c.Inputs != nil {
		vars["inputs"] = c.Inputs
	} else {
		vars["inputs"] = yamlx.NewMap()
	}
	vars["self"] = c.Self
	if c.Runtime != nil {
		vars["runtime"] = c.Runtime
	} else {
		vars["runtime"] = yamlx.NewMap()
	}
	return vars
}

// Engine evaluates CWL expressions for one process. It is goroutine-safe:
// interpreters evaluate on per-call state, the program cache is internally
// locked, and the eval counters are updated atomically.
type Engine struct {
	js *jsexpr.Interp
	py *pyexpr.Interp

	// progs caches compiled programs and interpolation splits by source text
	// (bounded LRU; compile errors are cached too). Held behind an atomic
	// pointer so SetProgramCacheCap can swap it while sharers evaluate.
	progs atomic.Pointer[lruCache]

	// Counters used by benchmarks and the simulated runners to model
	// per-evaluation overhead (e.g. cwltool spawning a node process).
	// Incremented atomically; read them only after evaluation settles.
	JSEvals int64
	PyEvals int64
}

// NewEngine builds an engine for a process's (merged) requirements, loading
// any expression libraries. Most callers want SharedEngine, which pools
// engines by requirement set so libraries load once per set, not per task.
func NewEngine(reqs cwl.Requirements) (*Engine, error) {
	e := &Engine{}
	e.progs.Store(newProgramCache(DefaultProgramCacheCap))
	if reqs.InlineJavascript {
		e.js = jsexpr.New()
		for i, lib := range reqs.JSExpressionLib {
			if err := e.js.LoadLib(lib); err != nil {
				return nil, fmt.Errorf("expressionLib[%d]: %w", i, err)
			}
		}
	}
	if reqs.InlinePython {
		e.py = pyexpr.New()
		for i, lib := range reqs.PyExpressionLib {
			if err := e.py.LoadLib(lib); err != nil {
				return nil, fmt.Errorf("python expressionLib[%d]: %w", i, err)
			}
		}
	}
	return e, nil
}

// SetProgramCacheCap rebounds the engine's compiled-program cache (clamped
// to a minimum of 1 entry). The cache restarts empty. Safe to call while
// other goroutines evaluate — note a pooled engine's cache is shared by
// every user of that requirement set.
func (e *Engine) SetProgramCacheCap(n int) {
	if n < 1 {
		n = 1
	}
	e.progs.Store(newProgramCache(n))
}

// ProgramCacheLen reports how many compiled entries the engine retains.
func (e *Engine) ProgramCacheLen() int { return e.progs.Load().len() }

// jsExprProgram returns the cached compiled form of a $(...) body.
func (e *Engine) jsExprProgram(src string) (*jsexpr.Program, error) {
	v, err := e.progs.Load().cached(kindJSExpr+src, func() (any, error) {
		return jsexpr.CompileExpr(src)
	})
	if err != nil {
		return nil, err
	}
	return v.(*jsexpr.Program), nil
}

// jsBodyProgram returns the cached compiled form of a ${...} body.
func (e *Engine) jsBodyProgram(src string) (*jsexpr.Program, error) {
	v, err := e.progs.Load().cached(kindJSBody+src, func() (any, error) {
		return jsexpr.CompileBody(src)
	})
	if err != nil {
		return nil, err
	}
	return v.(*jsexpr.Program), nil
}

// pyExprProgram returns the cached compiled form of a Python expression.
func (e *Engine) pyExprProgram(src string) (*pyexpr.Program, error) {
	v, err := e.progs.Load().cached(kindPyExpr+src, func() (any, error) {
		return pyexpr.CompileExpr(src)
	})
	if err != nil {
		return nil, err
	}
	return v.(*pyexpr.Program), nil
}

// segments returns the cached splitInterpolation result for a string. The
// returned slice is shared and must be treated as read-only.
func (e *Engine) segments(s string) ([]segment, error) {
	v, err := e.progs.Load().cached(kindSegs+s, func() (any, error) {
		segs, err := splitInterpolation(s)
		return segs, err
	})
	if err != nil {
		return nil, err
	}
	return v.([]segment), nil
}

// HasPython reports whether the engine has a Python interpreter loaded.
func (e *Engine) HasPython() bool { return e.py != nil }

// HasJavaScript reports whether the engine has a JS interpreter loaded.
func (e *Engine) HasJavaScript() bool { return e.js != nil }

// Eval evaluates a CWL "Expression | string" field value:
// a lone $(...) yields the referenced value, a lone ${...} runs a JS body,
// an f-string (with InlinePython) evaluates as Python, and any other string
// has embedded $(...) segments interpolated.
func (e *Engine) Eval(src string, ctx Context) (any, error) {
	trimmed := strings.TrimSpace(src)
	if isFString(trimmed) {
		return e.evalFString(trimmed, ctx)
	}
	if strings.HasPrefix(trimmed, "${") && strings.HasSuffix(trimmed, "}") {
		return e.evalBody(trimmed[2:len(trimmed)-1], ctx)
	}
	segs, err := e.segments(src)
	if err != nil {
		return nil, err
	}
	if len(segs) == 1 && segs[0].isExpr && strings.TrimSpace(src) == src {
		return e.evalParen(segs[0].text, ctx)
	}
	var b strings.Builder
	for _, seg := range segs {
		if !seg.isExpr {
			b.WriteString(seg.text)
			continue
		}
		v, err := e.evalParen(seg.text, ctx)
		if err != nil {
			return nil, err
		}
		b.WriteString(ValueToString(v))
	}
	return b.String(), nil
}

// EvalToString evaluates and renders the result as a command-line string.
func (e *Engine) EvalToString(src string, ctx Context) (string, error) {
	v, err := e.Eval(src, ctx)
	if err != nil {
		return "", err
	}
	return ValueToString(v), nil
}

// NeedsEval reports whether a string contains any expression syntax.
func NeedsEval(s string) bool {
	return strings.Contains(s, "$(") || strings.Contains(s, "${") || isFString(strings.TrimSpace(s))
}

func isFString(s string) bool {
	return (strings.HasPrefix(s, `f"`) && strings.HasSuffix(s, `"`)) ||
		(strings.HasPrefix(s, "f'") && strings.HasSuffix(s, "'"))
}

// evalParen evaluates the inside of a $(...) segment.
func (e *Engine) evalParen(inner string, ctx Context) (any, error) {
	if v, ok, err := evalParamRef(inner, ctx); ok {
		return v, err
	}
	if e.js != nil {
		atomic.AddInt64(&e.JSEvals, 1)
		metJSEvals.Inc()
		p, err := e.jsExprProgram(inner)
		if err != nil {
			return nil, fmt.Errorf("in expression $(%s): %w", inner, err)
		}
		v, err := e.js.RunProgram(p, ctx.vars())
		if err != nil {
			return nil, fmt.Errorf("in expression $(%s): %w", inner, err)
		}
		return v, nil
	}
	if e.py != nil {
		// Extension: with only InlinePythonRequirement, $() bodies evaluate
		// as Python expressions with inputs/self/runtime in scope (dict
		// attribute access makes inputs.count work as users expect).
		atomic.AddInt64(&e.PyEvals, 1)
		metPyEvals.Inc()
		p, err := e.pyExprProgram(inner)
		if err != nil {
			return nil, fmt.Errorf("in expression $(%s): %w", inner, err)
		}
		v, err := e.py.RunProgram(p, ctx.vars())
		if err != nil {
			return nil, fmt.Errorf("in expression $(%s): %w", inner, err)
		}
		return v, nil
	}
	return nil, fmt.Errorf("expression $(%s) requires InlineJavascriptRequirement or InlinePythonRequirement", inner)
}

// evalBody evaluates a ${...} JavaScript function body.
func (e *Engine) evalBody(body string, ctx Context) (any, error) {
	if e.js == nil {
		return nil, fmt.Errorf("${...} expressions require InlineJavascriptRequirement")
	}
	atomic.AddInt64(&e.JSEvals, 1)
	metJSEvals.Inc()
	p, err := e.jsBodyProgram(body)
	if err != nil {
		return nil, fmt.Errorf("in expression ${%s}: %w", body, err)
	}
	v, err := e.js.RunProgram(p, ctx.vars())
	if err != nil {
		return nil, fmt.Errorf("in expression ${%s}: %w", body, err)
	}
	return v, nil
}

// evalFString evaluates the paper's f-string call-site form.
func (e *Engine) evalFString(src string, ctx Context) (any, error) {
	if e.py == nil {
		return nil, fmt.Errorf("f-string expressions require InlinePythonRequirement")
	}
	atomic.AddInt64(&e.PyEvals, 1)
	metPyEvals.Inc()
	// The rewrite substitutes per-call values into vars, but the rewritten
	// source text only depends on which $(...) refs resolved — caching the
	// compiled form by that text is safe and skips the re-parse.
	rewritten, vars := rewriteRefs(src, ctx)
	p, err := e.pyExprProgram(rewritten)
	if err != nil {
		return nil, fmt.Errorf("in expression %s: %w", src, err)
	}
	v, err := e.py.RunProgram(p, vars)
	if err != nil {
		return nil, fmt.Errorf("in expression %s: %w", src, err)
	}
	return v, nil
}

// rewriteRefs replaces $(ref) occurrences inside a Python expression with
// generated variable names bound to the referenced values. File objects are
// substituted as their path string, matching the paper's listings where
// $(inputs.data_file) flows into str-typed Python parameters.
func rewriteRefs(src string, ctx Context) (string, map[string]any) {
	vars := map[string]any{}
	var b strings.Builder
	i := 0
	n := 0
	for i < len(src) {
		if src[i] == '$' && i+1 < len(src) && src[i+1] == '(' {
			end := matchParen(src, i+1)
			if end > 0 {
				inner := src[i+2 : end]
				v, ok, err := evalParamRef(inner, ctx)
				if ok && err == nil {
					name := fmt.Sprintf("__cwl_ref_%d", n)
					n++
					vars[name] = fileToPath(v)
					b.WriteString(name)
					i = end + 1
					continue
				}
			}
		}
		b.WriteByte(src[i])
		i++
	}
	return b.String(), vars
}

// fileToPath converts CWL File/Directory objects to their path for Python
// consumption; everything else passes through.
func fileToPath(v any) any {
	if m, ok := v.(*yamlx.Map); ok {
		cls := m.GetString("class")
		if cls == "File" || cls == "Directory" {
			if p := m.GetString("path"); p != "" {
				return p
			}
			if p := m.GetString("location"); p != "" {
				return p
			}
		}
	}
	return v
}

// matchParen returns the index of the ')' matching the '(' at src[open],
// respecting nesting and quotes; -1 if unbalanced.
func matchParen(src string, open int) int {
	depth := 0
	for i := open; i < len(src); i++ {
		switch src[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return i
			}
		case '\'', '"':
			q := src[i]
			i++
			for i < len(src) && src[i] != q {
				if src[i] == '\\' {
					i++
				}
				i++
			}
		}
	}
	return -1
}

type segment struct {
	text   string
	isExpr bool
}

// splitInterpolation splits a string into literal and $(...) segments.
// "$$(" escapes a literal "$(".
func splitInterpolation(s string) ([]segment, error) {
	var segs []segment
	var lit strings.Builder
	i := 0
	for i < len(s) {
		if s[i] == '\\' && i+2 < len(s) && s[i+1] == '$' && s[i+2] == '(' {
			lit.WriteString("$(")
			i += 3
			continue
		}
		if s[i] == '$' && i+1 < len(s) && s[i+1] == '(' {
			end := matchParen(s, i+1)
			if end < 0 {
				return nil, fmt.Errorf("unbalanced $( in %q", s)
			}
			if lit.Len() > 0 {
				segs = append(segs, segment{text: lit.String()})
				lit.Reset()
			}
			segs = append(segs, segment{text: s[i+2 : end], isExpr: true})
			i = end + 1
			continue
		}
		lit.WriteByte(s[i])
		i++
	}
	if lit.Len() > 0 || len(segs) == 0 {
		segs = append(segs, segment{text: lit.String()})
	}
	return segs, nil
}

// evalParamRef resolves simple parameter references like inputs.message,
// inputs.file.basename, inputs["with space"], self[0].path, runtime.cores.
// ok=false means the text is not a simple reference (needs an engine).
func evalParamRef(expr string, ctx Context) (any, bool, error) {
	expr = strings.TrimSpace(expr)
	toks, ok := tokenizeRef(expr)
	if !ok {
		return nil, false, nil
	}
	var cur any
	switch toks[0] {
	case "inputs":
		cur = ctx.Inputs
		if cur == (*yamlx.Map)(nil) {
			cur = yamlx.NewMap()
		}
	case "self":
		cur = ctx.Self
	case "runtime":
		cur = ctx.Runtime
		if cur == (*yamlx.Map)(nil) {
			cur = yamlx.NewMap()
		}
	default:
		return nil, false, nil
	}
	for _, t := range toks[1:] {
		switch c := cur.(type) {
		case *yamlx.Map:
			v, has := c.Get(t)
			if !has {
				// Derived File attributes.
				if dv, ok := derivedFileAttr(c, t); ok {
					cur = dv
					continue
				}
				cur = nil
				continue
			}
			cur = v
		case []any:
			if t == "length" {
				cur = int64(len(c))
				continue
			}
			idx, err := strconv.Atoi(t)
			if err != nil {
				return nil, true, fmt.Errorf("cannot index array with %q in $(%s)", t, expr)
			}
			if idx < 0 || idx >= len(c) {
				return nil, true, fmt.Errorf("index %d out of range in $(%s)", idx, expr)
			}
			cur = c[idx]
		case nil:
			return nil, true, fmt.Errorf("cannot access %q of null in $(%s)", t, expr)
		default:
			return nil, true, fmt.Errorf("cannot access %q of %T in $(%s)", t, cur, expr)
		}
	}
	return cur, true, nil
}

// derivedFileAttr computes basename/nameroot/nameext/dirname for File objects
// that carry only a path.
func derivedFileAttr(m *yamlx.Map, attr string) (any, bool) {
	cls := m.GetString("class")
	if cls != "File" && cls != "Directory" {
		return nil, false
	}
	path := m.GetString("path")
	if path == "" {
		path = m.GetString("location")
	}
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	switch attr {
	case "basename":
		return base, true
	case "dirname":
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			return path[:i], true
		}
		return "", true
	case "nameroot":
		if i := strings.LastIndexByte(base, '.'); i > 0 {
			return base[:i], true
		}
		return base, true
	case "nameext":
		if i := strings.LastIndexByte(base, '.'); i > 0 {
			return base[i:], true
		}
		return "", true
	}
	return nil, false
}

// tokenizeRef splits "inputs.file.basename" / `inputs["x"]` / "self[0]" into
// access tokens. ok=false when the text is more than a simple reference.
func tokenizeRef(s string) ([]string, bool) {
	var toks []string
	i := 0
	readIdent := func() (string, bool) {
		start := i
		for i < len(s) && (isAlnum(s[i]) || s[i] == '_') {
			i++
		}
		if i == start {
			return "", false
		}
		return s[start:i], true
	}
	id, ok := readIdent()
	if !ok {
		return nil, false
	}
	toks = append(toks, id)
	for i < len(s) {
		switch s[i] {
		case '.':
			i++
			id, ok := readIdent()
			if !ok {
				return nil, false
			}
			toks = append(toks, id)
		case '[':
			i++
			if i >= len(s) {
				return nil, false
			}
			if s[i] == '\'' || s[i] == '"' {
				q := s[i]
				i++
				start := i
				for i < len(s) && s[i] != q {
					i++
				}
				if i >= len(s) {
					return nil, false
				}
				toks = append(toks, s[start:i])
				i++ // quote
			} else {
				start := i
				for i < len(s) && s[i] >= '0' && s[i] <= '9' {
					i++
				}
				if i == start {
					return nil, false
				}
				toks = append(toks, s[start:i])
			}
			if i >= len(s) || s[i] != ']' {
				return nil, false
			}
			i++
		default:
			return nil, false
		}
	}
	return toks, true
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// ValueToString renders a CWL value for command-line/interpolation use:
// File objects become their path, collections render as JSON.
func ValueToString(v any) string {
	switch x := v.(type) {
	case nil:
		return "null"
	case string:
		return x
	case bool:
		if x {
			return "true"
		}
		return "false"
	case int64:
		return strconv.FormatInt(x, 10)
	case int:
		return strconv.Itoa(x)
	case float64:
		if x == float64(int64(x)) {
			return strconv.FormatInt(int64(x), 10)
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	case *yamlx.Map:
		if p := fileToPath(x); p != any(x) {
			if s, ok := p.(string); ok {
				return s
			}
		}
		b, err := json.Marshal(x)
		if err != nil {
			return fmt.Sprint(v)
		}
		return string(b)
	case []any:
		b, err := json.Marshal(x)
		if err != nil {
			return fmt.Sprint(v)
		}
		return string(b)
	default:
		return fmt.Sprint(v)
	}
}

// RunValidate evaluates an input's validate: f-string (the paper's Listing 6
// extension). A Python exception is returned as the validation error.
func (e *Engine) RunValidate(validateExpr string, ctx Context) error {
	if strings.TrimSpace(validateExpr) == "" {
		return nil
	}
	if e.py == nil {
		return fmt.Errorf("validate: requires InlinePythonRequirement")
	}
	_, err := e.evalFString(strings.TrimSpace(validateExpr), ctx)
	if err != nil {
		if raised, ok := errRaised(err); ok {
			return fmt.Errorf("input validation failed: %s", raised)
		}
		return err
	}
	return nil
}

func errRaised(err error) (string, bool) {
	for e := err; e != nil; {
		if r, ok := e.(*pyexpr.Raised); ok {
			return r.Exc.String(), true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return "", false
		}
		e = u.Unwrap()
	}
	return "", false
}
