package jsexpr

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/yamlx"
)

// Undefined is the JavaScript undefined value.
type Undefined struct{}

func (Undefined) String() string { return "undefined" }

// Array is a mutable JS array (reference semantics, like the real thing).
type Array struct{ E []any }

// NewArray wraps elems in a JS array value.
func NewArray(elems ...any) *Array { return &Array{E: elems} }

// Object is a JS object with deterministic (insertion-ordered) keys. CWL File
// objects and input maps flow through unchanged.
type Object = yamlx.Map

// Closure is a user-defined function value.
type Closure struct {
	decl *funcLit
	env  *environ
}

// NativeFunc is a builtin function value. this is the receiver for method
// calls (nil otherwise).
type NativeFunc struct {
	Name string
	Fn   func(this any, args []any) (any, error)
}

// ThrownError wraps a value raised by a JS throw statement.
type ThrownError struct{ Value any }

func (t *ThrownError) Error() string {
	// Error-like objects render as "Name: message".
	if o, ok := t.Value.(*yamlx.Map); ok && o.Has("message") {
		name := o.GetString("name")
		if name == "" {
			name = "Error"
		}
		return "javascript exception: " + name + ": " + o.GetString("message")
	}
	return "javascript exception: " + jsToString(t.Value)
}

type environ struct {
	vars   map[string]any
	parent *environ
	// frozen marks an environment as sealed for writes: the shared global
	// scope after library loading. Assignments never touch a frozen
	// environment; they bind into the innermost per-evaluation scope instead,
	// which is what makes concurrent evaluation of one Program race-free.
	frozen bool
}

func newEnviron(parent *environ) *environ {
	return &environ{vars: map[string]any{}, parent: parent}
}

func (e *environ) lookup(name string) (any, bool) {
	for env := e; env != nil; env = env.parent {
		if v, ok := env.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (e *environ) assign(name string, v any) bool {
	for env := e; env != nil && !env.frozen; env = env.parent {
		if _, ok := env.vars[name]; ok {
			env.vars[name] = v
			return true
		}
	}
	return false
}

func (e *environ) define(name string, v any) { e.vars[name] = v }

// defineOutermost binds name in the outermost writable scope of e's chain —
// the stand-in for an implicit global when the true global is frozen.
func defineOutermost(e *environ, name string, v any) {
	target := e
	for env := e; env != nil && !env.frozen; env = env.parent {
		target = env
	}
	target.define(name, v)
}

// Interp is a JavaScript interpreter instance holding an expression library
// (global functions and variables). Load libraries first (LoadLib), then
// evaluate: the first evaluation seals the global scope, after which one
// Interp may evaluate compiled Programs from many goroutines concurrently.
//
// Concurrency is fully parallel when the library consists of functions and
// scalar constants (the overwhelmingly common case). A library that stores
// mutable state reachable from globals — an object or array global, or a
// closure over a non-global scope — can be mutated in place by expressions,
// so evaluation on such an Interp is transparently serialized instead.
type Interp struct {
	global   *environ
	steps    int
	maxSteps int
	sealOnce sync.Once
	// builtinVals snapshots the builtin globals installed by New, so sealing
	// can tell library-defined globals apart from the standard ones.
	builtinVals map[string]any
	// serialize (decided at seal time) forces evaluations to take evalMu.
	serialize bool
	evalMu    sync.Mutex
}

// DefaultMaxSteps bounds evaluation work per expression; generous for any
// realistic CWL expression but small enough to stop runaway loops quickly.
const DefaultMaxSteps = 5_000_000

// New creates an interpreter with the standard builtins installed.
func New() *Interp {
	ip := &Interp{maxSteps: DefaultMaxSteps}
	ip.global = newEnviron(nil)
	installBuiltins(ip.global)
	ip.builtinVals = make(map[string]any, len(ip.global.vars))
	for k, v := range ip.global.vars {
		ip.builtinVals[k] = v
	}
	return ip
}

// SetMaxSteps overrides the per-call evaluation budget.
func (ip *Interp) SetMaxSteps(n int) { ip.maxSteps = n }

// LoadLib executes expressionLib source (function declarations, consts) into
// the interpreter's global scope. All libraries must load before the first
// evaluation: evaluating seals the global scope for concurrent use.
func (ip *Interp) LoadLib(src string) error {
	if ip.global.frozen {
		return errors.New("jsexpr: LoadLib called after evaluation started (global scope is sealed)")
	}
	prog, err := parseProgram(src)
	if err != nil {
		return err
	}
	ip.steps = 0
	_, err = ip.execStmts(prog, ip.global)
	return err
}

// EvalExpr evaluates a single JavaScript expression (the inside of $(...))
// with the given variables in scope. The result is converted back to plain Go
// values (CWL document vocabulary). It is a thin compile-then-run wrapper;
// callers on a hot path should Compile once and RunProgram many times.
func (ip *Interp) EvalExpr(src string, vars map[string]any) (any, error) {
	p, err := CompileExpr(src)
	if err != nil {
		return nil, err
	}
	return ip.RunProgram(p, vars)
}

// EvalBody evaluates a ${...} function body: statements that should return a
// value. Like EvalExpr, it is a thin wrapper over CompileBody + RunProgram.
func (ip *Interp) EvalBody(src string, vars map[string]any) (any, error) {
	p, err := CompileBody(src)
	if err != nil {
		return nil, err
	}
	return ip.RunProgram(p, vars)
}

func (ip *Interp) scopeWith(vars map[string]any) *environ {
	env := newEnviron(ip.global)
	for k, v := range vars {
		env.define(k, ToJS(v))
	}
	return env
}

func (ip *Interp) tick(pos int) error {
	ip.steps++
	if ip.steps > ip.maxSteps {
		return fmt.Errorf("javascript evaluation exceeded %d steps (offset %d): possible infinite loop", ip.maxSteps, pos)
	}
	return nil
}

// control-flow signals returned by statement execution.
type ctrl struct {
	kind  ctrlKind
	value any
}

type ctrlKind int

const (
	ctrlReturn ctrlKind = iota + 1
	ctrlBreak
	ctrlContinue
)

// execStmts runs statements; a non-nil *ctrl reports return/break/continue
// propagation.
func (ip *Interp) execStmts(stmts []Node, env *environ) (*ctrl, error) {
	for _, s := range stmts {
		c, err := ip.exec(s, env)
		if err != nil || c != nil {
			return c, err
		}
	}
	return nil, nil
}

func (ip *Interp) exec(s Node, env *environ) (*ctrl, error) {
	if err := ip.tick(s.nodePos()); err != nil {
		return nil, err
	}
	switch st := s.(type) {
	case *varDecl:
		for i, name := range st.Names {
			var v any = Undefined{}
			if st.Inits[i] != nil {
				var err error
				v, err = ip.eval(st.Inits[i], env)
				if err != nil {
					return nil, err
				}
			}
			env.define(name, v)
		}
		return nil, nil
	case *exprStmt:
		if fn, ok := st.X.(*funcLit); ok && fn.Name != "" {
			env.define(fn.Name, &Closure{decl: fn, env: env})
			return nil, nil
		}
		_, err := ip.eval(st.X, env)
		return nil, err
	case *returnStmt:
		var v any = Undefined{}
		if st.X != nil {
			var err error
			v, err = ip.eval(st.X, env)
			if err != nil {
				return nil, err
			}
		}
		return &ctrl{kind: ctrlReturn, value: v}, nil
	case *ifStmt:
		t, err := ip.eval(st.Test, env)
		if err != nil {
			return nil, err
		}
		if truthy(t) {
			return ip.execStmts(st.Then, newEnviron(env))
		}
		if st.Else != nil {
			return ip.execStmts(st.Else, newEnviron(env))
		}
		return nil, nil
	case *whileStmt:
		for {
			if err := ip.tick(st.Pos); err != nil {
				return nil, err
			}
			t, err := ip.eval(st.Test, env)
			if err != nil {
				return nil, err
			}
			if !truthy(t) {
				return nil, nil
			}
			c, err := ip.execStmts(st.Body, newEnviron(env))
			if err != nil {
				return nil, err
			}
			if c != nil {
				switch c.kind {
				case ctrlBreak:
					return nil, nil
				case ctrlContinue:
					continue
				default:
					return c, nil
				}
			}
		}
	case *forStmt:
		loopEnv := newEnviron(env)
		if st.Init != nil {
			if c, err := ip.exec(st.Init, loopEnv); err != nil || c != nil {
				return c, err
			}
		}
		for {
			if err := ip.tick(st.Pos); err != nil {
				return nil, err
			}
			if st.Test != nil {
				t, err := ip.eval(st.Test, loopEnv)
				if err != nil {
					return nil, err
				}
				if !truthy(t) {
					return nil, nil
				}
			}
			c, err := ip.execStmts(st.Body, newEnviron(loopEnv))
			if err != nil {
				return nil, err
			}
			if c != nil {
				switch c.kind {
				case ctrlBreak:
					return nil, nil
				case ctrlContinue:
				default:
					return c, nil
				}
			}
			if st.Post != nil {
				if _, err := ip.eval(st.Post, loopEnv); err != nil {
					return nil, err
				}
			}
		}
	case *forInOf:
		obj, err := ip.eval(st.Obj, env)
		if err != nil {
			return nil, err
		}
		var items []any
		switch o := obj.(type) {
		case *Array:
			if st.Of {
				items = append(items, o.E...)
			} else {
				for i := range o.E {
					items = append(items, float64(i))
				}
			}
		case *Object:
			if st.Of {
				return nil, fmt.Errorf("for-of over a plain object (offset %d)", st.Pos)
			}
			for _, k := range o.Keys() {
				items = append(items, k)
			}
		case string:
			if st.Of {
				for _, r := range o {
					items = append(items, string(r))
				}
			} else {
				for i := range []rune(o) {
					items = append(items, float64(i))
				}
			}
		default:
			return nil, fmt.Errorf("cannot iterate %s (offset %d)", typeName(obj), st.Pos)
		}
		for _, it := range items {
			if err := ip.tick(st.Pos); err != nil {
				return nil, err
			}
			iterEnv := newEnviron(env)
			iterEnv.define(st.VarName, it)
			c, err := ip.execStmts(st.Body, iterEnv)
			if err != nil {
				return nil, err
			}
			if c != nil {
				switch c.kind {
				case ctrlBreak:
					return nil, nil
				case ctrlContinue:
					continue
				default:
					return c, nil
				}
			}
		}
		return nil, nil
	case *breakStmt:
		return &ctrl{kind: ctrlBreak}, nil
	case *continueStmt:
		return &ctrl{kind: ctrlContinue}, nil
	case *throwStmt:
		v, err := ip.eval(st.X, env)
		if err != nil {
			return nil, err
		}
		return nil, &ThrownError{Value: FromJS(v)}
	case *blockStmt:
		return ip.execStmts(st.Stmts, newEnviron(env))
	default:
		return nil, fmt.Errorf("unsupported statement %T", s)
	}
}

func (ip *Interp) eval(n Node, env *environ) (any, error) {
	if err := ip.tick(n.nodePos()); err != nil {
		return nil, err
	}
	switch e := n.(type) {
	case *numLit:
		return e.Val, nil
	case *strLit:
		return e.Val, nil
	case *boolLit:
		return e.Val, nil
	case *nullLit:
		return nil, nil
	case *undefLit:
		return Undefined{}, nil
	case *ident:
		if v, ok := env.lookup(e.Name); ok {
			return v, nil
		}
		return nil, fmt.Errorf("%s is not defined (offset %d)", e.Name, e.Pos)
	case *arrayLit:
		arr := &Array{}
		for _, el := range e.Elems {
			v, err := ip.eval(el, env)
			if err != nil {
				return nil, err
			}
			arr.E = append(arr.E, v)
		}
		return arr, nil
	case *objectLit:
		o := yamlx.NewMap()
		for i, k := range e.Keys {
			v, err := ip.eval(e.Vals[i], env)
			if err != nil {
				return nil, err
			}
			o.Set(k, v)
		}
		return o, nil
	case *funcLit:
		return &Closure{decl: e, env: env}, nil
	case *member:
		obj, err := ip.eval(e.Obj, env)
		if err != nil {
			return nil, err
		}
		return ip.getProp(obj, e.Name, e.Pos)
	case *index:
		obj, err := ip.eval(e.Obj, env)
		if err != nil {
			return nil, err
		}
		key, err := ip.eval(e.Key, env)
		if err != nil {
			return nil, err
		}
		return ip.getIndex(obj, key, e.Pos)
	case *call:
		return ip.evalCall(e, env)
	case *newExpr:
		// Supported constructors: Error(msg), Array(), Object().
		if id, ok := e.Callee.(*ident); ok {
			switch id.Name {
			case "Error", "TypeError", "RangeError":
				msg := ""
				if len(e.Args) > 0 {
					v, err := ip.eval(e.Args[0], env)
					if err != nil {
						return nil, err
					}
					msg = jsToString(v)
				}
				o := yamlx.NewMap()
				o.Set("name", id.Name)
				o.Set("message", msg)
				return o, nil
			case "Array":
				return &Array{}, nil
			case "Object":
				return yamlx.NewMap(), nil
			}
		}
		return nil, fmt.Errorf("unsupported constructor (offset %d)", e.Pos)
	case *unary:
		return ip.evalUnary(e, env)
	case *binary:
		l, err := ip.eval(e.L, env)
		if err != nil {
			return nil, err
		}
		r, err := ip.eval(e.R, env)
		if err != nil {
			return nil, err
		}
		return applyBinary(e.Op, l, r, e.Pos)
	case *logical:
		l, err := ip.eval(e.L, env)
		if err != nil {
			return nil, err
		}
		if e.Op == "&&" {
			if !truthy(l) {
				return l, nil
			}
			return ip.eval(e.R, env)
		}
		if truthy(l) {
			return l, nil
		}
		return ip.eval(e.R, env)
	case *cond:
		t, err := ip.eval(e.Test, env)
		if err != nil {
			return nil, err
		}
		if truthy(t) {
			return ip.eval(e.Then, env)
		}
		return ip.eval(e.Else, env)
	case *assign:
		return ip.evalAssign(e, env)
	default:
		return nil, fmt.Errorf("unsupported expression %T", n)
	}
}

func (ip *Interp) evalUnary(e *unary, env *environ) (any, error) {
	if e.Op == "++" || e.Op == "--" {
		old, err := ip.eval(e.X, env)
		if err != nil {
			return nil, err
		}
		n, err := toNumber(old)
		if err != nil {
			return nil, err
		}
		var nv float64
		if e.Op == "++" {
			nv = n + 1
		} else {
			nv = n - 1
		}
		if err := ip.setTarget(e.X, nv, env); err != nil {
			return nil, err
		}
		if e.Postfix {
			return n, nil
		}
		return nv, nil
	}
	x, err := ip.eval(e.X, env)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case "!":
		return !truthy(x), nil
	case "-":
		n, err := toNumber(x)
		if err != nil {
			return nil, err
		}
		return -n, nil
	case "+":
		n, err := toNumber(x)
		if err != nil {
			return nil, err
		}
		return n, nil
	case "typeof":
		return typeName(x), nil
	}
	return nil, fmt.Errorf("unsupported unary operator %q", e.Op)
}

func (ip *Interp) evalAssign(e *assign, env *environ) (any, error) {
	val, err := ip.eval(e.Val, env)
	if err != nil {
		return nil, err
	}
	if e.Op != "=" {
		old, err := ip.eval(e.Target, env)
		if err != nil {
			return nil, err
		}
		val, err = applyBinary(strings.TrimSuffix(e.Op, "="), old, val, e.Pos)
		if err != nil {
			return nil, err
		}
	}
	if err := ip.setTarget(e.Target, val, env); err != nil {
		return nil, err
	}
	return val, nil
}

func (ip *Interp) setTarget(target Node, val any, env *environ) error {
	switch t := target.(type) {
	case *ident:
		if !env.assign(t.Name, val) {
			// Implicit global, as sloppy-mode JS would. Once the true global
			// is sealed, the binding lands in the outermost per-eval scope so
			// concurrent evaluations stay isolated.
			if ip.global.frozen {
				defineOutermost(env, t.Name, val)
			} else {
				ip.global.define(t.Name, val)
			}
		}
		return nil
	case *member:
		obj, err := ip.eval(t.Obj, env)
		if err != nil {
			return err
		}
		if o, ok := obj.(*Object); ok {
			o.Set(t.Name, val)
			return nil
		}
		return fmt.Errorf("cannot set property %q on %s", t.Name, typeName(obj))
	case *index:
		obj, err := ip.eval(t.Obj, env)
		if err != nil {
			return err
		}
		key, err := ip.eval(t.Key, env)
		if err != nil {
			return err
		}
		switch o := obj.(type) {
		case *Array:
			i, err := toNumber(key)
			if err != nil {
				return err
			}
			idx := int(i)
			if idx < 0 {
				return fmt.Errorf("negative array index %d", idx)
			}
			for len(o.E) <= idx {
				o.E = append(o.E, Undefined{})
			}
			o.E[idx] = val
			return nil
		case *Object:
			o.Set(jsToString(key), val)
			return nil
		}
		return fmt.Errorf("cannot index-assign on %s", typeName(obj))
	}
	return errors.New("invalid assignment target")
}

func (ip *Interp) evalCall(e *call, env *environ) (any, error) {
	// Method call: evaluate receiver, resolve property on it.
	if m, ok := e.Callee.(*member); ok {
		recv, err := ip.eval(m.Obj, env)
		if err != nil {
			return nil, err
		}
		fn, err := ip.getProp(recv, m.Name, m.Pos)
		if err != nil {
			return nil, err
		}
		args, err := ip.evalArgs(e.Args, env)
		if err != nil {
			return nil, err
		}
		return ip.callValue(fn, recv, args, e.Pos)
	}
	fn, err := ip.eval(e.Callee, env)
	if err != nil {
		return nil, err
	}
	args, err := ip.evalArgs(e.Args, env)
	if err != nil {
		return nil, err
	}
	return ip.callValue(fn, nil, args, e.Pos)
}

func (ip *Interp) evalArgs(nodes []Node, env *environ) ([]any, error) {
	args := make([]any, 0, len(nodes))
	for _, a := range nodes {
		v, err := ip.eval(a, env)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	return args, nil
}

func (ip *Interp) callValue(fn any, this any, args []any, pos int) (any, error) {
	switch f := fn.(type) {
	case *Closure:
		fnEnv := newEnviron(f.env)
		for i, p := range f.decl.Params {
			if i < len(args) {
				fnEnv.define(p, args[i])
			} else {
				fnEnv.define(p, Undefined{})
			}
		}
		fnEnv.define("arguments", &Array{E: args})
		c, err := ip.execStmts(f.decl.Body, fnEnv)
		if err != nil {
			return nil, err
		}
		if c != nil && c.kind == ctrlReturn {
			return c.value, nil
		}
		return Undefined{}, nil
	case *NativeFunc:
		return f.Fn(this, args)
	case *boundMethod:
		return f.fn(f.this, args)
	}
	return nil, fmt.Errorf("%s is not a function (offset %d)", typeName(fn), pos)
}

// boundMethod couples a native method with its receiver when the property is
// read before being called.
type boundMethod struct {
	name string
	this any
	fn   func(this any, args []any) (any, error)
}

func typeName(v any) string {
	switch v.(type) {
	case nil:
		return "object" // typeof null === "object"
	case Undefined:
		return "undefined"
	case bool:
		return "boolean"
	case float64:
		return "number"
	case string:
		return "string"
	case *Array, *Object:
		return "object"
	case *Closure, *NativeFunc, *boundMethod:
		return "function"
	}
	return fmt.Sprintf("%T", v)
}

func truthy(v any) bool {
	switch x := v.(type) {
	case nil, Undefined:
		return false
	case bool:
		return x
	case float64:
		return x != 0 && !math.IsNaN(x)
	case string:
		return x != ""
	default:
		return true
	}
}

func toNumber(v any) (float64, error) {
	switch x := v.(type) {
	case float64:
		return x, nil
	case bool:
		if x {
			return 1, nil
		}
		return 0, nil
	case nil:
		return 0, nil
	case Undefined:
		return math.NaN(), nil
	case string:
		s := strings.TrimSpace(x)
		if s == "" {
			return 0, nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return math.NaN(), nil
		}
		return f, nil
	}
	return 0, fmt.Errorf("cannot convert %s to number", typeName(v))
}

// jsToString renders a value the way JavaScript string conversion would.
func jsToString(v any) string {
	switch x := v.(type) {
	case nil:
		return "null"
	case Undefined:
		return "undefined"
	case bool:
		if x {
			return "true"
		}
		return "false"
	case float64:
		return formatJSNumber(x)
	case string:
		return x
	case *Array:
		parts := make([]string, len(x.E))
		for i, e := range x.E {
			if e == nil || (e == any(Undefined{})) {
				parts[i] = ""
			} else {
				parts[i] = jsToString(e)
			}
		}
		return strings.Join(parts, ",")
	case *Object:
		return "[object Object]"
	case *Closure, *NativeFunc, *boundMethod:
		return "function"
	}
	return fmt.Sprint(v)
}

func formatJSNumber(f float64) string {
	if math.IsNaN(f) {
		return "NaN"
	}
	if math.IsInf(f, 1) {
		return "Infinity"
	}
	if math.IsInf(f, -1) {
		return "-Infinity"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e21 {
		return strconv.FormatFloat(f, 'f', -1, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func applyBinary(op string, l, r any, pos int) (any, error) {
	switch op {
	case "+":
		ls, lIsStr := l.(string)
		rs, rIsStr := r.(string)
		if lIsStr || rIsStr {
			if !lIsStr {
				ls = jsToString(l)
			}
			if !rIsStr {
				rs = jsToString(r)
			}
			return ls + rs, nil
		}
		if la, ok := l.(*Array); ok {
			return jsToString(la) + jsToString(r), nil
		}
		if ra, ok := r.(*Array); ok {
			return jsToString(l) + jsToString(ra), nil
		}
		ln, err := toNumber(l)
		if err != nil {
			return nil, err
		}
		rn, err := toNumber(r)
		if err != nil {
			return nil, err
		}
		return ln + rn, nil
	case "-", "*", "/", "%", "**":
		ln, err := toNumber(l)
		if err != nil {
			return nil, err
		}
		rn, err := toNumber(r)
		if err != nil {
			return nil, err
		}
		switch op {
		case "-":
			return ln - rn, nil
		case "*":
			return ln * rn, nil
		case "/":
			return ln / rn, nil
		case "%":
			return math.Mod(ln, rn), nil
		case "**":
			return math.Pow(ln, rn), nil
		}
	case "<", ">", "<=", ">=":
		if ls, ok := l.(string); ok {
			if rs, ok := r.(string); ok {
				switch op {
				case "<":
					return ls < rs, nil
				case ">":
					return ls > rs, nil
				case "<=":
					return ls <= rs, nil
				case ">=":
					return ls >= rs, nil
				}
			}
		}
		ln, err := toNumber(l)
		if err != nil {
			return nil, err
		}
		rn, err := toNumber(r)
		if err != nil {
			return nil, err
		}
		switch op {
		case "<":
			return ln < rn, nil
		case ">":
			return ln > rn, nil
		case "<=":
			return ln <= rn, nil
		case ">=":
			return ln >= rn, nil
		}
	case "==":
		return looseEq(l, r), nil
	case "!=":
		return !looseEq(l, r), nil
	case "===":
		return strictEq(l, r), nil
	case "!==":
		return !strictEq(l, r), nil
	case "in":
		key := jsToString(l)
		switch o := r.(type) {
		case *Object:
			return o.Has(key), nil
		case *Array:
			n, err := toNumber(l)
			if err != nil {
				return nil, err
			}
			return int(n) >= 0 && int(n) < len(o.E), nil
		}
		return nil, fmt.Errorf("'in' on non-object (offset %d)", pos)
	}
	return nil, fmt.Errorf("unsupported operator %q (offset %d)", op, pos)
}

func strictEq(l, r any) bool {
	switch lv := l.(type) {
	case nil:
		_, rIsNil := r.(Undefined)
		return r == nil && !rIsNil
	case Undefined:
		_, ok := r.(Undefined)
		return ok
	case bool:
		rv, ok := r.(bool)
		return ok && lv == rv
	case float64:
		rv, ok := r.(float64)
		return ok && lv == rv
	case string:
		rv, ok := r.(string)
		return ok && lv == rv
	default:
		return l == r // reference equality for objects/arrays/functions
	}
}

func looseEq(l, r any) bool {
	if strictEq(l, r) {
		return true
	}
	lNilish := l == nil || l == any(Undefined{})
	rNilish := r == nil || r == any(Undefined{})
	if lNilish || rNilish {
		return lNilish && rNilish
	}
	// number/string/bool coercion
	ln, lerr := toNumber(l)
	rn, rerr := toNumber(r)
	if lerr == nil && rerr == nil {
		switch l.(type) {
		case float64, string, bool:
			switch r.(type) {
			case float64, string, bool:
				return ln == rn && !math.IsNaN(ln)
			}
		}
	}
	return false
}

// ToJS converts a CWL document value into the interpreter's value space.
func ToJS(v any) any {
	switch x := v.(type) {
	case nil:
		return nil
	case bool, string, float64:
		return x
	case int:
		return float64(x)
	case int64:
		return float64(x)
	case []any:
		arr := &Array{E: make([]any, len(x))}
		for i, e := range x {
			arr.E[i] = ToJS(e)
		}
		return arr
	case []string:
		arr := &Array{E: make([]any, len(x))}
		for i, e := range x {
			arr.E[i] = e
		}
		return arr
	case *yamlx.Map:
		o := yamlx.NewMap()
		x.Range(func(k string, vv any) bool {
			o.Set(k, ToJS(vv))
			return true
		})
		return o
	case map[string]any:
		o := yamlx.NewMap()
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			o.Set(k, ToJS(x[k]))
		}
		return o
	default:
		return v
	}
}

// FromJS converts an interpreter value back into the CWL document vocabulary:
// integral floats become int64, arrays become []any, undefined becomes nil.
func FromJS(v any) any {
	switch x := v.(type) {
	case Undefined:
		return nil
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1e15 && !math.Signbit(x) || (x == math.Trunc(x) && math.Abs(x) < 1e15) {
			return int64(x)
		}
		return x
	case *Array:
		out := make([]any, len(x.E))
		for i, e := range x.E {
			out[i] = FromJS(e)
		}
		return out
	case *Object:
		o := yamlx.NewMap()
		x.Range(func(k string, vv any) bool {
			o.Set(k, FromJS(vv))
			return true
		})
		return o
	default:
		return v
	}
}
