package jsexpr

import (
	"fmt"
	"sync"
	"testing"
)

// TestProgramConcurrentEval proves one compiled Program plus one Interp are
// goroutine-safe: many goroutines evaluate concurrently (run with -race),
// each with its own variables, and every result must match its inputs.
func TestProgramConcurrentEval(t *testing.T) {
	ip := New()
	if err := ip.LoadLib(`
		var BASE = 100;
		function scale(v) { return v * 2 + BASE; }`); err != nil {
		t.Fatal(err)
	}
	prog, err := CompileExpr("scale(x) + [x, x+1].map(function(i){ return i; }).length")
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 32
	const evals = 200
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < evals; i++ {
				x := g*evals + i
				v, err := ip.RunProgram(prog, map[string]any{"x": x})
				if err != nil {
					errs <- err
					return
				}
				want := int64(x*2 + 100 + 2)
				if v != want {
					errs <- fmt.Errorf("x=%d: got %v, want %d", x, v, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentBodyProgram exercises statement bodies (loops, locals,
// implicit-global assignment) under concurrency: per-call state must be
// isolated, so the accumulator never observes another goroutine's writes.
func TestConcurrentBodyProgram(t *testing.T) {
	ip := New()
	prog, err := CompileBody(`
		total = 0;
		for (var i = 0; i < n; i++) { total += i; }
		return total;`)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 10 + g
			want := int64(n * (n - 1) / 2)
			for i := 0; i < 100; i++ {
				v, err := ip.RunProgram(prog, map[string]any{"n": n})
				if err != nil {
					errs <- err
					return
				}
				if v != want {
					errs <- fmt.Errorf("n=%d: got %v, want %d", n, v, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMutableLibGlobalsSerialize covers the memoization idiom: a library
// object/array global mutated in place by expressions. Such interpreters
// serialize evaluation (detected at seal time), so concurrent use stays
// race-free (run with -race) and every mutation lands.
func TestMutableLibGlobalsSerialize(t *testing.T) {
	ip := New()
	if err := ip.LoadLib(`var hits = [];`); err != nil {
		t.Fatal(err)
	}
	prog, err := CompileBody(`hits.push(x); return hits.length;`)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, evals = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < evals; i++ {
				if _, err := ip.RunProgram(prog, map[string]any{"x": g}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	v, err := ip.EvalExpr("hits.length", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(goroutines*evals) {
		t.Errorf("hits.length = %v, want %d (lost mutations)", v, goroutines*evals)
	}
}

// TestFunctionOnlyLibsStayParallel pins the serialization heuristic: plain
// function/scalar libraries must not be serialized.
func TestFunctionOnlyLibsStayParallel(t *testing.T) {
	ip := New()
	if err := ip.LoadLib(`var K = 3; function f(v) { return v + K; }`); err != nil {
		t.Fatal(err)
	}
	ip.seal()
	if ip.serialize {
		t.Error("function-and-scalar library forced serialization")
	}
	mut := New()
	if err := mut.LoadLib(`var cache = {};`); err != nil {
		t.Fatal(err)
	}
	mut.seal()
	if !mut.serialize {
		t.Error("object-global library not serialized")
	}
}

// TestSealedGlobalIsolation verifies evaluation cannot mutate library
// globals: a rebind inside one evaluation shadows locally and later
// evaluations still see the library value.
func TestSealedGlobalIsolation(t *testing.T) {
	ip := New()
	if err := ip.LoadLib("var MODE = \"lib\";"); err != nil {
		t.Fatal(err)
	}
	v, err := ip.EvalBody(`MODE = "local"; return MODE;`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != "local" {
		t.Fatalf("in-eval read = %v, want shadowed value", v)
	}
	v, err = ip.EvalExpr("MODE", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != "lib" {
		t.Fatalf("library global = %v after foreign eval, want %q", v, "lib")
	}
}

// TestLoadLibAfterSeal verifies library loading is rejected once evaluation
// has sealed the global scope.
func TestLoadLibAfterSeal(t *testing.T) {
	ip := New()
	if _, err := ip.EvalExpr("1 + 1", nil); err != nil {
		t.Fatal(err)
	}
	if err := ip.LoadLib("function f() { return 1; }"); err == nil {
		t.Fatal("LoadLib after evaluation succeeded, want sealed-scope error")
	}
}

// TestCompiledEvalAllocs asserts the compiled-eval path does not re-parse:
// evaluating a precompiled medium-sized expression must stay far below the
// allocation count parsing it costs.
func TestCompiledEvalAllocs(t *testing.T) {
	ip := New()
	src := `a + b * 2 - (a % 7) + [a, b, a + b].map(function(i){ return i * 2; }).length`
	prog, err := CompileExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	vars := map[string]any{"a": 11, "b": 5}
	if _, err := ip.RunProgram(prog, vars); err != nil {
		t.Fatal(err)
	}
	evalAllocs := testing.AllocsPerRun(200, func() {
		if _, err := ip.RunProgram(prog, vars); err != nil {
			t.Fatal(err)
		}
	})
	uncompiledAllocs := testing.AllocsPerRun(200, func() {
		if _, err := ip.EvalExpr(src, vars); err != nil {
			t.Fatal(err)
		}
	})
	// The compiled path allocates per-eval scopes and values, but nothing
	// proportional to parsing. Guard both absolutely and relative to the
	// parse-per-call path so a reintroduced per-eval parse fails loudly.
	if evalAllocs > 120 {
		t.Errorf("compiled eval allocates %.0f per run, want <= 120", evalAllocs)
	}
	if evalAllocs > 0.8*uncompiledAllocs {
		t.Errorf("compiled eval allocates %.0f per run vs %.0f uncompiled — parsing leaked into the eval path?", evalAllocs, uncompiledAllocs)
	}
}
