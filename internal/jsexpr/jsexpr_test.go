package jsexpr

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/yamlx"
)

func evalX(t *testing.T, src string, vars map[string]any) any {
	t.Helper()
	v, err := New().EvalExpr(src, vars)
	if err != nil {
		t.Fatalf("EvalExpr(%q): %v", src, err)
	}
	return v
}

func TestLiterals(t *testing.T) {
	cases := []struct {
		src  string
		want any
	}{
		{"42", int64(42)},
		{"3.5", 3.5},
		{"0x10", int64(16)},
		{"1e3", int64(1000)},
		{`"hello"`, "hello"},
		{`'world'`, "world"},
		{`"a\nb"`, "a\nb"},
		{`"A"`, "A"},
		{"true", true},
		{"false", false},
		{"null", nil},
		{"undefined", nil}, // undefined converts to null at the boundary
	}
	for _, c := range cases {
		if got := evalX(t, c.src, nil); got != c.want {
			t.Errorf("%s = %#v, want %#v", c.src, got, c.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want any
	}{
		{"1 + 2", int64(3)},
		{"10 - 4", int64(6)},
		{"6 * 7", int64(42)},
		{"7 / 2", 3.5},
		{"7 % 3", int64(1)},
		{"2 ** 10", int64(1024)},
		{"1 + 2 * 3", int64(7)},
		{"(1 + 2) * 3", int64(9)},
		{"-5 + 3", int64(-2)},
		{"+\"3\" * 2", int64(6)},
	}
	for _, c := range cases {
		if got := evalX(t, c.src, nil); got != c.want {
			t.Errorf("%s = %#v, want %#v", c.src, got, c.want)
		}
	}
}

func TestStringConcat(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`"a" + "b"`, "ab"},
		{`"n=" + 5`, "n=5"},
		{`1 + "2"`, "12"},
		{`"x" + null`, "xnull"},
		{`"x" + undefined`, "xundefined"},
		{`"v" + 1.5`, "v1.5"},
		{`"v" + 10.0`, "v10"}, // JS prints integral floats without decimal
	}
	for _, c := range cases {
		if got := evalX(t, c.src, nil); got != c.want {
			t.Errorf("%s = %#v, want %q", c.src, got, c.want)
		}
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	cases := []struct {
		src  string
		want any
	}{
		{"1 < 2", true},
		{"2 <= 2", true},
		{"3 > 4", false},
		{`"a" < "b"`, true},
		{"1 == 1", true},
		{`1 == "1"`, true},
		{`1 === "1"`, false},
		{"null == undefined", true},
		{"null === undefined", false},
		{"1 != 2", true},
		{"1 !== 1.0", false},
		{"true && false", false},
		{"true || false", true},
		{"!true", false},
		{`"" || "fallback"`, "fallback"},
		{`"x" && "y"`, "y"},
		{"1 < 2 ? 'yes' : 'no'", "yes"},
		{"typeof 1", "number"},
		{"typeof 'a'", "string"},
		{"typeof true", "boolean"},
		{"typeof undefined", "undefined"},
		{"typeof null", "object"},
		{"typeof [1]", "object"},
	}
	for _, c := range cases {
		if got := evalX(t, c.src, nil); got != c.want {
			t.Errorf("%s = %#v, want %#v", c.src, got, c.want)
		}
	}
}

func TestVariablesFromContext(t *testing.T) {
	vars := map[string]any{
		"inputs": yamlx.MapOf(
			"message", "hello",
			"count", int64(3),
			"file", yamlx.MapOf("basename", "data.csv", "size", int64(100)),
			"list", []any{int64(1), int64(2), int64(3)},
		),
		"runtime": yamlx.MapOf("cores", int64(8)),
	}
	cases := []struct {
		src  string
		want any
	}{
		{"inputs.message", "hello"},
		{"inputs.count + 1", int64(4)},
		{"inputs.file.basename", "data.csv"},
		{"inputs.list[1]", int64(2)},
		{"inputs.list.length", int64(3)},
		{"runtime.cores * 2", int64(16)},
		{`inputs["message"]`, "hello"},
		{"inputs.missing", nil},
	}
	for _, c := range cases {
		if got := evalX(t, c.src, vars); got != c.want {
			t.Errorf("%s = %#v, want %#v", c.src, got, c.want)
		}
	}
}

func TestStringMethods(t *testing.T) {
	cases := []struct {
		src  string
		want any
	}{
		{`"hello".toUpperCase()`, "HELLO"},
		{`"HELLO".toLowerCase()`, "hello"},
		{`"  x  ".trim()`, "x"},
		{`"a,b,c".split(",").length`, int64(3)},
		{`"a,b,c".split(",")[1]`, "b"},
		{`"hello".indexOf("ll")`, int64(2)},
		{`"hello".includes("ell")`, true},
		{`"hello".startsWith("he")`, true},
		{`"hello".endsWith("lo")`, true},
		{`"data.csv".endsWith(".csv")`, true},
		{`"hello".slice(1, 3)`, "el"},
		{`"hello".slice(-3)`, "llo"},
		{`"hello".substring(3, 1)`, "el"},
		{`"hello".charAt(1)`, "e"},
		{`"hello".replace("l", "L")`, "heLlo"},
		{`"hello".replaceAll("l", "L")`, "heLLo"},
		{`"ab".repeat(3)`, "ababab"},
		{`"5".padStart(3, "0")`, "005"},
		{`"5".padEnd(3, "0")`, "500"},
		{`"hello".length`, int64(5)},
		{`"hello"[1]`, "e"},
		{`"a".concat("b", "c")`, "abc"},
		{`"hello".charCodeAt(0)`, int64(104)},
	}
	for _, c := range cases {
		if got := evalX(t, c.src, nil); got != c.want {
			t.Errorf("%s = %#v, want %#v", c.src, got, c.want)
		}
	}
}

func TestArrayMethods(t *testing.T) {
	cases := []struct {
		src  string
		want string // JSON of result
	}{
		{"[1,2,3].map(function(x){ return x * 2; })", "[2,4,6]"},
		{"[1,2,3,4].filter(function(x){ return x % 2 == 0; })", "[2,4]"},
		{"[1,2,3].reduce(function(a,b){ return a + b; }, 0)", "6"},
		{"[1,2,3].reduce(function(a,b){ return a + b; })", "6"},
		{"[3,1,2].sort()", "[1,2,3]"},
		{"[3,1,2].sort(function(a,b){ return b - a; })", "[3,2,1]"},
		{"[1,2].concat([3,4])", "[1,2,3,4]"},
		{"[1,2,3].slice(1)", "[2,3]"},
		{"[1,2,3].reverse()", "[3,2,1]"},
		{"[[1,2],[3]].flat()", "[1,2,3]"},
		{`["a","b"].join("-")`, `"a-b"`},
		{"[1,2,3].indexOf(2)", "1"},
		{"[1,2,3].includes(4)", "false"},
		{"[1,2,3].some(function(x){ return x > 2; })", "true"},
		{"[1,2,3].every(function(x){ return x > 0; })", "true"},
		{"[1,2,3].find(function(x){ return x > 1; })", "2"},
		{"Array.isArray([1])", "true"},
		{"Array.isArray(1)", "false"},
		{"[1,2,3].length", "3"},
	}
	for _, c := range cases {
		got := evalX(t, c.src, nil)
		b, err := json.Marshal(got)
		if err != nil {
			t.Fatalf("%s: marshal: %v", c.src, err)
		}
		if string(b) != c.want {
			t.Errorf("%s = %s, want %s", c.src, b, c.want)
		}
	}
}

func TestArrowFunctions(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"[1,2,3].map(x => x + 1)", "[2,3,4]"},
		{"[1,2,3].map((x, i) => x * i)", "[0,2,6]"},
		{"[1,2,3].filter(x => x > 1).map(x => x * 10)", "[20,30]"},
	}
	for _, c := range cases {
		got := evalX(t, c.src, nil)
		b, _ := json.Marshal(got)
		if string(b) != c.want {
			t.Errorf("%s = %s, want %s", c.src, b, c.want)
		}
	}
}

func TestObjectLiteralsAndMethods(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"({a: 1, b: 2})", `{"a":1,"b":2}`},
		{"Object.keys({a: 1, b: 2})", `["a","b"]`},
		{"Object.values({a: 1, b: 2})", `[1,2]`},
		{"Object.entries({a: 1})", `[["a",1]]`},
		{"({x: {y: 3}}).x.y", "3"},
		{`({"quoted key": 7})["quoted key"]`, "7"},
	}
	for _, c := range cases {
		// Wrap bare object literals in parens at the source level.
		src := c.src
		got := evalX(t, src, nil)
		b, _ := json.Marshal(got)
		if string(b) != c.want {
			t.Errorf("%s = %s, want %s", src, b, c.want)
		}
	}
}

func TestMathAndGlobals(t *testing.T) {
	cases := []struct {
		src  string
		want any
	}{
		{"Math.floor(3.7)", int64(3)},
		{"Math.ceil(3.2)", int64(4)},
		{"Math.round(3.5)", int64(4)},
		{"Math.abs(-5)", int64(5)},
		{"Math.min(3, 1, 2)", int64(1)},
		{"Math.max(3, 1, 2)", int64(3)},
		{"Math.pow(2, 8)", int64(256)},
		{"Math.sqrt(16)", int64(4)},
		{`parseInt("42")`, int64(42)},
		{`parseInt("2f", 16)`, int64(47)},
		{`parseInt("42abc")`, int64(42)},
		{`parseFloat("3.5x")`, 3.5},
		{`isNaN("abc")`, true},
		{`isNaN("12")`, false},
		{`Number("12")`, int64(12)},
		{`String(12)`, "12"},
		{`Boolean("")`, false},
	}
	for _, c := range cases {
		if got := evalX(t, c.src, nil); got != c.want {
			t.Errorf("%s = %#v, want %#v", c.src, got, c.want)
		}
	}
}

func TestJSONBuiltins(t *testing.T) {
	if got := evalX(t, `JSON.stringify({a: [1, "x"]})`, nil); got != `{"a":[1,"x"]}` {
		t.Errorf("stringify = %#v", got)
	}
	if got := evalX(t, `JSON.parse('{"k": [1, 2]}').k[1]`, nil); got != int64(2) {
		t.Errorf("parse = %#v", got)
	}
}

func TestEvalBody(t *testing.T) {
	ip := New()
	v, err := ip.EvalBody(`
		var total = 0;
		for (var i = 1; i <= 10; i++) {
			total += i;
		}
		return total;
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(55) {
		t.Errorf("sum = %#v", v)
	}
}

func TestEvalBodyWithInputs(t *testing.T) {
	ip := New()
	vars := map[string]any{
		"inputs": yamlx.MapOf("files", []any{
			yamlx.MapOf("basename", "a.txt"),
			yamlx.MapOf("basename", "b.txt"),
		}),
	}
	v, err := ip.EvalBody(`
		var names = [];
		for (var f of inputs.files) {
			names.push(f.basename);
		}
		return names.join(" ");
	`, vars)
	if err != nil {
		t.Fatal(err)
	}
	if v != "a.txt b.txt" {
		t.Errorf("v = %#v", v)
	}
}

func TestEvalBodyNoReturn(t *testing.T) {
	v, err := New().EvalBody("var x = 1;", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Errorf("v = %#v, want nil", v)
	}
}

func TestExpressionLib(t *testing.T) {
	ip := New()
	err := ip.LoadLib(`
		function double(x) { return x * 2; }
		function greet(name) { return "Hello, " + name + "!"; }
		var BASE = 100;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := ip.EvalExpr("double(21)", nil); err != nil || v != int64(42) {
		t.Errorf("double = %#v err=%v", v, err)
	}
	if v, err := ip.EvalExpr(`greet("CWL")`, nil); err != nil || v != "Hello, CWL!" {
		t.Errorf("greet = %#v err=%v", v, err)
	}
	if v, err := ip.EvalExpr("BASE + 1", nil); err != nil || v != int64(101) {
		t.Errorf("BASE = %#v err=%v", v, err)
	}
}

func TestClosures(t *testing.T) {
	ip := New()
	v, err := ip.EvalBody(`
		function makeAdder(n) {
			return function(x) { return x + n; };
		}
		var add5 = makeAdder(5);
		return add5(10);
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(15) {
		t.Errorf("v = %#v", v)
	}
}

func TestRecursion(t *testing.T) {
	ip := New()
	v, err := ip.EvalBody(`
		function fib(n) {
			if (n < 2) { return n; }
			return fib(n-1) + fib(n-2);
		}
		return fib(15);
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(610) {
		t.Errorf("fib(15) = %#v", v)
	}
}

func TestWhileBreakContinue(t *testing.T) {
	v, err := New().EvalBody(`
		var sum = 0;
		var i = 0;
		while (true) {
			i++;
			if (i > 10) { break; }
			if (i % 2 == 0) { continue; }
			sum += i;
		}
		return sum;
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(25) { // 1+3+5+7+9
		t.Errorf("sum = %#v", v)
	}
}

func TestForInOverObject(t *testing.T) {
	v, err := New().EvalBody(`
		var keys = [];
		for (var k in obj) { keys.push(k); }
		return keys.join(",");
	`, map[string]any{"obj": yamlx.MapOf("a", 1, "b", 2, "c", 3)})
	if err != nil {
		t.Fatal(err)
	}
	if v != "a,b,c" {
		t.Errorf("keys = %#v", v)
	}
}

func TestThrow(t *testing.T) {
	_, err := New().EvalBody(`throw "boom";`, nil)
	te, ok := err.(*ThrownError)
	if !ok {
		t.Fatalf("err = %v (%T)", err, err)
	}
	if te.Value != "boom" {
		t.Errorf("value = %#v", te.Value)
	}
}

func TestThrowNewError(t *testing.T) {
	_, err := New().EvalBody(`throw new Error("bad input");`, nil)
	if err == nil || !strings.Contains(err.Error(), "bad input") {
		t.Fatalf("err = %v", err)
	}
}

func TestInfiniteLoopBudget(t *testing.T) {
	ip := New()
	ip.SetMaxSteps(10_000)
	_, err := ip.EvalBody("while (true) {}", nil)
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("err = %v", err)
	}
}

func TestUndefinedVariableError(t *testing.T) {
	_, err := New().EvalExpr("nonexistent + 1", nil)
	if err == nil || !strings.Contains(err.Error(), "not defined") {
		t.Fatalf("err = %v", err)
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"1 +",
		"(1",
		"[1, 2",
		"function (",
		"{a: }",
		"'unterminated",
		"1 ~~ 2",
	}
	for _, src := range bad {
		if _, err := New().EvalExpr(src, nil); err == nil {
			t.Errorf("EvalExpr(%q) succeeded, want error", src)
		}
	}
}

func TestNullPropertyAccessError(t *testing.T) {
	_, err := New().EvalExpr("inputs.x.y", map[string]any{"inputs": yamlx.MapOf("x", nil)})
	if err == nil || !strings.Contains(err.Error(), "null") {
		t.Fatalf("err = %v", err)
	}
}

func TestAssignmentOps(t *testing.T) {
	v, err := New().EvalBody(`
		var x = 10;
		x += 5; x -= 3; x *= 2; x /= 4; x %= 4;
		return x;
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(2) { // ((10+5-3)*2/4)%4 = 6%4 = 2
		t.Errorf("x = %#v", v)
	}
}

func TestIncDec(t *testing.T) {
	v, err := New().EvalBody(`
		var i = 0;
		var a = i++;
		var b = ++i;
		var c = i--;
		return [a, b, c, i];
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(v)
	if string(b) != "[0,2,2,1]" {
		t.Errorf("got %s", b)
	}
}

func TestObjectMutation(t *testing.T) {
	v, err := New().EvalBody(`
		var o = {};
		o.a = 1;
		o["b"] = 2;
		o.a += 10;
		return o;
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(v)
	if string(b) != `{"a":11,"b":2}` {
		t.Errorf("got %s", b)
	}
}

func TestArrayIndexAssignGrows(t *testing.T) {
	v, err := New().EvalBody(`
		var a = [];
		a[2] = "x";
		return a.length;
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(3) {
		t.Errorf("len = %#v", v)
	}
}

func TestInOperator(t *testing.T) {
	if got := evalX(t, `"a" in obj`, map[string]any{"obj": yamlx.MapOf("a", 1)}); got != true {
		t.Errorf("in = %#v", got)
	}
	if got := evalX(t, `"z" in obj`, map[string]any{"obj": yamlx.MapOf("a", 1)}); got != false {
		t.Errorf("in = %#v", got)
	}
}

func TestCWLRealisticExpressions(t *testing.T) {
	// Expressions of the kind found in real CWL documents.
	vars := map[string]any{
		"inputs": yamlx.MapOf(
			"input_file", yamlx.MapOf(
				"basename", "sample.fastq.gz",
				"nameroot", "sample.fastq",
				"nameext", ".gz",
				"size", int64(123456),
			),
			"threads", int64(4),
			"memory_gb", 2.5,
		),
		"runtime": yamlx.MapOf("cores", int64(16), "ram", int64(65536)),
		"self":    []any{yamlx.MapOf("path", "/out/result.txt")},
	}
	cases := []struct {
		src  string
		want any
	}{
		{`inputs.input_file.basename.split(".")[0]`, "sample"},
		{`inputs.input_file.nameroot + ".trimmed" + inputs.input_file.nameext`, "sample.fastq.trimmed.gz"},
		{"Math.min(inputs.threads, runtime.cores)", int64(4)},
		{"Math.ceil(inputs.memory_gb * 1024)", int64(2560)},
		{"self[0].path", "/out/result.txt"},
		{`inputs.input_file.size > 1000 ? "big" : "small"`, "big"},
	}
	for _, c := range cases {
		if got := evalX(t, c.src, vars); got != c.want {
			t.Errorf("%s = %#v, want %#v", c.src, got, c.want)
		}
	}
}

func TestComments(t *testing.T) {
	v, err := New().EvalBody(`
		// line comment
		var x = 1; /* block
		comment */ var y = 2;
		return x + y;
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(3) {
		t.Errorf("v = %#v", v)
	}
}

func TestNumberFormatting(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1, "1"},
		{1.5, "1.5"},
		{-3, "-3"},
		{0, "0"},
		{1e21, "1e+21"},
	}
	for _, c := range cases {
		if got := formatJSNumber(c.in); got != c.want {
			t.Errorf("formatJSNumber(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := formatJSNumber(math.NaN()); got != "NaN" {
		t.Errorf("NaN = %q", got)
	}
}

// Property: ToJS/FromJS round-trips the document vocabulary. Integers are
// restricted to int32 range: JS numbers are float64, so |n| > 2^53 loses
// precision by design.
func TestConversionRoundTripProperty(t *testing.T) {
	f := func(n32 int32, s string, b bool) bool {
		n := int64(n32)
		in := []any{n, s, b, nil, []any{n}, map[string]any{"k": s}}
		out := FromJS(ToJS(in))
		outs, ok := out.([]any)
		if !ok || len(outs) != 6 {
			return false
		}
		if outs[0] != n || outs[1] != s || outs[2] != b || outs[3] != nil {
			return false
		}
		inner, ok := outs[4].([]any)
		if !ok || len(inner) != 1 || inner[0] != n {
			return false
		}
		m, ok := outs[5].(*yamlx.Map)
		return ok && m.Value("k") == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: arithmetic on small integers matches Go semantics.
func TestArithmeticProperty(t *testing.T) {
	ip := New()
	f := func(a, b int16) bool {
		v, err := ip.EvalExpr("a + b * 2 - a % 7", map[string]any{
			"a": int64(a), "b": int64(b),
		})
		if err != nil {
			return false
		}
		want := int64(a) + int64(b)*2 - int64(a)%7
		got, ok := v.(int64)
		return ok && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: string split+join round-trips when the separator is absent from
// the parts.
func TestSplitJoinProperty(t *testing.T) {
	ip := New()
	f := func(raw []string) bool {
		var parts []string
		for _, p := range raw {
			if !strings.Contains(p, "|") && isValidUTF8(p) && !strings.ContainsAny(p, "\"\\\x00") {
				parts = append(parts, p)
			}
		}
		if len(parts) == 0 {
			return true
		}
		s := strings.Join(parts, "|")
		v, err := ip.EvalExpr(`s.split("|").join("|")`, map[string]any{"s": s})
		if err != nil {
			return false
		}
		return v == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func isValidUTF8(s string) bool { return strings.ToValidUTF8(s, "") == s }

func TestPaperCapitalizeEquivalent(t *testing.T) {
	// The JS equivalent of the paper's Listing 5 capitalize_words function,
	// as cwltool would evaluate it with InlineJavascriptRequirement.
	ip := New()
	if err := ip.LoadLib(`
		function capitalizeWords(message) {
			return message.split(" ").map(function(w) {
				if (w.length == 0) { return w; }
				return w.charAt(0).toUpperCase() + w.slice(1).toLowerCase();
			}).join(" ");
		}
	`); err != nil {
		t.Fatal(err)
	}
	v, err := ip.EvalExpr("capitalizeWords(inputs.message)", map[string]any{
		"inputs": yamlx.MapOf("message", "hello cwl world"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != "Hello Cwl World" {
		t.Errorf("v = %#v", v)
	}
}
