// Package jsexpr implements the subset of JavaScript that CWL expressions use
// (InlineJavascriptRequirement): ES5-style expressions, function declarations
// for expressionLib, var/if/for/while/return statements, and the String,
// Array, Object, Math and JSON builtins that appear in real CWL documents.
//
// It is a tree-walking interpreter with a step budget, so a malformed
// expression cannot hang a workflow run.
package jsexpr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokKind int

const (
	tEOF tokKind = iota
	tNum
	tStr
	tIdent
	tPunct
)

type token struct {
	kind tokKind
	text string
	num  float64
	pos  int // byte offset, for error messages
}

// SyntaxError reports a parse failure with a byte offset into the source.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("javascript syntax error at offset %d: %s", e.Pos, e.Msg)
}

var jsKeywords = map[string]bool{
	"var": true, "let": true, "const": true, "function": true, "return": true,
	"if": true, "else": true, "for": true, "while": true, "do": true,
	"break": true, "continue": true, "true": true, "false": true,
	"null": true, "undefined": true, "typeof": true, "throw": true,
	"new": true, "in": true, "of": true, "instanceof": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.emit(token{kind: tEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '"' || c == '\'':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		case isIdentStart(rune(c)) || c >= utf8.RuneSelf:
			l.lexIdent()
		default:
			if err := l.lexPunct(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '/' && l.pos+1 < len(l.src) {
			switch l.src[l.pos+1] {
			case '/':
				for l.pos < len(l.src) && l.src[l.pos] != '\n' {
					l.pos++
				}
				continue
			case '*':
				end := strings.Index(l.src[l.pos+2:], "*/")
				if end < 0 {
					l.pos = len(l.src)
					return
				}
				l.pos += 2 + end + 2
				continue
			}
		}
		return
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || unicode.IsDigit(r)
}

func (l *lexer) lexNumber() error {
	start := l.pos
	if strings.HasPrefix(l.src[l.pos:], "0x") || strings.HasPrefix(l.src[l.pos:], "0X") {
		l.pos += 2
		for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
			l.pos++
		}
		n, err := strconv.ParseInt(l.src[start+2:l.pos], 16, 64)
		if err != nil {
			return &SyntaxError{Pos: start, Msg: "bad hex literal"}
		}
		l.emit(token{kind: tNum, num: float64(n), text: l.src[start:l.pos], pos: start})
		return nil
	}
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	text := l.src[start:l.pos]
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return &SyntaxError{Pos: start, Msg: "bad number literal " + text}
	}
	l.emit(token{kind: tNum, num: f, text: text, pos: start})
	return nil
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			l.emit(token{kind: tStr, text: b.String(), pos: start})
			return nil
		}
		if c == '\\' {
			l.pos++
			if l.pos >= len(l.src) {
				break
			}
			switch e := l.src[l.pos]; e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case 'b':
				b.WriteByte(8)
			case 'f':
				b.WriteByte(12)
			case 'v':
				b.WriteByte(11)
			case '0':
				b.WriteByte(0)
			case 'u':
				if l.pos+4 < len(l.src) {
					if n, err := strconv.ParseUint(l.src[l.pos+1:l.pos+5], 16, 32); err == nil {
						b.WriteRune(rune(n))
						l.pos += 4
						break
					}
				}
				return &SyntaxError{Pos: l.pos, Msg: "bad \\u escape"}
			case 'x':
				if l.pos+2 < len(l.src) {
					if n, err := strconv.ParseUint(l.src[l.pos+1:l.pos+3], 16, 16); err == nil {
						b.WriteByte(byte(n))
						l.pos += 2
						break
					}
				}
				return &SyntaxError{Pos: l.pos, Msg: "bad \\x escape"}
			default:
				b.WriteByte(e)
			}
			l.pos++
			continue
		}
		b.WriteByte(c)
		l.pos++
	}
	return &SyntaxError{Pos: start, Msg: "unterminated string literal"}
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		l.pos += size
	}
	l.emit(token{kind: tIdent, text: l.src[start:l.pos], pos: start})
}

// jsPunct lists multi-char operators longest-first.
var jsPunct = []string{
	"===", "!==", "**=", ">>>", "...",
	"==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
	"++", "--", "**", "=>", "<<", ">>",
	"+", "-", "*", "/", "%", "(", ")", "[", "]", "{", "}", ",", ";", ":",
	"?", ".", "<", ">", "=", "!", "&", "|", "^", "~",
}

func (l *lexer) lexPunct() error {
	for _, p := range jsPunct {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.emit(token{kind: tPunct, text: p, pos: l.pos})
			l.pos += len(p)
			return nil
		}
	}
	return &SyntaxError{Pos: l.pos, Msg: fmt.Sprintf("unexpected character %q", l.src[l.pos])}
}
