package jsexpr

import "fmt"

type parser struct {
	toks []token
	pos  int
}

// parseProgram parses a statement list (a function body or expressionLib
// source).
func parseProgram(src string) ([]Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Node
	for !p.at(tEOF, "") {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

// parseExpression parses a single expression (the inside of $(...)).
func parseExpression(src string) (Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if !p.at(tEOF, "") {
		return nil, p.errHere("unexpected token %q after expression", p.cur().text)
	}
	return e, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) atIdent(name string) bool {
	t := p.cur()
	return t.kind == tIdent && t.text == name
}

func (p *parser) eat(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) error {
	if p.eat(kind, text) {
		return nil
	}
	return p.errHere("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errHere(format string, args ...any) error {
	return &SyntaxError{Pos: p.cur().pos, Msg: fmt.Sprintf(format, args...)}
}

// --- Statements ---

func (p *parser) statement() (Node, error) {
	t := p.cur()
	if t.kind == tIdent {
		switch t.text {
		case "var", "let", "const":
			return p.varStatement()
		case "function":
			return p.functionDecl()
		case "return":
			p.next()
			if p.eat(tPunct, ";") || p.at(tPunct, "}") || p.at(tEOF, "") {
				return &returnStmt{base: base{t.pos}}, nil
			}
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			p.eat(tPunct, ";")
			return &returnStmt{base: base{t.pos}, X: x}, nil
		case "if":
			return p.ifStatement()
		case "while":
			return p.whileStatement()
		case "do":
			return nil, p.errHere("do-while loops are not supported in CWL expressions")
		case "for":
			return p.forStatement()
		case "break":
			p.next()
			p.eat(tPunct, ";")
			return &breakStmt{base: base{t.pos}}, nil
		case "continue":
			p.next()
			p.eat(tPunct, ";")
			return &continueStmt{base: base{t.pos}}, nil
		case "throw":
			p.next()
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			p.eat(tPunct, ";")
			return &throwStmt{base: base{t.pos}, X: x}, nil
		}
	}
	if p.at(tPunct, "{") {
		stmts, err := p.block()
		if err != nil {
			return nil, err
		}
		return &blockStmt{base: base{t.pos}, Stmts: stmts}, nil
	}
	if p.eat(tPunct, ";") {
		return &blockStmt{base: base{t.pos}}, nil
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	p.eat(tPunct, ";")
	return &exprStmt{base: base{t.pos}, X: x}, nil
}

func (p *parser) varStatement() (Node, error) {
	t := p.next() // var/let/const
	d := &varDecl{base: base{t.pos}}
	for {
		nameTok := p.cur()
		if nameTok.kind != tIdent || jsKeywords[nameTok.text] {
			return nil, p.errHere("expected variable name, found %q", nameTok.text)
		}
		p.next()
		d.Names = append(d.Names, nameTok.text)
		if p.eat(tPunct, "=") {
			init, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			d.Inits = append(d.Inits, init)
		} else {
			d.Inits = append(d.Inits, nil)
		}
		if !p.eat(tPunct, ",") {
			break
		}
	}
	p.eat(tPunct, ";")
	return d, nil
}

func (p *parser) functionDecl() (Node, error) {
	t := p.next() // function
	nameTok := p.cur()
	if nameTok.kind != tIdent || jsKeywords[nameTok.text] {
		return nil, p.errHere("expected function name")
	}
	p.next()
	fn, err := p.functionRest(t.pos, nameTok.text)
	if err != nil {
		return nil, err
	}
	return &exprStmt{base: base{t.pos}, X: fn}, nil
}

func (p *parser) functionRest(pos int, name string) (Node, error) {
	if err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	var params []string
	for !p.at(tPunct, ")") {
		t := p.cur()
		if t.kind != tIdent || jsKeywords[t.text] {
			return nil, p.errHere("expected parameter name")
		}
		p.next()
		params = append(params, t.text)
		if !p.eat(tPunct, ",") {
			break
		}
	}
	if err := p.expect(tPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &funcLit{base: base{pos}, Name: name, Params: params, Body: body}, nil
}

func (p *parser) block() ([]Node, error) {
	if err := p.expect(tPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []Node
	for !p.at(tPunct, "}") {
		if p.at(tEOF, "") {
			return nil, p.errHere("unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.next() // }
	return stmts, nil
}

// blockOrSingle parses either a braced block or a single statement.
func (p *parser) blockOrSingle() ([]Node, error) {
	if p.at(tPunct, "{") {
		return p.block()
	}
	s, err := p.statement()
	if err != nil {
		return nil, err
	}
	return []Node{s}, nil
}

func (p *parser) ifStatement() (Node, error) {
	t := p.next() // if
	if err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	test, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	var els []Node
	if p.atIdent("else") {
		p.next()
		if p.atIdent("if") {
			s, err := p.ifStatement()
			if err != nil {
				return nil, err
			}
			els = []Node{s}
		} else {
			els, err = p.blockOrSingle()
			if err != nil {
				return nil, err
			}
		}
	}
	return &ifStmt{base: base{t.pos}, Test: test, Then: then, Else: els}, nil
}

func (p *parser) whileStatement() (Node, error) {
	t := p.next() // while
	if err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	test, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	return &whileStmt{base: base{t.pos}, Test: test, Body: body}, nil
}

func (p *parser) forStatement() (Node, error) {
	t := p.next() // for
	if err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	// for (var x of expr) / for (var x in expr)
	if p.atIdent("var") || p.atIdent("let") || p.atIdent("const") {
		save := p.pos
		p.next()
		if p.cur().kind == tIdent && !jsKeywords[p.cur().text] {
			name := p.next().text
			if p.atIdent("of") || p.atIdent("in") {
				of := p.next().text == "of"
				obj, err := p.expr()
				if err != nil {
					return nil, err
				}
				if err := p.expect(tPunct, ")"); err != nil {
					return nil, err
				}
				body, err := p.blockOrSingle()
				if err != nil {
					return nil, err
				}
				return &forInOf{base: base{t.pos}, VarName: name, Of: of, Obj: obj, Body: body}, nil
			}
		}
		p.pos = save
	}
	// classic for (init; test; post)
	var init Node
	var err error
	if !p.at(tPunct, ";") {
		if p.atIdent("var") || p.atIdent("let") || p.atIdent("const") {
			init, err = p.varStatement() // consumes trailing ';' if present
		} else {
			var x Node
			x, err = p.expr()
			init = &exprStmt{X: x}
			if err == nil {
				err = p.expect(tPunct, ";")
			}
		}
		if err != nil {
			return nil, err
		}
	} else {
		p.next() // ;
	}
	var test Node
	if !p.at(tPunct, ";") {
		test, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect(tPunct, ";"); err != nil {
		return nil, err
	}
	var post Node
	if !p.at(tPunct, ")") {
		post, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect(tPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	return &forStmt{base: base{t.pos}, Init: init, Test: test, Post: post, Body: body}, nil
}

// --- Expressions (precedence climbing) ---

func (p *parser) expr() (Node, error) { return p.assignExpr() }

func (p *parser) assignExpr() (Node, error) {
	left, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "+=", "-=", "*=", "/=", "%="} {
		if p.at(tPunct, op) {
			t := p.next()
			switch left.(type) {
			case *ident, *member, *index:
			default:
				return nil, &SyntaxError{Pos: t.pos, Msg: "invalid assignment target"}
			}
			val, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			return &assign{base: base{t.pos}, Op: op, Target: left, Val: val}, nil
		}
	}
	return left, nil
}

func (p *parser) condExpr() (Node, error) {
	test, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if !p.eat(tPunct, "?") {
		return test, nil
	}
	then, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tPunct, ":"); err != nil {
		return nil, err
	}
	els, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	return &cond{base: base{test.nodePos()}, Test: test, Then: then, Else: els}, nil
}

func (p *parser) orExpr() (Node, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tPunct, "||") {
		t := p.next()
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &logical{base: base{t.pos}, Op: "||", L: left, R: right}
	}
	return left, nil
}

func (p *parser) andExpr() (Node, error) {
	left, err := p.eqExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tPunct, "&&") {
		t := p.next()
		right, err := p.eqExpr()
		if err != nil {
			return nil, err
		}
		left = &logical{base: base{t.pos}, Op: "&&", L: left, R: right}
	}
	return left, nil
}

func (p *parser) eqExpr() (Node, error) {
	left, err := p.relExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tPunct, "==") || p.at(tPunct, "!=") || p.at(tPunct, "===") || p.at(tPunct, "!==") {
		t := p.next()
		right, err := p.relExpr()
		if err != nil {
			return nil, err
		}
		left = &binary{base: base{t.pos}, Op: t.text, L: left, R: right}
	}
	return left, nil
}

func (p *parser) relExpr() (Node, error) {
	left, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tPunct, "<") || p.at(tPunct, ">") || p.at(tPunct, "<=") || p.at(tPunct, ">=") || p.atIdent("in") {
		t := p.next()
		right, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		left = &binary{base: base{t.pos}, Op: t.text, L: left, R: right}
	}
	return left, nil
}

func (p *parser) addExpr() (Node, error) {
	left, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tPunct, "+") || p.at(tPunct, "-") {
		t := p.next()
		right, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		left = &binary{base: base{t.pos}, Op: t.text, L: left, R: right}
	}
	return left, nil
}

func (p *parser) mulExpr() (Node, error) {
	left, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tPunct, "*") || p.at(tPunct, "/") || p.at(tPunct, "%") || p.at(tPunct, "**") {
		t := p.next()
		right, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		left = &binary{base: base{t.pos}, Op: t.text, L: left, R: right}
	}
	return left, nil
}

func (p *parser) unaryExpr() (Node, error) {
	t := p.cur()
	if p.at(tPunct, "!") || p.at(tPunct, "-") || p.at(tPunct, "+") || p.atIdent("typeof") {
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &unary{base: base{t.pos}, Op: t.text, X: x}, nil
	}
	if p.at(tPunct, "++") || p.at(tPunct, "--") {
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &unary{base: base{t.pos}, Op: t.text, X: x}, nil
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (Node, error) {
	x, err := p.callMemberExpr()
	if err != nil {
		return nil, err
	}
	if p.at(tPunct, "++") || p.at(tPunct, "--") {
		t := p.next()
		return &unary{base: base{t.pos}, Op: t.text, X: x, Postfix: true}, nil
	}
	return x, nil
}

func (p *parser) callMemberExpr() (Node, error) {
	var x Node
	var err error
	if p.atIdent("new") {
		t := p.next()
		callee, err := p.primary()
		if err != nil {
			return nil, err
		}
		// member chain before call parens
		for p.at(tPunct, ".") {
			p.next()
			name := p.cur()
			if name.kind != tIdent {
				return nil, p.errHere("expected property name")
			}
			p.next()
			callee = &member{base: base{name.pos}, Obj: callee, Name: name.text}
		}
		var args []Node
		if p.at(tPunct, "(") {
			args, err = p.callArgs()
			if err != nil {
				return nil, err
			}
		}
		x = &newExpr{base: base{t.pos}, Callee: callee, Args: args}
	} else {
		x, err = p.primary()
		if err != nil {
			return nil, err
		}
	}
	for {
		switch {
		case p.at(tPunct, "."):
			p.next()
			name := p.cur()
			if name.kind != tIdent {
				return nil, p.errHere("expected property name after '.'")
			}
			p.next()
			x = &member{base: base{name.pos}, Obj: x, Name: name.text}
		case p.at(tPunct, "["):
			t := p.next()
			key, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tPunct, "]"); err != nil {
				return nil, err
			}
			x = &index{base: base{t.pos}, Obj: x, Key: key}
		case p.at(tPunct, "("):
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			x = &call{base: base{x.nodePos()}, Callee: x, Args: args}
		default:
			return x, nil
		}
	}
}

func (p *parser) callArgs() ([]Node, error) {
	if err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	var args []Node
	for !p.at(tPunct, ")") {
		a, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.eat(tPunct, ",") {
			break
		}
	}
	if err := p.expect(tPunct, ")"); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *parser) primary() (Node, error) {
	t := p.cur()
	switch t.kind {
	case tNum:
		p.next()
		return &numLit{base: base{t.pos}, Val: t.num}, nil
	case tStr:
		p.next()
		return &strLit{base: base{t.pos}, Val: t.text}, nil
	case tIdent:
		switch t.text {
		case "true", "false":
			p.next()
			return &boolLit{base: base{t.pos}, Val: t.text == "true"}, nil
		case "null":
			p.next()
			return &nullLit{base: base{t.pos}}, nil
		case "undefined":
			p.next()
			return &undefLit{base: base{t.pos}}, nil
		case "function":
			p.next()
			name := ""
			if p.cur().kind == tIdent && !jsKeywords[p.cur().text] {
				name = p.next().text
			}
			return p.functionRest(t.pos, name)
		}
		if jsKeywords[t.text] && t.text != "undefined" {
			return nil, p.errHere("unexpected keyword %q", t.text)
		}
		p.next()
		// Arrow function: ident => expr/block
		if p.at(tPunct, "=>") {
			return p.arrowRest(t.pos, []string{t.text})
		}
		return &ident{base: base{t.pos}, Name: t.text}, nil
	case tPunct:
		switch t.text {
		case "(":
			// Could be a parenthesized expression or arrow params.
			if params, ok := p.tryArrowParams(); ok {
				return p.arrowRest(t.pos, params)
			}
			p.next()
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tPunct, ")"); err != nil {
				return nil, err
			}
			return x, nil
		case "[":
			p.next()
			var elems []Node
			for !p.at(tPunct, "]") {
				e, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if !p.eat(tPunct, ",") {
					break
				}
			}
			if err := p.expect(tPunct, "]"); err != nil {
				return nil, err
			}
			return &arrayLit{base: base{t.pos}, Elems: elems}, nil
		case "{":
			p.next()
			o := &objectLit{base: base{t.pos}}
			for !p.at(tPunct, "}") {
				kt := p.cur()
				var key string
				switch kt.kind {
				case tIdent, tStr:
					key = kt.text
				case tNum:
					key = jsToString(kt.num)
				default:
					return nil, p.errHere("expected object key")
				}
				p.next()
				if err := p.expect(tPunct, ":"); err != nil {
					return nil, err
				}
				v, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				o.Keys = append(o.Keys, key)
				o.Vals = append(o.Vals, v)
				if !p.eat(tPunct, ",") {
					break
				}
			}
			if err := p.expect(tPunct, "}"); err != nil {
				return nil, err
			}
			return o, nil
		}
	}
	return nil, p.errHere("unexpected token %q", t.text)
}

// tryArrowParams checks whether the upcoming "( ... )" is an arrow-function
// parameter list followed by "=>"; if so it consumes it and returns the names.
func (p *parser) tryArrowParams() ([]string, bool) {
	save := p.pos
	if !p.eat(tPunct, "(") {
		return nil, false
	}
	var params []string
	for !p.at(tPunct, ")") {
		t := p.cur()
		if t.kind != tIdent || jsKeywords[t.text] {
			p.pos = save
			return nil, false
		}
		p.next()
		params = append(params, t.text)
		if !p.eat(tPunct, ",") {
			break
		}
	}
	if !p.eat(tPunct, ")") || !p.at(tPunct, "=>") {
		p.pos = save
		return nil, false
	}
	return params, true
}

func (p *parser) arrowRest(pos int, params []string) (Node, error) {
	if err := p.expect(tPunct, "=>"); err != nil {
		return nil, err
	}
	if p.at(tPunct, "{") {
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &funcLit{base: base{pos}, Params: params, Body: body, Arrow: true}, nil
	}
	x, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	return &funcLit{base: base{pos}, Params: params, Body: []Node{&returnStmt{base: base{pos}, X: x}}, Arrow: true}, nil
}
