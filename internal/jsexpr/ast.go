package jsexpr

// Node is any AST node. Position is retained for error messages.
type Node interface{ nodePos() int }

type base struct{ Pos int }

func (b base) nodePos() int { return b.Pos }

// --- Expressions ---

type numLit struct {
	base
	Val float64
}

type strLit struct {
	base
	Val string
}

type boolLit struct {
	base
	Val bool
}

type nullLit struct{ base }

type undefLit struct{ base }

type ident struct {
	base
	Name string
}

type arrayLit struct {
	base
	Elems []Node
}

type objectLit struct {
	base
	Keys []string
	Vals []Node
}

type member struct {
	base
	Obj  Node
	Name string
}

type index struct {
	base
	Obj Node
	Key Node
}

type call struct {
	base
	Callee Node
	Args   []Node
}

type newExpr struct {
	base
	Callee Node
	Args   []Node
}

type unary struct {
	base
	Op      string
	X       Node
	Postfix bool // for ++/--
}

type binary struct {
	base
	Op   string
	L, R Node
}

type logical struct {
	base
	Op   string // && or ||
	L, R Node
}

type cond struct {
	base
	Test, Then, Else Node
}

type assign struct {
	base
	Op     string // =, +=, -=, *=, /=, %=
	Target Node   // ident, member, or index
	Val    Node
}

type funcLit struct {
	base
	Name   string // "" for anonymous
	Params []string
	Body   []Node
	Arrow  bool
}

// --- Statements ---

type varDecl struct {
	base
	Names []string
	Inits []Node // nil entries mean undefined
}

type exprStmt struct {
	base
	X Node
}

type ifStmt struct {
	base
	Test Node
	Then []Node
	Else []Node
}

type whileStmt struct {
	base
	Test Node
	Body []Node
}

type forStmt struct {
	base
	Init Node // statement or nil
	Test Node // nil = true
	Post Node // expression or nil
	Body []Node
}

type forInOf struct {
	base
	VarName string
	Of      bool // for-of vs for-in
	Obj     Node
	Body    []Node
}

type returnStmt struct {
	base
	X Node // nil = undefined
}

type breakStmt struct{ base }

type continueStmt struct{ base }

type throwStmt struct {
	base
	X Node
}

type blockStmt struct {
	base
	Stmts []Node
}
