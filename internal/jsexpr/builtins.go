package jsexpr

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/yamlx"
)

func nf(name string, fn func(this any, args []any) (any, error)) *NativeFunc {
	return &NativeFunc{Name: name, Fn: fn}
}

func arg(args []any, i int) any {
	if i < len(args) {
		return args[i]
	}
	return Undefined{}
}

func argNum(args []any, i int, def float64) (float64, error) {
	v := arg(args, i)
	if _, ok := v.(Undefined); ok {
		return def, nil
	}
	return toNumber(v)
}

func argStr(args []any, i int) string {
	v := arg(args, i)
	if _, ok := v.(Undefined); ok {
		return ""
	}
	return jsToString(v)
}

func installBuiltins(g *environ) {
	g.define("NaN", math.NaN())
	g.define("Infinity", math.Inf(1))

	g.define("parseInt", nf("parseInt", func(_ any, args []any) (any, error) {
		s := strings.TrimSpace(argStr(args, 0))
		radix, err := argNum(args, 1, 10)
		if err != nil {
			return nil, err
		}
		if radix == 0 {
			radix = 10
		}
		sign := 1.0
		if strings.HasPrefix(s, "-") {
			sign, s = -1, s[1:]
		} else if strings.HasPrefix(s, "+") {
			s = s[1:]
		}
		if radix == 16 && (strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X")) {
			s = s[2:]
		}
		end := 0
		for end < len(s) && digitVal(s[end]) >= 0 && digitVal(s[end]) < int(radix) {
			end++
		}
		if end == 0 {
			return math.NaN(), nil
		}
		n, err := strconv.ParseInt(s[:end], int(radix), 64)
		if err != nil {
			return math.NaN(), nil
		}
		return sign * float64(n), nil
	}))
	g.define("parseFloat", nf("parseFloat", func(_ any, args []any) (any, error) {
		s := strings.TrimSpace(argStr(args, 0))
		end := len(s)
		for end > 0 {
			if _, err := strconv.ParseFloat(s[:end], 64); err == nil {
				break
			}
			end--
		}
		if end == 0 {
			return math.NaN(), nil
		}
		f, _ := strconv.ParseFloat(s[:end], 64)
		return f, nil
	}))
	g.define("isNaN", nf("isNaN", func(_ any, args []any) (any, error) {
		n, err := toNumber(arg(args, 0))
		if err != nil {
			return true, nil
		}
		return math.IsNaN(n), nil
	}))
	g.define("String", nf("String", func(_ any, args []any) (any, error) {
		return jsToString(arg(args, 0)), nil
	}))
	g.define("Number", nf("Number", func(_ any, args []any) (any, error) {
		return toNumber(arg(args, 0))
	}))
	g.define("Boolean", nf("Boolean", func(_ any, args []any) (any, error) {
		return truthy(arg(args, 0)), nil
	}))

	mathObj := yamlx.NewMap()
	math1 := func(name string, fn func(float64) float64) {
		mathObj.Set(name, nf("Math."+name, func(_ any, args []any) (any, error) {
			n, err := argNum(args, 0, math.NaN())
			if err != nil {
				return nil, err
			}
			return fn(n), nil
		}))
	}
	math1("floor", math.Floor)
	math1("ceil", math.Ceil)
	math1("round", math.Round)
	math1("abs", math.Abs)
	math1("sqrt", math.Sqrt)
	math1("log", math.Log)
	math1("log2", math.Log2)
	math1("log10", math.Log10)
	math1("exp", math.Exp)
	math1("trunc", math.Trunc)
	mathObj.Set("pow", nf("Math.pow", func(_ any, args []any) (any, error) {
		a, err := argNum(args, 0, math.NaN())
		if err != nil {
			return nil, err
		}
		b, err := argNum(args, 1, math.NaN())
		if err != nil {
			return nil, err
		}
		return math.Pow(a, b), nil
	}))
	varadicMath := func(name string, pick func(a, b float64) float64, init float64) {
		mathObj.Set(name, nf("Math."+name, func(_ any, args []any) (any, error) {
			out := init
			for i := range args {
				n, err := toNumber(args[i])
				if err != nil {
					return nil, err
				}
				out = pick(out, n)
			}
			return out, nil
		}))
	}
	varadicMath("min", math.Min, math.Inf(1))
	varadicMath("max", math.Max, math.Inf(-1))
	mathObj.Set("PI", math.Pi)
	mathObj.Set("E", math.E)
	g.define("Math", mathObj)

	jsonObj := yamlx.NewMap()
	jsonObj.Set("stringify", nf("JSON.stringify", func(_ any, args []any) (any, error) {
		b, err := json.Marshal(FromJS(arg(args, 0)))
		if err != nil {
			return nil, fmt.Errorf("JSON.stringify: %w", err)
		}
		return string(b), nil
	}))
	jsonObj.Set("parse", nf("JSON.parse", func(_ any, args []any) (any, error) {
		var v any
		if err := json.Unmarshal([]byte(argStr(args, 0)), &v); err != nil {
			return nil, fmt.Errorf("JSON.parse: %w", err)
		}
		return ToJS(jsonToDoc(v)), nil
	}))
	g.define("JSON", jsonObj)

	objectObj := yamlx.NewMap()
	objectObj.Set("keys", nf("Object.keys", func(_ any, args []any) (any, error) {
		o, ok := arg(args, 0).(*Object)
		if !ok {
			return nil, fmt.Errorf("Object.keys on %s", typeName(arg(args, 0)))
		}
		arr := &Array{}
		for _, k := range o.Keys() {
			arr.E = append(arr.E, k)
		}
		return arr, nil
	}))
	objectObj.Set("values", nf("Object.values", func(_ any, args []any) (any, error) {
		o, ok := arg(args, 0).(*Object)
		if !ok {
			return nil, fmt.Errorf("Object.values on %s", typeName(arg(args, 0)))
		}
		arr := &Array{}
		for _, k := range o.Keys() {
			arr.E = append(arr.E, o.Value(k))
		}
		return arr, nil
	}))
	objectObj.Set("entries", nf("Object.entries", func(_ any, args []any) (any, error) {
		o, ok := arg(args, 0).(*Object)
		if !ok {
			return nil, fmt.Errorf("Object.entries on %s", typeName(arg(args, 0)))
		}
		arr := &Array{}
		for _, k := range o.Keys() {
			arr.E = append(arr.E, &Array{E: []any{k, o.Value(k)}})
		}
		return arr, nil
	}))
	objectObj.Set("assign", nf("Object.assign", func(_ any, args []any) (any, error) {
		dst, ok := arg(args, 0).(*Object)
		if !ok {
			return nil, fmt.Errorf("Object.assign target is %s", typeName(arg(args, 0)))
		}
		for _, src := range args[1:] {
			if so, ok := src.(*Object); ok {
				so.Range(func(k string, v any) bool {
					dst.Set(k, v)
					return true
				})
			}
		}
		return dst, nil
	}))
	g.define("Object", objectObj)

	arrayObj := yamlx.NewMap()
	arrayObj.Set("isArray", nf("Array.isArray", func(_ any, args []any) (any, error) {
		_, ok := arg(args, 0).(*Array)
		return ok, nil
	}))
	g.define("Array", arrayObj)
}

func digitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'z':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'Z':
		return int(c-'A') + 10
	}
	return -1
}

// jsonToDoc normalizes encoding/json output into the document vocabulary
// (map[string]any → *yamlx.Map with sorted keys for determinism).
func jsonToDoc(v any) any {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		m := yamlx.NewMap()
		for _, k := range keys {
			m.Set(k, jsonToDoc(x[k]))
		}
		return m
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = jsonToDoc(e)
		}
		return out
	default:
		return v
	}
}

// getProp resolves obj.name: data properties on objects, length, and the
// method tables for strings and arrays.
func (ip *Interp) getProp(obj any, name string, pos int) (any, error) {
	switch o := obj.(type) {
	case nil:
		return nil, fmt.Errorf("cannot read property %q of null (offset %d)", name, pos)
	case Undefined:
		return nil, fmt.Errorf("cannot read property %q of undefined (offset %d)", name, pos)
	case *Object:
		if v, ok := o.Get(name); ok {
			return v, nil
		}
		return Undefined{}, nil
	case *Array:
		if name == "length" {
			return float64(len(o.E)), nil
		}
		if m, ok := arrayMethods[name]; ok {
			return &boundMethod{name: name, this: o, fn: m(ip)}, nil
		}
		return Undefined{}, nil
	case string:
		if name == "length" {
			return float64(len(o)), nil
		}
		if m, ok := stringMethods[name]; ok {
			return &boundMethod{name: name, this: o, fn: m(ip)}, nil
		}
		return Undefined{}, nil
	case float64:
		if m, ok := numberMethods[name]; ok {
			return &boundMethod{name: name, this: o, fn: m(ip)}, nil
		}
		return Undefined{}, nil
	}
	return nil, fmt.Errorf("cannot read property %q of %s (offset %d)", name, typeName(obj), pos)
}

func (ip *Interp) getIndex(obj, key any, pos int) (any, error) {
	switch o := obj.(type) {
	case *Array:
		n, err := toNumber(key)
		if err != nil {
			if ks, ok := key.(string); ok {
				return ip.getProp(o, ks, pos)
			}
			return nil, err
		}
		if math.IsNaN(n) {
			if ks, ok := key.(string); ok {
				return ip.getProp(o, ks, pos)
			}
			return Undefined{}, nil
		}
		i := int(n)
		if i < 0 || i >= len(o.E) {
			return Undefined{}, nil
		}
		return o.E[i], nil
	case *Object:
		return ip.getProp(o, jsToString(key), pos)
	case string:
		if ks, ok := key.(string); ok {
			return ip.getProp(o, ks, pos)
		}
		n, err := toNumber(key)
		if err != nil {
			return nil, err
		}
		i := int(n)
		if i < 0 || i >= len(o) {
			return Undefined{}, nil
		}
		return string(o[i]), nil
	}
	return nil, fmt.Errorf("cannot index %s (offset %d)", typeName(obj), pos)
}

type methodTable map[string]func(ip *Interp) func(this any, args []any) (any, error)

var stringMethods = methodTable{
	"charAt": simple(func(s string, args []any) (any, error) {
		n, err := argNum(args, 0, 0)
		if err != nil {
			return nil, err
		}
		i := int(n)
		if i < 0 || i >= len(s) {
			return "", nil
		}
		return string(s[i]), nil
	}),
	"charCodeAt": simple(func(s string, args []any) (any, error) {
		n, err := argNum(args, 0, 0)
		if err != nil {
			return nil, err
		}
		i := int(n)
		if i < 0 || i >= len(s) {
			return math.NaN(), nil
		}
		return float64(s[i]), nil
	}),
	"indexOf": simple(func(s string, args []any) (any, error) {
		return float64(strings.Index(s, argStr(args, 0))), nil
	}),
	"lastIndexOf": simple(func(s string, args []any) (any, error) {
		return float64(strings.LastIndex(s, argStr(args, 0))), nil
	}),
	"includes": simple(func(s string, args []any) (any, error) {
		return strings.Contains(s, argStr(args, 0)), nil
	}),
	"startsWith": simple(func(s string, args []any) (any, error) {
		return strings.HasPrefix(s, argStr(args, 0)), nil
	}),
	"endsWith": simple(func(s string, args []any) (any, error) {
		return strings.HasSuffix(s, argStr(args, 0)), nil
	}),
	"slice": simple(func(s string, args []any) (any, error) {
		start, end, err := sliceBounds(len(s), args)
		if err != nil {
			return nil, err
		}
		return s[start:end], nil
	}),
	"substring": simple(func(s string, args []any) (any, error) {
		// substring clamps negatives to 0 (no wrapping) and swaps
		// out-of-order bounds.
		startF, err := argNum(args, 0, 0)
		if err != nil {
			return nil, err
		}
		endF, err := argNum(args, 1, float64(len(s)))
		if err != nil {
			return nil, err
		}
		clamp := func(f float64) int {
			i := int(f)
			if i < 0 {
				i = 0
			}
			if i > len(s) {
				i = len(s)
			}
			return i
		}
		start, end := clamp(startF), clamp(endF)
		if start > end {
			start, end = end, start
		}
		return s[start:end], nil
	}),
	"toUpperCase": simple(func(s string, args []any) (any, error) {
		return strings.ToUpper(s), nil
	}),
	"toLowerCase": simple(func(s string, args []any) (any, error) {
		return strings.ToLower(s), nil
	}),
	"trim": simple(func(s string, args []any) (any, error) {
		return strings.TrimSpace(s), nil
	}),
	"split": simple(func(s string, args []any) (any, error) {
		sep := arg(args, 0)
		if _, und := sep.(Undefined); und {
			return &Array{E: []any{s}}, nil
		}
		parts := strings.Split(s, jsToString(sep))
		arr := &Array{E: make([]any, len(parts))}
		for i, p := range parts {
			arr.E[i] = p
		}
		return arr, nil
	}),
	"replace": simple(func(s string, args []any) (any, error) {
		// String-pattern replace: first occurrence only (JS semantics).
		return strings.Replace(s, argStr(args, 0), argStr(args, 1), 1), nil
	}),
	"replaceAll": simple(func(s string, args []any) (any, error) {
		return strings.ReplaceAll(s, argStr(args, 0), argStr(args, 1)), nil
	}),
	"concat": simple(func(s string, args []any) (any, error) {
		var b strings.Builder
		b.WriteString(s)
		for i := range args {
			b.WriteString(jsToString(args[i]))
		}
		return b.String(), nil
	}),
	"repeat": simple(func(s string, args []any) (any, error) {
		n, err := argNum(args, 0, 0)
		if err != nil {
			return nil, err
		}
		if n < 0 || n > 1e6 {
			return nil, fmt.Errorf("invalid repeat count %v", n)
		}
		return strings.Repeat(s, int(n)), nil
	}),
	"padStart": simple(func(s string, args []any) (any, error) {
		return pad(s, args, true)
	}),
	"padEnd": simple(func(s string, args []any) (any, error) {
		return pad(s, args, false)
	}),
	"toString": simple(func(s string, args []any) (any, error) {
		return s, nil
	}),
}

func pad(s string, args []any, start bool) (any, error) {
	n, err := argNum(args, 0, 0)
	if err != nil {
		return nil, err
	}
	fill := argStr(args, 1)
	if fill == "" {
		fill = " "
	}
	for len(s) < int(n) {
		chunk := fill
		if len(s)+len(chunk) > int(n) {
			chunk = chunk[:int(n)-len(s)]
		}
		if start {
			s = chunk + s
		} else {
			s = s + chunk
		}
	}
	return s, nil
}

func simple(fn func(s string, args []any) (any, error)) func(*Interp) func(any, []any) (any, error) {
	return func(*Interp) func(any, []any) (any, error) {
		return func(this any, args []any) (any, error) {
			s, _ := this.(string)
			return fn(s, args)
		}
	}
}

func sliceBounds(n int, args []any) (int, int, error) {
	startF, err := argNum(args, 0, 0)
	if err != nil {
		return 0, 0, err
	}
	endF, err := argNum(args, 1, float64(n))
	if err != nil {
		return 0, 0, err
	}
	norm := func(f float64) int {
		i := int(f)
		if i < 0 {
			i += n
		}
		if i < 0 {
			i = 0
		}
		if i > n {
			i = n
		}
		return i
	}
	start, end := norm(startF), norm(endF)
	if start > end {
		end = start
	}
	return start, end, nil
}

var numberMethods = methodTable{
	"toFixed": func(*Interp) func(any, []any) (any, error) {
		return func(this any, args []any) (any, error) {
			f, _ := this.(float64)
			n, err := argNum(args, 0, 0)
			if err != nil {
				return nil, err
			}
			return strconv.FormatFloat(f, 'f', int(n), 64), nil
		}
	},
	"toString": func(*Interp) func(any, []any) (any, error) {
		return func(this any, args []any) (any, error) {
			f, _ := this.(float64)
			return formatJSNumber(f), nil
		}
	},
}

// arrayMethods is populated in init to break the initialization cycle through
// Interp.callValue.
var arrayMethods methodTable

func init() {
	arrayMethods = methodTable{
		"push": arrMethod(func(ip *Interp, a *Array, args []any) (any, error) {
			a.E = append(a.E, args...)
			return float64(len(a.E)), nil
		}),
		"pop": arrMethod(func(ip *Interp, a *Array, args []any) (any, error) {
			if len(a.E) == 0 {
				return Undefined{}, nil
			}
			v := a.E[len(a.E)-1]
			a.E = a.E[:len(a.E)-1]
			return v, nil
		}),
		"shift": arrMethod(func(ip *Interp, a *Array, args []any) (any, error) {
			if len(a.E) == 0 {
				return Undefined{}, nil
			}
			v := a.E[0]
			a.E = a.E[1:]
			return v, nil
		}),
		"unshift": arrMethod(func(ip *Interp, a *Array, args []any) (any, error) {
			a.E = append(append([]any{}, args...), a.E...)
			return float64(len(a.E)), nil
		}),
		"join": arrMethod(func(ip *Interp, a *Array, args []any) (any, error) {
			sep := ","
			if len(args) > 0 {
				if _, und := args[0].(Undefined); !und {
					sep = jsToString(args[0])
				}
			}
			parts := make([]string, len(a.E))
			for i, e := range a.E {
				if e == nil {
					continue
				}
				if _, und := e.(Undefined); und {
					continue
				}
				parts[i] = jsToString(e)
			}
			return strings.Join(parts, sep), nil
		}),
		"indexOf": arrMethod(func(ip *Interp, a *Array, args []any) (any, error) {
			want := arg(args, 0)
			for i, e := range a.E {
				if strictEq(e, want) {
					return float64(i), nil
				}
			}
			return float64(-1), nil
		}),
		"includes": arrMethod(func(ip *Interp, a *Array, args []any) (any, error) {
			want := arg(args, 0)
			for _, e := range a.E {
				if strictEq(e, want) {
					return true, nil
				}
			}
			return false, nil
		}),
		"slice": arrMethod(func(ip *Interp, a *Array, args []any) (any, error) {
			start, end, err := sliceBounds(len(a.E), args)
			if err != nil {
				return nil, err
			}
			out := &Array{E: append([]any{}, a.E[start:end]...)}
			return out, nil
		}),
		"concat": arrMethod(func(ip *Interp, a *Array, args []any) (any, error) {
			out := &Array{E: append([]any{}, a.E...)}
			for _, x := range args {
				if xa, ok := x.(*Array); ok {
					out.E = append(out.E, xa.E...)
				} else {
					out.E = append(out.E, x)
				}
			}
			return out, nil
		}),
		"reverse": arrMethod(func(ip *Interp, a *Array, args []any) (any, error) {
			for i, j := 0, len(a.E)-1; i < j; i, j = i+1, j-1 {
				a.E[i], a.E[j] = a.E[j], a.E[i]
			}
			return a, nil
		}),
		"map": arrMethod(func(ip *Interp, a *Array, args []any) (any, error) {
			out := &Array{E: make([]any, len(a.E))}
			for i, e := range a.E {
				v, err := ip.callValue(arg(args, 0), nil, []any{e, float64(i), a}, 0)
				if err != nil {
					return nil, err
				}
				out.E[i] = v
			}
			return out, nil
		}),
		"filter": arrMethod(func(ip *Interp, a *Array, args []any) (any, error) {
			out := &Array{}
			for i, e := range a.E {
				v, err := ip.callValue(arg(args, 0), nil, []any{e, float64(i), a}, 0)
				if err != nil {
					return nil, err
				}
				if truthy(v) {
					out.E = append(out.E, e)
				}
			}
			return out, nil
		}),
		"forEach": arrMethod(func(ip *Interp, a *Array, args []any) (any, error) {
			for i, e := range a.E {
				if _, err := ip.callValue(arg(args, 0), nil, []any{e, float64(i), a}, 0); err != nil {
					return nil, err
				}
			}
			return Undefined{}, nil
		}),
		"reduce": arrMethod(func(ip *Interp, a *Array, args []any) (any, error) {
			var acc any
			start := 0
			if len(args) > 1 {
				acc = args[1]
			} else {
				if len(a.E) == 0 {
					return nil, fmt.Errorf("reduce of empty array with no initial value")
				}
				acc = a.E[0]
				start = 1
			}
			for i := start; i < len(a.E); i++ {
				v, err := ip.callValue(arg(args, 0), nil, []any{acc, a.E[i], float64(i), a}, 0)
				if err != nil {
					return nil, err
				}
				acc = v
			}
			return acc, nil
		}),
		"some": arrMethod(func(ip *Interp, a *Array, args []any) (any, error) {
			for i, e := range a.E {
				v, err := ip.callValue(arg(args, 0), nil, []any{e, float64(i), a}, 0)
				if err != nil {
					return nil, err
				}
				if truthy(v) {
					return true, nil
				}
			}
			return false, nil
		}),
		"every": arrMethod(func(ip *Interp, a *Array, args []any) (any, error) {
			for i, e := range a.E {
				v, err := ip.callValue(arg(args, 0), nil, []any{e, float64(i), a}, 0)
				if err != nil {
					return nil, err
				}
				if !truthy(v) {
					return false, nil
				}
			}
			return true, nil
		}),
		"find": arrMethod(func(ip *Interp, a *Array, args []any) (any, error) {
			for i, e := range a.E {
				v, err := ip.callValue(arg(args, 0), nil, []any{e, float64(i), a}, 0)
				if err != nil {
					return nil, err
				}
				if truthy(v) {
					return e, nil
				}
			}
			return Undefined{}, nil
		}),
		"flat": arrMethod(func(ip *Interp, a *Array, args []any) (any, error) {
			out := &Array{}
			for _, e := range a.E {
				if ea, ok := e.(*Array); ok {
					out.E = append(out.E, ea.E...)
				} else {
					out.E = append(out.E, e)
				}
			}
			return out, nil
		}),
		"sort": arrMethod(func(ip *Interp, a *Array, args []any) (any, error) {
			cmp := arg(args, 0)
			var sortErr error
			if _, und := cmp.(Undefined); und {
				sort.SliceStable(a.E, func(i, j int) bool {
					return jsToString(a.E[i]) < jsToString(a.E[j])
				})
			} else {
				sort.SliceStable(a.E, func(i, j int) bool {
					if sortErr != nil {
						return false
					}
					v, err := ip.callValue(cmp, nil, []any{a.E[i], a.E[j]}, 0)
					if err != nil {
						sortErr = err
						return false
					}
					n, err := toNumber(v)
					if err != nil {
						sortErr = err
						return false
					}
					return n < 0
				})
			}
			if sortErr != nil {
				return nil, sortErr
			}
			return a, nil
		}),
		"toString": arrMethod(func(ip *Interp, a *Array, args []any) (any, error) {
			return jsToString(a), nil
		}),
	}
}

func arrMethod(fn func(ip *Interp, a *Array, args []any) (any, error)) func(*Interp) func(any, []any) (any, error) {
	return func(ip *Interp) func(any, []any) (any, error) {
		return func(this any, args []any) (any, error) {
			a, ok := this.(*Array)
			if !ok {
				return nil, fmt.Errorf("array method on %s", typeName(this))
			}
			return fn(ip, a, args)
		}
	}
}
