package jsexpr

// Compile-once / evaluate-many support. A Program is a parsed expression or
// statement body that can be evaluated repeatedly — and concurrently — against
// one Interp. All per-evaluation interpreter state (the step counter and the
// variable scope) lives in a per-call evaluator, so a single Program plus a
// single Interp are safe for use from many goroutines at once.

// Program is a reusable, goroutine-safe compiled JavaScript fragment. The AST
// is immutable after Compile; evaluation never mutates it.
type Program struct {
	expr  Node   // set for expression programs ($(...) bodies)
	stmts []Node // set for statement programs (${...} bodies, libraries)
	src   string
}

// Source returns the source text the program was compiled from.
func (p *Program) Source() string { return p.src }

// CompileExpr parses a single JavaScript expression (the inside of $(...))
// into a reusable Program.
func CompileExpr(src string) (*Program, error) {
	node, err := parseExpression(src)
	if err != nil {
		return nil, err
	}
	return &Program{expr: node, src: src}, nil
}

// CompileBody parses a ${...} function body (statements that should return a
// value) into a reusable Program.
func CompileBody(src string) (*Program, error) {
	stmts, err := parseProgram(src)
	if err != nil {
		return nil, err
	}
	return &Program{stmts: stmts, src: src}, nil
}

// RunProgram evaluates a compiled program with the given variables in scope,
// returning a CWL document value. It is safe to call concurrently: the global
// environment is sealed (frozen) on first use, and each call evaluates on a
// fresh per-call evaluator holding its own step counter and scope. Writes
// that would previously create or mutate global bindings land in the
// per-call scope instead, so evaluations cannot observe each other. When the
// library holds mutable state (object/array globals, closures over captured
// scopes) binding-freezing cannot isolate in-place mutation, so such
// interpreters serialize their evaluations instead (see Interp).
func (ip *Interp) RunProgram(p *Program, vars map[string]any) (any, error) {
	ip.seal()
	if ip.serialize {
		ip.evalMu.Lock()
		defer ip.evalMu.Unlock()
	}
	ev := &Interp{global: ip.global, maxSteps: ip.maxSteps}
	env := ev.scopeWith(vars)
	if p.expr != nil {
		v, err := ev.eval(p.expr, env)
		if err != nil {
			return nil, err
		}
		return FromJS(v), nil
	}
	ret, err := ev.execStmts(p.stmts, env)
	if err != nil {
		return nil, err
	}
	if ret == nil {
		return nil, nil
	}
	return FromJS(ret.value), nil
}

// seal freezes the interpreter's global environment: library loading is
// complete and evaluation begins. Sealing is what makes concurrent
// RunProgram calls race-free — after it, no evaluation writes to shared
// bindings — and it decides whether mutable library state forces
// serialization.
func (ip *Interp) seal() {
	ip.sealOnce.Do(func() {
		ip.global.frozen = true
		ip.serialize = ip.libHasMutableState()
	})
}

// libHasMutableState reports whether any library-defined global (a global
// not identical to the builtin installed under the same name) carries state
// an expression could mutate in place: arrays, objects, or closures that
// captured a non-global scope.
func (ip *Interp) libHasMutableState() bool {
	for k, v := range ip.global.vars {
		if bv, ok := ip.builtinVals[k]; ok && bv == v {
			continue
		}
		switch x := v.(type) {
		case *Array, *Object:
			return true
		case *Closure:
			if x.env != ip.global {
				return true
			}
		}
	}
	return false
}
