package fabric

import (
	"time"

	"repro/internal/obs"
)

// Package-level instruments on the Default registry, aggregated across every
// interchange in the process.
var (
	metConnections = obs.Default().Counter(
		"pcwl_net_connections_total",
		"TCP connections accepted by the interchange listener (before handshake).")
	metRegistrations = obs.Default().Counter(
		"pcwl_net_registrations_total",
		"Worker sessions that completed the handshake and registered.")
	metReconnects = obs.Default().Counter(
		"pcwl_net_reconnects_total",
		"Registrations by a worker identity the interchange had seen before.")
	metRejects = obs.Default().CounterVec(
		"pcwl_net_rejects_total",
		"Connections rejected before any task frame, by reason.",
		"reason")
	metHeartbeatMisses = obs.Default().Counter(
		"pcwl_net_heartbeat_misses_total",
		"Worker sessions declared dead after heartbeat silence past the threshold.")
	metWorkers = obs.Default().Gauge(
		"pcwl_net_workers",
		"Live registered worker sessions (pending adoption plus adopted).")
	metNetRoundtrip = obs.Default().Histogram(
		"pcwl_net_roundtrip_seconds",
		"Round-trip time of one task over a network worker session (send to response).",
		nil)
)

// observeNetRoundtrip records one network round trip.
func observeNetRoundtrip(start time.Time) {
	metNetRoundtrip.Observe(time.Since(start).Seconds())
}
