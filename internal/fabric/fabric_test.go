package fabric

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"math/big"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/provider"
)

// testOptions are fast-cadence interchange options for loopback tests.
func testOptions(secret string) Options {
	return Options{
		Addr:            "127.0.0.1:0",
		Secret:          secret,
		HeartbeatPeriod: 25 * time.Millisecond,
		HeartbeatMisses: 4,
		AdoptTimeout:    5 * time.Second,
		DrainTimeout:    2 * time.Second,
	}
}

// startWorker runs a fabric worker in-process and reports its exit error.
func startWorker(t *testing.T, opts ConnectOptions) <-chan error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- RunWorker(opts) }()
	return done
}

func echoTask(t *testing.T, id int, value any) *provider.Task {
	t.Helper()
	spec, err := provider.NewEchoSpec(value)
	if err != nil {
		t.Fatalf("NewEchoSpec: %v", err)
	}
	return &provider.Task{ID: id, Fn: func() (any, error) { return value, nil }, Remote: spec}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// selfSignedCert builds an in-memory certificate for 127.0.0.1 with the
// given validity window, returning the server keypair and a pool trusting it.
func selfSignedCert(t *testing.T, notBefore, notAfter time.Time) (tls.Certificate, *x509.CertPool) {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatalf("generating key: %v", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "parsl-cwl-interchange"},
		NotBefore:    notBefore,
		NotAfter:     notAfter,
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:  []net.IP{net.ParseIP("127.0.0.1")},
		IsCA:         true, BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, pub, priv)
	if err != nil {
		t.Fatalf("creating certificate: %v", err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatalf("parsing certificate: %v", err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(leaf)
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: priv, Leaf: leaf}, pool
}

func TestNetProviderEchoRoundtrip(t *testing.T) {
	opts := testOptions("s3cret")
	var p *NetProvider
	opts.Spawn = func(block int) error {
		startWorker(t, ConnectOptions{Addr: p.Addr(), Secret: "s3cret", ID: "w1"})
		return nil
	}
	p, err := Listen(opts)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer p.Cancel()

	h, err := p.Launch(1)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if got := h.Block(); got != 1 {
		t.Fatalf("Block() = %d, want 1", got)
	}
	res, err := h.Run(echoTask(t, 7, "over the wire"))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res != "over the wire" {
		t.Fatalf("Run = %v, want the echoed value", res)
	}
	if got := p.RemoteTasks(); got != 1 {
		t.Fatalf("RemoteTasks = %d, want 1", got)
	}
	if !h.Alive() {
		t.Fatal("handle should be alive after a successful roundtrip")
	}
	st := p.Status()[1]
	if st.State != provider.BlockRunning || !strings.Contains(st.Detail, "w1") {
		t.Fatalf("status = %+v, want running with the worker id", st)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := p.Status()[1].State; got != provider.BlockClosed {
		t.Fatalf("status after Close = %s, want closed", got)
	}
}

func TestNetProviderInProcessFallback(t *testing.T) {
	opts := testOptions("")
	var p *NetProvider
	opts.Spawn = func(int) error { startWorker(t, ConnectOptions{Addr: p.Addr()}); return nil }
	p, err := Listen(opts)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer p.Cancel()
	h, err := p.Launch(1)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	res, err := h.Run(&provider.Task{ID: 1, Fn: func() (any, error) { return "local", nil }})
	if err != nil || res != "local" {
		t.Fatalf("fallback Run = %v, %v; want local, nil", res, err)
	}
	if got := p.RemoteTasks(); got != 0 {
		t.Fatalf("RemoteTasks = %d, want 0 for an in-process fallback", got)
	}
}

func TestNetProviderWrongSecretRejected(t *testing.T) {
	p, err := Listen(testOptions("right"))
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer p.Cancel()

	for name, secret := range map[string]string{"wrong": "wrong", "missing": ""} {
		err := <-startWorker(t, ConnectOptions{Addr: p.Addr(), Secret: secret})
		if !errors.Is(err, provider.ErrHelloRejected) {
			t.Fatalf("%s-secret worker error = %v, want ErrHelloRejected", name, err)
		}
	}
	if got := p.RegisteredWorkers(); got != 0 {
		t.Fatalf("RegisteredWorkers = %d after rejected hellos, want 0", got)
	}
}

// A rejected worker must not retry: the reconnect loop treats a hello
// rejection as terminal even with Reconnect on.
func TestNetWorkerRejectionIsTerminalDespiteReconnect(t *testing.T) {
	p, err := Listen(testOptions("right"))
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer p.Cancel()
	select {
	case err := <-startWorker(t, ConnectOptions{
		Addr: p.Addr(), Secret: "wrong", Reconnect: true, ReconnectWait: 10 * time.Millisecond,
	}):
		if !errors.Is(err, provider.ErrHelloRejected) {
			t.Fatalf("worker error = %v, want ErrHelloRejected", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rejected worker kept reconnecting instead of exiting")
	}
}

func TestNetProviderTLS(t *testing.T) {
	cert, pool := selfSignedCert(t, time.Now().Add(-time.Hour), time.Now().Add(time.Hour))
	opts := testOptions("tls-secret")
	opts.TLSConfig = &tls.Config{Certificates: []tls.Certificate{cert}}
	var p *NetProvider
	opts.Spawn = func(int) error {
		startWorker(t, ConnectOptions{
			Addr: p.Addr(), Secret: "tls-secret", ID: "tls-w",
			TLS: &tls.Config{RootCAs: pool},
		})
		return nil
	}
	p, err := Listen(opts)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer p.Cancel()
	h, err := p.Launch(1)
	if err != nil {
		t.Fatalf("Launch over TLS: %v", err)
	}
	res, err := h.Run(echoTask(t, 1, "encrypted"))
	if err != nil || res != "encrypted" {
		t.Fatalf("TLS Run = %v, %v; want encrypted, nil", res, err)
	}
}

func TestNetProviderTLSExpiredCertRejected(t *testing.T) {
	cert, pool := selfSignedCert(t, time.Now().Add(-2*time.Hour), time.Now().Add(-time.Hour))
	opts := testOptions("s")
	opts.TLSConfig = &tls.Config{Certificates: []tls.Certificate{cert}}
	p, err := Listen(opts)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer p.Cancel()

	err = <-startWorker(t, ConnectOptions{Addr: p.Addr(), Secret: "s", TLS: &tls.Config{RootCAs: pool}})
	var certErr x509.CertificateInvalidError
	if !errors.As(err, &certErr) || certErr.Reason != x509.Expired {
		t.Fatalf("worker error = %v, want an expired-certificate rejection", err)
	}
	if got := p.RegisteredWorkers(); got != 0 {
		t.Fatalf("RegisteredWorkers = %d after expired-cert dial, want 0", got)
	}
}

// A worker that plain-TCP dials a TLS interchange must be rejected at the
// handshake, never reaching registration.
func TestNetProviderPlaintextDialOfTLSListenerRejected(t *testing.T) {
	cert, _ := selfSignedCert(t, time.Now().Add(-time.Hour), time.Now().Add(time.Hour))
	opts := testOptions("s")
	opts.TLSConfig = &tls.Config{Certificates: []tls.Certificate{cert}}
	opts.HelloTimeout = 300 * time.Millisecond
	p, err := Listen(opts)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer p.Cancel()

	if err := <-startWorker(t, ConnectOptions{Addr: p.Addr(), Secret: "s"}); err == nil {
		t.Fatal("plaintext dial of a TLS listener should fail")
	}
	if got := p.RegisteredWorkers(); got != 0 {
		t.Fatalf("RegisteredWorkers = %d, want 0", got)
	}
}

func TestNetProviderHeartbeatStalenessKillsBlock(t *testing.T) {
	opts := testOptions("s")
	opts.HeartbeatPeriod = 20 * time.Millisecond
	opts.HeartbeatMisses = 3
	p, err := Listen(opts)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer p.Cancel()

	// A hand-rolled worker that handshakes and then goes silent: no
	// heartbeats, no responses.
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	fc := provider.NewFrameConn(conn, conn, conn)
	if _, err := provider.DialWorkerSession(fc, provider.Hello{ID: "silent", Secret: "s"}); err != nil {
		t.Fatalf("handshake: %v", err)
	}

	h, err := p.Launch(1)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	waitFor(t, "heartbeat staleness to mark the block dead", func() bool { return !h.Alive() })
	if _, err := h.Run(echoTask(t, 1, "x")); !errors.Is(err, provider.ErrWorkerLost) {
		t.Fatalf("Run on a stale block = %v, want ErrWorkerLost", err)
	}
	if got := p.Status()[1].State; got != provider.BlockDead {
		t.Fatalf("status = %s, want dead", got)
	}
}

func TestNetWorkerDrainDeregisters(t *testing.T) {
	opts := testOptions("s")
	drain := make(chan struct{})
	var p *NetProvider
	opts.Spawn = func(int) error {
		startWorker(t, ConnectOptions{Addr: p.Addr(), Secret: "s", ID: "draining", Drain: drain})
		return nil
	}
	p, err := Listen(opts)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer p.Cancel()
	h, err := p.Launch(1)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	close(drain)
	waitFor(t, "the worker's bye to end the session", func() bool { return !h.Alive() })
	if got := p.Status()[1].State; got != provider.BlockClosed {
		t.Fatalf("status after worker drain = %s, want closed (graceful deregistration)", got)
	}
}

func TestNetWorkerReconnects(t *testing.T) {
	opts := testOptions("s")
	var p *NetProvider
	opts.Spawn = func(int) error {
		startWorker(t, ConnectOptions{
			Addr: p.Addr(), Secret: "s", ID: "phoenix",
			Reconnect: true, ReconnectWait: 10 * time.Millisecond,
		})
		return nil
	}
	p, err := Listen(opts)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer p.Cancel()
	h, err := p.Launch(1)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if !p.KillConnection(1) {
		t.Fatal("KillConnection found no live block 1")
	}
	waitFor(t, "the severed block to read as dead", func() bool { return !h.Alive() })
	// The same worker identity dials back in and is adoptable as a new block.
	h2, err := p.Launch(2)
	if err != nil {
		t.Fatalf("Launch after reconnect: %v", err)
	}
	res, err := h2.Run(echoTask(t, 2, "back"))
	if err != nil || res != "back" {
		t.Fatalf("Run after reconnect = %v, %v; want back, nil", res, err)
	}
}

func TestNetProviderAdoptTimeout(t *testing.T) {
	opts := testOptions("s")
	opts.AdoptTimeout = 150 * time.Millisecond
	p, err := Listen(opts)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer p.Cancel()
	if _, err := p.Launch(1); err == nil || !strings.Contains(err.Error(), "no worker registered") {
		t.Fatalf("Launch with no workers = %v, want an adopt-timeout error", err)
	}
}

// Launch must adopt a worker that registers after the wait began (the waiter
// hand-off path, not just the pending-pool path).
func TestNetProviderLaunchAdoptsLateRegistration(t *testing.T) {
	p, err := Listen(testOptions("s"))
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer p.Cancel()
	go func() {
		time.Sleep(100 * time.Millisecond)
		startWorker(t, ConnectOptions{Addr: p.Addr(), Secret: "s", ID: "late"})
	}()
	h, err := p.Launch(1)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if res, err := h.Run(echoTask(t, 1, "ok")); err != nil || res != "ok" {
		t.Fatalf("Run = %v, %v; want ok, nil", res, err)
	}
}

func TestNetProviderCancel(t *testing.T) {
	p, err := Listen(testOptions("s"))
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	done := startWorker(t, ConnectOptions{Addr: p.Addr(), Secret: "s", ID: "w"})
	waitFor(t, "registration", func() bool { return p.RegisteredWorkers() == 1 })
	if err := p.Cancel(); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	// The engine closing the connection reads as EOF on the worker side,
	// which is the drain signal: the worker exits cleanly.
	if err := <-done; err != nil {
		t.Fatalf("worker exit after engine close = %v, want a clean drain", err)
	}
	if _, err := p.Launch(1); err == nil {
		t.Fatal("Launch after Cancel should fail")
	}
	if err := p.Cancel(); err != nil {
		t.Fatalf("second Cancel: %v", err)
	}
}

// TestDrainRacingReconnect severs a reconnecting worker's session and then
// fires its drain signal while two Launch calls compete for the fresh
// registration. Whatever interleaving the scheduler picks, the invariants
// hold: one worker identity is adopted by at most one block, the worker
// process exits exactly once and cleanly, and no ghost registration survives.
func TestDrainRacingReconnect(t *testing.T) {
	for iter := 0; iter < 6; iter++ {
		opts := testOptions("s")
		opts.AdoptTimeout = 300 * time.Millisecond
		p, err := Listen(opts)
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
		drain := make(chan struct{})
		done := startWorker(t, ConnectOptions{
			Addr: p.Addr(), Secret: "s", ID: "racer",
			Reconnect: true, ReconnectWait: 2 * time.Millisecond,
			Drain: drain,
		})
		h, err := p.Launch(1)
		if err != nil {
			t.Fatalf("Launch: %v", err)
		}
		if res, err := h.Run(echoTask(t, 1, "pre")); err != nil || res != "pre" {
			t.Fatalf("Run before the race = %v, %v; want pre, nil", res, err)
		}

		if !p.KillConnection(1) {
			t.Fatal("KillConnection found no live block 1")
		}
		waitFor(t, "the severed worker to re-register", func() bool {
			return p.RegisteredWorkers() == 1
		})

		// The race: two adoptions compete for one registration while the
		// worker is told to drain.
		adopted := make(chan provider.ManagerHandle, 2)
		for b := 2; b <= 3; b++ {
			go func(block int) {
				nh, err := p.Launch(block)
				if err != nil {
					adopted <- nil
					return
				}
				adopted <- nh
			}(b)
		}
		close(drain)

		var handles []provider.ManagerHandle
		for i := 0; i < 2; i++ {
			if nh := <-adopted; nh != nil {
				handles = append(handles, nh)
			}
		}
		if len(handles) > 1 {
			t.Fatalf("iter %d: one worker registration adopted by %d blocks", iter, len(handles))
		}
		// Exactly one clean exit: RunWorker must return nil (drain wins over
		// the reconnect loop) no matter which side observed the drain first.
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("iter %d: worker exit = %v, want a clean drain", iter, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("iter %d: worker never exited after drain", iter)
		}
		// The drained session must fully deregister: any adopted block reads
		// dead, and no pending registration lingers for a later Launch to
		// adopt as a ghost.
		for _, nh := range handles {
			got := nh
			waitFor(t, "the adopted block to observe the drain", func() bool { return !got.Alive() })
		}
		waitFor(t, "pending registrations to clear", func() bool {
			return p.RegisteredWorkers() == 0
		})
		p.Cancel()
	}
}
