package fabric

import (
	"crypto/tls"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/provider"
)

// ConnectOptions configures the dial side of the fabric: a worker process
// connecting to an engine's interchange listener.
type ConnectOptions struct {
	// Addr is the interchange address to dial ("host:port").
	Addr string
	// Secret is presented in the hello; must match the engine's.
	Secret string
	// TLS, when non-nil, dials with client TLS.
	TLS *tls.Config
	// ID names this worker across reconnects ("" = derived from hostname
	// and pid).
	ID string
	// Capacity is the advisory concurrent-task capacity announced in the
	// hello (0 = unstated).
	Capacity int
	// DialTimeout bounds one dial plus handshake attempt (default 10s).
	DialTimeout time.Duration
	// Reconnect re-dials after a broken session instead of exiting. A
	// rejected hello (wrong secret, wrong protocol) is always terminal.
	Reconnect bool
	// ReconnectWait is the initial backoff between reconnect attempts
	// (default 1s, doubling to 30s, with ±25% jitter per attempt so a
	// severed fleet does not reconnect in lockstep).
	ReconnectWait time.Duration
	// MaxAttempts caps consecutive failed sessions when reconnecting
	// (0 = unlimited).
	MaxAttempts int
	// Drain, when non-nil, triggers a graceful drain when closed: finish
	// in-flight tasks, send final responses and a bye, deregister, return
	// nil. Wired to SIGTERM/SIGINT by the worker binary.
	Drain <-chan struct{}
	// DisableBatch/DisableBinary withhold the corresponding protocol
	// capability from the hello, forcing the baseline wire form — how a
	// legacy JSON-only worker is emulated in tests and how operators debug
	// codec issues.
	DisableBatch  bool
	DisableBinary bool
	// Logf, when set, receives connection lifecycle messages.
	Logf func(format string, args ...any)
}

var workerSeq atomic.Int64

// defaultWorkerID derives a stable-enough worker identity from the host,
// pid and a process-local counter.
func defaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d-%d", host, os.Getpid(), workerSeq.Add(1))
}

// RunWorker is the parsl-cwl-worker network-mode main loop: dial the
// interchange, register, serve the session, optionally reconnecting when the
// connection breaks. Returns nil after a graceful drain (engine drain frame,
// engine EOF, or the Drain channel); a rejected hello or exhausted reconnect
// budget returns the error.
func RunWorker(opts ConnectOptions) error {
	if opts.Addr == "" {
		return fmt.Errorf("worker connect: no interchange address")
	}
	if opts.ID == "" {
		opts.ID = defaultWorkerID()
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 10 * time.Second
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	wait := opts.ReconnectWait
	if wait <= 0 {
		wait = time.Second
	}
	const maxWait = 30 * time.Second

	attempts := 0
	for {
		err := runSession(opts, logf)
		if err == nil {
			return nil
		}
		if errors.Is(err, provider.ErrHelloRejected) {
			// Redialing with the same credentials cannot succeed.
			return err
		}
		attempts++
		if !opts.Reconnect || (opts.MaxAttempts > 0 && attempts >= opts.MaxAttempts) {
			return err
		}
		sleep := jitterWait(wait)
		logf("session with %s ended (%v); reconnecting in %s", opts.Addr, err, sleep.Round(time.Millisecond))
		select {
		case <-opts.Drain:
			return nil
		case <-time.After(sleep):
		}
		if wait *= 2; wait > maxWait {
			wait = maxWait
		}
	}
}

// jitterWait spreads a reconnect delay over [0.75d, 1.25d) so a worker fleet
// severed by one engine restart does not re-dial in lockstep and hammer the
// fresh listener in synchronized waves.
func jitterWait(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d - d/4 + time.Duration(rand.Int63n(int64(d)/2+1))
}

// runSession runs one dial → handshake → serve cycle.
func runSession(opts ConnectOptions, logf func(string, ...any)) error {
	d := &net.Dialer{Timeout: opts.DialTimeout}
	var conn net.Conn
	var err error
	if opts.TLS != nil {
		conn, err = tls.DialWithDialer(d, "tcp", opts.Addr, opts.TLS)
	} else {
		conn, err = d.Dial("tcp", opts.Addr)
	}
	if err != nil {
		return fmt.Errorf("dialing interchange %s: %w", opts.Addr, err)
	}
	defer conn.Close()

	// The handshake must not hang on a wedged engine; task traffic after it
	// has no deadline (tasks can legitimately run for hours).
	_ = conn.SetDeadline(time.Now().Add(opts.DialTimeout))
	fc := provider.NewFrameConn(conn, conn, conn)
	ack, err := provider.DialWorkerSession(fc, provider.Hello{
		PID:      os.Getpid(),
		ID:       opts.ID,
		Capacity: opts.Capacity,
		Secret:   opts.Secret,
		Caps:     provider.WorkerCaps(opts.DisableBatch, opts.DisableBinary),
	})
	if err != nil {
		return err
	}
	_ = conn.SetDeadline(time.Time{})

	logf("registered with %s as %s (heartbeat %dms, caps %v)", opts.Addr, opts.ID, ack.HeartbeatMs, ack.Caps)
	return provider.ServeWorkerSession(fc, provider.SessionOptionsFromAck(ack, opts.Drain))
}
