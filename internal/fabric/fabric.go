// Package fabric is the engine's network execution fabric: the
// DFK↔interchange↔manager split of Parsl's HighThroughputExecutor (Babuji et
// al., "Parsl: Pervasive Parallel Programming in Python") lifted onto real
// sockets. The engine owns a TCP (optionally TLS) listener — the interchange
// — and remote parsl-cwl-worker processes dial in, authenticate with a
// shared secret, and register with an identity and capacity. NetProvider
// implements provider.ExecutionProvider over that registration pool: Launch
// adopts a registered worker as a pilot block (optionally spawning one
// first), per-connection heartbeats feed the executor's lost-manager
// machinery, and workers deregister with a graceful drain.
//
// The wire protocol is internal/provider's transport-agnostic worker session
// (FrameConn + versioned hello + heartbeat/drain/bye frames) — the same
// session ProcessProvider speaks over stdin/stdout pipes, so a workflow's
// results are byte-identical whichever transport carried its tasks.
package fabric

import (
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/provider"
)

// Options configures an interchange listener and its NetProvider.
type Options struct {
	// Addr is the TCP listen address (e.g. ":9420", "127.0.0.1:0").
	Addr string
	// Secret is the shared secret every worker hello must present.
	// Strongly recommended: without it any process that can reach the
	// listener can register as a worker. Empty disables secret auth.
	Secret string
	// TLSConfig, when non-nil, wraps every accepted connection in server
	// TLS. Alternatively set CertFile/KeyFile.
	TLSConfig *tls.Config
	// CertFile/KeyFile load a server certificate when TLSConfig is nil.
	CertFile string
	KeyFile  string
	// HeartbeatPeriod is the heartbeat interval announced to workers
	// (default 5s).
	HeartbeatPeriod time.Duration
	// HeartbeatMisses is how many silent periods mark a session dead
	// (default 3).
	HeartbeatMisses int
	// HelloTimeout bounds TLS handshake plus hello exchange for a new
	// connection (default 5s).
	HelloTimeout time.Duration
	// AdoptTimeout bounds how long Launch waits for a worker registration
	// (default 30s).
	AdoptTimeout time.Duration
	// DrainTimeout bounds how long Close waits for a worker to drain before
	// severing the connection (default 5s).
	DrainTimeout time.Duration
	// Spawn, when set, is called by Launch before waiting for a
	// registration — a hook to start a worker expected to dial in (a local
	// subprocess with -connect, a cloud instance, a batch job). A negative
	// block id asks for a warm-pool spare not yet bound to any block.
	Spawn func(block int) error
	// Dispatch tunes frame batching and codec for worker sessions.
	Dispatch provider.DispatchOptions
	// WarmPool, when positive and Spawn is set, keeps this many registered
	// spare workers on hand: Listen pre-spawns them, Launch adopts one
	// instead of paying spawn+dial+hello latency, and each adoption (or
	// spare death) triggers an asynchronous replacement.
	WarmPool int
}

func (o *Options) fill() error {
	if o.Addr == "" {
		return fmt.Errorf("net provider requires a listen address")
	}
	if o.HeartbeatPeriod <= 0 {
		o.HeartbeatPeriod = 5 * time.Second
	}
	if o.HeartbeatMisses <= 0 {
		o.HeartbeatMisses = 3
	}
	if o.HelloTimeout <= 0 {
		o.HelloTimeout = 5 * time.Second
	}
	if o.AdoptTimeout <= 0 {
		o.AdoptTimeout = 30 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 5 * time.Second
	}
	if o.TLSConfig == nil && (o.CertFile != "" || o.KeyFile != "") {
		if o.CertFile == "" || o.KeyFile == "" {
			return fmt.Errorf("net provider TLS needs both a certificate and a key file")
		}
		cert, err := tls.LoadX509KeyPair(o.CertFile, o.KeyFile)
		if err != nil {
			return fmt.Errorf("loading net provider TLS keypair: %w", err)
		}
		o.TLSConfig = &tls.Config{Certificates: []tls.Certificate{cert}}
	}
	return nil
}

// NetProvider is an ExecutionProvider whose blocks are remote workers
// connected to the engine's interchange listener.
type NetProvider struct {
	opts Options
	ln   net.Listener

	remoteTasks atomic.Int64

	closedCh chan struct{}

	mu      sync.Mutex
	closed  bool
	pending []*workerConn       // registered, awaiting adoption
	waiters []chan *workerConn  // Launch calls awaiting a registration
	blocks  map[int]*netHandle  // adopted workers by block id
	queued  map[int]string      // Launch in progress, by block id
	seen    map[string]struct{} // worker identities ever registered
}

// Listen opens the interchange listener and returns its provider.
func Listen(opts Options) (*NetProvider, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("net provider listener: %w", err)
	}
	p := &NetProvider{
		opts:     opts,
		ln:       ln,
		closedCh: make(chan struct{}),
		blocks:   map[int]*netHandle{},
		queued:   map[int]string{},
		seen:     map[string]struct{}{},
	}
	go p.acceptLoop()
	if opts.WarmPool > 0 && opts.Spawn != nil {
		for i := 0; i < opts.WarmPool; i++ {
			go p.spawnSpare()
		}
	}
	return p, nil
}

// spawnSpare asks the Spawn hook for one warm-pool worker (block id -1).
// Failures are swallowed: the pool is an optimization, and a cold Launch
// surfaces spawn errors on its own.
func (p *NetProvider) spawnSpare() {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed || p.opts.Spawn == nil {
		return
	}
	_ = p.opts.Spawn(-1)
}

// Addr is the listener's bound address (resolves ":0" ports).
func (p *NetProvider) Addr() string { return p.ln.Addr().String() }

// Name implements ExecutionProvider.
func (p *NetProvider) Name() string { return "net" }

// RemoteCapable implements provider.RemoteCapable: tasks with a RemoteSpec
// cross the network.
func (p *NetProvider) RemoteCapable() bool { return true }

// RemoteTasks reports how many tasks were shipped to workers over the
// network session protocol.
func (p *NetProvider) RemoteTasks() int64 { return p.remoteTasks.Load() }

// RegisteredWorkers reports registered-but-unadopted worker sessions.
func (p *NetProvider) RegisteredWorkers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending)
}

// acceptLoop admits connections until the listener closes.
func (p *NetProvider) acceptLoop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		metConnections.Inc()
		go p.handleConn(c)
	}
}

// handleConn authenticates one inbound connection and registers its worker
// session. A connection that fails TLS, protocol negotiation, or secret
// verification is rejected before any task frame is exchanged.
func (p *NetProvider) handleConn(c net.Conn) {
	_ = c.SetDeadline(time.Now().Add(p.opts.HelloTimeout))
	if p.opts.TLSConfig != nil {
		tc := tls.Server(c, p.opts.TLSConfig)
		if err := tc.Handshake(); err != nil {
			metRejects.With("tls").Inc()
			_ = c.Close()
			return
		}
		c = tc
	}
	fc := provider.NewFrameConn(c, c, c)
	sess, hello, err := provider.AcceptWorkerSession(fc, provider.AcceptOptions{
		Secret:    p.opts.Secret,
		Heartbeat: p.opts.HeartbeatPeriod,
		Dispatch:  p.opts.Dispatch,
	})
	if err != nil {
		metRejects.With(rejectReason(err)).Inc()
		_ = c.Close()
		return
	}
	_ = c.SetDeadline(time.Time{})

	wc := &workerConn{conn: c, sess: sess, hello: hello, remote: c.RemoteAddr().String()}
	sess.OnDead = func(graceful bool) { p.onConnDead(wc, graceful) }

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = c.Close()
		return
	}
	if hello.ID != "" {
		if _, again := p.seen[hello.ID]; again {
			metReconnects.Inc()
		} else {
			p.seen[hello.ID] = struct{}{}
		}
	}
	metRegistrations.Inc()
	metWorkers.Add(1)
	var waiter chan *workerConn
	if len(p.waiters) > 0 {
		waiter = p.waiters[0]
		p.waiters = p.waiters[1:]
	} else {
		p.pending = append(p.pending, wc)
	}
	p.mu.Unlock()

	go sess.ReadLoop()
	if waiter != nil {
		waiter <- wc
	}
}

// rejectReason labels a handshake failure for the rejects metric.
func rejectReason(err error) string {
	switch {
	case errors.Is(err, provider.ErrBadSecret):
		return "secret"
	case errors.Is(err, provider.ErrHelloRejected):
		return "proto"
	default:
		return "hello"
	}
}

// onConnDead runs exactly once per session, whether the worker drained
// gracefully, the connection broke, or the engine severed it.
func (p *NetProvider) onConnDead(wc *workerConn, graceful bool) {
	_ = wc.conn.Close()
	metWorkers.Add(-1)
	p.mu.Lock()
	h := wc.handle
	wasPending := false
	for i, cand := range p.pending {
		if cand == wc {
			p.pending = append(p.pending[:i], p.pending[i+1:]...)
			wasPending = true
			break
		}
	}
	p.mu.Unlock()
	if h != nil && !graceful && !h.closed.Load() {
		provider.RecordWorkerLost("net")
	}
	// A dead warm spare leaves the pool short; ask for a replacement.
	if wasPending && p.opts.WarmPool > 0 {
		go p.spawnSpare()
	}
}

// Launch implements ExecutionProvider: adopt a registered worker as the
// block, spawning one first when a Spawn hook is configured, and waiting up
// to AdoptTimeout for the registration. While waiting the block is visible
// as queued in Status.
func (p *NetProvider) Launch(block int) (provider.ManagerHandle, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("net provider is closed")
	}
	p.queued[block] = fmt.Sprintf("awaiting worker registration on %s", p.Addr())
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.queued, block)
		p.mu.Unlock()
	}()

	// Warm pool: adopt an already-registered spare and replace it in the
	// background instead of spawning for this block and waiting out the
	// worker's startup + dial + hello.
	if p.opts.WarmPool > 0 {
		if h := p.tryAdoptPending(block); h != nil {
			provider.RecordWarmHit("net")
			go p.spawnSpare()
			return h, nil
		}
	}
	if p.opts.Spawn != nil {
		if err := p.opts.Spawn(block); err != nil {
			return nil, fmt.Errorf("spawning net worker for block %d: %w", block, err)
		}
	}
	deadline := time.Now().Add(p.opts.AdoptTimeout)
	for {
		p.mu.Lock()
		var wc *workerConn
		for len(p.pending) > 0 {
			cand := p.pending[0]
			p.pending = p.pending[1:]
			if cand.sess.Alive() {
				wc = cand
				break
			}
		}
		if wc != nil {
			h := p.adoptLocked(block, wc)
			p.mu.Unlock()
			return h, nil
		}
		if p.closed {
			p.mu.Unlock()
			return nil, fmt.Errorf("net provider is closed")
		}
		waiter := make(chan *workerConn, 1)
		p.waiters = append(p.waiters, waiter)
		p.mu.Unlock()

		select {
		case wc := <-waiter:
			if wc.sess.Alive() {
				p.mu.Lock()
				h := p.adoptLocked(block, wc)
				p.mu.Unlock()
				return h, nil
			}
			// Dead on arrival — wait for the next registration.
		case <-time.After(time.Until(deadline)):
			p.dropWaiter(waiter)
			// A registration can race the timeout; prefer adopting it over
			// failing the launch.
			select {
			case wc := <-waiter:
				if wc.sess.Alive() {
					p.mu.Lock()
					h := p.adoptLocked(block, wc)
					p.mu.Unlock()
					return h, nil
				}
			default:
			}
			return nil, fmt.Errorf("no worker registered for block %d within %s (listener %s)",
				block, p.opts.AdoptTimeout, p.Addr())
		case <-p.closedCh:
			p.dropWaiter(waiter)
			return nil, fmt.Errorf("net provider is closed")
		}
	}
}

// tryAdoptPending adopts the first live registered-but-unadopted worker, or
// returns nil without waiting.
func (p *NetProvider) tryAdoptPending(block int) *netHandle {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.pending) > 0 {
		cand := p.pending[0]
		p.pending = p.pending[1:]
		if cand.sess.Alive() {
			return p.adoptLocked(block, cand)
		}
	}
	return nil
}

func (p *NetProvider) dropWaiter(w chan *workerConn) {
	p.mu.Lock()
	for i, cand := range p.waiters {
		if cand == w {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
}

// adoptLocked binds a registered worker to a block. Caller holds p.mu.
func (p *NetProvider) adoptLocked(block int, wc *workerConn) *netHandle {
	h := &netHandle{
		p:           p,
		block:       block,
		wc:          wc,
		hbThreshold: p.opts.HeartbeatPeriod * time.Duration(p.opts.HeartbeatMisses),
	}
	wc.handle = h
	p.blocks[block] = h
	provider.RecordBlockLaunched("net")
	return h
}

// Status implements ExecutionProvider.
func (p *NetProvider) Status() map[int]provider.BlockStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[int]provider.BlockStatus, len(p.blocks)+len(p.queued))
	for id, detail := range p.queued {
		out[id] = provider.BlockStatus{State: provider.BlockQueued, Detail: detail}
	}
	for id, h := range p.blocks {
		out[id] = h.status()
	}
	return out
}

// LiveBlocks reports blocks whose worker session is still up.
func (p *NetProvider) LiveBlocks() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []int
	for id, h := range p.blocks {
		if h.Alive() {
			out = append(out, id)
		}
	}
	return out
}

// KillConnection abruptly severs a live block's TCP connection — no drain,
// no goodbye — simulating a network partition or a remote host loss.
// Fault-injection tests use it the way process tests use SIGKILL. It
// reports whether a live block with that id existed.
//
// The close is an RST, not a FIN: a plain Close would read as EOF on the
// worker, and worker sessions treat engine EOF as the graceful-drain signal
// — the opposite of the abrupt loss this simulates. The reset makes the
// worker observe a real error, so its reconnect loop engages.
func (p *NetProvider) KillConnection(block int) bool {
	p.mu.Lock()
	h := p.blocks[block]
	p.mu.Unlock()
	if h == nil || !h.wc.sess.Alive() {
		return false
	}
	abortConn(h.wc.conn)
	return true
}

// abortConn closes a connection with an immediate TCP reset when the
// transport supports it (plain TCP or TLS over TCP).
func abortConn(conn net.Conn) {
	c := conn
	if tc, ok := c.(*tls.Conn); ok {
		c = tc.NetConn()
	}
	if lc, ok := c.(interface{ SetLinger(int) error }); ok {
		_ = lc.SetLinger(0)
	}
	_ = conn.Close()
}

// Cancel implements ExecutionProvider: stop the listener and sever every
// session. The provider is unusable afterwards.
func (p *NetProvider) Cancel() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.closedCh)
	conns := make([]*workerConn, 0, len(p.pending)+len(p.blocks))
	conns = append(conns, p.pending...)
	for _, h := range p.blocks {
		h.closed.Store(true) // orderly teardown, not a worker loss
		conns = append(conns, h.wc)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, wc := range conns {
		_ = wc.conn.Close()
	}
	return err
}

// workerConn is one registered worker session.
type workerConn struct {
	conn   net.Conn
	sess   *provider.ManagerSession
	hello  provider.Hello
	remote string
	handle *netHandle // set at adoption, under the provider mutex
}

// netHandle is one adopted block: a ManagerSession over a TCP connection
// plus heartbeat-staleness detection.
type netHandle struct {
	p           *NetProvider
	block       int
	wc          *workerConn
	hbThreshold time.Duration
	closed      atomic.Bool // Close was called (intentional teardown)
	stale       atomic.Bool // heartbeat silence already counted
}

// Block implements ManagerHandle.
func (h *netHandle) Block() int { return h.block }

// WorkerID reports the remote worker's self-declared identity.
func (h *netHandle) WorkerID() string { return h.wc.hello.ID }

// Run implements ManagerHandle. Tasks with a RemoteSpec cross the network;
// tasks without one (non-serializable closures) run in the engine process.
func (h *netHandle) Run(t *provider.Task) (any, error) {
	if t.Remote == nil {
		if !h.Alive() {
			return nil, fmt.Errorf("net block %d is gone: %w", h.block, provider.ErrWorkerLost)
		}
		return provider.Guard(t.Fn)
	}
	h.p.remoteTasks.Add(1)
	start := time.Now()
	res, err := h.wc.sess.Roundtrip(t.ID, t.Remote)
	if err == nil {
		observeNetRoundtrip(start)
		return res, nil
	}
	if errors.Is(err, provider.ErrWorkerLost) {
		return nil, fmt.Errorf("net block %d (worker %s at %s): %w", h.block, h.wc.hello.ID, h.wc.remote, err)
	}
	return nil, err
}

// Alive implements ManagerHandle: the session must be up and the worker's
// heartbeat fresh. A session silent past the threshold is declared dead —
// the signal that feeds the executor's lost-manager redispatch.
func (h *netHandle) Alive() bool {
	if !h.wc.sess.Alive() {
		return false
	}
	if h.hbThreshold > 0 && time.Since(h.wc.sess.LastBeat()) > h.hbThreshold {
		if h.stale.CompareAndSwap(false, true) {
			metHeartbeatMisses.Inc()
		}
		// Severing the connection both fails in-flight roundtrips promptly
		// and tells a half-alive worker its session is over.
		h.wc.sess.MarkDead(false)
		_ = h.wc.conn.Close()
		return false
	}
	return true
}

func (h *netHandle) status() provider.BlockStatus {
	id := h.wc.hello.ID
	switch {
	case h.closed.Load():
		return provider.BlockStatus{State: provider.BlockClosed, Detail: fmt.Sprintf("worker %s", id)}
	case !h.wc.sess.Alive() && h.wc.sess.Drained():
		return provider.BlockStatus{State: provider.BlockClosed, Detail: fmt.Sprintf("worker %s drained", id)}
	case !h.wc.sess.Alive():
		return provider.BlockStatus{State: provider.BlockDead, Detail: fmt.Sprintf("worker %s at %s lost", id, h.wc.remote)}
	default:
		return provider.BlockStatus{State: provider.BlockRunning,
			Detail: fmt.Sprintf("worker %s at %s, busy %d, codec %s", id, h.wc.remote, h.wc.sess.Busy(), h.wc.sess.Codec())}
	}
}

// Close implements ManagerHandle: ask the worker to drain, wait for its
// goodbye up to DrainTimeout, then sever the connection.
func (h *netHandle) Close() error {
	if !h.closed.CompareAndSwap(false, true) {
		return nil
	}
	if h.wc.sess.Alive() {
		if err := h.wc.sess.SendDrain(); err == nil {
			select {
			case <-h.wc.sess.Dead():
			case <-time.After(h.p.opts.DrainTimeout):
			}
		}
	}
	h.wc.sess.MarkDead(true)
	// The session's death callback may have closed the conn already; either
	// way the block is down, which is all Close promises.
	_ = h.wc.conn.Close()
	return nil
}
