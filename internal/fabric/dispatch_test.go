package fabric

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/provider"
)

// TestMixedVersionFleet runs a legacy JSON-only worker and a current
// binary-batched worker on one interchange at the same time. Each session
// must use only what it negotiated, and both must produce identical results
// for identical tasks — codecs are an encoding, not a semantic.
func TestMixedVersionFleet(t *testing.T) {
	opts := testOptions("s")
	p, err := Listen(opts)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer p.Cancel()

	startWorker(t, ConnectOptions{Addr: p.Addr(), Secret: "s", ID: "modern"})
	startWorker(t, ConnectOptions{
		Addr: p.Addr(), Secret: "s", ID: "legacy",
		DisableBatch: true, DisableBinary: true,
	})
	waitFor(t, "both workers to register", func() bool { return p.RegisteredWorkers() == 2 })

	h1, err := p.Launch(1)
	if err != nil {
		t.Fatalf("Launch 1: %v", err)
	}
	h2, err := p.Launch(2)
	if err != nil {
		t.Fatalf("Launch 2: %v", err)
	}

	// One block negotiated the binary codec, the other fell back to JSON —
	// per connection, on the same engine.
	st := p.Status()
	var codecs []string
	for _, block := range []int{1, 2} {
		switch {
		case strings.Contains(st[block].Detail, "codec "+provider.CodecBinary):
			codecs = append(codecs, provider.CodecBinary)
		case strings.Contains(st[block].Detail, "codec "+provider.CodecJSON):
			codecs = append(codecs, provider.CodecJSON)
		default:
			t.Fatalf("block %d detail %q names no codec", block, st[block].Detail)
		}
	}
	if !(codecs[0] == provider.CodecBinary && codecs[1] == provider.CodecJSON) &&
		!(codecs[0] == provider.CodecJSON && codecs[1] == provider.CodecBinary) {
		t.Fatalf("fleet codecs = %v, want one binary and one json", codecs)
	}

	// Identical concurrent workloads through both wire forms give identical
	// answers.
	var wg sync.WaitGroup
	results := make([][]string, 2)
	errs := make(chan error, 64)
	for w, h := range []provider.ManagerHandle{h1, h2} {
		results[w] = make([]string, 16)
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func(w, i int, h provider.ManagerHandle) {
				defer wg.Done()
				res, err := h.Run(echoTask(t, i, map[string]any{"task": i}))
				if err != nil {
					errs <- fmt.Errorf("worker %d task %d: %w", w, i, err)
					return
				}
				results[w][i] = fmt.Sprint(res)
			}(w, i, h)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if results[0][i] != results[1][i] || results[0][i] == "" {
			t.Fatalf("task %d diverged across codecs: %q vs %q", i, results[0][i], results[1][i])
		}
	}
}

// TestNetProviderWarmPool: with a warm pool, Launch adopts a pre-registered
// spare instantly and the pool refills in the background.
func TestNetProviderWarmPool(t *testing.T) {
	opts := testOptions("s")
	opts.WarmPool = 1
	var (
		p       *NetProvider
		spawnMu sync.Mutex
		spawned []int
	)
	opts.Spawn = func(block int) error {
		spawnMu.Lock()
		spawned = append(spawned, block)
		spawnMu.Unlock()
		startWorker(t, ConnectOptions{Addr: p.Addr(), Secret: "s", ID: fmt.Sprintf("w%d", block)})
		return nil
	}
	p, err := Listen(opts)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer p.Cancel()

	// The pool pre-spawns before any Launch: spawn hook called with a
	// negative block id, worker registers as pending.
	waitFor(t, "the warm spare to register", func() bool { return p.RegisteredWorkers() == 1 })
	spawnMu.Lock()
	if len(spawned) != 1 || spawned[0] >= 0 {
		spawnMu.Unlock()
		t.Fatalf("warm spawn calls = %v, want one negative block id", spawned)
	}
	spawnMu.Unlock()

	// Launch adopts the spare without waiting for a fresh worker to dial.
	start := time.Now()
	h, err := p.Launch(1)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("warm launch took %v — it did not use the spare", took)
	}
	if res, err := h.Run(echoTask(t, 1, "warm")); err != nil || res != "warm" {
		t.Fatalf("Run = %v, %v; want warm, nil", res, err)
	}
	// The pool refills after the adoption.
	waitFor(t, "the pool to refill", func() bool {
		spawnMu.Lock()
		defer spawnMu.Unlock()
		return len(spawned) >= 2
	})
}
