// Package sim provides a deterministic discrete-event simulation engine with a
// virtual clock. It underpins the benchmark harness: executing a 1,000-image
// workflow across a simulated three-node cluster takes milliseconds of wall
// time and yields exactly reproducible makespans.
//
// The engine is callback-based: work is expressed as events scheduled at
// virtual times. Ties are broken by scheduling order (FIFO), which keeps runs
// deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine. Engines are not safe for concurrent use: a simulation
// runs on a single goroutine by design.
type Engine struct {
	now    float64
	queue  eventHeap
	seq    int64
	events int64 // total events executed, for stats
}

type event struct {
	at  float64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Events returns the number of events executed so far.
func (e *Engine) Events() int64 { return e.events }

// Pending returns the number of scheduled-but-unexecuted events.
func (e *Engine) Pending() int { return e.queue.Len() }

// Schedule runs fn after delay seconds of virtual time. A negative delay is an
// error in the caller; it panics to surface the bug immediately.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: negative or NaN delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t (>= Now).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (t=%v, now=%v)", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, event{at: t, seq: e.seq, fn: fn})
}

// Run executes events until the queue is empty and returns the final time.
func (e *Engine) Run() float64 {
	for e.queue.Len() > 0 {
		e.step()
	}
	return e.now
}

// RunUntil executes events with time <= t, then sets the clock to t if it has
// not yet advanced that far.
func (e *Engine) RunUntil(t float64) {
	for e.queue.Len() > 0 && e.queue[0].at <= t {
		e.step()
	}
	if e.now < t {
		e.now = t
	}
}

func (e *Engine) step() {
	ev := heap.Pop(&e.queue).(event)
	if ev.at < e.now {
		panic("sim: time went backwards")
	}
	e.now = ev.at
	e.events++
	ev.fn()
}

// Resource is a counted resource (e.g. CPU cores on a node) with a FIFO wait
// queue. Acquire requests are granted in order; a large request at the head
// blocks later smaller ones (no starvation).
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	waiters  []waiter

	// busyIntegral accumulates in-use units × time for utilization stats.
	busyIntegral float64
	lastUpdate   float64
}

type waiter struct {
	n  int
	fn func()
}

// NewResource creates a resource with the given capacity.
func NewResource(eng *Engine, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{eng: eng, name: name, capacity: capacity}
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Free returns the number of unheld units.
func (r *Resource) Free() int { return r.capacity - r.inUse }

// Waiting returns the number of queued acquire requests.
func (r *Resource) Waiting() int { return len(r.waiters) }

// Acquire requests n units; fn runs (as an event at the current time) once
// they are granted. Requests are served FIFO.
func (r *Resource) Acquire(n int, fn func()) {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: acquire %d of %d on %s", n, r.capacity, r.name))
	}
	r.waiters = append(r.waiters, waiter{n: n, fn: fn})
	r.dispatch()
}

// TryAcquire grants n units immediately if available, returning success.
func (r *Resource) TryAcquire(n int) bool {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: acquire %d of %d on %s", n, r.capacity, r.name))
	}
	if len(r.waiters) > 0 || r.inUse+n > r.capacity {
		return false
	}
	r.account()
	r.inUse += n
	return true
}

// Release returns n units and wakes eligible waiters.
func (r *Resource) Release(n int) {
	if n <= 0 || n > r.inUse {
		panic(fmt.Sprintf("sim: release %d with %d in use on %s", n, r.inUse, r.name))
	}
	r.account()
	r.inUse -= n
	r.dispatch()
}

func (r *Resource) dispatch() {
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if r.inUse+w.n > r.capacity {
			return
		}
		r.account()
		r.inUse += w.n
		r.waiters = r.waiters[1:]
		r.eng.Schedule(0, w.fn)
	}
}

func (r *Resource) account() {
	now := r.eng.Now()
	r.busyIntegral += float64(r.inUse) * (now - r.lastUpdate)
	r.lastUpdate = now
}

// BusyIntegral returns the accumulated units×seconds of usage up to the
// current simulation time.
func (r *Resource) BusyIntegral() float64 {
	r.account()
	return r.busyIntegral
}

// Utilization returns mean utilization in [0,1] over elapsed virtual time.
func (r *Resource) Utilization() float64 {
	now := r.eng.Now()
	if now == 0 {
		return 0
	}
	return r.BusyIntegral() / (float64(r.capacity) * now)
}
