package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	end := e.Run()
	if end != 3 {
		t.Errorf("end = %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []float64
	e.Schedule(1, func() {
		hits = append(hits, e.Now())
		e.Schedule(2, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Errorf("hits = %v", hits)
	}
}

func TestZeroDelay(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(0, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Errorf("ran=%v now=%v", ran, e.Now())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var hits []float64
	for _, d := range []float64{1, 2, 3, 4} {
		d := d
		e.Schedule(d, func() { hits = append(hits, d) })
	}
	e.RunUntil(2.5)
	if len(hits) != 2 || e.Now() != 2.5 {
		t.Errorf("hits=%v now=%v", hits, e.Now())
	}
	e.Run()
	if len(hits) != 4 {
		t.Errorf("hits=%v", hits)
	}
}

// Property: the clock never moves backwards regardless of scheduling pattern.
func TestClockMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		last := -1.0
		ok := true
		var schedule func(depth int)
		schedule = func(depth int) {
			if depth >= len(delays) {
				return
			}
			e.Schedule(float64(delays[depth]%100), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
				schedule(depth + 1)
			})
		}
		schedule(0)
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceImmediateGrant(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cores", 4)
	granted := false
	r.Acquire(2, func() { granted = true })
	e.Run()
	if !granted || r.InUse() != 2 || r.Free() != 2 {
		t.Errorf("granted=%v inUse=%d", granted, r.InUse())
	}
}

func TestResourceQueueing(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cores", 2)
	var order []int
	// Task 1 holds both cores for 10s; tasks 2 and 3 wait.
	r.Acquire(2, func() {
		order = append(order, 1)
		e.Schedule(10, func() { r.Release(2) })
	})
	r.Acquire(1, func() {
		order = append(order, 2)
		e.Schedule(5, func() { r.Release(1) })
	})
	r.Acquire(1, func() {
		order = append(order, 3)
		e.Schedule(5, func() { r.Release(1) })
	})
	end := e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if end != 15 {
		t.Errorf("end = %v", end)
	}
	if r.InUse() != 0 {
		t.Errorf("inUse = %d", r.InUse())
	}
}

func TestResourceFIFONoOvertake(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cores", 4)
	var order []string
	r.Acquire(4, func() {
		order = append(order, "big1")
		e.Schedule(10, func() { r.Release(4) })
	})
	// big2 needs all 4, queued first.
	r.Acquire(4, func() {
		order = append(order, "big2")
		e.Schedule(10, func() { r.Release(4) })
	})
	// small could fit sooner, but FIFO means it must not overtake big2.
	r.Acquire(1, func() {
		order = append(order, "small")
		e.Schedule(1, func() { r.Release(1) })
	})
	e.Run()
	want := []string{"big1", "big2", "small"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestTryAcquire(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cores", 2)
	if !r.TryAcquire(2) {
		t.Fatal("first TryAcquire failed")
	}
	if r.TryAcquire(1) {
		t.Fatal("TryAcquire should fail when full")
	}
	r.Release(2)
	if !r.TryAcquire(1) {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestReleaseTooManyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e := NewEngine()
	r := NewResource(e, "cores", 2)
	r.Release(1)
}

func TestUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cores", 2)
	// One core busy for 10 of 10 seconds => utilization 0.5.
	r.Acquire(1, func() {
		e.Schedule(10, func() { r.Release(1) })
	})
	e.Run()
	if u := r.Utilization(); u < 0.49 || u > 0.51 {
		t.Errorf("utilization = %v", u)
	}
}

// Property: a random workload never oversubscribes the resource and always
// completes with zero in use.
func TestResourceConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		cap := 1 + rng.Intn(16)
		r := NewResource(e, "cores", cap)
		ok := true
		n := 50
		for i := 0; i < n; i++ {
			need := 1 + rng.Intn(cap)
			hold := float64(rng.Intn(20))
			delay := float64(rng.Intn(30))
			e.Schedule(delay, func() {
				r.Acquire(need, func() {
					if r.InUse() > r.Capacity() {
						ok = false
					}
					e.Schedule(hold, func() { r.Release(need) })
				})
			})
		}
		e.Run()
		return ok && r.InUse() == 0 && r.Waiting() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a single-unit resource, grant order equals request order.
func TestResourceFIFOProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		r := NewResource(e, "slot", 1)
		var requested, granted []int
		for i := 0; i < 30; i++ {
			i := i
			delay := float64(rng.Intn(5))
			e.Schedule(delay, func() {
				requested = append(requested, i)
				r.Acquire(1, func() {
					granted = append(granted, i)
					e.Schedule(float64(rng.Intn(3)), func() { r.Release(1) })
				})
			})
		}
		e.Run()
		if len(requested) != len(granted) {
			return false
		}
		for i := range requested {
			if requested[i] != granted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEventsCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(float64(i), func() {})
	}
	e.Run()
	if e.Events() != 5 {
		t.Errorf("events = %d", e.Events())
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d", e.Pending())
	}
}

func TestMakespanDeterminism(t *testing.T) {
	run := func() float64 {
		e := NewEngine()
		r := NewResource(e, "cores", 3)
		for i := 0; i < 100; i++ {
			dur := float64(1 + i%7)
			e.Schedule(float64(i%13), func() {
				r.Acquire(1+i%3, func() {
					e.Schedule(dur, func() { r.Release(1 + i%3) })
				})
			})
		}
		return e.Run()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("nondeterministic makespans: %v vs %v", a, b)
	}
	sort.Float64s([]float64{a, b}) // keep sort import honest
}
