package provider

import (
	"bufio"
	"fmt"
	"os"
	"strings"
	"testing"
)

// specConstants is what docs/PROTOCOL.md §1 must state, rendered the way the
// spec renders values: strings double-quoted, integers decimal, byte codes
// 0x-hex. Adding a protocol constant means adding it here AND to the spec
// table — the test fails when either side is missing or disagrees.
var specConstants = map[string]string{
	"ProtoVersion":     fmt.Sprintf("%d", ProtoVersion),
	"maxFrameBytes":    fmt.Sprintf("%d", maxFrameBytes),
	"maxHelloBytes":    fmt.Sprintf("%d", maxHelloBytes),
	"maxRecordBytes":   fmt.Sprintf("%d", maxRecordBytes),
	"frameKindTask":    fmt.Sprintf("%q", frameKindTask),
	"frameKindDrain":   fmt.Sprintf("%q", frameKindDrain),
	"frameKindResp":    fmt.Sprintf("%q", frameKindResp),
	"frameKindBeat":    fmt.Sprintf("%q", frameKindBeat),
	"frameKindBye":     fmt.Sprintf("%q", frameKindBye),
	"frameKindBatch":   fmt.Sprintf("%q", frameKindBatch),
	"capBatch":         fmt.Sprintf("%q", capBatch),
	"capBinary":        fmt.Sprintf("%q", capBinary),
	"CodecBinary":      fmt.Sprintf("%q", CodecBinary),
	"CodecJSON":        fmt.Sprintf("%q", CodecJSON),
	"defaultBatchMax":  fmt.Sprintf("%d", defaultBatchMax),
	"binKindTaskBatch": fmt.Sprintf("0x%02x", binKindTaskBatch),
	"binKindRespBatch": fmt.Sprintf("0x%02x", binKindRespBatch),
	"binKindBeat":      fmt.Sprintf("0x%02x", binKindBeat),
	"binKindDrain":     fmt.Sprintf("0x%02x", binKindDrain),
	"binKindBye":       fmt.Sprintf("0x%02x", binKindBye),
	"binFlagSharedDoc": fmt.Sprintf("0x%02x", binFlagSharedDoc),
	"binFlagDocInline": fmt.Sprintf("0x%02x", binFlagDocInline),
}

// TestProtocolSpecConstants keeps docs/PROTOCOL.md honest: its §1 constants
// table must name every protocol constant with the value the code actually
// uses, and must not name constants that no longer exist.
func TestProtocolSpecConstants(t *testing.T) {
	f, err := os.Open("../../docs/PROTOCOL.md")
	if err != nil {
		t.Fatalf("opening the protocol spec: %v", err)
	}
	defer f.Close()

	// Only the "## 1. Constants" section's table is normative-by-machine;
	// later sections tabulate field layouts whose first cells also use
	// backquotes.
	documented := map[string]string{}
	inSection := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "## ") {
			inSection = strings.Contains(line, "Constants")
			continue
		}
		if !inSection {
			continue
		}
		name, value, ok := parseConstantRow(line)
		if !ok {
			continue
		}
		if prev, dup := documented[name]; dup {
			t.Errorf("spec documents %s twice (%s and %s)", name, prev, value)
		}
		documented[name] = value
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading the protocol spec: %v", err)
	}
	if len(documented) == 0 {
		t.Fatal("found no constants table rows in docs/PROTOCOL.md")
	}

	for name, want := range specConstants {
		got, ok := documented[name]
		if !ok {
			t.Errorf("spec is missing constant %s (code value %s)", name, want)
			continue
		}
		if got != want {
			t.Errorf("spec says %s = %s, code says %s", name, got, want)
		}
	}
	for name, value := range documented {
		if _, ok := specConstants[name]; !ok {
			t.Errorf("spec documents %s = %s, which the code does not define (or docs_test.go does not check)", name, value)
		}
	}
}

// parseConstantRow extracts (name, value) from one constants-table row of
// the form `| `name` | value | meaning |`. Rows whose first cell is not a
// single backquoted identifier (headers, separators, prose tables) do not
// match. String values are backquote-wrapped in the table; the quotes
// inside are the comparison form.
func parseConstantRow(line string) (name, value string, ok bool) {
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, "|") {
		return "", "", false
	}
	cells := strings.Split(line, "|")
	// "| a | b | c |" splits into ["", " a ", " b ", " c ", ""].
	if len(cells) < 4 {
		return "", "", false
	}
	first := strings.TrimSpace(cells[1])
	if len(first) < 3 || first[0] != '`' || first[len(first)-1] != '`' {
		return "", "", false
	}
	name = first[1 : len(first)-1]
	if name == "" || strings.ContainsAny(name, " `") {
		return "", "", false
	}
	value = strings.TrimSpace(cells[2])
	if value == "" || strings.HasPrefix(value, "-") {
		return "", "", false
	}
	return name, value, true
}
