package provider

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// This file is the protocol's dispatch plane: the optional capabilities a
// version-2 hello may negotiate on top of the baseline JSON single-frame
// session — batched task/result frames and a compact binary codec — plus the
// frameBatcher both sides use to coalesce queued records into frames. The
// normative description of everything here lives in docs/PROTOCOL.md, which
// a conformance test (docs_test.go) keeps in sync with these constants.

// Capability names a worker may offer in its hello and the engine may grant
// back in the ack. A session only uses a capability both sides named; an
// empty intersection is the baseline protocol (one JSON frame per task),
// which is how mixed fleets of old and new workers coexist on one engine.
const (
	// capBatch: task and result frames may carry multiple records.
	capBatch = "batch"
	// capBinary: frames use the compact binary codec instead of JSON.
	capBinary = "binary"
)

// Codec names accepted by DispatchOptions.Codec.
const (
	// CodecBinary selects the compact binary codec (the default when the
	// worker offers it).
	CodecBinary = "binary"
	// CodecJSON forces the baseline JSON codec even for workers that offer
	// binary — a debugging escape hatch and the mixed-fleet fallback.
	CodecJSON = "json"
)

// defaultBatchMax is how many task or result records one frame may carry
// when the engine does not configure a limit.
const defaultBatchMax = 64

// maxRecordBytes bounds one encoded record so that a single-record frame
// (record plus frame envelope) always fits under maxFrameBytes.
const maxRecordBytes = maxFrameBytes - 1024

// Binary-codec frame kinds: the first byte of every binary frame body.
const (
	binKindTaskBatch byte = 0x01 // engine → worker: uvarint count, task records
	binKindRespBatch byte = 0x02 // worker → engine: uvarint count, response records
	binKindBeat      byte = 0x03 // worker → engine: uvarint in-flight count
	binKindDrain     byte = 0x04 // engine → worker: drain request (no body)
	binKindBye       byte = 0x05 // worker → engine: graceful goodbye (no body)
)

// Binary task-record flag bits.
const (
	// binFlagSharedDoc: the payload omits the tool document; a document hash
	// follows the payload and the worker must splice the document back in
	// from its session cache.
	binFlagSharedDoc byte = 1 << 0
	// binFlagDocInline: the document bytes follow the hash — sent the first
	// time a session ships a given document, cached by the worker after.
	binFlagDocInline byte = 1 << 1
)

// DispatchOptions tunes how an engine-side session acceptor uses the
// capabilities workers offer: frame batching, codec choice, and the
// batch size/linger caps. The zero value grants everything a worker
// offers with the default batch cap and no linger.
type DispatchOptions struct {
	// BatchMax caps how many tasks one frame may carry (default 64).
	BatchMax int
	// BatchLinger, when positive, lets a partially filled batch wait this
	// long for more tasks before the frame is sent. 0 sends greedily: a
	// frame carries whatever queued while the previous frame was in flight.
	BatchLinger time.Duration
	// Codec selects the frame codec: "" or CodecBinary prefers binary when
	// the worker offers it; CodecJSON forces the baseline JSON codec.
	Codec string
	// NoBatch disables frame batching even for workers that offer it.
	NoBatch bool
}

// sessionCaps is the negotiated result of one hello/ack exchange.
type sessionCaps struct {
	batch    bool
	binary   bool
	batchMax int
	linger   time.Duration
}

// negotiateCaps intersects what the worker offered with what the engine's
// dispatch options allow. Never grants a capability the worker did not
// offer.
func negotiateCaps(offered []string, d DispatchOptions) sessionCaps {
	c := sessionCaps{batchMax: d.BatchMax, linger: d.BatchLinger}
	if c.batchMax <= 0 {
		c.batchMax = defaultBatchMax
	}
	c.batch = hasCap(offered, capBatch) && !d.NoBatch
	c.binary = hasCap(offered, capBinary) && d.Codec != CodecJSON
	return c
}

// list renders the granted capabilities for the hello ack.
func (c sessionCaps) list() []string {
	var out []string
	if c.batch {
		out = append(out, capBatch)
	}
	if c.binary {
		out = append(out, capBinary)
	}
	return out
}

func hasCap(caps []string, name string) bool {
	for _, c := range caps {
		if c == name {
			return true
		}
	}
	return false
}

// WorkerCaps is the capability list a worker of this build announces in its
// hello, minus any the caller withholds. Withholding a capability is how a
// legacy JSON-only worker is emulated in tests and how operators force the
// baseline wire form for debugging.
func WorkerCaps(noBatch, noBinary bool) []string {
	var caps []string
	if !noBatch {
		caps = append(caps, capBatch)
	}
	if !noBinary {
		caps = append(caps, capBinary)
	}
	return caps
}

// SessionOptionsFromAck derives the serve options a granted hello ack
// implies: heartbeat interval plus the capabilities the engine granted.
func SessionOptionsFromAck(ack HelloAck, drain <-chan struct{}) WorkerSessionOptions {
	return WorkerSessionOptions{
		Heartbeat: time.Duration(ack.HeartbeatMs) * time.Millisecond,
		Drain:     drain,
		Batch:     hasCap(ack.Caps, capBatch),
		Binary:    hasCap(ack.Caps, capBinary),
		BatchMax:  ack.BatchMax,
	}
}

// --- binary codec: encoding ---

func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

func appendLenBytes(dst []byte, p []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(p)))
	return append(dst, p...)
}

func appendLenString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendBinaryTask renders one task record: uvarint id, length-prefixed
// kind, flags byte, length-prefixed payload, then — when flagged — the
// shared-document hash and, on first transfer, the document bytes.
func appendBinaryTask(dst []byte, id int64, kind string, payload []byte, docHash string, doc []byte) []byte {
	dst = appendUvarint(dst, uint64(id))
	dst = appendLenString(dst, kind)
	var flags byte
	if docHash != "" {
		flags |= binFlagSharedDoc
	}
	if doc != nil {
		flags |= binFlagDocInline
	}
	dst = append(dst, flags)
	dst = appendLenBytes(dst, payload)
	if docHash != "" {
		dst = appendLenString(dst, docHash)
	}
	if doc != nil {
		dst = appendLenBytes(dst, doc)
	}
	return dst
}

// appendBinaryResponse renders one response record: uvarint id, status byte
// (1 = ok), length-prefixed body (result JSON on success, error text on
// failure).
func appendBinaryResponse(dst []byte, resp workerResponse) []byte {
	dst = appendUvarint(dst, uint64(resp.ID))
	if resp.OK {
		dst = append(dst, 1)
		return appendLenBytes(dst, resp.Result)
	}
	dst = append(dst, 0)
	return appendLenString(dst, resp.Error)
}

// binBatchFrame assembles a binary batch frame: kind byte, uvarint record
// count, then the self-delimiting records.
func binBatchFrame(kind byte, records [][]byte) []byte {
	size := 1 + binary.MaxVarintLen64
	for _, r := range records {
		size += len(r)
	}
	dst := make([]byte, 0, size)
	dst = append(dst, kind)
	dst = appendUvarint(dst, uint64(len(records)))
	for _, r := range records {
		dst = append(dst, r...)
	}
	return dst
}

// binBeatFrame renders a binary heartbeat carrying the in-flight count.
func binBeatFrame(busy int) []byte {
	return appendUvarint([]byte{binKindBeat}, uint64(busy))
}

// --- binary codec: decoding ---

// binReader is a cursor over one binary frame body; the first decode error
// sticks and every later read returns zero values.
type binReader struct {
	b   []byte
	off int
	err error
}

func (r *binReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("binary frame truncated reading %s at offset %d", what, r.off)
	}
}

func (r *binReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) byte(what string) byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail(what)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// lenBytes reads a length-prefixed byte string; the result aliases the
// frame body.
func (r *binReader) lenBytes(what string) []byte {
	n := int(r.uvarint(what))
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail(what)
		return nil
	}
	v := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

func (r *binReader) done() bool { return r.err != nil || r.off >= len(r.b) }

// decodeRequests parses one engine → worker frame body into its requests.
// body aliases the connection scratch buffer; the binary path copies it
// first (task goroutines hold payload slices across frames), and the JSON
// path relies on json.Unmarshal copying everything it keeps. docs is the
// worker's per-session shared-document cache, owned by the read goroutine.
func decodeRequests(body []byte, binaryCodec bool, docs map[string][]byte) ([]workerRequest, error) {
	if !binaryCodec {
		var req workerRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		if req.Kind != frameKindBatch {
			return []workerRequest{req}, nil
		}
		reqs := make([]workerRequest, 0, len(req.Items))
		for _, item := range req.Items {
			var r workerRequest
			if err := json.Unmarshal(item, &r); err != nil {
				return nil, err
			}
			reqs = append(reqs, r)
		}
		return reqs, nil
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("empty binary frame")
	}
	buf := append([]byte(nil), body...)
	switch buf[0] {
	case binKindDrain:
		return []workerRequest{{Kind: frameKindDrain}}, nil
	case binKindTaskBatch:
		r := &binReader{b: buf, off: 1}
		count := int(r.uvarint("record count"))
		if r.err != nil {
			return nil, r.err
		}
		reqs := make([]workerRequest, 0, min(count, 4096))
		for i := 0; i < count; i++ {
			id := r.uvarint("task id")
			kind := string(r.lenBytes("task kind"))
			flags := r.byte("task flags")
			payload := r.lenBytes("task payload")
			req := workerRequest{ID: int64(id), Spec: &RemoteSpec{Kind: kind, Payload: payload}}
			if flags&binFlagSharedDoc != 0 {
				hash := string(r.lenBytes("document hash"))
				if flags&binFlagDocInline != 0 {
					// The document outlives this frame in the session cache;
					// detach it so the cache does not pin whole frames.
					doc := append([]byte(nil), r.lenBytes("document")...)
					if r.err == nil {
						docs[hash] = doc
						req.Spec.Doc = doc
					}
				} else if doc, ok := docs[hash]; ok {
					req.Spec.Doc = doc
				} else {
					req.DocErr = fmt.Sprintf("shared document %s is not in the session cache", hash)
				}
			}
			if r.err != nil {
				return nil, r.err
			}
			reqs = append(reqs, req)
		}
		return reqs, nil
	default:
		return nil, fmt.Errorf("unknown binary frame kind 0x%02x", buf[0])
	}
}

// decodeResponses parses one worker → engine frame body into its responses.
// Copying discipline mirrors decodeRequests.
func decodeResponses(body []byte, binaryCodec bool) ([]workerResponse, error) {
	if !binaryCodec {
		var resp workerResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			return nil, err
		}
		if resp.Kind != frameKindBatch {
			return []workerResponse{resp}, nil
		}
		resps := make([]workerResponse, 0, len(resp.Items))
		for _, item := range resp.Items {
			var r workerResponse
			if err := json.Unmarshal(item, &r); err != nil {
				return nil, err
			}
			resps = append(resps, r)
		}
		return resps, nil
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("empty binary frame")
	}
	buf := append([]byte(nil), body...)
	switch buf[0] {
	case binKindBye:
		return []workerResponse{{Kind: frameKindBye}}, nil
	case binKindBeat:
		r := &binReader{b: buf, off: 1}
		busy := int(r.uvarint("busy count"))
		if r.err != nil {
			return nil, r.err
		}
		return []workerResponse{{Kind: frameKindBeat, Busy: busy}}, nil
	case binKindRespBatch:
		r := &binReader{b: buf, off: 1}
		count := int(r.uvarint("record count"))
		if r.err != nil {
			return nil, r.err
		}
		resps := make([]workerResponse, 0, min(count, 4096))
		for i := 0; i < count; i++ {
			id := r.uvarint("response id")
			status := r.byte("response status")
			bodyBytes := r.lenBytes("response body")
			if r.err != nil {
				return nil, r.err
			}
			resp := workerResponse{ID: int64(id)}
			if status == 1 {
				resp.OK = true
				resp.Result = bodyBytes
			} else {
				resp.Error = string(bodyBytes)
			}
			resps = append(resps, resp)
		}
		return resps, nil
	default:
		return nil, fmt.Errorf("unknown binary frame kind 0x%02x", buf[0])
	}
}

// --- frame batching ---

// batcherConfig configures one frameBatcher.
type batcherConfig struct {
	binary bool
	kind   byte // binary batch frame kind (task or response)
	max    int
	linger time.Duration
	// onDead, when set, runs once after a frame write fails; queued and
	// future records are dropped (the session is over).
	onDead func()
}

// frameBatcher coalesces pre-encoded records into batch frames on one
// FrameConn. Producers enqueue concurrently; a single writer goroutine
// drains greedily — each frame carries every record that queued while the
// previous frame was being written, up to the batch cap — which keeps
// latency at one write under light load and amortizes framing under heavy
// load without any timer in the hot path.
type frameBatcher struct {
	fc  *FrameConn
	cfg batcherConfig

	kick chan struct{}
	stop chan struct{}
	done chan struct{}

	stopOnce sync.Once

	mu    sync.Mutex
	queue [][]byte
	dead  bool
}

func newFrameBatcher(fc *FrameConn, cfg batcherConfig) *frameBatcher {
	if cfg.max <= 0 {
		cfg.max = defaultBatchMax
	}
	b := &frameBatcher{
		fc:   fc,
		cfg:  cfg,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go b.run()
	return b
}

// enqueue queues one pre-encoded record, reporting false when the writer has
// stopped (the record will never be sent).
func (b *frameBatcher) enqueue(rec []byte) bool {
	b.mu.Lock()
	if b.dead {
		b.mu.Unlock()
		return false
	}
	b.queue = append(b.queue, rec)
	b.mu.Unlock()
	select {
	case b.kick <- struct{}{}:
	default:
	}
	return true
}

// close flushes queued records and stops the writer, blocking until it has
// exited. Graceful-teardown path (worker drain).
func (b *frameBatcher) close() {
	b.stopOnce.Do(func() { close(b.stop) })
	<-b.done
}

// kill stops the writer without flushing or blocking — the session is dead,
// so queued records are undeliverable. Safe to call from the writer's own
// failure path.
func (b *frameBatcher) kill() {
	b.mu.Lock()
	b.dead = true
	b.queue = nil
	b.mu.Unlock()
	b.stopOnce.Do(func() { close(b.stop) })
}

func (b *frameBatcher) run() {
	defer close(b.done)
	for {
		select {
		case <-b.stop:
			b.flush()
			b.mu.Lock()
			b.dead = true
			b.mu.Unlock()
			return
		case <-b.kick:
			if !b.flush() {
				return
			}
		}
	}
}

// take dequeues up to max records whose combined size (plus base) stays
// under the frame cap. A single over-budget record is still taken alone;
// the per-record cap (maxRecordBytes) keeps it frameable.
func (b *frameBatcher) take(max, base int) [][]byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	n, size := 0, base
	for n < len(b.queue) && n < max {
		size += len(b.queue[n]) + 2*binary.MaxVarintLen64
		if n > 0 && size > maxRecordBytes {
			break
		}
		n++
	}
	recs := b.queue[:n:n]
	b.queue = b.queue[n:]
	return recs
}

// flush drains the queue into frames; false means the connection failed and
// the writer must exit.
func (b *frameBatcher) flush() bool {
	for {
		recs := b.take(b.cfg.max, 0)
		if len(recs) == 0 {
			return true
		}
		if b.cfg.linger > 0 && len(recs) < b.cfg.max {
			size := 0
			for _, r := range recs {
				size += len(r)
			}
			time.Sleep(b.cfg.linger)
			recs = append(recs, b.take(b.cfg.max-len(recs), size)...)
		}
		var frame []byte
		if b.cfg.binary {
			frame = binBatchFrame(b.cfg.kind, recs)
		} else {
			frame = jsonBatchFrame(recs)
		}
		observeBatch(len(recs), b.cfg.binary)
		if err := b.fc.SendEncoded(frame); err != nil {
			b.mu.Lock()
			b.dead = true
			b.queue = nil
			b.mu.Unlock()
			if b.cfg.onDead != nil {
				b.cfg.onDead()
			}
			return false
		}
		metFramesSent.Inc()
	}
}

// jsonBatchFrame assembles a JSON batch envelope by concatenating the
// pre-encoded records: {"kind":"batch","items":[r1,r2,...]}.
func jsonBatchFrame(records [][]byte) []byte {
	size := len(`{"kind":"batch","items":[]}`) + len(records)
	for _, r := range records {
		size += len(r)
	}
	dst := make([]byte, 0, size)
	dst = append(dst, `{"kind":"batch","items":[`...)
	for i, r := range records {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, r...)
	}
	return append(dst, `]}`...)
}
