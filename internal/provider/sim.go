package provider

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/slurmsim"
)

// SimOptions configures a SimProvider.
type SimOptions struct {
	// Nodes/CoresPerNode size the simulated cluster (defaults 3 × 48, the
	// paper's testbed).
	Nodes        int
	CoresPerNode int
	// Scheduler configures the simulated Slurm batch system (zero value
	// selects slurmsim.DefaultOptions).
	Scheduler slurmsim.Options
	// TimeScale maps virtual seconds to real time (default 1ms of wall clock
	// per virtual second, so the default ~2.8s queue path costs ~3ms).
	TimeScale time.Duration
	// Walltime kills a block after this much virtual time allocated, like a
	// batch job exceeding its time limit (0 = unlimited).
	Walltime float64
	// LaunchTimeout bounds how long Launch waits (in real time) for the
	// simulated scheduler to grant the block (default 30s).
	LaunchTimeout time.Duration
}

// SimProvider adapts the simulated cluster and Slurm scheduler
// (internal/cluster, internal/slurmsim) as an execution provider: each block
// is a whole-node pilot job submitted to the simulated batch queue. Queue
// delays, walltime kills, and node preemption become testable scenarios while
// tasks still execute for real in the engine process.
type SimProvider struct {
	opts  SimOptions
	eng   *sim.Engine
	sched *slurmsim.Scheduler

	cmds  chan func()
	stop  chan struct{}
	once  sync.Once
	start sync.Once

	mu     sync.Mutex
	blocks map[int]*simHandle
}

// NewSimProvider builds a SimProvider.
func NewSimProvider(opts SimOptions) *SimProvider {
	if opts.Nodes <= 0 {
		opts.Nodes = 3
	}
	if opts.CoresPerNode <= 0 {
		opts.CoresPerNode = 48
	}
	if opts.Scheduler == (slurmsim.Options{}) {
		opts.Scheduler = slurmsim.DefaultOptions()
	}
	if opts.TimeScale <= 0 {
		opts.TimeScale = time.Millisecond
	}
	if opts.LaunchTimeout <= 0 {
		opts.LaunchTimeout = 30 * time.Second
	}
	eng := sim.NewEngine()
	cl := cluster.New(eng, opts.Nodes, opts.CoresPerNode)
	return &SimProvider{
		opts:   opts,
		eng:    eng,
		sched:  slurmsim.New(eng, cl, opts.Scheduler),
		cmds:   make(chan func()),
		stop:   make(chan struct{}),
		blocks: map[int]*simHandle{},
	}
}

// Name implements ExecutionProvider.
func (p *SimProvider) Name() string { return "sim" }

// drive runs the simulation engine on a dedicated goroutine, advancing the
// virtual clock in step with real time (TimeScale wall clock per virtual
// second). All engine and scheduler access funnels through p.cmds, keeping
// the single-goroutine simulator race-free under a concurrent executor.
func (p *SimProvider) drive() {
	started := time.Now()
	tick := p.opts.TimeScale / 4
	if tick < 200*time.Microsecond {
		tick = 200 * time.Microsecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case fn := <-p.cmds:
			fn()
		case <-ticker.C:
			target := float64(time.Since(started)) / float64(p.opts.TimeScale)
			p.eng.RunUntil(target)
		}
	}
}

// do runs fn on the simulation goroutine and waits for it.
func (p *SimProvider) do(fn func()) {
	p.start.Do(func() { go p.drive() })
	done := make(chan struct{})
	select {
	case p.cmds <- func() { fn(); close(done) }:
		<-done
	case <-p.stop:
	}
}

// Launch implements ExecutionProvider: submit a one-node pilot job and block
// until the simulated scheduler grants it (real time = queue wait × TimeScale).
func (p *SimProvider) Launch(block int) (ManagerHandle, error) {
	h := &simHandle{provider: p, block: block, dead: make(chan struct{})}
	granted := make(chan struct{})
	p.do(func() {
		job := &slurmsim.Job{
			Name:  fmt.Sprintf("block-%d", block),
			Nodes: 1,
			Run: func(alloc []string, done func()) {
				h.alloc = strings.Join(alloc, ",")
				h.done = done
				h.state.Store(int32(stateRunning))
				if p.opts.Walltime > 0 {
					p.eng.Schedule(p.opts.Walltime, func() { h.die("walltime exceeded") })
				}
				close(granted)
			},
		}
		h.jobID = p.sched.Submit(job)
		p.mu.Lock()
		p.blocks[block] = h
		p.mu.Unlock()
	})
	select {
	case <-granted:
		metBlocksLaunched.With("sim").Inc()
		return h, nil
	case <-p.stop:
		return nil, fmt.Errorf("sim provider canceled while block %d was queued", block)
	case <-time.After(p.opts.LaunchTimeout):
		// The grant may race the timeout (it can land between the timer
		// firing and this cleanup). closeSim handles both sides on the sim
		// goroutine: still queued → scancel; already granted → release the
		// allocation, so an abandoned launch can never pin a simulated node.
		p.do(func() { h.closeSim() })
		return nil, fmt.Errorf("sim block %d not granted within %s (queue length %d)",
			block, p.opts.LaunchTimeout, p.QueueLength())
	}
}

// QueueLength reports pending pilot jobs in the simulated batch queue.
func (p *SimProvider) QueueLength() int {
	n := 0
	p.do(func() { n = p.sched.QueueLength() })
	return n
}

// Preempt kills a running block as if its node were preempted: tasks in
// flight on it fail with ErrWorkerLost and the executor re-dispatches them.
// It reports whether a live block with that id existed.
func (p *SimProvider) Preempt(block int) bool {
	hit := false
	p.do(func() {
		p.mu.Lock()
		h := p.blocks[block]
		p.mu.Unlock()
		if h != nil && h.state.Load() == int32(stateRunning) {
			h.die("node preempted")
			hit = true
		}
	})
	return hit
}

// Status implements ExecutionProvider.
func (p *SimProvider) Status() map[int]BlockStatus {
	out := map[int]BlockStatus{}
	p.do(func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		for id, h := range p.blocks {
			out[id] = h.status()
		}
	})
	return out
}

// Cancel implements ExecutionProvider.
func (p *SimProvider) Cancel() error {
	p.do(func() {
		p.mu.Lock()
		blocks := make([]*simHandle, 0, len(p.blocks))
		for _, h := range p.blocks {
			blocks = append(blocks, h)
		}
		p.mu.Unlock()
		for _, h := range blocks {
			h.closeSim()
		}
	})
	p.once.Do(func() { close(p.stop) })
	return nil
}

// Utilization reports mean simulated core utilization (diagnostics).
func (p *SimProvider) Utilization() float64 {
	var u float64
	p.do(func() { u = p.sched.Cluster().Utilization() })
	return u
}

// BlockIDs returns the ids of blocks the provider has seen, sorted.
func (p *SimProvider) BlockIDs() []int {
	var ids []int
	p.do(func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		for id := range p.blocks {
			ids = append(ids, id)
		}
	})
	sort.Ints(ids)
	return ids
}

const (
	stateQueued int32 = iota
	stateRunning
	stateDead
	stateClosed
)

// simHandle is one granted (or queued) pilot block. Tasks run for real on the
// caller's goroutine, racing the simulated walltime/preemption kill.
type simHandle struct {
	provider *SimProvider
	block    int
	jobID    int
	alloc    string
	done     func() // releases the simulated allocation; sim goroutine only
	reason   string
	state    atomic.Int32
	dead     chan struct{}
	deadOnce sync.Once
}

// Block implements ManagerHandle.
func (h *simHandle) Block() int { return h.block }

// die marks the block dead and releases its simulated allocation. Runs on the
// simulation goroutine.
func (h *simHandle) die(reason string) {
	if h.state.Load() != int32(stateRunning) {
		return
	}
	switch reason {
	case "walltime exceeded":
		metSimWalltimeKills.Inc()
	case "node preempted":
		metSimPreemptions.Inc()
	}
	metWorkerLost.With("sim").Inc()
	h.reason = reason
	h.state.Store(int32(stateDead))
	h.deadOnce.Do(func() { close(h.dead) })
	if h.done != nil {
		h.done()
	}
}

// closeSim shuts the block down from the simulation goroutine.
func (h *simHandle) closeSim() {
	switch h.state.Load() {
	case int32(stateQueued):
		h.provider.sched.Cancel(h.jobID)
	case int32(stateRunning):
		if h.done != nil {
			h.done()
		}
	}
	h.state.Store(int32(stateClosed))
	h.deadOnce.Do(func() { close(h.dead) })
}

// Run implements ManagerHandle: execute the task for real, racing the block's
// simulated death (walltime kill or preemption).
func (h *simHandle) Run(t *Task) (any, error) {
	select {
	case <-h.dead:
		return nil, fmt.Errorf("sim block %d is gone (%s): %w", h.block, h.deathReason(), ErrWorkerLost)
	default:
	}
	type outcome struct {
		res any
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := guard(t.Fn)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-h.dead:
		return nil, fmt.Errorf("sim block %d died mid-task (%s): %w", h.block, h.deathReason(), ErrWorkerLost)
	}
}

func (h *simHandle) deathReason() string {
	if h.reason != "" {
		return h.reason
	}
	return "closed"
}

// Alive implements ManagerHandle.
func (h *simHandle) Alive() bool { return h.state.Load() == int32(stateRunning) }

// Close implements ManagerHandle.
func (h *simHandle) Close() error {
	h.provider.do(func() { h.closeSim() })
	return nil
}

func (h *simHandle) status() BlockStatus {
	switch h.state.Load() {
	case int32(stateQueued):
		return BlockStatus{State: BlockQueued, Detail: fmt.Sprintf("job %d pending", h.jobID)}
	case int32(stateRunning):
		return BlockStatus{State: BlockRunning, Detail: h.alloc}
	case int32(stateDead):
		return BlockStatus{State: BlockDead, Detail: h.reason}
	default:
		return BlockStatus{State: BlockClosed, Detail: h.alloc}
	}
}
