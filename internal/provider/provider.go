// Package provider implements Parsl's execution-provider abstraction for the
// reproduced engine: the layer that decouples *where* pilot blocks run from
// the HighThroughputExecutor that schedules tasks onto them (Babuji et al.,
// "Parsl: Pervasive Parallel Programming in Python", §4).
//
// A provider launches blocks; each block is one manager — an execution
// endpoint the executor feeds tasks. Three implementations cover the paper's
// deployment range:
//
//   - LocalProvider: in-process goroutine managers (the single-machine and
//     in-allocation deployments). A task runs as a plain function call.
//   - ProcessProvider: each block is a real OS subprocess running the
//     parsl-cwl-worker binary, speaking a length-prefixed JSON protocol over
//     stdin/stdout pipes. A worker segfault, OOM kill, or SIGKILL surfaces as
//     ErrWorkerLost instead of taking the engine down.
//   - SimProvider: blocks are pilot jobs submitted to the simulated Slurm
//     scheduler over the simulated cluster (internal/slurmsim,
//     internal/cluster), so queue delays, walltime kills, and node preemption
//     become testable scenarios.
//
// A fourth implementation — the network fabric's NetProvider, where remote
// workers dial the engine's interchange listener over TCP/TLS — lives in
// internal/fabric and builds on this package's transport-agnostic worker
// session layer (FrameConn, AcceptWorkerSession, ManagerSession).
package provider

import (
	"errors"
	"fmt"
)

// ErrWorkerLost marks an execution-infrastructure failure: the block that was
// running (or about to run) the task died — worker process exited, sim node
// preempted, walltime expired. The task itself did not necessarily fail; the
// executor should re-dispatch it to another block.
var ErrWorkerLost = errors.New("worker lost")

// Task is the provider-facing unit of work.
type Task struct {
	// ID identifies the task across re-dispatches (the DFK task id).
	ID int
	// Fn executes the task in-process. It is always set and is the fallback
	// for managers that cannot ship work out of process.
	Fn func() (any, error)
	// Remote, when non-nil, describes the task in a serializable form that
	// process-isolated workers can execute out of process. Managers that do
	// not cross a process boundary ignore it and call Fn.
	Remote *RemoteSpec
}

// ManagerHandle is one launched block: an execution endpoint owned by the
// executor-side manager bookkeeping.
type ManagerHandle interface {
	// Block returns the executor-assigned block id this handle serves.
	Block() int
	// Run executes one task to completion and returns its result. It is safe
	// for concurrent use (up to the executor's workers-per-node). An error
	// wrapping ErrWorkerLost reports that the block died — the caller should
	// re-dispatch the task; any other error is the task's own failure.
	Run(t *Task) (any, error)
	// Alive reports whether the block is still healthy. The executor's
	// heartbeat stops beating for a dead handle, which triggers loss
	// detection and re-dispatch.
	Alive() bool
	// Close terminates the block and releases its resources. Idempotent.
	Close() error
}

// BlockState is the lifecycle state of one provider block.
type BlockState string

const (
	// BlockQueued means the block is waiting for resources (e.g. in the
	// simulated scheduler's queue).
	BlockQueued BlockState = "queued"
	// BlockRunning means the block is live and accepting tasks.
	BlockRunning BlockState = "running"
	// BlockDead means the block died (process exit, walltime, preemption)
	// before being closed.
	BlockDead BlockState = "dead"
	// BlockClosed means the block was shut down by the executor.
	BlockClosed BlockState = "closed"
)

// BlockStatus describes one block for monitoring surfaces (/healthz).
type BlockStatus struct {
	State BlockState `json:"state"`
	// Detail is provider-specific: a worker pid, a sim node allocation, a
	// death reason.
	Detail string `json:"detail,omitempty"`
}

// ExecutionProvider launches and tracks pilot blocks, mirroring
// parsl.providers.base.ExecutionProvider's submit/status/cancel contract.
type ExecutionProvider interface {
	// Name identifies the provider ("local", "process", "sim", "net").
	Name() string
	// Launch starts one block with the executor-assigned id and returns its
	// handle. It blocks until the block is usable — for a batch provider this
	// includes queue time.
	Launch(block int) (ManagerHandle, error)
	// Status reports every block this provider has launched, keyed by block
	// id. Closed and dead blocks remain visible until Cancel.
	Status() map[int]BlockStatus
	// Cancel tears down every block the provider launched. The provider is
	// unusable afterwards.
	Cancel() error
}

// RemoteCapable is an optional ExecutionProvider extension: providers whose
// handles ship RemoteSpecs across a process boundary report true, telling
// the submission path it is worth serializing invocations at all. Providers
// that run every task in-process (local, sim) simply do not implement it.
type RemoteCapable interface {
	RemoteCapable() bool
}

// isWorkerLostErr reports whether err marks an execution-infrastructure
// failure (ErrWorkerLost anywhere in its chain).
func isWorkerLostErr(err error) bool { return errors.Is(err, ErrWorkerLost) }

// Guard runs fn converting panics to errors, so a bad task cannot kill the
// hosting worker goroutine. Exported for out-of-package providers (the
// network fabric) that need the same in-process fallback behavior.
func Guard(fn func() (any, error)) (res any, err error) {
	return guard(fn)
}

// guard runs fn converting panics to errors, so a bad task cannot kill the
// hosting worker goroutine.
func guard(fn func() (any, error)) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("task panicked: %v", r)
		}
	}()
	return fn()
}
