package provider

import (
	"fmt"
	"testing"
)

// BenchmarkCodecEncode compares the cost of encoding full dispatch batches
// (defaultBatchMax tasks each) as legacy JSON frames versus the compact
// binary task-batch frame — the encode half of the throughput gap the binary
// codec exists to close. Each op encodes codecEncodeRounds batches so the
// single-shot CI run (-benchtime=1x) measures real work rather than timer
// noise.
func BenchmarkCodecEncode(b *testing.B) {
	const codecEncodeRounds = 100
	specs := make([]*RemoteSpec, defaultBatchMax)
	for i := range specs {
		spec, err := NewEchoSpec(map[string]any{
			"task":  i,
			"value": fmt.Sprintf("payload-%d", i),
			"args":  []any{"alpha", "beta", float64(i)},
		})
		if err != nil {
			b.Fatal(err)
		}
		specs[i] = spec
	}

	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for round := 0; round < codecEncodeRounds; round++ {
				records := make([][]byte, 0, len(specs))
				for id, spec := range specs {
					rec, err := encodeFrame(workerRequest{ID: int64(id), Spec: spec})
					if err != nil {
						b.Fatal(err)
					}
					records = append(records, rec)
				}
				if frame := jsonBatchFrame(records); len(frame) == 0 {
					b.Fatal("empty frame")
				}
			}
		}
	})

	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for round := 0; round < codecEncodeRounds; round++ {
				records := make([][]byte, 0, len(specs))
				for id, spec := range specs {
					records = append(records, appendBinaryTask(nil, int64(id), spec.Kind, spec.Payload, "", nil))
				}
				if frame := binBatchFrame(binKindTaskBatch, records); len(frame) == 0 {
					b.Fatal("empty frame")
				}
			}
		}
	})
}
