package provider

import (
	"bufio"
	"crypto/subtle"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// The worker protocol is a transport-agnostic session layer: each side writes
// frames of a 4-byte big-endian length followed by that many bytes of JSON.
// A session opens with a handshake — the worker writes one hello frame
// (protocol version, identity, capacity, shared secret) and the engine
// answers with an ack accepting or rejecting it — and then carries task
// traffic: the engine writes run requests, the worker writes one response per
// request in completion order (requests execute concurrently; responses are
// matched by id). Sessions with a negotiated heartbeat interval additionally
// carry worker → engine heartbeat frames, and either side can end the session
// gracefully: the engine with a drain frame (or by closing its write side),
// the worker by finishing its in-flight tasks and sending a bye frame.
//
// The hello/ack exchange also negotiates optional capabilities (codec.go):
// batched task/result frames and a compact binary codec. A session uses only
// what both sides named, so old JSON-only workers and new binary workers
// coexist on one engine. docs/PROTOCOL.md is the normative spec.
//
// The same session runs over any byte stream. ProcessProvider speaks it over
// a worker subprocess's stdin/stdout pipes; the network fabric
// (internal/fabric) speaks it over TCP/TLS connections.

// ProtoVersion is the worker protocol version; the engine refuses workers
// that announce a different one. Version 2 added the session layer: hello
// acknowledgement, worker identity/capacity/secret in the hello, and
// heartbeat/drain/bye frames.
const ProtoVersion = 2

// maxFrameBytes bounds one frame so a corrupt length prefix cannot make
// either side allocate unbounded memory.
const maxFrameBytes = 64 << 20

// maxHelloBytes bounds the first (pre-authentication) frame of a session:
// an unauthenticated peer must not be able to make the engine allocate a
// task-sized buffer.
const maxHelloBytes = 64 << 10

// ErrHelloRejected marks a handshake the engine refused — wrong protocol
// version or failed authentication. Workers must treat it as terminal
// (retrying with the same credentials cannot succeed).
var ErrHelloRejected = errors.New("hello rejected")

// ErrBadSecret marks a hello whose shared secret did not match the
// engine's. It wraps ErrHelloRejected.
var ErrBadSecret = fmt.Errorf("%w: shared secret mismatch", ErrHelloRejected)

// Hello is the worker's first frame: protocol announcement, identity and
// credentials. Over pipes only Proto and PID are meaningful; network workers
// additionally carry an identity, a capacity hint and the shared secret.
type Hello struct {
	Proto int `json:"proto"`
	PID   int `json:"pid"`
	// ID names the worker across reconnects ("" for pipe workers, whose
	// identity is the process itself).
	ID string `json:"id,omitempty"`
	// Capacity is how many tasks the worker is willing to run concurrently
	// (advisory; 0 = unstated).
	Capacity int `json:"capacity,omitempty"`
	// Secret authenticates the worker to the engine. Verified before any
	// task frame is exchanged.
	Secret string `json:"secret,omitempty"`
	// Caps lists the optional protocol capabilities this worker supports
	// (batched frames, binary codec). The engine grants a subset in its ack;
	// an absent list is the baseline protocol, which is how workers built
	// before the capability exchange keep working unchanged.
	Caps []string `json:"caps,omitempty"`
}

// HelloAck is the engine's answer to a hello: acceptance or rejection, and
// the session parameters the worker must follow.
type HelloAck struct {
	Proto int    `json:"proto"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// HeartbeatMs asks the worker to send a heartbeat frame this often
	// (0 = no heartbeats, the pipe transport's mode).
	HeartbeatMs int `json:"heartbeatMs,omitempty"`
	// Caps is the subset of the hello's capabilities the engine granted;
	// the whole session after this ack speaks the granted form.
	Caps []string `json:"caps,omitempty"`
	// BatchMax caps the records per batch frame when the batch capability
	// is granted (0 = the protocol default).
	BatchMax int `json:"batchMax,omitempty"`
}

// Engine → worker frame kinds.
const (
	frameKindTask  = ""      // run request (the default, version-1 shape)
	frameKindDrain = "drain" // finish in-flight tasks, send bye, end session
)

// Worker → engine frame kinds.
const (
	frameKindResp = ""    // task response (the default, version-1 shape)
	frameKindBeat = "hb"  // liveness heartbeat
	frameKindBye  = "bye" // graceful deregistration: in-flight work is done
)

// frameKindBatch is a frame carrying multiple task or response frames in its
// items array. Either direction; only sent on sessions that negotiated the
// batch capability.
const frameKindBatch = "batch"

// workerRequest is one engine → worker frame: a run request (Kind "") or a
// session-control frame.
type workerRequest struct {
	Kind string      `json:"kind,omitempty"`
	ID   int64       `json:"id,omitempty"`
	Spec *RemoteSpec `json:"spec,omitempty"`
	// Items carries the batched requests of a frameKindBatch frame.
	Items []json.RawMessage `json:"items,omitempty"`
	// DocErr is set by the binary decoder when a task referenced a shared
	// document the session never transferred: the task must fail without
	// executing. Never serialized.
	DocErr string `json:"-"`
}

// workerResponse is one worker → engine frame: a task result (Kind "") or a
// session-control frame (heartbeat, bye).
type workerResponse struct {
	Kind   string          `json:"kind,omitempty"`
	ID     int64           `json:"id,omitempty"`
	OK     bool            `json:"ok,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	// Busy is the worker's in-flight task count, carried on heartbeats.
	Busy int `json:"busy,omitempty"`
	// Items carries the batched responses of a frameKindBatch frame.
	Items []json.RawMessage `json:"items,omitempty"`
}

// writeFrame writes one length-prefixed JSON frame.
func writeFrame(w io.Writer, v any) error {
	body, err := encodeFrame(v)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame reads one length-prefixed JSON frame into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameBytes {
		return fmt.Errorf("frame of %d bytes exceeds the %d byte protocol limit", n, maxFrameBytes)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// encodeFrame renders a frame body, enforcing the size cap. Encoding errors
// are local to the value being sent — they say nothing about the health of
// the stream.
func encodeFrame(v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	if len(body) > maxFrameBytes {
		return nil, fmt.Errorf("frame of %d bytes exceeds the %d byte protocol limit", len(body), maxFrameBytes)
	}
	return body, nil
}

// FrameConn frames one bidirectional byte stream: reads are single-consumer
// and reuse a per-connection scratch buffer (the hot read loops run one frame
// per task, so a fresh allocation per frame is pure garbage); writes are
// serialized by a mutex so concurrent task goroutines can share the stream.
type FrameConn struct {
	r       *bufio.Reader
	scratch []byte
	closer  io.Closer

	wmu sync.Mutex
	w   *bufio.Writer
}

// NewFrameConn builds a FrameConn over a read and a write stream. closer,
// when non-nil, is what Close closes (for a net.Conn, the conn itself).
// At most one goroutine may call Read concurrently; Send is safe for
// concurrent use.
func NewFrameConn(r io.Reader, w io.Writer, closer io.Closer) *FrameConn {
	return &FrameConn{r: bufio.NewReader(r), w: bufio.NewWriter(w), closer: closer}
}

// Read reads one frame into v.
func (fc *FrameConn) Read(v any) error { return fc.readMax(v, maxFrameBytes) }

// readMax reads one frame of at most max bytes into v. The body is decoded
// from the connection's scratch buffer; json.Unmarshal copies everything it
// keeps (including json.RawMessage fields), so reusing the buffer across
// frames is safe.
func (fc *FrameConn) readMax(v any, max int) error {
	body, err := fc.readRawMax(max)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// ReadRaw reads one frame body without decoding it. The returned slice
// aliases the connection's scratch buffer and is only valid until the next
// read; decoders must copy whatever outlives the frame.
func (fc *FrameConn) ReadRaw() ([]byte, error) { return fc.readRawMax(maxFrameBytes) }

func (fc *FrameConn) readRawMax(max int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fc.r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > max {
		return nil, fmt.Errorf("frame of %d bytes exceeds the %d byte limit", n, max)
	}
	if cap(fc.scratch) < n {
		fc.scratch = make([]byte, n)
	}
	body := fc.scratch[:n]
	if _, err := io.ReadFull(fc.r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// Send writes one frame.
func (fc *FrameConn) Send(v any) error {
	body, err := encodeFrame(v)
	if err != nil {
		return err
	}
	return fc.SendEncoded(body)
}

// SendEncoded writes one pre-encoded frame; an error here is a genuine
// stream failure.
func (fc *FrameConn) SendEncoded(body []byte) error {
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := fc.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := fc.w.Write(body); err != nil {
		return err
	}
	return fc.w.Flush()
}

// Close closes the underlying stream, if the FrameConn owns one.
func (fc *FrameConn) Close() error {
	if fc.closer != nil {
		return fc.closer.Close()
	}
	return nil
}

// VerifyHello is the single place protocol negotiation happens: version
// check, then constant-time shared-secret comparison. An empty engine secret
// disables authentication (the pipe transport, where the kernel already
// guarantees who is on the other end).
func VerifyHello(h Hello, secret string) error {
	if h.Proto != ProtoVersion {
		return fmt.Errorf("%w: worker speaks protocol %d, engine wants %d", ErrHelloRejected, h.Proto, ProtoVersion)
	}
	if secret != "" && subtle.ConstantTimeCompare([]byte(h.Secret), []byte(secret)) != 1 {
		return ErrBadSecret
	}
	return nil
}

// DialWorkerSession performs the worker side of the handshake: send hello,
// await the engine's ack. The hello's Proto is forced to ProtoVersion. A
// rejection surfaces as an error wrapping ErrHelloRejected.
func DialWorkerSession(fc *FrameConn, hello Hello) (HelloAck, error) {
	hello.Proto = ProtoVersion
	if err := fc.Send(hello); err != nil {
		return HelloAck{}, fmt.Errorf("worker hello: %w", err)
	}
	var ack HelloAck
	if err := fc.readMax(&ack, maxHelloBytes); err != nil {
		return HelloAck{}, fmt.Errorf("reading hello ack: %w", err)
	}
	if !ack.OK {
		msg := ack.Error
		if msg == "" {
			msg = "engine refused the session"
		}
		return ack, fmt.Errorf("%w: %s", ErrHelloRejected, msg)
	}
	if ack.Proto != ProtoVersion {
		return ack, fmt.Errorf("%w: engine speaks protocol %d, worker wants %d", ErrHelloRejected, ack.Proto, ProtoVersion)
	}
	return ack, nil
}

// WorkerSessionOptions configures the worker side of one session.
type WorkerSessionOptions struct {
	// Heartbeat, when positive, sends a heartbeat frame this often (the
	// interval the engine announced in its hello ack).
	Heartbeat time.Duration
	// Drain, when non-nil, triggers a graceful drain when closed: stop
	// accepting requests, finish in-flight tasks, send final responses and a
	// bye frame, return nil. Used for SIGTERM/SIGINT shutdown.
	Drain <-chan struct{}
	// Batch/Binary mirror the capabilities the engine granted in its hello
	// ack (use SessionOptionsFromAck); the session's frames follow them.
	Batch  bool
	Binary bool
	// BatchMax caps records per result frame when Batch is set (0 = the
	// protocol default).
	BatchMax int
}

// ServeWorkerSession runs the worker side of an established session: execute
// run requests concurrently, one response per request. It returns nil after
// a graceful end — engine EOF/drain frame, or the Drain channel closing —
// with every in-flight task finished and its response sent, or the first
// protocol-level error otherwise.
func ServeWorkerSession(fc *FrameConn, opts WorkerSessionOptions) error {
	var wg sync.WaitGroup
	var inflight atomic.Int64

	// The reader runs in its own goroutine so the main loop can also honor
	// the drain signal; after a drain it may stay blocked in a read until
	// the process exits or the caller closes the connection.
	sessDone := make(chan struct{})
	defer close(sessDone)
	frames := make(chan workerRequest)
	readErr := make(chan error, 1)
	go func() {
		// docs is the session's shared-document cache (binary codec): the
		// engine ships each tool document once, later tasks reference it by
		// hash. Owned by this goroutine — decodeRequests is its only writer.
		docs := map[string][]byte{}
		for {
			body, err := fc.ReadRaw()
			if err != nil {
				readErr <- err
				return
			}
			reqs, err := decodeRequests(body, opts.Binary, docs)
			if err != nil {
				readErr <- fmt.Errorf("decoding engine frame: %w", err)
				return
			}
			for i := range reqs {
				select {
				case frames <- reqs[i]:
				case <-sessDone:
					return
				}
			}
		}
	}()

	// respond ships one response in the session's negotiated form: through
	// the result batcher when batching is on, as a single frame otherwise.
	// A write failure means the engine is gone; the session is about to end
	// anyway, so the error is unreportable by design.
	var respBatcher *frameBatcher
	if opts.Batch {
		respBatcher = newFrameBatcher(fc, batcherConfig{
			binary: opts.Binary,
			kind:   binKindRespBatch,
			max:    opts.BatchMax,
		})
		defer respBatcher.kill()
	}
	respond := func(resp workerResponse) {
		if respBatcher != nil {
			_ = respBatcher.enqueue(encodeResponseRecord(resp, opts.Binary))
			return
		}
		if opts.Binary {
			_ = fc.SendEncoded(binBatchFrame(binKindRespBatch, [][]byte{appendBinaryResponse(nil, resp)}))
			return
		}
		_ = fc.Send(resp)
	}

	stopBeats := make(chan struct{})
	defer close(stopBeats)
	if opts.Heartbeat > 0 {
		go func() {
			ticker := time.NewTicker(opts.Heartbeat)
			defer ticker.Stop()
			for {
				select {
				case <-stopBeats:
					return
				case <-ticker.C:
					// A failed heartbeat write means the engine is gone; the
					// read side will observe the same failure and end the
					// session.
					busy := int(inflight.Load())
					if opts.Binary {
						_ = fc.SendEncoded(binBeatFrame(busy))
					} else {
						_ = fc.Send(workerResponse{Kind: frameKindBeat, Busy: busy})
					}
				}
			}
		}()
	}

	drain := func() error {
		wg.Wait()
		if respBatcher != nil {
			respBatcher.close() // flush the final result batch
		}
		// Best-effort goodbye: the engine may already be gone, and the
		// session is over either way.
		if opts.Binary {
			_ = fc.SendEncoded([]byte{binKindBye})
		} else {
			_ = fc.Send(workerResponse{Kind: frameKindBye})
		}
		return nil
	}

	for {
		select {
		case <-opts.Drain:
			return drain()
		case err := <-readErr:
			if err == io.EOF {
				return drain()
			}
			wg.Wait()
			return fmt.Errorf("worker read: %w", err)
		case req := <-frames:
			if req.Kind == frameKindDrain {
				return drain()
			}
			wg.Add(1)
			inflight.Add(1)
			go func(req workerRequest) {
				defer wg.Done()
				defer inflight.Add(-1)
				resp := workerResponse{ID: req.ID}
				switch {
				case req.DocErr != "":
					resp.Error = req.DocErr
				case req.Spec == nil:
					resp.Error = "request carries no task spec"
				default:
					res, err := executeGuarded(req.Spec)
					if err != nil {
						resp.Error = err.Error()
					} else {
						resp.OK = true
						resp.Result = res
					}
				}
				respond(resp)
			}(req)
		}
	}
}

// encodeResponseRecord renders one response in the session's codec: a
// standalone JSON object (also a valid batch item) or a binary record.
// Responses over the frame cap are replaced with a task error — the frame
// layer would refuse them anyway, and the engine must not lose the id.
func encodeResponseRecord(resp workerResponse, binaryCodec bool) []byte {
	var rec []byte
	if binaryCodec {
		rec = appendBinaryResponse(nil, resp)
	} else {
		rec, _ = json.Marshal(resp) // field types make encode errors impossible
	}
	if len(rec) > maxRecordBytes {
		over := workerResponse{ID: resp.ID,
			Error: fmt.Sprintf("task result of %d bytes exceeds the %d byte frame limit", len(rec), maxFrameBytes)}
		return encodeResponseRecord(over, binaryCodec)
	}
	return rec
}

// RunWorker is the parsl-cwl-worker pipe-mode main loop: handshake on
// stdin/stdout, then serve the session until the engine closes the pipe.
func RunWorker(r io.Reader, w io.Writer) error {
	return RunPipeWorker(r, w, nil)
}

// RunPipeWorker runs a pipe-transport worker session with an optional drain
// trigger (closed on SIGTERM/SIGINT by the worker binary).
func RunPipeWorker(r io.Reader, w io.Writer, drain <-chan struct{}) error {
	return RunPipeWorkerOpts(r, w, PipeWorkerOptions{Drain: drain})
}

// PipeWorkerOptions configures RunPipeWorkerOpts.
type PipeWorkerOptions struct {
	// Drain, when non-nil, triggers a graceful drain when closed (see
	// WorkerSessionOptions.Drain).
	Drain <-chan struct{}
	// DisableBatch/DisableBinary withhold the corresponding capability from
	// the hello, forcing the baseline wire form — how a legacy worker is
	// emulated in tests and how operators debug codec issues.
	DisableBatch  bool
	DisableBinary bool
}

// RunPipeWorkerOpts runs a pipe-transport worker session: handshake on the
// given streams, announce capabilities, serve in whatever form the engine
// granted.
func RunPipeWorkerOpts(r io.Reader, w io.Writer, o PipeWorkerOptions) error {
	fc := NewFrameConn(r, w, nil)
	ack, err := DialWorkerSession(fc, Hello{
		PID:  os.Getpid(),
		Caps: WorkerCaps(o.DisableBatch, o.DisableBinary),
	})
	if err != nil {
		return err
	}
	return ServeWorkerSession(fc, SessionOptionsFromAck(ack, o.Drain))
}

// executeGuarded runs one remote task converting panics to errors, so a bad
// document cannot kill a worker hosting other in-flight tasks.
func executeGuarded(spec *RemoteSpec) (res json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("remote task panicked: %v", r)
		}
	}()
	return ExecuteRemote(spec)
}
