package provider

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// The worker protocol: each side writes frames of a 4-byte big-endian length
// followed by that many bytes of JSON. On startup the worker writes one hello
// frame; afterwards the engine writes run requests and the worker writes one
// response per request, in completion order (requests execute concurrently
// and responses are matched by id). Closing the worker's stdin asks it to
// drain and exit.

// ProtoVersion is the worker protocol version; the engine refuses workers
// that announce a different one.
const ProtoVersion = 1

// maxFrameBytes bounds one frame so a corrupt length prefix cannot make
// either side allocate unbounded memory.
const maxFrameBytes = 64 << 20

// workerHello is the worker's first frame.
type workerHello struct {
	Proto int `json:"proto"`
	PID   int `json:"pid"`
}

// workerRequest is one engine → worker run request.
type workerRequest struct {
	ID   int64       `json:"id"`
	Spec *RemoteSpec `json:"spec"`
}

// workerResponse is one worker → engine result.
type workerResponse struct {
	ID     int64           `json:"id"`
	OK     bool            `json:"ok"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// writeFrame writes one length-prefixed JSON frame.
func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(body) > maxFrameBytes {
		return fmt.Errorf("frame of %d bytes exceeds the %d byte protocol limit", len(body), maxFrameBytes)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame reads one length-prefixed JSON frame into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameBytes {
		return fmt.Errorf("frame of %d bytes exceeds the %d byte protocol limit", n, maxFrameBytes)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// encodeFrame renders a frame body, enforcing the size cap. Encoding errors
// are local to the value being sent — they say nothing about the health of
// the stream.
func encodeFrame(v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	if len(body) > maxFrameBytes {
		return nil, fmt.Errorf("frame of %d bytes exceeds the %d byte protocol limit", len(body), maxFrameBytes)
	}
	return body, nil
}

// frameWriter serializes concurrent frame writes onto one stream.
type frameWriter struct {
	mu sync.Mutex
	w  *bufio.Writer
}

func newFrameWriter(w io.Writer) *frameWriter {
	return &frameWriter{w: bufio.NewWriter(w)}
}

func (fw *frameWriter) send(v any) error {
	body, err := encodeFrame(v)
	if err != nil {
		return err
	}
	return fw.sendEncoded(body)
}

// sendEncoded writes one pre-encoded frame; an error here is a genuine
// stream failure.
func (fw *frameWriter) sendEncoded(body []byte) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := fw.w.Write(body); err != nil {
		return err
	}
	return fw.w.Flush()
}

// RunWorker is the parsl-cwl-worker main loop: announce the protocol, then
// execute run requests from r concurrently, writing one response per request
// to w. It returns when r reaches EOF (engine closed the pipe) after all
// in-flight tasks finish, or with the first protocol-level error.
func RunWorker(r io.Reader, w io.Writer) error {
	out := newFrameWriter(w)
	if err := out.send(workerHello{Proto: ProtoVersion, PID: os.Getpid()}); err != nil {
		return fmt.Errorf("worker hello: %w", err)
	}
	in := bufio.NewReader(r)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		var req workerRequest
		if err := readFrame(in, &req); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("worker read: %w", err)
		}
		wg.Add(1)
		go func(req workerRequest) {
			defer wg.Done()
			resp := workerResponse{ID: req.ID}
			if req.Spec == nil {
				resp.Error = "request carries no task spec"
			} else {
				res, err := executeGuarded(req.Spec)
				if err != nil {
					resp.Error = err.Error()
				} else {
					resp.OK = true
					resp.Result = res
				}
			}
			// A write failure means the engine is gone; the process is about
			// to exit anyway, so the error is unreportable by design.
			_ = out.send(resp)
		}(req)
	}
}

// executeGuarded runs one remote task converting panics to errors, so a bad
// document cannot kill a worker hosting other in-flight tasks.
func executeGuarded(spec *RemoteSpec) (res json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("remote task panicked: %v", r)
		}
	}()
	return ExecuteRemote(spec)
}
